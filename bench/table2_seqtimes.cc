/**
 * @file
 * Table 2: applications, basic problem sizes and sequential execution
 * times -- the simulator's uniprocessor times next to the paper's
 * measured times on a 195 MHz R10000. Sizes marked "(scaled)" are
 * reduced per DESIGN.md to keep simulation tractable.
 */

#include "bench/common.hh"

using namespace ccnuma;

int
main()
{
    core::printHeader(
        "Table 2: basic problem sizes and sequential times");
    struct Row {
        const char* app;
        const char* size_label;
        double paper_s; // paper sequential time, seconds
    };
    // Paper times are microseconds in Table 2 (labelled ms there).
    const Row rows[] = {
        {"barnes", "16K bodies", 7.556},
        {"infer", "CPCS-422", 0.640},
        {"fft", "2^20 points", 2.632},
        {"ocean", "1026x1026", 28.488 / 4}, // we simulate 1/4 the sweeps
        {"protein", "helix16", 1.713},
        {"radix", "4M keys", 4.555 / 2},    // 2 of 4 passes simulated
        {"raytrace", "128x128 ball", 38.186},
        {"shearwarp", "256^3 head", 8.906 / 8}, // 1 frame, scaled
        {"volrend", "256^3 head", 0.934},
        {"water-nsq", "4096 molecules", 69.032 / 3}, // 1 of 3 steps
        {"water-spatial", "4096 molecules", 7.787 / 3},
    };
    std::printf("%-16s %-18s %14s %14s\n", "application", "basic size",
                "simulated (s)", "paper (s)");
    bench::SeqCache cache;
    for (const Row& row : rows) {
        sim::MachineConfig cfg;
        cfg.numProcs = 1;
        auto app = apps::makeApp(row.app, 0);
        const sim::RunResult r = core::runApp(cfg, *app);
        std::printf("%-16s %-18s %14.3f %14.3f\n", row.app,
                    row.size_label, r.time * cfg.nsPerCycle() / 1e9,
                    row.paper_s);
    }
    std::printf("\n(paper times normalized to the number of "
                "steps/frames/passes this skeleton simulates)\n");
    return 0;
}
