/**
 * @file
 * Figure 10: execution-time breakdowns of original vs restructured
 * versions on 128 processors, total time normalized to the original:
 * (a-c) Barnes original / MergeTree / Spatial -- communication drops,
 * some balance is lost, Spatial wins at scale; (d-e) Water-Nsquared
 * original / loop-interchanged -- remote capacity misses vanish.
 */

#include "bench/common.hh"

using namespace ccnuma;

namespace {

void
compare(const char* title, const std::vector<const char*>& variants,
        std::uint64_t size, std::uint64_t cache_bytes)
{
    core::printHeader(title);
    sim::Cycles base_time = 0;
    for (const char* v : variants) {
        sim::MachineConfig cfg;
        cfg.numProcs = 128;
        if (cache_bytes)
            cfg.cacheBytes = cache_bytes;
        auto app = apps::makeApp(v, size);
        const sim::RunResult r = core::runApp(cfg, *app);
        if (base_time == 0)
            base_time = r.time;
        char label[96];
        std::snprintf(label, sizeof label, "%s (time=%.2fx orig)", v,
                      static_cast<double>(r.time) / base_time);
        core::printBreakdown(label, r.breakdown());
        core::printCounters(v, r.totals());
        std::fflush(stdout);
    }
}

} // namespace

int
main()
{
    compare("Figure 10(a-c): Barnes tree-build variants, 32K bodies",
            {"barnes", "barnes-mergetree", "barnes-spatial"}, 32768, 0);
    compare("Figure 10(d-e): Water-Nsquared loop order, 8K molecules "
            "[scaled 512KB cache]",
            {"water-nsq", "water-nsq-interchanged"}, 8192, 512u << 10);
    return 0;
}
