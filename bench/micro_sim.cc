/**
 * @file
 * Google-benchmark microbenchmarks of the simulator substrate itself:
 * cache access, protocol transactions, topology routing and
 * end-to-end simulation throughput. These guard the simulator's own
 * performance (host ops/second), not the simulated machine's.
 */

#include <benchmark/benchmark.h>

#include "sim/cache.hh"
#include "sim/machine.hh"
#include "sim/topology.hh"

using namespace ccnuma::sim;

namespace {

void
BM_CacheHit(benchmark::State& state)
{
    Cache c(4u << 20, 2, 128);
    c.access(0x1000, false);
    for (auto _ : state)
        benchmark::DoNotOptimize(c.access(0x1000, false));
}
BENCHMARK(BM_CacheHit);

void
BM_CacheMissEvict(benchmark::State& state)
{
    Cache c(64u << 10, 2, 128);
    Addr a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(c.access(a, false));
        a += 128;
    }
}
BENCHMARK(BM_CacheMissEvict);

void
BM_TopologyRoute(benchmark::State& state)
{
    MachineConfig cfg;
    cfg.numProcs = 128;
    Topology t(cfg);
    NodeId n = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(t.route(n % 64, (n * 7 + 13) % 64));
        ++n;
    }
}
BENCHMARK(BM_TopologyRoute);

void
BM_LocalAccess(benchmark::State& state)
{
    MachineConfig cfg;
    cfg.numProcs = 2;
    Machine m(cfg);
    const Addr a = m.alloc(64u << 20);
    m.place(a, 64u << 20, 0);
    // Drive accesses through the memory system directly.
    ProcStats st;
    Cycles now = 0;
    Addr addr = a;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            m.mem().access(0, now, addr, false, st));
        addr += 128;
        now += 100;
    }
}
BENCHMARK(BM_LocalAccess);

void
BM_EndToEndThroughput(benchmark::State& state)
{
    // Ops/second of a 64-proc machine running a streaming workload.
    const int P = 64;
    const int OPS = 20000;
    for (auto _ : state) {
        MachineConfig cfg;
        cfg.numProcs = P;
        Machine m(cfg);
        const Addr a = m.alloc(256u << 20);
        m.placeAcrossProcs(a, 256u << 20);
        RunResult r = m.run([a](Cpu& cpu) -> Task {
            const Addr mine =
                a + static_cast<Addr>(cpu.id()) * (4u << 20);
            for (int i = 0; i < OPS; ++i) {
                cpu.read(mine + static_cast<Addr>(i % 30000) * 128);
                cpu.busy(60);
                if ((i & 7) == 0)
                    co_await cpu.checkpoint();
            }
            co_return;
        });
        benchmark::DoNotOptimize(r.time);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(P) * OPS);
}
BENCHMARK(BM_EndToEndThroughput)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
