/**
 * @file
 * Shared helpers for the bench binaries that regenerate the paper's
 * tables and figures. Each bench prints the paper-reported series next
 * to the simulator's measurements; absolute values are not expected to
 * match the 1999 hardware, but the shapes should.
 */

#ifndef CCNUMA_BENCH_COMMON_HH
#define CCNUMA_BENCH_COMMON_HH

#include <cstdio>
#include <string>
#include <vector>

#include "apps/registry.hh"
#include "core/report.hh"
#include "core/seq_cache.hh"
#include "core/study.hh"

namespace ccnuma::bench {

/// Sequential-time cache shared within one bench binary (thread-safe,
/// single-flight; see core/seq_cache.hh).
using SeqCache = core::SeqBaselineCache;

/// Measure app `name` at `size` on `procs` processors with an optional
/// shared sequential baseline key (variants of one application share
/// the original's sequential time, as in the paper's methodology).
inline core::Measurement
measureApp(const std::string& name, std::uint64_t size, int procs,
           SeqCache& cache, sim::MachineConfig cfg = {},
           const std::string& seq_key_override = "")
{
    cfg.numProcs = procs;
    const std::string key =
        seq_key_override.empty()
            ? name + ":" + std::to_string(size)
            : seq_key_override + ":" + std::to_string(size);
    return core::measure(
        cfg, [&] { return apps::makeApp(name, size); }, &cache, key);
}

/// "quick" mode trims sweeps (env CCNUMA_QUICK=1).
inline bool
quickMode()
{
    const char* q = std::getenv("CCNUMA_QUICK");
    return q && *q == '1';
}

} // namespace ccnuma::bench

#endif // CCNUMA_BENCH_COMMON_HH
