/**
 * @file
 * Section 6.1: effect of software prefetching of remote data on FFT
 * and Sample sort. Paper shape: little at 32 processors, up to ~35%
 * (FFT) and ~20% (Sample sort) at 128 processors on larger problems;
 * little effect on irregular applications (shown via Radix's prefix
 * phase only).
 */

#include "bench/common.hh"

using namespace ccnuma;
using bench::measureApp;

int
main()
{
    core::printHeader("Section 6.1: software prefetch of remote data");
    struct Cfg {
        const char* base;
        const char* pf;
        std::uint64_t size;
    };
    const Cfg cases[] = {
        {"fft", "fft-prefetch", 1u << 20},
        {"fft", "fft-prefetch", 1u << 22},
        {"samplesort", "samplesort-prefetch", 1u << 22},
        {"samplesort", "samplesort-prefetch", 1u << 24},
        {"radix", "radix-prefetch", 1u << 22},
    };
    const std::vector<int> procs =
        bench::quickMode() ? std::vector<int>{128}
                           : std::vector<int>{32, 64, 128};
    std::printf("%-14s %12s", "app", "size");
    for (const int P : procs)
        std::printf("    P=%-3d gain", P);
    std::printf("\n");
    for (const Cfg& c : cases) {
        bench::SeqCache cache;
        std::printf("%-14s %12llu", c.base,
                    static_cast<unsigned long long>(c.size));
        for (const int P : procs) {
            const auto base =
                measureApp(c.base, c.size, P, cache, {}, c.base);
            const auto pf =
                measureApp(c.pf, c.size, P, cache, {}, c.base);
            const double gain =
                (static_cast<double>(base.parTime) - pf.parTime) /
                base.parTime * 100.0;
            std::printf("    %+8.1f%%", gain);
            std::fflush(stdout);
        }
        std::printf("\n");
    }
    std::printf("\n(gain = execution-time reduction from prefetch)\n");
    return 0;
}
