/**
 * @file
 * Figure 4: parallel efficiency versus problem size for each
 * application, at 32/64/128 processors. Paper shapes: bigger problems
 * help Ocean, Water-Spatial, Volrend, Shear-Warp, Barnes (and FFT and
 * Radix at high processor counts); they eventually *hurt* Raytrace and
 * Water-Nsquared; only Ocean and Water-Spatial cross 60% at 128p on
 * reasonable sizes. Ocean and FFT show capacity superlinearity.
 */

#include "bench/common.hh"

using namespace ccnuma;
using bench::measureApp;

namespace {

struct Sweep {
    const char* app;
    std::vector<std::uint64_t> sizes;
    /// Machine-cache override (0 = default); Water-Nsquared's sweep
    /// runs on a ratio-preserving scaled cache per DESIGN.md.
    std::uint64_t cacheBytes = 0;
};

} // namespace

int
main()
{
    core::printHeader(
        "Figure 4: parallel efficiency vs problem size");
    const bool quick = bench::quickMode();
    std::vector<Sweep> sweeps = {
        {"fft", {1u << 18, 1u << 20, 1u << 22}, 0},
        {"ocean", {514, 1026, 2050}, 0},
        {"radix", {1u << 20, 1u << 22, 1u << 24}, 0},
        {"barnes", {4096, 16384, 32768}, 0},
        {"water-nsq", {1024, 2048, 4096, 8192}, 512u << 10},
        {"water-spatial", {4096, 16384, 32768}, 0},
        {"raytrace", {64, 128, 256}, 0},
        {"volrend", {128, 256}, 0},
        {"shearwarp", {128, 192, 256}, 0},
        {"infer", {422}, 0},
        {"protein", {8, 16, 32}, 0},
    };
    const std::vector<int> procs = quick ? std::vector<int>{128}
                                         : std::vector<int>{32, 64, 128};

    for (const Sweep& sw : sweeps) {
        bench::SeqCache cache;
        std::vector<core::Series> series;
        for (const int P : procs)
            series.push_back({"P=" + std::to_string(P), {}, {}});
        for (const std::uint64_t size : sw.sizes) {
            for (std::size_t i = 0; i < procs.size(); ++i) {
                sim::MachineConfig cfg;
                if (sw.cacheBytes)
                    cfg.cacheBytes = sw.cacheBytes;
                const auto mres =
                    measureApp(sw.app, size, procs[i], cache, cfg);
                series[i].xs.push_back(std::to_string(size));
                series[i].ys.push_back(mres.efficiency());
                std::fflush(stdout);
            }
        }
        std::printf("\n-- %s (size unit: %s)%s --\n", sw.app,
                    apps::sizeUnit(sw.app).c_str(),
                    sw.cacheBytes ? " [scaled 512KB cache]" : "");
        core::printSeries(apps::sizeUnit(sw.app), series);
    }
    std::printf("\nDotted 60%% efficiency bar: 0.600\n");
    return 0;
}
