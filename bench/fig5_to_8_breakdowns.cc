/**
 * @file
 * Figures 5-8: per-processor execution-time breakdown continua on 128
 * processors for a small and a large problem size, plus the
 * uniprocessor breakdown, for Water-Spatial (Fig 5, sync collapses
 * with size), FFT (Fig 6, capacity misses at small machines), Shear-
 * Warp (Fig 7, memory remains the bottleneck) and Raytrace (Fig 8,
 * large diffuse working set).
 */

#include "bench/common.hh"

using namespace ccnuma;

namespace {

void
figure(const char* title, const char* app, std::uint64_t small,
       std::uint64_t large)
{
    core::printHeader(title);
    for (const std::uint64_t size : {small, large}) {
        sim::MachineConfig cfg;
        cfg.numProcs = 128;
        auto a = apps::makeApp(app, size);
        const sim::RunResult r = core::runApp(cfg, *a);
        char label[128];
        std::snprintf(label, sizeof label, "%s size=%llu, 128 procs",
                      app, static_cast<unsigned long long>(size));
        core::printPerProcBreakdown(label, r, 16);
        // Uniprocessor breakdown for the same size (capacity check).
        sim::MachineConfig seq;
        seq.numProcs = 1;
        auto a1 = apps::makeApp(app, size);
        const sim::RunResult r1 = core::runApp(seq, *a1);
        std::snprintf(label, sizeof label, "  uniprocessor size=%llu",
                      static_cast<unsigned long long>(size));
        core::printBreakdown(label, r1.breakdown());
        std::fflush(stdout);
    }
}

} // namespace

int
main()
{
    figure("Figure 5: Water-Spatial per-proc breakdown",
           "water-spatial", 4096, 32768);
    figure("Figure 6: FFT per-proc breakdown", "fft", 1u << 20,
           1u << 22);
    figure("Figure 7: Shear-Warp per-proc breakdown", "shearwarp", 128,
           256);
    figure("Figure 8: Raytrace per-proc breakdown", "raytrace", 128,
           256);
    return 0;
}
