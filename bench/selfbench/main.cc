/**
 * @file
 * `ccnuma_bench`: the simulator self-benchmark driver.
 *
 *   ccnuma_bench [--quick] [--json=FILE] [--repeat=N]
 *                [--baseline=FILE] [--min-ratio=R] [--sim-jobs=N]
 *                [--speedup] [--speedup-app=NAME] [--speedup-procs=P]
 *
 * Times the figure-2 application grid host-side and writes
 * BENCH_sim.json (override with --json=). With --baseline= the run is
 * also gated: exit 1 when aggregate ops/sec falls below
 * min-ratio x baseline (default 0.75, i.e. a >25% regression).
 *
 * --sim-jobs=N runs every grid case on the node-sharded parallel
 * engine (results stay bit-identical; only host wall-clock changes).
 * --speedup additionally times one big-machine case (default: fft on
 * p256) serial vs parallel and reports the wall-clock speedup as a
 * "selfbench/parallel" JSON entry; the >= 1.5x target assumes >= 4
 * host cores.
 */

#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <string>

#include "bench/selfbench/selfbench.hh"
#include "core/cli.hh"
#include "core/metrics.hh"
#include "sim/config.hh"

#ifndef CCNUMA_GIT_DESCRIBE
#define CCNUMA_GIT_DESCRIBE "unknown"
#endif

using namespace ccnuma;
namespace sb = ccnuma::bench::selfbench;

namespace {

bool
parseDouble(const std::string& text, double& out)
{
    if (text.empty())
        return false;
    char* end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (end != text.c_str() + text.size())
        return false;
    out = v;
    return true;
}

} // namespace

int
main(int argc, char** argv)
{
    core::cli::Options opt = core::cli::parse(argc, argv);
    const bool quick = opt.takeSwitch("quick");
    const bool speedup = opt.takeSwitch("speedup");

    std::string speedup_app = "fft";
    opt.takeFlag("speedup-app", speedup_app);

    std::uint64_t speedup_procs = 256;
    std::string sp_text;
    if (opt.takeFlag("speedup-procs", sp_text) &&
        !core::cli::parseU64(sp_text, speedup_procs)) {
        std::fprintf(stderr, "ccnuma_bench: bad --speedup-procs=%s\n",
                     sp_text.c_str());
        return 2;
    }

    std::string baseline;
    opt.takeFlag("baseline", baseline);

    double min_ratio = 0.75;
    std::string ratio_text;
    if (opt.takeFlag("min-ratio", ratio_text) &&
        !parseDouble(ratio_text, min_ratio)) {
        std::fprintf(stderr, "ccnuma_bench: bad --min-ratio=%s\n",
                     ratio_text.c_str());
        return 2;
    }

    int repeat = 1;
    std::string repeat_text;
    if (opt.takeFlag("repeat", repeat_text)) {
        std::uint64_t r = 0;
        if (!core::cli::parseU64(repeat_text, r) || r == 0) {
            std::fprintf(stderr, "ccnuma_bench: bad --repeat=%s\n",
                         repeat_text.c_str());
            return 2;
        }
        repeat = static_cast<int>(r);
    }

    // --protocol / --dir-format benchmark the simulator under a
    // non-default coherence machine (the gated baseline stays MESI).
    sim::MachineConfig machine = sim::MachineConfig::origin2000(2);
    core::cli::applyMachine(opt, machine);
    core::cli::warnUnknown(opt);

    const std::string json =
        opt.jsonFile.empty() ? "BENCH_sim.json" : opt.jsonFile;
    const std::string grid_name = quick ? "fig2-quick" : "fig2";

    std::printf("ccnuma_bench: simulator self-benchmark (%s grid, "
                "repeat=%d, build %s)\n",
                grid_name.c_str(), repeat, CCNUMA_GIT_DESCRIBE);

    const sb::GridResult res = sb::runGrid(
        sb::fig2Grid(quick), repeat, /*progress=*/true, &machine);

    std::printf("total: %llu simulated mem ops in %.1f ms host -> "
                "%.0f ops/sec aggregate\n",
                static_cast<unsigned long long>(res.totalMemOps),
                res.totalWallMs, res.aggOpsPerSec);

    sb::ParallelSpeedup ps;
    if (speedup) {
        const std::uint64_t size = quick
                                       ? 1u << 14
                                       : std::uint64_t{1} << 16;
        ps = sb::measureParallelSpeedup(
            speedup_app, size, static_cast<int>(speedup_procs),
            opt.simJobs == 1 ? 0 : opt.simJobs, repeat);
        std::printf("parallel engine: %s p%d serial %.1f ms, "
                    "parallel %.1f ms -> %.2fx speedup "
                    "(%d host cores), results %s\n",
                    ps.app.c_str(), ps.procs, ps.serialMs,
                    ps.parallelMs, ps.speedup, ps.hostCores,
                    ps.identical ? "bit-identical" : "DIVERGED");
        if (ps.hostCores < 4)
            std::printf("  note: %d host core(s) — the >=1.5x target "
                        "assumes >=4; speedup not meaningful here\n",
                        ps.hostCores);
    }

    core::MetricsSink sink(json);
    sink.setMachine(machine);
    sb::emit(sink, res, grid_name, CCNUMA_GIT_DESCRIBE);
    if (speedup)
        sb::emit(sink, ps);
    // Keep the perf trajectory: prior history entries in the existing
    // file survive the rewrite, with this run appended.
    char date[16] = "unknown";
    const std::time_t now = std::time(nullptr);
    if (std::tm tm_utc{}; gmtime_r(&now, &tm_utc) != nullptr)
        std::strftime(date, sizeof date, "%Y-%m-%d", &tm_utc);
    const std::size_t runs_kept = sb::appendHistory(
        sink, json, res, grid_name, CCNUMA_GIT_DESCRIBE, date);
    std::printf("history: %zu prior run(s) kept, this run is "
                "history/%zu\n",
                runs_kept, runs_kept);
    if (!sink.write()) {
        std::fprintf(stderr, "ccnuma_bench: cannot write %s\n",
                     json.c_str());
        return 2;
    }
    std::printf("wrote %s\n", json.c_str());

    if (speedup && !ps.identical) {
        std::fprintf(stderr,
                     "ccnuma_bench: parallel engine DIVERGED from "
                     "serial on %s p%d\n",
                     ps.app.c_str(), ps.procs);
        return 1;
    }

    if (!baseline.empty()) {
        const sb::CompareResult cmp =
            sb::compareBaseline(baseline, res, min_ratio);
        std::printf("%s\n", cmp.message.c_str());
        if (!cmp.ok) {
            std::fprintf(stderr,
                         "ccnuma_bench: PERF REGRESSION vs %s\n",
                         baseline.c_str());
            return 1;
        }
    }
    return 0;
}
