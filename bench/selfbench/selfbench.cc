#include "bench/selfbench/selfbench.hh"

#include <chrono>
#include <cstdio>
#include <thread>

#include "apps/registry.hh"
#include "check/json.hh"
#include "core/study.hh"
#include "sim/config.hh"

namespace ccnuma::bench::selfbench {

namespace {

/// Quick-mode problem size: the golden-metrics sizes — big enough to
/// exercise every protocol path, small enough that the whole quick
/// grid fits a CI smoke budget.
std::uint64_t
quickSize(const std::string& app)
{
    if (app.rfind("fft", 0) == 0)
        return 1u << 14;
    if (app.rfind("ocean", 0) == 0)
        return 130;
    if (app.rfind("radix", 0) == 0)
        return 1u << 16;
    if (app.rfind("barnes", 0) == 0)
        return 2048;
    if (app.rfind("water", 0) == 0)
        return 512;
    if (app.rfind("infer", 0) == 0)
        return 64;
    if (app.rfind("protein", 0) == 0)
        return 8;
    // raytrace / volrend / shearwarp image edge
    return 32;
}

} // namespace

std::vector<BenchCase>
fig2Grid(bool quick)
{
    const std::vector<int> procs = quick
                                       ? std::vector<int>{32, 128}
                                       : std::vector<int>{32, 64, 96, 128};
    std::vector<BenchCase> grid;
    for (const std::string& app : apps::originalApps())
        for (const int p : procs)
            grid.push_back(BenchCase{
                app, quick ? quickSize(app) : apps::basicSize(app), p});
    return grid;
}

GridResult
runGrid(const std::vector<BenchCase>& grid, int repeat, bool progress,
        const sim::MachineConfig* machine)
{
    using clock = std::chrono::steady_clock;
    if (repeat < 1)
        repeat = 1;
    GridResult out;
    for (const BenchCase& bc : grid) {
        sim::MachineConfig cfg =
            sim::MachineConfig::origin2000(bc.procs);
        if (machine) {
            cfg.protocol = machine->protocol;
            cfg.dirFormat = machine->dirFormat;
            cfg.simJobs = machine->simJobs;
        }
        CaseResult cr;
        cr.bc = bc;
        double best_ms = 0.0;
        for (int r = 0; r < repeat; ++r) {
            // Build the app outside the timed region: we benchmark the
            // simulator, not workload construction.
            apps::AppPtr app = apps::makeApp(bc.app, bc.size);
            const clock::time_point t0 = clock::now();
            const sim::RunResult res = core::runApp(cfg, *app);
            const clock::time_point t1 = clock::now();
            const double ms =
                std::chrono::duration<double, std::milli>(t1 - t0)
                    .count();
            if (r == 0 || ms < best_ms)
                best_ms = ms;
            const sim::ProcCounters c = res.totals();
            cr.simMemOps = c.loads + c.stores;
            cr.simCycles = static_cast<std::uint64_t>(res.time);
        }
        cr.wallMs = best_ms;
        cr.opsPerSec = best_ms > 0.0
                           ? static_cast<double>(cr.simMemOps) /
                                 (best_ms / 1000.0)
                           : 0.0;
        out.totalMemOps += cr.simMemOps;
        out.totalWallMs += cr.wallMs;
        if (progress)
            std::printf("  %-16s P=%-4d size=%-8llu %10.1f ms "
                        "%12.0f ops/s\n",
                        bc.app.c_str(), bc.procs,
                        static_cast<unsigned long long>(bc.size),
                        cr.wallMs, cr.opsPerSec);
        out.cases.push_back(std::move(cr));
    }
    out.aggOpsPerSec = out.totalWallMs > 0.0
                           ? static_cast<double>(out.totalMemOps) /
                                 (out.totalWallMs / 1000.0)
                           : 0.0;
    return out;
}

ParallelSpeedup
measureParallelSpeedup(const std::string& app, std::uint64_t size,
                       int procs, int simJobs, int repeat)
{
    using clock = std::chrono::steady_clock;
    if (repeat < 1)
        repeat = 1;
    ParallelSpeedup out;
    out.app = app;
    out.size = size;
    out.procs = procs;
    out.simJobs = simJobs;
    const unsigned hw = std::thread::hardware_concurrency();
    out.hostCores = hw ? static_cast<int>(hw) : 1;

    const auto timeOnce = [&](int sim_jobs, std::uint64_t& mem_ops,
                              std::uint64_t& sim_cycles) {
        sim::MachineConfig cfg = sim::MachineConfig::origin2000(procs);
        cfg.simJobs = sim_jobs;
        double best_ms = 0.0;
        for (int r = 0; r < repeat; ++r) {
            apps::AppPtr a = apps::makeApp(app, size);
            const clock::time_point t0 = clock::now();
            const sim::RunResult res = core::runApp(cfg, *a);
            const clock::time_point t1 = clock::now();
            const double ms =
                std::chrono::duration<double, std::milli>(t1 - t0)
                    .count();
            if (r == 0 || ms < best_ms)
                best_ms = ms;
            const sim::ProcCounters c = res.totals();
            mem_ops = c.loads + c.stores;
            sim_cycles = static_cast<std::uint64_t>(res.time);
        }
        return best_ms;
    };

    std::uint64_t serial_ops = 0, serial_cycles = 0;
    std::uint64_t par_ops = 0, par_cycles = 0;
    out.serialMs = timeOnce(1, serial_ops, serial_cycles);
    out.parallelMs = timeOnce(simJobs, par_ops, par_cycles);
    out.speedup = out.parallelMs > 0.0 ? out.serialMs / out.parallelMs
                                       : 0.0;
    // The differential contract, spot-checked at bench level: both
    // engines must have simulated the exact same machine.
    out.identical =
        serial_ops == par_ops && serial_cycles == par_cycles;
    out.simMemOps = serial_ops;
    out.simCycles = serial_cycles;
    return out;
}

void
emit(core::MetricsSink& sink, const ParallelSpeedup& s)
{
    const std::string label = "selfbench/parallel";
    sink.addText(label, "app", s.app);
    sink.addCount(label, "size", s.size);
    sink.addCount(label, "procs",
                  static_cast<std::uint64_t>(s.procs));
    sink.addCount(label, "simJobs",
                  static_cast<std::uint64_t>(s.simJobs));
    sink.addCount(label, "hostCores",
                  static_cast<std::uint64_t>(s.hostCores));
    sink.addCount(label, "simMemOps", s.simMemOps);
    sink.addCount(label, "simCycles", s.simCycles);
    sink.addScalar(label, "serialMs", s.serialMs);
    sink.addScalar(label, "parallelMs", s.parallelMs);
    sink.addScalar(label, "speedup", s.speedup);
    sink.addCount(label, "identical", s.identical ? 1 : 0);
}

void
emit(core::MetricsSink& sink, const GridResult& r,
     const std::string& gridName, const std::string& gitDescribe)
{
    for (const CaseResult& cr : r.cases) {
        const std::string label = cr.bc.label();
        sink.addText(label, "app", cr.bc.app);
        sink.addCount(label, "procs",
                      static_cast<std::uint64_t>(cr.bc.procs));
        sink.addCount(label, "size", cr.bc.size);
        sink.addCount(label, "simMemOps", cr.simMemOps);
        sink.addCount(label, "simCycles", cr.simCycles);
        sink.addScalar(label, "wallMs", cr.wallMs);
        sink.addScalar(label, "opsPerSec", cr.opsPerSec);
    }
    const std::string meta = "selfbench/meta";
    sink.addText(meta, "gitDescribe", gitDescribe);
    sink.addText(meta, "grid", gridName);
    sink.addCount(meta, "schemaVersion", 1);
    sink.addCount(meta, "totalMemOps", r.totalMemOps);
    sink.addScalar(meta, "totalWallMs", r.totalWallMs);
    sink.addScalar(meta, "aggOpsPerSec", r.aggOpsPerSec);
}

std::size_t
appendHistory(core::MetricsSink& sink, const std::string& priorPath,
              const GridResult& r, const std::string& gridName,
              const std::string& gitDescribe, const std::string& date)
{
    std::size_t kept = 0;
    const check::json::ParseResult pr =
        check::json::parseFile(priorPath);
    if (pr.ok) {
        const check::json::Value* runs = pr.root.find("runs");
        if (runs && runs->isArray()) {
            for (const check::json::Value& run : runs->arr) {
                const check::json::Value* label = run.find("label");
                if (!label || !label->isString() ||
                    label->str.rfind("history/", 0) != 0)
                    continue;
                // One entry per revision: re-benchmarking the same
                // checkout replaces its prior measurement instead of
                // growing the trajectory with duplicates.
                const check::json::Value* rev =
                    run.find("gitDescribe");
                if (rev && rev->isString() && rev->str == gitDescribe)
                    continue;
                const std::string to =
                    "history/" + std::to_string(kept);
                for (const auto& [key, v] : run.obj) {
                    if (key == "label")
                        continue;
                    if (v.isString())
                        sink.addText(to, key, v.str);
                    else if (v.isNumber() &&
                             v.raw.find_first_of(".eE") !=
                                 std::string::npos)
                        sink.addScalar(to, key, v.asDouble());
                    else if (v.isNumber())
                        sink.addCount(to, key, v.asU64());
                }
                ++kept;
            }
        }
    }
    const std::string to = "history/" + std::to_string(kept);
    sink.addText(to, "gitDescribe", gitDescribe);
    sink.addText(to, "date", date);
    sink.addText(to, "grid", gridName);
    sink.addCount(to, "totalMemOps", r.totalMemOps);
    sink.addScalar(to, "totalWallMs", r.totalWallMs);
    sink.addScalar(to, "aggOpsPerSec", r.aggOpsPerSec);
    return kept;
}

CompareResult
compareBaseline(const std::string& baselinePath,
                const GridResult& current, double minRatio)
{
    CompareResult out;
    const check::json::ParseResult pr =
        check::json::parseFile(baselinePath);
    if (!pr.ok) {
        out.message = "baseline " + baselinePath +
                      " unreadable: " + pr.error;
        return out;
    }
    const check::json::Value* runs = pr.root.find("runs");
    if (!runs || !runs->isArray()) {
        out.message = "baseline has no \"runs\" array";
        return out;
    }
    double base_agg = 0.0;
    bool found = false;
    for (const check::json::Value& run : runs->arr) {
        const check::json::Value* label = run.find("label");
        if (!label || label->str != "selfbench/meta")
            continue;
        const check::json::Value* agg = run.find("aggOpsPerSec");
        if (agg && agg->isNumber()) {
            base_agg = agg->asDouble();
            found = true;
        }
        break;
    }
    if (!found || base_agg <= 0.0) {
        out.message = "baseline has no selfbench/meta aggOpsPerSec";
        return out;
    }
    out.ratio = current.aggOpsPerSec / base_agg;
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "ops/sec ratio vs baseline: %.3f (current %.0f / "
                  "baseline %.0f, floor %.2f)",
                  out.ratio, current.aggOpsPerSec, base_agg, minRatio);
    out.message = buf;
    out.ok = out.ratio >= minRatio;
    return out;
}

} // namespace ccnuma::bench::selfbench
