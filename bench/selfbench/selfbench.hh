/**
 * @file
 * Self-benchmark harness: times the simulator itself (host-side wall
 * clock) over a representative grid of application runs and reports
 * simulated-memory-ops-committed per host second. This is the repo's
 * perf trajectory: `ccnuma_bench` emits BENCH_sim.json via
 * core::MetricsSink and CI compares it against a checked-in baseline.
 *
 * Simulated results are never part of the measurement contract here —
 * golden metrics (tests/golden/metrics-v1.json) pin those. This
 * harness only asks "how fast does the host produce them".
 */

#ifndef CCNUMA_BENCH_SELFBENCH_HH
#define CCNUMA_BENCH_SELFBENCH_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/metrics.hh"

namespace ccnuma::sim {
struct MachineConfig;
}

namespace ccnuma::bench::selfbench {

/// One timed configuration: an application at a size on P processors.
struct BenchCase {
    std::string app;
    std::uint64_t size = 0;
    int procs = 1;

    std::string label() const
    {
        return "selfbench/" + app + "/p" + std::to_string(procs);
    }
};

/**
 * The figure-2 grid (original apps across machine sizes). Quick mode
 * trims the sweep to two machine sizes at reduced problem sizes so a
 * CI perf-smoke run finishes in well under a minute; full mode uses
 * the paper's basic sizes on 32/64/96/128 processors.
 */
std::vector<BenchCase> fig2Grid(bool quick);

/** Timing of one case; simulated counters are run-deterministic. */
struct CaseResult {
    BenchCase bc;
    std::uint64_t simMemOps = 0; ///< loads + stores committed
    std::uint64_t simCycles = 0; ///< simulated run time
    double wallMs = 0.0;         ///< best-of-`repeat` host wall clock
    double opsPerSec = 0.0;      ///< simMemOps / (wallMs/1000)
};

/** Whole-grid timing plus the aggregate used for regression gating. */
struct GridResult {
    std::vector<CaseResult> cases;
    std::uint64_t totalMemOps = 0;
    double totalWallMs = 0.0;
    /// totalMemOps / total host seconds: one number whose >25% drop
    /// fails CI. Aggregated over the grid, not a mean of per-case
    /// rates, so long cases weigh more (as they do in real studies).
    double aggOpsPerSec = 0.0;
};

/**
 * Run every case and time it. Each case is simulated `repeat` times
 * (>=1) and the fastest wall clock is kept — simulated results are
 * deterministic, so repeats only reduce host noise. `progress` (when
 * true) prints one line per case to stdout as it completes. `machine`
 * (when non-null) supplies the coherence protocol and directory
 * format every case runs under; all other parameters stay at the
 * per-case origin2000 calibration.
 */
GridResult runGrid(const std::vector<BenchCase>& grid, int repeat = 1,
                   bool progress = false,
                   const sim::MachineConfig* machine = nullptr);

/**
 * Parallel-engine wall-clock comparison on one big-machine case: the
 * same app run serial (simJobs=1) and on the node-sharded scout/replay
 * engine (simJobs 0 = one host thread per core). Simulated results
 * must be identical — the parallel engine is bit-exact — so only host
 * wall-clock differs.
 */
struct ParallelSpeedup {
    std::string app;
    std::uint64_t size = 0;
    int procs = 0;
    int simJobs = 0;      ///< requested worker count (0 = auto)
    int hostCores = 0;    ///< std::thread::hardware_concurrency()
    std::uint64_t simMemOps = 0;
    std::uint64_t simCycles = 0;
    double serialMs = 0.0;
    double parallelMs = 0.0;
    double speedup = 0.0; ///< serialMs / parallelMs
    /// Simulated mem ops and cycles agreed between the two engines.
    bool identical = false;
};

/**
 * Time `app` at `size` on a `procs`-processor origin2000, once with
 * the serial engine and once with simJobs parallel workers; best of
 * `repeat` host timings each. The >= 1.5x speedup target assumes >= 4
 * host cores — on smaller hosts the measurement still runs (and still
 * checks bit identity) but the speedup number is not meaningful.
 */
ParallelSpeedup measureParallelSpeedup(const std::string& app,
                                       std::uint64_t size, int procs,
                                       int simJobs, int repeat = 1);

/**
 * Emit the speedup measurement as a "selfbench/parallel" entry:
 * text "app"; counts "size", "procs", "simJobs", "hostCores",
 * "simMemOps", "simCycles", "identical"; scalars "serialMs",
 * "parallelMs", "speedup".
 */
void emit(core::MetricsSink& sink, const ParallelSpeedup& s);

/**
 * Emit the grid into `sink`: one entry per case (text "app"; counts
 * "procs", "size", "simMemOps", "simCycles"; scalars "wallMs",
 * "opsPerSec") plus a "selfbench/meta" entry carrying "gitDescribe",
 * "grid", "schemaVersion", "totalMemOps", "totalWallMs" and
 * "aggOpsPerSec".
 */
void emit(core::MetricsSink& sink, const GridResult& r,
          const std::string& gridName, const std::string& gitDescribe);

/**
 * Carry the perf trajectory across runs: copy every "history/N" entry
 * from a previously emitted BENCH_sim.json at `priorPath` into `sink`
 * (relabelled sequentially from history/0), then append this run's
 * aggregate as the next entry — text "gitDescribe"/"date"/"grid",
 * count "totalMemOps", scalars "totalWallMs"/"aggOpsPerSec". Prior
 * entries whose "gitDescribe" equals this run's are dropped, so
 * re-benchmarking the same revision replaces its measurement instead
 * of duplicating it. A missing or unparseable prior file starts the
 * history fresh. Returns the new entry's index (== number of prior
 * entries kept).
 */
std::size_t appendHistory(core::MetricsSink& sink,
                          const std::string& priorPath,
                          const GridResult& r,
                          const std::string& gridName,
                          const std::string& gitDescribe,
                          const std::string& date);

/** Verdict of a baseline comparison. */
struct CompareResult {
    bool ok = false;       ///< ratio >= minRatio (and baseline parsed)
    double ratio = 0.0;    ///< current aggOpsPerSec / baseline's
    std::string message;   ///< human-readable verdict or parse error
};

/**
 * Compare `current` against a previously emitted BENCH_sim.json at
 * `baselinePath` (strict check::json parse; the file must contain a
 * "selfbench/meta" entry). ok iff current/baseline >= minRatio —
 * CI uses minRatio 0.75, i.e. fail on a >25% ops/sec regression.
 */
CompareResult compareBaseline(const std::string& baselinePath,
                              const GridResult& current,
                              double minRatio);

} // namespace ccnuma::bench::selfbench

#endif // CCNUMA_BENCH_SELFBENCH_HH
