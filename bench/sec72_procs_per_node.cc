/**
 * @file
 * Section 7.2: one versus two processors per node (same processor
 * count, twice the nodes when one per node). Paper shape: small
 * difference when communication dominates; one-per-node consistently
 * wins when problem sizes are large and local capacity misses contend
 * with communication at the shared Hub/memory -- e.g. Sample sort at
 * 32 procs with 16M keys ran ~40% better one-per-node.
 */

#include "bench/common.hh"

using namespace ccnuma;
using bench::measureApp;

int
main()
{
    core::printHeader(
        "Section 7.2: one vs two processors per node");
    struct Case {
        const char* app;
        std::uint64_t size;
        int procs;
    };
    const Case cases[] = {
        {"samplesort", 1u << 24, 32}, {"samplesort", 1u << 24, 64},
        {"fft", 1u << 22, 32},        {"fft", 1u << 22, 64},
        {"radix", 1u << 24, 64},      {"ocean", 2050, 64},
        {"raytrace", 128, 64},
    };
    std::printf("%-14s %10s %5s %10s %10s %8s\n", "app", "size", "P",
                "2/node", "1/node", "gain");
    for (const Case& c : cases) {
        bench::SeqCache cache;
        sim::MachineConfig two;
        sim::MachineConfig one;
        one.oneProcPerNode = true;
        const auto r2 = measureApp(c.app, c.size, c.procs, cache, two,
                                   c.app);
        const auto r1 = measureApp(c.app, c.size, c.procs, cache, one,
                                   c.app);
        const double gain =
            (static_cast<double>(r2.parTime) - r1.parTime) /
            r2.parTime * 100.0;
        std::printf("%-14s %10llu %5d %9.1fx %9.1fx %+7.1f%%\n", c.app,
                    static_cast<unsigned long long>(c.size), c.procs,
                    r2.speedup(), r1.speedup(), gain);
        std::fflush(stdout);
    }
    std::printf("\n(gain = execution-time reduction from one "
                "processor per node)\n");
    return 0;
}
