/**
 * @file
 * Table 3: speedup under different data-distribution strategies on 64
 * processors for large FFT, Radix and Ocean problems: manual placement
 * vs round-robin vs round-robin + dynamic page migration. Paper shape:
 * manual placement far ahead; enabling migration does not help.
 */

#include "bench/common.hh"

using namespace ccnuma;
using bench::measureApp;

int
main()
{
    core::printHeader(
        "Table 3: data distribution strategies, 64 processors");
    struct Row {
        const char* app;
        std::uint64_t size;
        const char* label;
        int paper_manual, paper_rr, paper_rrmig;
    };
    const Row rows[] = {
        {"fft", 1u << 22, "FFT 2^22", 55, 26, 25},
        {"radix", 1u << 24, "Radix 16M", 38, 24, 25},
        {"ocean", 2050, "Ocean 2050^2", 64, 34, 33},
    };
    std::printf("%-14s %8s %8s %8s   (paper: %s)\n", "app", "manual",
                "rrobin", "rr+mig", "manual/rr/rr+mig");
    for (const Row& row : rows) {
        bench::SeqCache cache;
        double sp[3];
        for (int mode = 0; mode < 3; ++mode) {
            sim::MachineConfig cfg;
            cfg.placement = mode == 0 ? sim::Placement::Explicit
                                      : sim::Placement::RoundRobin;
            cfg.pageMigration = mode == 2;
            const auto mres =
                measureApp(row.app, row.size, 64, cache, cfg);
            sp[mode] = mres.speedup();
            std::fflush(stdout);
        }
        std::printf("%-14s %8.1f %8.1f %8.1f   (paper: %d/%d/%d)\n",
                    row.label, sp[0], sp[1], sp[2], row.paper_manual,
                    row.paper_rr, row.paper_rrmig);
    }
    return 0;
}
