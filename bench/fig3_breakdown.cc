/**
 * @file
 * Figure 3: average Busy / Memory / Synchronization execution-time
 * breakdown of 128-processor runs at the basic problem sizes. Paper
 * shape: memory stall dominates most applications; synchronization
 * (wait time) dominates Water-Spatial.
 *
 * With --json=FILE (or CCNUMA_JSON=FILE) the breakdown series and
 * counter totals are also dumped as JSON, so the perf trajectory can
 * be tracked across PRs (e.g. --json=BENCH_fig3.json).
 */

#include <cstring>

#include "bench/common.hh"
#include "core/metrics.hh"

using namespace ccnuma;
using bench::measureApp;

int
main(int argc, char** argv)
{
    std::string json_file;
    if (const char* env = std::getenv("CCNUMA_JSON"))
        json_file = env;
    for (int i = 1; i < argc; ++i)
        if (std::strncmp(argv[i], "--json=", 7) == 0)
            json_file = argv[i] + 7;
    core::MetricsSink sink(json_file);

    core::printHeader(
        "Figure 3: average 128-proc breakdown, basic problem sizes");
    for (const auto& name : apps::originalApps()) {
        sim::MachineConfig cfg;
        cfg.numProcs = 128;
        auto app = apps::makeApp(name, 0);
        const sim::RunResult r = core::runApp(cfg, *app);
        core::printBreakdown(name, r.breakdown());
        sink.add(name, r);
        std::fflush(stdout);
    }
    if (sink.enabled()) {
        if (sink.write())
            std::printf("wrote %s\n", json_file.c_str());
        else
            std::fprintf(stderr, "failed to write %s\n",
                         json_file.c_str());
    }
    return 0;
}
