/**
 * @file
 * Figure 3: average Busy / Memory / Synchronization execution-time
 * breakdown of 128-processor runs at the basic problem sizes. Paper
 * shape: memory stall dominates most applications; synchronization
 * (wait time) dominates Water-Spatial.
 */

#include "bench/common.hh"

using namespace ccnuma;
using bench::measureApp;

int
main()
{
    core::printHeader(
        "Figure 3: average 128-proc breakdown, basic problem sizes");
    for (const auto& name : apps::originalApps()) {
        sim::MachineConfig cfg;
        cfg.numProcs = 128;
        auto app = apps::makeApp(name, 0);
        const sim::RunResult r = core::runApp(cfg, *app);
        core::printBreakdown(name, r.breakdown());
        std::fflush(stdout);
    }
    return 0;
}
