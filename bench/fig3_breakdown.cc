/**
 * @file
 * Figure 3: average Busy / Memory / Synchronization execution-time
 * breakdown of 128-processor runs at the basic problem sizes. Paper
 * shape: memory stall dominates most applications; synchronization
 * (wait time) dominates Water-Spatial.
 *
 * The eleven application runs execute on the parallel StudyRunner:
 * pass --jobs=N (or CCNUMA_JOBS; 0 = one worker per host core) to
 * simulate N of them concurrently. Results are printed in the fixed
 * application order regardless of completion order.
 *
 * With --json=FILE (or CCNUMA_JSON=FILE) the breakdown series, counter
 * totals and engine timing are also dumped as JSON, so the perf
 * trajectory can be tracked across PRs (e.g. --json=BENCH_fig3.json).
 */

#include "bench/common.hh"
#include "core/cli.hh"
#include "core/metrics.hh"
#include "core/study_runner.hh"

using namespace ccnuma;

int
main(int argc, char** argv)
{
    const core::cli::Options opt = core::cli::parse(argc, argv);
    core::cli::warnUnknown(opt);
    core::MetricsSink sink(opt.jsonFile);

    core::StudyPlan plan;
    for (const auto& name : apps::originalApps())
        plan.addParallelOnly(name,
                             sim::MachineConfig::origin2000(128),
                             [name] { return apps::makeApp(name, 0); });

    core::StudyRunner runner({.jobs = opt.jobs, .progress = true});
    const core::StudyResult res = runner.run(plan);

    core::printHeader(
        "Figure 3: average 128-proc breakdown, basic problem sizes");
    for (const core::RunOutcome& r : res.runs) {
        if (!r.ok) {
            std::printf("%-24s FAILED: %s\n", r.name.c_str(),
                        r.error.c_str());
            continue;
        }
        core::printBreakdown(r.name, r.m.par.breakdown());
    }
    std::printf("%zu runs in %.1fs host wall-clock with %d jobs\n",
                res.runs.size(), res.wallSeconds, res.jobs);

    if (sink.enabled()) {
        res.emit(sink);
        if (sink.write())
            std::printf("wrote %s\n", opt.jsonFile.c_str());
        else
            std::fprintf(stderr, "failed to write %s\n",
                         opt.jsonFile.c_str());
    }
    return res.failures() ? 1 : 0;
}
