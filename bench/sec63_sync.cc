/**
 * @file
 * Section 6.3: at-memory fetch&op versus LL-SC synchronization, with
 * centralized and tournament barriers. Paper shape: neither the
 * primitive nor the barrier algorithm changes application performance
 * much, because imbalance (wait time) dominates the operation cost;
 * microbenchmarks do show fetch&op and tournament advantages.
 */

#include "bench/common.hh"
#include "sim/machine.hh"

using namespace ccnuma;
using namespace ccnuma::sim;
using bench::measureApp;

namespace {

/// Microbenchmark: time per barrier episode over `iters` barriers.
double
barrierMicro(SyncKind kind, BarrierAlg alg, int procs)
{
    MachineConfig cfg;
    cfg.numProcs = procs;
    cfg.syncKind = kind;
    cfg.barrierAlg = alg;
    Machine m(cfg);
    const BarrierId bar = m.barrierCreate();
    const int iters = 100;
    RunResult r = m.run([bar, iters](Cpu& cpu) -> Task {
        for (int i = 0; i < iters; ++i) {
            cpu.busy(50);
            co_await cpu.barrier(bar);
        }
        co_return;
    });
    return static_cast<double>(r.time) / iters;
}

/// Microbenchmark: contended lock throughput (cycles per acquire).
double
lockMicro(SyncKind kind, int procs)
{
    MachineConfig cfg;
    cfg.numProcs = procs;
    cfg.syncKind = kind;
    Machine m(cfg);
    const LockId lk = m.lockCreate();
    const int iters = 50;
    RunResult r = m.run([lk, iters](Cpu& cpu) -> Task {
        for (int i = 0; i < iters; ++i) {
            co_await cpu.acquire(lk);
            cpu.busy(20);
            cpu.release(lk);
            cpu.busy(100);
            co_await cpu.checkpoint();
        }
        co_return;
    });
    return static_cast<double>(r.time) / (iters * procs);
}

} // namespace

int
main()
{
    core::printHeader("Section 6.3 microbenchmarks");
    for (const int P : {32, 128}) {
        std::printf("P=%d\n", P);
        std::printf(
            "  barrier LLSC/tournament   %8.0f cycles/episode\n",
            barrierMicro(SyncKind::LLSC, BarrierAlg::Tournament, P));
        std::printf(
            "  barrier LLSC/centralized  %8.0f cycles/episode\n",
            barrierMicro(SyncKind::LLSC, BarrierAlg::Centralized, P));
        std::printf(
            "  barrier f&op/tournament   %8.0f cycles/episode\n",
            barrierMicro(SyncKind::FetchOp, BarrierAlg::Tournament, P));
        std::printf(
            "  barrier f&op/centralized  %8.0f cycles/episode\n",
            barrierMicro(SyncKind::FetchOp, BarrierAlg::Centralized,
                         P));
        std::printf("  lock LLSC (ticket)        %8.0f cycles/acquire\n",
                    lockMicro(SyncKind::LLSC, P));
        std::printf("  lock f&op (ticket)        %8.0f cycles/acquire\n",
                    lockMicro(SyncKind::FetchOp, P));
    }

    core::printHeader(
        "Section 6.3: application-level effect (128 procs)");
    std::printf("%-16s %16s %16s %10s\n", "app", "LLSC+tournament",
                "f&op+central", "delta");
    for (const char* app : {"water-spatial", "ocean", "barnes"}) {
        bench::SeqCache cache;
        sim::MachineConfig a;
        a.syncKind = SyncKind::LLSC;
        a.barrierAlg = BarrierAlg::Tournament;
        sim::MachineConfig b;
        b.syncKind = SyncKind::FetchOp;
        b.barrierAlg = BarrierAlg::Centralized;
        const auto ra = measureApp(app, 0, 128, cache, a, app);
        const auto rb = measureApp(app, 0, 128, cache, b, app);
        const double delta =
            (static_cast<double>(ra.parTime) - rb.parTime) /
            ra.parTime * 100.0;
        std::printf("%-16s %15.2fx %15.2fx %+9.1f%%\n", app,
                    ra.speedup(), rb.speedup(), delta);
        std::fflush(stdout);
    }
    std::printf("\n(paper: wait time dominates; the primitive makes "
                "little application-level difference)\n");
    return 0;
}
