/**
 * @file
 * Ablations of the machine-model design choices DESIGN.md calls out:
 *  - metarouter penalty: the paper's 64p experiments found metarouters
 *    *helped* FFT on large systems by spreading contention; we ablate
 *    the metarouter latency/occupancy on the 128p machine.
 *  - invalidation fan-out: cost of full-bit-vector invalidations as
 *    sharer counts grow.
 *  - Hub occupancy: the shared-Hub contention knob behind Section 7.2.
 */

#include "bench/common.hh"
#include "sim/machine.hh"

using namespace ccnuma;
using namespace ccnuma::sim;
using bench::measureApp;

namespace {

void
metaRouterAblation()
{
    core::printHeader("Ablation: metarouter penalty (FFT 2^20, 128p)");
    bench::SeqCache cache;
    for (const Cycles extra : {0u, 24u, 96u}) {
        MachineConfig cfg;
        cfg.metaRouterCycles = extra;
        cfg.metaRouterOccupancy = extra == 0 ? 0 : 5;
        const auto m = measureApp("fft", 1u << 20, 128, cache, cfg,
                                  "fft");
        std::printf("  metaRouterCycles=%-3llu speedup %6.1f\n",
                    static_cast<unsigned long long>(extra),
                    m.speedup());
        std::fflush(stdout);
    }
}

void
invalFanoutAblation()
{
    core::printHeader(
        "Ablation: invalidation fan-out (1 writer vs N readers)");
    for (const int readers : {1, 7, 31, 127}) {
        MachineConfig cfg;
        cfg.numProcs = 128;
        Machine m(cfg);
        const Addr a = m.alloc(4096);
        m.place(a, 4096, 0);
        const BarrierId bar = m.barrierCreate();
        RunResult r = m.run([=](Cpu& cpu) -> Task {
            if (cpu.id() > 0 && cpu.id() <= readers)
                cpu.read(a);
            co_await cpu.barrier(bar);
            if (cpu.id() == 0)
                cpu.write(a); // invalidates `readers` sharers
            co_return;
        });
        std::printf("  %3d sharers: writer stall %5llu cycles, "
                    "invals %llu\n",
                    readers,
                    static_cast<unsigned long long>(
                        r.procs[0].t.memStall),
                    static_cast<unsigned long long>(
                        r.totals().invalsSent));
        std::fflush(stdout);
    }
}

void
hubOccupancyAblation()
{
    core::printHeader(
        "Ablation: Hub occupancy (Sample sort 16M keys, 64p)");
    bench::SeqCache cache;
    for (const Cycles occ : {0u, 10u, 30u}) {
        MachineConfig cfg;
        cfg.hubOccupancy = occ;
        const auto m = measureApp("samplesort", 1u << 24, 64, cache,
                                  cfg, "samplesort");
        std::printf("  hubOccupancy=%-2llu speedup %6.1f\n",
                    static_cast<unsigned long long>(occ), m.speedup());
        std::fflush(stdout);
    }
}

} // namespace

namespace {

void
implicitTransposeAblation()
{
    core::printHeader(
        "Section 5.1: FFT implicit transpose (tried; paper: no help)");
    bench::SeqCache cache;
    for (const char* v : {"fft", "fft-implicit"}) {
        const auto m = measureApp(v, 1u << 20, 128, cache, {}, "fft");
        std::printf("  %-14s speedup %6.1f\n", v, m.speedup());
        std::fflush(stdout);
    }
}

} // namespace

int
main()
{
    implicitTransposeAblation();
    metaRouterAblation();
    invalFanoutAblation();
    hubOccupancyAblation();
    return 0;
}
