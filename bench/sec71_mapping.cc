/**
 * @file
 * Section 7.1: impact of mapping processes to the network topology.
 * Paper shapes: linear beats random consistently for Barnes (more for
 * small problems); near-neighbor pair mapping matters for Ocean mainly
 * at 128p (metarouters); FFT *prefers* transpose orderings where the
 * two processes on a node do not start transposing from each other --
 * staggered ordering beats unstaggered, and with staggering the
 * mapping itself matters little.
 */

#include "bench/common.hh"
#include "core/cli.hh"

using namespace ccnuma;
using bench::measureApp;

int
main(int argc, char** argv)
{
    // --seed / CCNUMA_SEED picks the permutation for the random and
    // paired-random mapping cases, so runs are reproducible.
    const core::cli::Options opt = core::cli::parse(argc, argv);
    core::cli::warnUnknown(opt);

    core::printHeader("Section 7.1: process-to-topology mapping");

    // Barnes: linear vs random mapping.
    std::printf("Barnes-Hut (16K bodies)\n");
    for (const int P : {64, 128}) {
        bench::SeqCache cache;
        sim::MachineConfig lin;
        lin.mapping = sim::Mapping::Linear;
        sim::MachineConfig rnd;
        rnd.mapping = sim::Mapping::Random;
        rnd.mappingSeed = opt.seed;
        const auto a = measureApp("barnes", 16384, P, cache, lin,
                                  "barnes");
        const auto b = measureApp("barnes", 16384, P, cache, rnd,
                                  "barnes");
        std::printf("  P=%-3d linear %.1f  random %.1f  (paper 128p: "
                    "14.7 vs 8.5 at 16K)\n",
                    P, a.speedup(), b.speedup());
        std::fflush(stdout);
    }

    // Ocean: near-neighbor (linear) vs paired-random vs random.
    std::printf("\nOcean (2050x2050)\n");
    for (const int P : {64, 128}) {
        bench::SeqCache cache;
        sim::MachineConfig lin;
        lin.mapping = sim::Mapping::Linear;
        sim::MachineConfig prnd;
        prnd.mapping = sim::Mapping::PairedRandom;
        prnd.mappingSeed = opt.seed;
        sim::MachineConfig rnd;
        rnd.mapping = sim::Mapping::Random;
        rnd.mappingSeed = opt.seed;
        const auto a = measureApp("ocean", 2050, P, cache, lin,
                                  "ocean");
        const auto b = measureApp("ocean", 2050, P, cache, prnd,
                                  "ocean");
        const auto c = measureApp("ocean", 2050, P, cache, rnd,
                                  "ocean");
        std::printf("  P=%-3d near-neighbor %.1f  paired-random %.1f  "
                    "random %.1f\n",
                    P, a.speedup(), b.speedup(), c.speedup());
        std::fflush(stdout);
    }

    // FFT: staggered vs unstaggered transpose x linear vs random.
    std::printf("\nFFT (2^20 points, 128 procs)\n");
    {
        bench::SeqCache cache;
        for (const char* app : {"fft", "fft-nostagger"}) {
            for (const auto mapping :
                 {sim::Mapping::Linear, sim::Mapping::Random}) {
                sim::MachineConfig cfg;
                cfg.mapping = mapping;
                cfg.mappingSeed = opt.seed;
                const auto mres =
                    measureApp(app, 1u << 20, 128, cache, cfg, "fft");
                std::printf("  %-14s %-7s speedup %.1f\n", app,
                            mapping == sim::Mapping::Linear ? "linear"
                                                            : "random",
                            mres.speedup());
                std::fflush(stdout);
            }
        }
    }
    std::printf("\n(paper: unstaggered+linear is the bad case -- both "
                "node processors start transposing from one node)\n");
    return 0;
}
