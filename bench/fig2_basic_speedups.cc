/**
 * @file
 * Figure 2: speedups of all applications at their basic problem sizes
 * on 32/64/96/128 processors. Paper shape: every application except
 * Raytrace stops scaling beyond ~64 processors.
 */

#include "bench/common.hh"

using namespace ccnuma;
using bench::measureApp;

int
main()
{
    core::printHeader("Figure 2: speedups at basic problem sizes");
    const std::vector<int> procs =
        bench::quickMode() ? std::vector<int>{32, 128}
                           : std::vector<int>{32, 64, 96, 128};

    std::printf("%-16s", "application");
    for (const int P : procs)
        std::printf("   P=%-4d", P);
    std::printf("   eff@128\n");

    bench::SeqCache cache;
    for (const auto& name : apps::originalApps()) {
        std::printf("%-16s", name.c_str());
        double eff_last = 0;
        for (const int P : procs) {
            const auto mres = measureApp(name, 0, P, cache);
            std::printf(" %8.1f", mres.speedup());
            eff_last = mres.efficiency();
            std::fflush(stdout);
        }
        std::printf("   %5.2f %s\n", eff_last,
                    eff_last >= core::kGoodEfficiency ? "(scales)"
                                                      : "");
    }
    std::printf("\n60%% parallel efficiency at 128 procs = speedup "
                "76.8 (the paper's 'scaling well' bar)\n");
    return 0;
}
