/**
 * @file
 * Figure 9: parallel efficiency versus problem size, original versus
 * restructured application versions. Paper shapes: the restructurings
 * give large wins at 128 processors -- Barnes (Spatial tree build),
 * Water-Nsquared (loop interchange: 60% from 8K molecules), Shear-Warp
 * (cross-phase locality), Infer (static within-clique), Sample sort
 * (bounded near 50% by the double local sort but far above Radix).
 */

#include "bench/common.hh"

using namespace ccnuma;
using bench::measureApp;

namespace {

struct Pair {
    const char* orig;
    const char* restr;
    std::vector<std::uint64_t> sizes;
    std::uint64_t cacheBytes = 0;
};

} // namespace

int
main()
{
    core::printHeader(
        "Figure 9: original vs restructured, efficiency at 128 procs");
    std::vector<Pair> pairs = {
        {"barnes", "barnes-spatial", {4096, 16384, 32768}, 0},
        {"water-nsq", "water-nsq-interchanged", {2048, 4096, 8192},
         512u << 10},
        {"shearwarp", "shearwarp-locality", {128, 192, 256}, 0},
        {"radix", "samplesort", {1u << 20, 1u << 22, 1u << 24}, 0},
        {"infer", "infer-static", {422}, 0},
    };
    const std::vector<int> procs =
        bench::quickMode() ? std::vector<int>{128}
                           : std::vector<int>{32, 128};

    for (const Pair& pr : pairs) {
        bench::SeqCache cache;
        std::vector<core::Series> series;
        for (const int P : procs) {
            series.push_back(
                {"orig P=" + std::to_string(P), {}, {}});
            series.push_back(
                {"restr P=" + std::to_string(P), {}, {}});
        }
        for (const std::uint64_t size : pr.sizes) {
            for (std::size_t i = 0; i < procs.size(); ++i) {
                sim::MachineConfig cfg;
                if (pr.cacheBytes)
                    cfg.cacheBytes = pr.cacheBytes;
                // Shared sequential baseline: the original program.
                const auto orig = measureApp(pr.orig, size, procs[i],
                                             cache, cfg, pr.orig);
                const auto restr = measureApp(pr.restr, size, procs[i],
                                              cache, cfg, pr.orig);
                series[2 * i].xs.push_back(std::to_string(size));
                series[2 * i].ys.push_back(orig.efficiency());
                series[2 * i + 1].xs.push_back(std::to_string(size));
                series[2 * i + 1].ys.push_back(restr.efficiency());
                std::fflush(stdout);
            }
        }
        std::printf("\n-- %s vs %s --\n", pr.orig, pr.restr);
        core::printSeries(apps::sizeUnit(pr.orig), series);
    }
    return 0;
}
