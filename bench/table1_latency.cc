/**
 * @file
 * Table 1: back-to-back memory latencies of the simulated machine, via
 * a pointer-chase microbenchmark, against the paper's Origin2000 row
 * (338 ns local, 656 ns remote clean, 892 ns remote dirty, ratios
 * 2:1 and 3:1).
 */

#include "bench/common.hh"
#include "sim/machine.hh"

using namespace ccnuma;
using namespace ccnuma::sim;

namespace {

/// Measure the average stall of `n` dependent misses with the given
/// setup: home node, and optionally a dirtying processor.
double
chase(NodeId home, ProcId dirtier, int lines)
{
    MachineConfig cfg;
    cfg.numProcs = 8;
    Machine m(cfg);
    const Addr a = m.alloc(static_cast<std::uint64_t>(lines) * 128);
    m.place(a, static_cast<std::uint64_t>(lines) * 128, home);
    const BarrierId bar = m.barrierCreate();
    RunResult r = m.run([=](Cpu& cpu) -> Task {
        if (cpu.id() == dirtier && dirtier != 0) {
            for (int i = 0; i < lines; ++i) {
                cpu.write(a + static_cast<Addr>(i) * 128);
                if (i % 16 == 0)
                    co_await cpu.checkpoint();
            }
        }
        co_await cpu.barrier(bar);
        if (cpu.id() == 0) {
            for (int i = 0; i < lines; ++i) {
                cpu.read(a + static_cast<Addr>(i) * 128);
                co_await cpu.checkpoint();
            }
        }
        co_return;
    });
    return static_cast<double>(r.procs[0].t.memStall) / lines *
           cfg.nsPerCycle();
}

} // namespace

int
main()
{
    core::printHeader(
        "Table 1: memory latencies (simulated vs paper Origin2000)");
    const int lines = 512;
    const double local = chase(0, 0, lines);       // home = own node
    const double clean = chase(1, 0, lines);       // nearest remote
    const double dirty = chase(1, 4, lines);       // dirty in 3rd node

    std::printf("%-28s %10s %10s\n", "latency", "simulated", "paper");
    std::printf("%-28s %8.0fns %8.0fns\n", "Local", local, 338.0);
    std::printf("%-28s %8.0fns %8.0fns\n", "Remote clean", clean, 656.0);
    std::printf("%-28s %8.0fns %8.0fns\n", "Remote dirty (3rd node)",
                dirty, 892.0);
    std::printf("%-28s %9.2f:1 %9.2f:1\n", "Remote/local (clean)",
                clean / local, 2.0);
    std::printf("%-28s %9.2f:1 %9.2f:1\n", "Remote/local (dirty)",
                dirty / local, 3.0);

    // Latency vs distance: farther routers and metarouter crossings.
    core::printHeader("Remote-clean latency vs distance (128p machine)");
    MachineConfig cfg;
    cfg.numProcs = 128;
    Machine m(cfg);
    for (NodeId to : {0, 1, 2, 6, 14, 16, 48}) {
        const Cycles c = m.mem().pureFetch(0, to);
        std::printf("  node 0 -> node %-3d  %4llu cycles  %6.0f ns%s\n",
                    to, static_cast<unsigned long long>(c),
                    c * cfg.nsPerCycle(),
                    to >= 16 ? "  (metarouter crossing)" : "");
    }
    return 0;
}
