/**
 * @file
 * Sequential sorting kernels: the radix-sort passes (histogram, scan,
 * permute) that SPLASH-2 Radix parallelizes, and the splitter logic of
 * sample sort (the paper's restructured sorting algorithm).
 */

#ifndef CCNUMA_KERNELS_SORT_HH
#define CCNUMA_KERNELS_SORT_HH

#include <cstdint>
#include <vector>

namespace ccnuma::kernels {

/// One radix pass: stable-permute `in` into `out` by the `bits`-wide
/// digit at bit offset `shift`. Returns the digit histogram.
std::vector<std::uint64_t> radixPass(const std::vector<std::uint32_t>& in,
                                     std::vector<std::uint32_t>& out,
                                     int shift, int bits);

/// Full LSD radix sort with `bits`-wide digits.
void radixSort(std::vector<std::uint32_t>& keys, int bits);

/// Choose p-1 splitters by regular sampling with oversampling factor s,
/// as in parallel sample sort. Returned splitters are sorted.
std::vector<std::uint32_t>
sampleSplitters(const std::vector<std::uint32_t>& keys, int parts,
                int oversample, std::uint64_t seed);

/// Bucket index of `key` under `splitters` (binary search).
int bucketOf(std::uint32_t key,
             const std::vector<std::uint32_t>& splitters);

/// Histogram of bucket sizes for `keys` under `splitters`.
std::vector<std::uint64_t>
bucketHistogram(const std::vector<std::uint32_t>& keys,
                const std::vector<std::uint32_t>& splitters);

/// Generate n uniform random keys (deterministic in seed).
std::vector<std::uint32_t> randomKeys(std::size_t n, std::uint64_t seed);

} // namespace ccnuma::kernels

#endif // CCNUMA_KERNELS_SORT_HH
