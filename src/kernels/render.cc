#include "kernels/render.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "sim/rng.hh"

namespace ccnuma::kernels {

Volume::Volume(int dim) : dim_(dim)
{
    data_.resize(static_cast<std::size_t>(dim) * dim * dim);
    const double c = (dim - 1) / 2.0;
    for (int z = 0; z < dim; ++z)
        for (int y = 0; y < dim; ++y)
            for (int x = 0; x < dim; ++x) {
                const double dx = (x - c) / c, dy = (y - c) / c,
                             dz = (z - c) / c;
                const double r = std::sqrt(dx * dx + dy * dy + dz * dz);
                // Nested shells: skin, skull, brain (head phantom).
                double d = 0;
                if (r < 0.9 && r > 0.85)
                    d = 0.35; // skin
                else if (r < 0.8 && r > 0.72)
                    d = 0.9; // skull
                else if (r < 0.6)
                    d = 0.15 + 0.1 * std::sin(8 * dx) *
                                   std::cos(8 * dy); // tissue
                data_[index(x, y, z)] =
                    static_cast<std::uint8_t>(std::clamp(d, 0.0, 1.0) *
                                              255.0);
            }
}

std::vector<float>
shearWarpComposite(const Volume& vol, double shear_x, double shear_y,
                   std::vector<std::uint32_t>& work_per_scanline)
{
    const int dim = vol.dim();
    std::vector<float> inter(static_cast<std::size_t>(dim) * dim, 0.0f);
    work_per_scanline.assign(dim, 0);
    for (int y = 0; y < dim; ++y) {
        for (int x = 0; x < dim; ++x) {
            float opacity = 0.0f;
            for (int z = 0; z < dim; ++z) {
                // Sheared resample coordinates.
                const int sx =
                    x + static_cast<int>(shear_x * z) % dim;
                const int sy =
                    y + static_cast<int>(shear_y * z) % dim;
                if (sx < 0 || sx >= dim || sy < 0 || sy >= dim)
                    continue;
                const float a = vol.density(sx, sy, z) / 255.0f * 0.25f;
                if (a <= 0.0f)
                    continue; // transparent: skipped by run-length
                opacity += (1.0f - opacity) * a;
                ++work_per_scanline[y];
                if (opacity > 0.95f)
                    break; // early ray termination
            }
            inter[static_cast<std::size_t>(y) * dim + x] = opacity;
        }
    }
    return inter;
}

std::vector<float>
warpImage(const std::vector<float>& intermediate, int dim, double angle)
{
    std::vector<float> final_(static_cast<std::size_t>(dim) * dim, 0.0f);
    const double c = (dim - 1) / 2.0;
    const double ca = std::cos(angle), sa = std::sin(angle);
    for (int y = 0; y < dim; ++y)
        for (int x = 0; x < dim; ++x) {
            // Inverse-rotate the final pixel into intermediate space.
            const double ix = ca * (x - c) + sa * (y - c) + c;
            const double iy = -sa * (x - c) + ca * (y - c) + c;
            const int xi = static_cast<int>(ix);
            const int yi = static_cast<int>(iy);
            if (xi < 0 || xi >= dim || yi < 0 || yi >= dim)
                continue;
            final_[static_cast<std::size_t>(y) * dim + x] =
                intermediate[static_cast<std::size_t>(yi) * dim + xi];
        }
    return final_;
}

std::vector<Sphere>
randomScene(int n, std::uint64_t seed)
{
    sim::Rng rng(seed);
    std::vector<Sphere> scene(n);
    for (auto& s : scene) {
        s.center = Vec3{rng.uniform() * 2 - 1, rng.uniform() * 2 - 1,
                        rng.uniform() * 2 - 1};
        s.radius = 0.05 + 0.15 * rng.uniform();
        s.reflect = rng.uniform() < 0.3 ? 0.6 : 0.0;
    }
    return scene;
}

namespace {

/// Ray-sphere intersection; returns t > eps or -1.
double
hitSphere(const Vec3& origin, const Vec3& dir, const Sphere& s)
{
    const Vec3 oc = origin - s.center;
    const double b = 2.0 * (oc.x * dir.x + oc.y * dir.y + oc.z * dir.z);
    const double cc = oc.norm2() - s.radius * s.radius;
    const double disc = b * b - 4 * cc;
    if (disc < 0)
        return -1;
    const double t = (-b - std::sqrt(disc)) / 2.0;
    return t > 1e-6 ? t : -1;
}

} // namespace

std::vector<std::uint32_t>
traceImage(const std::vector<Sphere>& scene, int side, int max_bounces,
           std::vector<float>* image)
{
    std::vector<std::uint32_t> work(
        static_cast<std::size_t>(side) * side, 0);
    if (image)
        image->assign(work.size(), 0.0f);
    for (int py = 0; py < side; ++py) {
        for (int px = 0; px < side; ++px) {
            Vec3 origin{2.0 * px / side - 1.0, 2.0 * py / side - 1.0,
                        -2.0};
            Vec3 dir{0, 0, 1};
            float shade = 0.0f, weight = 1.0f;
            std::uint32_t tests = 0;
            for (int bounce = 0; bounce <= max_bounces; ++bounce) {
                double best = 1e30;
                int hit = -1;
                for (std::size_t s = 0; s < scene.size(); ++s) {
                    ++tests;
                    const double t = hitSphere(origin, dir, scene[s]);
                    if (t > 0 && t < best) {
                        best = t;
                        hit = static_cast<int>(s);
                    }
                }
                if (hit < 0)
                    break;
                const Sphere& s = scene[hit];
                shade += weight * 0.7f;
                if (s.reflect <= 0)
                    break;
                weight *= static_cast<float>(s.reflect);
                origin += dir * best;
                const Vec3 n =
                    (origin - s.center) * (1.0 / s.radius);
                const double dn = 2 * (dir.x * n.x + dir.y * n.y +
                                       dir.z * n.z);
                dir -= n * dn;
            }
            work[static_cast<std::size_t>(py) * side + px] = tests;
            if (image)
                (*image)[static_cast<std::size_t>(py) * side + px] =
                    std::min(shade, 1.0f);
        }
    }
    return work;
}

} // namespace ccnuma::kernels
