/**
 * @file
 * Sequential FFT kernels: iterative radix-2 complex FFT, the blocked
 * sqrt(n) x sqrt(n) 2-D decomposition used by the SPLASH-2 FFT (and by
 * our simulated FFT application), and a naive DFT for verification.
 */

#ifndef CCNUMA_KERNELS_FFT_HH
#define CCNUMA_KERNELS_FFT_HH

#include <complex>
#include <cstdint>
#include <vector>

namespace ccnuma::kernels {

using Cplx = std::complex<double>;

/// In-place iterative radix-2 FFT. n must be a power of two.
void fft1d(Cplx* a, std::size_t n, bool inverse);

/// O(n^2) DFT reference for tests.
std::vector<Cplx> dftNaive(const std::vector<Cplx>& in, bool inverse);

/**
 * The six-step (transpose) FFT over a sqrt(n) x sqrt(n) matrix, exactly
 * the algorithm the SPLASH-2 FFT parallelizes:
 *   1. transpose, 2. row FFTs, 3. twiddle multiply, 4. transpose,
 *   5. row FFTs, 6. transpose.
 * `a` holds n = rows*rows elements in row-major order.
 */
void fftSixStep(Cplx* a, std::size_t rows, bool inverse);

/// Out-of-place blocked matrix transpose (b = a^T), rows x rows.
void transposeBlocked(const Cplx* a, Cplx* b, std::size_t rows,
                      std::size_t block);

/// Max |a[i] - b[i]| over two equal-length vectors.
double maxError(const std::vector<Cplx>& a, const std::vector<Cplx>& b);

} // namespace ccnuma::kernels

#endif // CCNUMA_KERNELS_FFT_HH
