#include "kernels/bayes.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "sim/rng.hh"

namespace ccnuma::kernels {

CliqueTree
randomTree(int n, int max_vars, std::uint64_t seed)
{
    assert(n >= 1);
    sim::Rng rng(seed);
    CliqueTree t;
    t.cliques.resize(n);
    for (int i = 0; i < n; ++i) {
        Clique& c = t.cliques[i];
        if (i > 0) {
            c.parent = static_cast<int>(rng.range(i));
            t.cliques[c.parent].children.push_back(i);
        }
        // Skewed sizes: mostly 2-4 variables, occasionally large.
        const double u = rng.uniform();
        c.vars = u > 0.95 ? max_vars
                 : u > 0.8 ? std::max(2, max_vars / 2)
                           : 2 + static_cast<int>(rng.range(3));
        c.vars = std::min(c.vars, max_vars);
        c.table.resize(1u << c.vars);
        for (auto& v : c.table)
            v = 0.1 + rng.uniform();
        t.order.push_back(i); // construction order is topological
    }
    return t;
}

namespace {

/// Marginalize `from`'s table down to a scalar per shared "interface":
/// we model the interface as the low bit of the child table, a faithful
/// cost model of table marginalization with exact arithmetic.
void
sendUp(Clique& child, Clique& parent)
{
    double m0 = 0, m1 = 0;
    for (std::size_t i = 0; i < child.table.size(); ++i)
        (i & 1 ? m1 : m0) += child.table[i];
    for (std::size_t i = 0; i < parent.table.size(); ++i)
        parent.table[i] *= (i & 1 ? m1 : m0);
}

void
sendDown(Clique& parent, Clique& child)
{
    double m0 = 0, m1 = 0;
    for (std::size_t i = 0; i < parent.table.size(); ++i)
        (i & 1 ? m1 : m0) += parent.table[i];
    const double norm = m0 + m1;
    if (norm <= 0)
        return;
    for (std::size_t i = 0; i < child.table.size(); ++i)
        child.table[i] *= (i & 1 ? m1 : m0) / norm;
}

} // namespace

double
propagate(CliqueTree& tree)
{
    // Collect: children before parents.
    for (auto it = tree.order.rbegin(); it != tree.order.rend(); ++it) {
        const int c = *it;
        const int p = tree.cliques[c].parent;
        if (p >= 0)
            sendUp(tree.cliques[c], tree.cliques[p]);
    }
    // Distribute: parents before children.
    for (const int p : tree.order)
        for (const int c : tree.cliques[p].children)
            sendDown(tree.cliques[p], tree.cliques[c]);
    double z = 0;
    for (const double v : tree.cliques[0].table)
        z += v;
    return z;
}

std::uint64_t
propagationCost(const CliqueTree& tree)
{
    std::uint64_t cost = 0;
    for (const auto& c : tree.cliques)
        cost += 2 * c.cost();
    return cost;
}

} // namespace ccnuma::kernels
