#include "kernels/fft.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace ccnuma::kernels {

void
fft1d(Cplx* a, std::size_t n, bool inverse)
{
    if (n == 0 || (n & (n - 1)) != 0)
        throw std::invalid_argument("fft1d: n must be a power of two");
    // Bit-reversal permutation.
    for (std::size_t i = 1, j = 0; i < n; ++i) {
        std::size_t bit = n >> 1;
        for (; j & bit; bit >>= 1)
            j ^= bit;
        j ^= bit;
        if (i < j)
            std::swap(a[i], a[j]);
    }
    const double sign = inverse ? 1.0 : -1.0;
    for (std::size_t len = 2; len <= n; len <<= 1) {
        const double ang = sign * 2.0 * std::numbers::pi / len;
        const Cplx wlen(std::cos(ang), std::sin(ang));
        for (std::size_t i = 0; i < n; i += len) {
            Cplx w(1.0, 0.0);
            for (std::size_t k = 0; k < len / 2; ++k) {
                const Cplx u = a[i + k];
                const Cplx v = a[i + k + len / 2] * w;
                a[i + k] = u + v;
                a[i + k + len / 2] = u - v;
                w *= wlen;
            }
        }
    }
    if (inverse)
        for (std::size_t i = 0; i < n; ++i)
            a[i] /= static_cast<double>(n);
}

std::vector<Cplx>
dftNaive(const std::vector<Cplx>& in, bool inverse)
{
    const std::size_t n = in.size();
    std::vector<Cplx> out(n);
    const double sign = inverse ? 1.0 : -1.0;
    for (std::size_t k = 0; k < n; ++k) {
        Cplx sum(0.0, 0.0);
        for (std::size_t t = 0; t < n; ++t) {
            const double ang = sign * 2.0 * std::numbers::pi *
                               static_cast<double>(k) *
                               static_cast<double>(t) / n;
            sum += in[t] * Cplx(std::cos(ang), std::sin(ang));
        }
        out[k] = inverse ? sum / static_cast<double>(n) : sum;
    }
    return out;
}

void
transposeBlocked(const Cplx* a, Cplx* b, std::size_t rows,
                 std::size_t block)
{
    assert(block > 0);
    for (std::size_t bi = 0; bi < rows; bi += block)
        for (std::size_t bj = 0; bj < rows; bj += block)
            for (std::size_t i = bi; i < std::min(bi + block, rows); ++i)
                for (std::size_t j = bj; j < std::min(bj + block, rows);
                     ++j)
                    b[j * rows + i] = a[i * rows + j];
}

void
fftSixStep(Cplx* a, std::size_t rows, bool inverse)
{
    const std::size_t n = rows * rows;
    std::vector<Cplx> tmp(n);
    const double sign = inverse ? 1.0 : -1.0;

    // 1. transpose
    transposeBlocked(a, tmp.data(), rows, 8);
    // 2. FFT each row of the transpose
    for (std::size_t r = 0; r < rows; ++r)
        fft1d(tmp.data() + r * rows, rows, inverse);
    // 3. twiddle: tmp[r][c] *= W_n^(r*c)
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t c = 0; c < rows; ++c) {
            const double ang = sign * 2.0 * std::numbers::pi *
                               static_cast<double>(r) *
                               static_cast<double>(c) / n;
            tmp[r * rows + c] *= Cplx(std::cos(ang), std::sin(ang));
        }
    // 4. transpose
    transposeBlocked(tmp.data(), a, rows, 8);
    // 5. FFT each row
    for (std::size_t r = 0; r < rows; ++r)
        fft1d(a + r * rows, rows, inverse);
    // 6. transpose
    transposeBlocked(a, tmp.data(), rows, 8);
    std::copy(tmp.begin(), tmp.end(), a);
    if (inverse) {
        // fft1d already divided by `rows` twice (= n); nothing more.
    }
}

double
maxError(const std::vector<Cplx>& a, const std::vector<Cplx>& b)
{
    double e = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        e = std::max(e, std::abs(a[i] - b[i]));
    return e;
}

} // namespace ccnuma::kernels
