#include "kernels/protein.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "sim/rng.hh"

namespace ccnuma::kernels {

std::uint64_t
ProteinTree::totalWork() const
{
    std::uint64_t w = 0;
    for (const auto& n : nodes)
        w += n.work;
    return w;
}

ProteinTree
helixTree(int leaves, std::uint64_t work_per_leaf, std::uint64_t seed)
{
    assert(leaves >= 1);
    sim::Rng rng(seed);
    ProteinTree t;
    // Build bottom-up: leaves, then pairwise merge nodes to the root.
    // We construct top-down with node 0 as root for stable indices.
    struct Pending {
        int node;
        int span;
    };
    t.nodes.push_back(ProteinNode{});
    std::vector<Pending> stack{{0, leaves}};
    while (!stack.empty()) {
        const Pending cur = stack.back();
        stack.pop_back();
        ProteinNode& n = t.nodes[cur.node];
        // Work grows with span: merging larger substructures costs more.
        const double skew = 0.6 + 0.8 * rng.uniform();
        n.work = static_cast<std::uint64_t>(
            work_per_leaf * cur.span * skew);
        n.estimate = static_cast<std::uint64_t>(
            n.work * (0.7 + 0.6 * rng.uniform())); // noisy estimate
        if (cur.span <= 1)
            continue;
        const int left_span = cur.span / 2;
        // push_back below may reallocate and invalidate `n`.
        const int child_depth = n.depth + 1;
        for (const int span : {left_span, cur.span - left_span}) {
            ProteinNode child;
            child.parent = cur.node;
            child.depth = child_depth;
            t.nodes.push_back(child);
            const int ci = static_cast<int>(t.nodes.size()) - 1;
            t.nodes[cur.node].children.push_back(ci);
            stack.push_back({ci, span});
        }
    }
    t.order.resize(t.nodes.size());
    for (std::size_t i = 0; i < t.order.size(); ++i)
        t.order[i] = static_cast<int>(i); // construction is topological
    return t;
}

std::vector<int>
staticGroups(const ProteinTree& tree, int nprocs)
{
    const auto& root = tree.nodes[0];
    if (root.children.empty())
        return {nprocs};
    // Subtree estimate sums.
    std::vector<std::uint64_t> est(tree.nodes.size(), 0);
    for (auto it = tree.order.rbegin(); it != tree.order.rend(); ++it) {
        est[*it] += tree.nodes[*it].estimate;
        const int p = tree.nodes[*it].parent;
        if (p >= 0)
            est[p] += est[*it];
    }
    std::uint64_t total = 0;
    for (const int c : root.children)
        total += est[c];
    std::vector<int> groups(root.children.size(), 1);
    int assigned = static_cast<int>(root.children.size());
    assert(assigned <= nprocs && "need at least one proc per subtree");
    for (std::size_t i = 0; i < root.children.size(); ++i) {
        const int extra = static_cast<int>(
            static_cast<double>(est[root.children[i]]) / total *
            (nprocs - static_cast<int>(root.children.size())));
        groups[i] += extra;
        assigned += extra;
    }
    // Distribute rounding leftovers to the largest subtrees.
    std::vector<std::size_t> by_est(root.children.size());
    for (std::size_t i = 0; i < by_est.size(); ++i)
        by_est[i] = i;
    std::sort(by_est.begin(), by_est.end(), [&](auto a, auto b) {
        return est[root.children[a]] > est[root.children[b]];
    });
    for (std::size_t i = 0; assigned < nprocs; ++i, ++assigned)
        ++groups[by_est[i % by_est.size()]];
    return groups;
}

double
criticalPathMakespan(const ProteinTree& tree, int nprocs)
{
    // Level-by-level: nodes at the same depth run in parallel across
    // all processors; a node's own work is perfectly parallelizable.
    // Makespan >= max(total/P, critical path of per-level maxima / P')
    // -- we use the simple greedy lower bound per level.
    int max_depth = 0;
    for (const auto& n : tree.nodes)
        max_depth = std::max(max_depth, n.depth);
    double makespan = 0;
    for (int d = max_depth; d >= 0; --d) {
        std::uint64_t level_work = 0;
        for (const auto& n : tree.nodes)
            if (n.depth == d)
                level_work += n.work;
        makespan += static_cast<double>(level_work) / nprocs;
    }
    return makespan;
}

} // namespace ccnuma::kernels
