#include "kernels/stencil.hh"

#include <algorithm>
#include <cmath>

namespace ccnuma::kernels {

Grid::Grid(std::size_t n, double boundary)
    : n_(n), stride_(n + 2), v_((n + 2) * (n + 2), 0.0)
{
    for (std::size_t k = 0; k < n + 2; ++k) {
        at(0, k) = boundary;
        at(n + 1, k) = boundary;
        at(k, 0) = boundary;
        at(k, n + 1) = boundary;
    }
}

double
rbSweep(Grid& g, double omega)
{
    double maxd = 0.0;
    const std::size_t n = g.n();
    for (int color = 0; color < 2; ++color) {
        for (std::size_t i = 1; i <= n; ++i) {
            for (std::size_t j = 1 + ((i + color) & 1); j <= n; j += 2) {
                const double nb = g.at(i - 1, j) + g.at(i + 1, j) +
                                  g.at(i, j - 1) + g.at(i, j + 1);
                const double nv = (1.0 - omega) * g.at(i, j) +
                                  omega * 0.25 * nb;
                maxd = std::max(maxd, std::abs(nv - g.at(i, j)));
                g.at(i, j) = nv;
            }
        }
    }
    return maxd;
}

int
sorSolve(Grid& g, double omega, double tol, int max_iters)
{
    for (int it = 1; it <= max_iters; ++it)
        if (rbSweep(g, omega) < tol)
            return it;
    return max_iters;
}

double
laplaceResidual(const Grid& g)
{
    double r = 0.0;
    const std::size_t n = g.n();
    for (std::size_t i = 1; i <= n; ++i)
        for (std::size_t j = 1; j <= n; ++j) {
            const double lap = g.at(i - 1, j) + g.at(i + 1, j) +
                               g.at(i, j - 1) + g.at(i, j + 1) -
                               4.0 * g.at(i, j);
            r = std::max(r, std::abs(lap));
        }
    return r;
}

} // namespace ccnuma::kernels
