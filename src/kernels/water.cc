#include "kernels/water.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "sim/rng.hh"

namespace ccnuma::kernels {

std::vector<Molecule>
latticeMolecules(std::size_t n, double box, std::uint64_t seed)
{
    sim::Rng rng(seed);
    std::vector<Molecule> mols(n);
    const auto side = static_cast<std::size_t>(
        std::ceil(std::cbrt(static_cast<double>(n))));
    const double spacing = box / static_cast<double>(side);
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t x = i % side;
        const std::size_t y = (i / side) % side;
        const std::size_t z = i / (side * side);
        auto jitter = [&] { return (rng.uniform() - 0.5) * 0.2 * spacing; };
        mols[i].pos = Vec3{(x + 0.5) * spacing + jitter(),
                           (y + 0.5) * spacing + jitter(),
                           (z + 0.5) * spacing + jitter()};
        auto wrap = [&](double v) {
            v = std::fmod(v, box);
            return v < 0 ? v + box : v;
        };
        mols[i].pos = Vec3{wrap(mols[i].pos.x), wrap(mols[i].pos.y),
                           wrap(mols[i].pos.z)};
    }
    return mols;
}

double
ljPotential(double r2)
{
    const double inv2 = 1.0 / r2;
    const double inv6 = inv2 * inv2 * inv2;
    return 4.0 * (inv6 * inv6 - inv6);
}

namespace {

/// Minimum-image displacement b - a in a periodic box.
Vec3
minImage(const Vec3& a, const Vec3& b, double box)
{
    auto mi = [box](double d) {
        if (d > 0.5 * box)
            d -= box;
        else if (d < -0.5 * box)
            d += box;
        return d;
    };
    return Vec3{mi(b.x - a.x), mi(b.y - a.y), mi(b.z - a.z)};
}

/// Accumulate the LJ pair interaction i<->j; returns pair energy.
double
pairInteract(Molecule& mi_, Molecule& mj, const Vec3& d)
{
    const double r2 = std::max(d.norm2(), 1e-6);
    const double inv2 = 1.0 / r2;
    const double inv6 = inv2 * inv2 * inv2;
    // F = 24 (2 inv12 - inv6) / r^2 * d
    const double fmag = 24.0 * (2.0 * inv6 * inv6 - inv6) * inv2;
    mi_.force -= d * fmag;
    mj.force += d * fmag;
    return 4.0 * (inv6 * inv6 - inv6);
}

} // namespace

double
forcesNsquared(std::vector<Molecule>& mols, double box, double cutoff)
{
    const double c2 = cutoff * cutoff;
    double energy = 0;
    const std::size_t n = mols.size();
    // SPLASH-2 Water-Nsquared: each molecule interacts with the n/2
    // following molecules (each pair counted exactly once).
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t k = 1; k <= n / 2; ++k) {
            const std::size_t j = (i + k) % n;
            if (n % 2 == 0 && k == n / 2 && i >= n / 2)
                continue; // avoid double-counting antipodal pairs
            const Vec3 d = minImage(mols[i].pos, mols[j].pos, box);
            if (d.norm2() < c2)
                energy += pairInteract(mols[i], mols[j], d);
        }
    }
    return energy;
}

CellList::CellList(const std::vector<Molecule>& mols, double box,
                   double cell_size)
    : dim_(std::max(1, static_cast<int>(box / cell_size))),
      box_(box),
      inv_(dim_ / box)
{
    members_.resize(static_cast<std::size_t>(dim_) * dim_ * dim_);
    for (std::size_t i = 0; i < mols.size(); ++i)
        members_[cellOf(mols[i].pos)].push_back(static_cast<int>(i));
}

int
CellList::cellOf(const Vec3& p) const
{
    auto idx = [this](double v) {
        int k = static_cast<int>(v * inv_);
        return std::clamp(k, 0, dim_ - 1);
    };
    return (idx(p.z) * dim_ + idx(p.y)) * dim_ + idx(p.x);
}

std::vector<int>
CellList::neighbors(int cell) const
{
    const int x = cell % dim_;
    const int y = (cell / dim_) % dim_;
    const int z = cell / (dim_ * dim_);
    std::vector<int> out;
    out.reserve(27);
    for (int dz = -1; dz <= 1; ++dz)
        for (int dy = -1; dy <= 1; ++dy)
            for (int dx = -1; dx <= 1; ++dx) {
                const int nx = (x + dx + dim_) % dim_;
                const int ny = (y + dy + dim_) % dim_;
                const int nz = (z + dz + dim_) % dim_;
                const int c = (nz * dim_ + ny) * dim_ + nx;
                if (std::find(out.begin(), out.end(), c) == out.end())
                    out.push_back(c);
            }
    return out;
}

double
forcesSpatial(std::vector<Molecule>& mols, double box, double cutoff,
              double cell_size)
{
    assert(cell_size >= cutoff);
    const CellList cl(mols, box, cell_size);
    const double c2 = cutoff * cutoff;
    double energy = 0;
    const int ncells = cl.cellsPerDim() * cl.cellsPerDim() *
                       cl.cellsPerDim();
    for (int c = 0; c < ncells; ++c) {
        for (const int nb : cl.neighbors(c)) {
            for (const int i : cl.members(c)) {
                for (const int j : cl.members(nb)) {
                    if (j <= i)
                        continue; // each pair once
                    const Vec3 d =
                        minImage(mols[i].pos, mols[j].pos, box);
                    if (d.norm2() < c2)
                        energy += pairInteract(mols[i], mols[j], d);
                }
            }
        }
    }
    return energy;
}

double
netForceError(const std::vector<Molecule>& mols)
{
    Vec3 net;
    for (const auto& m : mols)
        net += m.force;
    return std::max({std::abs(net.x), std::abs(net.y), std::abs(net.z)});
}

} // namespace ccnuma::kernels
