/**
 * @file
 * Red-black SOR solver on a 2-D grid: the computational core of the
 * Ocean application (SPLASH-2 Ocean runs a multigrid solver; its
 * communication structure is the same nearest-neighbor stencil).
 */

#ifndef CCNUMA_KERNELS_STENCIL_HH
#define CCNUMA_KERNELS_STENCIL_HH

#include <cstdint>
#include <vector>

namespace ccnuma::kernels {

/** A square grid with fixed boundary values. */
class Grid
{
  public:
    /// n x n interior plus boundary ring; boundary initialized to
    /// `boundary`, interior to zero.
    Grid(std::size_t n, double boundary);

    double& at(std::size_t i, std::size_t j)
    {
        return v_[i * stride_ + j];
    }
    double at(std::size_t i, std::size_t j) const
    {
        return v_[i * stride_ + j];
    }
    std::size_t n() const { return n_; }

  private:
    std::size_t n_;
    std::size_t stride_;
    std::vector<double> v_;
};

/// One red-black Gauss-Seidel sweep (both colors) with relaxation
/// factor omega; returns the max update delta.
double rbSweep(Grid& g, double omega);

/// Iterate rbSweep until the delta falls below tol or maxIters.
/// @return iterations executed.
int sorSolve(Grid& g, double omega, double tol, int max_iters);

/// Residual of the Laplace equation over the interior (max norm).
double laplaceResidual(const Grid& g);

} // namespace ccnuma::kernels

#endif // CCNUMA_KERNELS_STENCIL_HH
