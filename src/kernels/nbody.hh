/**
 * @file
 * Barnes-Hut N-body kernels: octree construction, center-of-mass
 * moments, force evaluation with the opening-angle criterion, body
 * generators and the space/cost partitioning helpers that the three
 * parallel tree-build strategies of the paper rely on (original locked
 * insertion, MergeTree, Spatial supertree).
 */

#ifndef CCNUMA_KERNELS_NBODY_HH
#define CCNUMA_KERNELS_NBODY_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "kernels/geom.hh"

namespace ccnuma::kernels {

struct Body {
    Vec3 pos;
    double mass = 1.0;
    Vec3 acc;
};

/** One octree cell; leaves hold a single body index. */
struct Cell {
    Vec3 center;
    double half = 0;        ///< Half the cell's side length.
    int child[8] = {-1, -1, -1, -1, -1, -1, -1, -1};
    int body = -1;          ///< Body index if this is a leaf.
    int parent = -1;
    double mass = 0;
    Vec3 com;
    bool isLeaf() const { return child[0] == -1 && body >= 0; }
    bool isEmptyLeaf() const
    {
        return child[0] == -1 && body == -1;
    }
};

/**
 * Sequential Barnes-Hut octree. Exposes the per-body insertion paths
 * and force-traversal visit sequences the simulator skeletons replay.
 */
class Octree
{
  public:
    /// Build over all bodies; the root covers [-half, half]^3.
    Octree(const std::vector<Body>& bodies, double half);

    /// Nodes visited when body b was inserted (root..final cell).
    const std::vector<int>& insertPath(int b) const
    {
        return paths_[b];
    }

    /// Bottom-up center-of-mass / total-mass computation.
    void computeMoments(const std::vector<Body>& bodies);

    /// Barnes-Hut force on body b with opening angle theta. Calls
    /// `visit(cellIdx)` for every cell examined; returns the number of
    /// body-cell interactions evaluated, accumulating into acc.
    int force(std::vector<Body>& bodies, int b, double theta,
              const std::function<void(int)>& visit);

    const std::vector<Cell>& cells() const { return cells_; }
    int root() const { return 0; }
    int depthOf(int cell) const;
    /// Body whose insertion created this cell (-1 for the root); the
    /// parallel tree-build skeletons use this to know which insertions
    /// write which cells.
    int creatorOf(int cell) const { return creator_[cell]; }

  private:
    int makeCell(Vec3 center, double half, int parent);
    int childIndexFor(const Cell& c, const Vec3& p) const;
    void insert(const std::vector<Body>& bodies, int b);

    std::vector<Cell> cells_;
    std::vector<std::vector<int>> paths_;
    std::vector<int> creator_;
    int curInserting_ = -1;
};

/// Plummer-like clustered distribution in [-1,1]^3 (deterministic).
std::vector<Body> plummerBodies(std::size_t n, std::uint64_t seed);

/// Uniform distribution in [-1,1]^3 (deterministic).
std::vector<Body> uniformBodies(std::size_t n, std::uint64_t seed);

/// 3-D Morton (Z-order) key of a position within [-half, half]^3,
/// `bitsPerDim` bits per dimension.
std::uint64_t mortonKey(const Vec3& p, double half, int bits_per_dim);

/// Order body indices by Morton key: the spatially-contiguous
/// assignment used for partitioning bodies among processors.
std::vector<int> mortonOrder(const std::vector<Body>& bodies,
                             double half);

/// Split an ordered body list into `parts` contiguous chunks with
/// approximately equal total `cost`; returns the start index of each
/// chunk (size parts+1, costzones-style partitioning).
std::vector<std::size_t>
costzoneSplit(const std::vector<double>& cost_in_order, int parts);

} // namespace ccnuma::kernels

#endif // CCNUMA_KERNELS_NBODY_HH
