/**
 * @file
 * Minimal 3-D vector used by the N-body and molecular-dynamics kernels.
 */

#ifndef CCNUMA_KERNELS_GEOM_HH
#define CCNUMA_KERNELS_GEOM_HH

#include <cmath>

namespace ccnuma::kernels {

struct Vec3 {
    double x = 0, y = 0, z = 0;

    Vec3& operator+=(const Vec3& o)
    {
        x += o.x;
        y += o.y;
        z += o.z;
        return *this;
    }
    Vec3& operator-=(const Vec3& o)
    {
        x -= o.x;
        y -= o.y;
        z -= o.z;
        return *this;
    }
    Vec3& operator*=(double s)
    {
        x *= s;
        y *= s;
        z *= s;
        return *this;
    }
    friend Vec3 operator+(Vec3 a, const Vec3& b) { return a += b; }
    friend Vec3 operator-(Vec3 a, const Vec3& b) { return a -= b; }
    friend Vec3 operator*(Vec3 a, double s) { return a *= s; }

    double norm2() const { return x * x + y * y + z * z; }
    double norm() const { return std::sqrt(norm2()); }
};

} // namespace ccnuma::kernels

#endif // CCNUMA_KERNELS_GEOM_HH
