/**
 * @file
 * Rendering kernels for the three graphics workloads:
 *  - a procedural "head" volume (density phantom) shared by Volrend and
 *    Shear-Warp;
 *  - shear-warp compositing/warp math with per-scanline work profiles
 *    and run-length early termination (Lacroute's algorithm);
 *  - a small sphere-scene raytracer with per-tile cost profiles
 *    (Raytrace's workload shape).
 */

#ifndef CCNUMA_KERNELS_RENDER_HH
#define CCNUMA_KERNELS_RENDER_HH

#include <cstdint>
#include <vector>

#include "kernels/geom.hh"

namespace ccnuma::kernels {

/** Procedural density volume of side `dim` (a nested-shells phantom). */
class Volume
{
  public:
    explicit Volume(int dim);

    int dim() const { return dim_; }
    std::uint8_t density(int x, int y, int z) const
    {
        return data_[(static_cast<std::size_t>(z) * dim_ + y) * dim_ + x];
    }
    /// Linear voxel index (for address mapping in the skeletons).
    std::size_t index(int x, int y, int z) const
    {
        return (static_cast<std::size_t>(z) * dim_ + y) * dim_ + x;
    }
    std::size_t voxels() const { return data_.size(); }

  private:
    int dim_;
    std::vector<std::uint8_t> data_;
};

/**
 * Shear-warp compositing of one frame along +z.
 *
 * Returns the intermediate image (dim x dim opacities in [0,1]) and
 * fills `work_per_scanline` with the number of voxels actually
 * composited per intermediate-image scanline (early ray termination
 * makes this non-uniform -- the load-balance profile the restructured
 * algorithm uses).
 */
std::vector<float>
shearWarpComposite(const Volume& vol, double shear_x, double shear_y,
                   std::vector<std::uint32_t>& work_per_scanline);

/// Warp the intermediate image into a final image of the same size with
/// a small rotation; returns the final image.
std::vector<float> warpImage(const std::vector<float>& intermediate,
                             int dim, double angle);

/** A sphere for the mini raytracer. */
struct Sphere {
    Vec3 center;
    double radius = 1.0;
    double reflect = 0.0;
};

/// Deterministic random scene of `n` spheres in [-1,1]^3.
std::vector<Sphere> randomScene(int n, std::uint64_t seed);

/// Trace an orthographic image of `side`^2 pixels over the scene;
/// returns per-pixel intersection-test counts (the workload profile)
/// and writes shading values into `image` when non-null.
std::vector<std::uint32_t> traceImage(const std::vector<Sphere>& scene,
                                      int side, int max_bounces,
                                      std::vector<float>* image);

} // namespace ccnuma::kernels

#endif // CCNUMA_KERNELS_RENDER_HH
