/**
 * @file
 * Workload model for the Protein application (hierarchical protein
 * structure determination): a dependency tree of substructure nodes
 * with estimated workloads, static processor-group assignment, and the
 * paper's "process regrouping" dynamic load-balancing schedule.
 */

#ifndef CCNUMA_KERNELS_PROTEIN_HH
#define CCNUMA_KERNELS_PROTEIN_HH

#include <cstdint>
#include <vector>

namespace ccnuma::kernels {

/** One substructure node in the refinement hierarchy. */
struct ProteinNode {
    int parent = -1;
    std::vector<int> children;
    std::uint64_t work = 0;       ///< Parallelizable work units.
    std::uint64_t estimate = 0;   ///< A-priori (noisy) estimate.
    int depth = 0;
};

/** The refinement hierarchy for a helixN-style problem. */
struct ProteinTree {
    std::vector<ProteinNode> nodes; ///< Node 0 is the root.
    std::vector<int> order;         ///< Topological (parents first).
    std::uint64_t totalWork() const;
};

/// Build a binary-ish hierarchy over `leaves` base segments (helix16
/// -> 16 leaves), with noisy work estimates.
ProteinTree helixTree(int leaves, std::uint64_t work_per_leaf,
                      std::uint64_t seed);

/**
 * Static group assignment: split `nprocs` processors into groups
 * proportional to each *ready* subtree's estimated workload. Returns
 * group sizes per top-level subtree (>=1 each, summing to nprocs).
 */
std::vector<int> staticGroups(const ProteinTree& tree, int nprocs);

/// Ideal (fully balanced) makespan of the tree on nprocs processors,
/// respecting parent-after-children dependencies; used as the
/// load-balance reference in tests.
double criticalPathMakespan(const ProteinTree& tree, int nprocs);

} // namespace ccnuma::kernels

#endif // CCNUMA_KERNELS_PROTEIN_HH
