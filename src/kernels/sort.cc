#include "kernels/sort.hh"

#include <algorithm>
#include <cassert>

#include "sim/rng.hh"

namespace ccnuma::kernels {

std::vector<std::uint64_t>
radixPass(const std::vector<std::uint32_t>& in,
          std::vector<std::uint32_t>& out, int shift, int bits)
{
    const std::uint32_t mask = (1u << bits) - 1;
    std::vector<std::uint64_t> hist(1u << bits, 0);
    for (const std::uint32_t k : in)
        ++hist[(k >> shift) & mask];
    std::vector<std::uint64_t> offset(1u << bits, 0);
    for (std::size_t d = 1; d < offset.size(); ++d)
        offset[d] = offset[d - 1] + hist[d - 1];
    out.resize(in.size());
    for (const std::uint32_t k : in)
        out[offset[(k >> shift) & mask]++] = k;
    return hist;
}

void
radixSort(std::vector<std::uint32_t>& keys, int bits)
{
    assert(bits > 0 && bits <= 16);
    std::vector<std::uint32_t> tmp;
    for (int shift = 0; shift < 32; shift += bits) {
        radixPass(keys, tmp, shift, bits);
        keys.swap(tmp);
    }
}

std::vector<std::uint32_t>
sampleSplitters(const std::vector<std::uint32_t>& keys, int parts,
                int oversample, std::uint64_t seed)
{
    assert(parts >= 1);
    if (parts == 1 || keys.empty())
        return {};
    sim::Rng rng(seed);
    std::vector<std::uint32_t> sample;
    const std::size_t want =
        std::min(keys.size(),
                 static_cast<std::size_t>(parts) * oversample);
    sample.reserve(want);
    for (std::size_t i = 0; i < want; ++i)
        sample.push_back(keys[rng.range(keys.size())]);
    std::sort(sample.begin(), sample.end());
    std::vector<std::uint32_t> splitters;
    splitters.reserve(parts - 1);
    for (int s = 1; s < parts; ++s)
        splitters.push_back(
            sample[s * sample.size() / parts]);
    return splitters;
}

int
bucketOf(std::uint32_t key, const std::vector<std::uint32_t>& splitters)
{
    return static_cast<int>(
        std::upper_bound(splitters.begin(), splitters.end(), key) -
        splitters.begin());
}

std::vector<std::uint64_t>
bucketHistogram(const std::vector<std::uint32_t>& keys,
                const std::vector<std::uint32_t>& splitters)
{
    std::vector<std::uint64_t> hist(splitters.size() + 1, 0);
    for (const std::uint32_t k : keys)
        ++hist[bucketOf(k, splitters)];
    return hist;
}

std::vector<std::uint32_t>
randomKeys(std::size_t n, std::uint64_t seed)
{
    sim::Rng rng(seed);
    std::vector<std::uint32_t> keys(n);
    for (auto& k : keys)
        k = static_cast<std::uint32_t>(rng.next());
    return keys;
}

} // namespace ccnuma::kernels
