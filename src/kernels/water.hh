/**
 * @file
 * Molecular-dynamics kernels underlying Water-Nsquared and
 * Water-Spatial: Lennard-Jones pairwise interactions computed both by
 * the O(n^2) half-pairs method (Nsquared) and by a 3-D cell list
 * (Spatial). Both must agree on energy and forces within a cutoff.
 */

#ifndef CCNUMA_KERNELS_WATER_HH
#define CCNUMA_KERNELS_WATER_HH

#include <cstdint>
#include <vector>

#include "kernels/geom.hh"

namespace ccnuma::kernels {

struct Molecule {
    Vec3 pos;
    Vec3 force;
};

/// Molecules on a perturbed cubic lattice inside [0, box)^3.
std::vector<Molecule> latticeMolecules(std::size_t n, double box,
                                       std::uint64_t seed);

/// Lennard-Jones potential/force magnitude at squared distance r2.
double ljPotential(double r2);

/// O(n^2) half-pairs evaluation within `cutoff`; accumulates forces,
/// returns total potential energy. Minimum-image periodic boundary.
double forcesNsquared(std::vector<Molecule>& mols, double box,
                      double cutoff);

/** 3-D cell list over [0, box)^3. */
class CellList
{
  public:
    CellList(const std::vector<Molecule>& mols, double box,
             double cell_size);

    int cellsPerDim() const { return dim_; }
    int cellOf(const Vec3& p) const;
    const std::vector<int>& members(int cell) const
    {
        return members_[cell];
    }
    /// The 27 (wrapped) neighbor cells of `cell`, including itself.
    std::vector<int> neighbors(int cell) const;

  private:
    int dim_;
    double box_;
    double inv_;
    std::vector<std::vector<int>> members_;
};

/// Cell-list evaluation; must match forcesNsquared for
/// cell_size >= cutoff. Returns potential energy.
double forcesSpatial(std::vector<Molecule>& mols, double box,
                     double cutoff, double cell_size);

/// Max component of the net force (should be ~0 by Newton's 3rd law).
double netForceError(const std::vector<Molecule>& mols);

} // namespace ccnuma::kernels

#endif // CCNUMA_KERNELS_WATER_HH
