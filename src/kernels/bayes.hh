/**
 * @file
 * Clique-tree (junction-tree) belief propagation kernel underlying the
 * Infer application: a random clique tree with CPCS-like size skew,
 * exact sum-product message passing over small discrete potentials, and
 * per-clique cost metrics used by the partitioning strategies.
 */

#ifndef CCNUMA_KERNELS_BAYES_HH
#define CCNUMA_KERNELS_BAYES_HH

#include <cstdint>
#include <vector>

namespace ccnuma::kernels {

/** One clique: a table over `vars` binary variables. */
struct Clique {
    int parent = -1;
    std::vector<int> children;
    int vars = 2;               ///< Number of binary variables.
    std::vector<double> table;  ///< 2^vars potentials.
    std::size_t tableSize() const { return table.size(); }
    /// Multiply-add work to absorb/emit one message.
    std::uint64_t cost() const
    {
        return static_cast<std::uint64_t>(table.size()) * vars;
    }
};

/** A rooted clique tree. */
struct CliqueTree {
    std::vector<Clique> cliques; ///< Index 0 is the root.
    /// Topological order (parents before children).
    std::vector<int> order;
};

/// Random clique tree: `n` cliques, variable counts skewed like CPCS
/// (many small cliques, a few large ones up to `maxVars`).
CliqueTree randomTree(int n, int max_vars, std::uint64_t seed);

/**
 * Exact two-phase (collect then distribute) sum-product propagation.
 * Each upward message marginalizes a child's table into its parent;
 * each downward message multiplies back. Returns the root's partition
 * sum (a positive scalar invariant to propagation order).
 */
double propagate(CliqueTree& tree);

/// Total multiply-add operations one propagation performs.
std::uint64_t propagationCost(const CliqueTree& tree);

} // namespace ccnuma::kernels

#endif // CCNUMA_KERNELS_BAYES_HH
