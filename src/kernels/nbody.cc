#include "kernels/nbody.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "sim/rng.hh"

namespace ccnuma::kernels {

Octree::Octree(const std::vector<Body>& bodies, double half)
{
    cells_.reserve(bodies.size() * 2 + 16);
    makeCell(Vec3{}, half, -1);
    paths_.resize(bodies.size());
    for (std::size_t b = 0; b < bodies.size(); ++b)
        insert(bodies, static_cast<int>(b));
}

int
Octree::makeCell(Vec3 center, double half, int parent)
{
    Cell c;
    c.center = center;
    c.half = half;
    c.parent = parent;
    cells_.push_back(c);
    creator_.push_back(curInserting_);
    return static_cast<int>(cells_.size()) - 1;
}

int
Octree::childIndexFor(const Cell& c, const Vec3& p) const
{
    return (p.x >= c.center.x ? 1 : 0) | (p.y >= c.center.y ? 2 : 0) |
           (p.z >= c.center.z ? 4 : 0);
}

void
Octree::insert(const std::vector<Body>& bodies, int b)
{
    curInserting_ = b;
    std::vector<int>& path = paths_[b];
    int cur = 0;
    for (;;) {
        path.push_back(cur);
        Cell& c = cells_[cur];
        if (c.isEmptyLeaf()) {
            c.body = b;
            return;
        }
        if (c.isLeaf()) {
            // Split: push the resident body down, then continue.
            const int other = c.body;
            c.body = -1;
            for (int k = 0; k < 8; ++k) {
                const Vec3 off{(k & 1 ? 0.5 : -0.5) * c.half,
                               (k & 2 ? 0.5 : -0.5) * c.half,
                               (k & 4 ? 0.5 : -0.5) * c.half};
                // (Re-read `cells_[cur]` each time: makeCell may move
                // the vector.)
                const Vec3 ctr = cells_[cur].center + off;
                const double h = cells_[cur].half * 0.5;
                const int nc = makeCell(ctr, h, cur);
                cells_[cur].child[k] = nc;
            }
            Cell& cc = cells_[cur];
            const int oc = cc.child[childIndexFor(cc, bodies[other].pos)];
            cells_[oc].body = other;
            paths_[other].push_back(oc);
        }
        cur = cells_[cur].child[childIndexFor(cells_[cur],
                                              bodies[b].pos)];
    }
}

void
Octree::computeMoments(const std::vector<Body>& bodies)
{
    for (auto& c : cells_) {
        if (c.body >= 0) {
            c.mass = bodies[c.body].mass;
            c.com = bodies[c.body].pos;
        } else {
            c.mass = 0;
            c.com = Vec3{};
        }
    }
    // Children always have larger indices than parents, so a reverse
    // sweep accumulates bottom-up.
    for (int i = static_cast<int>(cells_.size()) - 1; i >= 0; --i) {
        Cell& c = cells_[i];
        if (c.child[0] != -1) {
            for (int k = 0; k < 8; ++k) {
                const Cell& ch = cells_[c.child[k]];
                c.mass += ch.mass;
                c.com += ch.com * ch.mass;
            }
            if (c.mass > 0)
                c.com *= 1.0 / c.mass;
        }
    }
}

int
Octree::depthOf(int cell) const
{
    int d = 0;
    while (cells_[cell].parent != -1) {
        cell = cells_[cell].parent;
        ++d;
    }
    return d;
}

int
Octree::force(std::vector<Body>& bodies, int b, double theta,
              const std::function<void(int)>& visit)
{
    // Leaf cells carry their body's mass lazily: seed them here.
    // (computeMoments must have run after leaves were seeded; see
    // seedLeafMoments in the implementation of the tests/apps.)
    int interactions = 0;
    const Vec3 pos = bodies[b].pos;
    std::vector<int> stack{0};
    while (!stack.empty()) {
        const int ci = stack.back();
        stack.pop_back();
        const Cell& c = cells_[ci];
        if (visit)
            visit(ci);
        if (c.isEmptyLeaf())
            continue;
        if (c.isLeaf()) {
            if (c.body == b)
                continue;
            const Vec3 d = bodies[c.body].pos - pos;
            const double r2 = d.norm2() + 1e-9;
            const double inv = 1.0 / (r2 * std::sqrt(r2));
            bodies[b].acc += d * (bodies[c.body].mass * inv);
            ++interactions;
            continue;
        }
        const Vec3 d = c.com - pos;
        const double dist = d.norm() + 1e-12;
        if (c.half * 2.0 / dist < theta && c.mass > 0) {
            const double r2 = dist * dist + 1e-9;
            const double inv = 1.0 / (r2 * dist);
            bodies[b].acc += d * (c.mass * inv);
            ++interactions;
        } else {
            for (int k = 0; k < 8; ++k)
                if (c.child[k] != -1)
                    stack.push_back(c.child[k]);
        }
    }
    return interactions;
}

std::vector<Body>
plummerBodies(std::size_t n, std::uint64_t seed)
{
    sim::Rng rng(seed);
    std::vector<Body> bodies(n);
    for (auto& b : bodies) {
        // Clustered radial distribution, clamped into the unit box.
        const double r = 0.5 / std::sqrt(
            std::pow(rng.uniform() * 0.9 + 1e-3, -2.0 / 3.0) - 1.0 + 1e-6);
        const double ctheta = 2.0 * rng.uniform() - 1.0;
        const double phi = 2.0 * 3.141592653589793 * rng.uniform();
        const double s = std::sqrt(1.0 - ctheta * ctheta);
        b.pos = Vec3{r * s * std::cos(phi), r * s * std::sin(phi),
                     r * ctheta};
        b.pos.x = std::clamp(b.pos.x, -0.99, 0.99);
        b.pos.y = std::clamp(b.pos.y, -0.99, 0.99);
        b.pos.z = std::clamp(b.pos.z, -0.99, 0.99);
        b.mass = 1.0 / static_cast<double>(n);
    }
    return bodies;
}

std::vector<Body>
uniformBodies(std::size_t n, std::uint64_t seed)
{
    sim::Rng rng(seed);
    std::vector<Body> bodies(n);
    for (auto& b : bodies) {
        b.pos = Vec3{rng.uniform() * 1.98 - 0.99,
                     rng.uniform() * 1.98 - 0.99,
                     rng.uniform() * 1.98 - 0.99};
        b.mass = 1.0 / static_cast<double>(n);
    }
    return bodies;
}

std::uint64_t
mortonKey(const Vec3& p, double half, int bits_per_dim)
{
    const double scale = (1u << bits_per_dim) / (2.0 * half);
    auto q = [&](double v) {
        const auto x = static_cast<std::int64_t>((v + half) * scale);
        return static_cast<std::uint64_t>(std::clamp<std::int64_t>(
            x, 0, (1 << bits_per_dim) - 1));
    };
    const std::uint64_t xs = q(p.x), ys = q(p.y), zs = q(p.z);
    std::uint64_t key = 0;
    for (int i = 0; i < bits_per_dim; ++i) {
        key |= ((xs >> i) & 1) << (3 * i);
        key |= ((ys >> i) & 1) << (3 * i + 1);
        key |= ((zs >> i) & 1) << (3 * i + 2);
    }
    return key;
}

std::vector<int>
mortonOrder(const std::vector<Body>& bodies, double half)
{
    std::vector<int> order(bodies.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = static_cast<int>(i);
    std::vector<std::uint64_t> keys(bodies.size());
    for (std::size_t i = 0; i < bodies.size(); ++i)
        keys[i] = mortonKey(bodies[i].pos, half, 10);
    std::sort(order.begin(), order.end(),
              [&](int a, int b) { return keys[a] < keys[b]; });
    return order;
}

std::vector<std::size_t>
costzoneSplit(const std::vector<double>& cost_in_order, int parts)
{
    std::vector<std::size_t> starts(parts + 1, 0);
    double total = 0;
    for (const double c : cost_in_order)
        total += c;
    double acc = 0;
    int part = 1;
    for (std::size_t i = 0;
         i < cost_in_order.size() && part < parts; ++i) {
        acc += cost_in_order[i];
        while (part < parts && acc >= total * part / parts)
            starts[part++] = i + 1;
    }
    for (; part < parts; ++part)
        starts[part] = cost_in_order.size();
    starts[parts] = cost_in_order.size();
    return starts;
}

} // namespace ccnuma::kernels
