#include "serve/net.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace ccnuma::serve {

namespace {

[[noreturn]] void
throwErrno(const std::string& what)
{
    throw std::runtime_error(what + ": " + std::strerror(errno));
}

sockaddr_in
tcpAddr(const std::string& host, int port)
{
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
        throw std::runtime_error("bad IPv4 address: " + host);
    return addr;
}

sockaddr_un
unixAddr(const std::string& path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() + 1 > sizeof(addr.sun_path))
        throw std::runtime_error("unix socket path too long: " + path);
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return addr;
}

} // namespace

void
Fd::reset()
{
    if (fd_ >= 0)
        ::close(fd_);
    fd_ = -1;
}

void
Fd::shutdownBoth()
{
    if (fd_ >= 0)
        ::shutdown(fd_, SHUT_RDWR);
}

std::pair<Fd, int>
listenTcp(const std::string& host, int port)
{
    Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid())
        throwErrno("socket");
    const int one = 1;
    ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr = tcpAddr(host, port);
    if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0)
        throwErrno("bind " + host + ":" + std::to_string(port));
    if (::listen(fd.get(), 64) != 0)
        throwErrno("listen");
    socklen_t len = sizeof(addr);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                      &len) != 0)
        throwErrno("getsockname");
    return {std::move(fd), ntohs(addr.sin_port)};
}

Fd
listenUnix(const std::string& path)
{
    Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid())
        throwErrno("socket");
    ::unlink(path.c_str());
    sockaddr_un addr = unixAddr(path);
    if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0)
        throwErrno("bind " + path);
    if (::listen(fd.get(), 64) != 0)
        throwErrno("listen");
    return fd;
}

Fd
acceptOn(const Fd& listener)
{
    for (;;) {
        const int fd = ::accept(listener.get(), nullptr, nullptr);
        if (fd >= 0)
            return Fd(fd);
        if (errno == EINTR)
            continue;
        return Fd();
    }
}

Fd
connectTcp(const std::string& host, int port)
{
    Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid())
        throwErrno("socket");
    sockaddr_in addr = tcpAddr(host, port);
    if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) != 0)
        throwErrno("connect " + host + ":" + std::to_string(port));
    return fd;
}

Fd
connectUnix(const std::string& path)
{
    Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid())
        throwErrno("socket");
    sockaddr_un addr = unixAddr(path);
    if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) != 0)
        throwErrno("connect " + path);
    return fd;
}

ReadStatus
LineReader::next(std::string& out)
{
    bool overflowed = false;
    for (;;) {
        const std::size_t nl = buf_.find('\n');
        if (nl != std::string::npos) {
            if (overflowed || nl > maxLen_) {
                buf_.erase(0, nl + 1);
                return ReadStatus::TooLong;
            }
            out.assign(buf_, 0, nl);
            buf_.erase(0, nl + 1);
            return ReadStatus::Line;
        }
        if (buf_.size() > maxLen_) {
            // Discard what we have; keep reading until the newline (or
            // EOF) so the next request starts on a frame boundary.
            overflowed = true;
            buf_.clear();
        }
        if (eof_)
            return buf_.empty() && !overflowed ? ReadStatus::Eof
                                               : ReadStatus::TooLong;
        char chunk[4096];
        const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return ReadStatus::Error;
        }
        if (n == 0) {
            eof_ = true;
            // A final unterminated line still counts as a line (tools
            // like `printf '%s' req | nc` omit the trailing newline).
            if (!overflowed && !buf_.empty() && buf_.size() <= maxLen_) {
                out = std::move(buf_);
                buf_.clear();
                return ReadStatus::Line;
            }
            const bool bad = overflowed || !buf_.empty();
            buf_.clear();
            return bad ? ReadStatus::TooLong : ReadStatus::Eof;
        }
        buf_.append(chunk, static_cast<std::size_t>(n));
    }
}

bool
writeAll(int fd, const std::string& data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        // MSG_NOSIGNAL: a peer that vanished mid-pipeline must surface
        // as EPIPE (-> false), not as a SIGPIPE that kills embedders
        // (tests, library users) who never installed SIG_IGN.
        const ssize_t n = ::send(fd, data.data() + off,
                                 data.size() - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

} // namespace ccnuma::serve
