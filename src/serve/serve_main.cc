/**
 * @file
 * The ccnuma_serve daemon: bind a socket, serve simulation requests
 * until SIGINT/SIGTERM or a client "shutdown" request, then drain and
 * exit 0.
 *
 *   ccnuma_serve [--port=N] [--host=A] [--unix=PATH] [--workers=N]
 *                [--jobs=N] [--max-queue=N] [--cache=N]
 *                [--max-request-bytes=N]
 *
 * Prints exactly one "listening on ..." line to stdout once ready
 * (scripts block on it), then serves. See serve/wire.hh for the
 * protocol and README.md for a copy-paste session.
 */

#include <csignal>
#include <cstdio>
#include <string>

#include "core/cli.hh"
#include "serve/server.hh"

namespace {

volatile std::sig_atomic_t gSignal = 0;

void
onSignal(int)
{
    gSignal = 1;
}

bool
takeU64(ccnuma::core::cli::Options& opt, const std::string& name,
        std::uint64_t& out)
{
    std::string value;
    if (!opt.takeFlag(name, value))
        return true;
    if (!ccnuma::core::cli::parseU64(value, out)) {
        std::fprintf(stderr, "ccnuma_serve: bad --%s value '%s'\n",
                     name.c_str(), value.c_str());
        return false;
    }
    return true;
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace ccnuma;

    core::cli::Options opt = core::cli::parse(argc, argv);
    serve::ServerOptions so;
    so.jobs = opt.jobs;

    std::string value;
    if (opt.takeFlag("host", value))
        so.host = value;
    if (opt.takeFlag("unix", value))
        so.unixPath = value;
    std::uint64_t n = 0;
    if (!takeU64(opt, "port", n))
        return 2;
    if (n > 65535) {
        std::fprintf(stderr, "ccnuma_serve: bad --port value\n");
        return 2;
    }
    so.port = static_cast<int>(n);
    n = static_cast<std::uint64_t>(so.workers);
    if (!takeU64(opt, "workers", n))
        return 2;
    so.workers = static_cast<int>(n);
    n = so.maxQueue;
    if (!takeU64(opt, "max-queue", n))
        return 2;
    so.maxQueue = n;
    n = so.cacheEntries;
    if (!takeU64(opt, "cache", n))
        return 2;
    so.cacheEntries = n;
    n = so.maxRequestBytes;
    if (!takeU64(opt, "max-request-bytes", n))
        return 2;
    so.maxRequestBytes = n;
    core::cli::warnUnknown(opt);

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    std::signal(SIGPIPE, SIG_IGN); // peers may vanish mid-response

    serve::Server server(so);
    try {
        server.start();
    } catch (const std::exception& e) {
        std::fprintf(stderr, "ccnuma_serve: %s\n", e.what());
        return 1;
    }
    if (so.unixPath.empty())
        std::printf("listening on %s:%d\n", so.host.c_str(),
                    server.port());
    else
        std::printf("listening on %s\n", so.unixPath.c_str());
    std::fflush(stdout);

    // Alternate between waiting for a client shutdown request and
    // polling the signal flag (a handler cannot notify a condvar).
    while (gSignal == 0 &&
           !server.waitFor(std::chrono::milliseconds(200))) {
    }
    server.stop();

    const serve::ServerStats st = server.stats();
    std::fprintf(stderr,
                 "ccnuma_serve: served %llu (cache hits %llu, sims "
                 "%llu), rejected %llu, expired %llu, failed %llu\n",
                 static_cast<unsigned long long>(st.served),
                 static_cast<unsigned long long>(st.cacheHits),
                 static_cast<unsigned long long>(st.simsRun),
                 static_cast<unsigned long long>(st.rejectedOverload +
                                                 st.rejectedTooLarge +
                                                 st.badRequests),
                 static_cast<unsigned long long>(st.expired),
                 static_cast<unsigned long long>(st.simFailed));
    return 0;
}
