/**
 * @file
 * Single-flight LRU result cache for ccnuma_serve.
 *
 * Maps a canonical request key (Request::cacheKey()) to the finished
 * payload string. Concurrent requests for the same key simulate once:
 * the first caller becomes the leader and computes; followers block
 * until the value is ready (the same discipline as
 * core::SeqBaselineCache, plus LRU eviction over completed entries).
 *
 * Failure never poisons the cache: a throwing leader erases its
 * in-flight entry, rethrows to its own caller, and wakes the
 * followers, the oldest of which is promoted to leader and recomputes.
 * A repeat of a previously failed request therefore re-simulates
 * instead of replaying a stale error — the server-path regression
 * tests pin this down.
 */

#ifndef CCNUMA_SERVE_CACHE_HH
#define CCNUMA_SERVE_CACHE_HH

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

namespace ccnuma::serve {

class ResultCache
{
  public:
    /// `capacity` completed entries are retained (LRU); 0 disables
    /// caching entirely (every call computes).
    explicit ResultCache(std::size_t capacity) : capacity_(capacity) {}

    /**
     * Return {payload, cached}: cached=true when the payload came from
     * a completed entry or another caller's completed flight (no
     * simulation ran on this call's behalf), false when this call
     * computed it. `compute` runs without the lock; if it throws the
     * exception propagates to this caller only.
     */
    std::pair<std::string, bool>
    getOrCompute(const std::string& key,
                 const std::function<std::string()>& compute)
    {
        if (capacity_ == 0)
            return {compute(), false};

        std::unique_lock<std::mutex> lk(mu_);
        for (;;) {
            auto it = map_.find(key);
            if (it == map_.end()) {
                map_.emplace(key, Entry{});
                break; // we are the leader
            }
            if (it->second.ready) {
                it->second.lastUse = ++tick_;
                return {it->second.value, true};
            }
            cv_.wait(lk); // in flight; wait for the leader
        }

        lk.unlock();
        std::string value;
        try {
            value = compute();
        } catch (...) {
            lk.lock();
            map_.erase(key);
            cv_.notify_all(); // promote a waiting follower
            throw;
        }
        lk.lock();
        Entry& e = map_[key];
        e.value = std::move(value);
        e.ready = true;
        e.lastUse = ++tick_;
        evictLocked();
        cv_.notify_all();
        return {e.value, false};
    }

    /// Completed entries currently held.
    std::size_t
    size()
    {
        std::lock_guard<std::mutex> lk(mu_);
        std::size_t n = 0;
        for (const auto& [k, e] : map_)
            n += e.ready ? 1 : 0;
        return n;
    }

  private:
    struct Entry {
        std::string value;
        bool ready = false;
        std::uint64_t lastUse = 0;
    };

    void
    evictLocked()
    {
        std::size_t ready = 0;
        for (const auto& [k, e] : map_)
            ready += e.ready ? 1 : 0;
        while (ready > capacity_) {
            auto victim = map_.end();
            for (auto it = map_.begin(); it != map_.end(); ++it)
                if (it->second.ready &&
                    (victim == map_.end() ||
                     it->second.lastUse < victim->second.lastUse))
                    victim = it;
            map_.erase(victim);
            --ready;
        }
    }

    const std::size_t capacity_;
    std::mutex mu_;
    std::condition_variable cv_;
    std::unordered_map<std::string, Entry> map_;
    std::uint64_t tick_ = 0;
};

} // namespace ccnuma::serve

#endif // CCNUMA_SERVE_CACHE_HH
