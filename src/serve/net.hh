/**
 * @file
 * Minimal POSIX socket layer for ccnuma_serve: RAII descriptors,
 * TCP/Unix listeners, blocking connect, and length-bounded
 * newline-delimited reads (the NDJSON framing both sides speak).
 *
 * Kept deliberately tiny and dependency-free — just enough for a
 * loopback research service, not a general networking library.
 */

#ifndef CCNUMA_SERVE_NET_HH
#define CCNUMA_SERVE_NET_HH

#include <cstddef>
#include <string>
#include <utility>

namespace ccnuma::serve {

/** Owning file descriptor (move-only; closes on destruction). */
class Fd
{
  public:
    Fd() = default;
    explicit Fd(int fd) : fd_(fd) {}
    ~Fd() { reset(); }
    Fd(Fd&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
    Fd&
    operator=(Fd&& o) noexcept
    {
        if (this != &o) {
            reset();
            fd_ = o.fd_;
            o.fd_ = -1;
        }
        return *this;
    }
    Fd(const Fd&) = delete;
    Fd& operator=(const Fd&) = delete;

    int get() const { return fd_; }
    bool valid() const { return fd_ >= 0; }
    void reset();
    /// shutdown(2) both directions — unblocks a peer thread stuck in
    /// read()/accept() without racing the close.
    void shutdownBoth();

  private:
    int fd_ = -1;
};

/**
 * Bind + listen on host:port (TCP, SO_REUSEADDR). port 0 binds an
 * ephemeral port; the second member reports the resolved one.
 * @throws std::runtime_error with errno text on failure.
 */
std::pair<Fd, int> listenTcp(const std::string& host, int port);

/// Bind + listen on a Unix-domain socket path (unlinks a stale one).
/// @throws std::runtime_error with errno text on failure.
Fd listenUnix(const std::string& path);

/// Accept one connection; invalid Fd when the listener was shut down.
Fd acceptOn(const Fd& listener);

/// Blocking TCP connect (tests and ccnuma_client).
/// @throws std::runtime_error with errno text on failure.
Fd connectTcp(const std::string& host, int port);

/// Blocking Unix-domain connect.
/// @throws std::runtime_error with errno text on failure.
Fd connectUnix(const std::string& path);

/** One readLine() outcome. */
enum class ReadStatus {
    Line,    ///< `out` holds one line (newline stripped).
    Eof,     ///< Peer closed with no pending data.
    TooLong, ///< Line exceeded the limit; it was drained and discarded.
    Error,   ///< read(2) failed.
};

/**
 * Buffered per-connection line reader. A line longer than `maxLen`
 * reports TooLong once, after discarding input through the offending
 * newline, so the connection stays usable for the next request —
 * oversized-request rejection must not cost the client its session.
 */
class LineReader
{
  public:
    explicit LineReader(int fd, std::size_t maxLen)
        : fd_(fd), maxLen_(maxLen)
    {
    }

    ReadStatus next(std::string& out);

  private:
    int fd_;
    std::size_t maxLen_;
    std::string buf_;
    bool eof_ = false;
};

/// send(2) with MSG_NOSIGNAL until everything is out; false on any
/// failure. A vanished peer reports EPIPE instead of raising SIGPIPE,
/// so embedders need no signal handling. Socket fds only.
bool writeAll(int fd, const std::string& data);

} // namespace ccnuma::serve

#endif // CCNUMA_SERVE_NET_HH
