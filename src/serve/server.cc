#include "serve/server.hh"

#include <cinttypes>
#include <cstdio>
#include <stdexcept>

#include "apps/registry.hh"
#include "core/metrics.hh"
#include "obs/trace.hh"

namespace ccnuma::serve {

namespace {

/// Baseline memo key: everything the uniprocessor run depends on.
std::string
seqKeyFor(const Request& req)
{
    const sim::MachineConfig cfg = req.machineFor(req.procs.front());
    return "seq|" + req.app + "|" + std::to_string(req.size) + "|" +
           cfg.protocol.name() + "|" + cfg.dirFormat.name();
}

/// Compact fixed-format rendering of one hot-line report.
std::string
hotLineText(const obs::SharingProfiler::LineReport& l)
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "line=0x%" PRIx64 " invals=%" PRIu64
                  " dirtyMisses=%" PRIu64 " upgrades=%" PRIu64
                  " procs=%d",
                  static_cast<std::uint64_t>(l.line), l.invalidations,
                  l.dirtyMisses, l.upgrades, l.procsTouched);
    return buf;
}

} // namespace

Server::Server(ServerOptions opt)
    : opt_(opt),
      runner_(core::StudyOptions{.jobs = opt.jobs, .simJobs = 1}),
      cache_(opt.cacheEntries)
{
    if (opt_.workers < 1)
        opt_.workers = 1;
}

Server::~Server()
{
    stop();
}

void
Server::start()
{
    if (opt_.unixPath.empty()) {
        auto [fd, port] = listenTcp(opt_.host, opt_.port);
        listener_ = std::move(fd);
        port_ = port;
    } else {
        listener_ = listenUnix(opt_.unixPath);
    }
    {
        std::lock_guard<std::mutex> lk(mu_);
        started_ = true;
    }
    acceptThread_ = std::thread([this] { acceptLoop(); });
    workerThreads_.reserve(static_cast<std::size_t>(opt_.workers));
    for (int i = 0; i < opt_.workers; ++i)
        workerThreads_.emplace_back([this] { workerLoop(); });
}

void
Server::wait()
{
    {
        std::unique_lock<std::mutex> lk(mu_);
        stopCv_.wait(lk, [&] {
            return shutdownRequested_ || stopping_ || stopped_;
        });
    }
    stop();
}

bool
Server::waitFor(std::chrono::milliseconds timeout)
{
    std::unique_lock<std::mutex> lk(mu_);
    return stopCv_.wait_for(lk, timeout, [&] {
        return shutdownRequested_ || stopping_ || stopped_;
    });
}

void
Server::stop()
{
    // One caller tears down; truly concurrent callers block here until
    // it finishes (join() on the same thread from two callers is UB),
    // then fall out through the stopped_ gate below.
    std::lock_guard<std::mutex> stopLk(stopMu_);
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (stopped_)
            return;
        if (!started_) {
            stopped_ = true;
            return;
        }
        stopping_ = true;
    }
    stopCv_.notify_all();

    // 1. No new connections.
    listener_.shutdownBoth();
    if (acceptThread_.joinable())
        acceptThread_.join();
    listener_.reset();

    // 2. Drain every admitted job — their responses still go out.
    {
        std::unique_lock<std::mutex> lk(mu_);
        idleCv_.wait(lk,
                     [&] { return queue_.empty() && activeJobs_ == 0; });
    }
    queueCv_.notify_all();
    for (std::thread& t : workerThreads_)
        t.join();
    workerThreads_.clear();

    // 3. Unblock readers and close the connections.
    {
        std::lock_guard<std::mutex> lk(mu_);
        for (const std::shared_ptr<Conn>& c : conns_)
            c->fd.shutdownBoth();
    }
    for (std::thread& t : connThreads_)
        t.join();
    connThreads_.clear();
    {
        std::lock_guard<std::mutex> lk(mu_);
        conns_.clear();
        stopped_ = true;
    }
    stopCv_.notify_all();
}

ServerStats
Server::stats() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return stats_;
}

void
Server::acceptLoop()
{
    for (;;) {
        Fd fd = acceptOn(listener_);
        if (!fd.valid())
            return; // listener shut down (or fatal accept error)
        auto conn = std::make_shared<Conn>();
        conn->fd = std::move(fd);
        std::lock_guard<std::mutex> lk(mu_);
        if (stopping_) {
            conn->fd.shutdownBoth();
            continue;
        }
        ++stats_.accepted;
        conns_.push_back(conn);
        connThreads_.emplace_back(
            [this, conn] { connectionLoop(conn); });
    }
}

void
Server::send(const std::shared_ptr<Conn>& conn, const std::string& line)
{
    std::lock_guard<std::mutex> lk(conn->writeMu);
    writeAll(conn->fd.get(), line);
}

void
Server::connectionLoop(const std::shared_ptr<Conn>& conn)
{
    LineReader reader(conn->fd.get(), opt_.maxRequestBytes);
    std::string line;
    for (;;) {
        const ReadStatus st = reader.next(line);
        if (st == ReadStatus::Eof || st == ReadStatus::Error)
            return;
        if (st == ReadStatus::TooLong) {
            {
                std::lock_guard<std::mutex> lk(mu_);
                ++stats_.rejectedTooLarge;
            }
            send(conn, errorResponse(
                           "", "too-large",
                           "request line exceeds " +
                               std::to_string(opt_.maxRequestBytes) +
                               " bytes"));
            continue;
        }
        ParsedRequest parsed;
        try {
            parsed = parseRequest(line);
        } catch (const std::exception& e) {
            // Parsing must never kill the daemon: an exception escaping
            // this thread would be std::terminate. Answer and move on.
            parsed.ok = false;
            parsed.error = "bad-request";
            parsed.detail = std::string("parse failure: ") + e.what();
        }
        if (!parsed.ok) {
            {
                std::lock_guard<std::mutex> lk(mu_);
                ++stats_.badRequests;
            }
            send(conn, errorResponse(parsed.req.id, parsed.error,
                                     parsed.detail));
            continue;
        }
        Request& req = parsed.req;
        switch (req.type) {
        case Request::Type::Ping:
            send(conn, ackResponse(req.id, "pong"));
            break;
        case Request::Type::Shutdown:
            send(conn, ackResponse(req.id, "shutdown"));
            {
                std::lock_guard<std::mutex> lk(mu_);
                shutdownRequested_ = true;
            }
            stopCv_.notify_all();
            break;
        case Request::Type::Study:
        case Request::Type::Trace: {
            bool admitted = false;
            {
                std::lock_guard<std::mutex> lk(mu_);
                if (!stopping_ && queue_.size() < opt_.maxQueue) {
                    queue_.push_back(
                        Job{conn, std::move(req),
                            std::chrono::steady_clock::now()});
                    admitted = true;
                } else {
                    ++stats_.rejectedOverload;
                }
            }
            if (admitted) {
                queueCv_.notify_one();
            } else {
                send(conn,
                     errorResponse(req.id, "overloaded",
                                   "admission queue is full"));
            }
            break;
        }
        }
    }
}

void
Server::workerLoop()
{
    for (;;) {
        Job job;
        {
            std::unique_lock<std::mutex> lk(mu_);
            queueCv_.wait(
                lk, [&] { return stopping_ || !queue_.empty(); });
            if (queue_.empty()) {
                if (stopping_)
                    return;
                continue;
            }
            job = std::move(queue_.front());
            queue_.pop_front();
            ++activeJobs_;
        }
        handleJob(job);
        {
            std::lock_guard<std::mutex> lk(mu_);
            --activeJobs_;
        }
        idleCv_.notify_all();
    }
}

void
Server::handleJob(const Job& job)
{
    const Request& req = job.req;
    if (req.hasDeadline) {
        const auto waited =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - job.enqueued)
                .count();
        // >= so deadlineMs:0 means expire-immediately (documented in
        // wire.hh — a queue-latency probe, and what pins the expiry
        // path in tests without racing the worker pool).
        if (static_cast<std::uint64_t>(waited) >= req.deadlineMs) {
            {
                std::lock_guard<std::mutex> lk(mu_);
                ++stats_.expired;
            }
            send(job.conn,
                 errorResponse(req.id, "expired",
                               "waited " + std::to_string(waited) +
                                   "ms past deadlineMs=" +
                                   std::to_string(req.deadlineMs)));
            return;
        }
    }

    try {
        const auto [payload, cached] =
            cache_.getOrCompute(req.cacheKey(), [&] {
                {
                    std::lock_guard<std::mutex> lk(mu_);
                    ++stats_.simsRun;
                }
                return computeResult(req);
            });
        {
            std::lock_guard<std::mutex> lk(mu_);
            ++stats_.served;
            if (cached)
                ++stats_.cacheHits;
        }
        send(job.conn, resultResponse(req.id, cached, payload));
    } catch (const std::exception& e) {
        {
            std::lock_guard<std::mutex> lk(mu_);
            ++stats_.simFailed;
        }
        send(job.conn, errorResponse(req.id, "sim-failed", e.what()));
    }
}

std::string
Server::computeResult(const Request& req)
{
    core::StudyPlan plan;
    std::vector<int> procsList;
    if (req.type == Request::Type::Study) {
        procsList = req.procs;
        const std::string seqKey = seqKeyFor(req);
        for (const int p : req.procs) {
            const std::string label =
                req.app + " P=" + std::to_string(p);
            core::AppFactory factory = [app = req.app,
                                        size = req.size] {
                return apps::makeApp(app, size);
            };
            if (req.baseline)
                plan.add(label, req.machineFor(p), std::move(factory),
                         seqKey);
            else
                plan.addParallelOnly(label, req.machineFor(p),
                                     std::move(factory));
        }
    } else {
        procsList.push_back(req.trace.procs);
        const auto tr = std::make_shared<const apps::Trace>(req.trace);
        plan.addParallelOnly(
            "trace P=" + std::to_string(req.trace.procs),
            req.machineFor(req.trace.procs),
            [tr] { return std::make_unique<apps::TraceReplayApp>(*tr); });
    }

    const core::StudyResult res =
        runner_.submit(std::move(plan)).get();
    for (const core::RunOutcome& r : res.runs)
        if (!r.ok)
            throw std::runtime_error(r.name + ": " + r.error);

    // Canonical payload: everything below is deterministic in the
    // request (cycle counts and ratios only — no wall-clock, no host
    // identity), which is what makes responses byte-stable and
    // cacheable.
    core::MetricsSink sink = core::MetricsSink::inMemory();
    sink.setMachine(req.machineFor(procsList.front()));
    for (const core::RunOutcome& r : res.runs) {
        sink.add(r.name, r.m.par);
        sink.addCount(r.name, "nprocs",
                      static_cast<std::uint64_t>(r.nprocs));
        if (r.m.seqTime) {
            sink.addCount(r.name, "seqCycles",
                          static_cast<std::uint64_t>(r.m.seqTime));
            sink.addScalar(r.name, "speedup", r.m.speedup());
            sink.addScalar(r.name, "efficiency", r.m.efficiency());
        }
        if (req.obs && r.m.par.trace) {
            const auto hot = r.m.par.trace->sharing().hotLines(3);
            for (std::size_t i = 0; i < hot.size(); ++i)
                sink.addText(r.name, "hot" + std::to_string(i),
                             hotLineText(hot[i]));
        }
    }
    return sink.str();
}

} // namespace ccnuma::serve
