#include "serve/wire.hh"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "apps/registry.hh"
#include "check/json.hh"

namespace ccnuma::serve {

namespace {

namespace json = check::json;

std::string
jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

ParsedRequest
reject(std::string id, std::string code, std::string detail)
{
    ParsedRequest r;
    r.error = std::move(code);
    r.detail = std::move(detail);
    r.req.id = std::move(id);
    return r;
}

/// Non-negative integer that fits in a u64 (rejects fractions, signs,
/// non-numbers, and out-of-range values — Value::asU64 would silently
/// saturate the latter to 2^64-1).
bool
asCount(const json::Value& v, std::uint64_t& out)
{
    if (!v.isNumber() || v.raw.find_first_of(".-eE") != std::string::npos)
        return false;
    const char* const first = v.raw.data();
    const char* const last = first + v.raw.size();
    const auto [p, ec] = std::from_chars(first, last, out);
    return ec == std::errc{} && p == last;
}

} // namespace

std::string
Request::cacheKey() const
{
    // Resolve protocol/dirFormat through the machine so an explicit
    // "mesi" and the default collapse to one key.
    const sim::MachineConfig cfg =
        machineFor(type == Type::Trace ? trace.procs
                   : procs.empty()     ? 1
                                       : procs.front());
    std::string key;
    if (type == Type::Trace) {
        key = "trace|" + traceHash;
    } else {
        key = "study|" + app + "|" + std::to_string(size) + "|procs=";
        for (std::size_t i = 0; i < procs.size(); ++i) {
            if (i)
                key += ',';
            key += std::to_string(procs[i]);
        }
        key += baseline ? "|base" : "|nobase";
    }
    key += "|" + cfg.protocol.name() + "|" + cfg.dirFormat.name();
    key += obs ? "|obs" : "|noobs";
    return key;
}

sim::MachineConfig
Request::machineFor(int nprocs) const
{
    sim::MachineConfig cfg = sim::MachineConfig::origin2000(nprocs);
    if (!protocol.empty())
        cfg.protocol.parse(protocol); // validated by parseRequest
    if (!dirFormat.empty())
        cfg.dirFormat.parse(dirFormat);
    if (obs)
        cfg.trace.sharing = true;
    return cfg;
}

ParsedRequest
parseRequest(const std::string& line)
{
    const json::ParseResult doc = json::parse(line);
    if (!doc.ok)
        return reject("", "bad-json", doc.error);
    if (!doc.root.isObject())
        return reject("", "bad-request", "request must be an object");

    std::string id;
    if (const json::Value* v = doc.root.find("id");
        v && v->isString())
        id = v->str;
    else
        return reject("", "bad-request", "missing string field 'id'");

    const json::Value* tv = doc.root.find("type");
    if (!tv || !tv->isString())
        return reject(id, "bad-request", "missing string field 'type'");

    ParsedRequest out;
    Request& req = out.req;
    req.id = id;
    if (tv->str == "ping")
        req.type = Request::Type::Ping;
    else if (tv->str == "study")
        req.type = Request::Type::Study;
    else if (tv->str == "trace")
        req.type = Request::Type::Trace;
    else if (tv->str == "shutdown")
        req.type = Request::Type::Shutdown;
    else
        return reject(id, "bad-request",
                      "unknown type '" + tv->str + "'");

    for (const auto& [key, v] : doc.root.obj) {
        if (key == "id" || key == "type")
            continue;
        const bool study = req.type == Request::Type::Study;
        const bool tracereq = req.type == Request::Type::Trace;
        if (key == "app" && study) {
            if (!v.isString() || v.str.empty())
                return reject(id, "bad-request",
                              "'app' must be a non-empty string");
            req.app = v.str;
        } else if (key == "size" && study) {
            if (!asCount(v, req.size))
                return reject(id, "bad-request",
                              "'size' must be a non-negative integer");
        } else if (key == "procs" && study) {
            if (!v.isArray() || v.arr.empty())
                return reject(id, "bad-request",
                              "'procs' must be a non-empty array");
            for (const json::Value& e : v.arr) {
                std::uint64_t p = 0;
                if (!asCount(e, p) || p < 1 || p > 4096)
                    return reject(id, "bad-request",
                                  "'procs' entries must be integers "
                                  "in [1, 4096]");
                req.procs.push_back(static_cast<int>(p));
            }
        } else if (key == "baseline" && study) {
            if (v.kind != json::Value::Kind::Bool)
                return reject(id, "bad-request",
                              "'baseline' must be a bool");
            req.baseline = v.boolean;
        } else if (key == "trace" && tracereq) {
            if (!v.isString())
                return reject(id, "bad-request",
                              "'trace' must be a string");
            apps::TraceParseResult tr = apps::parseTrace(v.str);
            if (!tr.ok)
                return reject(id, "bad-request", "trace: " + tr.error);
            req.trace = std::move(tr.trace);
            req.traceHash = req.trace.hashHex();
        } else if (key == "protocol" && (study || tracereq)) {
            sim::ProtocolConfig scratch;
            if (!v.isString() || !scratch.parse(v.str))
                return reject(id, "bad-request",
                              "unknown protocol (mesi|moesi|dragon)");
            req.protocol = v.str;
        } else if (key == "dirFormat" && (study || tracereq)) {
            sim::DirectoryConfig scratch;
            if (!v.isString() || !scratch.parse(v.str))
                return reject(
                    id, "bad-request",
                    "unknown dirFormat (fullbv|coarse:K|ptr:N)");
            req.dirFormat = v.str;
        } else if (key == "obs" && (study || tracereq)) {
            if (v.kind != json::Value::Kind::Bool)
                return reject(id, "bad-request", "'obs' must be a bool");
            req.obs = v.boolean;
        } else if (key == "deadlineMs" && (study || tracereq)) {
            if (!asCount(v, req.deadlineMs))
                return reject(
                    id, "bad-request",
                    "'deadlineMs' must be a non-negative integer");
            req.hasDeadline = true;
        } else {
            return reject(id, "bad-request",
                          "unexpected field '" + key + "' for type '" +
                              tv->str + "'");
        }
    }

    if (req.type == Request::Type::Study) {
        if (req.app.empty())
            return reject(id, "bad-request", "study needs 'app'");
        const std::vector<std::string>& known = apps::listApps();
        if (std::find(known.begin(), known.end(), req.app) ==
            known.end())
            return reject(id, "bad-request",
                          "unknown app '" + req.app + "'");
        if (req.procs.empty())
            return reject(id, "bad-request", "study needs 'procs'");
        for (const int p : req.procs) {
            const std::string err = req.machineFor(p).validate();
            if (!err.empty())
                return reject(id, "bad-request",
                              "procs=" + std::to_string(p) + ": " + err);
        }
    } else if (req.type == Request::Type::Trace) {
        if (req.trace.procs == 0)
            return reject(id, "bad-request", "trace needs 'trace'");
        const std::string err =
            req.machineFor(req.trace.procs).validate();
        if (!err.empty())
            return reject(id, "bad-request", err);
    }

    out.ok = true;
    return out;
}

std::string
errorResponse(const std::string& id, const std::string& code,
              const std::string& detail)
{
    return "{\"id\":\"" + jsonEscape(id) + "\",\"ok\":false,\"error\":\"" +
           jsonEscape(code) + "\",\"detail\":\"" + jsonEscape(detail) +
           "\"}\n";
}

std::string
resultResponse(const std::string& id, bool cached,
               const std::string& resultJson)
{
    return "{\"id\":\"" + jsonEscape(id) + "\",\"ok\":true,\"cached\":" +
           (cached ? "true" : "false") + ",\"result\":" + resultJson +
           "}\n";
}

std::string
ackResponse(const std::string& id, const std::string& type)
{
    return "{\"id\":\"" + jsonEscape(id) + "\",\"ok\":true,\"type\":\"" +
           jsonEscape(type) + "\"}\n";
}

} // namespace ccnuma::serve
