/**
 * @file
 * ccnuma_serve: simulation-as-a-service over a TCP or Unix socket.
 *
 * One Server owns one listener, a thread per live connection, a
 * bounded admission queue, a small worker pool, a single-flight LRU
 * result cache (serve/cache.hh), and one shared core::StudyRunner. A
 * connection thread reads NDJSON request lines (serve/wire.hh),
 * answers ping/shutdown and every rejection inline, and enqueues
 * study/trace work; workers drain the queue through the cache and the
 * StudyRunner::submit() funnel, so concurrent clients share machine
 * capacity, uniprocessor baselines and finished results instead of
 * trampling the host.
 *
 * Everything a worker computes is deterministic in the request alone
 * (serial-engine-identical simulation, compact canonical JSON, no
 * wall-clock in the payload), so identical requests produce
 * byte-identical responses whether computed or cached — the soak test
 * hammers this with concurrent mixed clients under TSan.
 *
 * Admission control: a full queue rejects with "overloaded" instead of
 * queueing unboundedly; a request carrying deadlineMs that waits
 * longer than that before a worker picks it up is dropped with
 * "expired" (the sunk-cost guillotine: never start work nobody is
 * waiting for). Both paths answer on the wire; the connection lives.
 *
 * Shutdown is graceful: stop() closes the listener, lets workers
 * drain every admitted job (responses included), then unblocks and
 * joins the connection threads. A client "shutdown" request triggers
 * the same sequence via wait().
 */

#ifndef CCNUMA_SERVE_SERVER_HH
#define CCNUMA_SERVE_SERVER_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/study_runner.hh"
#include "serve/cache.hh"
#include "serve/net.hh"
#include "serve/wire.hh"

namespace ccnuma::serve {

/** Server knobs (all have serviceable defaults). */
struct ServerOptions {
    std::string host = "127.0.0.1";
    int port = 0;          ///< 0 = bind an ephemeral port.
    std::string unixPath;  ///< Non-empty: Unix socket instead of TCP.
    int workers = 2;       ///< Queue-draining worker threads.
    int jobs = 0;          ///< StudyRunner thread budget (0 = host).
    std::size_t maxQueue = 64;        ///< Admission queue bound.
    std::size_t maxRequestBytes = 4u << 20; ///< Per-line size limit.
    std::size_t cacheEntries = 128;   ///< Result cache capacity.
};

/** Monotonic counters (see stats()). */
struct ServerStats {
    std::uint64_t accepted = 0;     ///< Connections accepted.
    std::uint64_t served = 0;       ///< ok:true study/trace responses.
    std::uint64_t cacheHits = 0;    ///< ...of which cached:true.
    std::uint64_t simsRun = 0;      ///< Cache-miss computations started.
    std::uint64_t badRequests = 0;  ///< bad-json + bad-request.
    std::uint64_t rejectedTooLarge = 0;
    std::uint64_t rejectedOverload = 0;
    std::uint64_t expired = 0;
    std::uint64_t simFailed = 0;
};

class Server
{
  public:
    explicit Server(ServerOptions opt);
    /// Equivalent to stop().
    ~Server();
    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /// Bind, listen, and start the accept/worker threads.
    /// @throws std::runtime_error when the socket cannot be bound.
    void start();

    /// The bound TCP port (resolved when ServerOptions::port was 0).
    int port() const { return port_; }

    /// Block until a client "shutdown" request (or a prior stop()),
    /// then perform the graceful stop. Returns when fully stopped.
    void wait();

    /// Bounded wait()-probe: true when shutdown has been requested (or
    /// the server already stopped) — the caller should then stop().
    /// Lets a daemon alternate between waiting and polling a signal
    /// flag (condition variables cannot be notified from a handler).
    bool waitFor(std::chrono::milliseconds timeout);

    /// Graceful stop: refuse new connections, drain admitted work,
    /// answer it, then close connections and join every thread.
    /// Idempotent and safe to call from any thread except a server
    /// worker/connection thread; concurrent callers block until the
    /// first teardown completes.
    void stop();

    ServerStats stats() const;

  private:
    struct Conn {
        Fd fd;
        std::mutex writeMu; ///< Responses interleave whole lines only.
    };
    struct Job {
        std::shared_ptr<Conn> conn;
        Request req;
        std::chrono::steady_clock::time_point enqueued;
    };

    void acceptLoop();
    void connectionLoop(const std::shared_ptr<Conn>& conn);
    void workerLoop();
    void handleJob(const Job& job);
    /// Run the simulations for `req` and render the canonical result
    /// payload (compact MetricsSink JSON). Throws on simulation
    /// failure; never touches the cache.
    std::string computeResult(const Request& req);
    void send(const std::shared_ptr<Conn>& conn, const std::string& line);

    ServerOptions opt_;
    core::StudyRunner runner_;
    ResultCache cache_;

    Fd listener_;
    int port_ = 0;
    std::thread acceptThread_;
    std::vector<std::thread> workerThreads_;

    std::mutex stopMu_; ///< Serializes concurrent stop() teardowns.
    mutable std::mutex mu_;
    std::condition_variable queueCv_; ///< Workers sleep here.
    std::condition_variable idleCv_;  ///< stop() waits for drain here.
    std::condition_variable stopCv_;  ///< wait() sleeps here.
    std::deque<Job> queue_;
    int activeJobs_ = 0;
    bool stopping_ = false;          ///< Workers/acceptor must exit.
    bool shutdownRequested_ = false; ///< A client asked; wait() acts.
    bool started_ = false;
    bool stopped_ = false;
    std::vector<std::shared_ptr<Conn>> conns_;
    std::vector<std::thread> connThreads_;
    ServerStats stats_;
};

} // namespace ccnuma::serve

#endif // CCNUMA_SERVE_SERVER_HH
