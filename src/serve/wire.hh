/**
 * @file
 * ccnuma_serve wire protocol, schema v1.
 *
 * Framing is NDJSON: one request object per line in, one response
 * object per line out, over one long-lived connection. Requests are
 * validated with the strict ccnuma::check::json parser (duplicate
 * keys, NaN/Infinity and trailing garbage are errors), so a request
 * either parses completely or earns a typed rejection.
 *
 * Requests (fields beyond these are rejected as "bad-request"):
 *
 *   {"id":"r1","type":"ping"}
 *   {"id":"r2","type":"study","app":"fft","size":1024,
 *    "procs":[2,4], "protocol":"mesi","dirFormat":"fullbv",
 *    "baseline":true,"obs":false,"deadlineMs":5000}
 *   {"id":"r3","type":"trace","trace":"ccnuma-trace v1\n...","obs":true}
 *   {"id":"r4","type":"shutdown"}
 *
 * `id` is an arbitrary client string echoed back verbatim — responses
 * to concurrent requests are matched by id, not order. Optional
 * fields: size (0 = the app's basic size), protocol, dirFormat,
 * baseline (study only, default true), obs (attach the sharing
 * profiler and return hot-line artifacts), deadlineMs (admission
 * deadline; a request that waited >= deadlineMs before a worker
 * *started* it is rejected "expired" — so 0 expires immediately, a
 * queue-latency probe; omit the field for no deadline).
 *
 * Responses:
 *
 *   {"id":"r2","ok":true,"cached":false,"result":{...MetricsSink...}}
 *   {"id":"r1","ok":true,"type":"pong"}
 *   {"id":"rX","ok":false,"error":"<code>","detail":"..."}
 *
 * Error codes: "bad-json" (line is not valid JSON), "bad-request"
 * (valid JSON, invalid request), "too-large" (line exceeded the
 * server's request-size limit), "overloaded" (admission queue full),
 * "expired" (deadlineMs elapsed before a worker picked it up),
 * "sim-failed" (the simulation itself threw). The connection survives
 * every error; only "shutdown" (or the client closing) ends it.
 */

#ifndef CCNUMA_SERVE_WIRE_HH
#define CCNUMA_SERVE_WIRE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "apps/trace.hh"
#include "sim/config.hh"

namespace ccnuma::serve {

/** A validated request. */
struct Request {
    enum class Type : std::uint8_t { Ping, Study, Trace, Shutdown };

    std::string id;
    Type type = Type::Ping;

    // ---- study ----
    std::string app;
    std::uint64_t size = 0;
    std::vector<int> procs;
    bool baseline = true;

    // ---- trace ----
    apps::Trace trace;
    std::string traceHash; ///< Content identity (Trace::hashHex()).

    // ---- common ----
    std::string protocol;  ///< Empty = machine default.
    std::string dirFormat; ///< Empty = machine default.
    bool obs = false;
    bool hasDeadline = false;
    std::uint64_t deadlineMs = 0;

    /**
     * Canonical result-cache key. Includes everything that determines
     * the payload bytes (type, app/size or trace hash, processor list,
     * protocol, dirFormat, baseline, obs) and deliberately excludes
     * execution knobs that provably do not (worker counts, simJobs —
     * the engines are bit-identical — and the deadline, which gates
     * admission, not results).
     */
    std::string cacheKey() const;

    /// The machine a study/trace run on `nprocs` processors uses,
    /// with protocol/dirFormat/obs applied.
    sim::MachineConfig machineFor(int nprocs) const;
};

/** parseRequest outcome: a request or a typed rejection. */
struct ParsedRequest {
    bool ok = false;
    std::string error;  ///< Error code ("bad-json" | "bad-request").
    std::string detail; ///< Human-readable specifics.
    Request req;        ///< Valid when ok; req.id survives a
                        ///< bad-request when the id itself parsed.
};

/// Validate one NDJSON request line (strict; see file comment).
ParsedRequest parseRequest(const std::string& line);

/// One-line error response (+ '\n').
std::string errorResponse(const std::string& id, const std::string& code,
                          const std::string& detail);

/// One-line success response embedding `resultJson` verbatim (+ '\n');
/// `resultJson` must already be compact valid JSON (MetricsSink::str).
std::string resultResponse(const std::string& id, bool cached,
                           const std::string& resultJson);

/// One-line typed acknowledgement (+ '\n'), e.g.
/// {"id":"r1","ok":true,"type":"pong"}.
std::string ackResponse(const std::string& id, const std::string& type);

} // namespace ccnuma::serve

#endif // CCNUMA_SERVE_WIRE_HH
