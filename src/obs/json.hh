/**
 * @file
 * Minimal streaming JSON writer used by the observability exporters.
 *
 * Keeps an explicit container stack so commas and indentation come out
 * right without building a DOM; numbers are emitted in a form every
 * JSON parser (and Perfetto) accepts.
 */

#ifndef CCNUMA_OBS_JSON_HH
#define CCNUMA_OBS_JSON_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace ccnuma::obs {

/** Streaming writer for one JSON document. */
class JsonWriter
{
  public:
    /// Write to `os`; `indent` spaces per nesting level (0 = compact).
    explicit JsonWriter(std::ostream& os, int indent = 2)
        : os_(os), indent_(indent)
    {
    }

    /// Open an object; `key` empty for array elements / the root.
    void beginObject(const std::string& key = "");
    void endObject();
    /// Open an array; `key` empty for array elements / the root.
    void beginArray(const std::string& key = "");
    void endArray();

    // Scalar fields. With an empty `key` they emit bare array elements.
    void field(const std::string& key, const std::string& v);
    void field(const std::string& key, const char* v);
    void field(const std::string& key, double v);
    void field(const std::string& key, std::uint64_t v);
    void field(const std::string& key, std::int64_t v);
    void field(const std::string& key, int v);
    void field(const std::string& key, bool v);

    /// Escape `s` for inclusion in a JSON string literal.
    static std::string escape(const std::string& s);

  private:
    void prefix(const std::string& key); ///< comma+newline+indent+key
    std::ostream& os_;
    int indent_;
    /// One bool per open container: "has at least one element".
    std::vector<bool> stack_;
};

} // namespace ccnuma::obs

#endif // CCNUMA_OBS_JSON_HH
