/**
 * @file
 * The observability core: protocol event traces, interval (epoch)
 * metrics, miss-latency histograms and the line/page sharing profiler.
 *
 * Design rules:
 *  - Purely observational: hooks never alter simulated state or timing,
 *    so a traced run's cycle counts are identical to an untraced one.
 *  - Zero cost when off: every hook call in the simulator is guarded by
 *    `kTracingCompiled && trace_`; building with -DCCNUMA_TRACING=OFF
 *    folds the guard to a compile-time false and the hooks vanish.
 *  - Layering: this library depends only on sim *headers* (types,
 *    stats, config structs), never on symbols defined in sim .cc files,
 *    so `ccnuma_sim` can link against `ccnuma_obs` without a cycle.
 */

#ifndef CCNUMA_OBS_TRACE_HH
#define CCNUMA_OBS_TRACE_HH

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/config.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

#ifndef CCNUMA_TRACING
#define CCNUMA_TRACING 1
#endif

namespace ccnuma::obs {

/// True when the tracing hooks are compiled into the simulator.
#if CCNUMA_TRACING
inline constexpr bool kTracingCompiled = true;
#else
inline constexpr bool kTracingCompiled = false;
#endif

using sim::Addr;
using sim::Cycles;
using sim::LineAddr;
using sim::NodeId;
using sim::ProcId;

/** Typed protocol events captured in the ring buffer. */
enum class EventKind : std::uint8_t {
    MissLocal,       ///< L2 miss served by the local memory.
    MissRemoteClean, ///< 2-hop miss served by a remote home memory.
    MissRemoteDirty, ///< 3-hop miss served from a dirty remote cache.
    Upgrade,         ///< Write hit on a Shared line (ownership only).
    Invalidation,    ///< One sharer losing its copy (proc = victim).
    Writeback,       ///< Dirty eviction written back to home memory.
    Prefetch,        ///< Software prefetch issued.
    FetchOp,         ///< Uncached at-memory fetch&op.
    LockAcquire,     ///< Lock acquire op (granted or enqueued).
    BarrierPassed,   ///< Barrier episode released this processor.
    PageMigration,   ///< Page moved to the accessing node.
};
inline constexpr int kNumEventKinds = 11;

/// Stable lower_snake name for an event kind (trace/JSON schema).
const char* eventName(EventKind k);

/**
 * One trace record: 24 bytes packed. `aux` is kind-specific: the write
 * flag for misses, the number of sharers invalidated for upgrades, the
 * requesting processor for invalidations, and the destination node for
 * page migrations.
 */
struct TraceRecord {
    Cycles start = 0;        ///< Issue cycle (requester's clock).
    Addr addr = 0;           ///< Line or byte address involved.
    std::uint32_t latency = 0; ///< Duration in cycles (0 = instant).
    std::int16_t proc = -1;  ///< Processor the event is attributed to.
    std::int16_t home = -1;  ///< Home node of `addr` (-1 if n/a).
    EventKind kind = EventKind::MissLocal;
    std::uint8_t aux = 0;
};

/**
 * Fixed-capacity ring buffer of trace records. When full, the oldest
 * records are overwritten; `recorded()` and `dropped()` keep the books
 * so consumers can tell a truncated trace from a complete one.
 */
class TraceBuffer
{
  public:
    explicit TraceBuffer(std::size_t capacity)
        : cap_(capacity), buf_(capacity)
    {
    }

    void
    push(const TraceRecord& r)
    {
        if (cap_ == 0) {
            ++recorded_;
            return;
        }
        buf_[recorded_ % cap_] = r;
        ++recorded_;
    }

    std::size_t capacity() const { return cap_; }
    /// Records currently held (== min(recorded, capacity)).
    std::size_t size() const
    {
        return recorded_ < cap_ ? recorded_ : cap_;
    }
    /// Total records ever pushed.
    std::uint64_t recorded() const { return recorded_; }
    /// Records lost to wrap-around overwrites.
    std::uint64_t dropped() const
    {
        return recorded_ < cap_ ? 0 : recorded_ - cap_;
    }

    /// Visit retained records oldest-first.
    template <typename Fn>
    void
    forEach(Fn&& fn) const
    {
        if (cap_ == 0)
            return;
        const std::size_t n = size();
        const std::size_t first = recorded_ < cap_ ? 0 : recorded_ % cap_;
        for (std::size_t i = 0; i < n; ++i)
            fn(buf_[(first + i) % cap_]);
    }

  private:
    std::size_t cap_;
    std::vector<TraceRecord> buf_;
    std::uint64_t recorded_ = 0;
};

/** One epoch's worth of counters and time, aggregated over processors. */
struct EpochSample {
    sim::ProcCounters c;
    sim::ProcTimes t;
};

/**
 * Time-series of epoch samples. Each event/charge is attributed to the
 * epoch containing its start cycle, so the per-counter sum over all
 * epochs equals the run's aggregate totals exactly.
 */
class EpochSeries
{
  public:
    explicit EpochSeries(Cycles epoch_cycles)
        : epochCycles_(epoch_cycles ? epoch_cycles : 1)
    {
    }

    /// Sample covering cycle `t`, growing the series as needed.
    EpochSample&
    at(Cycles t)
    {
        const std::size_t i = static_cast<std::size_t>(t / epochCycles_);
        if (i >= samples_.size())
            samples_.resize(i + 1);
        return samples_[i];
    }

    Cycles epochCycles() const { return epochCycles_; }
    std::size_t numEpochs() const { return samples_.size(); }
    const EpochSample& epoch(std::size_t i) const { return samples_[i]; }

    /// Counter sums over every epoch (must equal the run totals).
    sim::ProcCounters sumCounters() const;
    /// Time sums over every epoch.
    sim::ProcTimes sumTimes() const;

  private:
    Cycles epochCycles_;
    std::vector<EpochSample> samples_;
};

/**
 * Power-of-two-bucketed latency histogram: bucket i counts samples in
 * [2^i, 2^(i+1)) cycles (bucket 0 covers 0 and 1).
 */
class LatencyHisto
{
  public:
    static constexpr int kBuckets = 40;

    void add(Cycles lat);

    std::uint64_t count() const { return count_; }
    Cycles min() const { return count_ ? min_ : 0; }
    Cycles max() const { return max_; }
    double mean() const
    {
        return count_ ? static_cast<double>(sum_) / count_ : 0.0;
    }
    /// Upper bound of the bucket holding the q-quantile sample
    /// (q in [0,1]); an upper estimate within a factor of two.
    Cycles quantile(double q) const;

    /// Visit non-empty buckets as fn(lo, hi_exclusive, count).
    template <typename Fn>
    void
    forEachBucket(Fn&& fn) const
    {
        for (int i = 0; i < kBuckets; ++i)
            if (buckets_[i])
                fn(bucketLo(i), bucketHi(i), buckets_[i]);
    }

    static Cycles bucketLo(int i)
    {
        return i == 0 ? 0 : Cycles{1} << i;
    }
    static Cycles bucketHi(int i) { return Cycles{1} << (i + 1); }

  private:
    std::array<std::uint64_t, kBuckets> buckets_{};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    Cycles min_ = 0;
    Cycles max_ = 0;
};

/**
 * Attributes coherence traffic (invalidations, remote-dirty misses,
 * upgrades) to cache lines and pages, and classifies multi-processor
 * lines as true or false sharing from sub-line word (8 B) offsets:
 * a line is *true*-shared if some written word was touched by two or
 * more processors (actual communication), *false*-shared if processors
 * only ever touched disjoint words yet still ping-ponged the line.
 */
class SharingProfiler
{
  public:
    SharingProfiler(std::uint32_t line_bytes, std::uint32_t page_bytes);

    /// Record a demand access for word-granularity attribution.
    void noteAccess(ProcId p, Addr addr, bool write);
    /// Record a coherence-traffic event against `line`.
    void noteConflict(LineAddr line, EventKind kind);

    enum class Class : std::uint8_t {
        Private,     ///< Touched by at most one processor.
        ReadShared,  ///< Multiple readers, never written.
        TrueSharing, ///< A written word is used by >= 2 processors.
        FalseSharing ///< Traffic, but all word sets are disjoint.
    };
    static const char* className(Class c);

    struct LineReport {
        LineAddr line = 0;
        std::uint64_t invalidations = 0;
        std::uint64_t dirtyMisses = 0;
        std::uint64_t upgrades = 0;
        std::uint64_t reads = 0;
        std::uint64_t writes = 0;
        int procsTouched = 0;
        int wordsTouched = 0;
        int wordsShared = 0; ///< Words touched by >= 2 processors.
        Class cls = Class::Private;
        std::uint64_t traffic() const
        {
            return invalidations + dirtyMisses + upgrades;
        }
    };

    struct PageReport {
        sim::PageNum page = 0;
        std::uint64_t invalidations = 0;
        std::uint64_t dirtyMisses = 0;
        std::uint64_t upgrades = 0;
        int linesTracked = 0;
        std::uint64_t traffic() const
        {
            return invalidations + dirtyMisses + upgrades;
        }
    };

    /// Report for one line (zeroed if never seen).
    LineReport report(LineAddr line) const;
    /// Lines ranked by coherence traffic, highest first.
    std::vector<LineReport> hotLines(std::size_t top_n) const;
    /// Pages ranked by coherence traffic, highest first.
    std::vector<PageReport> hotPages(std::size_t top_n) const;

    std::size_t linesTracked() const { return lines_.size(); }

  private:
    /// Per-line word-granularity sharing state. Lines wider than
    /// kMaxWords*8 bytes fold their tail into the last word slot.
    static constexpr int kMaxWords = 32;
    struct LineInfo {
        std::uint32_t invals = 0;
        std::uint32_t dirtyMisses = 0;
        std::uint32_t upgrades = 0;
        std::uint64_t reads = 0;
        std::uint64_t writes = 0;
        std::array<std::uint64_t, sim::kMaxProcs / 64> procs{};
        std::uint32_t touchedMask = 0;
        std::uint32_t writtenMask = 0;
        std::uint32_t sharedMask = 0; ///< Word seen from >= 2 procs.
        std::array<std::int16_t, kMaxWords> wordFirstProc;
        LineInfo() { wordFirstProc.fill(-1); }
    };

    LineReport makeReport(LineAddr line, const LineInfo& li) const;

    std::uint32_t lineMask_;
    std::uint32_t pageBytes_;
    std::unordered_map<LineAddr, LineInfo> lines_;
};

/**
 * The per-run trace bundle the simulator writes into and the exporters
 * read from. One Trace per Machine::run; ownership is shared with the
 * RunResult so it outlives the Machine.
 *
 * Hook naming: `on*` hooks fire once per protocol event; `add*` hooks
 * slice time charges into epochs. All hooks are cheap and allocation is
 * amortized (ring buffer fixed, epoch vector grows geometrically).
 */
class Trace
{
  public:
    Trace(const sim::TraceConfig& tc, int num_procs,
          std::uint32_t line_bytes, std::uint32_t page_bytes,
          double ns_per_cycle, std::vector<NodeId> proc_node);

    // ---- hooks called by the simulator ----
    void
    onAccess(ProcId p, Cycles now, Addr addr, bool write)
    {
        if (cfg_.intervals) {
            sim::ProcCounters& c = epochs_.at(now).c;
            if (write)
                ++c.stores;
            else
                ++c.loads;
        }
        if (cfg_.sharing)
            sharing_.noteAccess(p, addr, write);
    }
    void
    onHit(ProcId p, Cycles now)
    {
        (void)p;
        if (cfg_.intervals)
            ++epochs_.at(now).c.l2Hits;
    }
    void
    onPrefetchUseful(ProcId p, Cycles now)
    {
        (void)p;
        if (cfg_.intervals)
            ++epochs_.at(now).c.prefetchesUseful;
    }
    /// `kind` must be one of the three Miss* kinds.
    void onMiss(ProcId p, Cycles now, Cycles lat, LineAddr line,
                NodeId home, EventKind kind, bool write);
    void onUpgrade(ProcId p, Cycles now, Cycles lat, LineAddr line,
                   NodeId home, int sharers_invalidated);
    void onInval(ProcId requester, ProcId victim, Cycles now,
                 LineAddr line, NodeId home);
    void onWriteback(ProcId p, Cycles now, LineAddr line, NodeId home);
    /// `folded` carries the inner transaction's counters (miss class,
    /// writebacks, migrations) that MemSys::prefetch folds into the
    /// issuing processor's stats.
    void onPrefetchIssue(ProcId p, Cycles now, LineAddr line,
                         NodeId home, const sim::ProcCounters& folded);
    void onFetchOp(ProcId p, Cycles now, Cycles lat, Addr addr,
                   NodeId home);
    /// `contended` marks an acquire that found the lock held (the
    /// requester queues; the event's aux carries the same flag).
    void onLockAcquire(ProcId p, Cycles now, Addr line, NodeId home,
                       bool contended);
    void onBarrierPassed(ProcId p, Cycles now, Addr line);
    void onPageMigration(ProcId p, Cycles now, Addr addr, NodeId from,
                         NodeId to);

    void
    addBusy(ProcId p, Cycles now, Cycles c)
    {
        (void)p;
        if (cfg_.intervals)
            epochs_.at(now).t.busy += c;
    }
    void
    addMemStall(ProcId p, Cycles now, Cycles c)
    {
        (void)p;
        if (cfg_.intervals)
            epochs_.at(now).t.memStall += c;
    }
    void
    addSyncOp(ProcId p, Cycles now, Cycles c)
    {
        (void)p;
        if (cfg_.intervals)
            epochs_.at(now).t.syncOp += c;
    }
    void
    addSyncWait(ProcId p, Cycles now, Cycles c, bool lock)
    {
        (void)p;
        if (cfg_.intervals) {
            sim::ProcTimes& t = epochs_.at(now).t;
            t.syncWait += c;
            if (lock)
                t.lockWait += c;
            else
                t.barrierWait += c;
        }
    }

    // ---- results ----
    const sim::TraceConfig& config() const { return cfg_; }
    const TraceBuffer& events() const { return events_; }
    const EpochSeries& epochs() const { return epochs_; }
    const SharingProfiler& sharing() const { return sharing_; }
    const LatencyHisto& histLocal() const { return histLocal_; }
    const LatencyHisto& histRemoteClean() const { return histClean_; }
    const LatencyHisto& histRemoteDirty() const { return histDirty_; }
    const LatencyHisto& histUpgrade() const { return histUpgrade_; }

    int numProcs() const { return numProcs_; }
    double nsPerCycle() const { return nsPerCycle_; }
    NodeId
    nodeOf(ProcId p) const
    {
        return p >= 0 && p < static_cast<ProcId>(procNode_.size())
                   ? procNode_[p]
                   : sim::kNoNode;
    }

  private:
    sim::TraceConfig cfg_;
    int numProcs_;
    double nsPerCycle_;
    std::vector<NodeId> procNode_;
    TraceBuffer events_;
    EpochSeries epochs_;
    SharingProfiler sharing_;
    LatencyHisto histLocal_;
    LatencyHisto histClean_;
    LatencyHisto histDirty_;
    LatencyHisto histUpgrade_;
};

} // namespace ccnuma::obs

#endif // CCNUMA_OBS_TRACE_HH
