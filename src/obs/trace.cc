#include "obs/trace.hh"

#include <algorithm>
#include <bit>

namespace ccnuma::obs {

const char*
eventName(EventKind k)
{
    switch (k) {
    case EventKind::MissLocal: return "miss_local";
    case EventKind::MissRemoteClean: return "miss_remote_clean";
    case EventKind::MissRemoteDirty: return "miss_remote_dirty";
    case EventKind::Upgrade: return "upgrade";
    case EventKind::Invalidation: return "invalidation";
    case EventKind::Writeback: return "writeback";
    case EventKind::Prefetch: return "prefetch";
    case EventKind::FetchOp: return "fetch_op";
    case EventKind::LockAcquire: return "lock_acquire";
    case EventKind::BarrierPassed: return "barrier_passed";
    case EventKind::PageMigration: return "page_migration";
    }
    return "unknown";
}

sim::ProcCounters
EpochSeries::sumCounters() const
{
    sim::ProcCounters sum;
    for (const EpochSample& s : samples_) {
        const sim::ProcCounters& c = s.c;
        sum.loads += c.loads;
        sum.stores += c.stores;
        sum.l2Hits += c.l2Hits;
        sum.missLocal += c.missLocal;
        sum.missRemoteClean += c.missRemoteClean;
        sum.missRemoteDirty += c.missRemoteDirty;
        sum.upgrades += c.upgrades;
        sum.invalsSent += c.invalsSent;
        sum.invalsReceived += c.invalsReceived;
        sum.invalsSpurious += c.invalsSpurious;
        sum.updatesSent += c.updatesSent;
        sum.updatesReceived += c.updatesReceived;
        sum.writebacks += c.writebacks;
        sum.prefetchesIssued += c.prefetchesIssued;
        sum.prefetchesUseful += c.prefetchesUseful;
        sum.pageMigrations += c.pageMigrations;
        sum.lockAcquires += c.lockAcquires;
        sum.lockContended += c.lockContended;
        sum.barriersPassed += c.barriersPassed;
    }
    return sum;
}

sim::ProcTimes
EpochSeries::sumTimes() const
{
    sim::ProcTimes sum;
    for (const EpochSample& s : samples_) {
        sum.busy += s.t.busy;
        sum.memStall += s.t.memStall;
        sum.syncWait += s.t.syncWait;
        sum.syncOp += s.t.syncOp;
        sum.lockWait += s.t.lockWait;
        sum.barrierWait += s.t.barrierWait;
    }
    return sum;
}

void
LatencyHisto::add(Cycles lat)
{
    int b = lat < 2 ? 0 : std::bit_width(lat) - 1;
    if (b >= kBuckets)
        b = kBuckets - 1;
    ++buckets_[b];
    ++count_;
    sum_ += lat;
    if (count_ == 1 || lat < min_)
        min_ = lat;
    if (lat > max_)
        max_ = lat;
}

Cycles
LatencyHisto::quantile(double q) const
{
    if (count_ == 0)
        return 0;
    q = std::clamp(q, 0.0, 1.0);
    const std::uint64_t target = static_cast<std::uint64_t>(
        q * static_cast<double>(count_ - 1));
    std::uint64_t seen = 0;
    for (int i = 0; i < kBuckets; ++i) {
        seen += buckets_[i];
        if (seen > target)
            return std::min(bucketHi(i) - 1, max_);
    }
    return max_;
}

SharingProfiler::SharingProfiler(std::uint32_t line_bytes,
                                 std::uint32_t page_bytes)
    : lineMask_(line_bytes - 1), pageBytes_(page_bytes ? page_bytes : 1)
{
}

void
SharingProfiler::noteAccess(ProcId p, Addr addr, bool write)
{
    const LineAddr line = addr & ~static_cast<Addr>(lineMask_);
    LineInfo& li = lines_[line];
    if (write)
        ++li.writes;
    else
        ++li.reads;
    li.procs[p >> 6] |= 1ull << (p & 63);

    int w = static_cast<int>((addr & lineMask_) >> 3);
    if (w >= kMaxWords)
        w = kMaxWords - 1;
    const std::uint32_t bit = 1u << w;
    li.touchedMask |= bit;
    if (write)
        li.writtenMask |= bit;
    if (li.wordFirstProc[w] < 0)
        li.wordFirstProc[w] = static_cast<std::int16_t>(p);
    else if (li.wordFirstProc[w] != static_cast<std::int16_t>(p))
        li.sharedMask |= bit;
}

void
SharingProfiler::noteConflict(LineAddr line, EventKind kind)
{
    LineInfo& li = lines_[line];
    switch (kind) {
    case EventKind::Invalidation: ++li.invals; break;
    case EventKind::MissRemoteDirty: ++li.dirtyMisses; break;
    case EventKind::Upgrade: ++li.upgrades; break;
    default: break;
    }
}

const char*
SharingProfiler::className(Class c)
{
    switch (c) {
    case Class::Private: return "private";
    case Class::ReadShared: return "read_shared";
    case Class::TrueSharing: return "true_sharing";
    case Class::FalseSharing: return "false_sharing";
    }
    return "unknown";
}

SharingProfiler::LineReport
SharingProfiler::makeReport(LineAddr line, const LineInfo& li) const
{
    LineReport r;
    r.line = line;
    r.invalidations = li.invals;
    r.dirtyMisses = li.dirtyMisses;
    r.upgrades = li.upgrades;
    r.reads = li.reads;
    r.writes = li.writes;
    for (const std::uint64_t w : li.procs)
        r.procsTouched += std::popcount(w);
    r.wordsTouched = std::popcount(li.touchedMask);
    r.wordsShared = std::popcount(li.sharedMask);
    if (r.procsTouched <= 1)
        r.cls = Class::Private;
    else if (li.writes == 0)
        r.cls = Class::ReadShared;
    else if (li.sharedMask & li.writtenMask)
        r.cls = Class::TrueSharing;
    else
        r.cls = Class::FalseSharing;
    return r;
}

SharingProfiler::LineReport
SharingProfiler::report(LineAddr line) const
{
    const auto it = lines_.find(line);
    if (it == lines_.end()) {
        LineReport r;
        r.line = line;
        return r;
    }
    return makeReport(line, it->second);
}

std::vector<SharingProfiler::LineReport>
SharingProfiler::hotLines(std::size_t top_n) const
{
    std::vector<LineReport> all;
    all.reserve(lines_.size());
    for (const auto& [line, li] : lines_) {
        if (li.invals + li.dirtyMisses + li.upgrades == 0)
            continue;
        all.push_back(makeReport(line, li));
    }
    std::sort(all.begin(), all.end(),
              [](const LineReport& a, const LineReport& b) {
                  return a.traffic() != b.traffic()
                             ? a.traffic() > b.traffic()
                             : a.line < b.line;
              });
    if (all.size() > top_n)
        all.resize(top_n);
    return all;
}

std::vector<SharingProfiler::PageReport>
SharingProfiler::hotPages(std::size_t top_n) const
{
    std::unordered_map<sim::PageNum, PageReport> pages;
    for (const auto& [line, li] : lines_) {
        if (li.invals + li.dirtyMisses + li.upgrades == 0)
            continue;
        PageReport& pr = pages[line / pageBytes_];
        pr.page = line / pageBytes_;
        pr.invalidations += li.invals;
        pr.dirtyMisses += li.dirtyMisses;
        pr.upgrades += li.upgrades;
        ++pr.linesTracked;
    }
    std::vector<PageReport> all;
    all.reserve(pages.size());
    for (const auto& [pg, pr] : pages)
        all.push_back(pr);
    std::sort(all.begin(), all.end(),
              [](const PageReport& a, const PageReport& b) {
                  return a.traffic() != b.traffic()
                             ? a.traffic() > b.traffic()
                             : a.page < b.page;
              });
    if (all.size() > top_n)
        all.resize(top_n);
    return all;
}

Trace::Trace(const sim::TraceConfig& tc, int num_procs,
             std::uint32_t line_bytes, std::uint32_t page_bytes,
             double ns_per_cycle, std::vector<NodeId> proc_node)
    : cfg_(tc),
      numProcs_(num_procs),
      nsPerCycle_(ns_per_cycle),
      procNode_(std::move(proc_node)),
      events_(tc.events ? tc.ringCapacity : 0),
      epochs_(tc.epochCycles),
      sharing_(line_bytes, page_bytes)
{
}

void
Trace::onMiss(ProcId p, Cycles now, Cycles lat, LineAddr line,
              NodeId home, EventKind kind, bool write)
{
    if (cfg_.intervals) {
        EpochSample& s = epochs_.at(now);
        switch (kind) {
        case EventKind::MissLocal:
            ++s.c.missLocal;
            histLocal_.add(lat);
            break;
        case EventKind::MissRemoteClean:
            ++s.c.missRemoteClean;
            histClean_.add(lat);
            break;
        case EventKind::MissRemoteDirty:
            ++s.c.missRemoteDirty;
            histDirty_.add(lat);
            break;
        default: break;
        }
    }
    if (cfg_.events)
        events_.push({now, line, static_cast<std::uint32_t>(lat),
                      static_cast<std::int16_t>(p),
                      static_cast<std::int16_t>(home), kind,
                      static_cast<std::uint8_t>(write ? 1 : 0)});
    if (cfg_.sharing && kind == EventKind::MissRemoteDirty)
        sharing_.noteConflict(line, kind);
}

void
Trace::onUpgrade(ProcId p, Cycles now, Cycles lat, LineAddr line,
                 NodeId home, int sharers_invalidated)
{
    if (cfg_.intervals) {
        ++epochs_.at(now).c.upgrades;
        histUpgrade_.add(lat);
    }
    if (cfg_.events)
        events_.push({now, line, static_cast<std::uint32_t>(lat),
                      static_cast<std::int16_t>(p),
                      static_cast<std::int16_t>(home),
                      EventKind::Upgrade,
                      static_cast<std::uint8_t>(std::min(
                          sharers_invalidated, 255))});
    if (cfg_.sharing)
        sharing_.noteConflict(line, EventKind::Upgrade);
}

void
Trace::onInval(ProcId requester, ProcId victim, Cycles now,
               LineAddr line, NodeId home)
{
    if (cfg_.intervals) {
        EpochSample& s = epochs_.at(now);
        ++s.c.invalsSent;
        ++s.c.invalsReceived;
    }
    if (cfg_.events)
        events_.push({now, line, 0, static_cast<std::int16_t>(victim),
                      static_cast<std::int16_t>(home),
                      EventKind::Invalidation,
                      static_cast<std::uint8_t>(requester & 0xff)});
    if (cfg_.sharing)
        sharing_.noteConflict(line, EventKind::Invalidation);
}

void
Trace::onWriteback(ProcId p, Cycles now, LineAddr line, NodeId home)
{
    if (cfg_.intervals)
        ++epochs_.at(now).c.writebacks;
    if (cfg_.events)
        events_.push({now, line, 0, static_cast<std::int16_t>(p),
                      static_cast<std::int16_t>(home),
                      EventKind::Writeback, 0});
}

void
Trace::onPrefetchIssue(ProcId p, Cycles now, LineAddr line, NodeId home,
                       const sim::ProcCounters& folded)
{
    if (cfg_.intervals) {
        EpochSample& s = epochs_.at(now);
        ++s.c.prefetchesIssued;
        s.c.missLocal += folded.missLocal;
        s.c.missRemoteClean += folded.missRemoteClean;
        s.c.missRemoteDirty += folded.missRemoteDirty;
        s.c.writebacks += folded.writebacks;
        s.c.pageMigrations += folded.pageMigrations;
    }
    if (cfg_.events)
        events_.push({now, line, 0, static_cast<std::int16_t>(p),
                      static_cast<std::int16_t>(home),
                      EventKind::Prefetch, 0});
}

void
Trace::onFetchOp(ProcId p, Cycles now, Cycles lat, Addr addr,
                 NodeId home)
{
    // fetch&op has no ProcCounters entry; it appears in the event
    // stream only.
    if (cfg_.events)
        events_.push({now, addr, static_cast<std::uint32_t>(lat),
                      static_cast<std::int16_t>(p),
                      static_cast<std::int16_t>(home),
                      EventKind::FetchOp, 0});
}

void
Trace::onLockAcquire(ProcId p, Cycles now, Addr line, NodeId home,
                     bool contended)
{
    if (cfg_.intervals) {
        EpochSample& s = epochs_.at(now);
        ++s.c.lockAcquires;
        if (contended)
            ++s.c.lockContended;
    }
    if (cfg_.events)
        events_.push({now, line, 0, static_cast<std::int16_t>(p),
                      static_cast<std::int16_t>(home),
                      EventKind::LockAcquire,
                      static_cast<std::uint8_t>(contended ? 1 : 0)});
}

void
Trace::onBarrierPassed(ProcId p, Cycles now, Addr line)
{
    if (cfg_.intervals)
        ++epochs_.at(now).c.barriersPassed;
    if (cfg_.events)
        events_.push({now, line, 0, static_cast<std::int16_t>(p), -1,
                      EventKind::BarrierPassed, 0});
}

void
Trace::onPageMigration(ProcId p, Cycles now, Addr addr, NodeId from,
                       NodeId to)
{
    if (cfg_.intervals)
        ++epochs_.at(now).c.pageMigrations;
    if (cfg_.events)
        events_.push({now, addr, 0, static_cast<std::int16_t>(p),
                      static_cast<std::int16_t>(from),
                      EventKind::PageMigration,
                      static_cast<std::uint8_t>(to & 0xff)});
}

} // namespace ccnuma::obs
