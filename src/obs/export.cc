#include "obs/export.hh"

#include <cstdio>
#include <fstream>

#include "obs/json.hh"

namespace ccnuma::obs {

namespace {

std::string
hexAddr(Addr a)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "0x%llx",
                  static_cast<unsigned long long>(a));
    return buf;
}

// Local counter summation: obs must not reference symbols defined in
// ccnuma_sim .cc files (RunResult::totals lives there), see trace.hh.
sim::ProcCounters
sumCounters(const sim::RunResult& r)
{
    sim::ProcCounters sum;
    for (const sim::ProcStats& ps : r.procs) {
        const sim::ProcCounters& c = ps.c;
        sum.loads += c.loads;
        sum.stores += c.stores;
        sum.l2Hits += c.l2Hits;
        sum.missLocal += c.missLocal;
        sum.missRemoteClean += c.missRemoteClean;
        sum.missRemoteDirty += c.missRemoteDirty;
        sum.upgrades += c.upgrades;
        sum.invalsSent += c.invalsSent;
        sum.invalsReceived += c.invalsReceived;
        sum.invalsSpurious += c.invalsSpurious;
        sum.updatesSent += c.updatesSent;
        sum.updatesReceived += c.updatesReceived;
        sum.writebacks += c.writebacks;
        sum.prefetchesIssued += c.prefetchesIssued;
        sum.prefetchesUseful += c.prefetchesUseful;
        sum.pageMigrations += c.pageMigrations;
        sum.lockAcquires += c.lockAcquires;
        sum.lockContended += c.lockContended;
        sum.barriersPassed += c.barriersPassed;
    }
    return sum;
}

void
writeCounters(JsonWriter& w, const std::string& key,
              const sim::ProcCounters& c)
{
    w.beginObject(key);
    w.field("loads", c.loads);
    w.field("stores", c.stores);
    w.field("l2Hits", c.l2Hits);
    w.field("missLocal", c.missLocal);
    w.field("missRemoteClean", c.missRemoteClean);
    w.field("missRemoteDirty", c.missRemoteDirty);
    w.field("upgrades", c.upgrades);
    w.field("invalsSent", c.invalsSent);
    w.field("invalsReceived", c.invalsReceived);
    w.field("invalsSpurious", c.invalsSpurious);
    w.field("updatesSent", c.updatesSent);
    w.field("updatesReceived", c.updatesReceived);
    w.field("writebacks", c.writebacks);
    w.field("prefetchesIssued", c.prefetchesIssued);
    w.field("prefetchesUseful", c.prefetchesUseful);
    w.field("pageMigrations", c.pageMigrations);
    w.field("lockAcquires", c.lockAcquires);
    w.field("lockContended", c.lockContended);
    w.field("barriersPassed", c.barriersPassed);
    w.endObject();
}

void
writeTimes(JsonWriter& w, const std::string& key, const sim::ProcTimes& t)
{
    w.beginObject(key);
    w.field("busy", t.busy);
    w.field("memStall", t.memStall);
    w.field("syncWait", t.syncWait);
    w.field("syncOp", t.syncOp);
    w.field("lockWait", t.lockWait);
    w.field("barrierWait", t.barrierWait);
    w.endObject();
}

void
writeHisto(JsonWriter& w, const std::string& key, const LatencyHisto& h)
{
    w.beginObject(key);
    w.field("count", h.count());
    w.field("minCycles", h.min());
    w.field("maxCycles", h.max());
    w.field("meanCycles", h.mean());
    w.field("p50", h.quantile(0.50));
    w.field("p95", h.quantile(0.95));
    w.field("p99", h.quantile(0.99));
    w.beginArray("buckets");
    h.forEachBucket([&](Cycles lo, Cycles hi, std::uint64_t n) {
        w.beginObject();
        w.field("loCycles", lo);
        w.field("hiCycles", hi);
        w.field("count", n);
        w.endObject();
    });
    w.endArray();
    w.endObject();
}

} // namespace

void
writeChromeTrace(std::ostream& os, const Trace& t)
{
    JsonWriter w(os, 0); // compact: traces are large
    const double us_per_cycle = t.nsPerCycle() / 1000.0;
    w.beginObject();
    w.field("displayTimeUnit", "ns");
    w.beginObject("otherData");
    w.field("generator", "ccnuma-scale obs");
    w.field("numProcs", t.numProcs());
    w.field("eventsRecorded", t.events().recorded());
    w.field("eventsDropped", t.events().dropped());
    w.endObject();
    w.beginArray("traceEvents");

    // Name each processor row "proc P (node N)".
    for (int p = 0; p < t.numProcs(); ++p) {
        w.beginObject();
        w.field("name", "thread_name");
        w.field("ph", "M");
        w.field("pid", static_cast<std::int64_t>(t.nodeOf(p)));
        w.field("tid", p);
        w.beginObject("args");
        w.field("name", "proc " + std::to_string(p));
        w.endObject();
        w.endObject();
    }

    t.events().forEach([&](const TraceRecord& r) {
        w.beginObject();
        w.field("name", eventName(r.kind));
        w.field("cat", "protocol");
        w.field("pid", static_cast<std::int64_t>(t.nodeOf(r.proc)));
        w.field("tid", static_cast<int>(r.proc));
        w.field("ts", static_cast<double>(r.start) * us_per_cycle);
        if (r.latency > 0) {
            w.field("ph", "X");
            w.field("dur",
                    static_cast<double>(r.latency) * us_per_cycle);
        } else {
            w.field("ph", "i");
            w.field("s", "t");
        }
        w.beginObject("args");
        w.field("addr", hexAddr(r.addr));
        w.field("home", static_cast<int>(r.home));
        w.field("cycle", static_cast<std::uint64_t>(r.start));
        w.field("latencyCycles",
                static_cast<std::uint64_t>(r.latency));
        w.field("aux", static_cast<int>(r.aux));
        w.endObject();
        w.endObject();
    });

    w.endArray();
    w.endObject();
    os << '\n';
}

bool
writeChromeTraceFile(const std::string& path, const Trace& t)
{
    std::ofstream f(path);
    if (!f)
        return false;
    writeChromeTrace(f, t);
    return static_cast<bool>(f);
}

void
writeMetricsJson(std::ostream& os, const Trace& t,
                 const sim::RunResult* r)
{
    JsonWriter w(os, 2);
    w.beginObject();

    w.beginObject("config");
    w.field("epochCycles",
            static_cast<std::uint64_t>(t.epochs().epochCycles()));
    w.field("numProcs", t.numProcs());
    w.field("nsPerCycle", t.nsPerCycle());
    w.field("events", t.config().events);
    w.field("intervals", t.config().intervals);
    w.field("sharing", t.config().sharing);
    w.endObject();

    if (r) {
        w.field("runCycles", static_cast<std::uint64_t>(r->time));
        writeCounters(w, "totals", sumCounters(*r));
    } else {
        writeCounters(w, "totals", t.epochs().sumCounters());
    }
    writeTimes(w, "totalTimes", t.epochs().sumTimes());

    w.beginObject("ring");
    w.field("capacity",
            static_cast<std::uint64_t>(t.events().capacity()));
    w.field("recorded", t.events().recorded());
    w.field("dropped", t.events().dropped());
    w.endObject();

    w.beginArray("epochs");
    for (std::size_t i = 0; i < t.epochs().numEpochs(); ++i) {
        const EpochSample& s = t.epochs().epoch(i);
        w.beginObject();
        w.field("epoch", static_cast<std::uint64_t>(i));
        w.field("startCycle", static_cast<std::uint64_t>(
                                  i * t.epochs().epochCycles()));
        writeCounters(w, "counters", s.c);
        writeTimes(w, "times", s.t);
        w.endObject();
    }
    w.endArray();

    w.beginObject("latencyHistograms");
    writeHisto(w, "missLocal", t.histLocal());
    writeHisto(w, "missRemoteClean", t.histRemoteClean());
    writeHisto(w, "missRemoteDirty", t.histRemoteDirty());
    writeHisto(w, "upgrade", t.histUpgrade());
    w.endObject();

    w.beginArray("hotLines");
    for (const auto& l : t.sharing().hotLines(32)) {
        w.beginObject();
        w.field("line", hexAddr(l.line));
        w.field("class", SharingProfiler::className(l.cls));
        w.field("invalidations", l.invalidations);
        w.field("dirtyMisses", l.dirtyMisses);
        w.field("upgrades", l.upgrades);
        w.field("reads", l.reads);
        w.field("writes", l.writes);
        w.field("procsTouched", l.procsTouched);
        w.field("wordsTouched", l.wordsTouched);
        w.field("wordsShared", l.wordsShared);
        w.endObject();
    }
    w.endArray();

    w.beginArray("hotPages");
    for (const auto& p : t.sharing().hotPages(16)) {
        w.beginObject();
        w.field("page", static_cast<std::uint64_t>(p.page));
        w.field("invalidations", p.invalidations);
        w.field("dirtyMisses", p.dirtyMisses);
        w.field("upgrades", p.upgrades);
        w.field("linesTracked", p.linesTracked);
        w.endObject();
    }
    w.endArray();

    w.endObject();
    os << '\n';
}

bool
writeMetricsJsonFile(const std::string& path, const Trace& t,
                     const sim::RunResult* r)
{
    std::ofstream f(path);
    if (!f)
        return false;
    writeMetricsJson(f, t, r);
    return static_cast<bool>(f);
}

} // namespace ccnuma::obs
