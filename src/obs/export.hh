/**
 * @file
 * Trace exporters: Chrome trace_event JSON (loadable in
 * chrome://tracing and Perfetto) and a machine-readable metrics JSON
 * document (epoch time-series, latency histograms, hot lines/pages).
 */

#ifndef CCNUMA_OBS_EXPORT_HH
#define CCNUMA_OBS_EXPORT_HH

#include <ostream>
#include <string>

#include "obs/trace.hh"
#include "sim/stats.hh"

namespace ccnuma::obs {

/**
 * Write the event ring buffer as Chrome trace_event JSON.
 *
 * Mapping: pid = home/owning node, tid = processor; events with a
 * latency become complete ("X") slices, instantaneous protocol events
 * become instant ("i") events; timestamps are microseconds of simulated
 * time. Thread-name metadata labels each processor row.
 */
void writeChromeTrace(std::ostream& os, const Trace& t);

/// writeChromeTrace to a file; returns false on I/O error.
bool writeChromeTraceFile(const std::string& path, const Trace& t);

/**
 * Write the metrics document: run totals, per-epoch counter/time
 * samples, per-class miss-latency histograms and the sharing
 * profiler's hot lines and pages. `r` (optional) supplies the
 * authoritative run totals and wall time; pass nullptr to derive
 * totals from the epoch series instead.
 */
void writeMetricsJson(std::ostream& os, const Trace& t,
                      const sim::RunResult* r = nullptr);

/// writeMetricsJson to a file; returns false on I/O error.
bool writeMetricsJsonFile(const std::string& path, const Trace& t,
                          const sim::RunResult* r = nullptr);

} // namespace ccnuma::obs

#endif // CCNUMA_OBS_EXPORT_HH
