#include "obs/json.hh"

#include <cmath>
#include <cstdio>

namespace ccnuma::obs {

std::string
JsonWriter::escape(const std::string& s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
JsonWriter::prefix(const std::string& key)
{
    if (!stack_.empty()) {
        if (stack_.back())
            os_ << ',';
        stack_.back() = true;
        if (indent_ > 0) {
            os_ << '\n';
            for (std::size_t i = 0; i < stack_.size(); ++i)
                for (int j = 0; j < indent_; ++j)
                    os_ << ' ';
        }
    }
    if (!key.empty())
        os_ << '"' << escape(key) << "\":" << (indent_ > 0 ? " " : "");
}

void
JsonWriter::beginObject(const std::string& key)
{
    prefix(key);
    os_ << '{';
    stack_.push_back(false);
}

void
JsonWriter::endObject()
{
    const bool had = !stack_.empty() && stack_.back();
    if (!stack_.empty())
        stack_.pop_back();
    if (had && indent_ > 0) {
        os_ << '\n';
        for (std::size_t i = 0; i < stack_.size(); ++i)
            for (int j = 0; j < indent_; ++j)
                os_ << ' ';
    }
    os_ << '}';
}

void
JsonWriter::beginArray(const std::string& key)
{
    prefix(key);
    os_ << '[';
    stack_.push_back(false);
}

void
JsonWriter::endArray()
{
    const bool had = !stack_.empty() && stack_.back();
    if (!stack_.empty())
        stack_.pop_back();
    if (had && indent_ > 0) {
        os_ << '\n';
        for (std::size_t i = 0; i < stack_.size(); ++i)
            for (int j = 0; j < indent_; ++j)
                os_ << ' ';
    }
    os_ << ']';
}

void
JsonWriter::field(const std::string& key, const std::string& v)
{
    prefix(key);
    os_ << '"' << escape(v) << '"';
}

void
JsonWriter::field(const std::string& key, const char* v)
{
    field(key, std::string(v));
}

void
JsonWriter::field(const std::string& key, double v)
{
    prefix(key);
    if (!std::isfinite(v)) {
        os_ << "null";
        return;
    }
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.10g", v);
    os_ << buf;
}

void
JsonWriter::field(const std::string& key, std::uint64_t v)
{
    prefix(key);
    os_ << v;
}

void
JsonWriter::field(const std::string& key, std::int64_t v)
{
    prefix(key);
    os_ << v;
}

void
JsonWriter::field(const std::string& key, int v)
{
    prefix(key);
    os_ << v;
}

void
JsonWriter::field(const std::string& key, bool v)
{
    prefix(key);
    os_ << (v ? "true" : "false");
}

} // namespace ccnuma::obs
