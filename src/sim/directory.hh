/**
 * @file
 * Full-bit-vector coherence directory (one logical entry per cache line,
 * materialized on demand), as kept at each Origin2000 home Hub.
 */

#ifndef CCNUMA_SIM_DIRECTORY_HH
#define CCNUMA_SIM_DIRECTORY_HH

#include <array>
#include <cstdint>
#include <unordered_map>

#include "sim/types.hh"

namespace ccnuma::sim {

/** Compact set of sharer processors (up to kMaxProcs). */
class SharerSet
{
  public:
    void add(ProcId p) { bits_[p >> 6] |= 1ull << (p & 63); }
    void remove(ProcId p) { bits_[p >> 6] &= ~(1ull << (p & 63)); }
    bool contains(ProcId p) const
    {
        return bits_[p >> 6] & (1ull << (p & 63));
    }
    void clear() { bits_ = {}; }
    int count() const;
    bool empty() const
    {
        for (auto b : bits_)
            if (b)
                return false;
        return true;
    }
    /// Call fn(ProcId) for each member.
    template <typename Fn>
    void forEach(Fn&& fn) const
    {
        for (std::size_t w = 0; w < bits_.size(); ++w) {
            std::uint64_t b = bits_[w];
            while (b) {
                const int bit = __builtin_ctzll(b);
                fn(static_cast<ProcId>(w * 64 + bit));
                b &= b - 1;
            }
        }
    }

  private:
    std::array<std::uint64_t, kMaxProcs / 64> bits_{};
};

/** Directory state for one line. */
enum class DirState : std::uint8_t {
    Uncached, ///< No cached copies.
    Shared,   ///< One or more clean copies.
    Dirty,    ///< Exactly one modified copy at `owner`.
};

/** One directory entry. */
struct DirEntry {
    DirState state = DirState::Uncached;
    ProcId owner = kNoProc;
    SharerSet sharers;
};

/**
 * The machine-wide directory. Entries live in a hash map keyed by line
 * address; lines never cached have no entry (implicitly Uncached).
 */
class Directory
{
  public:
    Directory() { entries_.reserve(1u << 16); }

    /// Entry for a line, creating it Uncached if absent.
    DirEntry& lookup(LineAddr line) { return entries_[line]; }

    /// Entry if present, else nullptr (no allocation).
    const DirEntry* probe(LineAddr line) const
    {
        auto it = entries_.find(line);
        return it == entries_.end() ? nullptr : &it->second;
    }

    /// Drop an entry once a line returns to Uncached, bounding map growth.
    void drop(LineAddr line) { entries_.erase(line); }

    std::size_t size() const { return entries_.size(); }

    /// Call fn(lineAddr, entry) for every entry (validation/tests).
    template <typename Fn>
    void
    forEach(Fn&& fn) const
    {
        for (const auto& [line, e] : entries_)
            fn(line, e);
    }

  private:
    std::unordered_map<LineAddr, DirEntry> entries_;
};

} // namespace ccnuma::sim

#endif // CCNUMA_SIM_DIRECTORY_HH
