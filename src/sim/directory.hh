/**
 * @file
 * Full-bit-vector coherence directory (one logical entry per cache line,
 * materialized on demand), as kept at each Origin2000 home Hub.
 *
 * Storage is sharded per home node, one open-addressing flat hash per
 * shard (see flat_hash.hh). A line's shard is its *static* page-
 * interleaved home — a pure function of the address — so the mapping
 * stays stable even when dynamic page migration moves a page's actual
 * home node mid-run. Sharding keeps each table small and its probe
 * windows dense, which is where the flat layout's cache behaviour wins
 * over one big node-based map.
 *
 * Reference stability: lookup() returns a reference into a flat table,
 * which is invalidated by any later insert (rehash) or drop (backward
 * shift). Callers must not hold an entry reference across other
 * Directory calls that may mutate the same shard.
 */

#ifndef CCNUMA_SIM_DIRECTORY_HH
#define CCNUMA_SIM_DIRECTORY_HH

#include <array>
#include <bit>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/flat_hash.hh"
#include "sim/protocol.hh"
#include "sim/types.hh"

namespace ccnuma::sim {

/** Compact set of sharer processors (up to kMaxProcs). */
class SharerSet
{
  public:
    void add(ProcId p) { bits_[p >> 6] |= 1ull << (p & 63); }
    void remove(ProcId p) { bits_[p >> 6] &= ~(1ull << (p & 63)); }
    bool contains(ProcId p) const
    {
        return bits_[p >> 6] & (1ull << (p & 63));
    }
    void clear() { bits_ = {}; }
    int count() const;
    bool empty() const
    {
        for (auto b : bits_)
            if (b)
                return false;
        return true;
    }
    /// Call fn(ProcId) for each member.
    template <typename Fn>
    void forEach(Fn&& fn) const
    {
        for (std::size_t w = 0; w < bits_.size(); ++w) {
            std::uint64_t b = bits_[w];
            while (b) {
                const int bit = __builtin_ctzll(b);
                fn(static_cast<ProcId>(w * 64 + bit));
                b &= b - 1;
            }
        }
    }

    bool operator==(const SharerSet&) const = default;

  private:
    std::array<std::uint64_t, kMaxProcs / 64> bits_{};
};

/** Directory state for one line. */
enum class DirState : std::uint8_t {
    Uncached, ///< No cached copies.
    Shared,   ///< One or more clean copies.
    Dirty,    ///< Exactly one modified copy at `owner`.
    Owned,    ///< Modified copy at `owner` plus clean copies at the
              ///< other sharers; `owner` (a member of `sharers`)
              ///< supplies the data (MOESI/Dragon only).
};

/** One directory entry. */
struct DirEntry {
    DirState state = DirState::Uncached;
    ProcId owner = kNoProc;
    /// Limited-pointer (Dir_iB) overflow: the sharer count exceeded
    /// the pointer budget, so invalidations broadcast to every
    /// processor. Reset when the entry is dropped or retaken
    /// exclusively. Always false under other directory formats.
    bool overflow = false;
    SharerSet sharers;

    bool operator==(const DirEntry&) const = default;
};

/**
 * Call fn(ProcId) for every processor the home signals on an
 * invalidation/update fan-out for entry `e` under directory format
 * `fmt`: exact sharers under fullbv, every processor of every marked
 * region under coarse:K, and everybody once a ptr:N entry has
 * overflowed. Ascending processor order in every format.
 *
 * Pure query over a (possibly hypothetical) entry — it never touches
 * a live Directory — so it is shared by the MemSys fan-out paths and
 * by ccnuma::model's fan-out-consistency invariant, which asks what
 * the format *would* signal for each reachable entry.
 */
template <typename Fn>
void
forEachFanoutTarget(const DirectoryConfig& fmt, const DirEntry& e,
                    int numProcs, Fn&& fn)
{
    switch (fmt.format) {
      case DirFormat::FullBitVector:
        e.sharers.forEach(fn);
        return;
      case DirFormat::CoarseVector: {
        const int k = fmt.param;
        std::uint64_t regions[kMaxProcs / 64] = {};
        e.sharers.forEach([&](ProcId s) {
            const int r = s / k;
            regions[r >> 6] |= 1ull << (r & 63);
        });
        for (int t = 0; t < numProcs; ++t) {
            const int r = t / k;
            if (regions[r >> 6] & (1ull << (r & 63)))
                fn(static_cast<ProcId>(t));
        }
        return;
      }
      case DirFormat::LimitedPtr:
        if (!e.overflow) {
            e.sharers.forEach(fn);
            return;
        }
        for (int t = 0; t < numProcs; ++t)
            fn(static_cast<ProcId>(t));
        return;
    }
}

/**
 * The machine-wide directory. Entries live in per-home-shard flat hash
 * tables keyed by line address; lines never cached have no entry
 * (implicitly Uncached).
 *
 * Test seam: enableShadow(true) mirrors every operation into a
 * reference std::unordered_map (the pre-optimization representation);
 * shadowDiff() reports the first divergence. Because callers mutate
 * the reference lookup() hands out, the mirror copy is deferred to the
 * next Directory call (at which point the caller-side mutations are
 * complete and the slot has not yet moved).
 */
class Directory
{
  public:
    /// @param numNodes home nodes to shard across (rounded up to a
    ///        power of two internally)
    /// @param pageBytes machine page size (shard key granularity — one
    ///        page's lines share a shard, mirroring page homing)
    explicit Directory(int numNodes = 1,
                       std::uint32_t pageBytes = 16u << 10);

    /// Entry for a line, creating it Uncached if absent. The reference
    /// is invalidated by any later lookup() of an absent line or
    /// drop() in the same shard.
    DirEntry&
    lookup(LineAddr line)
    {
        if (!shadowOn_) [[likely]]
            return shards_[shardOf(line)][line];
        return shadowLookup(line);
    }

    /// Entry if present, else nullptr (no allocation).
    const DirEntry*
    probe(LineAddr line) const
    {
        if (shadowOn_)
            flushShadow();
        return shards_[shardOf(line)].find(line);
    }

    /// Drop an entry once a line returns to Uncached, bounding growth.
    void
    drop(LineAddr line)
    {
        if (shadowOn_) {
            flushShadow();
            shadow_.erase(line);
        }
        shards_[shardOf(line)].erase(line);
    }

    std::size_t
    size() const
    {
        std::size_t n = 0;
        for (const auto& s : shards_)
            n += s.size();
        return n;
    }

    /// Presize every shard for ~`totalLines` live entries spread
    /// across them (ROADMAP: ~6% of directory time was FlatHashMap
    /// rehash churn). Growth-only and allocation-only: reservation
    /// never changes entry contents, so simulated metrics are
    /// untouched. Safe to call repeatedly as the footprint grows.
    void
    reserveLines(std::uint64_t totalLines)
    {
        if (shards_.empty())
            return;
        const std::uint64_t per =
            totalLines / shards_.size() + 1;
        for (auto& s : shards_)
            s.reserve(static_cast<std::size_t>(per));
    }

    /// Call fn(lineAddr, entry) for every entry (validation/tests).
    template <typename Fn>
    void
    forEach(Fn&& fn) const
    {
        if (shadowOn_)
            flushShadow();
        for (const auto& s : shards_)
            s.forEach(fn);
    }

    // ---- Differential-test seam ----

    /// Mirror every operation into a reference std::unordered_map.
    /// Enable before first use (entries already present are not
    /// back-filled).
    void enableShadow(bool on) { shadowOn_ = on; }
    bool shadowEnabled() const { return shadowOn_; }

    /// Compare the flat storage against the reference map; empty string
    /// when identical, else a description of the first divergence.
    std::string shadowDiff() const;

  private:
    std::uint32_t
    shardOf(LineAddr line) const
    {
        return static_cast<std::uint32_t>(line >> pageShift_) &
               shardMask_;
    }

    DirEntry& shadowLookup(LineAddr line);
    void flushShadow() const;

    std::vector<FlatHashMap<DirEntry>> shards_;
    std::uint32_t shardMask_ = 0;
    std::uint32_t pageShift_ = 14;

    // Shadow state is logically part of validation, not simulation;
    // mutable so const readers (probe/forEach/shadowDiff) can flush
    // the one deferred mirror write first.
    bool shadowOn_ = false;
    mutable std::unordered_map<LineAddr, DirEntry> shadow_;
    mutable LineAddr pendingLine_ = 0;
    mutable const DirEntry* pendingEntry_ = nullptr;
};

} // namespace ccnuma::sim

#endif // CCNUMA_SIM_DIRECTORY_HH
