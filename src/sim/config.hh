/**
 * @file
 * Machine configuration for the simulated CC-NUMA multiprocessor.
 *
 * Default values calibrate the simulator to the 195 MHz SGI Origin2000
 * described in the paper (Jiang & Singh, ISCA 1999): 338 ns local miss,
 * 656 ns nearest remote-clean miss and 892 ns remote-dirty miss (Table 1),
 * a 4 MB 2-way L2 with 128-byte lines, 16 KB pages, two processors per
 * node sharing a Hub, and two nodes per router.
 */

#ifndef CCNUMA_SIM_CONFIG_HH
#define CCNUMA_SIM_CONFIG_HH

#include <cstddef>
#include <cstdint>
#include <string>

#include "sim/protocol.hh"
#include "sim/types.hh"

namespace ccnuma::sim {

/** Page placement policy applied by the page table. */
enum class Placement {
    FirstTouch,  ///< Page homed at the node of the first toucher.
    RoundRobin,  ///< Pages homed round-robin across nodes.
    Explicit,    ///< Application-directed placement (the "manual" scheme).
};

/** How simulated processes are mapped onto physical processors. */
enum class Mapping {
    Linear,       ///< Process i runs on processor i.
    Random,       ///< Seeded random permutation of processes.
    PairedRandom, ///< Process pairs (2i, 2i+1) stay co-located on a node,
                  ///< but node assignment is a random permutation.
};

/** Synchronization primitive implementation style (Section 6.3). */
enum class SyncKind {
    LLSC,    ///< Load-linked/store-conditional on cached lines.
    FetchOp, ///< At-memory uncached fetch&op as on the Origin Hub.
};

/** Barrier algorithm selector (Section 6.3). */
enum class BarrierAlg {
    Tournament,  ///< O(log P) tournament barrier.
    Centralized, ///< Single counter + sense-reversal flag.
};

/**
 * Observability knobs (the `ccnuma::obs` subsystem). All three layers
 * are purely observational — enabling them never changes simulated
 * cycle counts — and all default off. When the project is built with
 * -DCCNUMA_TRACING=OFF these flags are inert: the hooks are compiled
 * out of the simulator entirely.
 */
struct TraceConfig {
    /// Capture typed protocol events into a ring buffer.
    bool events = false;
    /// Slice counters/times into epochs and build latency histograms.
    bool intervals = false;
    /// Attribute coherence traffic to lines/pages (true/false sharing).
    bool sharing = false;
    /// Ring-buffer capacity in records (oldest overwritten on wrap).
    std::size_t ringCapacity = 1u << 20;
    /// Epoch length for the interval metrics, in cycles.
    Cycles epochCycles = 100000;

    bool any() const { return events || intervals || sharing; }
};

/**
 * Deliberate protocol mutations for harness self-tests. Honored only
 * when the project is built with -DCCNUMA_CHECK_MUTATE=ON (the
 * default): the verification suite proves the SC oracle has teeth by
 * breaking one transition and asserting the break is detected. With
 * the option OFF the mutation code is compiled out entirely and these
 * values are inert.
 */
enum class CheckMutation : std::uint8_t {
    None,             ///< Correct protocol (the only production value).
    SkipInvalidation, ///< Spare the first sharer of every invalidation
                      ///< fan-out, leaving it a stale cached copy.
    DropLockAcquire,  ///< De-synchronize the program: lock acquires are
                      ///< charged but never take the lock (no mutual
                      ///< exclusion, no happens-before edges), and the
                      ///< matching releases are no-ops. The race
                      ///< analyzer (ccnuma::analyze) must catch the
                      ///< resulting data races.
    CorruptMoesiTable, ///< Corrupt the machine's (private) protocol
                       ///< transition table: the remote-write x Shared
                       ///< cell forgets its invalidation, leaving every
                       ///< sharer of a written line a stale copy. Built
                       ///< for the MOESI table self-test, but breaks any
                       ///< invalidation-based protocol the same way.
    DropOwnedWriteback, ///< Evicting an Owned victim forgets the
                        ///< memory writeback: the remaining copies go
                        ///< Shared while home memory keeps the stale
                        ///< pre-ownership value (the dropped-action
                        ///< sibling of DropLockAcquire, at the
                        ///< protocol layer; MOESI/Dragon only). The
                        ///< model checker must find it exhaustively.
};

/**
 * Verification knobs (the `ccnuma::check` subsystem).
 */
struct CheckConfig {
    /// When > 0, the SC oracle attached to this machine re-runs
    /// MemSys::validateCoherence() every `validateEvery` commits
    /// (loads+stores), catching invariant breaks close to where they
    /// happen. 0 disables cadence validation (end-of-run checks only).
    std::uint64_t validateEvery = 0;
    /// Deliberately broken protocol transition (see CheckMutation).
    CheckMutation mutation = CheckMutation::None;
    /// Mirror every directory operation into a reference
    /// std::unordered_map and fail validateCoherence() on divergence —
    /// the differential-test seam for the flat sharded directory.
    /// Costs one map operation per directory operation when on.
    bool shadowDirectory = false;
    /// Drive the scheduler from the legacy std::priority_queue instead
    /// of the calendar queue (cycle-identity test seam: both orders
    /// must produce bit-identical runs).
    bool legacySchedulerQueue = false;
    /// Run MemSys::access through the preserved hard-coded MESI body
    /// instead of the table-driven protocol engine (bit-identity test
    /// seam; valid only for protocol=mesi + dirFormat=fullbv). Both
    /// paths must produce bit-identical runs.
    bool legacyMesiPath = false;
    /// Force the serial engine even when simJobs asks for parallel
    /// execution (bit-identity test seam for the node-sharded scout/
    /// replay engine, like legacySchedulerQueue). Both engines must
    /// produce bit-identical runs.
    bool serialEngine = false;
};

/**
 * Full parameterization of the simulated machine.
 *
 * All latencies are in processor cycles; helpers below compose them into
 * the end-to-end transaction latencies of Table 1.
 */
struct MachineConfig {
    /// Total processors. Must be a multiple of procsPerNode.
    int numProcs = 32;
    /// Processors sharing one node (Hub + memory). Origin2000: 2.
    int procsPerNode = 2;
    /// Nodes sharing one router. Origin2000: 2.
    int nodesPerRouter = 2;
    /// Processors per hypercube module; >= numProcs means no metarouters.
    /// The paper's 128p machine is four 32p modules joined by metarouters.
    int procsPerModule = 32;

    /// Processor clock in MHz (195 MHz R10000).
    double clockMHz = 195.0;

    /// Unified L2 cache size in bytes (4 MB).
    std::uint64_t cacheBytes = 4u << 20;
    /// L2 associativity (2-way).
    int cacheAssoc = 2;
    /// Cache line size in bytes (128 B).
    std::uint32_t lineBytes = 128;
    /// Page size in bytes (16 KB).
    std::uint32_t pageBytes = 16u << 10;

    // ---- Latency components (cycles) ----
    /// L2 hit cost charged as memory stall.
    Cycles l2HitCycles = 8;
    /// Processor-side issue overhead per miss (each direction).
    Cycles procCycles = 4;
    /// Hub service latency; also its occupancy per traversal.
    Cycles hubCycles = 7;
    /// DRAM access latency at the home memory.
    Cycles memCycles = 40;
    /// Memory occupancy per line transfer (bandwidth model).
    Cycles memOccupancy = 40;
    /// Hub occupancy per transaction traversal.
    Cycles hubOccupancy = 10;
    /// Directory lookup/update cost at the home Hub.
    Cycles dirCycles = 4;
    /// Per-router-hop latency, each direction.
    Cycles routerCycles = 10;
    /// Link/NI cost per network traversal (fixed part, each direction).
    Cycles linkCycles = 14;
    /// Router occupancy per traversal.
    Cycles routerOccupancy = 3;
    /// Extra metarouter hop latency per crossing (each direction).
    Cycles metaRouterCycles = 24;
    /// Metarouter occupancy per crossing.
    Cycles metaRouterOccupancy = 5;

    // ---- Coherence protocol & directory format ----
    /// Protocol choice plus its latency knobs (see sim/protocol.hh).
    /// Select with ProtocolConfig::parse("mesi"|"moesi"|"dragon").
    ProtocolConfig protocol;
    /// Directory sharer representation ("fullbv"|"coarse:K"|"ptr:N").
    DirectoryConfig dirFormat;

    /// DEPRECATED (one release): renamed to protocol.interventionCycles.
    /// resolved() copies a non-default value set here into the new
    /// field; new code should set protocol.interventionCycles directly.
    Cycles interventionCycles = 22;
    /// DEPRECATED (one release): renamed to
    /// protocol.invalPerSharerCycles; see interventionCycles above.
    Cycles invalPerSharerCycles = 4;

    // ---- Policies ----
    Placement placement = Placement::Explicit;
    Mapping mapping = Mapping::Linear;
    std::uint64_t mappingSeed = 12345;
    SyncKind syncKind = SyncKind::LLSC;
    BarrierAlg barrierAlg = BarrierAlg::Tournament;

    /// Enable dynamic page migration (Section 6.2).
    bool pageMigration = false;
    /// Remote-access excess over home accesses that triggers migration.
    std::uint32_t migrationThreshold = 128;
    /// Cost to migrate one page, cycles: page copy plus TLB
    /// shootdown/OS involvement (~100us on IRIX-class systems).
    /// Charged at both memories; a quarter stalls the triggering
    /// access (the page is unavailable mid-move).
    Cycles migrationCycles = 20000;

    /// Observability configuration (see TraceConfig).
    TraceConfig trace;

    /// Verification configuration (see CheckConfig).
    CheckConfig check;

    /// Use only one processor per node, leaving the sibling idle
    /// (Section 7.2). The machine then spans numProcs nodes.
    bool oneProcPerNode = false;

    /// Scheduler quantum: max cycles a processor runs ahead of the
    /// globally slowest runnable processor before yielding. Keep this
    /// within a few transaction service times: execution-order disorder
    /// (and thus contention-clock error) is bounded by the quantum.
    Cycles quantum = 500;

    /// Host threads driving one run: 1 = serial engine (default),
    /// 0 = auto (hardware concurrency), N > 1 = one replay thread plus
    /// up to N-1 node-sharded scout workers. The parallel engine
    /// requires a program whose per-processor operation streams do not
    /// depend on simulated timing (see DESIGN.md "Parallel
    /// simulation"); core::runApp consults the app registry and falls
    /// back to serial otherwise. Metrics are byte-identical to the
    /// serial engine either way.
    int simJobs = 1;
    /// Scout time-window width in cycles; 0 = auto, the larger of the
    /// minimum cross-node network latency (Table 1 floor) and eight
    /// scheduler quanta. Any width is sound — sync grants are ordered
    /// canonically at window boundaries — so the knob only trades
    /// barrier overhead against scout-clock fidelity.
    Cycles simWindowCycles = 0;

    // ---- Derived helpers ----
    int numNodes() const
    {
        const int ppn = oneProcPerNode ? 1 : procsPerNode;
        return (numProcs + ppn - 1) / ppn;
    }
    int numRouters() const
    {
        const int r = numNodes() / nodesPerRouter;
        return r < 1 ? 1 : r;
    }
    int nodesPerModule() const
    {
        int n = procsPerModule / (oneProcPerNode ? 1 : procsPerNode);
        return n < nodesPerRouter ? nodesPerRouter : n;
    }
    bool hasMetaRouters() const { return numNodes() > nodesPerModule(); }
    double nsPerCycle() const { return 1000.0 / clockMHz; }
    std::uint64_t numSets() const
    {
        return cacheBytes / (static_cast<std::uint64_t>(lineBytes) *
                             cacheAssoc);
    }

    /// End-to-end local miss latency (Table 1 "Local").
    Cycles localMissCycles() const
    {
        return 2 * procCycles + 2 * hubCycles + dirCycles + memCycles;
    }
    /// Fixed (distance-independent) part of a remote clean miss.
    Cycles remoteCleanBaseCycles() const
    {
        return 2 * procCycles + 4 * hubCycles + dirCycles + memCycles +
               2 * linkCycles;
    }
    /// Fixed extra cycles a dirty-remote (3-hop) transaction adds on top
    /// of a clean-remote one; the extra network legs (requester->home->
    /// owner->requester versus a simple round trip) add on top.
    Cycles dirtyExtraCycles() const
    {
        return 2 * hubCycles + protocol.interventionCycles;
    }

    /// Validate invariants; returns an error string or empty on success.
    std::string validate() const;

    /// Apply the deprecation shims: a deprecated top-level latency knob
    /// changed from its default is copied into the protocol sub-config
    /// (unless the sub-config was itself changed, which wins). Machine
    /// and MemSys resolve their config copy on construction, so callers
    /// that still set the old fields keep working for one release.
    MachineConfig resolved() const;

    // ---- Named presets ----
    /// The paper's machine: an Origin2000 with `numProcs` processors
    /// (two per node, Table 1 latencies — i.e. the defaults above).
    static MachineConfig origin2000(int numProcs);
    /// A one-processor Origin2000 node: the speedup-baseline machine.
    static MachineConfig uniprocessor();
    /// The uniprocessor baseline for *this* machine: same parameters,
    /// one processor, no tracing (the baseline is only timed). This is
    /// the paper's methodology — the sequential reference runs on
    /// identical hardware, so speedups isolate parallel behavior.
    MachineConfig baseline() const;
};

} // namespace ccnuma::sim

#endif // CCNUMA_SIM_CONFIG_HH
