/**
 * @file
 * Small deterministic RNG (xoshiro256**) used by application skeletons so
 * results are reproducible and independent of the C++ library.
 */

#ifndef CCNUMA_SIM_RNG_HH
#define CCNUMA_SIM_RNG_HH

#include <cstdint>

namespace ccnuma::sim {

/** Deterministic xoshiro256** generator. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull)
    {
        // SplitMix64 seeding.
        std::uint64_t z = seed;
        for (auto& s : s_) {
            z += 0x9E3779B97F4A7C15ull;
            std::uint64_t x = z;
            x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
            x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
            s = x ^ (x >> 31);
        }
    }

    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
        const std::uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /// Uniform integer in [0, n).
    std::uint64_t range(std::uint64_t n) { return n ? next() % n : 0; }

    /// Uniform double in [0, 1).
    double
    uniform()
    {
        return (next() >> 11) * (1.0 / 9007199254740992.0);
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }
    std::uint64_t s_[4];
};

} // namespace ccnuma::sim

#endif // CCNUMA_SIM_RNG_HH
