#include "sim/cache.hh"

#include <bit>
#include <cassert>
#include <stdexcept>

namespace ccnuma::sim {

namespace {

int
log2Exact(std::uint64_t v)
{
    if (v == 0 || (v & (v - 1)) != 0)
        throw std::invalid_argument("value must be a power of two");
    return std::countr_zero(v);
}

} // namespace

Cache::Cache(std::uint64_t bytes, int assoc, std::uint32_t line_bytes)
    : lineShift_(log2Exact(line_bytes)),
      sets_(bytes / (static_cast<std::uint64_t>(line_bytes) * assoc)),
      assoc_(assoc)
{
    if (sets_ == 0 || (sets_ & (sets_ - 1)) != 0)
        throw std::invalid_argument("cache set count must be a power of 2");
    ways_.resize(sets_ * assoc_);
}

Cache::Way*
Cache::find(std::uint64_t line)
{
    Way* base = &ways_[setIndex(line) * assoc_];
    for (int w = 0; w < assoc_; ++w)
        if (base[w].state != LineState::Invalid && base[w].line == line)
            return &base[w];
    return nullptr;
}

const Cache::Way*
Cache::find(std::uint64_t line) const
{
    const Way* base = &ways_[setIndex(line) * assoc_];
    for (int w = 0; w < assoc_; ++w)
        if (base[w].state != LineState::Invalid && base[w].line == line)
            return &base[w];
    return nullptr;
}

CacheResult
Cache::access(Addr addr, bool is_write)
{
    const std::uint64_t line = lineOf(addr);
    ++useClock_;
    if (Way* w = find(line)) {
        w->lastUse = useClock_;
        CacheResult r;
        r.hit = true;
        if (is_write && w->state == LineState::Shared) {
            r.upgrade = true;
            w->state = LineState::Dirty;
        }
        return r;
    }
    return install(addr, is_write ? LineState::Dirty : LineState::Shared);
}

CacheResult
Cache::install(Addr addr, LineState st)
{
    assert(st != LineState::Invalid);
    const std::uint64_t line = lineOf(addr);
    ++useClock_;
    Way* base = &ways_[setIndex(line) * assoc_];
    if (Way* w = find(line)) {
        // Prefetch raced with demand fetch or repeated install.
        w->lastUse = useClock_;
        if (st == LineState::Dirty)
            w->state = LineState::Dirty;
        CacheResult r;
        r.hit = true;
        return r;
    }
    Way* victim = &base[0];
    for (int w = 0; w < assoc_; ++w) {
        if (base[w].state == LineState::Invalid) {
            victim = &base[w];
            break;
        }
        if (base[w].lastUse < victim->lastUse)
            victim = &base[w];
    }
    CacheResult r;
    if (victim->state != LineState::Invalid) {
        r.victim = victim->line << lineShift_;
        r.victimState = victim->state;
    }
    victim->line = line;
    victim->state = st;
    victim->lastUse = useClock_;
    return r;
}

LineState
Cache::probe(Addr addr) const
{
    const Way* w = find(lineOf(addr));
    return w ? w->state : LineState::Invalid;
}

LineState
Cache::invalidate(Addr addr)
{
    if (Way* w = find(lineOf(addr))) {
        const LineState st = w->state;
        w->state = LineState::Invalid;
        return st;
    }
    return LineState::Invalid;
}

void
Cache::downgrade(Addr addr)
{
    if (Way* w = find(lineOf(addr)))
        if (w->state == LineState::Dirty)
            w->state = LineState::Shared;
}

std::uint64_t
Cache::residentLines() const
{
    std::uint64_t n = 0;
    for (const Way& w : ways_)
        if (w.state != LineState::Invalid)
            ++n;
    return n;
}

void
Cache::reset()
{
    for (Way& w : ways_)
        w.state = LineState::Invalid;
    useClock_ = 0;
}

} // namespace ccnuma::sim
