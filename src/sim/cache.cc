#include "sim/cache.hh"

#include <bit>
#include <cassert>
#include <stdexcept>

namespace ccnuma::sim {

namespace {

int
log2Exact(std::uint64_t v)
{
    if (v == 0 || (v & (v - 1)) != 0)
        throw std::invalid_argument("value must be a power of two");
    return std::countr_zero(v);
}

} // namespace

Cache::Cache(std::uint64_t bytes, int assoc, std::uint32_t line_bytes,
             const Protocol* proto)
    : lineShift_(log2Exact(line_bytes)),
      sets_(bytes / (static_cast<std::uint64_t>(line_bytes) * assoc)),
      assoc_(assoc)
{
    if (sets_ == 0 || (sets_ & (sets_ - 1)) != 0)
        throw std::invalid_argument("cache set count must be a power of 2");
    ways_.reset(static_cast<Way*>(
        std::calloc(sets_ * static_cast<std::uint64_t>(assoc_),
                    sizeof(Way))));
    if (!ways_)
        throw std::bad_alloc();
    const Protocol& pr = proto ? *proto : Protocol::mesi();
    for (int s = 1; s < kProtoStates; ++s) {
        switch (pr.req[kProtoWrite][s].next) {
          case NextState::Shared:
            writeHitNext_[s] = LineState::Shared;
            break;
          case NextState::Dirty:
            writeHitNext_[s] = LineState::Dirty;
            break;
          case NextState::Owned:
            writeHitNext_[s] = LineState::Owned;
            break;
          default:
            // Same / OwnedIfSharers: leave the state for the engine.
            writeHitNext_[s] = LineState::Invalid;
            break;
        }
    }
    // A write hit on Dirty takes the no-upgrade fast path; keep the
    // slot inert whatever the table says.
    writeHitNext_[static_cast<int>(LineState::Dirty)] =
        LineState::Invalid;
}

LineState
Cache::probe(Addr addr) const
{
    const Way* w = find(lineOf(addr));
    return w ? w->state : LineState::Invalid;
}

LineState
Cache::invalidate(Addr addr)
{
    if (Way* w = find(lineOf(addr))) {
        const LineState st = w->state;
        w->state = LineState::Invalid;
        return st;
    }
    return LineState::Invalid;
}

void
Cache::downgrade(Addr addr)
{
    if (Way* w = find(lineOf(addr)))
        if (w->state == LineState::Dirty)
            w->state = LineState::Shared;
}

void
Cache::setState(Addr addr, LineState st)
{
    Way* w = find(lineOf(addr));
    assert(w != nullptr);
    if (w)
        w->state = st;
}

std::uint64_t
Cache::residentLines() const
{
    std::uint64_t n = 0;
    for (std::uint64_t i = 0; i < sets_ * assoc_; ++i)
        if (ways_[i].state != LineState::Invalid)
            ++n;
    return n;
}

void
Cache::reset()
{
    for (std::uint64_t i = 0; i < sets_ * assoc_; ++i)
        ways_[i].state = LineState::Invalid;
    useClock_ = 0;
}

} // namespace ccnuma::sim
