#include "sim/cache.hh"

#include <bit>
#include <cassert>
#include <stdexcept>

namespace ccnuma::sim {

namespace {

int
log2Exact(std::uint64_t v)
{
    if (v == 0 || (v & (v - 1)) != 0)
        throw std::invalid_argument("value must be a power of two");
    return std::countr_zero(v);
}

} // namespace

Cache::Cache(std::uint64_t bytes, int assoc, std::uint32_t line_bytes)
    : lineShift_(log2Exact(line_bytes)),
      sets_(bytes / (static_cast<std::uint64_t>(line_bytes) * assoc)),
      assoc_(assoc)
{
    if (sets_ == 0 || (sets_ & (sets_ - 1)) != 0)
        throw std::invalid_argument("cache set count must be a power of 2");
    ways_.reset(static_cast<Way*>(
        std::calloc(sets_ * static_cast<std::uint64_t>(assoc_),
                    sizeof(Way))));
    if (!ways_)
        throw std::bad_alloc();
}

LineState
Cache::probe(Addr addr) const
{
    const Way* w = find(lineOf(addr));
    return w ? w->state : LineState::Invalid;
}

LineState
Cache::invalidate(Addr addr)
{
    if (Way* w = find(lineOf(addr))) {
        const LineState st = w->state;
        w->state = LineState::Invalid;
        return st;
    }
    return LineState::Invalid;
}

void
Cache::downgrade(Addr addr)
{
    if (Way* w = find(lineOf(addr)))
        if (w->state == LineState::Dirty)
            w->state = LineState::Shared;
}

std::uint64_t
Cache::residentLines() const
{
    std::uint64_t n = 0;
    for (std::uint64_t i = 0; i < sets_ * assoc_; ++i)
        if (ways_[i].state != LineState::Invalid)
            ++n;
    return n;
}

void
Cache::reset()
{
    for (std::uint64_t i = 0; i < sets_ * assoc_; ++i)
        ways_[i].state = LineState::Invalid;
    useClock_ = 0;
}

} // namespace ccnuma::sim
