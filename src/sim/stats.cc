#include "sim/stats.hh"

namespace ccnuma::sim {

Breakdown
RunResult::breakdown() const
{
    Breakdown b;
    if (procs.empty())
        return b;
    for (std::size_t p = 0; p < procs.size(); ++p) {
        const Breakdown pb = breakdown(static_cast<int>(p));
        b.busy += pb.busy;
        b.mem += pb.mem;
        b.sync += pb.sync;
    }
    const double n = static_cast<double>(procs.size());
    b.busy /= n;
    b.mem /= n;
    b.sync /= n;
    return b;
}

Breakdown
RunResult::breakdown(int p) const
{
    Breakdown b;
    const ProcTimes& t = procs[p].t;
    // Normalize against the run's end time so that trailing idle time at
    // the final barrier is visible as sync, matching the paper's
    // per-processor continuum figures.
    const double total = static_cast<double>(
        time > t.total() ? time : t.total());
    if (total == 0)
        return b;
    b.busy = t.busy / total;
    b.mem = t.memStall / total;
    b.sync = (t.sync() + (time > t.total() ? time - t.total() : 0)) /
             total;
    return b;
}

ProcCounters
RunResult::totals() const
{
    ProcCounters sum;
    for (const ProcStats& ps : procs) {
        const ProcCounters& c = ps.c;
        sum.loads += c.loads;
        sum.stores += c.stores;
        sum.l2Hits += c.l2Hits;
        sum.missLocal += c.missLocal;
        sum.missRemoteClean += c.missRemoteClean;
        sum.missRemoteDirty += c.missRemoteDirty;
        sum.upgrades += c.upgrades;
        sum.invalsSent += c.invalsSent;
        sum.invalsReceived += c.invalsReceived;
        sum.invalsSpurious += c.invalsSpurious;
        sum.updatesSent += c.updatesSent;
        sum.updatesReceived += c.updatesReceived;
        sum.writebacks += c.writebacks;
        sum.prefetchesIssued += c.prefetchesIssued;
        sum.prefetchesUseful += c.prefetchesUseful;
        sum.pageMigrations += c.pageMigrations;
        sum.lockAcquires += c.lockAcquires;
        sum.lockContended += c.lockContended;
        sum.barriersPassed += c.barriersPassed;
    }
    return sum;
}

Cycles
RunResult::aggregateCycles() const
{
    Cycles sum = 0;
    for (const ProcStats& ps : procs)
        sum += ps.t.total();
    return sum;
}

} // namespace ccnuma::sim
