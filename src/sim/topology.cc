#include "sim/topology.hh"

#include <algorithm>
#include <bit>
#include <cassert>
#include <numeric>
#include <random>
#include <stdexcept>

namespace ccnuma::sim {

Topology::Topology(const MachineConfig& cfg)
    : cfg_(cfg),
      numNodes_(cfg.numNodes()),
      numMetaRouters_(cfg.hasMetaRouters() ? 8 : 0)
{
    const int ppn = cfg_.oneProcPerNode ? 1 : cfg_.procsPerNode;
    procNode_.resize(cfg_.numProcs);
    for (int p = 0; p < cfg_.numProcs; ++p)
        procNode_[p] = p / ppn;
    buildDefaultMapping();
    routeTab_.resize(static_cast<std::size_t>(numNodes_) * numNodes_);
    for (NodeId f = 0; f < numNodes_; ++f)
        for (NodeId t = 0; t < numNodes_; ++t)
            routeTab_[static_cast<std::size_t>(f) * numNodes_ + t] =
                computeRoute(f, t);
}

void
Topology::buildDefaultMapping()
{
    mapping_.resize(cfg_.numProcs);
    std::iota(mapping_.begin(), mapping_.end(), 0);
    switch (cfg_.mapping) {
      case Mapping::Linear:
        break;
      case Mapping::Random: {
        std::mt19937_64 rng(cfg_.mappingSeed);
        std::shuffle(mapping_.begin(), mapping_.end(), rng);
        break;
      }
      case Mapping::PairedRandom: {
        // Keep process pairs (2i, 2i+1) on one node, shuffle node order.
        const int ppn = cfg_.oneProcPerNode ? 1 : cfg_.procsPerNode;
        if (ppn == 1) {
            std::mt19937_64 rng(cfg_.mappingSeed);
            std::shuffle(mapping_.begin(), mapping_.end(), rng);
            break;
        }
        const int groups = cfg_.numProcs / ppn;
        std::vector<int> order(groups);
        std::iota(order.begin(), order.end(), 0);
        std::mt19937_64 rng(cfg_.mappingSeed);
        std::shuffle(order.begin(), order.end(), rng);
        for (int g = 0; g < groups; ++g)
            for (int k = 0; k < ppn; ++k)
                mapping_[g * ppn + k] = order[g] * ppn + k;
        break;
      }
    }
}

void
Topology::setMapping(std::vector<ProcId> perm)
{
    if (static_cast<int>(perm.size()) != cfg_.numProcs)
        throw std::invalid_argument("mapping permutation size mismatch");
    mapping_ = std::move(perm);
}

Route
Topology::computeRoute(NodeId from, NodeId to) const
{
    Route r;
    if (from == to)
        return r;
    const RouterId rf = routerOfNode(from);
    const RouterId rt = routerOfNode(to);
    if (rf == rt) {
        r.hops = 1; // across the shared router
        return r;
    }
    const int routersPerModule =
        std::max(1, cfg_.nodesPerModule() / cfg_.nodesPerRouter);
    const int mf = rf / routersPerModule;
    const int mt = rt / routersPerModule;
    const unsigned lf = static_cast<unsigned>(rf % routersPerModule);
    const unsigned lt = static_cast<unsigned>(rt % routersPerModule);
    if (mf == mt) {
        // Hypercube within a module: one hop to enter the fabric plus the
        // Hamming distance between router coordinates.
        r.hops = 1 + std::popcount(lf ^ lt);
    } else {
        // Cross-module: route to the module's metarouter port, cross the
        // shared metarouter, then descend in the remote module.
        r.hops = 2 + std::popcount(lf ^ lt);
        r.metaCrossings = 1;
        // Metarouter selection: the paper's machine has eight
        // metarouters; traffic between corresponding router positions of
        // two modules shares one of them.
        r.metaRouter = static_cast<int>((lf ^ (lt << 1)) % 8);
        if (numMetaRouters_ > 0)
            r.metaRouter %= numMetaRouters_;
        else
            r.metaRouter = -1, r.metaCrossings = 0;
    }
    return r;
}

int
Topology::distance(NodeId from, NodeId to) const
{
    const Route r = route(from, to);
    return r.hops + 3 * r.metaCrossings;
}

Cycles
Topology::minCrossNodeLatencyCycles() const
{
    Cycles best = 0;
    for (NodeId f = 0; f < numNodes_; ++f)
        for (NodeId t = 0; t < numNodes_; ++t) {
            if (f == t)
                continue;
            const Route r = route(f, t);
            const Cycles leg =
                cfg_.linkCycles +
                static_cast<Cycles>(r.hops) * cfg_.routerCycles +
                static_cast<Cycles>(r.metaCrossings) *
                    cfg_.metaRouterCycles;
            if (best == 0 || leg < best)
                best = leg;
        }
    return best;
}

} // namespace ccnuma::sim
