/**
 * @file
 * The coherent memory system: per-processor L2 caches, the full-bit-vector
 * directory protocol, page homing/migration, and queued-resource
 * contention at Hubs, node memories and metarouters.
 *
 * Latency composition follows the Origin2000 transaction flows:
 *  - local miss:     proc -> hub -> dir+mem -> hub -> proc
 *  - remote clean:   proc -> hub -> net -> home hub -> dir+mem -> net -> ...
 *  - remote dirty:   3-hop; home forwards to the owner, which supplies the
 *                    line directly to the requester.
 * Contention is modelled with busy-until timestamps at the requester Hub,
 * home Hub, home memory, the dirty owner's Hub, invalidated sharers' Hubs
 * and any metarouter crossed. (Ordinary routers are treated as
 * contention-free: on the real machine their occupancy per flit is far
 * below Hub/memory occupancy; metarouters are shared by whole modules and
 * are kept as contention points.)
 */

#ifndef CCNUMA_SIM_MEMSYS_HH
#define CCNUMA_SIM_MEMSYS_HH

#include <memory>
#include <utility>
#include <vector>

#include "obs/trace.hh"
#include "sim/cache.hh"
#include "sim/commit.hh"
#include "sim/config.hh"
#include "sim/directory.hh"
#include "sim/pagetable.hh"
#include "sim/protocol.hh"
#include "sim/stats.hh"
#include "sim/sync_observer.hh"
#include "sim/topology.hh"
#include "sim/types.hh"

namespace ccnuma::sim {

/**
 * Per-processor pending prefetch fills: (line, ready time). A
 * processor has at most a handful outstanding, so a flat vector with
 * linear scan stays inside one or two cache lines — far cheaper than
 * the hash map it replaced, whose empty() fast path alone cost a
 * pointer chase.
 */
class PendingFills
{
  public:
    bool empty() const { return v_.empty(); }

    /// Ready time for `line`, or nullptr.
    const Cycles*
    find(LineAddr line) const
    {
        for (const auto& [l, t] : v_)
            if (l == line)
                return &t;
        return nullptr;
    }

    void
    erase(LineAddr line)
    {
        for (auto& kv : v_)
            if (kv.first == line) {
                kv = v_.back();
                v_.pop_back();
                return;
            }
    }

    void
    set(LineAddr line, Cycles ready)
    {
        for (auto& kv : v_)
            if (kv.first == line) {
                kv.second = ready;
                return;
            }
        v_.emplace_back(line, ready);
    }

  private:
    std::vector<std::pair<LineAddr, Cycles>> v_;
};

/** Classification of a completed access, for accounting. */
enum class AccessClass : std::uint8_t {
    Hit,
    LocalMiss,
    RemoteClean,
    RemoteDirty,
    Upgrade,
};

/**
 * The shared memory system of one simulated machine.
 *
 * All methods take the logical process id and its current local time;
 * they return the latency the access contributes to that processor and
 * update contention clocks and statistics.
 */
class MemSys
{
  public:
    MemSys(const MachineConfig& cfg, const Topology& topo);

    /// A demand load/store at byte address `addr` by process `p` at local
    /// time `now`. Returns the stall latency in cycles.
    Cycles access(ProcId p, Cycles now, Addr addr, bool write,
                  ProcStats& st);

    /// A non-binding prefetch: runs the read transaction, installs the
    /// line, but the processor does not stall. Completion is recorded so a
    /// subsequent demand access pays only the remaining latency.
    void prefetch(ProcId p, Cycles now, Addr addr, ProcStats& st);

    /// Uncached at-memory fetch&op on `addr` (Section 6.3).
    Cycles fetchOp(ProcId p, Cycles now, Addr addr, ProcStats& st);

    /// An LL-SC style read-modify-write: a write access plus fixed cost.
    Cycles llscRmw(ProcId p, Cycles now, Addr addr, ProcStats& st);

    /// Round-trip network latency between two processes' nodes, without
    /// memory access; used by the synchronization cost model.
    Cycles netRoundTrip(ProcId from, ProcId to) const;

    // ---- Pure (contention-free, state-free) latency queries ----
    // Used by the synchronization layer, which models its own
    // serialization episode-exactly and must not disturb global clocks.

    /// Clean fetch latency from `home` as seen by node `me`.
    Cycles pureFetch(NodeId me, NodeId home) const;
    /// 3-hop dirty-transfer latency (owner's cache supplies the line).
    Cycles pureDirty(NodeId me, NodeId home, NodeId owner) const;
    /// Uncached at-memory fetch&op latency.
    Cycles pureFetchOp(NodeId me, NodeId home) const;
    /// Home node used for synchronization variables at `addr`.
    NodeId syncHomeOf(Addr addr) { return pageTable_.home(addr, 0); }

    /// Home node of the page containing `addr` (first-touching as `p`).
    NodeId homeOf(ProcId p, Addr addr);

    /// Explicit manual placement passthrough.
    void place(Addr addr, std::uint64_t bytes, NodeId node)
    {
        pageTable_.place(addr, bytes, node);
    }
    void placeBlocked(Addr addr, std::uint64_t bytes,
                      const std::vector<NodeId>& order)
    {
        pageTable_.placeBlocked(addr, bytes, order);
    }

    const PageTable& pageTable() const { return pageTable_; }
    const Cache& cache(ProcId p) const { return *caches_[p]; }
    const Directory& directory() const { return dir_; }
    const Topology& topology() const { return topo_; }
    const MachineConfig& config() const { return cfg_; }
    /// The machine's (private, possibly mutation-corrupted) protocol
    /// transition tables.
    const Protocol& protocol() const { return proto_; }

    /// Presize the directory shards for an application footprint of
    /// `footprintBytes` (called by Machine::alloc as the heap grows;
    /// capped by aggregate cache capacity, since only cached lines
    /// have live entries, and skipped below kReserveMinLines where
    /// natural growth is cheaper). Allocation-only: never changes
    /// metrics.
    void reserveDirectory(std::uint64_t footprintBytes);

    /// Footprint (in lines) below which reserveDirectory() is a
    /// no-op: small tables reach steady state in a few cheap rehashes
    /// and eager reservation measures slower on the quick bench grid.
    static constexpr std::uint64_t kReserveMinLines = 1ull << 17;

    NodeId nodeOfProcess(ProcId p) const { return procNode_[p]; }

    /// True when processor `p` has a prefetch fill in flight for
    /// `line` (its completion has been scheduled but no demand access
    /// has absorbed it yet). The model checker folds this transient
    /// into its per-processor state.
    bool
    fillPending(ProcId p, LineAddr line) const
    {
        return pendingFill_[p].find(line) != nullptr;
    }

    /**
     * Attach (or detach with nullptr) the per-processor counter
     * vector that receiver-side fan-out accounting (invalsReceived,
     * updatesReceived) is charged to. Machine::run wires its own
     * stats in; standalone drivers (the model checker's per-step
     * accounting invariants) attach theirs. The vector must outlive
     * the accesses and have one slot per processor.
     */
    void attachStats(std::vector<ProcStats>* s) { allStats_ = s; }

    /**
     * Validate the coherence invariants between every cache and the
     * directory:
     *  - a Dirty directory entry has exactly one cached copy, Dirty,
     *    at its owner;
     *  - a Shared entry's sharers all hold the line non-Dirty, and
     *    nobody else holds it;
     *  - every valid cached line has a directory entry covering it.
     * @return empty string if consistent, else a description of the
     *         first violation (debug/testing aid; O(total cache lines)).
     */
    std::string validateCoherence() const;

    /**
     * Attach (or detach with nullptr) a commit-order observer that
     * sees every data-moving protocol action (see sim/commit.hh).
     * Attach before Machine::run(); the verification harness uses this
     * to drive its sequential-consistency data-value oracle. Costs one
     * null test per hook site when detached.
     */
    void attachCommitObserver(CommitObserver* o) { commit_ = o; }

    /**
     * Attach (or detach with nullptr) the byte-granular access stream
     * of a SyncObserver (Machine::attachSyncObserver forwards here; the
     * lock/barrier callbacks are the Machine's job). onMemOp fires at
     * the same commit points as the CommitObserver load/store hooks,
     * but skips prefetch-internal transactions, whose data the program
     * never consumes. Costs one null test per hook site when detached.
     */
    void attachSyncObserver(SyncObserver* o) { sync_ = o; }

    /**
     * A queued hardware resource (Hub, node memory, metarouter).
     *
     * `freeAt` is the FCFS completion frontier; `frontier` is the latest
     * request timestamp seen. Because the scheduler executes processors
     * in only *approximate* time order, a request can be processed after
     * a logically-later one; measuring queueing delay against
     * max(arrival, frontier) keeps such a request from being charged for
     * backlog that logically arrived after it, while still enforcing the
     * resource's service-rate (throughput) limit.
     */
    struct Resource {
        Cycles freeAt = 0;
        Cycles frontier = 0;
    };

  private:
    /// Advance a resource; returns queueing delay seen at `arrival`.
    Cycles useResource(Resource& res, Cycles arrival, Cycles occupancy);

    /// One-way network latency between nodes, charging metarouter
    /// occupancy when a metarouter is crossed.
    Cycles netLeg(NodeId from, NodeId to, Cycles arrival);

    /// Handle eviction side effects (directory update, dirty writeback).
    void handleVictim(ProcId p, Cycles now, const CacheResult& r,
                      ProcStats& st);

    /// Invalidate every directory-format target of `line` other than
    /// `requester` (and `exclude`, for an owner the 3-hop intervention
    /// already killed); returns the fan-out latency component observed
    /// by the requester. Targets that hold no copy (compressed-format
    /// over-signalling) cost traffic but move no data.
    Cycles invalidateSharers(ProcId requester, NodeId home, Cycles now,
                             LineAddr line, DirEntry& e, ProcStats& st,
                             ProcId exclude = kNoProc);

    /// Update-based fan-out: push the stored value into every
    /// directory-format target's valid copy (per the remote-write
    /// table row). Updated processors are recorded in updatedProcs_
    /// (cleared first) for the caller's commit hooks. Returns the
    /// fan-out latency like invalidateSharers.
    Cycles updateSharers(ProcId requester, NodeId home, Cycles now,
                         LineAddr line, DirEntry& e, ProcStats& st);

    /// Maintain the limited-pointer overflow bit after sharers.add().
    void
    noteSharers(DirEntry& e) const
    {
        if (cfg_.dirFormat.format == DirFormat::LimitedPtr &&
            !e.overflow && e.sharers.count() > cfg_.dirFormat.param)
            e.overflow = true;
    }

    /// Fan-out target enumeration for this machine's directory format
    /// (see forEachFanoutTarget in sim/directory.hh, which the model
    /// checker shares for its fan-out-consistency invariant).
    template <typename Fn>
    void
    forEachTarget(const DirEntry& e, Fn&& fn) const
    {
        forEachFanoutTarget(cfg_.dirFormat, e, cfg_.numProcs,
                            std::forward<Fn>(fn));
    }

    /// The preserved hard-coded MESI + full-bit-vector access body
    /// (bit-identity seam; see CheckConfig::legacyMesiPath).
    Cycles accessLegacy(ProcId p, Cycles now, Addr addr, bool write,
                        ProcStats& st);

    /// True when observability hooks should fire. Folds to a
    /// compile-time false with -DCCNUMA_TRACING=OFF, eliding every
    /// hook from the access paths (the zero-overhead guarantee).
    bool traceOn() const
    {
        return obs::kTracingCompiled && trace_ != nullptr &&
               !traceMuted_;
    }

    const MachineConfig cfg_;
    const Topology& topo_;
    PageTable pageTable_;
    Directory dir_;
    /// Per-machine copy of the protocol's transition tables, so the
    /// CheckMutation seam can corrupt a private cell (see ctor).
    Protocol proto_;
    std::vector<std::unique_ptr<Cache>> caches_;
    /// Scratch: processors refreshed by the last update fan-out, in
    /// signalling order (consumed by the commit hooks of the access
    /// that ran it).
    std::vector<ProcId> updatedProcs_;
    std::vector<ProcStats>* allStats_ = nullptr;
    obs::Trace* trace_ = nullptr;
    CommitObserver* commit_ = nullptr;
    SyncObserver* sync_ = nullptr;
    /// Suppresses obs tracing and SyncObserver hooks while prefetch()
    /// runs its inner transaction (whose loads/hits are not folded into
    /// the issuing processor; its data is never consumed).
    bool traceMuted_ = false;
    /// True while llscRmw() runs its inner write access, so the
    /// SyncObserver stream can tag it MemOp::Rmw (atomic).
    bool inRmw_ = false;

    // Contention clocks.
    std::vector<Resource> hubFree_;
    std::vector<Resource> memFree_;
    std::vector<Resource> metaFree_;

    // Pending prefetch completions: (proc, line) -> ready time.
    std::vector<PendingFills> pendingFill_;

    std::vector<NodeId> procNode_; ///< process -> node (via mapping)

    friend class Machine;
    void attachTrace(obs::Trace* t) { trace_ = t; }
};

} // namespace ccnuma::sim

#endif // CCNUMA_SIM_MEMSYS_HH
