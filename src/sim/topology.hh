/**
 * @file
 * Network topology: hypercube router fabric with optional metarouters,
 * and process-to-processor mapping policies (Section 7 of the paper).
 *
 * The Origin2000 connects two processors to a node Hub, two nodes to a
 * router, and routers in a hypercube. Machines beyond one module (e.g.
 * the 128-processor machine = four 32-processor hypercube modules) join
 * modules through shared metarouters, which add latency and are a shared
 * contention point.
 */

#ifndef CCNUMA_SIM_TOPOLOGY_HH
#define CCNUMA_SIM_TOPOLOGY_HH

#include <cstddef>
#include <vector>

#include "sim/config.hh"
#include "sim/types.hh"

namespace ccnuma::sim {

/** A route between two nodes, as seen by the latency/contention model. */
struct Route {
    int hops = 0;          ///< Hypercube router hops (within modules).
    int metaCrossings = 0; ///< Metarouter crossings (0 or 1 per direction).
    int metaRouter = -1;   ///< Which metarouter carries the crossing.
};

/**
 * Static topology of one simulated machine.
 *
 * Provides node/router geometry, shortest-route computation, and the
 * process->processor mapping permutation chosen by the configuration.
 */
class Topology
{
  public:
    explicit Topology(const MachineConfig& cfg);

    /// Node hosting a *physical* processor.
    NodeId nodeOfProc(ProcId p) const { return procNode_[p]; }
    /// Router attached to a node.
    RouterId routerOfNode(NodeId n) const
    {
        return n / cfg_.nodesPerRouter;
    }
    /// Hypercube module of a node.
    int moduleOfNode(NodeId n) const { return n / cfg_.nodesPerModule(); }

    /// Physical processor that runs logical process `proc`.
    ProcId physicalProc(ProcId process) const { return mapping_[process]; }
    /// Node that runs logical process `proc` (through the mapping).
    NodeId nodeOfProcess(ProcId process) const
    {
        return nodeOfProc(mapping_[process]);
    }

    /// Shortest route between two nodes. The geometry is immutable, so
    /// every pair is precomputed at construction and this is a table
    /// lookup — route() sits on the latency path of every remote
    /// transaction (millions of calls per run).
    Route
    route(NodeId from, NodeId to) const
    {
        return routeTab_[static_cast<std::size_t>(from) * numNodes_ + to];
    }
    /// Router hops between two nodes (metarouter crossings count as
    /// metaHopEquivalent hops for distance comparisons).
    int distance(NodeId from, NodeId to) const;

    /// Minimum one-way network latency between two *distinct* nodes
    /// (pure link/router cycles, no contention): the Table 1 floor that
    /// bounds how soon any cross-node effect can land, and therefore
    /// the smallest sound time window for the parallel scout engine.
    /// Returns 0 on single-node machines (no cross-node traffic).
    Cycles minCrossNodeLatencyCycles() const;

    int numNodes() const { return numNodes_; }
    int numRouters() const { return numNodes_ / cfg_.nodesPerRouter; }
    int numMetaRouters() const { return numMetaRouters_; }

    /// Replace the process->processor mapping with an explicit permutation
    /// (used by the mapping experiments of Section 7.1).
    void setMapping(std::vector<ProcId> perm);
    const std::vector<ProcId>& mapping() const { return mapping_; }

  private:
    void buildDefaultMapping();
    Route computeRoute(NodeId from, NodeId to) const;

    const MachineConfig cfg_;
    int numNodes_;
    int numMetaRouters_;
    std::vector<NodeId> procNode_;  ///< physical proc -> node
    std::vector<ProcId> mapping_;   ///< process -> physical proc
    std::vector<Route> routeTab_;   ///< numNodes_^2, from-major
};

} // namespace ccnuma::sim

#endif // CCNUMA_SIM_TOPOLOGY_HH
