/**
 * @file
 * Min-time scheduler interleaving the per-processor coroutines.
 *
 * Processors run in approximate global-time order: a processor executes
 * until it exceeds its quantum past the point it was scheduled at (or
 * blocks on synchronization), then the globally earliest runnable
 * processor runs next. Contention clocks therefore see accesses in
 * near-sorted time order, with disorder bounded by the quantum.
 */

#ifndef CCNUMA_SIM_SCHEDULER_HH
#define CCNUMA_SIM_SCHEDULER_HH

#include <coroutine>
#include <cstdint>
#include <queue>
#include <vector>

#include "sim/calqueue.hh"
#include "sim/task.hh"
#include "sim/types.hh"

namespace ccnuma::sim {

class Cpu;

/** Cooperative scheduler over the simulated processors. */
class Scheduler
{
  public:
    void attach(std::vector<Cpu>* cpus) { cpus_ = cpus; }
    void
    setQuantum(Cycles q)
    {
        quantum_ = q;
        cal_.setSpan(q);
    }
    /// Test seam: drive the ready list from the legacy
    /// std::priority_queue instead of the calendar queue. Both produce
    /// the same pop order (the cycle-identity tests prove it); the
    /// calendar queue is simply faster. Select before spawn().
    void setLegacyQueue(bool on) { legacy_ = on; }
    void
    spawn(ProcId p, Task::Handle h)
    {
        if (static_cast<std::size_t>(p) >= state_.size())
            state_.resize(p + 1, State::Done);
        if (static_cast<std::size_t>(p) >= handle_.size())
            handle_.resize(p + 1);
        handle_[p] = h;
        state_[p] = State::Ready;
        ready(p, 0);
        ++live_;
    }

    /// Make a (blocked or yielded) processor runnable at `time`.
    /// Inline: called once per scheduling episode (for miss-heavy
    /// workloads, nearly once per memory access).
    void
    ready(ProcId p, Cycles time)
    {
        if (static_cast<std::size_t>(p) >= queuedTime_.size())
            [[unlikely]]
            queuedTime_.resize(p + 1, 0);
        state_[p] = State::Ready;
        queuedTime_[p] = time;
        if (!legacy_) [[likely]]
            cal_.push(SchedEvent{time, seq_++, p});
        else
            pq_.push(SchedEvent{time, seq_++, p});
    }
    /// Mark a processor blocked on synchronization.
    void block(ProcId p) { state_[p] = State::Blocked; }

    /// Run until every spawned processor finishes.
    /// @throws std::runtime_error on deadlock.
    void run();

    ProcId current() const { return current_; }

  private:
    enum class State : std::uint8_t { Ready, Blocked, Done };

    bool queueEmpty() const { return legacy_ ? pq_.empty() : cal_.empty(); }
    SchedEvent
    queuePop()
    {
        if (!legacy_) [[likely]]
            return cal_.pop();
        const SchedEvent e = pq_.top();
        pq_.pop();
        return e;
    }

    std::vector<Cpu>* cpus_ = nullptr;
    std::vector<State> state_;
    std::vector<Task::Handle> handle_;
    std::vector<Cycles> queuedTime_;
    CalendarQueue cal_;
    /// Legacy ready list, active only with setLegacyQueue(true).
    std::priority_queue<SchedEvent, std::vector<SchedEvent>,
                        SchedEventAfter>
        pq_;
    bool legacy_ = false;
    std::uint64_t seq_ = 0;
    int live_ = 0;
    Cycles quantum_ = 2000;
    ProcId current_ = kNoProc;
};

} // namespace ccnuma::sim

#endif // CCNUMA_SIM_SCHEDULER_HH
