#include "sim/scheduler.hh"

#include <stdexcept>

#include "sim/cpu.hh"

namespace ccnuma::sim {

void
Scheduler::run()
{
    const Cycles quantum = quantum_;
    while (live_ > 0) {
        if (queueEmpty())
            throw std::runtime_error(
                "simulator deadlock: processors blocked with no runnable "
                "work (missing barrier participant or unreleased lock?)");
        const SchedEvent e = queuePop();
        if (state_[e.p] != State::Ready || queuedTime_[e.p] != e.time)
            continue; // stale heap entry
        current_ = e.p;
        Cpu& cpu = (*cpus_)[e.p];
        cpu.beginQuantum(quantum);
        // Mark not-ready so a stale pop can't double-run us; the
        // coroutine re-queues itself via ready()/block() on suspension.
        state_[e.p] = State::Blocked;
        handle_[e.p].resume();
        if (handle_[e.p].done()) {
            state_[e.p] = State::Done;
            --live_;
        }
    }
    current_ = kNoProc;
}

} // namespace ccnuma::sim
