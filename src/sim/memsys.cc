#include "sim/memsys.hh"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace ccnuma::sim {

MemSys::MemSys(const MachineConfig& cfg, const Topology& topo)
    : cfg_(cfg.resolved()),
      topo_(topo),
      pageTable_(cfg, topo.numNodes()),
      dir_(topo.numNodes(), cfg.pageBytes),
      proto_(Protocol::get(cfg.protocol.kind)),
      hubFree_(topo.numNodes()),
      memFree_(topo.numNodes()),
      metaFree_(std::max(1, topo.numMetaRouters())),
      pendingFill_(cfg.numProcs),
      procNode_(cfg.numProcs)
{
#ifdef CCNUMA_CHECK_MUTATE
    // Harness self-test (CheckMutation::CorruptMoesiTable): break the
    // machine's private table copy so the remote-write x Shared cell
    // forgets its invalidation. The SC oracle must catch the stale
    // copies this leaves behind. See sim/config.hh.
    if (cfg_.check.mutation == CheckMutation::CorruptMoesiTable)
        proto_.rem[kProtoWrite][static_cast<int>(LineState::Shared)] = {
            NextState::Same, RemAct::None};
#endif
    caches_.reserve(cfg.numProcs);
    for (int p = 0; p < cfg.numProcs; ++p) {
        caches_.push_back(std::make_unique<Cache>(
            cfg.cacheBytes, cfg.cacheAssoc, cfg.lineBytes, &proto_));
        procNode_[p] = topo.nodeOfProcess(p);
    }
    dir_.enableShadow(cfg.check.shadowDirectory);
}

void
MemSys::reserveDirectory(std::uint64_t footprintBytes)
{
    std::uint64_t lines = footprintBytes / cfg_.lineBytes;
    // Only cached lines have live entries, so aggregate cache capacity
    // bounds the useful reservation however large the footprint.
    const std::uint64_t cap =
        cfg_.cacheBytes / cfg_.lineBytes *
        static_cast<std::uint64_t>(cfg_.numProcs);
    if (lines > cap)
        lines = cap;
    // Small runs reach their steady-state table size in a handful of
    // cheap rehashes, and an eager reservation costs more (zeroing a
    // table the run never fills) than the churn it saves — measured
    // ~9% on the quick bench grid. Only presize once the footprint is
    // large enough for rehash churn to dominate.
    if (lines < kReserveMinLines)
        return;
    dir_.reserveLines(lines);
}

Cycles
MemSys::useResource(Resource& res, Cycles arrival, Cycles occupancy)
{
    // See the Resource doc comment: queueing delay is measured against
    // the request-timestamp frontier so that a processor the scheduler
    // happens to run late is not charged for logically-later backlog.
    const Cycles eff = arrival > res.frontier ? arrival : res.frontier;
    res.frontier = eff;
    const Cycles wait = res.freeAt > eff ? res.freeAt - eff : 0;
    res.freeAt = (res.freeAt > eff ? res.freeAt : eff) + occupancy;
    return wait;
}

namespace {

/// Pure one-way network latency for a route (no contention).
Cycles
legLatency(const MachineConfig& cfg, const Route& r)
{
    if (r.hops == 0 && r.metaCrossings == 0)
        return 0; // same node: no network traversal
    return cfg.linkCycles +
           static_cast<Cycles>(r.hops) * cfg.routerCycles +
           static_cast<Cycles>(r.metaCrossings) * cfg.metaRouterCycles;
}

} // namespace

Cycles
MemSys::netLeg(NodeId from, NodeId to, Cycles arrival)
{
    const Route r = topo_.route(from, to);
    Cycles lat = legLatency(cfg_, r);
    if (r.metaCrossings > 0 && topo_.numMetaRouters() > 0)
        lat += useResource(metaFree_[r.metaRouter], arrival,
                           cfg_.metaRouterOccupancy);
    return lat;
}

NodeId
MemSys::homeOf(ProcId p, Addr addr)
{
    return pageTable_.home(addr, procNode_[p]);
}

Cycles
MemSys::pureFetch(NodeId me, NodeId home) const
{
    Cycles lat = 2 * cfg_.procCycles + 2 * cfg_.hubCycles +
                 cfg_.dirCycles + cfg_.memCycles;
    if (home != me) {
        lat += 2 * cfg_.hubCycles;
        lat += legLatency(cfg_, topo_.route(me, home)) +
               legLatency(cfg_, topo_.route(home, me));
    }
    return lat;
}

Cycles
MemSys::pureDirty(NodeId me, NodeId home, NodeId owner) const
{
    Cycles lat = pureFetch(me, home) + 2 * cfg_.hubCycles +
                 cfg_.protocol.interventionCycles;
    const Cycles fwd = legLatency(cfg_, topo_.route(home, owner));
    const Cycles rep = legLatency(cfg_, topo_.route(owner, me));
    const Cycles direct = legLatency(cfg_, topo_.route(home, me));
    lat += fwd > cfg_.memCycles ? fwd - cfg_.memCycles : 0;
    lat += rep > direct ? rep - direct : 0;
    return lat;
}

Cycles
MemSys::pureFetchOp(NodeId me, NodeId home) const
{
    Cycles lat = 2 * cfg_.procCycles + 2 * cfg_.hubCycles + cfg_.dirCycles;
    if (home != me) {
        lat += 2 * cfg_.hubCycles;
        lat += legLatency(cfg_, topo_.route(me, home)) +
               legLatency(cfg_, topo_.route(home, me));
    }
    return lat;
}

Cycles
MemSys::netRoundTrip(ProcId from, ProcId to) const
{
    const NodeId a = procNode_[from];
    const NodeId b = procNode_[to];
    if (a == b)
        return cfg_.hubCycles;
    const Cycles leg = legLatency(cfg_, topo_.route(a, b)) +
                       legLatency(cfg_, topo_.route(b, a));
    return leg + 2 * cfg_.hubCycles;
}

void
MemSys::handleVictim(ProcId p, Cycles now, const CacheResult& r,
                     ProcStats& st)
{
    if (r.victimState == LineState::Invalid)
        return;
    const LineAddr line = r.victim;
    DirEntry& e = dir_.lookup(line);
    if (r.victimState == LineState::Dirty) {
        // Write the line back to its home memory. The writeback is off
        // the critical path but consumes Hub and memory bandwidth at the
        // victim's home node -- the protocol-traffic contention the paper
        // blames for Radix's behaviour.
        const NodeId home = pageTable_.home(line, procNode_[p]);
        useResource(hubFree_[home], now, cfg_.hubOccupancy);
        useResource(memFree_[home], now, cfg_.memOccupancy);
        ++st.c.writebacks;
        if (traceOn())
            trace_->onWriteback(p, now, line, home);
        if (commit_)
            commit_->onWriteback(p, line);
        e.state = DirState::Uncached;
        e.owner = kNoProc;
        e.sharers.clear();
        dir_.drop(line);
    } else if (r.victimState == LineState::Owned) {
        // Owned victim (MOESI/Dragon): the only up-to-date copy leaves
        // a cache that still has clean peers. Write it back — home
        // memory is current again, so the peers' copies become plain
        // Shared and the entry loses its owner.
#ifdef CCNUMA_CHECK_MUTATE
        // Harness self-test (CheckMutation::DropOwnedWriteback): the
        // eviction forgets the writeback, so the entry goes Shared
        // over stale home memory — a later memory fill serves old
        // data. The model checker must find this exhaustively. See
        // sim/config.hh.
        if (cfg_.check.mutation == CheckMutation::DropOwnedWriteback) {
            if (commit_)
                commit_->onEvict(p, line);
            e.sharers.remove(p);
            e.owner = kNoProc;
            if (e.sharers.empty()) {
                e.state = DirState::Uncached;
                e.overflow = false;
                dir_.drop(line);
            } else {
                e.state = DirState::Shared;
            }
            return;
        }
#endif
        const NodeId home = pageTable_.home(line, procNode_[p]);
        useResource(hubFree_[home], now, cfg_.hubOccupancy);
        useResource(memFree_[home], now, cfg_.memOccupancy);
        ++st.c.writebacks;
        if (traceOn())
            trace_->onWriteback(p, now, line, home);
        if (commit_)
            commit_->onWriteback(p, line);
        e.sharers.remove(p);
        e.owner = kNoProc;
        if (e.sharers.empty()) {
            e.state = DirState::Uncached;
            e.overflow = false;
            dir_.drop(line);
        } else {
            e.state = DirState::Shared;
        }
    } else {
        if (commit_)
            commit_->onEvict(p, line);
        e.sharers.remove(p);
        if (e.owner == p)
            e.owner = kNoProc;
        if (e.sharers.empty()) {
            e.state = DirState::Uncached;
            e.overflow = false;
            dir_.drop(line);
        }
    }
}

Cycles
MemSys::invalidateSharers(ProcId requester, NodeId home, Cycles now,
                          LineAddr line, DirEntry& e, ProcStats& st,
                          ProcId exclude)
{
    const NodeId myNode = procNode_[requester];
    int n = 0;
    Cycles worst_legs = 0;
    [[maybe_unused]] bool mutate_spared = false;
    // The remote-write x Shared cell governs the whole fan-out: every
    // non-owner holder is Shared. A table whose cell "forgot" the
    // invalidation (CheckMutation::CorruptMoesiTable) leaves stale
    // copies here for the SC oracle to catch.
    const RemCell cell =
        proto_.rem[kProtoWrite][static_cast<int>(LineState::Shared)];
    forEachTarget(e, [&](ProcId s) {
        if (s == requester || s == exclude)
            return;
#ifdef CCNUMA_CHECK_MUTATE
        // Harness self-test (CheckMutation::SkipInvalidation): a
        // deliberately broken protocol that forgets to invalidate the
        // first sharer of every fan-out, leaving it a stale copy the
        // SC oracle must catch. See sim/config.hh.
        if (cfg_.check.mutation == CheckMutation::SkipInvalidation &&
            !mutate_spared) {
            mutate_spared = true;
            return;
        }
#endif
        bool real = false;
        if (cell.act == RemAct::Invalidate)
            real = caches_[s]->invalidate(line) != LineState::Invalid;
        if (real) {
            if (commit_)
                commit_->onInval(s, line);
            if (allStats_)
                ++(*allStats_)[s].c.invalsReceived;
            ++st.c.invalsSent;
            if (traceOn())
                trace_->onInval(requester, s, now, line, home);
        } else {
            // Compressed-format over-signalling (or a corrupted
            // table): the message and its ack are real traffic, but
            // no copy dies, so obs sharing stats see nothing.
            ++st.c.invalsSpurious;
        }
        ++n;
        const NodeId sn = procNode_[s];
        useResource(hubFree_[sn], now, cfg_.hubOccupancy);
        const Cycles legs = legLatency(cfg_, topo_.route(home, sn)) +
                            legLatency(cfg_, topo_.route(sn, myNode));
        worst_legs = std::max(worst_legs, legs);
    });
    if (n == 0)
        return 0;
    // Invalidations fan out from the home in parallel; the requester
    // observes the slowest ack plus a small serialization per message.
    return worst_legs + cfg_.hubCycles +
           cfg_.protocol.invalPerSharerCycles *
               static_cast<Cycles>(n - 1);
}

Cycles
MemSys::updateSharers(ProcId requester, NodeId home, Cycles now,
                      LineAddr line, DirEntry& e, ProcStats& st)
{
    const NodeId myNode = procNode_[requester];
    int n = 0;
    Cycles worst_legs = 0;
    updatedProcs_.clear();
    forEachTarget(e, [&](ProcId s) {
        if (s == requester)
            return;
        Cache& c = *caches_[s];
        const LineState hs = c.probe(line);
        if (hs != LineState::Invalid) {
            const RemCell cell =
                proto_.rem[kProtoWrite][static_cast<int>(hs)];
            if (cell.act == RemAct::Update) {
                // The copy absorbs the new value in place; an Owned
                // holder relinquishes ownership to the writer.
                if (cell.next == NextState::Shared &&
                    hs != LineState::Shared)
                    c.setState(line, LineState::Shared);
                ++st.c.updatesSent;
                if (allStats_)
                    ++(*allStats_)[s].c.updatesReceived;
                updatedProcs_.push_back(s);
            }
        } else {
            ++st.c.invalsSpurious;
        }
        ++n;
        const NodeId sn = procNode_[s];
        useResource(hubFree_[sn], now, cfg_.hubOccupancy);
        const Cycles legs = legLatency(cfg_, topo_.route(home, sn)) +
                            legLatency(cfg_, topo_.route(sn, myNode));
        worst_legs = std::max(worst_legs, legs);
    });
    if (n == 0)
        return 0;
    // Same fan-out shape as invalidations; updates carry a line of
    // data, so their per-message serialization is its own knob.
    return worst_legs + cfg_.hubCycles +
           cfg_.protocol.updatePerSharerCycles *
               static_cast<Cycles>(n - 1);
}

Cycles
MemSys::access(ProcId p, Cycles now, Addr addr, bool write, ProcStats& st)
{
    if (cfg_.check.legacyMesiPath) [[unlikely]]
        return accessLegacy(p, now, addr, write, st);

    if (write)
        ++st.c.stores;
    else
        ++st.c.loads;
    if (traceOn())
        trace_->onAccess(p, now, addr, write);

    Cache& cache = *caches_[p];
    const LineAddr line =
        addr & ~static_cast<Addr>(cfg_.lineBytes - 1);
    const CacheResult res = cache.access(addr, write);

    if (res.hit && !res.upgrade) {
        Cycles lat = cfg_.l2HitCycles;
        PendingFills& pend = pendingFill_[p];
        if (!pend.empty()) {
            if (const Cycles* ready = pend.find(line)) {
                if (*ready > now)
                    lat += *ready - now;
                ++st.c.prefetchesUseful;
                if (traceOn())
                    trace_->onPrefetchUseful(p, now);
                pend.erase(line);
            }
        }
        ++st.c.l2Hits;
        if (traceOn())
            trace_->onHit(p, now);
        if (commit_) {
            if (write)
                commit_->onStore(p, line);
            else
                commit_->onLoad(p, line, DataSource::CacheHit, kNoProc);
        }
        if (sync_ && !traceMuted_)
            sync_->onMemOp(p, addr,
                           inRmw_ ? MemOp::Rmw
                                  : write ? MemOp::Store : MemOp::Load);
        return lat;
    }

    const NodeId myNode = procNode_[p];
    const NodeId home = pageTable_.home(addr, myNode);
    Cycles migration_stall = 0;
    if (pageTable_.noteAccess(addr, myNode)) {
        useResource(memFree_[home], now, cfg_.migrationCycles / 4);
        useResource(memFree_[myNode], now, cfg_.migrationCycles / 4);
        migration_stall = cfg_.migrationCycles;
        ++st.c.pageMigrations;
        if (traceOn())
            trace_->onPageMigration(p, now, addr, home, myNode);
    }

    // `lat` accumulates the elapsed transaction latency; each stage's
    // resource sees arrival time now+lat, so queueing delays compose
    // sequentially instead of being double-counted.
    Cycles lat = 0;

    if (res.hit && res.upgrade) {
        // Write hit without write permission: the store needs a
        // coherence transaction at the home — an ownership upgrade
        // under invalidation protocols, an update broadcast under
        // Dragon. The requester table demands the same action for
        // Shared and Owned in every shipped protocol, so the Shared
        // cell speaks for the whole fan-out. No victim on this path,
        // so the entry reference is safe to hold.
        const bool update = proto_.updateBased;
        DirEntry& e = dir_.lookup(line);
        ++st.c.upgrades;
        const std::uint64_t fan_before =
            st.c.invalsSent + st.c.updatesSent;
        if (!update)
            updatedProcs_.clear();
        lat = cfg_.procCycles;
        lat += useResource(hubFree_[myNode], now + lat,
                           cfg_.hubOccupancy);
        lat += cfg_.hubCycles; // traversal out
        if (home != myNode) {
            lat += netLeg(myNode, home, now + lat);
            lat += useResource(hubFree_[home], now + lat,
                               cfg_.hubOccupancy);
            lat += cfg_.hubCycles + cfg_.dirCycles;
            lat += update
                       ? updateSharers(p, home, now + lat, line, e, st)
                       : invalidateSharers(p, home, now + lat, line, e,
                                           st);
            lat += cfg_.hubCycles; // home hub out
            lat += netLeg(home, myNode, now + lat);
        } else {
            lat += cfg_.dirCycles;
            lat += update
                       ? updateSharers(p, home, now + lat, line, e, st)
                       : invalidateSharers(p, home, now + lat, line, e,
                                           st);
        }
        lat += cfg_.hubCycles + cfg_.procCycles; // own hub in, retire
        if (!update || updatedProcs_.empty()) {
            // Exclusive ownership: every other copy is gone (or none
            // existed), so the writer's line is plainly Dirty.
            e.state = DirState::Dirty;
            e.owner = p;
            e.sharers.clear();
            e.sharers.add(p);
            e.overflow = false;
            if (update)
                cache.setState(line, LineState::Dirty);
        } else {
            // Dragon with live copies: the writer becomes the Owned
            // supplier (Sm); the updated sharers keep their copies.
            e.state = DirState::Owned;
            e.owner = p;
            e.sharers.add(p);
            noteSharers(e);
            cache.setState(line, LineState::Owned);
        }
        if (traceOn())
            trace_->onUpgrade(p, now, lat, line, home,
                              static_cast<int>(st.c.invalsSent +
                                               st.c.updatesSent -
                                               fan_before));
        if (commit_) {
            commit_->onStore(p, line);
            for (const ProcId q : updatedProcs_)
                commit_->onUpdate(q, line);
        }
        if (sync_ && !traceMuted_)
            sync_->onMemOp(p, addr,
                           inRmw_ ? MemOp::Rmw : MemOp::Store);
        return lat;
    }

    // True miss: victim first, then the fill transaction. The line's
    // directory entry is looked up only after the victim's entry has
    // been updated/dropped: the flat directory invalidates references
    // on insert/erase, so a reference obtained earlier would dangle.
    handleVictim(p, now, res, st);
    pendingFill_[p].erase(line);
    DirEntry& e = dir_.lookup(line);
    obs::EventKind miss_kind = obs::EventKind::MissLocal;
    DataSource fill_src = DataSource::Memory;
    ProcId fill_supplier = kNoProc;
    updatedProcs_.clear();

    const bool dirty_elsewhere =
        (e.state == DirState::Dirty || e.state == DirState::Owned) &&
        e.owner != kNoProc && e.owner != p;

    // Request leg: processor -> own Hub (-> network -> home Hub).
    lat = cfg_.procCycles;
    lat += useResource(hubFree_[myNode], now + lat, cfg_.hubOccupancy);
    lat += cfg_.hubCycles; // own hub, outbound traversal
    if (home != myNode) {
        lat += netLeg(myNode, home, now + lat);
        lat += useResource(hubFree_[home], now + lat, cfg_.hubOccupancy);
        lat += cfg_.hubCycles; // home hub, inbound traversal
    }
    // Home: directory lookup + (possibly speculative) memory read.
    lat += cfg_.dirCycles;
    lat += useResource(memFree_[home], now + lat, cfg_.memOccupancy);
    lat += cfg_.memCycles;

    if (dirty_elsewhere) {
        // 3-hop: the home forwards to the owner concurrently with its
        // speculative memory read; the owner replies directly to the
        // requester (see accessLegacy for the latency algebra).
        const ProcId owner = e.owner;
        const NodeId on = procNode_[owner];
        const int oidx =
            static_cast<int>(e.state == DirState::Owned
                                 ? LineState::Owned
                                 : LineState::Dirty);
        lat += useResource(hubFree_[on], now + lat, cfg_.hubOccupancy);
        lat += 2 * cfg_.hubCycles + cfg_.protocol.interventionCycles;
        const Cycles fwd = legLatency(cfg_, topo_.route(home, on));
        const Cycles rep = legLatency(cfg_, topo_.route(on, myNode));
        const Cycles direct = legLatency(cfg_, topo_.route(home, myNode));
        lat += fwd > cfg_.memCycles ? fwd - cfg_.memCycles : 0;
        lat += rep > direct ? rep - direct : 0;
        ++st.c.missRemoteDirty;
        miss_kind = obs::EventKind::MissRemoteDirty;
        fill_src = DataSource::Owner;
        fill_supplier = owner;
        if (write) {
            const RemCell ocell = proto_.rem[kProtoWrite][oidx];
            if (ocell.act != RemAct::Update) {
                // Invalidation protocols: the intervention transfers
                // ownership and the old owner's copy dies with it. A
                // MOESI Owned entry also has clean peers to kill.
                caches_[owner]->invalidate(line);
                if (commit_)
                    commit_->onInval(owner, line);
                if (allStats_)
                    ++(*allStats_)[owner].c.invalsReceived;
                if (e.state == DirState::Owned)
                    lat += invalidateSharers(p, home, now + lat, line,
                                             e, st, owner);
                e.state = DirState::Dirty;
                e.owner = p;
                e.sharers.clear();
                e.sharers.add(p);
                e.overflow = false;
            } else {
                // Dragon: the owner supplies the line, then every
                // copy (the owner's included) absorbs the new value;
                // the writer takes over as the Owned supplier.
                lat += updateSharers(p, home, now + lat, line, e, st);
                e.owner = p;
                e.sharers.add(p);
                noteSharers(e);
                if (updatedProcs_.empty()) {
                    e.state = DirState::Dirty;
                } else {
                    e.state = DirState::Owned;
                    cache.setState(line, LineState::Owned);
                }
            }
        } else {
            const RemCell ocell = proto_.rem[kProtoRead][oidx];
            if (ocell.act == RemAct::SupplyWriteback) {
                // MESI: the owner downgrades and its dirty data is
                // written back to home memory.
                caches_[owner]->downgrade(line);
                useResource(memFree_[home], now, cfg_.memOccupancy);
                if (commit_)
                    commit_->onDowngrade(owner, line);
                e.state = DirState::Shared;
                e.owner = kNoProc;
                e.sharers.add(p);
                noteSharers(e);
            } else {
                // MOESI/Dragon: the owner keeps its dirty data
                // (Dirty -> Owned) and stays responsible for
                // supplying it; home memory remains stale.
                if (ocell.next == NextState::Owned)
                    caches_[owner]->setState(line, LineState::Owned);
                if (commit_)
                    commit_->onShareDirty(owner, line);
                e.state = DirState::Owned;
                e.sharers.add(owner);
                e.sharers.add(p);
                noteSharers(e);
            }
        }
    } else {
        if (home == myNode) {
            ++st.c.missLocal;
            miss_kind = obs::EventKind::MissLocal;
        } else {
            ++st.c.missRemoteClean;
            miss_kind = obs::EventKind::MissRemoteClean;
        }
        if (write) {
            if (!proto_.updateBased) {
                lat += invalidateSharers(p, home, now + lat, line, e,
                                         st);
                e.state = DirState::Dirty;
                e.owner = p;
                e.sharers.clear();
                e.sharers.add(p);
                e.overflow = false;
            } else {
                lat += updateSharers(p, home, now + lat, line, e, st);
                e.owner = p;
                e.sharers.add(p);
                noteSharers(e);
                if (updatedProcs_.empty()) {
                    e.state = DirState::Dirty;
                } else {
                    e.state = DirState::Owned;
                    cache.setState(line, LineState::Owned);
                }
            }
        } else {
            if (e.state == DirState::Dirty && e.owner == p) {
                // Stale directory (should not happen); repair.
                e.state = DirState::Shared;
                e.owner = kNoProc;
            }
            e.state = e.state == DirState::Uncached ? DirState::Shared
                                                    : e.state;
            e.sharers.add(p);
            noteSharers(e);
        }
    }
    // Reply leg: (home hub out -> network ->) own Hub in -> processor.
    if (home != myNode) {
        lat += cfg_.hubCycles;
        lat += netLeg(home, myNode, now + lat);
    }
    lat += cfg_.hubCycles + cfg_.procCycles;
    if (traceOn())
        trace_->onMiss(p, now, lat + migration_stall, line, home,
                       miss_kind, write);
    if (commit_) {
        if (write) {
            commit_->onStore(p, line);
            for (const ProcId q : updatedProcs_)
                commit_->onUpdate(q, line);
        } else {
            commit_->onLoad(p, line, fill_src, fill_supplier);
        }
    }
    if (sync_ && !traceMuted_)
        sync_->onMemOp(p, addr,
                       inRmw_ ? MemOp::Rmw
                              : write ? MemOp::Store : MemOp::Load);
    return lat + migration_stall;
}

Cycles
MemSys::accessLegacy(ProcId p, Cycles now, Addr addr, bool write,
                     ProcStats& st)
{
    if (write)
        ++st.c.stores;
    else
        ++st.c.loads;
    if (traceOn())
        trace_->onAccess(p, now, addr, write);

    Cache& cache = *caches_[p];
    const LineAddr line =
        addr & ~static_cast<Addr>(cfg_.lineBytes - 1);
    const CacheResult res = cache.access(addr, write);

    if (res.hit && !res.upgrade) {
        Cycles lat = cfg_.l2HitCycles;
        PendingFills& pend = pendingFill_[p];
        if (!pend.empty()) {
            if (const Cycles* ready = pend.find(line)) {
                if (*ready > now)
                    lat += *ready - now;
                ++st.c.prefetchesUseful;
                if (traceOn())
                    trace_->onPrefetchUseful(p, now);
                pend.erase(line);
            }
        }
        ++st.c.l2Hits;
        if (traceOn())
            trace_->onHit(p, now);
        if (commit_) {
            if (write)
                commit_->onStore(p, line);
            else
                commit_->onLoad(p, line, DataSource::CacheHit, kNoProc);
        }
        if (sync_ && !traceMuted_)
            sync_->onMemOp(p, addr,
                           inRmw_ ? MemOp::Rmw
                                  : write ? MemOp::Store : MemOp::Load);
        return lat;
    }

    const NodeId myNode = procNode_[p];
    const NodeId home = pageTable_.home(addr, myNode);
    Cycles migration_stall = 0;
    if (pageTable_.noteAccess(addr, myNode)) {
        // Page migrated to myNode: the 16 KB copy occupies both
        // memories (one page of line transfers), and the triggering
        // access stalls for the full OS/TLB-shootdown latency.
        useResource(memFree_[home], now, cfg_.migrationCycles / 4);
        useResource(memFree_[myNode], now, cfg_.migrationCycles / 4);
        migration_stall = cfg_.migrationCycles;
        ++st.c.pageMigrations;
        if (traceOn())
            trace_->onPageMigration(p, now, addr, home, myNode);
    }

    // `lat` accumulates the elapsed transaction latency; each stage's
    // resource sees arrival time now+lat, so queueing delays compose
    // sequentially instead of being double-counted.
    Cycles lat = 0;

    if (res.hit && res.upgrade) {
        // Write hit on a Shared line: ownership upgrade at the home.
        // No victim on this path, so the entry reference is safe to
        // hold (nothing below inserts into or erases from the
        // directory).
        DirEntry& e = dir_.lookup(line);
        ++st.c.upgrades;
        const std::uint64_t inv_before = st.c.invalsSent;
        lat = cfg_.procCycles;
        lat += useResource(hubFree_[myNode], now + lat,
                           cfg_.hubOccupancy);
        lat += cfg_.hubCycles; // traversal out
        if (home != myNode) {
            lat += netLeg(myNode, home, now + lat);
            lat += useResource(hubFree_[home], now + lat,
                               cfg_.hubOccupancy);
            lat += cfg_.hubCycles + cfg_.dirCycles;
            lat += invalidateSharers(p, home, now + lat, line, e, st);
            lat += cfg_.hubCycles; // home hub out
            lat += netLeg(home, myNode, now + lat);
        } else {
            lat += cfg_.dirCycles;
            lat += invalidateSharers(p, home, now + lat, line, e, st);
        }
        lat += cfg_.hubCycles + cfg_.procCycles; // own hub in, retire
        e.state = DirState::Dirty;
        e.owner = p;
        e.sharers.clear();
        e.sharers.add(p);
        if (traceOn())
            trace_->onUpgrade(p, now, lat, line, home,
                              static_cast<int>(st.c.invalsSent -
                                               inv_before));
        if (commit_)
            commit_->onStore(p, line);
        if (sync_ && !traceMuted_)
            sync_->onMemOp(p, addr,
                           inRmw_ ? MemOp::Rmw : MemOp::Store);
        return lat;
    }

    // True miss: victim first, then the fill transaction. The line's
    // directory entry is looked up only after the victim's entry has
    // been updated/dropped: the flat directory invalidates references
    // on insert/erase, so a reference obtained earlier would dangle.
    handleVictim(p, now, res, st);
    pendingFill_[p].erase(line);
    DirEntry& e = dir_.lookup(line);
    obs::EventKind miss_kind = obs::EventKind::MissLocal;
    DataSource fill_src = DataSource::Memory;
    ProcId fill_supplier = kNoProc;

    const bool dirty_elsewhere =
        e.state == DirState::Dirty && e.owner != kNoProc && e.owner != p;

    // Request leg: processor -> own Hub (-> network -> home Hub).
    lat = cfg_.procCycles;
    lat += useResource(hubFree_[myNode], now + lat, cfg_.hubOccupancy);
    lat += cfg_.hubCycles; // own hub, outbound traversal
    if (home != myNode) {
        lat += netLeg(myNode, home, now + lat);
        lat += useResource(hubFree_[home], now + lat, cfg_.hubOccupancy);
        lat += cfg_.hubCycles; // home hub, inbound traversal
    }
    // Home: directory lookup + (possibly speculative) memory read.
    lat += cfg_.dirCycles;
    lat += useResource(memFree_[home], now + lat, cfg_.memOccupancy);
    lat += cfg_.memCycles;

    if (dirty_elsewhere) {
        // 3-hop: the home forwards to the owner concurrently with its
        // speculative memory read; the owner replies directly to the
        // requester. The requester pays the intervention plus however
        // much the forward leg exceeds the overlapped memory access and
        // the reply leg exceeds the direct home->requester leg.
        const ProcId owner = e.owner;
        const NodeId on = procNode_[owner];
        lat += useResource(hubFree_[on], now + lat, cfg_.hubOccupancy);
        lat += 2 * cfg_.hubCycles + cfg_.protocol.interventionCycles;
        const Cycles fwd = legLatency(cfg_, topo_.route(home, on));
        const Cycles rep = legLatency(cfg_, topo_.route(on, myNode));
        const Cycles direct = legLatency(cfg_, topo_.route(home, myNode));
        lat += fwd > cfg_.memCycles ? fwd - cfg_.memCycles : 0;
        lat += rep > direct ? rep - direct : 0;
        ++st.c.missRemoteDirty;
        miss_kind = obs::EventKind::MissRemoteDirty;
        fill_src = DataSource::Owner;
        fill_supplier = owner;
        if (write) {
            caches_[owner]->invalidate(line);
            if (commit_)
                commit_->onInval(owner, line);
            if (allStats_)
                ++(*allStats_)[owner].c.invalsReceived;
            e.owner = p;
            e.sharers.clear();
            e.sharers.add(p);
            // state stays Dirty
        } else {
            caches_[owner]->downgrade(line);
            // Owner's dirty data is written back to home memory.
            useResource(memFree_[home], now, cfg_.memOccupancy);
            if (commit_)
                commit_->onDowngrade(owner, line);
            e.state = DirState::Shared;
            e.owner = kNoProc;
            e.sharers.add(p);
        }
    } else {
        if (home == myNode) {
            ++st.c.missLocal;
            miss_kind = obs::EventKind::MissLocal;
        } else {
            ++st.c.missRemoteClean;
            miss_kind = obs::EventKind::MissRemoteClean;
        }
        if (write) {
            lat += invalidateSharers(p, home, now + lat, line, e, st);
            e.state = DirState::Dirty;
            e.owner = p;
            e.sharers.clear();
            e.sharers.add(p);
        } else {
            if (e.state == DirState::Dirty && e.owner == p) {
                // Stale directory (should not happen); repair.
                e.state = DirState::Shared;
                e.owner = kNoProc;
            }
            e.state = e.state == DirState::Uncached ? DirState::Shared
                                                    : e.state;
            e.sharers.add(p);
        }
    }
    // Reply leg: (home hub out -> network ->) own Hub in -> processor.
    if (home != myNode) {
        lat += cfg_.hubCycles;
        lat += netLeg(home, myNode, now + lat);
    }
    lat += cfg_.hubCycles + cfg_.procCycles;
    if (traceOn())
        trace_->onMiss(p, now, lat + migration_stall, line, home,
                       miss_kind, write);
    if (commit_) {
        if (write)
            commit_->onStore(p, line);
        else
            commit_->onLoad(p, line, fill_src, fill_supplier);
    }
    if (sync_ && !traceMuted_)
        sync_->onMemOp(p, addr,
                       inRmw_ ? MemOp::Rmw
                              : write ? MemOp::Store : MemOp::Load);
    return lat + migration_stall;
}

void
MemSys::prefetch(ProcId p, Cycles now, Addr addr, ProcStats& st)
{
    Cache& cache = *caches_[p];
    if (cache.probe(addr) != LineState::Invalid)
        return; // already resident
    const LineAddr line =
        addr & ~static_cast<Addr>(cfg_.lineBytes - 1);
    // Run the read transaction; loads/l2Hits counters are not disturbed.
    // Tracing is muted around it: only the counters folded below exist
    // from the issuing processor's point of view, and the single
    // Prefetch event stands in for the whole transaction.
    ProcStats scratch;
    const bool was_muted = traceMuted_;
    traceMuted_ = true;
    const Cycles lat = access(p, now, addr, false, scratch);
    traceMuted_ = was_muted;
    st.c.missLocal += scratch.c.missLocal;
    st.c.missRemoteClean += scratch.c.missRemoteClean;
    st.c.missRemoteDirty += scratch.c.missRemoteDirty;
    st.c.writebacks += scratch.c.writebacks;
    st.c.pageMigrations += scratch.c.pageMigrations;
    ++st.c.prefetchesIssued;
    if (traceOn())
        trace_->onPrefetchIssue(p, now, line,
                                pageTable_.home(line, procNode_[p]),
                                scratch.c);
    pendingFill_[p].set(line, now + lat);
}

Cycles
MemSys::fetchOp(ProcId p, Cycles now, Addr addr, ProcStats& st)
{
    // Served at the home Hub's at-memory ALU; never cached.
    (void)st;
    const NodeId myNode = procNode_[p];
    const NodeId home = pageTable_.home(addr, myNode);
    Cycles lat = cfg_.procCycles;
    lat += useResource(hubFree_[myNode], now + lat, cfg_.hubOccupancy);
    lat += cfg_.hubCycles;
    if (home != myNode) {
        lat += netLeg(myNode, home, now + lat);
        lat += useResource(hubFree_[home], now + lat, cfg_.hubOccupancy);
        lat += cfg_.hubCycles + cfg_.dirCycles;
        lat += cfg_.hubCycles;
        lat += netLeg(home, myNode, now + lat);
    } else {
        lat += cfg_.dirCycles;
    }
    lat += cfg_.hubCycles + cfg_.procCycles;
    if (traceOn())
        trace_->onFetchOp(p, now, lat, addr, home);
    return lat;
}

Cycles
MemSys::llscRmw(ProcId p, Cycles now, Addr addr, ProcStats& st)
{
    // LL + compute + SC: a write access (exclusive ownership) plus a few
    // cycles; failed-SC retry storms are modelled by the callers'
    // contention on the lock line itself.
    inRmw_ = true;
    const Cycles lat = access(p, now, addr, true, st) + 4;
    inRmw_ = false;
    return lat;
}


std::string
MemSys::validateCoherence() const
{
    if (dir_.shadowEnabled()) {
        // Differential seam: the flat sharded storage must mirror the
        // reference std::unordered_map exactly, entry for entry.
        std::string diff = dir_.shadowDiff();
        if (!diff.empty())
            return diff;
    }
    std::ostringstream err;
    // Pass 1: every cached line is covered by a directory entry whose
    // state matches.
    for (int p = 0; p < cfg_.numProcs && err.str().empty(); ++p) {
        caches_[p]->forEachLine([&](Addr line, LineState st) {
            if (!err.str().empty())
                return;
            const DirEntry* e = dir_.probe(line);
            if (!e || e->state == DirState::Uncached) {
                err << "proc " << p << " caches line 0x" << std::hex
                    << line << std::dec << " with no directory entry";
                return;
            }
            if (st == LineState::Dirty) {
                if (e->state != DirState::Dirty || e->owner != p)
                    err << "proc " << p << " holds 0x" << std::hex
                        << line << std::dec
                        << " Dirty but directory disagrees";
            } else if (st == LineState::Owned) {
                if (e->state != DirState::Owned || e->owner != p ||
                    !e->sharers.contains(p))
                    err << "proc " << p << " holds 0x" << std::hex
                        << line << std::dec
                        << " Owned but directory disagrees";
            } else if (!e->sharers.contains(p)) {
                err << "proc " << p << " holds 0x" << std::hex << line
                    << std::dec << " but is not a registered sharer";
            }
        });
    }
    if (!err.str().empty())
        return err.str();
    // Pass 2: directory entries match the caches.
    dir_.forEach([&](LineAddr line, const DirEntry& e) {
        if (!err.str().empty())
            return;
        if (e.state == DirState::Dirty) {
            if (e.owner == kNoProc) {
                err << "Dirty entry 0x" << std::hex << line << std::dec
                    << " without owner";
                return;
            }
            if (caches_[e.owner]->probe(line) != LineState::Dirty)
                err << "directory says proc " << e.owner << " owns 0x"
                    << std::hex << line << std::dec
                    << " Dirty, cache disagrees";
            int holders = 0;
            for (int p = 0; p < cfg_.numProcs; ++p)
                if (caches_[p]->probe(line) != LineState::Invalid)
                    ++holders;
            if (holders != 1)
                err << "Dirty line 0x" << std::hex << line << std::dec
                    << " has " << holders << " cached copies";
        } else if (e.state == DirState::Shared) {
            e.sharers.forEach([&](ProcId s) {
                if (caches_[s]->probe(line) == LineState::Invalid)
                    err << "registered sharer " << s
                        << " does not cache 0x" << std::hex << line
                        << std::dec;
                else if (caches_[s]->probe(line) != LineState::Shared)
                    err << "sharer " << s << " holds 0x" << std::hex
                        << line << std::dec
                        << " Dirty/Owned on Shared entry";
            });
        } else if (e.state == DirState::Owned) {
            if (e.owner == kNoProc || !e.sharers.contains(e.owner)) {
                err << "Owned entry 0x" << std::hex << line << std::dec
                    << " without registered owner";
                return;
            }
            e.sharers.forEach([&](ProcId s) {
                const LineState cs = caches_[s]->probe(line);
                const LineState want = s == e.owner ? LineState::Owned
                                                    : LineState::Shared;
                if (cs != want)
                    err << "Owned entry 0x" << std::hex << line
                        << std::dec << ": proc " << s
                        << " state disagrees with directory";
            });
            int holders = 0;
            for (int p = 0; p < cfg_.numProcs; ++p)
                if (caches_[p]->probe(line) != LineState::Invalid)
                    ++holders;
            if (holders != e.sharers.count())
                err << "Owned line 0x" << std::hex << line << std::dec
                    << " holder count disagrees with sharer set";
        }
    });
    return err.str();
}

} // namespace ccnuma::sim
