/**
 * @file
 * Set-associative L2 cache model with LRU replacement.
 *
 * The simulator models only the unified L2 (4 MB, 2-way, 128 B lines on
 * the Origin2000): the paper's entire analysis is at the level of L2
 * misses and coherence traffic, and the R10000's 32 KB L1s are strictly
 * inclusive filters that do not change miss classification.
 */

#ifndef CCNUMA_SIM_CACHE_HH
#define CCNUMA_SIM_CACHE_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace ccnuma::sim {

/** Coherence state of a cached line. */
enum class LineState : std::uint8_t {
    Invalid = 0,
    Shared = 1,
    Dirty = 2, ///< Exclusive-modified (owner).
};

/** Result of a cache lookup-and-allocate. */
struct CacheResult {
    bool hit = false;
    bool upgrade = false;       ///< Hit Shared but needed ownership.
    LineAddr victim = 0;        ///< Valid line evicted to make room.
    LineState victimState = LineState::Invalid;
};

/**
 * One processor's L2 cache. Addresses are full byte addresses; the cache
 * works internally on line numbers (addr >> lineShift).
 */
class Cache
{
  public:
    /**
     * @param bytes total capacity
     * @param assoc associativity
     * @param line_bytes line size (power of two)
     */
    Cache(std::uint64_t bytes, int assoc, std::uint32_t line_bytes);

    /// Look up a line for reading; allocates (in `Shared` state) on miss.
    CacheResult access(Addr addr, bool is_write);

    /// Probe without side effects.
    LineState probe(Addr addr) const;

    /// Invalidate a line if present (due to a remote write).
    /// @return state the line was in.
    LineState invalidate(Addr addr);

    /// Downgrade Dirty->Shared (remote read of a line we own).
    void downgrade(Addr addr);

    /// Install a line in the given state, e.g. by a prefetch.
    /// Returns eviction info like access().
    CacheResult install(Addr addr, LineState st);

    std::uint64_t lineOf(Addr addr) const { return addr >> lineShift_; }
    std::uint32_t lineBytes() const { return 1u << lineShift_; }
    std::uint64_t numSets() const { return sets_; }
    int assoc() const { return assoc_; }

    /// Number of valid lines currently resident (for tests).
    std::uint64_t residentLines() const;

    /// Call fn(lineBaseAddr, state) for every valid line (validation).
    template <typename Fn>
    void
    forEachLine(Fn&& fn) const
    {
        for (const Way& w : ways_)
            if (w.state != LineState::Invalid)
                fn(w.line << lineShift_, w.state);
    }

    /// Drop every line, as if by a full flush; no writebacks are modelled
    /// (used when resetting between phases in tests).
    void reset();

  private:
    struct Way {
        std::uint64_t line = 0;
        LineState state = LineState::Invalid;
        std::uint32_t lastUse = 0;
    };

    std::uint64_t setIndex(std::uint64_t line) const
    {
        return line & (sets_ - 1);
    }
    Way* find(std::uint64_t line);
    const Way* find(std::uint64_t line) const;

    int lineShift_;
    std::uint64_t sets_;
    int assoc_;
    std::uint32_t useClock_ = 0;
    std::vector<Way> ways_; ///< sets_ * assoc_, set-major.
};

} // namespace ccnuma::sim

#endif // CCNUMA_SIM_CACHE_HH
