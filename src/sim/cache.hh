/**
 * @file
 * Set-associative L2 cache model with LRU replacement.
 *
 * The simulator models only the unified L2 (4 MB, 2-way, 128 B lines on
 * the Origin2000): the paper's entire analysis is at the level of L2
 * misses and coherence traffic, and the R10000's 32 KB L1s are strictly
 * inclusive filters that do not change miss classification.
 */

#ifndef CCNUMA_SIM_CACHE_HH
#define CCNUMA_SIM_CACHE_HH

#include <cassert>
#include <cstdint>
#include <cstdlib>
#include <memory>

#include "sim/protocol.hh"
#include "sim/types.hh"

namespace ccnuma::sim {

/** Coherence state of a cached line. */
enum class LineState : std::uint8_t {
    Invalid = 0,
    Shared = 1,
    Dirty = 2, ///< Exclusive-modified (owner).
    Owned = 3, ///< Modified but shared; this cache supplies the data
               ///< (MOESI Owned / Dragon Sm). Never occurs under MESI.
};

/** Result of a cache lookup-and-allocate. */
struct CacheResult {
    bool hit = false;
    bool upgrade = false;       ///< Hit without write permission: the
                                ///< store needs a coherence
                                ///< transaction (invalidate or update).
    LineAddr victim = 0;        ///< Valid line evicted to make room.
    LineState victimState = LineState::Invalid;
};

/**
 * One processor's L2 cache. Addresses are full byte addresses; the cache
 * works internally on line numbers (addr >> lineShift).
 */
class Cache
{
  public:
    /**
     * @param bytes total capacity
     * @param assoc associativity
     * @param line_bytes line size (power of two)
     * @param proto coherence protocol whose requester table decides
     *        what a write hit does to the line state inline (nullptr
     *        means MESI, preserving the historical constructor).
     */
    Cache(std::uint64_t bytes, int assoc, std::uint32_t line_bytes,
          const Protocol* proto = nullptr);

    /// Look up a line; allocates (Shared on read, Dirty on write) on
    /// miss. Defined inline below: the lookup and victim scan are fused
    /// into one pass over the set, and the whole path inlines into
    /// MemSys::access — together the hottest loop of the simulator.
    CacheResult access(Addr addr, bool is_write);

    /// Probe without side effects.
    LineState probe(Addr addr) const;

    /// Invalidate a line if present (due to a remote write).
    /// @return state the line was in.
    LineState invalidate(Addr addr);

    /// Downgrade Dirty->Shared (remote read of a line we own).
    void downgrade(Addr addr);

    /// Force a resident line into `st` (protocol-engine resolution of
    /// context-dependent next states, e.g. Dirty->Owned on an
    /// owner-forwarded read or Dragon's Sm/Sc transitions). The line
    /// must be resident; no LRU update.
    void setState(Addr addr, LineState st);

    /// Install a line in the given state, e.g. by a prefetch.
    /// Returns eviction info like access().
    CacheResult install(Addr addr, LineState st);

    std::uint64_t lineOf(Addr addr) const { return addr >> lineShift_; }
    std::uint32_t lineBytes() const { return 1u << lineShift_; }
    std::uint64_t numSets() const { return sets_; }
    int assoc() const { return assoc_; }

    /// Number of valid lines currently resident (for tests).
    std::uint64_t residentLines() const;

    /// Call fn(lineBaseAddr, state) for every valid line (validation).
    template <typename Fn>
    void
    forEachLine(Fn&& fn) const
    {
        for (std::uint64_t i = 0; i < sets_ * assoc_; ++i) {
            const Way& w = ways_[i];
            if (w.state != LineState::Invalid)
                fn(w.line << lineShift_, w.state);
        }
    }

    /// Drop every line, as if by a full flush; no writebacks are modelled
    /// (used when resetting between phases in tests).
    void reset();

  private:
    /// Trivial, and meaningful when all-zero (LineState::Invalid == 0):
    /// the backing array comes from calloc, so a freshly built cache
    /// costs no page-touching — the kernel's zero pages fault in only
    /// for the sets a run actually reaches. (A 4 MB L2 at 128
    /// processors is tens of MB of Way state per machine; small runs
    /// touch a sliver of it.)
    struct Way {
        std::uint64_t line;
        LineState state;
        std::uint32_t lastUse;
    };
    struct WayFree {
        void operator()(Way* p) const { std::free(p); }
    };

    std::uint64_t setIndex(std::uint64_t line) const
    {
        return line & (sets_ - 1);
    }

    Way*
    find(std::uint64_t line)
    {
        Way* base = &ways_[setIndex(line) * assoc_];
        for (int w = 0; w < assoc_; ++w)
            if (base[w].state != LineState::Invalid &&
                base[w].line == line)
                return &base[w];
        return nullptr;
    }
    const Way*
    find(std::uint64_t line) const
    {
        return const_cast<Cache*>(this)->find(line);
    }

    int lineShift_;
    std::uint64_t sets_;
    int assoc_;
    std::uint32_t useClock_ = 0;
    std::unique_ptr<Way[], WayFree> ways_; ///< sets_*assoc_, set-major.

    /// Resolved req[write][state].next per current state, applied
    /// inline on a write hit; LineState::Invalid means "leave
    /// unchanged, the engine resolves it" (Dragon's OwnedIfSharers).
    /// Keeps the historical Shared->Dirty hot-path store for MESI.
    LineState writeHitNext_[4] = {LineState::Invalid, LineState::Dirty,
                                  LineState::Invalid, LineState::Invalid};

    /// One pass over a set: returns the matching way via `hit`, or
    /// leaves `hit` null and returns the fill victim (first invalid
    /// way if any, else least-recently-used — identical choice to a
    /// separate find-then-scan).
    Way*
    scanSet(std::uint64_t line, Way*& hit)
    {
        Way* base = &ways_[setIndex(line) * assoc_];
        Way* victim = base;
        for (int w = 0; w < assoc_; ++w) {
            Way& cand = base[w];
            if (cand.state == LineState::Invalid) {
                if (victim->state != LineState::Invalid)
                    victim = &cand;
                continue;
            }
            if (cand.line == line) {
                hit = &cand;
                return victim;
            }
            if (victim->state != LineState::Invalid &&
                cand.lastUse < victim->lastUse)
                victim = &cand;
        }
        hit = nullptr;
        return victim;
    }
};

inline CacheResult
Cache::access(Addr addr, bool is_write)
{
    const std::uint64_t line = lineOf(addr);
    ++useClock_;
    Way* hit = nullptr;
    Way* victim = scanSet(line, hit);
    if (hit) {
        hit->lastUse = useClock_;
        CacheResult r;
        r.hit = true;
        if (is_write && hit->state != LineState::Dirty) {
            r.upgrade = true;
            const LineState nx =
                writeHitNext_[static_cast<int>(hit->state)];
            if (nx != LineState::Invalid)
                hit->state = nx;
        }
        return r;
    }
    // Miss: fill into the victim. The second tick keeps lastUse values
    // identical to the historical access()->install() pair, so LRU
    // decisions (and thus every simulated metric) are unchanged.
    ++useClock_;
    CacheResult r;
    if (victim->state != LineState::Invalid) {
        r.victim = victim->line << lineShift_;
        r.victimState = victim->state;
    }
    victim->line = line;
    victim->state = is_write ? LineState::Dirty : LineState::Shared;
    victim->lastUse = useClock_;
    return r;
}

inline CacheResult
Cache::install(Addr addr, LineState st)
{
    assert(st != LineState::Invalid);
    const std::uint64_t line = lineOf(addr);
    ++useClock_;
    Way* hit = nullptr;
    Way* victim = scanSet(line, hit);
    if (hit) {
        // Prefetch raced with demand fetch or repeated install.
        hit->lastUse = useClock_;
        if (st == LineState::Dirty)
            hit->state = LineState::Dirty;
        CacheResult r;
        r.hit = true;
        return r;
    }
    CacheResult r;
    if (victim->state != LineState::Invalid) {
        r.victim = victim->line << lineShift_;
        r.victimState = victim->state;
    }
    victim->line = line;
    victim->state = st;
    victim->lastUse = useClock_;
    return r;
}

} // namespace ccnuma::sim

#endif // CCNUMA_SIM_CACHE_HH
