/**
 * @file
 * Open-addressing hash map from LineAddr to V for the simulator's hot
 * paths (directory entries, pending prefetch fills).
 *
 * Design, tuned for the access patterns of MemSys:
 *  - linear probing over one contiguous slot array: a lookup is one
 *    multiply, one shift and a short scan of adjacent memory, instead
 *    of std::unordered_map's bucket indirection + node chase;
 *  - power-of-two capacity with Fibonacci (multiplicative) hashing, so
 *    the "bucket" index is a shift rather than a modulo by a prime;
 *  - backward-shift deletion: erase re-packs the probe window instead
 *    of leaving tombstones, so long-running churn (lines dropping to
 *    Uncached and returning) cannot degrade probe lengths.
 *
 * The behavioural contract difference from std::unordered_map that
 * callers MUST respect: references returned by operator[]/find() are
 * invalidated by any subsequent insert or erase (rehash moves slots;
 * backward-shift moves neighbours). See MemSys::access(), which
 * re-looks-up the missing line only after victim handling.
 */

#ifndef CCNUMA_SIM_FLAT_HASH_HH
#define CCNUMA_SIM_FLAT_HASH_HH

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace ccnuma::sim {

template <typename V>
class FlatHashMap
{
  public:
    explicit FlatHashMap(std::size_t initial_capacity = 64)
    {
        rehash(std::bit_ceil(
            initial_capacity < 8 ? std::size_t{8} : initial_capacity));
    }

    /// Value for `key`, default-constructed if absent. The reference is
    /// valid only until the next insert or erase.
    V&
    operator[](LineAddr key)
    {
        std::size_t i = indexOf(key);
        while (used_[i]) {
            if (slots_[i].key == key)
                return slots_[i].value;
            i = (i + 1) & mask_;
        }
        // Not present: grow first if needed (load factor 0.7), then
        // claim the slot.
        if ((size_ + 1) * 10 > capacity_ * 7) {
            rehash(capacity_ * 2);
            i = indexOf(key);
            while (used_[i])
                i = (i + 1) & mask_;
        }
        used_[i] = 1;
        slots_[i].key = key;
        slots_[i].value = V{};
        ++size_;
        return slots_[i].value;
    }

    /// Pointer to the value, or nullptr; valid until the next mutation.
    V*
    find(LineAddr key)
    {
        std::size_t i = indexOf(key);
        while (used_[i]) {
            if (slots_[i].key == key)
                return &slots_[i].value;
            i = (i + 1) & mask_;
        }
        return nullptr;
    }
    const V*
    find(LineAddr key) const
    {
        return const_cast<FlatHashMap*>(this)->find(key);
    }

    /// Remove `key` if present (backward-shift, no tombstones).
    bool
    erase(LineAddr key)
    {
        std::size_t i = indexOf(key);
        while (used_[i]) {
            if (slots_[i].key == key) {
                removeAt(i);
                return true;
            }
            i = (i + 1) & mask_;
        }
        return false;
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /// Call fn(key, value) for every entry, in unspecified order.
    template <typename Fn>
    void
    forEach(Fn&& fn) const
    {
        for (std::size_t i = 0; i < capacity_; ++i)
            if (used_[i])
                fn(slots_[i].key, slots_[i].value);
    }

    void
    reserve(std::size_t n)
    {
        if (n * 10 > capacity_ * 7)
            rehash(std::bit_ceil(n * 10 / 7 + 1));
    }

  private:
    struct Slot {
        LineAddr key = 0;
        V value{};
    };

    std::size_t
    indexOf(LineAddr key) const
    {
        // Fibonacci hashing: the golden-ratio multiplier diffuses the
        // low-entropy line addresses; the top bits index the table.
        return static_cast<std::size_t>(
            (key * 0x9E3779B97F4A7C15ull) >> shift_);
    }

    void
    removeAt(std::size_t hole)
    {
        // Backward-shift: walk the probe chain after the hole; any
        // element whose ideal slot is NOT cyclically inside (hole, j]
        // may move back into the hole (it only ever probed past the
        // hole because of a collision run that the hole now breaks).
        std::size_t i = hole;
        std::size_t j = i;
        for (;;) {
            j = (j + 1) & mask_;
            if (!used_[j])
                break;
            const std::size_t k = indexOf(slots_[j].key);
            const bool unmovable =
                j > i ? (k > i && k <= j) : (k > i || k <= j);
            if (unmovable)
                continue;
            slots_[i] = slots_[j];
            i = j;
        }
        used_[i] = 0;
        slots_[i] = Slot{};
        --size_;
    }

    void
    rehash(std::size_t new_capacity)
    {
        std::vector<Slot> old_slots = std::move(slots_);
        std::vector<std::uint8_t> old_used = std::move(used_);
        capacity_ = new_capacity;
        mask_ = new_capacity - 1;
        shift_ = 64 - std::countr_zero(new_capacity);
        slots_.assign(capacity_, Slot{});
        used_.assign(capacity_, 0);
        for (std::size_t s = 0; s < old_slots.size(); ++s) {
            if (!old_used[s])
                continue;
            std::size_t i = indexOf(old_slots[s].key);
            while (used_[i])
                i = (i + 1) & mask_;
            used_[i] = 1;
            slots_[i] = old_slots[s];
        }
    }

    std::vector<Slot> slots_;
    std::vector<std::uint8_t> used_;
    std::size_t capacity_ = 0;
    std::size_t mask_ = 0;
    unsigned shift_ = 64;
    std::size_t size_ = 0;
};

} // namespace ccnuma::sim

#endif // CCNUMA_SIM_FLAT_HASH_HH
