/**
 * @file
 * Operation-recording hook for the trace record/replay facility.
 *
 * An OpRecorder attached to a Machine (Machine::attachOpRecorder) sees
 * two streams:
 *
 *  - the machine-building calls an application makes in setup() —
 *    alloc, barrier/lock creation, explicit page placement — in call
 *    order, and
 *  - every per-processor operation (the full OpKind alphabet of
 *    sim/oplog.hh: memory ops, busy time, yield points,
 *    synchronization) at the moment the program issues it.
 *
 * Together the two streams are a complete, replayable description of
 * the run: re-issuing the building calls in order reproduces the
 * address-space layout (arena bases, lock/barrier lines) exactly, and
 * re-issuing each processor's operation stream reproduces the
 * simulation bit-for-bit, because the serial engine is deterministic
 * in (config, per-processor operation streams). apps::TraceReplayApp
 * (apps/trace.hh) is that replayer.
 *
 * Recording is a serial-engine feature: Machine::run falls back to the
 * serial engine while a recorder is attached (the scout pass has its
 * own recording machinery and bypasses these taps). When no recorder
 * is attached the cost is one predictable null test per operation —
 * the same contract as the obs::Trace and SyncObserver hooks.
 */

#ifndef CCNUMA_SIM_RECORDER_HH
#define CCNUMA_SIM_RECORDER_HH

#include <cstdint>

#include "sim/oplog.hh"
#include "sim/types.hh"

namespace ccnuma::sim {

/** Observer of machine building and the per-processor op streams. */
class OpRecorder
{
  public:
    virtual ~OpRecorder() = default;

    // ---- machine building (App::setup, or mid-run) ----
    /// Machine::alloc(bytes) was called (page-rounded by the machine;
    /// also fired for a direct allocLine(), as its one-line alloc).
    virtual void onAlloc(std::uint64_t bytes) = 0;
    /// Machine::barrierCreate(participants) was called (`participants`
    /// already resolved, never negative). The barrier's internal line
    /// allocation is folded in — it is not reported through onAlloc.
    virtual void onBarrierCreate(int participants) = 0;
    /// Machine::lockCreate() was called (line allocation folded in).
    virtual void onLockCreate() = 0;
    /// Machine::place(addr, bytes, node) was called.
    virtual void onPlace(Addr addr, std::uint64_t bytes,
                         NodeId node) = 0;
    /// Machine::placeAcrossProcs(addr, bytes) was called.
    virtual void onPlaceAcross(Addr addr, std::uint64_t bytes) = 0;

    // ---- program execution ----
    /// Processor `p` issued one operation (see sim::OpKind for the
    /// meaning of `arg`). Fired at issue, in per-processor program
    /// order; the machine's serial engine makes the global order
    /// deterministic.
    virtual void onOp(ProcId p, OpKind kind, std::uint64_t arg) = 0;
};

} // namespace ccnuma::sim

#endif // CCNUMA_SIM_RECORDER_HH
