#include "sim/config.hh"

#include <bit>
#include <sstream>

namespace ccnuma::sim {

std::string
MachineConfig::validate() const
{
    std::ostringstream err;
    if (numProcs < 1 || numProcs > kMaxProcs)
        err << "numProcs must be in [1," << kMaxProcs << "]; ";
    if (procsPerNode < 1)
        err << "procsPerNode must be >= 1; ";
    if (!oneProcPerNode && numProcs > procsPerNode &&
        numProcs % procsPerNode != 0)
        err << "numProcs must be a multiple of procsPerNode; ";
    if (!std::has_single_bit(static_cast<unsigned>(lineBytes)))
        err << "lineBytes must be a power of two; ";
    if (pageBytes % lineBytes != 0)
        err << "pageBytes must be a multiple of lineBytes; ";
    if (cacheBytes % (static_cast<std::uint64_t>(lineBytes) * cacheAssoc)
        != 0)
        err << "cacheBytes must divide into lineBytes*assoc sets; ";
    if (!std::has_single_bit(numSets()))
        err << "cache set count must be a power of two; ";
    if (quantum == 0)
        err << "quantum must be nonzero; ";
    if (simJobs < 0)
        err << "simJobs must be >= 0 (0 = auto); ";
    if (dirFormat.format != DirFormat::FullBitVector &&
        dirFormat.param < 1)
        err << "dirFormat param (coarse:K / ptr:N) must be >= 1; ";
    if (check.legacyMesiPath &&
        (protocol.kind != ProtocolKind::MESI ||
         dirFormat.format != DirFormat::FullBitVector))
        err << "check.legacyMesiPath requires protocol=mesi and "
               "dirFormat=fullbv; ";
    if (trace.any() && trace.epochCycles == 0)
        err << "trace.epochCycles must be nonzero; ";
    const int nodes = numProcs <= procsPerNode && !oneProcPerNode
                          ? 1
                          : numNodes();
    if (nodes >= 1 && numProcs > procsPerNode && !oneProcPerNode &&
        numNodes() % nodesPerRouter != 0 && numNodes() > 1)
        err << "node count must be a multiple of nodesPerRouter; ";
    return err.str();
}

MachineConfig
MachineConfig::resolved() const
{
    MachineConfig r = *this;
    // One-release shim for the latency knobs that moved into
    // ProtocolConfig: an old-style caller changed the top-level field
    // and left the sub-config at its default.
    static constexpr Cycles kDefaultIntervention = 22;
    static constexpr Cycles kDefaultInvalPerSharer = 4;
    if (interventionCycles != kDefaultIntervention &&
        r.protocol.interventionCycles == kDefaultIntervention)
        r.protocol.interventionCycles = interventionCycles;
    if (invalPerSharerCycles != kDefaultInvalPerSharer &&
        r.protocol.invalPerSharerCycles == kDefaultInvalPerSharer)
        r.protocol.invalPerSharerCycles = invalPerSharerCycles;
    return r;
}

MachineConfig
MachineConfig::origin2000(int numProcs)
{
    MachineConfig cfg;
    cfg.numProcs = numProcs;
    return cfg;
}

MachineConfig
MachineConfig::uniprocessor()
{
    return origin2000(1).baseline();
}

MachineConfig
MachineConfig::baseline() const
{
    MachineConfig seq = *this;
    seq.numProcs = 1;
    seq.oneProcPerNode = false;
    // The baseline is only timed; don't trace it (tracing never changes
    // timing, this just avoids pointless capture cost).
    seq.trace = {};
    return seq;
}

} // namespace ccnuma::sim
