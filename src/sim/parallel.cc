#include "sim/parallel.hh"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "sim/cpu.hh"

namespace ccnuma::sim {

int
ScoutEngine::clampWorkers(const std::vector<NodeId>& procNode,
                          int requested)
{
    const NodeId numNodes =
        *std::max_element(procNode.begin(), procNode.end()) + 1;
    return std::clamp(requested, 1, static_cast<int>(numNodes));
}

ScoutEngine::ScoutEngine(std::vector<Cpu>& cpus,
                         std::vector<NodeId> procNode,
                         std::vector<int> barrierParts, int numLocks,
                         Cycles windowCycles, int workers)
    : cpus_(cpus),
      sync_(clampWorkers(procNode, workers)),
      width_(windowCycles > 0 ? windowCycles : 1),
      windowEnd_(width_),
      nprocs_(static_cast<int>(cpus.size()))
{
    const NodeId numNodes =
        *std::max_element(procNode.begin(), procNode.end()) + 1;
    workers = clampWorkers(procNode, workers);
    workers_.resize(workers);

    streams_.reserve(nprocs_);
    links_.resize(nprocs_);
    state_.assign(nprocs_, CpuState::Runnable);
    grantAt_.assign(nprocs_, kNever);
    for (ProcId p = 0; p < nprocs_; ++p) {
        streams_.push_back(std::make_unique<OpStream>(&budget_));
        // Node-contiguous ownership: worker w gets nodes
        // [w*N/W, (w+1)*N/W), and with them every process the mapping
        // policy put there.
        const int w = static_cast<int>(
            static_cast<long long>(procNode[p]) * workers / numNodes);
        workers_[w].procs.push_back(p);
        links_[p].log = streams_[p].get();
        links_[p].events = &workers_[w].events;
        links_[p].syncCost = grantCost_;
    }

    barriers_.resize(barrierParts.size());
    for (std::size_t b = 0; b < barrierParts.size(); ++b)
        barriers_[b].participants = barrierParts[b];
    locks_.resize(numLocks);

    capChunks_ = std::max(1024LL, 4LL * nprocs_);
}

ScoutEngine::~ScoutEngine()
{
    requestStop();
    join();
}

void
ScoutEngine::start(std::vector<std::coroutine_handle<>> handles)
{
    handles_ = std::move(handles);
    for (std::size_t w = 0; w < workers_.size(); ++w)
        workers_[w].thread =
            std::thread([this, w] { workerLoop(static_cast<int>(w)); });
}

void
ScoutEngine::requestStop()
{
    budget_.abort.store(true, std::memory_order_release);
}

void
ScoutEngine::join()
{
    if (joined_)
        return;
    joined_ = true;
    for (Worker& wk : workers_)
        if (wk.thread.joinable())
            wk.thread.join();
}

void
ScoutEngine::rethrowIfFailed()
{
    for (Worker& wk : workers_)
        if (wk.err)
            std::rethrow_exception(wk.err);
    if (!error_.empty())
        throw std::runtime_error(error_);
}

void
ScoutEngine::workerLoop(int w)
{
    Worker& wk = workers_[w];
    for (;;) {
        try {
            runPhase(wk);
            throttleWait();
        } catch (...) {
            wk.err = std::current_exception();
            budget_.abort.store(true, std::memory_order_release);
        }
        sync_.arrive_and_wait();
        if (w == 0)
            coordinate();
        sync_.arrive_and_wait();
        if (stop_)
            break;
    }
}

void
ScoutEngine::runPhase(Worker& wk)
{
    for (ProcId p : wk.procs) {
        if (state_[p] != CpuState::Runnable)
            continue;
        Cpu& c = cpus_[p];
        if (grantAt_[p] != kNever) {
            c.scoutWake(grantAt_[p]);
            grantAt_[p] = kNever;
        }
        if (c.now() >= windowEnd_)
            continue; // ahead of the window; runs when it catches up
        ScoutLink& ln = links_[p];
        ln.parked = false;
        ln.yielded = false;
        c.beginScoutWindow(windowEnd_);
        handles_[p].resume();
        if (handles_[p].done()) {
            state_[p] = CpuState::Done;
            streams_[p]->close();
        } else if (ln.parked) {
            state_[p] = CpuState::Parked;
        }
        // else: quantum yield, stays Runnable for the next window.
    }
}

void
ScoutEngine::throttleWait() const
{
    // Cooperative backpressure, applied only at window boundaries
    // (the scout's quiescent points): when the replay side has fallen
    // far behind, wait for it to drain — unless it is *starving* on
    // some other processor's stream, in which case producing more is
    // the only way forward.
    while (budget_.chunks.load(std::memory_order_relaxed) > capChunks_ &&
           !budget_.starved.load(std::memory_order_acquire) &&
           !budget_.abort.load(std::memory_order_acquire))
        std::this_thread::sleep_for(std::chrono::microseconds(200));
}

void
ScoutEngine::grant(ProcId p, Cycles at, int& grants)
{
    grantAt_[p] = at;
    state_[p] = CpuState::Runnable;
    ++grants;
}

void
ScoutEngine::coordinate()
{
    if (budget_.abort.load(std::memory_order_acquire)) {
        for (ProcId p = 0; p < nprocs_; ++p)
            if (state_[p] != CpuState::Done)
                streams_[p]->close();
        stop_ = true;
        return;
    }
    budget_.starved.store(false, std::memory_order_release);

    // Canonical order: the grant schedule must be a pure function of
    // the programs, not of worker count or host scheduling. Virtual
    // times and issue orders are per-processor deterministic, so this
    // sort key is too.
    scratch_.clear();
    for (Worker& wk : workers_) {
        scratch_.insert(scratch_.end(), wk.events.begin(),
                        wk.events.end());
        wk.events.clear();
    }
    std::sort(scratch_.begin(), scratch_.end(),
              [](const ScoutSyncEvent& a, const ScoutSyncEvent& b) {
                  if (a.vtime != b.vtime)
                      return a.vtime < b.vtime;
                  if (a.proc != b.proc)
                      return a.proc < b.proc;
                  return a.seq < b.seq;
              });

    int grants = 0;
    for (const ScoutSyncEvent& ev : scratch_) {
        switch (ev.kind) {
          case ScoutSyncEvent::Kind::BarrierArrive: {
            ScoutBarrier& b = barriers_[ev.id];
            b.arrivals.emplace_back(ev.vtime, ev.proc);
            if (static_cast<int>(b.arrivals.size()) >= b.participants) {
                Cycles t = 0;
                for (const auto& [at, ap] : b.arrivals)
                    t = std::max(t, at);
                t += grantCost_;
                for (const auto& [at, ap] : b.arrivals)
                    grant(ap, t, grants);
                b.arrivals.clear();
            }
            break;
          }
          case ScoutSyncEvent::Kind::AcquireReq: {
            ScoutLock& l = locks_[ev.id];
            if (!l.held) {
                l.held = true;
                grant(ev.proc, ev.vtime + grantCost_, grants);
            } else {
                l.waiters.emplace_back(ev.vtime, ev.proc);
            }
            break;
          }
          case ScoutSyncEvent::Kind::Release: {
            ScoutLock& l = locks_[ev.id];
            if (l.waiters.empty()) {
                l.held = false;
            } else {
                const auto [wt, wp] = l.waiters.front();
                l.waiters.pop_front();
                grant(wp, std::max(ev.vtime, wt) + grantCost_, grants);
            }
            break;
          }
        }
    }

    int done = 0;
    bool anyRunnable = false;
    Cycles minNow = kNever;
    for (ProcId p = 0; p < nprocs_; ++p) {
        if (state_[p] == CpuState::Done) {
            ++done;
            continue;
        }
        if (state_[p] == CpuState::Runnable) {
            anyRunnable = true;
            const Cycles t = grantAt_[p] != kNever
                                 ? std::max(cpus_[p].now(), grantAt_[p])
                                 : cpus_[p].now();
            minNow = std::min(minNow, t);
        }
    }
    if (done == nprocs_) {
        stop_ = true;
        return;
    }
    if (!anyRunnable && grants == 0) {
        fail("scout deadlock: every live processor is blocked on "
             "synchronization with no pending grant (the program "
             "deadlocks, or a barrier's participant count is wrong)");
        return;
    }
    // Advance the window; jump ahead when every runnable processor has
    // already run past the next boundary (e.g. after a long busy or a
    // far-future grant), so skewed programs do not cost empty rounds.
    windowEnd_ += width_;
    if (minNow != kNever && minNow >= windowEnd_)
        windowEnd_ = minNow + width_;
}

void
ScoutEngine::fail(std::string msg)
{
    error_ = std::move(msg);
    for (ProcId p = 0; p < nprocs_; ++p)
        if (state_[p] != CpuState::Done)
            streams_[p]->close();
    budget_.abort.store(true, std::memory_order_release);
    stop_ = true;
}

} // namespace ccnuma::sim
