#include "sim/protocol.hh"

#include <cstdlib>

namespace ccnuma::sim {

namespace {

// Column indices follow LineState: Invalid=0, Shared=1, Dirty=2,
// Owned=3. Cells for unreachable combinations (e.g. MESI x Owned)
// stay at their zero value {Invalid, None} / {Same, None}; the engine
// never consults them and the litmus tests assert which cells are
// live per protocol.

Protocol
makeMesi()
{
    Protocol p;
    p.kind = ProtocolKind::MESI;
    p.updateBased = false;
    p.ownerForwarding = false;
    // Requester: read miss fills Shared; write miss fills Dirty after
    // invalidating other copies; a write hit on Shared upgrades.
    p.req[kProtoRead][0] = {NextState::Shared, ReqAct::Fill};
    p.req[kProtoRead][1] = {NextState::Same, ReqAct::None};
    p.req[kProtoRead][2] = {NextState::Same, ReqAct::None};
    p.req[kProtoWrite][0] = {NextState::Dirty, ReqAct::Fill};
    p.req[kProtoWrite][1] = {NextState::Dirty, ReqAct::Invalidate};
    p.req[kProtoWrite][2] = {NextState::Same, ReqAct::None};
    // Remote holders: a read of a dirty line downgrades the owner and
    // writes the data back to memory; any remote write invalidates.
    p.rem[kProtoRead][1] = {NextState::Same, RemAct::None};
    p.rem[kProtoRead][2] = {NextState::Shared, RemAct::SupplyWriteback};
    p.rem[kProtoWrite][1] = {NextState::Invalid, RemAct::Invalidate};
    p.rem[kProtoWrite][2] = {NextState::Invalid, RemAct::Invalidate};
    return p;
}

Protocol
makeMoesi()
{
    Protocol p = makeMesi();
    p.kind = ProtocolKind::MOESI;
    p.ownerForwarding = true;
    // Owned is a first-class requester state: reads hit, a write
    // upgrades (invalidating the other sharers).
    p.req[kProtoRead][3] = {NextState::Same, ReqAct::None};
    p.req[kProtoWrite][3] = {NextState::Dirty, ReqAct::Invalidate};
    // A remote read of a dirty line leaves the data with the owner
    // (Dirty -> Owned, Owned -> Owned): no memory writeback, the owner
    // keeps forwarding.
    p.rem[kProtoRead][2] = {NextState::Owned, RemAct::SupplyKeep};
    p.rem[kProtoRead][3] = {NextState::Same, RemAct::SupplyKeep};
    p.rem[kProtoWrite][3] = {NextState::Invalid, RemAct::Invalidate};
    return p;
}

Protocol
makeDragon()
{
    Protocol p;
    p.kind = ProtocolKind::Dragon;
    p.updateBased = true;
    p.ownerForwarding = true;
    // Requester: every write while other copies exist is an update
    // transaction leaving the writer Owned (Sm); with no other copies
    // the line is simply Dirty (M). Reads never change state.
    p.req[kProtoRead][0] = {NextState::Shared, ReqAct::Fill};
    p.req[kProtoRead][1] = {NextState::Same, ReqAct::None};
    p.req[kProtoRead][2] = {NextState::Same, ReqAct::None};
    p.req[kProtoRead][3] = {NextState::Same, ReqAct::None};
    p.req[kProtoWrite][0] = {NextState::OwnedIfSharers, ReqAct::Fill};
    p.req[kProtoWrite][1] = {NextState::OwnedIfSharers, ReqAct::Update};
    p.req[kProtoWrite][2] = {NextState::Same, ReqAct::None};
    p.req[kProtoWrite][3] = {NextState::OwnedIfSharers, ReqAct::Update};
    // Remote holders: reads are served by the owner, which keeps its
    // dirty data; writes update every copy in place, the previous
    // owner dropping to Shared (Sc).
    p.rem[kProtoRead][1] = {NextState::Same, RemAct::None};
    p.rem[kProtoRead][2] = {NextState::Owned, RemAct::SupplyKeep};
    p.rem[kProtoRead][3] = {NextState::Same, RemAct::SupplyKeep};
    p.rem[kProtoWrite][1] = {NextState::Same, RemAct::Update};
    p.rem[kProtoWrite][2] = {NextState::Shared, RemAct::Update};
    p.rem[kProtoWrite][3] = {NextState::Shared, RemAct::Update};
    return p;
}

} // namespace

unsigned
Protocol::reachableStates() const
{
    // Indices follow LineState: 0 Invalid, 1 Shared, 2 Dirty, 3 Owned.
    unsigned mask = 1u << 0; // Invalid is always enterable (evict).
    const auto note = [&mask](NextState n) {
        switch (n) {
          case NextState::Invalid:
            mask |= 1u << 0;
            break;
          case NextState::Shared:
            mask |= 1u << 1;
            break;
          case NextState::Dirty:
            mask |= 1u << 2;
            break;
          case NextState::Owned:
            mask |= 1u << 3;
            break;
          case NextState::Same:
            break;
          case NextState::OwnedIfSharers:
            mask |= (1u << 2) | (1u << 3);
            break;
        }
    };
    forEachReqCell([&](int, int, const ReqCell& c) { note(c.next); });
    forEachRemCell([&](int, int, const RemCell& c) { note(c.next); });
    return mask;
}

const Protocol&
Protocol::mesi()
{
    static const Protocol p = makeMesi();
    return p;
}

const Protocol&
Protocol::moesi()
{
    static const Protocol p = makeMoesi();
    return p;
}

const Protocol&
Protocol::dragon()
{
    static const Protocol p = makeDragon();
    return p;
}

const Protocol&
Protocol::get(ProtocolKind k)
{
    switch (k) {
      case ProtocolKind::MESI:
        return mesi();
      case ProtocolKind::MOESI:
        return moesi();
      case ProtocolKind::Dragon:
        return dragon();
    }
    return mesi();
}

bool
ProtocolConfig::parse(std::string_view s)
{
    if (s == "mesi")
        kind = ProtocolKind::MESI;
    else if (s == "moesi")
        kind = ProtocolKind::MOESI;
    else if (s == "dragon")
        kind = ProtocolKind::Dragon;
    else
        return false;
    return true;
}

std::string
ProtocolConfig::name() const
{
    switch (kind) {
      case ProtocolKind::MESI:
        return "mesi";
      case ProtocolKind::MOESI:
        return "moesi";
      case ProtocolKind::Dragon:
        return "dragon";
    }
    return "mesi";
}

bool
DirectoryConfig::parse(std::string_view s)
{
    if (s == "fullbv") {
        format = DirFormat::FullBitVector;
        param = 0;
        return true;
    }
    DirFormat fmt;
    std::string_view rest;
    if (s.substr(0, 7) == "coarse:") {
        fmt = DirFormat::CoarseVector;
        rest = s.substr(7);
    } else if (s.substr(0, 4) == "ptr:") {
        fmt = DirFormat::LimitedPtr;
        rest = s.substr(4);
    } else {
        return false;
    }
    if (rest.empty() || rest.size() > 5)
        return false;
    int v = 0;
    for (const char c : rest) {
        if (c < '0' || c > '9')
            return false;
        v = v * 10 + (c - '0');
    }
    if (v < 1)
        return false;
    format = fmt;
    param = v;
    return true;
}

std::string
DirectoryConfig::name() const
{
    switch (format) {
      case DirFormat::FullBitVector:
        return "fullbv";
      case DirFormat::CoarseVector:
        return "coarse:" + std::to_string(param);
      case DirFormat::LimitedPtr:
        return "ptr:" + std::to_string(param);
    }
    return "fullbv";
}

} // namespace ccnuma::sim
