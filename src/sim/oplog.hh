/**
 * @file
 * Per-processor operation logs for the parallel scout/replay engine.
 *
 * The scout pass runs the application coroutines on worker threads and
 * records each simulated processor's operation stream (memory ops, busy
 * time, yield points, synchronization) into an OpStream; the replay
 * pass drains the streams through the unmodified serial engine on the
 * calling thread. One stream has exactly one producer (the worker that
 * owns the processor's node) and one consumer (the replay thread), so
 * the queue is a single-producer/single-consumer unbounded chunk list.
 *
 * Backpressure is cooperative rather than blocking: producers never
 * stall inside a push (a scout coroutine must reach its next window
 * boundary to park safely), so the engine accounts outstanding chunks
 * globally and throttles workers only *between* windows. See
 * parallel.hh.
 */

#ifndef CCNUMA_SIM_OPLOG_HH
#define CCNUMA_SIM_OPLOG_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "sim/types.hh"

namespace ccnuma::sim {

/** One recorded processor operation (see Cpu for the semantics). */
enum class OpKind : std::uint8_t {
    Read,       ///< arg = address
    Write,      ///< arg = address
    Busy,       ///< arg = cycles
    Prefetch,   ///< arg = address
    FetchOp,    ///< arg = address
    Rmw,        ///< arg = address
    Checkpoint, ///< quantum yield point (no arg)
    Barrier,    ///< arg = BarrierId::idx
    Acquire,    ///< arg = LockId::idx
    Release,    ///< arg = LockId::idx
};

struct Op {
    OpKind kind = OpKind::Checkpoint;
    std::uint64_t arg = 0;
};

/** Shared accounting the streams use for cooperative backpressure. */
struct OpLogBudget {
    /// Chunks currently allocated and not yet drained, across streams.
    std::atomic<long long> chunks{0};
    /// Set by a starving consumer; workers ignore the cap while set,
    /// which keeps the scout/replay pipeline deadlock-free even when
    /// the buffered ops are all on other processors' streams.
    std::atomic<bool> starved{false};
    /// Set when either side aborts; pop() returns false promptly.
    std::atomic<bool> abort{false};
};

/**
 * Unbounded SPSC queue of Ops in 4096-entry chunks with a per-stream
 * freelist (chunks recycle between producer and consumer, so a steady
 * pipeline allocates a handful of chunks total).
 */
class OpStream
{
  public:
    explicit OpStream(OpLogBudget* budget = nullptr) : budget_(budget)
    {
        head_ = tail_ = newChunk();
    }
    OpStream(const OpStream&) = delete;
    OpStream& operator=(const OpStream&) = delete;
    ~OpStream()
    {
        while (head_) {
            Chunk* n = head_->next.load(std::memory_order_relaxed);
            delete head_;
            head_ = n;
        }
        Chunk* f = free_.load(std::memory_order_relaxed);
        while (f) {
            Chunk* n = f->next.load(std::memory_order_relaxed);
            delete f;
            f = n;
        }
    }

    // ---- producer side (one scout worker) ----
    void
    push(OpKind kind, std::uint64_t arg)
    {
        if (tailUsed_ == Chunk::kCap) {
            Chunk* c = newChunk();
            if (budget_)
                budget_->chunks.fetch_add(1, std::memory_order_relaxed);
            tail_->next.store(c, std::memory_order_release);
            tail_ = c;
            tailUsed_ = 0;
        }
        tail_->ops[tailUsed_] = Op{kind, arg};
        ++tailUsed_;
        tail_->written.store(tailUsed_, std::memory_order_release);
    }

    /// Producer is done (normally or via an error); wakes the consumer.
    void
    close()
    {
        closed_.store(true, std::memory_order_release);
    }
    bool closed() const { return closed_.load(std::memory_order_acquire); }

    // ---- consumer side (the replay thread) ----
    /// Blocking pop; returns false when the stream is closed and
    /// drained, or when the shared budget is aborted.
    bool
    pop(Op& out)
    {
        std::uint32_t spins = 0;
        for (;;) {
            if (readIdx_ < head_->written.load(std::memory_order_acquire)) {
                out = head_->ops[readIdx_++];
                return true;
            }
            if (readIdx_ == Chunk::kCap) {
                if (Chunk* n = head_->next.load(std::memory_order_acquire)) {
                    retire(head_);
                    head_ = n;
                    readIdx_ = 0;
                    continue;
                }
            }
            if (closed_.load(std::memory_order_acquire)) {
                // close() happens-after the producer's final push, so
                // one re-check sees everything that was published.
                if (readIdx_ <
                    head_->written.load(std::memory_order_acquire))
                    continue;
                if (readIdx_ == Chunk::kCap &&
                    head_->next.load(std::memory_order_acquire))
                    continue;
                return false;
            }
            if (budget_ && budget_->abort.load(std::memory_order_acquire))
                return false;
            if (++spins < 1024) {
                continue;
            }
            // Starving: tell the scout side to keep producing even if
            // the global chunk cap is reached, and get off the CPU.
            if (budget_)
                budget_->starved.store(true, std::memory_order_release);
            std::this_thread::sleep_for(std::chrono::microseconds(50));
        }
    }

  private:
    struct Chunk {
        static constexpr std::uint32_t kCap = 4096;
        Op ops[kCap];
        std::atomic<std::uint32_t> written{0};
        std::atomic<Chunk*> next{nullptr};
    };

    Chunk*
    newChunk()
    {
        if (Chunk* c = free_.load(std::memory_order_acquire)) {
            // SPSC freelist: only the producer pops, so a single CAS
            // against the consumer's pushes suffices.
            while (c && !free_.compare_exchange_weak(
                            c, c->next.load(std::memory_order_relaxed),
                            std::memory_order_acq_rel))
                ;
            if (c) {
                c->written.store(0, std::memory_order_relaxed);
                c->next.store(nullptr, std::memory_order_relaxed);
                return c;
            }
        }
        return new Chunk();
    }

    void
    retire(Chunk* c)
    {
        if (budget_)
            budget_->chunks.fetch_sub(1, std::memory_order_relaxed);
        Chunk* head = free_.load(std::memory_order_relaxed);
        do {
            c->next.store(head, std::memory_order_relaxed);
        } while (!free_.compare_exchange_weak(
            head, c, std::memory_order_acq_rel));
    }

    OpLogBudget* budget_;
    // Producer-owned.
    Chunk* tail_;
    std::uint32_t tailUsed_ = 0;
    // Consumer-owned.
    Chunk* head_;
    std::uint32_t readIdx_ = 0;
    // Shared.
    std::atomic<bool> closed_{false};
    std::atomic<Chunk*> free_{nullptr};
};

/**
 * Scout-mode attachment for one Cpu: where to record, where to queue
 * synchronization events, and how to advance the approximate scout
 * clock. The scout clock only buckets synchronization ordering into
 * windows — replay recomputes all real timing — so flat per-op costs
 * are sufficient.
 */
struct ScoutSyncEvent {
    Cycles vtime = 0;
    ProcId proc = kNoProc;
    std::uint64_t seq = 0; ///< per-processor issue order (sort tiebreak)
    enum class Kind : std::uint8_t { BarrierArrive, AcquireReq, Release };
    Kind kind = Kind::BarrierArrive;
    int id = -1; ///< BarrierId / LockId index
};

struct ScoutLink {
    OpStream* log = nullptr;
    /// Worker-local event queue (drained by the window coordinator).
    std::vector<ScoutSyncEvent>* events = nullptr;
    Cycles memCost = 8;  ///< scout-clock cost of a memory op
    Cycles syncCost = 64; ///< scout-clock cost of a sync op
    std::uint64_t seq = 0;
    bool parked = false;  ///< set by Cpu::markBlocked under scout mode
    bool yielded = false; ///< set by Cpu::reschedule under scout mode
};

} // namespace ccnuma::sim

#endif // CCNUMA_SIM_OPLOG_HH
