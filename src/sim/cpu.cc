#include "sim/cpu.hh"

#include "sim/machine.hh"
#include "sim/scheduler.hh"

namespace ccnuma::sim {

void
Cpu::readRange(Addr addr, std::uint64_t bytes)
{
    const Addr line_mask = ~static_cast<Addr>(mem_->config().lineBytes - 1);
    const Addr first = addr & line_mask;
    const Addr last = (addr + (bytes ? bytes - 1 : 0)) & line_mask;
    for (Addr a = first; a <= last; a += mem_->config().lineBytes)
        read(a);
}

void
Cpu::writeRange(Addr addr, std::uint64_t bytes)
{
    const Addr line_mask = ~static_cast<Addr>(mem_->config().lineBytes - 1);
    const Addr first = addr & line_mask;
    const Addr last = (addr + (bytes ? bytes - 1 : 0)) & line_mask;
    for (Addr a = first; a <= last; a += mem_->config().lineBytes)
        write(a);
}

Cpu::SyncAwait
Cpu::barrier(BarrierId b)
{
    const bool proceed = machine_->barrierArrive(b, *this);
    return SyncAwait{*this, !proceed};
}

Cpu::SyncAwait
Cpu::acquire(LockId l)
{
    const bool granted = machine_->lockAcquire(l, *this);
    return SyncAwait{*this, !granted};
}

void
Cpu::release(LockId l)
{
    machine_->lockRelease(l, *this);
}

void
Cpu::reschedule()
{
    sched_->ready(id_, now_);
}

void
Cpu::markBlocked()
{
    sched_->block(id_);
    if (nestedDepth_ > 0)
        nestedBlocked_ = true;
}

} // namespace ccnuma::sim
