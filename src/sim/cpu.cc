#include "sim/cpu.hh"

#include "sim/machine.hh"
#include "sim/scheduler.hh"

namespace ccnuma::sim {

void
Cpu::readRange(Addr addr, std::uint64_t bytes)
{
    const Addr line_mask = ~static_cast<Addr>(mem_->config().lineBytes - 1);
    const Addr first = addr & line_mask;
    const Addr last = (addr + (bytes ? bytes - 1 : 0)) & line_mask;
    for (Addr a = first; a <= last; a += mem_->config().lineBytes)
        read(a);
}

void
Cpu::writeRange(Addr addr, std::uint64_t bytes)
{
    const Addr line_mask = ~static_cast<Addr>(mem_->config().lineBytes - 1);
    const Addr first = addr & line_mask;
    const Addr last = (addr + (bytes ? bytes - 1 : 0)) & line_mask;
    for (Addr a = first; a <= last; a += mem_->config().lineBytes)
        write(a);
}

void
Cpu::scoutSync(OpKind op, ScoutSyncEvent::Kind k, int id)
{
    scout_->log->push(op, static_cast<std::uint64_t>(id));
    scout_->events->push_back(
        ScoutSyncEvent{now_, id_, scout_->seq++, k, id});
    now_ += scout_->syncCost;
}

Cpu::SyncAwait
Cpu::barrier(BarrierId b)
{
    if (scout_) [[unlikely]] {
        // Scout pass: every sync parks; the window coordinator grants
        // arrivals in canonical order at the next boundary. Replay
        // re-runs the real barrier protocol with exact timing.
        scoutSync(OpKind::Barrier, ScoutSyncEvent::Kind::BarrierArrive,
                  b.idx);
        return SyncAwait{*this, true};
    }
    if (rec_) [[unlikely]]
        rec_->onOp(id_, OpKind::Barrier,
                   static_cast<std::uint64_t>(b.idx));
    const bool proceed = machine_->barrierArrive(b, *this);
    return SyncAwait{*this, !proceed};
}

Cpu::SyncAwait
Cpu::acquire(LockId l)
{
    if (scout_) [[unlikely]] {
        scoutSync(OpKind::Acquire, ScoutSyncEvent::Kind::AcquireReq,
                  l.idx);
        return SyncAwait{*this, true};
    }
    if (rec_) [[unlikely]]
        rec_->onOp(id_, OpKind::Acquire,
                   static_cast<std::uint64_t>(l.idx));
    const bool granted = machine_->lockAcquire(l, *this);
    return SyncAwait{*this, !granted};
}

void
Cpu::release(LockId l)
{
    if (scout_) [[unlikely]] {
        scoutSync(OpKind::Release, ScoutSyncEvent::Kind::Release, l.idx);
        return;
    }
    if (rec_) [[unlikely]]
        rec_->onOp(id_, OpKind::Release,
                   static_cast<std::uint64_t>(l.idx));
    machine_->lockRelease(l, *this);
}

void
Cpu::reschedule()
{
    if (scout_) [[unlikely]] {
        scout_->yielded = true;
        return;
    }
    sched_->ready(id_, now_);
}

void
Cpu::markBlocked()
{
    if (scout_) [[unlikely]] {
        scout_->parked = true;
        if (nestedDepth_ > 0)
            nestedBlocked_ = true;
        return;
    }
    sched_->block(id_);
    if (nestedDepth_ > 0)
        nestedBlocked_ = true;
}

} // namespace ccnuma::sim
