/**
 * @file
 * Synchronization-and-memory observation hooks for execution analysis.
 *
 * The `ccnuma::check` harness sees the protocol's data movement through
 * a CommitObserver (sim/commit.hh); that stream is line-granular and
 * deliberately blind to the synchronization layer, whose pure latency
 * models never move cached data. Race analysis (`ccnuma::analyze`)
 * needs the complementary view: which *byte* each committed access
 * touched, and which synchronization operations order those accesses.
 * A SyncObserver attached to the Machine receives exactly that.
 *
 * Ordering guarantees (relative to commit order):
 *  - onMemOp fires at the same points in MemSys::access where the
 *    CommitObserver load/store hooks fire, so the two streams are
 *    mutually consistent: the i-th onMemOp and the i-th demand-access
 *    commit describe the same transaction. Transactions that prefetches
 *    run internally are *excluded* here (their data is not consumed by
 *    the program, so they cannot race), while the CommitObserver does
 *    see them.
 *  - onLockAcquired(p, l) fires only when the lock is actually granted
 *    to `p` — at the acquire itself when the lock was free, or during
 *    the releaser's onLockReleased handoff otherwise. A lock's grant
 *    callback is therefore always delivered after the callback for the
 *    release it synchronizes with, and after every onMemOp the previous
 *    holder issued inside its critical section.
 *  - onBarrierArrive fires per participant as it arrives (after all of
 *    its pre-barrier onMemOps); the matching onBarrierDepart callbacks
 *    for the whole episode fire together when the last participant
 *    arrives, before any participant's post-barrier onMemOp.
 *  - onTaskSteal fires while the thief holds the victim queue's lock,
 *    i.e. between the thief's onLockAcquired and onLockReleased for
 *    that lock.
 *
 * When no observer is attached the cost is one null pointer test per
 * hook site.
 */

#ifndef CCNUMA_SIM_SYNC_OBSERVER_HH
#define CCNUMA_SIM_SYNC_OBSERVER_HH

#include <cstdint>

#include "sim/types.hh"

namespace ccnuma::sim {

/** What kind of demand access an onMemOp callback describes. */
enum class MemOp : std::uint8_t {
    Load,  ///< Plain load (Cpu::read / readRange).
    Store, ///< Plain store (Cpu::write / writeRange).
    Rmw,   ///< LL-SC read-modify-write (atomic; races with nothing).
};

/**
 * Observer of the byte-granular access stream and the synchronization
 * events that order it. All callbacks are delivered in the machine's
 * global commit order (see the file comment).
 */
class SyncObserver
{
  public:
    virtual ~SyncObserver() = default;

    /// A demand access by `p` to byte address `addr` committed.
    virtual void onMemOp(ProcId p, Addr addr, MemOp kind) = 0;
    /// Lock `lock` was granted to `p`.
    virtual void onLockAcquired(ProcId p, int lock) = 0;
    /// `p` released lock `lock`.
    virtual void onLockReleased(ProcId p, int lock) = 0;
    /// `p` arrived at barrier `barrier`'s episode `episode` (episodes
    /// count completed releases of that barrier, starting at 0).
    virtual void onBarrierArrive(ProcId p, int barrier,
                                 std::uint64_t episode) = 0;
    /// Barrier `barrier`'s episode `episode` released `p`.
    virtual void onBarrierDepart(ProcId p, int barrier,
                                 std::uint64_t episode) = 0;
    /// `thief` stole work from `victim`'s task queue (delivered inside
    /// the thief's critical section on the victim queue's lock).
    virtual void onTaskSteal(ProcId thief, ProcId victim) = 0;
};

} // namespace ccnuma::sim

#endif // CCNUMA_SIM_SYNC_OBSERVER_HH
