/**
 * @file
 * Fundamental types shared across the CC-NUMA simulator.
 */

#ifndef CCNUMA_SIM_TYPES_HH
#define CCNUMA_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace ccnuma::sim {

/** Simulated byte address in the shared address space. */
using Addr = std::uint64_t;

/** Simulated time, in processor clock cycles. */
using Cycles = std::uint64_t;

/** Processor, node and router identifiers. */
using ProcId = int;
using NodeId = int;
using RouterId = int;

/** Sentinel for "no processor". */
inline constexpr ProcId kNoProc = -1;

/** Sentinel for "no node". */
inline constexpr NodeId kNoNode = -1;

/** Maximum number of processors the directory sharer bitmap supports. */
inline constexpr int kMaxProcs = 256;

/** An address rounded down to its cache-line base. */
using LineAddr = std::uint64_t;

/** An address divided by the page size. */
using PageNum = std::uint64_t;

/** Cycle value used to mean "never" / "not pending". */
inline constexpr Cycles kNever = std::numeric_limits<Cycles>::max();

} // namespace ccnuma::sim

#endif // CCNUMA_SIM_TYPES_HH
