/**
 * @file
 * The per-processor programming interface seen by application skeletons.
 *
 * Memory/busy operations are plain method calls (they advance this
 * processor's clock and update contention state); `checkpoint()` is an
 * awaitable yield point, and `barrier()`/`acquire()` are awaitable
 * blocking synchronization operations.
 */

#ifndef CCNUMA_SIM_CPU_HH
#define CCNUMA_SIM_CPU_HH

#include <coroutine>

#include "obs/trace.hh"
#include "sim/memsys.hh"
#include "sim/oplog.hh"
#include "sim/recorder.hh"
#include "sim/stats.hh"
#include "sim/sync.hh"
#include "sim/types.hh"

namespace ccnuma::sim {

class Machine;
class Scheduler;

/** One simulated processor's execution context. */
class Cpu
{
  public:
    Cpu(Machine& m, MemSys& mem, Scheduler& sched, ProcStats& st,
        ProcId id, int nprocs)
        : machine_(&m), mem_(&mem), sched_(&sched), stats_(&st), id_(id),
          nprocs_(nprocs)
    {
    }

    // ---- identity ----
    ProcId id() const { return id_; }
    int nprocs() const { return nprocs_; }
    NodeId node() const { return mem_->nodeOfProcess(id_); }
    Cycles now() const { return now_; }

    // ---- non-suspending operations ----
    /// Compute for `c` cycles.
    void
    busy(Cycles c)
    {
        if (scout_) [[unlikely]] {
            scoutOp(OpKind::Busy, c, c);
            return;
        }
        if (rec_) [[unlikely]]
            rec_->onOp(id_, OpKind::Busy, c);
        if (obs::kTracingCompiled && trace_)
            trace_->addBusy(id_, now_, c);
        now_ += c;
        stats_->t.busy += c;
    }
    /// Load from `addr`.
    void
    read(Addr addr)
    {
        if (scout_) [[unlikely]] {
            scoutOp(OpKind::Read, addr, scout_->memCost);
            return;
        }
        if (rec_) [[unlikely]]
            rec_->onOp(id_, OpKind::Read, addr);
        const Cycles l = mem_->access(id_, now_, addr, false, *stats_);
        if (obs::kTracingCompiled && trace_)
            trace_->addMemStall(id_, now_, l);
        now_ += l;
        stats_->t.memStall += l;
    }
    /// Store to `addr`.
    void
    write(Addr addr)
    {
        if (scout_) [[unlikely]] {
            scoutOp(OpKind::Write, addr, scout_->memCost);
            return;
        }
        if (rec_) [[unlikely]]
            rec_->onOp(id_, OpKind::Write, addr);
        const Cycles l = mem_->access(id_, now_, addr, true, *stats_);
        if (obs::kTracingCompiled && trace_)
            trace_->addMemStall(id_, now_, l);
        now_ += l;
        stats_->t.memStall += l;
    }
    /// Software prefetch of the line containing `addr` (non-binding).
    void
    prefetch(Addr addr)
    {
        if (scout_) [[unlikely]] {
            scoutOp(OpKind::Prefetch, addr, 1);
            return;
        }
        if (rec_) [[unlikely]]
            rec_->onOp(id_, OpKind::Prefetch, addr);
        mem_->prefetch(id_, now_, addr, *stats_);
        if (obs::kTracingCompiled && trace_)
            trace_->addBusy(id_, now_, 1);
        now_ += 1; // issue slot
        stats_->t.busy += 1;
    }
    /// Touch every line in [addr, addr+bytes) with loads.
    void readRange(Addr addr, std::uint64_t bytes);
    /// Touch every line in [addr, addr+bytes) with stores.
    void writeRange(Addr addr, std::uint64_t bytes);
    /// Uncached at-memory fetch&op (Section 6.3).
    void
    fetchOp(Addr addr)
    {
        if (scout_) [[unlikely]] {
            scoutOp(OpKind::FetchOp, addr, scout_->memCost);
            return;
        }
        if (rec_) [[unlikely]]
            rec_->onOp(id_, OpKind::FetchOp, addr);
        const Cycles l = mem_->fetchOp(id_, now_, addr, *stats_);
        if (obs::kTracingCompiled && trace_)
            trace_->addMemStall(id_, now_, l);
        now_ += l;
        stats_->t.memStall += l;
    }
    /// LL-SC read-modify-write on a cached line (acquires ownership).
    void
    rmw(Addr addr)
    {
        if (scout_) [[unlikely]] {
            scoutOp(OpKind::Rmw, addr, scout_->memCost);
            return;
        }
        if (rec_) [[unlikely]]
            rec_->onOp(id_, OpKind::Rmw, addr);
        const Cycles l = mem_->llscRmw(id_, now_, addr, *stats_);
        if (obs::kTracingCompiled && trace_)
            trace_->addMemStall(id_, now_, l);
        now_ += l;
        stats_->t.memStall += l;
    }

    // ---- awaitable yield point ----
    struct Checkpoint {
        Cpu& cpu;
        bool await_ready() const noexcept { return !cpu.quantumUp(); }
        void
        await_suspend(std::coroutine_handle<>) const noexcept
        {
            cpu.reschedule();
        }
        void await_resume() const noexcept {}
    };
    /// Yield to the scheduler if this processor ran past its quantum.
    /// Call this in every outer loop iteration of application code.
    Checkpoint
    checkpoint()
    {
        if (scout_) [[unlikely]]
            scout_->log->push(OpKind::Checkpoint, 0);
        if (rec_) [[unlikely]]
            rec_->onOp(id_, OpKind::Checkpoint, 0);
        return Checkpoint{*this};
    }

    /**
     * Yield point for *nested* coroutines (phases written as their own
     * Task, driven by the top-level program with CCNUMA_RUN_NESTED).
     * Suspends the nested coroutine without touching the scheduler; the
     * driving loop in the top-level coroutine forwards the yield via a
     * regular checkpoint().
     */
    struct NestedCheckpoint {
        Cpu& cpu;
        bool await_ready() const noexcept { return !cpu.quantumUp(); }
        void await_suspend(std::coroutine_handle<>) const noexcept {}
        void await_resume() const noexcept {}
    };
    NestedCheckpoint
    nestedCheckpoint()
    {
        // Scout mode records every *potential* yield point. A nested
        // checkpoint is semantically one top-level checkpoint (when it
        // fires, the CCNUMA_RUN_NESTED driver's follow-up checkpoint()
        // suspends with the same quantum state), so it must be in the
        // replay stream; the driver's own checkpoint() records a
        // second consecutive Checkpoint op, which replays as a no-op
        // (a fresh quantum after resume never re-fires immediately).
        if (scout_) [[unlikely]]
            scout_->log->push(OpKind::Checkpoint, 0);
        if (rec_) [[unlikely]]
            rec_->onOp(id_, OpKind::Checkpoint, 0);
        return {*this};
    }

    // ---- nested blocking-sync protocol (used by CCNUMA_RUN_NESTED) ----
    /// Awaitable that suspends the top-level coroutine without
    /// rescheduling: used by the nested driver when the nested phase
    /// blocked on synchronization (the grant will ready() us).
    struct PlainSuspend {
        bool await_ready() const noexcept { return false; }
        void await_suspend(std::coroutine_handle<>) const noexcept {}
        void await_resume() const noexcept {}
    };
    PlainSuspend suspendPlain() { return {}; }
    void enterNested() { ++nestedDepth_; }
    void exitNested() { --nestedDepth_; }
    /// True (and clears the flag) if the last nested suspension was a
    /// synchronization block rather than a quantum yield.
    bool
    consumeNestedBlock()
    {
        const bool b = nestedBlocked_;
        nestedBlocked_ = false;
        return b;
    }

    // ---- awaitable blocking synchronization ----
    struct SyncAwait {
        Cpu& cpu;
        bool blocked;
        bool
        await_ready() const noexcept
        {
            return !blocked && !cpu.quantumUp();
        }
        void
        await_suspend(std::coroutine_handle<>) const noexcept
        {
            if (blocked)
                cpu.markBlocked();
            else
                cpu.reschedule();
        }
        void await_resume() const noexcept {}
    };
    /// Arrive at a barrier; resumes when all participants have arrived.
    SyncAwait barrier(BarrierId b);
    /// Acquire a ticket lock; resumes when the lock is granted.
    SyncAwait acquire(LockId l);
    /// Release a ticket lock (never blocks).
    void release(LockId l);

    // ---- accounting hooks used by Machine's sync layer ----
    ProcStats& stats() { return *stats_; }
    const ProcStats& stats() const { return *stats_; }
    void setNow(Cycles t) { now_ = t; }
    void attachTrace(obs::Trace* t) { trace_ = t; }
    /// Mirror every operation this processor issues into `r` (trace
    /// recording; see sim/recorder.hh). Serial engine only.
    void attachRecorder(OpRecorder* r) { rec_ = r; }
    void
    chargeSyncOp(Cycles c)
    {
        if (obs::kTracingCompiled && trace_)
            trace_->addSyncOp(id_, now_, c);
        now_ += c;
        stats_->t.syncOp += c;
    }
    /// What a synchronization wait was spent on (partitions syncWait
    /// into ProcTimes::lockWait / ProcTimes::barrierWait).
    enum class WaitKind : std::uint8_t { Lock, Barrier };
    void
    chargeSyncWait(Cycles c, WaitKind kind)
    {
        if (obs::kTracingCompiled && trace_)
            trace_->addSyncWait(id_, now_, c, kind == WaitKind::Lock);
        now_ += c;
        stats_->t.syncWait += c;
        if (kind == WaitKind::Lock)
            stats_->t.lockWait += c;
        else
            stats_->t.barrierWait += c;
    }
    /// Wake a blocked processor at absolute time `t`, charging the gap
    /// since it blocked as synchronization wait time.
    void
    wakeAt(Cycles t, WaitKind kind)
    {
        if (t > now_)
            chargeSyncWait(t - now_, kind);
    }

    void beginQuantum(Cycles quantum) { quantumEnd_ = now_ + quantum; }
    bool quantumUp() const { return now_ >= quantumEnd_; }

    // ---- scout-mode hooks (the parallel engine's recording pass) ----
    /// Enter scout mode: operations are recorded into `s->log` and
    /// advance an approximate scout clock instead of touching MemSys,
    /// the scheduler, or the trace. See sim/parallel.hh.
    void attachScout(ScoutLink* s) { scout_ = s; }
    bool scouting() const { return scout_ != nullptr; }
    /// Run until the absolute window end (scout workers' quantum).
    void beginScoutWindow(Cycles end) { quantumEnd_ = end; }
    /// Apply a window-boundary synchronization grant.
    void
    scoutWake(Cycles t)
    {
        if (t > now_)
            now_ = t;
    }

    Machine& machine() { return *machine_; }
    MemSys& mem() { return *mem_; }

  private:
    void reschedule();  ///< Re-queue self at `now_` (yield).
    void markBlocked(); ///< Tell the scheduler we are blocked.
    void
    scoutOp(OpKind k, std::uint64_t arg, Cycles cost)
    {
        scout_->log->push(k, arg);
        now_ += cost;
    }
    /// Record a sync op and queue its event for the window coordinator.
    void scoutSync(OpKind op, ScoutSyncEvent::Kind k, int id);

    Machine* machine_;
    MemSys* mem_;
    Scheduler* sched_;
    ProcStats* stats_;
    obs::Trace* trace_ = nullptr;
    ScoutLink* scout_ = nullptr;
    OpRecorder* rec_ = nullptr;
    ProcId id_;
    int nprocs_;
    Cycles now_ = 0;
    Cycles quantumEnd_ = 0;
    int nestedDepth_ = 0;
    bool nestedBlocked_ = false;
};

} // namespace ccnuma::sim

#endif // CCNUMA_SIM_CPU_HH
