/**
 * @file
 * Simulated page table: page homing policies (manual/explicit,
 * first-touch, round-robin) and the dynamic page-migration engine that
 * models the Origin2000's hardware migration counters (Section 6.2).
 */

#ifndef CCNUMA_SIM_PAGETABLE_HH
#define CCNUMA_SIM_PAGETABLE_HH

#include <cstdint>
#include <vector>

#include "sim/config.hh"
#include "sim/types.hh"

namespace ccnuma::sim {

/**
 * Per-page state.
 *
 * Migration uses a heavy-hitter counter pair (candidate node + score) as
 * a compact stand-in for the Origin's per-page, per-node access counters:
 * the score rises when the candidate node accesses the page remotely and
 * decays on home-node accesses, triggering migration past a threshold.
 */
struct PageInfo {
    NodeId home = kNoNode;
    NodeId candidate = kNoNode;
    std::uint32_t score = 0;
    std::uint32_t migrations = 0;
};

/**
 * Page table for the whole simulated address space.
 *
 * The address space is a flat arena carved out by SharedRegion; pages are
 * materialized lazily on first reference.
 */
class PageTable
{
  public:
    PageTable(const MachineConfig& cfg, int num_nodes);

    /// Home node of the page containing `addr`, homing it on first touch.
    /// `toucher` is the node performing the access. Inline: this sits on
    /// the miss path of every access (with noteAccess below), where the
    /// call and the by-division page computation it replaced were
    /// measurable.
    NodeId
    home(Addr addr, NodeId toucher)
    {
        PageInfo& pi = info(addr);
        if (pi.home != kNoNode) [[likely]]
            return pi.home;
        return homeSlow(pi, toucher);
    }

    /// Explicitly home `bytes` starting at `addr` on `node` (the paper's
    /// "manual placement"). Overrides any policy for those pages.
    void place(Addr addr, std::uint64_t bytes, NodeId node);

    /// Distribute `bytes` from `addr` in contiguous per-node blocks, the
    /// canonical manual distribution for block-partitioned arrays.
    void placeBlocked(Addr addr, std::uint64_t bytes,
                      const std::vector<NodeId>& order);

    /// Record an access for the migration policy. Returns true when the
    /// page just migrated (caller charges MachineConfig::migrationCycles).
    bool
    noteAccess(Addr addr, NodeId accessor)
    {
        if (!migration_) [[likely]]
            return false;
        return noteAccessSlow(addr, accessor);
    }

    std::uint64_t pageOf(Addr addr) const { return addr >> pageShift_; }
    std::uint64_t totalMigrations() const { return totalMigrations_; }

    /// Number of pages currently homed at each node (placed pages only).
    std::vector<std::uint64_t> pagesPerNode() const;

  private:
    PageInfo&
    info(Addr addr)
    {
        const std::uint64_t pn = addr >> pageShift_;
        if (pn >= pages_.size()) [[unlikely]]
            pages_.resize(pn + 1);
        return pages_[pn];
    }
    NodeId homeSlow(PageInfo& pi, NodeId toucher);
    bool noteAccessSlow(Addr addr, NodeId accessor);

    const std::uint32_t pageBytes_;
    const int pageShift_;
    const Placement placement_;
    const bool migration_;
    const std::uint32_t migrationThreshold_;
    const int numNodes_;
    std::vector<PageInfo> pages_;
    std::uint64_t rrNext_ = 0;
    std::uint64_t totalMigrations_ = 0;
};

} // namespace ccnuma::sim

#endif // CCNUMA_SIM_PAGETABLE_HH
