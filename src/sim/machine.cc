#include "sim/machine.hh"

#include <algorithm>
#include <bit>
#include <cassert>
#include <stdexcept>
#include <thread>

#include "sim/parallel.hh"

namespace ccnuma::sim {

Machine::Machine(const MachineConfig& cfg)
    : cfg_(cfg.resolved()), topo_(cfg_), mem_(cfg_, topo_)
{
    const std::string err = cfg_.validate();
    if (!err.empty())
        throw std::invalid_argument("bad MachineConfig: " + err);
    sched_.setQuantum(cfg_.quantum);
    sched_.setLegacyQueue(cfg_.check.legacySchedulerQueue);
}

Addr
Machine::alloc(std::uint64_t bytes)
{
    if (scoutActive_)
        throw std::logic_error(
            "Machine::alloc during a parallel run: mid-run allocation "
            "makes the operation stream timing-dependent; run this "
            "program with simJobs=1 (or leave the app unflagged in the "
            "registry so core::runApp falls back to serial)");
    if (rec_ && !recMuted_)
        rec_->onAlloc(bytes);
    const Addr a = nextAddr_;
    const std::uint64_t page = cfg_.pageBytes;
    nextAddr_ += (bytes + page - 1) / page * page;
    // Presize the directory shards for the growing footprint, saving
    // the FlatHashMap rehash churn the roadmap measured at ~6% of
    // directory time on big runs (MemSys skips small footprints,
    // where eager reservation measures slower than natural growth).
    // Allocation-only; simulated metrics unchanged.
    mem_.reserveDirectory(nextAddr_);
    return a;
}

Addr
Machine::allocLine()
{
    // Sync lines get a page each so placement of one does not drag others
    // along; pages are cheap in a simulated address space.
    return alloc(cfg_.lineBytes);
}

void
Machine::placeAcrossProcs(Addr addr, std::uint64_t bytes)
{
    if (rec_)
        rec_->onPlaceAcross(addr, bytes);
    std::vector<NodeId> order(cfg_.numProcs);
    for (int p = 0; p < cfg_.numProcs; ++p)
        order[p] = topo_.nodeOfProcess(p);
    mem_.placeBlocked(addr, bytes, order);
}

BarrierId
Machine::barrierCreate(int participants)
{
    BarrierState bs;
    bs.participants = participants < 0 ? cfg_.numProcs : participants;
    if (rec_)
        rec_->onBarrierCreate(bs.participants);
    recMuted_ = true;
    bs.line = allocLine();
    recMuted_ = false;
    barriers_.push_back(bs);
    return BarrierId{static_cast<int>(barriers_.size()) - 1};
}

LockId
Machine::lockCreate()
{
    if (rec_)
        rec_->onLockCreate();
    recMuted_ = true;
    LockState ls;
    ls.line = allocLine();
    recMuted_ = false;
    locks_.push_back(ls);
    return LockId{static_cast<int>(locks_.size()) - 1};
}

RunResult
Machine::run(const Program& program)
{
    if (ran_)
        throw std::logic_error(
            "Machine::run: a Machine runs one program; construct a "
            "fresh Machine per run (scheduler and protocol state are "
            "not reset)");
    ran_ = true;
    const int jobs = resolveSimJobs();
    // Recording is a serial-engine feature: the scout pass has its own
    // op-stream machinery and would bypass the recorder taps entirely.
    if (jobs > 1 && !rec_ && !cfg_.check.serialEngine &&
        cfg_.numNodes() >= 2 && cfg_.numProcs >= 2)
        return runParallel(program, jobs - 1);
    return runSerial(program);
}

int
Machine::resolveSimJobs() const
{
    int j = cfg_.simJobs;
    if (j == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        j = hw ? static_cast<int>(hw) : 1;
    }
    return j;
}

void
Machine::prepareEngine(std::vector<Cpu>& into)
{
    statsView_.assign(cfg_.numProcs, ProcStats{});
    mem_.attachStats(&statsView_);
    if (obs::kTracingCompiled && cfg_.trace.any()) {
        std::vector<NodeId> proc_node(cfg_.numProcs);
        for (int p = 0; p < cfg_.numProcs; ++p)
            proc_node[p] = mem_.nodeOfProcess(p);
        trace_ = std::make_shared<obs::Trace>(
            cfg_.trace, cfg_.numProcs, cfg_.lineBytes, cfg_.pageBytes,
            cfg_.nsPerCycle(), std::move(proc_node));
        mem_.attachTrace(trace_.get());
    }
    into.clear();
    into.reserve(cfg_.numProcs);
    for (int p = 0; p < cfg_.numProcs; ++p) {
        into.emplace_back(*this, mem_, sched_, statsView_[p], p,
                          cfg_.numProcs);
        into.back().attachTrace(trace_.get());
        into.back().attachRecorder(rec_);
    }
    runCpus_ = &into;
    sched_.attach(&into);
}

RunResult
Machine::runSerial(const Program& program)
{
    prepareEngine(cpus_);
    tasks_.clear();
    tasks_.reserve(cfg_.numProcs);
    for (int p = 0; p < cfg_.numProcs; ++p) {
        tasks_.push_back(program(cpus_[p]));
        sched_.spawn(p, tasks_[p].handle());
    }
    sched_.run();
    for (const Task& t : tasks_)
        t.rethrowIfFailed();

    RunResult r;
    r.procs = statsView_;
    for (const Cpu& c : cpus_)
        r.time = std::max(r.time, c.now());
    r.pageMigrations = mem_.pageTable().totalMigrations();
    r.trace = trace_;
    return r;
}

namespace {

/// The replay driver: one per processor, fed by the scout's recorded
/// stream, executing it against the real Cpu exactly as the serial
/// engine would have executed the application coroutine.
Task
replayProgram(Cpu& cpu, OpStream& in)
{
    Op op;
    while (in.pop(op)) {
        switch (op.kind) {
          case OpKind::Read:
            cpu.read(op.arg);
            break;
          case OpKind::Write:
            cpu.write(op.arg);
            break;
          case OpKind::Busy:
            cpu.busy(op.arg);
            break;
          case OpKind::Prefetch:
            cpu.prefetch(op.arg);
            break;
          case OpKind::FetchOp:
            cpu.fetchOp(op.arg);
            break;
          case OpKind::Rmw:
            cpu.rmw(op.arg);
            break;
          case OpKind::Checkpoint:
            co_await cpu.checkpoint();
            break;
          case OpKind::Barrier:
            co_await cpu.barrier(BarrierId{static_cast<int>(op.arg)});
            break;
          case OpKind::Acquire:
            co_await cpu.acquire(LockId{static_cast<int>(op.arg)});
            break;
          case OpKind::Release:
            cpu.release(LockId{static_cast<int>(op.arg)});
            break;
        }
    }
    co_return;
}

} // namespace

RunResult
Machine::runParallel(const Program& program, int scoutWorkers)
{
    // Real engine state: the replay phase *is* the serial engine,
    // driven over recorded streams instead of application coroutines.
    prepareEngine(replayCpus_);

    // Scout state: the application coroutines run against these Cpus
    // in recording mode on the worker threads. Their stats are
    // scratch; every reported metric comes from the replay side.
    scoutStats_.assign(cfg_.numProcs, ProcStats{});
    cpus_.clear();
    cpus_.reserve(cfg_.numProcs);
    for (int p = 0; p < cfg_.numProcs; ++p)
        cpus_.emplace_back(*this, mem_, sched_, scoutStats_[p], p,
                           cfg_.numProcs);

    std::vector<NodeId> proc_node(cfg_.numProcs);
    for (int p = 0; p < cfg_.numProcs; ++p)
        proc_node[p] = topo_.nodeOfProcess(p);
    std::vector<int> parts;
    parts.reserve(barriers_.size());
    for (const BarrierState& bs : barriers_)
        parts.push_back(bs.participants);
    const Cycles width =
        cfg_.simWindowCycles > 0
            ? cfg_.simWindowCycles
            : std::max(topo_.minCrossNodeLatencyCycles(),
                       8 * cfg_.quantum);

    ScoutEngine eng(cpus_, std::move(proc_node), std::move(parts),
                    static_cast<int>(locks_.size()), width,
                    scoutWorkers);
    for (int p = 0; p < cfg_.numProcs; ++p)
        cpus_[p].attachScout(&eng.link(p));

    tasks_.clear();
    tasks_.reserve(cfg_.numProcs);
    std::vector<std::coroutine_handle<>> handles;
    handles.reserve(cfg_.numProcs);
    for (int p = 0; p < cfg_.numProcs; ++p) {
        tasks_.push_back(program(cpus_[p]));
        handles.push_back(tasks_[p].handle());
    }

    scoutActive_ = true;
    eng.start(std::move(handles));

    std::exception_ptr replay_err;
    try {
        replayTasks_.clear();
        replayTasks_.reserve(cfg_.numProcs);
        for (int p = 0; p < cfg_.numProcs; ++p) {
            replayTasks_.push_back(
                replayProgram(replayCpus_[p], eng.stream(p)));
            sched_.spawn(p, replayTasks_[p].handle());
        }
        sched_.run();
        for (const Task& t : replayTasks_)
            t.rethrowIfFailed();
    } catch (...) {
        replay_err = std::current_exception();
        eng.requestStop();
    }
    eng.join();
    scoutActive_ = false;

    // Error precedence: an application exception (captured in the
    // scout tasks) explains everything downstream; then a scout
    // deadlock/infrastructure failure; a replay failure is last — it
    // is usually a consequence of the former two (closed streams make
    // the replay's scheduler see a sync deadlock).
    for (const Task& t : tasks_)
        t.rethrowIfFailed();
    eng.rethrowIfFailed();
    if (replay_err)
        std::rethrow_exception(replay_err);

    RunResult r;
    r.procs = statsView_;
    for (const Cpu& c : replayCpus_)
        r.time = std::max(r.time, c.now());
    r.pageMigrations = mem_.pageTable().totalMigrations();
    r.trace = trace_;
    return r;
}

Cycles
Machine::syncRmwCost(Cpu& cpu, Addr line, ProcId& last_holder)
{
    // Pure-latency cost model: synchronization variables do not disturb
    // the global cache/directory/contention state. Serialization among
    // contenders is modelled episode-exactly by the callers, which makes
    // the accounting robust to the scheduler's bounded time disorder.
    const NodeId me = mem_.nodeOfProcess(cpu.id());
    const NodeId home = mem_.syncHomeOf(line);
    Cycles c;
    if (cfg_.syncKind == SyncKind::FetchOp) {
        c = mem_.pureFetchOp(me, home);
    } else if (last_holder == cpu.id()) {
        c = cfg_.l2HitCycles + 4; // line still in our cache
    } else if (last_holder == kNoProc) {
        c = mem_.pureFetch(me, home) + 4;
    } else {
        // The line bounces dirty from the previous LL-SC holder.
        c = mem_.pureDirty(me, home, mem_.nodeOfProcess(last_holder)) + 4;
    }
    if (cfg_.syncKind == SyncKind::LLSC)
        last_holder = cpu.id();
    return c;
}

bool
Machine::barrierArrive(BarrierId b, Cpu& cpu)
{
    BarrierState& bs = barriers_.at(b.idx);
    const int rounds =
        std::bit_width(static_cast<unsigned>(
            bs.participants > 1 ? bs.participants - 1 : 0));

    // Arrival cost.
    Cycles op = 0;
    if (cfg_.barrierAlg == BarrierAlg::Centralized || rounds == 0) {
        op = syncRmwCost(cpu, bs.line, bs.lastHolder);
    } else {
        // Tournament: one exchange with a partner per round; traffic is
        // spread over distinct lines, so no single line bounces.
        for (int rd = 0; rd < rounds; ++rd) {
            const ProcId partner =
                (cpu.id() ^ (1 << rd)) % cfg_.numProcs;
            op += mem_.netRoundTrip(cpu.id(), partner) / 2 +
                  cfg_.l2HitCycles;
        }
    }
    cpu.chargeSyncOp(op);
    if (syncObs_)
        syncObs_->onBarrierArrive(cpu.id(), b.idx, bs.episode);

    bs.arrivals.emplace_back(cpu.now(), cpu.id());
    if (static_cast<int>(bs.arrivals.size()) < bs.participants)
        return false; // block; the last arriver wakes us

    // Last arriver: compute the episode's serialization and release.
    // Arrivals are chained through the barrier's central resource in
    // *simulated time* order (sorting makes this exact even though the
    // scheduler executed them in a slightly different order).
    std::sort(bs.arrivals.begin(), bs.arrivals.end());
    const Cycles occ =
        cfg_.barrierAlg == BarrierAlg::Centralized
            ? (cfg_.syncKind == SyncKind::FetchOp
                   ? cfg_.hubOccupancy
                   : 2 * cfg_.hubOccupancy +
                         cfg_.protocol.interventionCycles)
            : 2; // tournament joins are spread across the tree
    Cycles end = 0;
    for (const auto& [t, p] : bs.arrivals)
        end = std::max(end, t) + occ;
    const Cycles release = end + cfg_.hubCycles;

    for (const auto& [t, p] : bs.arrivals) {
        (void)t;
        Cycles wake = release + mem_.netRoundTrip(cpu.id(), p) / 2;
        if (cfg_.barrierAlg == BarrierAlg::Tournament)
            wake += 4u * rounds; // staged wake-up through the tree
        Cpu& w = (*runCpus_)[p];
        ++w.stats().c.barriersPassed;
        if (p == cpu.id()) {
            if (wake > w.now())
                w.chargeSyncWait(wake - w.now(),
                                 Cpu::WaitKind::Barrier);
        } else {
            w.wakeAt(wake, Cpu::WaitKind::Barrier);
            sched_.ready(p, w.now());
        }
        if (obs::kTracingCompiled && trace_)
            trace_->onBarrierPassed(p, w.now(), bs.line);
        if (syncObs_)
            syncObs_->onBarrierDepart(p, b.idx, bs.episode);
    }
    bs.arrivals.clear();
    ++bs.episode;
    return true;
}

bool
Machine::lockAcquire(LockId l, Cpu& cpu)
{
    LockState& ls = locks_.at(l.idx);
    const Cycles op = syncRmwCost(cpu, ls.line, ls.lastHolder);
    cpu.chargeSyncOp(op);
    ++cpu.stats().c.lockAcquires;
    if (ls.held)
        ++cpu.stats().c.lockContended;
    if (obs::kTracingCompiled && trace_)
        trace_->onLockAcquire(cpu.id(), cpu.now(), ls.line,
                              mem_.syncHomeOf(ls.line), ls.held);
#ifdef CCNUMA_CHECK_MUTATE
    // Harness self-test (CheckMutation::DropLockAcquire): the acquire
    // is charged and reported granted, but the lock is never taken —
    // no mutual exclusion, no SyncObserver grant, no happens-before
    // edge. The race analyzer must catch the resulting races. See
    // sim/config.hh.
    if (cfg_.check.mutation == CheckMutation::DropLockAcquire)
        return true;
#endif
    if (!ls.held) {
        ls.held = true;
        ls.owner = cpu.id();
        if (syncObs_)
            syncObs_->onLockAcquired(cpu.id(), l.idx);
        return true;
    }
    ls.waiters.emplace_back(cpu.id(), cpu.now());
    return false;
}

void
Machine::lockRelease(LockId l, Cpu& cpu)
{
    LockState& ls = locks_.at(l.idx);
#ifdef CCNUMA_CHECK_MUTATE
    // The matching acquire was dropped (CheckMutation::DropLockAcquire):
    // charge the releasing store but leave the never-taken lock alone.
    if (cfg_.check.mutation == CheckMutation::DropLockAcquire) {
        cpu.chargeSyncOp(syncRmwCost(cpu, ls.line, ls.lastHolder));
        return;
    }
#endif
    assert(ls.held && ls.owner == cpu.id());
    // Releasing store on the lock line.
    const Cycles op = syncRmwCost(cpu, ls.line, ls.lastHolder);
    cpu.chargeSyncOp(op);
    if (syncObs_)
        syncObs_->onLockReleased(cpu.id(), l.idx);
    if (ls.waiters.empty()) {
        ls.held = false;
        ls.owner = kNoProc;
        return;
    }
    // Ticket handoff to the FIFO head. The waiter pays the line transfer
    // from the releaser before it proceeds.
    const auto [next, blockTime] = ls.waiters.front();
    (void)blockTime;
    ls.waiters.erase(ls.waiters.begin());
    ls.owner = next;
    Cpu& w = (*runCpus_)[next];
    const Cycles wake = std::max(cpu.now(), w.now()) +
                        mem_.netRoundTrip(cpu.id(), next) / 2 +
                        cfg_.hubCycles;
    w.wakeAt(wake, Cpu::WaitKind::Lock);
    if (cfg_.syncKind == SyncKind::LLSC)
        ls.lastHolder = next;
    // The handoff is the release->acquire synchronization edge: the
    // waiter's grant is delivered after this release's callback.
    if (syncObs_)
        syncObs_->onLockAcquired(next, l.idx);
    sched_.ready(next, w.now());
}

} // namespace ccnuma::sim
