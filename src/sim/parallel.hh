/**
 * @file
 * The node-sharded parallel engine's scout pass.
 *
 * Machine::run splits a parallel run into two concurrent phases:
 *
 *  - The **scout** pass (this file) executes the application coroutines
 *    on worker threads, each worker owning the processors of a
 *    contiguous range of nodes. Workers advance in conservative time
 *    windows: within a window a worker runs its own processors freely
 *    (they touch only per-processor state — scout ops are recorded,
 *    never simulated); at the boundary all workers meet at a host
 *    barrier and a coordinator orders the window's synchronization
 *    events canonically by (virtual time, processor, issue order) and
 *    grants locks/barriers deterministically. The grant schedule is
 *    therefore a pure function of the recorded streams — independent
 *    of worker count and host scheduling.
 *
 *  - The **replay** pass (Machine::runParallel) drains the recorded
 *    per-processor streams through the unmodified serial engine on the
 *    calling thread, concurrently with the scout. Every metric is
 *    computed by the same code, over the same operation sequence, in
 *    the same order as a serial run — so results are byte-identical by
 *    construction for programs whose operation streams do not depend
 *    on simulated timing.
 *
 * The window width is bounded below by the machine's minimum
 * cross-node latency (Table 1: >= 656 ns on the Origin2000) purely as
 * the natural granularity at which cross-node synchronization effects
 * can propagate; because grants are ordered canonically at boundaries,
 * *any* width is sound and the knob only trades host-barrier overhead
 * against scout-clock fidelity.
 */

#ifndef CCNUMA_SIM_PARALLEL_HH
#define CCNUMA_SIM_PARALLEL_HH

#include <barrier>
#include <coroutine>
#include <deque>
#include <exception>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "sim/oplog.hh"
#include "sim/types.hh"

namespace ccnuma::sim {

class Cpu;

/** Runs the scout pass over the spawned application coroutines. */
class ScoutEngine
{
  public:
    /**
     * @param cpus            the scout-mode Cpu objects (one per proc)
     * @param procNode        process -> node (the ownership map)
     * @param barrierParts    participants per created BarrierId
     * @param numLocks        number of created LockIds
     * @param windowCycles    window width (>= 1)
     * @param workers         scout worker threads (>= 1)
     */
    ScoutEngine(std::vector<Cpu>& cpus, std::vector<NodeId> procNode,
                std::vector<int> barrierParts, int numLocks,
                Cycles windowCycles, int workers);
    ~ScoutEngine();

    /// The recorded stream replayed for processor `p`.
    OpStream& stream(ProcId p) { return *streams_[p]; }
    /// The scout attachment for processor `p` (give to Cpu::attachScout).
    ScoutLink& link(ProcId p) { return links_[p]; }

    /// Launch the workers over the top-level coroutine handles.
    void start(std::vector<std::coroutine_handle<>> handles);
    /// Ask the scout to wind down early (the replay side failed).
    void requestStop();
    /// Wait for all workers to finish; idempotent.
    void join();
    /// Rethrow a worker-infrastructure failure or report a scout
    /// deadlock after join(); no-op on success. Application exceptions
    /// are *not* reported here — they stay captured in the Tasks.
    void rethrowIfFailed();

  private:
    enum class CpuState : std::uint8_t { Runnable, Parked, Done };

    struct Worker {
        std::vector<ProcId> procs; ///< owned processors, ascending
        std::vector<ScoutSyncEvent> events;
        std::thread thread;
        std::exception_ptr err;
    };

    struct ScoutLock {
        bool held = false;
        std::deque<std::pair<Cycles, ProcId>> waiters;
    };
    struct ScoutBarrier {
        int participants = 0;
        std::vector<std::pair<Cycles, ProcId>> arrivals;
    };

    /// Worker threads actually spawned: `requested` clamped to
    /// [1, number of nodes]. Needed before the member-initializer list
    /// runs because the host barrier's participant count is immutable.
    static int clampWorkers(const std::vector<NodeId>& procNode,
                            int requested);

    void workerLoop(int w);
    void runPhase(Worker& wk);
    void coordinate();
    void throttleWait() const;
    void grant(ProcId p, Cycles at, int& grants);
    void fail(std::string msg);

    std::vector<Cpu>& cpus_;
    std::vector<std::unique_ptr<OpStream>> streams_;
    std::vector<ScoutLink> links_;
    std::vector<std::coroutine_handle<>> handles_;
    std::vector<Worker> workers_;
    std::vector<CpuState> state_;
    std::vector<Cycles> grantAt_;
    std::vector<ScoutBarrier> barriers_;
    std::vector<ScoutLock> locks_;
    std::vector<ScoutSyncEvent> scratch_;
    OpLogBudget budget_;
    std::barrier<> sync_;
    Cycles width_;
    Cycles windowEnd_;
    Cycles grantCost_ = 64;
    long long capChunks_;
    int nprocs_;
    bool stop_ = false; ///< written by the coordinator between barriers
    bool joined_ = false;
    std::string error_;
};

} // namespace ccnuma::sim

#endif // CCNUMA_SIM_PARALLEL_HH
