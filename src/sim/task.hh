/**
 * @file
 * Coroutine task type for simulated processors.
 *
 * Each simulated processor runs one top-level C++20 coroutine. Memory
 * and busy operations are plain (non-suspending) Cpu method calls that
 * advance the processor's local clock; suspension happens only at
 * `co_await cpu.checkpoint()` yield points and at blocking
 * synchronization (`co_await cpu.barrier(..)`, `co_await cpu.acquire(..)`).
 */

#ifndef CCNUMA_SIM_TASK_HH
#define CCNUMA_SIM_TASK_HH

#include <coroutine>
#include <exception>
#include <utility>

namespace ccnuma::sim {

/**
 * Owning handle to a per-processor coroutine. Created suspended; the
 * scheduler resumes it until completion.
 */
class Task
{
  public:
    struct promise_type {
        Task get_return_object()
        {
            return Task{Handle::from_promise(*this)};
        }
        std::suspend_always initial_suspend() noexcept { return {}; }
        std::suspend_always final_suspend() noexcept { return {}; }
        void return_void() noexcept {}
        void unhandled_exception() { excep = std::current_exception(); }

        std::exception_ptr excep;
    };
    using Handle = std::coroutine_handle<promise_type>;

    Task() = default;
    explicit Task(Handle h) : handle_(h) {}
    Task(Task&& o) noexcept : handle_(std::exchange(o.handle_, nullptr)) {}
    Task&
    operator=(Task&& o) noexcept
    {
        if (this != &o) {
            destroy();
            handle_ = std::exchange(o.handle_, nullptr);
        }
        return *this;
    }
    Task(const Task&) = delete;
    Task& operator=(const Task&) = delete;
    ~Task() { destroy(); }

    Handle handle() const { return handle_; }
    bool done() const { return !handle_ || handle_.done(); }

    /// Rethrow any exception the coroutine ended with.
    void
    rethrowIfFailed() const
    {
        if (handle_ && handle_.promise().excep)
            std::rethrow_exception(handle_.promise().excep);
    }

  private:
    void
    destroy()
    {
        if (handle_) {
            handle_.destroy();
            handle_ = nullptr;
        }
    }
    Handle handle_;
};

} // namespace ccnuma::sim

#endif // CCNUMA_SIM_TASK_HH
