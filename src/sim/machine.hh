/**
 * @file
 * The simulated machine: owns the topology, memory system, scheduler,
 * processors and synchronization objects, and runs application programs.
 */

#ifndef CCNUMA_SIM_MACHINE_HH
#define CCNUMA_SIM_MACHINE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "obs/trace.hh"
#include "sim/config.hh"
#include "sim/cpu.hh"
#include "sim/recorder.hh"
#include "sim/memsys.hh"
#include "sim/scheduler.hh"
#include "sim/stats.hh"
#include "sim/sync.hh"
#include "sim/sync_observer.hh"
#include "sim/task.hh"
#include "sim/topology.hh"

namespace ccnuma::sim {

/**
 * One simulated CC-NUMA machine instance.
 *
 * Usage:
 *   Machine m(cfg);
 *   Addr a = m.alloc(bytes);             // shared arenas
 *   m.placeBlocked(a, bytes, order);     // optional manual placement
 *   BarrierId bar = m.barrierCreate();
 *   RunResult r = m.run([&](Cpu& cpu) -> Task { ... });
 *
 * A Machine runs one program; build a fresh Machine per experiment run
 * (construction is cheap relative to simulation).
 */
class Machine
{
  public:
    using Program = std::function<Task(Cpu&)>;

    explicit Machine(const MachineConfig& cfg);

    /// Allocate `bytes` of shared address space, page-aligned.
    Addr alloc(std::uint64_t bytes);
    /// Allocate one cache line (for locks, flags, counters).
    Addr allocLine();

    /// Manual page placement (no-ops unless Placement::Explicit).
    void
    place(Addr addr, std::uint64_t bytes, NodeId node)
    {
        if (rec_)
            rec_->onPlace(addr, bytes, node);
        mem_.place(addr, bytes, node);
    }
    /// Place `bytes` from `addr` in contiguous blocks across the nodes of
    /// processes 0..nprocs-1 in order (the canonical manual layout).
    void placeAcrossProcs(Addr addr, std::uint64_t bytes);

    /// Create a barrier over `participants` processes (-1 = all).
    BarrierId barrierCreate(int participants = -1);
    /// Create a ticket lock.
    LockId lockCreate();

    /// Run `program` on every processor; returns per-processor stats.
    RunResult run(const Program& program);

    const MachineConfig& config() const { return cfg_; }
    Topology& topology() { return topo_; }
    MemSys& mem() { return mem_; }
    /// The run's observability bundle; null before run() or when
    /// cfg.trace enables nothing (also shared via RunResult::trace).
    const obs::Trace* trace() const { return trace_.get(); }

    /**
     * Attach (or detach with nullptr) a synchronization-and-memory
     * observer (see sim/sync_observer.hh for the ordering contract).
     * Attach before run(); the race analyzer in `ccnuma::analyze`
     * builds its happens-before graph from these callbacks.
     */
    void
    attachSyncObserver(SyncObserver* o)
    {
        syncObs_ = o;
        mem_.attachSyncObserver(o);
    }

    /**
     * Attach (or detach with nullptr) an operation recorder (see
     * sim/recorder.hh): it sees every machine-building call and every
     * per-processor operation, which is a complete replayable
     * description of the run. Attach before setup()/run(). While a
     * recorder is attached run() always uses the serial engine — the
     * parallel scout pass records through its own machinery and the
     * taps would see nothing.
     */
    void attachOpRecorder(OpRecorder* r) { rec_ = r; }

    /// Called by apps::TaskQueues when a steal succeeds (forwards the
    /// happens-before steal edge to the attached SyncObserver).
    /// Dropped during a scout pass: steal timing is a timing-dependent
    /// decision, so task-stealing apps must not run parallel (the
    /// registry flags them; the differential suite enforces it).
    void
    noteTaskSteal(ProcId thief, ProcId victim)
    {
        if (syncObs_ && !scoutActive_)
            syncObs_->onTaskSteal(thief, victim);
    }

    // ---- called by Cpu ----
    bool barrierArrive(BarrierId b, Cpu& cpu);
    bool lockAcquire(LockId l, Cpu& cpu);
    void lockRelease(LockId l, Cpu& cpu);
    Scheduler& scheduler() { return sched_; }

  private:
    Cycles syncRmwCost(Cpu& cpu, Addr line, ProcId& last_holder);

    /// The single-threaded engine (also the parallel engine's replay
    /// phase driver when invoked through runParallel).
    RunResult runSerial(const Program& program);
    /// The node-sharded scout/replay engine (see sim/parallel.hh):
    /// scout workers run the program coroutines and record operation
    /// streams; the calling thread replays them through the serial
    /// engine concurrently. Byte-identical to runSerial for programs
    /// whose operation streams do not depend on simulated timing.
    RunResult runParallel(const Program& program, int scoutWorkers);
    /// cfg.simJobs with 0 (auto) resolved to the host's concurrency.
    int resolveSimJobs() const;
    /// Shared preamble: stats views, tracing, and the real Cpus the
    /// scheduler drives (`into`).
    void prepareEngine(std::vector<Cpu>& into);

    MachineConfig cfg_;
    Topology topo_;
    MemSys mem_;
    Scheduler sched_;
    std::vector<Cpu> cpus_;
    std::vector<Task> tasks_;
    std::deque<BarrierState> barriers_;
    std::deque<LockState> locks_;
    Addr nextAddr_ = 1u << 20; // leave page 0 unused
    SyncObserver* syncObs_ = nullptr;
    OpRecorder* rec_ = nullptr;
    /// Suppresses onAlloc for the line allocation folded into a
    /// barrierCreate()/lockCreate() (replay recreates it implicitly).
    bool recMuted_ = false;
    bool ran_ = false;
    std::vector<ProcStats> statsView_;
    std::shared_ptr<obs::Trace> trace_;
    // ---- parallel-engine state (see runParallel) ----
    std::vector<Cpu>* runCpus_ = nullptr; ///< Cpus the sync layer wakes
    std::vector<Cpu> replayCpus_;
    std::vector<Task> replayTasks_;
    std::vector<ProcStats> scoutStats_; ///< scratch; replay stats win
    bool scoutActive_ = false; ///< guards mid-run alloc/create/steal
};

} // namespace ccnuma::sim

#endif // CCNUMA_SIM_MACHINE_HH
