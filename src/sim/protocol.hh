/**
 * @file
 * Table-driven coherence protocols and directory sharer formats.
 *
 * The protocol core of MemSys is no longer hard-coded MESI: every
 * state transition the engine takes is looked up in a `Protocol`
 * table, and every invalidation/update fan-out asks a
 * `DirectoryConfig` which processors the home actually signals. Three
 * protocols ship:
 *
 *  - MESI   (invalidate; the paper's Origin2000 protocol — default,
 *            bit-identical to the historical hard-coded path),
 *  - MOESI  (adds Owned: a dirty line is shared by owner-forwarding
 *            without a memory writeback),
 *  - Dragon (update-based: a store to a shared line pushes the new
 *            value into the other copies instead of destroying them).
 *
 * And three directory sharer representations (the full-bit vector
 * stops scaling past ~128 sharers, which is exactly the p256/p1024
 * regime the roadmap targets):
 *
 *  - fullbv   exact bit vector (current behaviour),
 *  - coarse:K one bit per region of K processors; an invalidation
 *             over-signals every processor of every marked region,
 *  - ptr:N    limited pointers Dir_iB: exact up to N sharers, then an
 *             overflow bit forces broadcast to all processors.
 *
 * Tables are consulted, not documentation: the CheckMutation seam
 * corrupts a cell to prove the SC oracle catches a protocol whose
 * table "forgets" an invalidation.
 */

#ifndef CCNUMA_SIM_PROTOCOL_HH
#define CCNUMA_SIM_PROTOCOL_HH

#include <cstdint>
#include <string>
#include <string_view>

#include "sim/types.hh"

namespace ccnuma::sim {

/** The coherence protocol families the engine can run. */
enum class ProtocolKind : std::uint8_t {
    MESI,   ///< Invalidation-based, memory-writeback on sharing.
    MOESI,  ///< Invalidation-based with owner-forwarded dirty sharing.
    Dragon, ///< Update-based (writes broadcast the new value).
};

/** Requester-side action a table cell demands. */
enum class ReqAct : std::uint8_t {
    None,       ///< Plain hit; no transaction.
    Fill,       ///< Allocate the line from memory or the owner.
    Invalidate, ///< Gain write permission by invalidating other copies.
    Update,     ///< Push the stored value into the other copies.
};

/** What a remote holder's copy does when another processor accesses. */
enum class RemAct : std::uint8_t {
    None,            ///< Copy unaffected.
    Invalidate,      ///< Copy destroyed.
    SupplyKeep,      ///< Holder supplies the line and keeps its dirty
                     ///< data (no memory writeback; MOESI/Dragon).
    SupplyWriteback, ///< Holder supplies the line and home memory is
                     ///< made current (MESI downgrade).
    Update,          ///< Copy stays valid and absorbs the new value.
};

/**
 * Next-state token for a table cell. Either a concrete cache line
 * state or a context-dependent resolution the engine performs.
 */
enum class NextState : std::uint8_t {
    Invalid,
    Shared,
    Dirty,
    Owned,
    Same,           ///< State unchanged.
    OwnedIfSharers, ///< Owned when other copies remain, else Dirty
                    ///< (Dragon's Sm/M distinction).
};

struct ReqCell {
    NextState next = NextState::Same;
    ReqAct act = ReqAct::None;
};
struct RemCell {
    NextState next = NextState::Same;
    RemAct act = RemAct::None;
};

/// Row selectors for the tables below.
inline constexpr int kProtoRead = 0;
inline constexpr int kProtoWrite = 1;
/// Column count: indexed by LineState (Invalid, Shared, Dirty, Owned).
inline constexpr int kProtoStates = 4;

/**
 * One coherence protocol as a pair of transition tables. `req` is
 * consulted for the requesting processor (op x its current line
 * state); `rem` for every remote holder the transaction reaches
 * (op x the holder's line state). MemSys copies the table per machine
 * so the mutation seam can corrupt a private cell.
 */
struct Protocol {
    ProtocolKind kind = ProtocolKind::MESI;
    /// Stores to shared lines propagate updates instead of
    /// invalidations (Dragon).
    bool updateBased = false;
    /// A dirty line can be shared straight out of the owner's cache,
    /// without a memory writeback (MOESI Owned / Dragon Sm).
    bool ownerForwarding = false;
    ReqCell req[2][kProtoStates];
    RemCell rem[2][kProtoStates];

    /// Op-row count of each table (kProtoRead, kProtoWrite).
    static constexpr int kNumOps = 2;

    /// Call fn(op, stateIdx, const ReqCell&) for every requester-side
    /// cell, ops outer, states (LineState index order) inner. The
    /// tables are the protocol spec; the model checker and table
    /// audits iterate them instead of keeping a second copy.
    template <typename Fn>
    void
    forEachReqCell(Fn&& fn) const
    {
        for (int op = 0; op < kNumOps; ++op)
            for (int s = 0; s < kProtoStates; ++s)
                fn(op, s, req[op][s]);
    }

    /// Call fn(op, stateIdx, const RemCell&) for every remote-holder
    /// cell, same order as forEachReqCell.
    template <typename Fn>
    void
    forEachRemCell(Fn&& fn) const
    {
        for (int op = 0; op < kNumOps; ++op)
            for (int s = 0; s < kProtoStates; ++s)
                fn(op, s, rem[op][s]);
    }

    /**
     * Bitmask over LineState indices of the cache states these tables
     * can drive a line into (bit s => state index s enterable),
     * derived from the next-state tokens themselves: Invalid is always
     * live, Same adds nothing, OwnedIfSharers adds Owned and Dirty.
     * MESI yields {Invalid,Shared,Dirty}; MOESI/Dragon add Owned. A
     * state observed outside this mask is a table bug.
     */
    unsigned reachableStates() const;

    static const Protocol& mesi();
    static const Protocol& moesi();
    static const Protocol& dragon();
    static const Protocol& get(ProtocolKind k);
};

/**
 * Protocol choice plus the protocol-level latency knobs that used to
 * live loose in MachineConfig (see the deprecation shim there).
 */
struct ProtocolConfig {
    ProtocolKind kind = ProtocolKind::MESI;
    /// Cache intervention cost at a dirty owner (3-hop transactions).
    Cycles interventionCycles = 22;
    /// Additional serialized cost per invalidated sharer.
    Cycles invalPerSharerCycles = 4;
    /// Additional serialized cost per updated sharer (update-based
    /// protocols; an update carries data, so it is not cheaper than
    /// an invalidation).
    Cycles updatePerSharerCycles = 4;

    /// Accept "mesi" | "moesi" | "dragon" (case-sensitive).
    /// @return false (and leaves *this untouched) on unknown input.
    bool parse(std::string_view s);
    /// Round-trips through parse(): name() of a parsed config parses
    /// back to the same kind.
    std::string name() const;

    const Protocol& table() const { return Protocol::get(kind); }
};

/** Directory sharer-set representation. */
enum class DirFormat : std::uint8_t {
    FullBitVector, ///< Exact presence bit per processor.
    CoarseVector,  ///< One bit per region of `param` processors.
    LimitedPtr,    ///< Dir_iB: `param` pointers, overflow -> broadcast.
};

/**
 * Directory format choice. The simulator always keeps the exact
 * sharer set for bookkeeping; the format governs which processors an
 * invalidation/update fan-out *signals* (the over-invalidation and
 * broadcast costs of the compressed representations).
 */
struct DirectoryConfig {
    DirFormat format = DirFormat::FullBitVector;
    /// Region size K (CoarseVector) or pointer count N (LimitedPtr);
    /// ignored for FullBitVector.
    int param = 0;

    /// Accept "fullbv" | "coarse:K" | "ptr:N" with K,N >= 1.
    /// @return false (and leaves *this untouched) on unknown input.
    bool parse(std::string_view s);
    /// Round-trips through parse().
    std::string name() const;
};

} // namespace ccnuma::sim

#endif // CCNUMA_SIM_PROTOCOL_HH
