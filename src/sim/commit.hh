/**
 * @file
 * Commit-order observation hook for protocol verification.
 *
 * The simulator executes every memory transaction atomically against
 * the global cache/directory state (coroutines are interleaved only at
 * explicit suspension points, and MemSys::access runs to completion),
 * so the order in which transactions are processed *is* the machine's
 * global commit order. A CommitObserver attached to the MemSys sees
 * every data-moving protocol action in exactly that order, which is
 * what the sequential-consistency data-value oracle in `ccnuma::check`
 * (src/check/oracle.hh) needs: it maintains a golden flat memory
 * updated at each store commit and shadow per-cache line images driven
 * by the fill/invalidate/downgrade/writeback callbacks, and checks that
 * every load observes the latest committed value.
 *
 * The hooks also fire for the transactions that prefetches run
 * internally: a prefetch's protocol actions (fills, invalidations,
 * writebacks) are real and move data, even though the issuing
 * processor does not stall on them. They do NOT fire for uncached
 * at-memory fetch&op or for the synchronization layer, which use pure
 * latency models and never move cached data.
 *
 * The synchronization layer has its own observation surface,
 * sim::SyncObserver (sync_observer.hh), whose callbacks are delivered
 * consistently interleaved with this commit order: every memory hook a
 * processor triggers before a synchronization operation is delivered
 * before that operation's SyncObserver callback, and a lock grant is
 * always delivered after the release it synchronizes with. See the
 * sync_observer.hh file comment for the full ordering contract.
 *
 * When no observer is attached the cost is one null pointer test per
 * hook site.
 */

#ifndef CCNUMA_SIM_COMMIT_HH
#define CCNUMA_SIM_COMMIT_HH

#include "sim/types.hh"

namespace ccnuma::sim {

/** Where the data for a load fill (or hit) came from. */
enum class DataSource : std::uint8_t {
    CacheHit, ///< Served from the requester's own cache.
    Memory,   ///< Filled from the home node's memory.
    Owner,    ///< Supplied by a remote dirty owner (3-hop transfer).
};

/**
 * Observer of data-moving protocol actions in global commit order.
 * All callbacks receive full line base addresses.
 */
class CommitObserver
{
  public:
    virtual ~CommitObserver() = default;

    /// A load by `p` committed; its data came from `src` (`supplier`
    /// is the owning processor when src == Owner, else kNoProc).
    virtual void onLoad(ProcId p, LineAddr line, DataSource src,
                        ProcId supplier) = 0;
    /// A store by `p` committed; `p` now holds the only valid copy.
    virtual void onStore(ProcId p, LineAddr line) = 0;
    /// `p`'s cached copy was invalidated by a remote write.
    virtual void onInval(ProcId p, LineAddr line) = 0;
    /// `owner`'s dirty copy was downgraded to Shared; its data was
    /// written back to the home memory.
    virtual void onDowngrade(ProcId owner, LineAddr line) = 0;
    /// `p` evicted a dirty line; its data was written back to memory.
    virtual void onWriteback(ProcId p, LineAddr line) = 0;
    /// `p` evicted a clean line (no data movement).
    virtual void onEvict(ProcId p, LineAddr line) = 0;

    /// `owner`'s modified copy was supplied to a reader *without* a
    /// memory writeback (MOESI Owned / Dragon Sm): the owner keeps the
    /// only up-to-date copy and home memory stays stale. Never fires
    /// under MESI, hence the default no-op.
    virtual void
    onShareDirty(ProcId owner, LineAddr line)
    {
        (void)owner;
        (void)line;
    }
    /// `p`'s valid copy absorbed the latest committed store's value in
    /// place (update-based protocols). Fires after the onStore it
    /// propagates. Never fires under invalidation-based protocols.
    virtual void
    onUpdate(ProcId p, LineAddr line)
    {
        (void)p;
        (void)line;
    }
};

} // namespace ccnuma::sim

#endif // CCNUMA_SIM_COMMIT_HH
