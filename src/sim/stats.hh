/**
 * @file
 * Per-processor time and event accounting, and the execution-time
 * breakdown (Busy / Memory / Synchronization) used throughout the paper's
 * figures.
 */

#ifndef CCNUMA_SIM_STATS_HH
#define CCNUMA_SIM_STATS_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace ccnuma::obs {
class Trace;
} // namespace ccnuma::obs

namespace ccnuma::sim {

/** Event counters for one processor. */
struct ProcCounters {
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t l2Hits = 0;
    std::uint64_t missLocal = 0;
    std::uint64_t missRemoteClean = 0;
    std::uint64_t missRemoteDirty = 0;
    std::uint64_t upgrades = 0;
    std::uint64_t invalsSent = 0;
    std::uint64_t invalsReceived = 0;
    /// Fan-out messages (invalidations or updates) a compressed
    /// directory format (coarse:K / ptr:N) sent to processors holding
    /// no copy — the over-invalidation cost. Always 0 under fullbv.
    std::uint64_t invalsSpurious = 0;
    /// Update-based protocols only (Dragon): copies refreshed in place
    /// by this processor's stores / refreshed at this processor.
    std::uint64_t updatesSent = 0;
    std::uint64_t updatesReceived = 0;
    std::uint64_t writebacks = 0;
    std::uint64_t prefetchesIssued = 0;
    std::uint64_t prefetchesUseful = 0;
    std::uint64_t pageMigrations = 0;
    std::uint64_t lockAcquires = 0;
    /// Acquires that found the lock held and had to queue (the
    /// contended subset of lockAcquires; a convoy shows up here).
    std::uint64_t lockContended = 0;
    std::uint64_t barriersPassed = 0;

    std::uint64_t misses() const
    {
        return missLocal + missRemoteClean + missRemoteDirty;
    }
    std::uint64_t remoteMisses() const
    {
        return missRemoteClean + missRemoteDirty;
    }
};

/** Time accumulators for one processor (cycles). */
struct ProcTimes {
    Cycles busy = 0;     ///< Computation.
    Cycles memStall = 0; ///< Waiting for cache misses (incl. hits' cost).
    Cycles syncWait = 0; ///< Idle at barriers / contended locks.
    Cycles syncOp = 0;   ///< Cost of synchronization operations.
    /// Exact partition of syncWait by what the processor waited *on*:
    /// lockWait + barrierWait == syncWait always. The split is what
    /// lets ccnuma::diagnose tell lock serialization from barrier
    /// imbalance without re-deriving it from the event trace.
    Cycles lockWait = 0;    ///< syncWait spent blocked on lock grants.
    Cycles barrierWait = 0; ///< syncWait spent waiting at barriers.

    Cycles total() const { return busy + memStall + syncWait + syncOp; }
    Cycles sync() const { return syncWait + syncOp; }
};

/** Full stats for one processor. */
struct ProcStats {
    ProcTimes t;
    ProcCounters c;
};

/** Busy/Memory/Sync fractions of an execution (Figure 3 style). */
struct Breakdown {
    double busy = 0, mem = 0, sync = 0;
};

/** Result of one simulated run. */
struct RunResult {
    Cycles time = 0;                ///< Max completion time over procs.
    std::vector<ProcStats> procs;   ///< Indexed by logical process.
    std::uint64_t pageMigrations = 0;
    /// Observability bundle (events/epochs/sharing); non-null only when
    /// MachineConfig::trace enabled something and tracing is compiled
    /// in. See obs/trace.hh and obs/export.hh.
    std::shared_ptr<const obs::Trace> trace;

    /// Average breakdown across processors, normalized per processor.
    Breakdown breakdown() const;
    /// Per-processor breakdown, normalizing against that proc's total.
    Breakdown breakdown(int p) const;
    /// Aggregate counters summed over processors.
    ProcCounters totals() const;
    /// Sum of all time categories over processors (cost metric).
    Cycles aggregateCycles() const;
};

/// speedup = seq_time / par_time.
inline double
speedup(Cycles seq_time, Cycles par_time)
{
    return par_time == 0 ? 0.0
                         : static_cast<double>(seq_time) / par_time;
}

/// Parallel efficiency = speedup / nprocs (the paper's primary metric).
inline double
efficiency(Cycles seq_time, Cycles par_time, int nprocs)
{
    return nprocs == 0 ? 0.0 : speedup(seq_time, par_time) / nprocs;
}

} // namespace ccnuma::sim

#endif // CCNUMA_SIM_STATS_HH
