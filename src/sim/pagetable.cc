#include "sim/pagetable.hh"

#include <bit>
#include <cassert>

namespace ccnuma::sim {

PageTable::PageTable(const MachineConfig& cfg, int num_nodes)
    : pageBytes_(cfg.pageBytes),
      pageShift_(std::countr_zero(cfg.pageBytes)),
      placement_(cfg.placement),
      migration_(cfg.pageMigration),
      migrationThreshold_(cfg.migrationThreshold),
      numNodes_(num_nodes)
{
    assert((cfg.pageBytes & (cfg.pageBytes - 1)) == 0);
}

NodeId
PageTable::homeSlow(PageInfo& pi, NodeId toucher)
{
    switch (placement_) {
      case Placement::FirstTouch:
      case Placement::Explicit:
        // Explicit placement falls back to first-touch for pages the
        // application did not place, matching IRIX behaviour.
        pi.home = toucher;
        break;
      case Placement::RoundRobin:
        pi.home = static_cast<NodeId>(rrNext_++ % numNodes_);
        break;
    }
    return pi.home;
}

void
PageTable::place(Addr addr, std::uint64_t bytes, NodeId node)
{
    assert(node >= 0 && node < numNodes_);
    if (placement_ != Placement::Explicit)
        return; // manual hints are ignored under other policies
    const Addr first = addr / pageBytes_;
    const Addr last = (addr + (bytes ? bytes - 1 : 0)) / pageBytes_;
    for (Addr pn = first; pn <= last; ++pn)
        info(pn * pageBytes_).home = node;
}

void
PageTable::placeBlocked(Addr addr, std::uint64_t bytes,
                        const std::vector<NodeId>& order)
{
    if (order.empty() || bytes == 0)
        return;
    const std::uint64_t chunk =
        (bytes + order.size() - 1) / order.size();
    for (std::size_t i = 0; i < order.size(); ++i) {
        const std::uint64_t off = i * chunk;
        if (off >= bytes)
            break;
        place(addr + off, std::min<std::uint64_t>(chunk, bytes - off),
              order[i]);
    }
}

bool
PageTable::noteAccessSlow(Addr addr, NodeId accessor)
{
    PageInfo& pi = info(addr);
    if (pi.home == kNoNode || accessor == pi.home) {
        // Home-node access: decay the challenger's score.
        if (pi.score > 0)
            --pi.score;
        return false;
    }
    if (pi.migrations >= 1)
        return false; // dampened: one migration per page (IRIX-style)
    if (pi.candidate == accessor) {
        if (++pi.score >= migrationThreshold_) {
            pi.home = accessor;
            pi.candidate = kNoNode;
            pi.score = 0;
            ++pi.migrations;
            ++totalMigrations_;
            return true;
        }
    } else if (pi.score == 0) {
        pi.candidate = accessor;
        pi.score = 1;
    } else {
        --pi.score;
    }
    return false;
}

std::vector<std::uint64_t>
PageTable::pagesPerNode() const
{
    std::vector<std::uint64_t> counts(numNodes_, 0);
    for (const PageInfo& pi : pages_)
        if (pi.home != kNoNode)
            ++counts[pi.home];
    return counts;
}

} // namespace ccnuma::sim
