#include "sim/directory.hh"

#include <bit>

namespace ccnuma::sim {

int
SharerSet::count() const
{
    int n = 0;
    for (auto b : bits_)
        n += std::popcount(b);
    return n;
}

} // namespace ccnuma::sim
