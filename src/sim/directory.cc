#include "sim/directory.hh"

#include <bit>
#include <sstream>

namespace ccnuma::sim {

int
SharerSet::count() const
{
    int n = 0;
    for (auto b : bits_)
        n += std::popcount(b);
    return n;
}

Directory::Directory(int numNodes, std::uint32_t pageBytes)
{
    const std::uint32_t shards = std::bit_ceil(
        static_cast<std::uint32_t>(numNodes < 1 ? 1 : numNodes));
    shardMask_ = shards - 1;
    pageShift_ = static_cast<std::uint32_t>(
        std::bit_width(pageBytes < 2 ? 2u : pageBytes) - 1);
    shards_.reserve(shards);
    for (std::uint32_t s = 0; s < shards; ++s)
        shards_.emplace_back(/*initial_capacity=*/64);
}

DirEntry&
Directory::shadowLookup(LineAddr line)
{
    flushShadow();
    DirEntry& e = shards_[shardOf(line)][line];
    // The caller will mutate `e` after we return; mirror it into the
    // reference map at the *next* Directory call, when the mutations
    // are complete and `e` has not yet been moved by a rehash/erase.
    pendingLine_ = line;
    pendingEntry_ = &e;
    return e;
}

void
Directory::flushShadow() const
{
    if (!pendingEntry_)
        return;
    shadow_[pendingLine_] = *pendingEntry_;
    pendingEntry_ = nullptr;
}

std::string
Directory::shadowDiff() const
{
    flushShadow();
    std::ostringstream err;
    const std::size_t flat = size();
    if (flat != shadow_.size()) {
        err << "directory shadow divergence: flat has " << flat
            << " entries, reference has " << shadow_.size();
        return err.str();
    }
    std::string diff;
    forEach([&](LineAddr line, const DirEntry& e) {
        if (!diff.empty())
            return;
        const auto it = shadow_.find(line);
        if (it == shadow_.end()) {
            std::ostringstream os;
            os << "directory shadow divergence: line 0x" << std::hex
               << line << " present only in flat storage";
            diff = os.str();
        } else if (!(it->second == e)) {
            std::ostringstream os;
            os << "directory shadow divergence: line 0x" << std::hex
               << line << std::dec << " state/owner/sharers mismatch"
               << " (flat state=" << static_cast<int>(e.state)
               << " owner=" << e.owner
               << " sharers=" << e.sharers.count()
               << ", reference state="
               << static_cast<int>(it->second.state)
               << " owner=" << it->second.owner
               << " sharers=" << it->second.sharers.count() << ")";
            diff = os.str();
        }
    });
    return diff;
}

} // namespace ccnuma::sim
