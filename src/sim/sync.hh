/**
 * @file
 * Synchronization objects: ticket locks and barriers, implemented over
 * either LL-SC cached-line operations or the Origin's at-memory fetch&op
 * (Section 6.3). Wait time (imbalance) and operation overhead are
 * accounted separately, since the paper's key finding is that wait time
 * dominates regardless of primitive.
 */

#ifndef CCNUMA_SIM_SYNC_HH
#define CCNUMA_SIM_SYNC_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace ccnuma::sim {

/** Opaque handle types the application code passes around. */
struct BarrierId { int idx = -1; };
struct LockId { int idx = -1; };

/** Internal state of one barrier. */
struct BarrierState {
    int participants = 0;
    Addr line = 0; ///< Home line for the cost model.
    ProcId lastHolder = kNoProc; ///< LL-SC line-bouncing chain.
    /// (arrival time after the arrival op, proc) of everyone arrived in
    /// this episode, including the eventual last arriver.
    std::vector<std::pair<Cycles, ProcId>> arrivals;
    /// Completed release episodes (reported to sim::SyncObserver).
    std::uint64_t episode = 0;
};

/** Internal state of one ticket lock. */
struct LockState {
    bool held = false;
    ProcId owner = kNoProc;
    Addr line = 0;
    ProcId lastHolder = kNoProc; ///< LL-SC line-bouncing chain.
    std::vector<std::pair<ProcId, Cycles>> waiters; ///< FIFO ticket queue.
};

} // namespace ccnuma::sim

#endif // CCNUMA_SIM_SYNC_HH
