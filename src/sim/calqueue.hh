/**
 * @file
 * Bucketed calendar queue for the scheduler's ready list.
 *
 * The scheduler's workload is a pathological fit for a binary heap:
 * every push is within one quantum of the last pop (a processor either
 * yields just past its quantum or is woken at a sync time that cannot
 * precede the waker's current time), so the heap pays O(log n) sift
 * costs to maintain a total order over keys that are already almost
 * sorted. A calendar queue exploits the quantum-bounded disorder: time
 * is divided into power-of-two-width buckets arranged in a ring; a
 * push lands in its bucket in O(1), and a pop scans the (short) bucket
 * under the cursor for the minimum (time, seq) event.
 *
 * Pop order is EXACTLY the (time, seq) order a min-heap would produce
 * as long as no event is pushed with a time earlier than the last
 * popped event's bucket — which the scheduler guarantees (see above).
 * An event pushed into the past anyway is clamped into the cursor
 * bucket: it still pops before anything later, only its order among
 * the cursor bucket's events degrades to (time, seq) within that
 * bucket — bounded by one bucket width, far below the quantum-bounded
 * disorder the simulation already tolerates.
 *
 * Events more than a ring span ahead (sync wake-ups of far-behind
 * processors) overflow into a small min-heap that is drained back into
 * the ring as the cursor advances.
 */

#ifndef CCNUMA_SIM_CALQUEUE_HH
#define CCNUMA_SIM_CALQUEUE_HH

#include <bit>
#include <cassert>
#include <cstdint>
#include <queue>
#include <vector>

#include "sim/types.hh"

namespace ccnuma::sim {

/** One scheduler event: processor `p` runnable at `time`. */
struct SchedEvent {
    Cycles time;
    std::uint64_t seq; ///< Push order; ties on `time` pop FIFO.
    ProcId p;
};

/** Orders a std::priority_queue as a min-heap on (time, seq). */
struct SchedEventAfter {
    bool
    operator()(const SchedEvent& a, const SchedEvent& b) const
    {
        return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
};

class CalendarQueue
{
  public:
    explicit CalendarQueue(Cycles quantum = 500) { setSpan(quantum); }

    /// Size buckets from the scheduler quantum. Only valid while
    /// empty (the ring is not re-binned).
    void
    setSpan(Cycles quantum)
    {
        assert(size_ == 0);
        // ~16 buckets per quantum spreads one quantum's worth of
        // events thinly; the ring then spans several quanta before
        // anything overflows.
        Cycles width = quantum / 16;
        if (width < 64)
            width = 64;
        shift_ = std::bit_width(width) - 1; // floor log2 -> pow2 width
        buckets_.assign(kBuckets, {});
        curIdx_ = 0;
    }

    void
    push(SchedEvent e)
    {
        ++size_;
        std::uint64_t idx = e.time >> shift_;
        if (idx < curIdx_)
            idx = curIdx_; // past event: clamp into the cursor bucket
        if (idx - curIdx_ >= kBuckets) {
            overflow_.push(e);
            return;
        }
        buckets_[idx & kMask].push_back(e);
        ++ringSize_;
    }

    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }

    /// Remove and return the minimum-(time, seq) event.
    /// Precondition: !empty().
    SchedEvent
    pop()
    {
        assert(size_ > 0);
        if (ringSize_ == 0) {
            // Everything lives in the overflow heap: jump the cursor
            // to the earliest event's bucket instead of crawling.
            const std::uint64_t idx = overflow_.top().time >> shift_;
            if (idx > curIdx_)
                curIdx_ = idx;
            drainOverflow();
        }
        for (;;) {
            auto& b = buckets_[curIdx_ & kMask];
            int best = -1;
            for (int i = 0; i < static_cast<int>(b.size()); ++i) {
                const SchedEvent& e = b[i];
                if ((e.time >> shift_) > curIdx_)
                    continue; // a later ring revolution's event
                if (best < 0 || e.time < b[best].time ||
                    (e.time == b[best].time && e.seq < b[best].seq))
                    best = i;
            }
            if (best >= 0) {
                const SchedEvent out = b[best];
                b[best] = b.back();
                b.pop_back();
                --ringSize_;
                --size_;
                return out;
            }
            ++curIdx_;
            drainOverflow();
        }
    }

  private:
    void
    drainOverflow()
    {
        while (!overflow_.empty()) {
            const SchedEvent& t = overflow_.top();
            if ((t.time >> shift_) - curIdx_ >= kBuckets)
                break;
            buckets_[(t.time >> shift_) & kMask].push_back(t);
            overflow_.pop();
            ++ringSize_;
        }
    }

    static constexpr std::uint64_t kBuckets = 64;
    static constexpr std::uint64_t kMask = kBuckets - 1;

    std::vector<std::vector<SchedEvent>> buckets_;
    std::priority_queue<SchedEvent, std::vector<SchedEvent>,
                        SchedEventAfter>
        overflow_;
    std::uint64_t curIdx_ = 0;  ///< Absolute bucket index of the cursor.
    unsigned shift_ = 6;        ///< log2(bucket width in cycles).
    std::size_t ringSize_ = 0;
    std::size_t size_ = 0;
};

} // namespace ccnuma::sim

#endif // CCNUMA_SIM_CALQUEUE_HH
