/**
 * @file
 * Strict recursive-descent JSON parser for the verification harness.
 *
 * Used to read golden-metrics baselines and to validate every JSON
 * document the simulator emits (MetricsSink grids, obs exporters).
 * Deliberately stricter than a general-purpose parser:
 *  - duplicate object keys are an error (they silently shadow data);
 *  - NaN/Infinity tokens are an error (they are not JSON and mean an
 *    unguarded computation leaked into a metrics file);
 *  - trailing garbage after the root value is an error.
 *
 * Numbers keep their raw source text so 64-bit cycle counts round-trip
 * exactly (a double mantissa cannot hold every uint64).
 */

#ifndef CCNUMA_CHECK_JSON_HH
#define CCNUMA_CHECK_JSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace ccnuma::check::json {

/** One parsed JSON value (small DOM; object key order preserved). */
struct Value {
    enum class Kind : std::uint8_t {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string raw;  ///< Exact source text of a Number.
    std::string str;  ///< String contents (unescaped).
    std::vector<Value> arr;
    std::vector<std::pair<std::string, Value>> obj;

    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }

    /// Member of an object, or nullptr.
    const Value* find(const std::string& key) const;
    /// Number parsed as uint64 from its raw text (0 if not a number).
    std::uint64_t asU64() const;
    /// Number as double (0.0 if not a number).
    double asDouble() const { return isNumber() ? number : 0.0; }
};

/** Outcome of a parse: ok + root, or an error with position. */
struct ParseResult {
    bool ok = false;
    std::string error; ///< "offset N: message" when !ok.
    Value root;
};

/// Parse a complete JSON document (strict; see file comment).
ParseResult parse(const std::string& text);

/// Read a whole file and parse it; I/O errors surface in `error`.
ParseResult parseFile(const std::string& path);

} // namespace ccnuma::check::json

#endif // CCNUMA_CHECK_JSON_HH
