#include "check/stress.hh"

#include <algorithm>
#include <exception>
#include <sstream>
#include <string>
#include <unordered_set>
#include <vector>

#include "check/oracle.hh"
#include "sim/machine.hh"
#include "sim/rng.hh"

namespace ccnuma::check {

namespace {

std::uint64_t
fnv1a(std::uint64_t h, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xFF;
        h *= 1099511628211ull;
    }
    return h;
}

const char*
kindName(OpKind k)
{
    switch (k) {
    case OpKind::Read: return "read";
    case OpKind::Write: return "write";
    case OpKind::Rmw: return "rmw";
    case OpKind::Prefetch: return "prefetch";
    case OpKind::Busy: return "busy";
    case OpKind::LockAcq: return "lock-acq";
    case OpKind::LockRel: return "lock-rel";
    case OpKind::Barrier: return "barrier";
    }
    return "?";
}

const char*
regionName(Region r)
{
    switch (r) {
    case Region::Shared: return "shared";
    case Region::FalseShared: return "false-shared";
    case Region::Private: return "private";
    }
    return "?";
}

bool
isMemOp(OpKind k)
{
    return k == OpKind::Read || k == OpKind::Write || k == OpKind::Rmw ||
           k == OpKind::Prefetch;
}

} // namespace

std::uint64_t
StressProgram::numOps() const
{
    std::uint64_t n = 0;
    for (const auto& t : ops)
        n += t.size();
    return n;
}

sim::MachineConfig
StressOptions::defaultMachine()
{
    // A deliberately hostile machine: a tiny 4 KB L2 (32 lines) so the
    // footprints thrash through evictions and writebacks, and small
    // round-robin pages so lines spread across home nodes and remote
    // 2-hop/3-hop transactions dominate.
    sim::MachineConfig cfg = sim::MachineConfig::origin2000(8);
    cfg.cacheBytes = 4096;
    cfg.cacheAssoc = 2;
    cfg.pageBytes = 1024;
    cfg.placement = sim::Placement::RoundRobin;
    return cfg;
}

StressProgram
generate(const StressOptions& opt)
{
    StressProgram prog;
    const int procs = std::max(1, opt.procs);
    const int perProc = std::max(0, opt.opsPerProc);
    const int barriers = std::max(0, opt.barriers);
    prog.ops.resize(static_cast<std::size_t>(procs));
    prog.numLocks = std::max(1, opt.numLocks);

    // Barrier instances get groups 1..barriers (one id per instance,
    // shared by every processor); lock sections draw per-processor
    // disjoint group ids above them so a shrink unit never straddles
    // two different synchronization constructs.
    const std::uint64_t lockGroupBase =
        static_cast<std::uint64_t>(barriers) + 1;

    for (int p = 0; p < procs; ++p) {
        auto& trace = prog.ops[static_cast<std::size_t>(p)];
        sim::Rng rng(opt.seed ^
                     (0xA24BAED4963EE407ull *
                      (static_cast<std::uint64_t>(p) + 1)));
        std::uint64_t nextLockGroup =
            lockGroupBase + static_cast<std::uint64_t>(p) * 1000000;

        // `heldLock` is the lock section the op sits in (-1 outside).
        // Disciplined mode uses it to keep truly-shared lines inside
        // their owning lock's sections only (see StressOptions).
        auto memOp = [&](std::uint64_t group, int heldLock) {
            Op op;
            const int sharedLines = std::max(1, opt.sharedLines);
            const double k = rng.uniform();
            if (k < opt.rmwFrac)
                op.kind = OpKind::Rmw;
            else if (k < opt.rmwFrac + opt.prefetchFrac)
                op.kind = OpKind::Prefetch;
            else if (k < opt.rmwFrac + opt.prefetchFrac + opt.writeFrac)
                op.kind = OpKind::Write;
            else
                op.kind = OpKind::Read;
            const double r = rng.uniform();
            // In disciplined mode shared lines are eligible only inside
            // a lock section whose lock owns at least one line.
            const bool sharedOk =
                !opt.disciplined ||
                (heldLock >= 0 && heldLock < sharedLines);
            if (r < opt.sharedFrac && sharedOk) {
                op.region = Region::Shared;
                if (opt.disciplined) {
                    // A line of the held lock's partition:
                    // slot ≡ heldLock (mod numLocks), slot < sharedLines.
                    const auto stride =
                        static_cast<std::uint32_t>(prog.numLocks);
                    const std::uint32_t count =
                        (static_cast<std::uint32_t>(sharedLines) - 1u -
                         static_cast<std::uint32_t>(heldLock)) /
                            stride +
                        1u;
                    op.slot = static_cast<std::uint32_t>(heldLock) +
                              stride * static_cast<std::uint32_t>(
                                           rng.range(count));
                } else {
                    op.slot = static_cast<std::uint32_t>(
                        rng.range(sharedLines));
                }
            } else if (r < opt.sharedFrac + opt.falseSharedFrac) {
                // (An ineligible shared roll lands here too: r <
                // sharedFrac implies this bound.)
                op.region = Region::FalseShared;
                op.slot = static_cast<std::uint32_t>(
                    rng.range(std::max(1, opt.falseSharedLines)));
            } else {
                op.region = Region::Private;
                op.slot = static_cast<std::uint32_t>(
                    rng.range(std::max(1, opt.privateLines)));
            }
            op.group = group;
            trace.push_back(op);
        };

        // Plain ops split into (barriers+1) segments with one barrier
        // instance between consecutive segments — every processor sees
        // the same barrier groups in the same order, and lock sections
        // never span a barrier.
        const int segments = barriers + 1;
        for (int seg = 0; seg < segments; ++seg) {
            const int lo = perProc * seg / segments;
            const int hi = perProc * (seg + 1) / segments;
            for (int i = lo; i < hi; ++i) {
                if (rng.uniform() < opt.busyFrac) {
                    trace.push_back(
                        Op{OpKind::Busy, Region::Shared,
                           static_cast<std::uint32_t>(1 + rng.range(64)),
                           0});
                    continue;
                }
                if (rng.uniform() < opt.lockFrac) {
                    const std::uint64_t g = nextLockGroup++;
                    const auto lock = static_cast<std::uint32_t>(
                        rng.range(static_cast<std::uint64_t>(
                            prog.numLocks)));
                    trace.push_back(
                        Op{OpKind::LockAcq, Region::Shared, lock, g});
                    const int body =
                        1 + static_cast<int>(rng.range(3));
                    for (int b = 0; b < body; ++b)
                        memOp(g, static_cast<int>(lock));
                    trace.push_back(
                        Op{OpKind::LockRel, Region::Shared, lock, g});
                    continue;
                }
                memOp(0, -1);
            }
            if (seg + 1 < segments)
                trace.push_back(
                    Op{OpKind::Barrier, Region::Shared, 0,
                       static_cast<std::uint64_t>(seg) + 1});
        }
    }
    return prog;
}

StressReport
execute(const StressProgram& prog, const StressOptions& opt,
        sim::SyncObserver* syncObs)
{
    StressReport rep;
    rep.seed = opt.seed;
    rep.opsExecuted = prog.numOps();

    sim::MachineConfig cfg = opt.machine;
    cfg.numProcs = std::max(1, prog.procs());
    if (cfg.procsPerNode < 1 || cfg.numProcs % cfg.procsPerNode != 0)
        cfg.procsPerNode = 1;
    cfg.check.validateEvery = opt.validateEvery;
    cfg.check.mutation = opt.mutation;

    const int procs = cfg.numProcs;
    const int sharedLines = std::max(1, opt.sharedLines);
    const int fsLines = std::max(1, opt.falseSharedLines);
    const int privLines = std::max(1, opt.privateLines);
    const int numLocks = std::max(1, prog.numLocks);

    try {
        sim::Machine m(cfg);
        const std::uint32_t lineBytes = cfg.lineBytes;
        const sim::Addr sharedBase =
            m.alloc(static_cast<std::uint64_t>(sharedLines) * lineBytes);
        const sim::Addr fsBase =
            m.alloc(static_cast<std::uint64_t>(fsLines) * lineBytes);
        std::vector<sim::Addr> privBase(
            static_cast<std::size_t>(procs));
        for (int p = 0; p < procs; ++p)
            privBase[static_cast<std::size_t>(p)] = m.alloc(
                static_cast<std::uint64_t>(privLines) * lineBytes);

        std::vector<sim::LockId> locks;
        locks.reserve(static_cast<std::size_t>(numLocks));
        for (int l = 0; l < numLocks; ++l)
            locks.push_back(m.lockCreate());
        const sim::BarrierId bar = m.barrierCreate();

        ScOracle oracle(m.mem());
        m.mem().attachCommitObserver(&oracle);
        if (syncObs)
            m.attachSyncObserver(syncObs);

        auto addrOf = [&](int p, const Op& op) -> sim::Addr {
            switch (op.region) {
            case Region::Shared:
                return sharedBase +
                       static_cast<sim::Addr>(op.slot % sharedLines) *
                           lineBytes;
            case Region::FalseShared:
                // Same lines for everyone, but each processor touches
                // its own 8-byte word within the line.
                return fsBase +
                       static_cast<sim::Addr>(op.slot % fsLines) *
                           lineBytes +
                       (static_cast<sim::Addr>(p) * 8) % lineBytes;
            case Region::Private:
                return privBase[static_cast<std::size_t>(p)] +
                       static_cast<sim::Addr>(op.slot % privLines) *
                           lineBytes;
            }
            return sharedBase;
        };

        const sim::RunResult r =
            m.run([&](sim::Cpu& cpu) -> sim::Task {
                const auto& trace =
                    prog.ops[static_cast<std::size_t>(cpu.id())];
                // Locks this processor currently holds: guards against
                // a malformed (hand-shrunk) trace deadlocking on a
                // double acquire or releasing a lock it never took.
                std::unordered_set<int> held;
                int sinceYield = 0;
                for (const Op& op : trace) {
                    switch (op.kind) {
                    case OpKind::Read:
                        cpu.read(addrOf(cpu.id(), op));
                        break;
                    case OpKind::Write:
                        cpu.write(addrOf(cpu.id(), op));
                        break;
                    case OpKind::Rmw:
                        cpu.rmw(addrOf(cpu.id(), op));
                        break;
                    case OpKind::Prefetch:
                        cpu.prefetch(addrOf(cpu.id(), op));
                        break;
                    case OpKind::Busy:
                        cpu.busy(op.slot);
                        break;
                    case OpKind::LockAcq: {
                        const int l =
                            static_cast<int>(op.slot) % numLocks;
                        if (held.insert(l).second)
                            co_await cpu.acquire(
                                locks[static_cast<std::size_t>(l)]);
                        break;
                    }
                    case OpKind::LockRel: {
                        const int l =
                            static_cast<int>(op.slot) % numLocks;
                        if (held.erase(l))
                            cpu.release(
                                locks[static_cast<std::size_t>(l)]);
                        break;
                    }
                    case OpKind::Barrier:
                        co_await cpu.barrier(bar);
                        break;
                    }
                    if (++sinceYield >= 4) {
                        sinceYield = 0;
                        co_await cpu.checkpoint();
                    }
                }
                for (int l : held)
                    cpu.release(locks[static_cast<std::size_t>(l)]);
                co_return;
            });

        rep.finalTime = r.time;
        rep.commits = oracle.commits();
        rep.loadsChecked = oracle.loadsChecked();
        rep.validations = oracle.validations();

        if (oracle.failed()) {
            rep.failed = true;
            rep.message = oracle.violations().front().what;
            rep.failCommit = oracle.violations().front().commit;
        } else {
            const std::string err = m.mem().validateCoherence();
            if (!err.empty()) {
                rep.failed = true;
                rep.message = "final validateCoherence: " + err;
                rep.failCommit = oracle.commits();
            }
        }

        std::uint64_t h = 14695981039346656037ull;
        h = fnv1a(h, static_cast<std::uint64_t>(r.time));
        h = fnv1a(h, oracle.commits());
        for (const sim::ProcStats& st : r.procs) {
            h = fnv1a(h, st.t.busy);
            h = fnv1a(h, st.t.memStall);
            h = fnv1a(h, st.t.syncWait);
            h = fnv1a(h, st.t.syncOp);
            h = fnv1a(h, st.c.loads);
            h = fnv1a(h, st.c.stores);
            h = fnv1a(h, st.c.l2Hits);
            h = fnv1a(h, st.c.missLocal);
            h = fnv1a(h, st.c.missRemoteClean);
            h = fnv1a(h, st.c.missRemoteDirty);
            h = fnv1a(h, st.c.upgrades);
            h = fnv1a(h, st.c.invalsSent);
            h = fnv1a(h, st.c.invalsReceived);
            h = fnv1a(h, st.c.invalsSpurious);
            h = fnv1a(h, st.c.updatesSent);
            h = fnv1a(h, st.c.updatesReceived);
            h = fnv1a(h, st.c.writebacks);
            h = fnv1a(h, st.c.prefetchesIssued);
            h = fnv1a(h, st.c.prefetchesUseful);
            h = fnv1a(h, st.c.lockAcquires);
            h = fnv1a(h, st.c.barriersPassed);
        }
        rep.stateHash = h;
    } catch (const std::exception& e) {
        rep.failed = true;
        rep.message = std::string("simulator error: ") + e.what();
    }
    return rep;
}

StressReport
runStress(const StressOptions& opt)
{
    return execute(generate(opt), opt);
}

std::string
formatWitness(const StressProgram& prog)
{
    std::ostringstream os;
    os << prog.numOps() << " ops over " << prog.procs()
       << " processors\n";
    for (int p = 0; p < prog.procs(); ++p) {
        const auto& trace = prog.ops[static_cast<std::size_t>(p)];
        if (trace.empty())
            continue;
        os << "  proc " << p << ":\n";
        for (const Op& op : trace) {
            os << "    " << kindName(op.kind);
            if (isMemOp(op.kind))
                os << ' ' << regionName(op.region) << '[' << op.slot
                   << ']';
            else if (op.kind == OpKind::Busy)
                os << ' ' << op.slot << " cycles";
            else if (op.kind == OpKind::LockAcq ||
                     op.kind == OpKind::LockRel)
                os << " lock " << op.slot;
            if (op.group != 0)
                os << "  (group " << op.group << ')';
            os << '\n';
        }
    }
    return os.str();
}

} // namespace ccnuma::check
