#include "check/oracle.hh"

#include <sstream>

namespace ccnuma::check {

ScOracle::ScOracle(const sim::MemSys& mem)
    : mem_(mem),
      cadence_(mem.config().check.validateEvery),
      updateBased_(
          sim::Protocol::get(mem.config().protocol.kind).updateBased),
      cached_(mem.config().numProcs)
{
}

std::string
ScOracle::lineStr(sim::LineAddr line)
{
    std::ostringstream os;
    os << "0x" << std::hex << line;
    return os.str();
}

void
ScOracle::record(std::string what, sim::ProcId p, sim::LineAddr line)
{
    if (violations_.size() >= kMaxViolations)
        return;
    violations_.push_back(
        Violation{std::move(what), commit_, p, line});
}

void
ScOracle::maybeValidate()
{
    if (cadence_ == 0 || commit_ % cadence_ != 0)
        return;
    ++validations_;
    const std::string err = mem_.validateCoherence();
    if (!err.empty())
        record("validateCoherence: " + err, sim::kNoProc, 0);
}

void
ScOracle::onLoad(sim::ProcId p, sim::LineAddr line, sim::DataSource src,
                 sim::ProcId supplier)
{
    ++commit_;
    Version observed = 0;
    bool have = true;
    switch (src) {
    case sim::DataSource::CacheHit: {
        const auto it = cached_[p].find(line);
        if (it == cached_[p].end()) {
            record("proc " + std::to_string(p) + " hit line " +
                       lineStr(line) +
                       " that the protocol never installed "
                       "(shadow-cache desync)",
                   p, line);
            have = false;
        } else {
            observed = it->second;
        }
        break;
    }
    case sim::DataSource::Memory: {
        const auto it = memImage_.find(line);
        observed = it == memImage_.end() ? 0 : it->second;
        cached_[p][line] = observed;
        break;
    }
    case sim::DataSource::Owner: {
        const auto it = supplier >= 0 &&
                                static_cast<std::size_t>(supplier) <
                                    cached_.size()
                            ? cached_[supplier].find(line)
                            : cached_[p].end();
        if (supplier < 0 ||
            static_cast<std::size_t>(supplier) >= cached_.size() ||
            it == cached_[supplier].end()) {
            record("proc " + std::to_string(p) + " filled line " +
                       lineStr(line) + " from owner " +
                       std::to_string(supplier) +
                       " that holds no copy (shadow-cache desync)",
                   p, line);
            have = false;
        } else {
            observed = it->second;
            cached_[p][line] = observed;
        }
        break;
    }
    }
    if (have) {
        ++loadsChecked_;
        const auto g = golden_.find(line);
        const Written expect =
            g == golden_.end() ? Written{} : g->second;
        if (observed != expect.version) {
            std::ostringstream os;
            os << "SC violation: proc " << p << " load of line "
               << lineStr(line) << " observed stale value v" << observed
               << " (source "
               << (src == sim::DataSource::CacheHit ? "cache hit"
                   : src == sim::DataSource::Memory ? "memory fill"
                                                    : "owner transfer")
               << "); golden memory holds v" << expect.version;
            if (expect.writer != sim::kNoProc)
                os << " written by proc " << expect.writer
                   << " at commit " << expect.commit;
            record(os.str(), p, line);
        }
    }
    maybeValidate();
}

void
ScOracle::onStore(sim::ProcId p, sim::LineAddr line)
{
    ++commit_;
    // Single-writer invariant: a store commits only after every other
    // copy has been invalidated. A skipped invalidation fails here at
    // the very store that should have killed the stale copy. Does not
    // apply under an update-based protocol (Dragon), where remote
    // copies legitimately survive a store and are refreshed by the
    // onUpdate commits that follow it; a *missed* update still fails
    // at the stale copy's next load.
    if (!updateBased_) {
        for (std::size_t q = 0; q < cached_.size(); ++q) {
            if (static_cast<sim::ProcId>(q) == p)
                continue;
            if (cached_[q].count(line)) {
                record("single-writer violation: store by proc " +
                           std::to_string(p) + " to line " +
                           lineStr(line) + " committed while proc " +
                           std::to_string(q) +
                           " still holds a copy (missed invalidation)",
                       p, line);
            }
        }
    }
    const Version v = ++nextVersion_;
    golden_[line] = Written{v, p, commit_};
    cached_[p][line] = v;
    maybeValidate();
}

void
ScOracle::onInval(sim::ProcId p, sim::LineAddr line)
{
    if (cached_[p].erase(line) == 0)
        record("protocol invalidated line " + lineStr(line) +
                   " at proc " + std::to_string(p) +
                   " which holds no copy (shadow-cache desync)",
               p, line);
}

void
ScOracle::onUpdate(sim::ProcId p, sim::LineAddr line)
{
    // An update transaction refreshed proc p's copy in place with the
    // store that just committed; golden_[line] holds that version.
    const auto it = cached_[p].find(line);
    if (it == cached_[p].end()) {
        record("protocol updated line " + lineStr(line) + " at proc " +
                   std::to_string(p) +
                   " which holds no copy (shadow-cache desync)",
               p, line);
        return;
    }
    const auto g = golden_.find(line);
    it->second = g == golden_.end() ? 0 : g->second.version;
}

void
ScOracle::onDowngrade(sim::ProcId owner, sim::LineAddr line)
{
    const auto it = cached_[owner].find(line);
    if (it == cached_[owner].end()) {
        record("protocol downgraded line " + lineStr(line) +
                   " at proc " + std::to_string(owner) +
                   " which holds no copy (shadow-cache desync)",
               owner, line);
        return;
    }
    memImage_[line] = it->second; // dirty data written back to home
}

void
ScOracle::onShareDirty(sim::ProcId owner, sim::LineAddr line)
{
    // Owner-forwarding read sharing (MOESI Owned / Dragon Sm): the
    // owner supplied the reader directly and memory stays stale —
    // unlike onDowngrade there is NO memImage_ write. The reader's
    // own fill is checked by the onLoad(Owner) that follows.
    if (cached_[owner].count(line) == 0)
        record("owner-forward of line " + lineStr(line) +
                   " from proc " + std::to_string(owner) +
                   " which holds no copy (shadow-cache desync)",
               owner, line);
}

void
ScOracle::onWriteback(sim::ProcId p, sim::LineAddr line)
{
    const auto it = cached_[p].find(line);
    if (it == cached_[p].end()) {
        record("writeback of line " + lineStr(line) + " from proc " +
                   std::to_string(p) +
                   " which holds no copy (shadow-cache desync)",
               p, line);
        return;
    }
    memImage_[line] = it->second;
    cached_[p].erase(it);
}

void
ScOracle::onEvict(sim::ProcId p, sim::LineAddr line)
{
    if (cached_[p].erase(line) == 0)
        record("clean eviction of line " + lineStr(line) +
                   " from proc " + std::to_string(p) +
                   " which holds no copy (shadow-cache desync)",
               p, line);
}

} // namespace ccnuma::check
