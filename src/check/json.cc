#include "check/json.hh"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace ccnuma::check::json {

const Value*
Value::find(const std::string& key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto& [k, v] : obj)
        if (k == key)
            return &v;
    return nullptr;
}

std::uint64_t
Value::asU64() const
{
    if (!isNumber())
        return 0;
    return std::strtoull(raw.c_str(), nullptr, 10);
}

namespace {

/** Single-pass parser over the document text. */
class Parser
{
  public:
    explicit Parser(const std::string& text) : s_(text) {}

    ParseResult
    run()
    {
        ParseResult out;
        skipWs();
        if (!parseValue(out.root)) {
            out.error = errorAt();
            return out;
        }
        skipWs();
        if (pos_ != s_.size()) {
            fail("trailing garbage after document root");
            out.error = errorAt();
            return out;
        }
        out.ok = true;
        return out;
    }

  private:
    bool
    fail(const std::string& msg)
    {
        if (err_.empty())
            err_ = msg;
        return false;
    }

    std::string
    errorAt() const
    {
        std::ostringstream os;
        os << "offset " << pos_ << ": " << err_;
        return os.str();
    }

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
                s_[pos_] == '\r'))
            ++pos_;
    }

    bool
    literal(const char* word, std::size_t n)
    {
        if (s_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    bool
    parseValue(Value& v)
    {
        if (pos_ >= s_.size())
            return fail("unexpected end of document");
        const char c = s_[pos_];
        switch (c) {
        case '{': return parseObject(v);
        case '[': return parseArray(v);
        case '"': v.kind = Value::Kind::String; return parseString(v.str);
        case 't':
            if (!literal("true", 4))
                return fail("bad token (expected 'true')");
            v.kind = Value::Kind::Bool;
            v.boolean = true;
            return true;
        case 'f':
            if (!literal("false", 5))
                return fail("bad token (expected 'false')");
            v.kind = Value::Kind::Bool;
            v.boolean = false;
            return true;
        case 'n':
            if (!literal("null", 4))
                return fail("bad token (expected 'null')");
            v.kind = Value::Kind::Null;
            return true;
        case 'N': case 'I':
            return fail("NaN/Infinity are not valid JSON");
        default:
            if (c == '-' || (c >= '0' && c <= '9'))
                return parseNumber(v);
            return fail(std::string("unexpected character '") + c + "'");
        }
    }

    bool
    parseNumber(Value& v)
    {
        const std::size_t start = pos_;
        if (pos_ < s_.size() && s_[pos_] == '-')
            ++pos_;
        if (pos_ < s_.size() && (s_[pos_] == 'N' || s_[pos_] == 'I'))
            return fail("NaN/Infinity are not valid JSON");
        bool digits = false;
        while (pos_ < s_.size() &&
               std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
            ++pos_;
            digits = true;
        }
        if (!digits)
            return fail("malformed number");
        if (pos_ < s_.size() && s_[pos_] == '.') {
            ++pos_;
            if (pos_ >= s_.size() ||
                !std::isdigit(static_cast<unsigned char>(s_[pos_])))
                return fail("malformed number (no digits after '.')");
            while (pos_ < s_.size() &&
                   std::isdigit(static_cast<unsigned char>(s_[pos_])))
                ++pos_;
        }
        if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-'))
                ++pos_;
            if (pos_ >= s_.size() ||
                !std::isdigit(static_cast<unsigned char>(s_[pos_])))
                return fail("malformed number (empty exponent)");
            while (pos_ < s_.size() &&
                   std::isdigit(static_cast<unsigned char>(s_[pos_])))
                ++pos_;
        }
        v.kind = Value::Kind::Number;
        v.raw = s_.substr(start, pos_ - start);
        v.number = std::strtod(v.raw.c_str(), nullptr);
        return true;
    }

    bool
    parseString(std::string& out)
    {
        ++pos_; // opening quote
        out.clear();
        while (pos_ < s_.size()) {
            const char c = s_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("unescaped control character in string");
            if (c != '\\') {
                out += c;
                ++pos_;
                continue;
            }
            if (++pos_ >= s_.size())
                return fail("unterminated escape");
            const char e = s_[pos_++];
            switch (e) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'n': out += '\n'; break;
            case 'r': out += '\r'; break;
            case 't': out += '\t'; break;
            case 'u': {
                if (pos_ + 4 > s_.size())
                    return fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = s_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad hex digit in \\u escape");
                }
                // Metrics files are ASCII; encode BMP points as UTF-8.
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xC0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (code >> 12));
                    out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
            }
            default: return fail("unknown escape");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseArray(Value& v)
    {
        v.kind = Value::Kind::Array;
        ++pos_; // '['
        skipWs();
        if (pos_ < s_.size() && s_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            Value elem;
            skipWs();
            if (!parseValue(elem))
                return false;
            v.arr.push_back(std::move(elem));
            skipWs();
            if (pos_ >= s_.size())
                return fail("unterminated array");
            if (s_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (s_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']' in array");
        }
    }

    bool
    parseObject(Value& v)
    {
        v.kind = Value::Kind::Object;
        ++pos_; // '{'
        skipWs();
        if (pos_ < s_.size() && s_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (pos_ >= s_.size() || s_[pos_] != '"')
                return fail("expected object key string");
            std::string key;
            if (!parseString(key))
                return false;
            for (const auto& [k, unused] : v.obj) {
                (void)unused;
                if (k == key)
                    return fail("duplicate object key \"" + key + "\"");
            }
            skipWs();
            if (pos_ >= s_.size() || s_[pos_] != ':')
                return fail("expected ':' after object key");
            ++pos_;
            skipWs();
            Value member;
            if (!parseValue(member))
                return false;
            v.obj.emplace_back(std::move(key), std::move(member));
            skipWs();
            if (pos_ >= s_.size())
                return fail("unterminated object");
            if (s_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (s_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}' in object");
        }
    }

    const std::string& s_;
    std::size_t pos_ = 0;
    std::string err_;
};

} // namespace

ParseResult
parse(const std::string& text)
{
    return Parser(text).run();
}

ParseResult
parseFile(const std::string& path)
{
    std::ifstream f(path, std::ios::binary);
    if (!f) {
        ParseResult out;
        out.error = "cannot open " + path;
        return out;
    }
    std::ostringstream ss;
    ss << f.rdbuf();
    return parse(ss.str());
}

} // namespace ccnuma::check::json
