#include "check/golden.hh"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "apps/registry.hh"
#include "check/json.hh"
#include "core/study.hh"
#include "sim/config.hh"

namespace ccnuma::check {

namespace {

/// Relative tolerance for the derived speedup double (absorbs decimal
/// formatting round-trips; everything else compares exactly).
constexpr double kSpeedupRelEps = 1e-9;

std::string
fmtDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

bool
doublesClose(double a, double b)
{
    const double scale = std::fmax(std::fabs(a), std::fabs(b));
    return std::fabs(a - b) <= kSpeedupRelEps * std::fmax(scale, 1.0);
}

struct CounterField {
    const char* key;
    std::uint64_t GoldenEntry::* member;
};

constexpr CounterField kCounters[] = {
    {"loads", &GoldenEntry::loads},
    {"stores", &GoldenEntry::stores},
    {"l2Hits", &GoldenEntry::l2Hits},
    {"missLocal", &GoldenEntry::missLocal},
    {"missRemoteClean", &GoldenEntry::missRemoteClean},
    {"missRemoteDirty", &GoldenEntry::missRemoteDirty},
    {"upgrades", &GoldenEntry::upgrades},
    {"invalsSent", &GoldenEntry::invalsSent},
    {"writebacks", &GoldenEntry::writebacks},
    {"lockAcquires", &GoldenEntry::lockAcquires},
    {"barriersPassed", &GoldenEntry::barriersPassed},
};

} // namespace

std::uint64_t
goldenSize(const std::string& app)
{
    if (app.rfind("fft", 0) == 0)
        return 1u << 14;
    if (app.rfind("ocean", 0) == 0)
        return 130;
    if (app.rfind("radix", 0) == 0 || app.rfind("samplesort", 0) == 0)
        return 1u << 16;
    if (app.rfind("barnes", 0) == 0)
        return 2048;
    if (app.rfind("water", 0) == 0)
        return 512;
    if (app.rfind("raytrace", 0) == 0)
        return 32;
    if (app.rfind("volrend", 0) == 0 || app.rfind("shearwarp", 0) == 0)
        return 32;
    if (app.rfind("infer", 0) == 0)
        return 64;
    if (app.rfind("protein", 0) == 0)
        return 8;
    return 0;
}

GoldenSnapshot
computeGolden(int procs, int simJobs)
{
    GoldenSnapshot snap;
    snap.procs = procs;
    sim::MachineConfig cfg = sim::MachineConfig::origin2000(procs);
    cfg.simJobs = simJobs;
    for (const std::string& name : apps::listApps()) {
        const std::uint64_t size = goldenSize(name);
        const core::Measurement m = core::measure(
            cfg, [&] { return apps::makeApp(name, size); });
        GoldenEntry e;
        e.name = name;
        e.size = size;
        e.seqTime = m.seqTime;
        e.parTime = m.parTime;
        e.speedup = m.speedup();
        const sim::ProcCounters c = m.par.totals();
        e.loads = c.loads;
        e.stores = c.stores;
        e.l2Hits = c.l2Hits;
        e.missLocal = c.missLocal;
        e.missRemoteClean = c.missRemoteClean;
        e.missRemoteDirty = c.missRemoteDirty;
        e.upgrades = c.upgrades;
        e.invalsSent = c.invalsSent;
        e.writebacks = c.writebacks;
        e.lockAcquires = c.lockAcquires;
        e.barriersPassed = c.barriersPassed;
        snap.entries.push_back(std::move(e));
    }
    return snap;
}

std::string
toJson(const GoldenSnapshot& snap)
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"schema\": \"ccnuma-golden-metrics\",\n";
    os << "  \"version\": " << snap.version << ",\n";
    os << "  \"procs\": " << snap.procs << ",\n";
    os << "  \"apps\": [\n";
    for (std::size_t i = 0; i < snap.entries.size(); ++i) {
        const GoldenEntry& e = snap.entries[i];
        os << "    {\"name\": \"" << e.name << "\", \"size\": " << e.size
           << ",\n";
        os << "     \"seqTime\": " << e.seqTime
           << ", \"parTime\": " << e.parTime
           << ", \"speedup\": " << fmtDouble(e.speedup) << ",\n";
        os << "     \"counters\": {";
        bool first = true;
        for (const CounterField& f : kCounters) {
            if (!first)
                os << ", ";
            first = false;
            os << '"' << f.key << "\": " << e.*(f.member);
        }
        os << "}}";
        os << (i + 1 < snap.entries.size() ? ",\n" : "\n");
    }
    os << "  ]\n";
    os << "}\n";
    return os.str();
}

bool
loadGoldenFile(const std::string& path, GoldenSnapshot& out,
               std::string& err)
{
    const json::ParseResult pr = json::parseFile(path);
    if (!pr.ok) {
        err = path + ": " + pr.error;
        return false;
    }
    const json::Value& root = pr.root;
    if (!root.isObject()) {
        err = path + ": root is not an object";
        return false;
    }
    const json::Value* schema = root.find("schema");
    if (!schema || !schema->isString() ||
        schema->str != "ccnuma-golden-metrics") {
        err = path + ": not a ccnuma-golden-metrics file";
        return false;
    }
    const json::Value* version = root.find("version");
    if (!version || !version->isNumber()) {
        err = path + ": missing version";
        return false;
    }
    out.version = static_cast<int>(version->asU64());
    if (out.version != 1) {
        err = path + ": unsupported version " +
              std::to_string(out.version);
        return false;
    }
    const json::Value* procs = root.find("procs");
    if (!procs || !procs->isNumber()) {
        err = path + ": missing procs";
        return false;
    }
    out.procs = static_cast<int>(procs->asU64());
    const json::Value* apps = root.find("apps");
    if (!apps || !apps->isArray()) {
        err = path + ": missing apps array";
        return false;
    }
    out.entries.clear();
    for (const json::Value& v : apps->arr) {
        const json::Value* name = v.find("name");
        const json::Value* size = v.find("size");
        const json::Value* seq = v.find("seqTime");
        const json::Value* par = v.find("parTime");
        const json::Value* spd = v.find("speedup");
        const json::Value* counters = v.find("counters");
        if (!name || !name->isString() || !size || !size->isNumber() ||
            !seq || !seq->isNumber() || !par || !par->isNumber() ||
            !spd || !spd->isNumber() || !counters ||
            !counters->isObject()) {
            err = path + ": malformed app entry";
            return false;
        }
        GoldenEntry e;
        e.name = name->str;
        e.size = size->asU64();
        e.seqTime = seq->asU64();
        e.parTime = par->asU64();
        e.speedup = spd->asDouble();
        for (const CounterField& f : kCounters) {
            const json::Value* c = counters->find(f.key);
            if (!c || !c->isNumber()) {
                err = path + ": app " + e.name +
                      " missing counter " + f.key;
                return false;
            }
            e.*(f.member) = c->asU64();
        }
        out.entries.push_back(std::move(e));
    }
    return true;
}

bool
writeGoldenFile(const std::string& path, const GoldenSnapshot& snap,
                std::string& err)
{
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    if (!f) {
        err = "cannot open " + path + " for writing";
        return false;
    }
    f << toJson(snap);
    f.flush();
    if (!f) {
        err = "write to " + path + " failed";
        return false;
    }
    return true;
}

std::vector<std::string>
diffGolden(const GoldenSnapshot& baseline, const GoldenSnapshot& current)
{
    std::vector<std::string> diffs;
    if (baseline.procs != current.procs)
        diffs.push_back("machine size: baseline procs=" +
                        std::to_string(baseline.procs) + ", current=" +
                        std::to_string(current.procs));

    auto findIn = [](const GoldenSnapshot& s,
                     const std::string& name) -> const GoldenEntry* {
        for (const GoldenEntry& e : s.entries)
            if (e.name == name)
                return &e;
        return nullptr;
    };

    for (const GoldenEntry& b : baseline.entries) {
        const GoldenEntry* c = findIn(current, b.name);
        if (!c) {
            diffs.push_back(b.name +
                            ": present in baseline, missing from "
                            "current run");
            continue;
        }
        auto intDiff = [&](const char* what, std::uint64_t bv,
                           std::uint64_t cv) {
            if (bv != cv)
                diffs.push_back(b.name + ": " + what + " " +
                                std::to_string(cv) + " != baseline " +
                                std::to_string(bv));
        };
        intDiff("size", b.size, c->size);
        intDiff("seqTime", b.seqTime, c->seqTime);
        intDiff("parTime", b.parTime, c->parTime);
        if (!doublesClose(b.speedup, c->speedup))
            diffs.push_back(b.name + ": speedup " +
                            fmtDouble(c->speedup) + " != baseline " +
                            fmtDouble(b.speedup));
        for (const CounterField& f : kCounters)
            intDiff(f.key, b.*(f.member), c->*(f.member));
    }
    for (const GoldenEntry& c : current.entries)
        if (!findIn(baseline, c.name))
            diffs.push_back(c.name +
                            ": new app missing from baseline (re-bless "
                            "tests/golden)");
    return diffs;
}

} // namespace ccnuma::check
