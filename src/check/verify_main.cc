/**
 * @file
 * ccnuma_verify: command-line driver for the verification harness.
 *
 *   ccnuma_verify stress [--seed=N] [--seeds=K] [--procs=P] [--ops=N]
 *                        [--shrink] [--mutate]
 *       Run K consecutive randomized stress programs starting at seed
 *       N under the SC oracle. On failure, replays the seed to confirm
 *       bit-identical reproduction, then (with --shrink, the default
 *       for failures) prints a minimized witness. --mutate runs with
 *       the deliberately broken SkipInvalidation protocol and inverts
 *       the exit logic: success means the oracle caught the break.
 *
 *   ccnuma_verify golden [--procs=P] [--bless] [--out=FILE|--check=FILE]
 *       Recompute the golden-metrics snapshot for every registered
 *       app. --check diffs against a committed baseline (default
 *       tests/golden/metrics-v1.json); --bless rewrites it.
 *
 * Exit status: 0 = verified, 1 = verification failure, 2 = usage.
 */

#include <cstdio>
#include <string>

#include "check/golden.hh"
#include "check/shrink.hh"
#include "check/stress.hh"
#include "core/cli.hh"

namespace {

using namespace ccnuma;

constexpr const char* kUsage =
    "usage: ccnuma_verify stress [--seed=N] [--seeds=K] [--procs=P]\n"
    "                            [--ops=N] [--shrink] [--mutate]\n"
    "       ccnuma_verify golden [--procs=P] [--bless]\n"
    "                            [--out=FILE|--check=FILE]\n";

std::string
defaultGoldenPath()
{
#ifdef CCNUMA_GOLDEN_DIR
    return std::string(CCNUMA_GOLDEN_DIR) + "/metrics-v1.json";
#else
    return "tests/golden/metrics-v1.json";
#endif
}

bool
takeU64(core::cli::Options& opt, const std::string& name,
        std::uint64_t& out)
{
    std::string v;
    if (!opt.takeFlag(name, v))
        return true;
    if (!core::cli::parseU64(v, out)) {
        std::fprintf(stderr, "malformed --%s=%s\n", name.c_str(),
                     v.c_str());
        return false;
    }
    return true;
}

int
runStressCmd(core::cli::Options& opt)
{
    std::uint64_t seeds = 1;
    std::uint64_t procs = 8;
    std::uint64_t ops = 250;
    if (!takeU64(opt, "seeds", seeds) || !takeU64(opt, "procs", procs) ||
        !takeU64(opt, "ops", ops))
        return 2;
    const bool shrinkWitness = opt.takeSwitch("shrink");
    const bool mutate = opt.takeSwitch("mutate");
    if (!core::cli::warnUnknown(opt))
        return 2;

    check::StressOptions base;
    base.seed = opt.seed;
    base.procs = static_cast<int>(procs);
    base.opsPerProc = static_cast<int>(ops);
    if (mutate) {
#ifdef CCNUMA_CHECK_MUTATE
        base.mutation = sim::CheckMutation::SkipInvalidation;
#else
        std::fprintf(stderr,
                     "mutation hooks not compiled in "
                     "(build with -DCCNUMA_CHECK_MUTATE=ON)\n");
        return 2;
#endif
    }

    std::uint64_t failures = 0;
    for (std::uint64_t i = 0; i < seeds; ++i) {
        check::StressOptions o = base;
        o.seed = base.seed + i;
        const check::StressReport rep = check::runStress(o);
        std::printf("seed %llu: %llu commits, %llu loads checked, "
                    "%llu validations, %s\n",
                    static_cast<unsigned long long>(o.seed),
                    static_cast<unsigned long long>(rep.commits),
                    static_cast<unsigned long long>(rep.loadsChecked),
                    static_cast<unsigned long long>(rep.validations),
                    rep.failed ? "FAILED" : "ok");
        if (!rep.failed)
            continue;
        ++failures;
        std::printf("  first violation (commit %llu): %s\n",
                    static_cast<unsigned long long>(rep.failCommit),
                    rep.message.c_str());
        const check::StressReport replay = check::runStress(o);
        std::printf("  replay: %s\n",
                    replay == rep ? "bit-identical"
                                  : "MISMATCH (non-deterministic!)");
        if (shrinkWitness || mutate) {
            const check::ShrinkResult sh =
                check::shrink(check::generate(o), o);
            std::printf("  shrunk witness: %llu ops (from %llu, "
                        "%d runs)\n",
                        static_cast<unsigned long long>(sh.opsAfter),
                        static_cast<unsigned long long>(sh.opsBefore),
                        sh.runs);
            std::printf("%s", check::formatWitness(sh.program).c_str());
            std::printf("  witness failure: %s\n",
                        sh.report.message.c_str());
        }
    }

    if (mutate) {
        // Self-test: a broken protocol MUST be detected.
        if (failures == seeds) {
            std::printf("mutation caught on %llu/%llu seed(s): the "
                        "oracle has teeth\n",
                        static_cast<unsigned long long>(failures),
                        static_cast<unsigned long long>(seeds));
            return 0;
        }
        std::fprintf(stderr,
                     "mutation UNDETECTED on %llu/%llu seed(s)\n",
                     static_cast<unsigned long long>(seeds - failures),
                     static_cast<unsigned long long>(seeds));
        return 1;
    }
    return failures == 0 ? 0 : 1;
}

int
runGoldenCmd(core::cli::Options& opt)
{
    std::uint64_t procs = 4;
    if (!takeU64(opt, "procs", procs))
        return 2;
    std::string outPath;
    std::string checkPath;
    const bool hasOut = opt.takeFlag("out", outPath);
    const bool hasCheck = opt.takeFlag("check", checkPath);
    const bool bless = opt.takeSwitch("bless");
    if (!core::cli::warnUnknown(opt))
        return 2;
    if (hasOut && hasCheck) {
        std::fprintf(stderr, "--out and --check are exclusive\n");
        return 2;
    }

    const check::GoldenSnapshot current =
        check::computeGolden(static_cast<int>(procs));

    if (bless || hasOut) {
        const std::string path = hasOut ? outPath : defaultGoldenPath();
        std::string err;
        if (!check::writeGoldenFile(path, current, err)) {
            std::fprintf(stderr, "%s\n", err.c_str());
            return 1;
        }
        std::printf("blessed %zu app baselines -> %s\n",
                    current.entries.size(), path.c_str());
        return 0;
    }

    const std::string path = hasCheck ? checkPath : defaultGoldenPath();
    check::GoldenSnapshot baseline;
    std::string err;
    if (!check::loadGoldenFile(path, baseline, err)) {
        std::fprintf(stderr, "%s\n", err.c_str());
        return 1;
    }
    const std::vector<std::string> diffs =
        check::diffGolden(baseline, current);
    if (diffs.empty()) {
        std::printf("golden metrics match %s (%zu apps)\n", path.c_str(),
                    baseline.entries.size());
        return 0;
    }
    std::fprintf(stderr, "golden metrics diverge from %s:\n",
                 path.c_str());
    for (const std::string& d : diffs)
        std::fprintf(stderr, "  %s\n", d.c_str());
    std::fprintf(stderr,
                 "re-bless with `ccnuma_verify golden --bless` if "
                 "intentional\n");
    return 1;
}

} // namespace

int
main(int argc, char** argv)
{
    core::cli::Options opt = core::cli::parse(argc, argv);
    if (opt.positional.empty()) {
        std::fprintf(stderr, "%s", kUsage);
        return 2;
    }
    const std::string cmd = opt.positional[0];
    if (cmd == "stress")
        return runStressCmd(opt);
    if (cmd == "golden")
        return runGoldenCmd(opt);
    std::fprintf(stderr, "unknown command '%s'\n%s", cmd.c_str(),
                 kUsage);
    return 2;
}
