/**
 * @file
 * ccnuma_verify: command-line driver for the verification harness.
 *
 *   ccnuma_verify stress [--seed=N] [--seeds=K] [--procs=P] [--ops=N]
 *                        [--shrink] [--mutate]
 *       Run K consecutive randomized stress programs starting at seed
 *       N under the SC oracle. On failure, replays the seed to confirm
 *       bit-identical reproduction, then (with --shrink, the default
 *       for failures) prints a minimized witness. --mutate runs with
 *       the deliberately broken SkipInvalidation protocol and inverts
 *       the exit logic: success means the oracle caught the break.
 *
 *   ccnuma_verify golden [--procs=P] [--bless] [--out=FILE|--check=FILE]
 *       Recompute the golden-metrics snapshot for every registered
 *       app. --check diffs against a committed baseline (default
 *       tests/golden/metrics-v1.json); --bless rewrites it.
 *
 *   ccnuma_verify races [--app=NAME|--all] [--procs=P] [--seed=N]
 *                       [--seeds=K] [--ops=N] [--mutate] [--json=FILE]
 *       Happens-before race analysis (ccnuma::analyze). Default /
 *       --all: run every registered app at its golden size under the
 *       race detector and expect zero races; --app restricts to one.
 *       --mutate instead runs disciplined stress programs first clean
 *       (must be race-free) and then under the DropLockAcquire
 *       protocol mutation (must race), shrinking the racy program to a
 *       minimal witness — the detector's end-to-end self-test.
 *       --json dumps per-app detector statistics via core::MetricsSink.
 *
 *   ccnuma_verify diagnose [--app=NAME|--all] [--procs=P1,P2,..]
 *                          [--size=N] [--epoch-cycles=N] [--jobs=N]
 *                          [--json=FILE] [--html=FILE]
 *       Automated scaling-loss diagnosis (ccnuma::diagnose): run each
 *       app across the machine-size grid (default 1,8,32; the smallest
 *       is the reference) and print a ranked verdict — lock
 *       serialization vs barrier imbalance vs Hub contention vs data
 *       placement vs cache capacity — backed by the counters and
 *       latency histograms that say so. --json writes the verdicts as
 *       one deterministic JSON document; --html writes a
 *       self-contained dashboard (verdict cards, per-epoch stacked
 *       breakdown, miss-latency heatmap, hot-line table).
 *
 *   ccnuma_verify protocols [--seeds=K] [--procs=P] [--ops=N]
 *                           [--apps=A,B,..] [--diag-procs=P1,P2,..]
 *                           [--json=FILE]
 *       Sweep the full coherence cross-product — {mesi, moesi, dragon}
 *       x {fullbv, coarse:4, ptr:2} — and for every combination run
 *       K-seed randomized stress under the SC oracle, the all-apps
 *       oracle sweep, the all-apps race analysis, and a scaling
 *       diagnosis of the --apps subset. Prints a comparison grid and
 *       flags apps whose scaling verdict differs across combinations.
 *
 *   ccnuma_verify model [--procs=P1,P2,..] [--max-states=N]
 *                       [--no-symmetry] [--json=FILE]
 *                       [--mutate=skip-inval|drop-owned-writeback|
 *                        corrupt-moesi-table]
 *       Exhaustive Murphi-style model check (ccnuma::model): BFS-
 *       enumerate every reachable global state of one cache line —
 *       directory entry, per-processor line states, in-flight
 *       prefetch fills — through the real protocol engine, checking
 *       the single-writer / data-value / memory-currency / fan-out
 *       invariant battery at every transition, with symmetry
 *       reduction over processor permutation. The default sweeps the
 *       full {mesi,moesi,dragon} x {fullbv,coarse:4,ptr:2} matrix at
 *       P=2,3,4 and expects zero violations. --mutate inverts the
 *       exit logic: the deliberately corrupted protocol must be
 *       *caught* on every combination where it is expressible, each
 *       with a shortest replayable counterexample.
 *
 *   ccnuma_verify help  (also --help, -h)
 *       Print the full subcommand reference and exit 0.
 *
 * stress, races, diagnose, model and protocols-member runs all accept
 * --protocol=mesi|moesi|dragon and --dir-format=fullbv|coarse:K|ptr:N
 * (CCNUMA_PROTOCOL / CCNUMA_DIR) to pick the coherence machine;
 * golden intentionally does not: the committed baseline pins the
 * default MESI + full-bit-vector machine.
 *
 * Exit status: 0 = verified, 1 = verification failure, 2 = usage.
 */

#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "analyze/sweep.hh"
#include "apps/registry.hh"
#include "check/golden.hh"
#include "check/oracle.hh"
#include "check/shrink.hh"
#include "check/stress.hh"
#include "core/cli.hh"
#include "core/metrics.hh"
#include "diagnose/diagnose.hh"
#include "diagnose/html.hh"
#include "model/checker.hh"
#include "sim/machine.hh"

namespace {

using namespace ccnuma;

constexpr const char* kUsage =
    "usage: ccnuma_verify <command> [flags]\n"
    "\n"
    "  stress    randomized programs under the sequential-consistency\n"
    "            oracle, with replay + witness shrinking on failure\n"
    "              [--seed=N] [--seeds=K] [--procs=P] [--ops=N]\n"
    "              [--shrink] [--mutate]\n"
    "  golden    recompute the per-app golden-metrics snapshot and\n"
    "            diff (or --bless) the committed baseline\n"
    "              [--procs=P] [--bless] [--out=FILE|--check=FILE]\n"
    "  races     happens-before race analysis over the registered\n"
    "            apps, or detector self-test with --mutate\n"
    "              [--app=NAME|--all] [--procs=P] [--seed=N]\n"
    "              [--seeds=K] [--ops=N] [--mutate] [--json=FILE]\n"
    "  diagnose  automated scaling-loss diagnosis: ranked verdict per\n"
    "            app (lock serialization / barrier imbalance / Hub\n"
    "            contention / data placement / capacity) from a\n"
    "            machine-size sweep\n"
    "              [--app=NAME|--all] [--procs=P1,P2,..] [--size=N]\n"
    "              [--epoch-cycles=N] [--jobs=N] [--json=FILE]\n"
    "              [--html=FILE]\n"
    "  protocols sweep the protocol x directory-format cross-product\n"
    "            ({mesi,moesi,dragon} x {fullbv,coarse:4,ptr:2}):\n"
    "            per combination, seeded stress + all-apps oracle\n"
    "            sweep + all-apps race analysis + scaling diagnosis of\n"
    "            the --apps subset, printed as a comparison grid\n"
    "              [--seeds=K] [--procs=P] [--ops=N] [--apps=A,B,..]\n"
    "              [--diag-procs=P1,P2,..] [--json=FILE]\n"
    "  model     exhaustive model check of one cache line: enumerate\n"
    "            every reachable global state through the real engine\n"
    "            and prove the coherence invariants, or catch a\n"
    "            --mutate corruption with a minimal replayable\n"
    "            counterexample; default sweeps all 9 protocol x\n"
    "            directory-format combos at P=2,3,4\n"
    "              [--procs=P1,P2,..] [--max-states=N] [--no-symmetry]\n"
    "              [--json=FILE] [--mutate=skip-inval|\n"
    "               drop-owned-writeback|corrupt-moesi-table]\n"
    "  help      print this reference (also --help, -h)\n"
    "\n"
    "stress/races/diagnose/model also take --protocol=mesi|moesi|dragon\n"
    "and --dir-format=fullbv|coarse:K|ptr:N (env CCNUMA_PROTOCOL /\n"
    "CCNUMA_DIR); golden always pins the default mesi+fullbv machine\n"
    "\n"
    "every command takes --sim-jobs=N (env CCNUMA_SIM_JOBS): host\n"
    "threads per simulation run — 1 = the serial engine (default),\n"
    "0 = one per host core, N > 1 = the node-sharded parallel engine.\n"
    "Results are bit-identical to serial for every value\n"
    "\n"
    "exit status: 0 = verified, 1 = verification failure, 2 = usage\n";

std::string
defaultGoldenPath()
{
#ifdef CCNUMA_GOLDEN_DIR
    return std::string(CCNUMA_GOLDEN_DIR) + "/metrics-v1.json";
#else
    return "tests/golden/metrics-v1.json";
#endif
}

/// The `kUsage` block for one subcommand: its summary line plus every
/// continuation/flag line, sliced out of the single source of truth so
/// the snippet can never drift from `help`. Unknown commands get the
/// full reference.
std::string
usageSnippet(const std::string& cmd)
{
    const std::string usage(kUsage);
    const std::string anchor = "\n  " + cmd + " ";
    const std::size_t hit = usage.find(anchor);
    if (hit == std::string::npos)
        return usage;
    std::string out = "usage:\n";
    std::size_t pos = hit + 1;
    while (pos < usage.size()) {
        std::size_t nl = usage.find('\n', pos);
        if (nl == std::string::npos)
            nl = usage.size();
        const std::string line = usage.substr(pos, nl - pos);
        // Continuation lines are indented deeper than the two-space
        // command column; the next command (or the blank separator)
        // ends the block.
        if (pos != hit + 1 && line.compare(0, 4, "    ") != 0)
            break;
        out += line + "\n";
        pos = nl + 1;
    }
    out += "run `ccnuma_verify help` for the full reference\n";
    return out;
}

/// Print `cmd`'s usage snippet and return the usage exit status.
/// Call sites that already diagnosed the specific problem funnel
/// through here so every flag error carries its remedy.
int
usageError(const std::string& cmd)
{
    std::fprintf(stderr, "%s", usageSnippet(cmd).c_str());
    return 2;
}

/// Strict end-of-parse check shared by every subcommand: any flag
/// left unconsumed, any malformed numeric value, and any stray
/// positional argument is an error (exit 2) accompanied by the
/// subcommand's usage snippet — never a warning that scrolls away.
bool
strictFinish(const core::cli::Options& opt, const std::string& cmd)
{
    bool ok = core::cli::warnUnknown(opt);
    for (std::size_t i = 1; i < opt.positional.size(); ++i) {
        std::fprintf(stderr, "unexpected argument '%s'\n",
                     opt.positional[i].c_str());
        ok = false;
    }
    if (!ok)
        std::fprintf(stderr, "%s", usageSnippet(cmd).c_str());
    return ok;
}

bool
takeU64(core::cli::Options& opt, const std::string& name,
        std::uint64_t& out)
{
    std::string v;
    if (!opt.takeFlag(name, v))
        return true;
    if (!core::cli::parseU64(v, out)) {
        std::fprintf(stderr, "malformed --%s=%s\n", name.c_str(),
                     v.c_str());
        return false;
    }
    return true;
}

int
runStressCmd(core::cli::Options& opt)
{
    std::uint64_t seeds = 1;
    std::uint64_t procs = 8;
    std::uint64_t ops = 250;
    if (!takeU64(opt, "seeds", seeds) || !takeU64(opt, "procs", procs) ||
        !takeU64(opt, "ops", ops))
        return usageError("stress");
    const bool shrinkWitness = opt.takeSwitch("shrink");
    const bool mutate = opt.takeSwitch("mutate");

    check::StressOptions base;
    core::cli::applyMachine(opt, base.machine);
    if (!strictFinish(opt, "stress"))
        return 2;
    base.seed = opt.seed;
    base.procs = static_cast<int>(procs);
    base.opsPerProc = static_cast<int>(ops);
    if (mutate) {
#ifdef CCNUMA_CHECK_MUTATE
        base.mutation = sim::CheckMutation::SkipInvalidation;
#else
        std::fprintf(stderr,
                     "mutation hooks not compiled in "
                     "(build with -DCCNUMA_CHECK_MUTATE=ON)\n");
        return 2;
#endif
    }

    std::uint64_t failures = 0;
    for (std::uint64_t i = 0; i < seeds; ++i) {
        check::StressOptions o = base;
        o.seed = base.seed + i;
        const check::StressReport rep = check::runStress(o);
        std::printf("seed %llu: %llu commits, %llu loads checked, "
                    "%llu validations, %s\n",
                    static_cast<unsigned long long>(o.seed),
                    static_cast<unsigned long long>(rep.commits),
                    static_cast<unsigned long long>(rep.loadsChecked),
                    static_cast<unsigned long long>(rep.validations),
                    rep.failed ? "FAILED" : "ok");
        if (!rep.failed)
            continue;
        ++failures;
        std::printf("  first violation (commit %llu): %s\n",
                    static_cast<unsigned long long>(rep.failCommit),
                    rep.message.c_str());
        const check::StressReport replay = check::runStress(o);
        std::printf("  replay: %s\n",
                    replay == rep ? "bit-identical"
                                  : "MISMATCH (non-deterministic!)");
        if (shrinkWitness || mutate) {
            const check::ShrinkResult sh =
                check::shrink(check::generate(o), o);
            std::printf("  shrunk witness: %llu ops (from %llu, "
                        "%d runs)\n",
                        static_cast<unsigned long long>(sh.opsAfter),
                        static_cast<unsigned long long>(sh.opsBefore),
                        sh.runs);
            std::printf("%s", check::formatWitness(sh.program).c_str());
            std::printf("  witness failure: %s\n",
                        sh.report.message.c_str());
        }
    }

    if (mutate) {
        // Self-test: a broken protocol MUST be detected.
        if (failures == seeds) {
            std::printf("mutation caught on %llu/%llu seed(s): the "
                        "oracle has teeth\n",
                        static_cast<unsigned long long>(failures),
                        static_cast<unsigned long long>(seeds));
            return 0;
        }
        std::fprintf(stderr,
                     "mutation UNDETECTED on %llu/%llu seed(s)\n",
                     static_cast<unsigned long long>(seeds - failures),
                     static_cast<unsigned long long>(seeds));
        return 1;
    }
    return failures == 0 ? 0 : 1;
}

int
runGoldenCmd(core::cli::Options& opt)
{
    std::uint64_t procs = 4;
    if (!takeU64(opt, "procs", procs))
        return usageError("golden");
    std::string outPath;
    std::string checkPath;
    const bool hasOut = opt.takeFlag("out", outPath);
    const bool hasCheck = opt.takeFlag("check", checkPath);
    const bool bless = opt.takeSwitch("bless");
    if (!strictFinish(opt, "golden"))
        return 2;
    if (hasOut && hasCheck) {
        std::fprintf(stderr, "--out and --check are exclusive\n");
        return usageError("golden");
    }

    const check::GoldenSnapshot current =
        check::computeGolden(static_cast<int>(procs), opt.simJobs);

    if (bless || hasOut) {
        const std::string path = hasOut ? outPath : defaultGoldenPath();
        std::string err;
        if (!check::writeGoldenFile(path, current, err)) {
            std::fprintf(stderr, "%s\n", err.c_str());
            return 1;
        }
        std::printf("blessed %zu app baselines -> %s\n",
                    current.entries.size(), path.c_str());
        return 0;
    }

    const std::string path = hasCheck ? checkPath : defaultGoldenPath();
    check::GoldenSnapshot baseline;
    std::string err;
    if (!check::loadGoldenFile(path, baseline, err)) {
        std::fprintf(stderr, "%s\n", err.c_str());
        return 1;
    }
    const std::vector<std::string> diffs =
        check::diffGolden(baseline, current);
    if (diffs.empty()) {
        std::printf("golden metrics match %s (%zu apps)\n", path.c_str(),
                    baseline.entries.size());
        return 0;
    }
    std::fprintf(stderr, "golden metrics diverge from %s:\n",
                 path.c_str());
    for (const std::string& d : diffs)
        std::fprintf(stderr, "  %s\n", d.c_str());
    std::fprintf(stderr,
                 "re-bless with `ccnuma_verify golden --bless` if "
                 "intentional\n");
    return 1;
}

void
printRaceApp(const analyze::AppRaceResult& r)
{
    std::printf("%-24s %9llu mem ops, %7llu sync ops, %6llu shadow "
                "locations, %s\n",
                r.app.c_str(),
                static_cast<unsigned long long>(r.stats.memOps),
                static_cast<unsigned long long>(r.stats.syncOps),
                static_cast<unsigned long long>(r.stats.shadowLocations),
                r.races.empty() ? "race-free" : "RACES");
    for (const analyze::Race& race : r.races)
        std::printf("  %s\n", race.format().c_str());
}

int
runRaceMutateCmd(std::uint64_t seed0, std::uint64_t seeds,
                 std::uint64_t procs, std::uint64_t ops,
                 const sim::MachineConfig& machine)
{
#ifndef CCNUMA_CHECK_MUTATE
    (void)seed0;
    (void)seeds;
    (void)procs;
    (void)ops;
    (void)machine;
    std::fprintf(stderr, "mutation hooks not compiled in "
                         "(build with -DCCNUMA_CHECK_MUTATE=ON)\n");
    return 2;
#else
    std::uint64_t undetected = 0;
    for (std::uint64_t i = 0; i < seeds; ++i) {
        check::StressOptions o = analyze::raceStressOptions(seed0 + i);
        o.procs = static_cast<int>(procs);
        o.opsPerProc = static_cast<int>(ops);
        o.machine.protocol = machine.protocol;
        o.machine.dirFormat = machine.dirFormat;
        const check::StressProgram prog = check::generate(o);

        // Clean run first: a disciplined program must analyze race-free
        // (otherwise the detector has false positives and a detection
        // below would prove nothing).
        const analyze::RaceStressResult clean =
            analyze::raceExecute(prog, o);
        if (clean.report.failed) {
            std::fprintf(stderr,
                         "seed %llu: FALSE POSITIVE on the "
                         "unmutated program: %s\n",
                         static_cast<unsigned long long>(o.seed),
                         clean.report.message.c_str());
            ++undetected;
            continue;
        }

        o.mutation = sim::CheckMutation::DropLockAcquire;
        const analyze::RaceStressResult broken =
            analyze::raceExecute(prog, o);
        if (!broken.report.failed) {
            std::fprintf(stderr,
                         "seed %llu: DropLockAcquire UNDETECTED\n",
                         static_cast<unsigned long long>(o.seed));
            ++undetected;
            continue;
        }
        const check::ShrinkResult sh = analyze::shrinkRace(prog, o);
        std::printf("seed %llu: mutation caught (%llu races); shrunk "
                    "witness %llu ops (from %llu, %d runs)\n",
                    static_cast<unsigned long long>(o.seed),
                    static_cast<unsigned long long>(
                        broken.stats.racesFound),
                    static_cast<unsigned long long>(sh.opsAfter),
                    static_cast<unsigned long long>(sh.opsBefore),
                    sh.runs);
        std::printf("%s", check::formatWitness(sh.program).c_str());
        std::printf("  witness race: %s\n",
                    sh.report.message.c_str());
    }
    if (undetected == 0) {
        std::printf("race detector self-test passed on %llu seed(s)\n",
                    static_cast<unsigned long long>(seeds));
        return 0;
    }
    return 1;
#endif
}

int
runRacesCmd(core::cli::Options& opt)
{
    std::uint64_t procs = 4;
    std::uint64_t seeds = 1;
    std::uint64_t ops = 250;
    if (!takeU64(opt, "procs", procs) || !takeU64(opt, "seeds", seeds) ||
        !takeU64(opt, "ops", ops))
        return usageError("races");
    std::string appName;
    const bool hasApp = opt.takeFlag("app", appName);
    const bool all = opt.takeSwitch("all");
    const bool mutate = opt.takeSwitch("mutate");
    sim::MachineConfig machine =
        sim::MachineConfig::origin2000(static_cast<int>(procs));
    core::cli::applyMachine(opt, machine);
    if (!strictFinish(opt, "races"))
        return 2;
    if (hasApp && all) {
        std::fprintf(stderr, "--app and --all are exclusive\n");
        return usageError("races");
    }

    if (mutate)
        return runRaceMutateCmd(opt.seed, seeds, procs, ops, machine);

    core::MetricsSink sink(opt.jsonFile);
    sink.setMachine(machine);
    std::vector<analyze::AppRaceResult> results;
    if (hasApp) {
        try {
            results.push_back(analyze::analyzeApp(appName, machine));
        } catch (const std::invalid_argument& e) {
            std::fprintf(stderr, "error: %s\n", e.what());
            return 1;
        }
    } else {
        results = analyze::analyzeAllApps(machine);
    }

    std::uint64_t racy = 0;
    for (const analyze::AppRaceResult& r : results) {
        printRaceApp(r);
        analyze::emitMetrics(r, sink);
        if (!r.races.empty())
            ++racy;
    }
    if (!sink.write())
        std::fprintf(stderr, "failed to write --json file\n");
    if (racy == 0) {
        std::printf("%zu app(s) race-free\n", results.size());
        return 0;
    }
    std::fprintf(stderr, "%llu/%zu app(s) RACY\n",
                 static_cast<unsigned long long>(racy), results.size());
    return 1;
}

void
printDiagnosis(const diagnose::AppDiagnosis& d)
{
    if (!d.ok) {
        std::printf("%-24s FAILED: %s\n", d.app.c_str(),
                    d.error.c_str());
        return;
    }
    std::printf("%-24s %s\n", d.app.c_str(), d.verdict.c_str());
    for (const diagnose::CauseScore& c : d.ranked) {
        if (c.lostCycles == 0 && c.share == 0)
            continue;
        std::printf("  %-20s %5.1f%%  %s\n",
                    diagnose::causeTitle(c.cause), c.share * 100,
                    c.evidence.empty() ? "" : c.evidence[0].c_str());
    }
}

int
runDiagnoseCmd(core::cli::Options& opt)
{
    diagnose::DiagnoseOptions dopt;
    dopt.jobs = opt.jobs;
    dopt.simJobs = opt.simJobs;
    dopt.epochCycles = opt.epochCycles;
    std::string procsList;
    if (opt.takeFlag("procs", procsList)) {
        std::vector<std::uint64_t> grid;
        if (!core::cli::parseU64List(procsList, grid)) {
            std::fprintf(stderr, "malformed --procs=%s "
                                 "(want e.g. --procs=1,8,32)\n",
                         procsList.c_str());
            return usageError("diagnose");
        }
        dopt.procs.clear();
        for (std::uint64_t p : grid)
            dopt.procs.push_back(static_cast<int>(p));
    }
    if (!takeU64(opt, "size", dopt.size))
        return usageError("diagnose");
    std::string appName;
    const bool hasApp = opt.takeFlag("app", appName);
    const bool all = opt.takeSwitch("all");
    std::string htmlPath;
    const bool hasHtml = opt.takeFlag("html", htmlPath);
    sim::MachineConfig machine = sim::MachineConfig::origin2000(2);
    core::cli::applyMachine(opt, machine);
    dopt.protocol = machine.protocol;
    dopt.dirFormat = machine.dirFormat;
    if (!strictFinish(opt, "diagnose"))
        return 2;
    if (hasApp && all) {
        std::fprintf(stderr, "--app and --all are exclusive\n");
        return usageError("diagnose");
    }

    std::vector<diagnose::AppDiagnosis> results;
    if (hasApp) {
        try {
            results.push_back(diagnose::diagnoseApp(appName, dopt));
        } catch (const std::invalid_argument& e) {
            std::fprintf(stderr, "error: %s\n", e.what());
            return 1;
        }
    } else {
        dopt.progress = true;
        results = diagnose::diagnoseAllApps(dopt);
    }

    std::uint64_t failed = 0;
    core::MetricsSink sink(opt.jsonFile);
    sink.setMachine(machine);
    for (const diagnose::AppDiagnosis& d : results) {
        printDiagnosis(d);
        diagnose::emitMetrics(d, sink);
        if (!d.ok)
            ++failed;
    }
    if (!opt.jsonFile.empty() &&
        !diagnose::writeDiagnoseJsonFile(opt.jsonFile, results)) {
        std::fprintf(stderr, "failed to write %s\n",
                     opt.jsonFile.c_str());
        return 1;
    }
    if (!opt.jsonFile.empty())
        std::printf("wrote %s\n", opt.jsonFile.c_str());
    if (hasHtml) {
        if (!diagnose::writeDashboardFile(htmlPath, results)) {
            std::fprintf(stderr, "failed to write %s\n",
                         htmlPath.c_str());
            return 1;
        }
        std::printf("wrote %s (self-contained dashboard)\n",
                    htmlPath.c_str());
    }
    if (failed) {
        std::fprintf(stderr, "%llu app(s) failed to diagnose\n",
                     static_cast<unsigned long long>(failed));
        return 1;
    }
    return 0;
}

// ---- protocols: the coherence cross-product comparison grid ----

/// One protocol x directory-format combination's verification record.
struct ComboResult {
    std::string proto;
    std::string dir;
    std::uint64_t stressFailures = 0; ///< Seeds whose oracle fired.
    std::uint64_t oracleBadApps = 0;  ///< Apps with SC violations.
    std::uint64_t racyApps = 0;       ///< Apps with reported races.
    /// Diagnosed app -> compact verdict ("scales/<cause>" form),
    /// keyed in --apps order.
    std::vector<std::string> verdicts;

    std::string label() const { return proto + "+" + dir; }
    bool clean() const
    {
        return stressFailures == 0 && oracleBadApps == 0 &&
               racyApps == 0;
    }
};

/// Every registered app under the SC oracle at the appsweep shape
/// (4 procs, 256 KB caches, 1K-commit validate cadence). Returns the
/// number of apps with violations and appends their names + first
/// violation to `bad`.
std::uint64_t
oracleSweep(const sim::MachineConfig& combo,
            std::vector<std::string>& bad)
{
    std::uint64_t failures = 0;
    for (const std::string& name : apps::listApps()) {
        sim::MachineConfig cfg = sim::MachineConfig::origin2000(4);
        cfg.cacheBytes = 256u << 10;
        cfg.check.validateEvery = 1024;
        cfg.protocol = combo.protocol;
        cfg.dirFormat = combo.dirFormat;
        // The SC oracle observes replay-side commits, so the parallel
        // engine is transparent to it — but only timing-invariant apps
        // may scout (same clamp as core::runApp).
        cfg.simJobs =
            apps::timingInvariant(name) ? combo.simJobs : 1;
        sim::Machine m(cfg);
        const apps::AppPtr app =
            apps::makeApp(name, check::goldenSize(name));
        app->setup(m);
        check::ScOracle oracle(m.mem());
        m.mem().attachCommitObserver(&oracle);
        m.run(app->program());
        std::string what;
        if (oracle.failed())
            what = oracle.violations().front().what;
        else if (!m.mem().validateCoherence().empty())
            what = m.mem().validateCoherence().front();
        if (what.empty())
            continue;
        ++failures;
        bad.push_back(name + ": " + what);
    }
    return failures;
}

/// Compact one-cell verdict for the comparison grid.
std::string
shortVerdict(const diagnose::AppDiagnosis& d)
{
    if (!d.ok)
        return "FAILED";
    std::string cause = d.ranked.empty()
                            ? "none"
                            : diagnose::causeTitle(
                                  d.ranked.front().cause);
    for (char& ch : cause)
        if (ch == ' ')
            ch = '-';
    return std::string(d.scalesWell ? "scales" : "poor") + "/" + cause;
}

int
runProtocolsCmd(core::cli::Options& opt)
{
    std::uint64_t seeds = 3;
    std::uint64_t procs = 8;
    std::uint64_t ops = 150;
    if (!takeU64(opt, "seeds", seeds) ||
        !takeU64(opt, "procs", procs) || !takeU64(opt, "ops", ops))
        return usageError("protocols");

    std::vector<std::string> diagApps = {"fft", "ocean", "radix"};
    std::string appsList;
    if (opt.takeFlag("apps", appsList)) {
        diagApps.clear();
        std::string cur;
        for (const char ch : appsList + ",") {
            if (ch != ',') {
                cur += ch;
                continue;
            }
            if (!cur.empty())
                diagApps.push_back(cur);
            cur.clear();
        }
    }

    std::vector<int> diagProcs = {1, 8, 32};
    std::string diagProcsList;
    if (opt.takeFlag("diag-procs", diagProcsList)) {
        std::vector<std::uint64_t> grid;
        if (!core::cli::parseU64List(diagProcsList, grid)) {
            std::fprintf(stderr,
                         "malformed --diag-procs=%s "
                         "(want e.g. --diag-procs=1,8,32)\n",
                         diagProcsList.c_str());
            return usageError("protocols");
        }
        diagProcs.clear();
        for (std::uint64_t p : grid)
            diagProcs.push_back(static_cast<int>(p));
    }
    if (!strictFinish(opt, "protocols"))
        return 2;

    const std::vector<std::string> protoNames = {"mesi", "moesi",
                                                 "dragon"};
    const std::vector<std::string> dirNames = {"fullbv", "coarse:4",
                                               "ptr:2"};

    core::MetricsSink sink(opt.jsonFile);
    std::vector<ComboResult> combos;
    for (const std::string& pn : protoNames) {
        for (const std::string& dn : dirNames) {
            sim::MachineConfig machine =
                sim::MachineConfig::origin2000(
                    static_cast<int>(procs));
            if (!machine.protocol.parse(pn) ||
                !machine.dirFormat.parse(dn)) {
                std::fprintf(stderr, "internal: bad combo %s+%s\n",
                             pn.c_str(), dn.c_str());
                return 2;
            }
            machine.simJobs = opt.simJobs;
            ComboResult cr;
            cr.proto = pn;
            cr.dir = dn;
            std::printf("== %s ==\n", cr.label().c_str());

            // 1. Randomized stress under the SC oracle.
            for (std::uint64_t i = 0; i < seeds; ++i) {
                check::StressOptions o;
                o.seed = opt.seed + i;
                o.procs = static_cast<int>(procs);
                o.opsPerProc = static_cast<int>(ops);
                o.machine.protocol = machine.protocol;
                o.machine.dirFormat = machine.dirFormat;
                o.machine.simJobs = opt.simJobs;
                const check::StressReport rep = check::runStress(o);
                if (!rep.failed)
                    continue;
                ++cr.stressFailures;
                std::printf("  stress seed %llu FAILED: %s\n",
                            static_cast<unsigned long long>(o.seed),
                            rep.message.c_str());
                const check::ShrinkResult sh =
                    check::shrink(check::generate(o), o);
                std::printf("  shrunk witness: %llu ops\n%s",
                            static_cast<unsigned long long>(
                                sh.opsAfter),
                            check::formatWitness(sh.program).c_str());
            }

            // 2. Every registered app under the SC oracle.
            std::vector<std::string> oracleBad;
            cr.oracleBadApps = oracleSweep(machine, oracleBad);
            for (const std::string& b : oracleBad)
                std::printf("  oracle: %s\n", b.c_str());

            // 3. Every registered app under the race analyzer.
            sim::MachineConfig raceCfg =
                sim::MachineConfig::origin2000(4);
            raceCfg.protocol = machine.protocol;
            raceCfg.dirFormat = machine.dirFormat;
            raceCfg.simJobs = opt.simJobs;
            for (const analyze::AppRaceResult& r :
                 analyze::analyzeAllApps(raceCfg)) {
                if (r.races.empty())
                    continue;
                ++cr.racyApps;
                std::printf("  races: %s: %s\n", r.app.c_str(),
                            r.races.front().format().c_str());
            }

            // 4. Scaling diagnosis of the --apps subset.
            diagnose::DiagnoseOptions dopt;
            dopt.procs = diagProcs;
            dopt.jobs = opt.jobs;
            dopt.simJobs = opt.simJobs;
            dopt.protocol = machine.protocol;
            dopt.dirFormat = machine.dirFormat;
            for (const std::string& app : diagApps) {
                try {
                    const diagnose::AppDiagnosis d =
                        diagnose::diagnoseApp(app, dopt);
                    cr.verdicts.push_back(shortVerdict(d));
                } catch (const std::invalid_argument& e) {
                    std::fprintf(stderr, "error: %s\n", e.what());
                    return 2;
                }
            }

            std::printf("  stress %llu/%llu ok, oracle %zu/%zu "
                        "clean, races %zu/%zu free\n",
                        static_cast<unsigned long long>(
                            seeds - cr.stressFailures),
                        static_cast<unsigned long long>(seeds),
                        apps::listApps().size() -
                            static_cast<std::size_t>(
                                cr.oracleBadApps),
                        apps::listApps().size(),
                        apps::listApps().size() -
                            static_cast<std::size_t>(cr.racyApps),
                        apps::listApps().size());

            const std::string label =
                "protocols/" + cr.label();
            sink.addText(label, "protocol", pn);
            sink.addText(label, "dirFormat", dn);
            sink.addCount(label, "stressFailures",
                          cr.stressFailures);
            sink.addCount(label, "oracleBadApps", cr.oracleBadApps);
            sink.addCount(label, "racyApps", cr.racyApps);
            for (std::size_t a = 0; a < diagApps.size(); ++a)
                sink.addText(label, "verdict:" + diagApps[a],
                             cr.verdicts[a]);
            combos.push_back(std::move(cr));
        }
    }

    // The comparison grid: one row per combo, one verdict column per
    // diagnosed app.
    std::printf("\n%-16s %-8s %-8s %-8s", "combo", "stress",
                "oracle", "races");
    for (const std::string& app : diagApps)
        std::printf(" %-22s", app.c_str());
    std::printf("\n");
    for (const ComboResult& cr : combos) {
        std::printf("%-16s %-8s %-8s %-8s", cr.label().c_str(),
                    cr.stressFailures ? "FAIL" : "ok",
                    cr.oracleBadApps ? "FAIL" : "ok",
                    cr.racyApps ? "FAIL" : "ok");
        for (const std::string& v : cr.verdicts)
            std::printf(" %-22s", v.c_str());
        std::printf("\n");
    }

    // Which apps change their scaling verdict when the coherence
    // machine changes? That delta is the point of the sweep.
    std::uint64_t deltas = 0;
    for (std::size_t a = 0; a < diagApps.size(); ++a) {
        bool differs = false;
        for (const ComboResult& cr : combos)
            if (cr.verdicts[a] != combos.front().verdicts[a])
                differs = true;
        if (!differs)
            continue;
        ++deltas;
        std::printf("verdict delta: %-16s", diagApps[a].c_str());
        for (const ComboResult& cr : combos)
            if (cr.verdicts[a] != combos.front().verdicts[a])
                std::printf(" %s=%s", cr.label().c_str(),
                            cr.verdicts[a].c_str());
        std::printf(" (vs %s=%s)\n",
                    combos.front().label().c_str(),
                    combos.front().verdicts[a].c_str());
    }
    if (deltas == 0)
        std::printf("no scaling-verdict deltas across %zu "
                    "combinations\n",
                    combos.size());
    sink.addCount("protocols/meta", "combos", combos.size());
    sink.addCount("protocols/meta", "verdictDeltas", deltas);
    if (!sink.write())
        std::fprintf(stderr, "failed to write --json file\n");

    std::uint64_t badCombos = 0;
    for (const ComboResult& cr : combos)
        if (!cr.clean())
            ++badCombos;
    if (badCombos == 0) {
        std::printf("%zu/%zu combinations verified clean\n",
                    combos.size(), combos.size());
        return 0;
    }
    std::fprintf(stderr, "%llu/%zu combination(s) FAILED\n",
                 static_cast<unsigned long long>(badCombos),
                 combos.size());
    return 1;
}

// ---- model: exhaustive reachability over the protocol engine ----

int
runModelCmd(core::cli::Options& opt)
{
    std::uint64_t maxStates = 1u << 20;
    if (!takeU64(opt, "max-states", maxStates))
        return usageError("model");

    std::vector<int> procs = {2, 3, 4};
    std::string procsList;
    if (opt.takeFlag("procs", procsList)) {
        std::vector<std::uint64_t> grid;
        if (!core::cli::parseU64List(procsList, grid)) {
            std::fprintf(stderr, "malformed --procs=%s "
                                 "(want e.g. --procs=2,3,4)\n",
                         procsList.c_str());
            return usageError("model");
        }
        procs.clear();
        for (std::uint64_t p : grid)
            procs.push_back(static_cast<int>(p));
    }
    const bool noSymmetry = opt.takeSwitch("no-symmetry");

    sim::CheckMutation mutation = sim::CheckMutation::None;
    std::string mutateName;
    if (opt.takeFlag("mutate", mutateName)) {
#ifndef CCNUMA_CHECK_MUTATE
        std::fprintf(stderr,
                     "mutation hooks not compiled in "
                     "(build with -DCCNUMA_CHECK_MUTATE=ON)\n");
        return 2;
#else
        if (mutateName == "skip-inval") {
            mutation = sim::CheckMutation::SkipInvalidation;
        } else if (mutateName == "drop-owned-writeback") {
            mutation = sim::CheckMutation::DropOwnedWriteback;
        } else if (mutateName == "corrupt-moesi-table") {
            mutation = sim::CheckMutation::CorruptMoesiTable;
        } else {
            std::fprintf(stderr,
                         "unknown --mutate=%s (want skip-inval | "
                         "drop-owned-writeback | "
                         "corrupt-moesi-table)\n",
                         mutateName.c_str());
            return usageError("model");
        }
#endif
    }
    if (!strictFinish(opt, "model"))
        return 2;

    // A mutation only needs catching where the corrupted mechanism
    // exists: SkipInvalidation corrupts the invalidation fan-out
    // (Dragon updates instead), DropOwnedWriteback needs the Owned
    // state (MESI has none), CorruptMoesiTable zeroes a MOESI table
    // cell. --protocol narrows further to a single protocol.
    std::vector<std::string> protoSel = {"mesi", "moesi", "dragon"};
    switch (mutation) {
    case sim::CheckMutation::SkipInvalidation:
        protoSel = {"mesi", "moesi"};
        break;
    case sim::CheckMutation::DropOwnedWriteback:
        protoSel = {"moesi", "dragon"};
        break;
    case sim::CheckMutation::CorruptMoesiTable:
        protoSel = {"moesi"};
        break;
    default:
        break;
    }
    std::vector<std::string> fmtSel = {"fullbv", "coarse:4", "ptr:2"};
    if (!opt.protocol.empty())
        protoSel = {opt.protocol};
    if (!opt.dirFormat.empty())
        fmtSel = {opt.dirFormat};

    core::MetricsSink sink(opt.jsonFile);
    const bool mutated = mutation != sim::CheckMutation::None;
    std::uint64_t bad = 0;
    std::uint64_t combosRun = 0;
    for (const std::string& pn : protoSel) {
        for (const std::string& fn : fmtSel) {
            for (const int p : procs) {
                model::CheckOptions o;
                o.protocol = pn;
                o.dirFormat = fn;
                o.procs = p;
                o.maxStates = maxStates;
                o.mutation = mutation;
                o.symmetry = !noSymmetry;
                const model::CheckResult r = model::runCheck(o);
                if (r.invariant == "config") {
                    std::fprintf(stderr, "%s x %s P=%d: %s\n",
                                 pn.c_str(), fn.c_str(), p,
                                 r.detail.c_str());
                    return usageError("model");
                }
                ++combosRun;
                std::printf("%s", model::formatResult(r).c_str());
                model::emit(sink, r);
                if (mutated) {
                    // Inverted contract: the corruption must be
                    // caught, with an executable counterexample
                    // short enough to read (the BFS guarantees
                    // shortest; 20 is the acceptance ceiling).
                    const bool caught =
                        !r.ok && !r.truncated && r.replayed &&
                        r.counterexample.size() <= 20;
                    if (!caught) {
                        ++bad;
                        std::fprintf(stderr,
                                     "  mutation '%s' NOT caught on "
                                     "%s x %s P=%d\n",
                                     mutateName.c_str(), pn.c_str(),
                                     fn.c_str(), p);
                    }
                } else if (!r.ok) {
                    ++bad;
                }
            }
        }
    }
    if (!sink.write())
        std::fprintf(stderr, "failed to write --json file\n");
    if (bad == 0) {
        if (mutated)
            std::printf("mutation '%s' caught on %llu/%llu "
                        "combination(s): the checker has teeth\n",
                        mutateName.c_str(),
                        static_cast<unsigned long long>(combosRun),
                        static_cast<unsigned long long>(combosRun));
        else
            std::printf("%llu/%llu combination(s) verified "
                        "exhaustively\n",
                        static_cast<unsigned long long>(combosRun),
                        static_cast<unsigned long long>(combosRun));
        return 0;
    }
    std::fprintf(stderr, "%llu/%llu combination(s) %s\n",
                 static_cast<unsigned long long>(bad),
                 static_cast<unsigned long long>(combosRun),
                 mutated ? "did NOT catch the mutation" : "FAILED");
    return 1;
}

} // namespace

int
main(int argc, char** argv)
{
    core::cli::Options opt = core::cli::parse(argc, argv);
    // "--help" lands in unknown; a bare "-h" parses as a positional.
    const bool helpFlag = opt.takeSwitch("help");
    if (helpFlag ||
        (!opt.positional.empty() &&
         (opt.positional[0] == "help" || opt.positional[0] == "-h"))) {
        std::printf("%s", kUsage);
        return 0;
    }
    if (opt.positional.empty()) {
        std::fprintf(stderr, "%s", kUsage);
        return 2;
    }
    const std::string cmd = opt.positional[0];
    if (cmd == "stress")
        return runStressCmd(opt);
    if (cmd == "golden")
        return runGoldenCmd(opt);
    if (cmd == "races")
        return runRacesCmd(opt);
    if (cmd == "diagnose")
        return runDiagnoseCmd(opt);
    if (cmd == "protocols")
        return runProtocolsCmd(opt);
    if (cmd == "model")
        return runModelCmd(opt);
    std::fprintf(stderr, "unknown command '%s'\n%s", cmd.c_str(),
                 kUsage);
    return 2;
}
