#include "check/shrink.hh"

#include <cstddef>
#include <map>
#include <utility>
#include <vector>

namespace ccnuma::check {

namespace {

/// One atomically-removable unit: the (proc, op index) sites it owns.
struct Unit {
    std::vector<std::pair<int, std::size_t>> sites;
};

/// Split a program into units, ordered by first occurrence
/// (proc-major, then op index) so the shrink is deterministic.
std::vector<Unit>
buildUnits(const StressProgram& prog)
{
    std::vector<Unit> units;
    std::map<std::uint64_t, std::size_t> byGroup;
    for (int p = 0; p < prog.procs(); ++p) {
        const auto& trace = prog.ops[static_cast<std::size_t>(p)];
        for (std::size_t i = 0; i < trace.size(); ++i) {
            const std::uint64_t g = trace[i].group;
            if (g == 0) {
                units.push_back(Unit{{{p, i}}});
                continue;
            }
            const auto it = byGroup.find(g);
            if (it == byGroup.end()) {
                byGroup.emplace(g, units.size());
                units.push_back(Unit{{{p, i}}});
            } else {
                units[it->second].sites.emplace_back(p, i);
            }
        }
    }
    return units;
}

/// Rebuild a program keeping only the selected units (original
/// per-processor op order is preserved).
StressProgram
buildProgram(const StressProgram& prog, const std::vector<Unit>& units,
             const std::vector<std::size_t>& selected)
{
    // keep[p][i] == true iff op i of proc p survives.
    std::vector<std::vector<char>> keep(prog.ops.size());
    for (std::size_t p = 0; p < prog.ops.size(); ++p)
        keep[p].assign(prog.ops[p].size(), 0);
    for (const std::size_t u : selected)
        for (const auto& [p, i] : units[u].sites)
            keep[static_cast<std::size_t>(p)][i] = 1;

    StressProgram out;
    out.numLocks = prog.numLocks;
    out.ops.resize(prog.ops.size());
    for (std::size_t p = 0; p < prog.ops.size(); ++p)
        for (std::size_t i = 0; i < prog.ops[p].size(); ++i)
            if (keep[p][i])
                out.ops[p].push_back(prog.ops[p][i]);
    return out;
}

} // namespace

ShrinkResult
shrinkWith(const StressProgram& prog, const StressRunner& run,
           int maxRuns)
{
    ShrinkResult res;
    res.opsBefore = prog.numOps();
    res.program = prog;
    res.report = run(prog);
    res.runs = 1;
    if (!res.report.failed) {
        res.opsAfter = res.opsBefore;
        return res;
    }

    const std::vector<Unit> units = buildUnits(prog);
    std::vector<std::size_t> selected(units.size());
    for (std::size_t u = 0; u < units.size(); ++u)
        selected[u] = u;

    // ddmin: try dropping contiguous chunks of units; accept any
    // candidate that still fails; halve the chunk size when a full
    // sweep at this granularity removes nothing.
    std::size_t chunk = selected.size() / 2;
    if (chunk == 0)
        chunk = 1;
    while (res.runs < maxRuns) {
        bool removedAny = false;
        for (std::size_t at = 0;
             at < selected.size() && res.runs < maxRuns;) {
            if (selected.size() <= 1)
                break;
            std::vector<std::size_t> candidate;
            candidate.reserve(selected.size());
            const std::size_t end =
                std::min(at + chunk, selected.size());
            candidate.insert(candidate.end(), selected.begin(),
                             selected.begin() +
                                 static_cast<std::ptrdiff_t>(at));
            candidate.insert(candidate.end(),
                             selected.begin() +
                                 static_cast<std::ptrdiff_t>(end),
                             selected.end());
            StressProgram candProg =
                buildProgram(prog, units, candidate);
            StressReport candRep = run(candProg);
            ++res.runs;
            if (candRep.failed) {
                selected = std::move(candidate);
                res.program = std::move(candProg);
                res.report = std::move(candRep);
                removedAny = true;
                // Do not advance: the next chunk now sits at `at`.
            } else {
                at = end;
            }
        }
        if (chunk == 1 && !removedAny)
            break;
        if (chunk > 1)
            chunk = (chunk + 1) / 2;
    }
    res.opsAfter = res.program.numOps();
    return res;
}

ShrinkResult
shrink(const StressProgram& prog, const StressOptions& opt, int maxRuns)
{
    return shrinkWith(
        prog,
        [&opt](const StressProgram& p) { return execute(p, opt); },
        maxRuns);
}

} // namespace ccnuma::check
