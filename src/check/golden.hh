/**
 * @file
 * Golden-metrics regression harness.
 *
 * Snapshots the simulator's observable behaviour — sequential and
 * parallel cycle counts, speedup, and the aggregate event counters
 * (miss classes, upgrades, invalidations, writebacks, sync events) —
 * for a small configuration of every registered application variant,
 * into a versioned JSON baseline under tests/golden/. A regression
 * test recomputes the snapshot and diffs it against the committed
 * baseline: any protocol, scheduler, latency-model or app change that
 * shifts a number shows up as an explicit, reviewable diff, and
 * intentional changes are re-blessed with `ccnuma_verify golden
 * --bless`.
 *
 * The simulator is deterministic, so integer cycle counts and event
 * counters compare for exact equality; the derived speedup double uses
 * a tiny relative epsilon to absorb formatting round-trips.
 */

#ifndef CCNUMA_CHECK_GOLDEN_HH
#define CCNUMA_CHECK_GOLDEN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace ccnuma::check {

/** The golden numbers for one application variant. */
struct GoldenEntry {
    std::string name;
    std::uint64_t size = 0;   ///< Problem size used.
    sim::Cycles seqTime = 0;  ///< Uniprocessor-baseline cycles.
    sim::Cycles parTime = 0;  ///< Parallel-run cycles.
    double speedup = 0.0;
    // Aggregate event counters over all processors of the parallel run.
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t l2Hits = 0;
    std::uint64_t missLocal = 0;
    std::uint64_t missRemoteClean = 0;
    std::uint64_t missRemoteDirty = 0;
    std::uint64_t upgrades = 0;
    std::uint64_t invalsSent = 0;
    std::uint64_t writebacks = 0;
    std::uint64_t lockAcquires = 0;
    std::uint64_t barriersPassed = 0;
};

/** A complete snapshot: every registered app at one machine size. */
struct GoldenSnapshot {
    int version = 1;  ///< Schema version (bump on field changes).
    int procs = 4;    ///< Parallel machine size used.
    std::vector<GoldenEntry> entries;
};

/// The small per-app problem size the snapshot uses (mirrors the
/// integration tests' sizes so the suite stays fast).
std::uint64_t goldenSize(const std::string& app);

/// Run every apps::listApps() variant at goldenSize() on an
/// origin2000(procs) machine and collect the golden numbers.
///
/// `simJobs` is MachineConfig::simJobs for the parallel runs (1 =
/// serial engine, 0 = auto, N > 1 = parallel scout/replay engine).
/// The snapshot must be identical for every value: the parallel
/// engine's bit-identity contract makes this function the
/// differential harness — `toJson(computeGolden(p, N))` must equal
/// `toJson(computeGolden(p, 1))` byte for byte. Timing-variant apps
/// (see apps::timingInvariant) are clamped to serial by core::runApp
/// underneath, so the sweep stays well-defined over the whole
/// registry.
GoldenSnapshot computeGolden(int procs = 4, int simJobs = 1);

/// Serialize to the versioned JSON baseline format.
std::string toJson(const GoldenSnapshot& snap);

/// Load a baseline file; returns false with `err` set on I/O, parse or
/// schema errors (including an unexpected version).
bool loadGoldenFile(const std::string& path, GoldenSnapshot& out,
                    std::string& err);

/// Write a baseline file; returns false with `err` set on I/O errors.
bool writeGoldenFile(const std::string& path,
                     const GoldenSnapshot& snap, std::string& err);

/// Compare current against the baseline. Returns one human-readable
/// line per difference (missing/extra apps, any metric mismatch);
/// empty means the regression gate passes.
std::vector<std::string> diffGolden(const GoldenSnapshot& baseline,
                                    const GoldenSnapshot& current);

} // namespace ccnuma::check

#endif // CCNUMA_CHECK_GOLDEN_HH
