/**
 * @file
 * Sequential-consistency data-value oracle for the directory
 * protocols (MESI, MOESI, and update-based Dragon).
 *
 * The simulator carries no data (applications only issue addresses),
 * so the oracle supplies the data model: every store commit mints a
 * fresh version number, and the oracle mirrors how a real machine
 * would move that value around — per-processor shadow cache-line
 * images, a shadow main memory fed by writebacks and downgrades, and
 * a golden flat memory updated at each store in the scheduler's global
 * commit order (see sim/commit.hh for why transaction processing order
 * is the commit order).
 *
 * Checks, per commit:
 *  - every load's observed value (own copy on a hit, home memory or
 *    the dirty owner's copy on a fill) equals the golden memory's
 *    latest committed value — a stale hit after a skipped invalidation
 *    fails here;
 *  - every store commits while no other processor shadow-caches the
 *    line (single-writer invariant);
 *  - the shadow images never desynchronize from the real cache/
 *    directory state (a hit on a line the protocol never installed,
 *    an invalidation of an absent copy, ... all indicate a protocol
 *    bug);
 *  - every `MachineConfig::check.validateEvery` commits, the full
 *    MemSys::validateCoherence() structural sweep.
 *
 * Violations are recorded (first kMaxViolations), never thrown: a
 * broken run still executes deterministically to completion, which is
 * what makes failing seeds replay bit-identically.
 */

#ifndef CCNUMA_CHECK_ORACLE_HH
#define CCNUMA_CHECK_ORACLE_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/commit.hh"
#include "sim/memsys.hh"

namespace ccnuma::check {

/** One detected violation, anchored to a commit index. */
struct Violation {
    std::string what;       ///< Human-readable description.
    std::uint64_t commit = 0; ///< 1-based load/store commit index.
    sim::ProcId proc = sim::kNoProc;
    sim::LineAddr line = 0;
};

/** The oracle; attach to a MemSys before Machine::run(). */
class ScOracle final : public sim::CommitObserver
{
  public:
    /// Reads the validation cadence from mem.config().check.
    explicit ScOracle(const sim::MemSys& mem);

    // ---- sim::CommitObserver ----
    void onLoad(sim::ProcId p, sim::LineAddr line, sim::DataSource src,
                sim::ProcId supplier) override;
    void onStore(sim::ProcId p, sim::LineAddr line) override;
    void onInval(sim::ProcId p, sim::LineAddr line) override;
    void onUpdate(sim::ProcId p, sim::LineAddr line) override;
    void onDowngrade(sim::ProcId owner, sim::LineAddr line) override;
    void onShareDirty(sim::ProcId owner, sim::LineAddr line) override;
    void onWriteback(sim::ProcId p, sim::LineAddr line) override;
    void onEvict(sim::ProcId p, sim::LineAddr line) override;

    // ---- results ----
    bool failed() const { return !violations_.empty(); }
    const std::vector<Violation>& violations() const
    {
        return violations_;
    }
    /// Total load+store commits observed.
    std::uint64_t commits() const { return commit_; }
    /// Loads whose observed value was checked against the golden memory.
    std::uint64_t loadsChecked() const { return loadsChecked_; }
    /// Cadence validateCoherence() sweeps run.
    std::uint64_t validations() const { return validations_; }

    /// Cap on recorded violations (the first is the witness).
    static constexpr std::size_t kMaxViolations = 16;

  private:
    /// A version number: 0 = the line's initial (memory-zero) value.
    using Version = std::uint64_t;
    struct Written {
        Version version = 0;
        sim::ProcId writer = sim::kNoProc;
        std::uint64_t commit = 0;
    };

    void record(std::string what, sim::ProcId p, sim::LineAddr line);
    void maybeValidate();
    static std::string lineStr(sim::LineAddr line);

    const sim::MemSys& mem_;
    std::uint64_t cadence_ = 0;
    /// Update-based protocol (Dragon): stores refresh remote copies in
    /// place instead of invalidating them, so the single-writer check
    /// does not apply. Stale copies are still caught — a missed update
    /// leaves the old version in the shadow cache and the next load of
    /// it fails the golden-memory comparison.
    bool updateBased_ = false;

    std::uint64_t commit_ = 0;
    std::uint64_t loadsChecked_ = 0;
    std::uint64_t validations_ = 0;
    Version nextVersion_ = 0;

    std::unordered_map<sim::LineAddr, Written> golden_; ///< SC memory.
    std::unordered_map<sim::LineAddr, Version> memImage_;
    /// Per-proc shadow cache images: line -> version held.
    std::vector<std::unordered_map<sim::LineAddr, Version>> cached_;

    std::vector<Violation> violations_;
};

} // namespace ccnuma::check

#endif // CCNUMA_CHECK_ORACLE_HH
