/**
 * @file
 * Randomized litmus/stress harness for the coherence protocol.
 *
 * A seeded generator builds an explicit per-processor operation trace
 * (reads, writes, LL-SC RMWs, prefetches, busy work, lock sections and
 * whole-machine barriers) over three footprints: a hot shared region,
 * a false-shared region (each processor touches its own word of the
 * same lines) and per-processor private regions. The executor drives
 * the trace through a Machine with a ScOracle attached, so every load
 * is checked against the sequential-consistency golden memory and the
 * full cache/directory invariants are swept at the configured cadence.
 *
 * Everything is a pure function of (options, seed): the simulator is
 * deterministic, the generator uses the repo's own xoshiro Rng, and
 * oracle violations are recorded rather than thrown — so a failing
 * seed re-runs bit-identically (StressReport::operator== compares a
 * hash of the complete per-processor timing/counter state). Explicit
 * op traces are what makes automatic shrinking possible: see
 * shrink.hh.
 */

#ifndef CCNUMA_CHECK_STRESS_HH
#define CCNUMA_CHECK_STRESS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/config.hh"
#include "sim/types.hh"

namespace ccnuma::sim {
class SyncObserver;
}

namespace ccnuma::check {

/** One operation in a processor's trace. */
enum class OpKind : std::uint8_t {
    Read,     ///< Load from a footprint line.
    Write,    ///< Store to a footprint line.
    Rmw,      ///< LL-SC read-modify-write on a footprint line.
    Prefetch, ///< Non-binding prefetch of a footprint line.
    Busy,     ///< Compute for `slot` cycles.
    LockAcq,  ///< Acquire lock `slot` (paired with LockRel by group).
    LockRel,  ///< Release lock `slot`.
    Barrier,  ///< Whole-machine barrier (same group on every proc).
};

/** Footprint a memory op targets. */
enum class Region : std::uint8_t {
    Shared,      ///< Hot truly-shared lines (same word for everyone).
    FalseShared, ///< Shared lines, per-processor word within the line.
    Private,     ///< This processor's private lines.
};

/** One generated operation. */
struct Op {
    OpKind kind = OpKind::Busy;
    Region region = Region::Shared;
    std::uint32_t slot = 0;  ///< Line index / lock id / busy cycles.
    std::uint64_t group = 0; ///< Shrink unit; 0 = independently
                             ///< removable, else all ops sharing the
                             ///< id are removed together (lock
                             ///< acquire/release pairs, barrier
                             ///< instances across processors).
};

/** A complete generated program: one op trace per processor. */
struct StressProgram {
    std::vector<std::vector<Op>> ops; ///< Indexed by processor.
    int numLocks = 0;

    int procs() const { return static_cast<int>(ops.size()); }
    std::uint64_t numOps() const;
};

/** Generator/executor parameters. All defaults give a fast (~ms) run. */
struct StressOptions {
    std::uint64_t seed = 1;
    int procs = 8;
    int opsPerProc = 250;
    int sharedLines = 16;      ///< Hot truly-shared footprint (lines).
    int falseSharedLines = 8;  ///< False-shared footprint (lines).
    int privateLines = 32;     ///< Per-processor private lines.
    double writeFrac = 0.30;   ///< P(store) for plain memory ops.
    double rmwFrac = 0.06;     ///< P(LL-SC RMW).
    double prefetchFrac = 0.05;
    double busyFrac = 0.10;
    double sharedFrac = 0.45;      ///< P(hot shared region).
    double falseSharedFrac = 0.20; ///< P(false-shared region).
    double lockFrac = 0.04;    ///< P(open a lock section) per step.
    int numLocks = 2;
    int barriers = 3;          ///< Whole-machine barrier instances.
    std::uint64_t validateEvery = 512; ///< validateCoherence cadence.
    sim::CheckMutation mutation = sim::CheckMutation::None;

    /// Generate a properly-synchronized program: truly-shared lines are
    /// partitioned across the locks (line ≡ lock id mod numLocks) and
    /// touched only inside the owning lock's sections; outside lock
    /// sections only the false-shared and private regions are used.
    /// Such programs are data-race-free by construction — the race
    /// analyzer must report nothing on them, and must report races once
    /// CheckMutation::DropLockAcquire removes the locking.
    bool disciplined = false;

    /// Machine shape template (numProcs/check knobs are overridden by
    /// the fields above). Defaults to a small-cache round-robin-placed
    /// machine so evictions and remote misses are frequent.
    sim::MachineConfig machine = defaultMachine();

    static sim::MachineConfig defaultMachine();
};

/** Outcome of one stress execution (fully deterministic). */
struct StressReport {
    std::uint64_t seed = 0;
    bool failed = false;
    std::string message;       ///< First violation / error.
    std::uint64_t failCommit = 0; ///< Commit index of first violation.
    std::uint64_t commits = 0; ///< Load+store commits observed.
    std::uint64_t loadsChecked = 0;
    std::uint64_t validations = 0;
    std::uint64_t opsExecuted = 0; ///< Trace ops over all processors.
    sim::Cycles finalTime = 0;
    std::uint64_t stateHash = 0; ///< FNV-1a over all times+counters.

    bool operator==(const StressReport&) const = default;
};

/// Build the op traces for (options.seed, options).
StressProgram generate(const StressOptions& opt);

/// Execute a program under the oracle; never throws on violations.
/// `syncObs` (optional) is attached to the Machine for the run, so the
/// race analyzer can observe the same deterministic execution the
/// oracle checks.
StressReport execute(const StressProgram& prog, const StressOptions& opt,
                     sim::SyncObserver* syncObs = nullptr);

/// generate() + execute().
StressReport runStress(const StressOptions& opt);

/// Human-readable trace listing (the shrunk witness report).
std::string formatWitness(const StressProgram& prog);

} // namespace ccnuma::check

#endif // CCNUMA_CHECK_STRESS_HH
