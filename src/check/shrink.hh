/**
 * @file
 * Automatic witness minimization for failing stress programs.
 *
 * Delta-debugging (ddmin-style) over *shrink units* rather than raw
 * ops: an op with group 0 is its own unit, while all ops sharing a
 * nonzero group id form one unit that is removed atomically — a
 * barrier instance spans every processor and a lock section spans its
 * acquire/body/release, so partial removal could deadlock the
 * candidate program instead of reproducing the failure. Each candidate
 * is re-executed with the same options; any run that still fails is
 * accepted (the minimal witness may surface the same protocol bug
 * through a different violation message).
 *
 * Because execution is deterministic, the shrink is too: the same
 * failing seed always minimizes to the same witness.
 */

#ifndef CCNUMA_CHECK_SHRINK_HH
#define CCNUMA_CHECK_SHRINK_HH

#include <functional>

#include "check/stress.hh"

namespace ccnuma::check {

/** Outcome of a shrink: the minimized program and its failing run. */
struct ShrinkResult {
    StressProgram program;  ///< Minimal still-failing program.
    StressReport report;    ///< Its (failing) execution report.
    std::uint64_t opsBefore = 0;
    std::uint64_t opsAfter = 0;
    int runs = 0;           ///< Candidate executions performed.
};

/**
 * Executes one candidate program and judges it. The ddmin loop is
 * agnostic to *what* failed: the SC-oracle path runs execute() and the
 * race-analysis path (ccnuma::analyze) runs the same program under a
 * fresh RaceDetector, each mapping its own violation into
 * StressReport::failed.
 */
using StressRunner = std::function<StressReport(const StressProgram&)>;

/**
 * Minimize `prog` (which must fail under `run`) to a small witness.
 * `maxRuns` bounds the number of candidate executions. If `prog` does
 * not fail, it is returned unchanged with a passing report.
 */
ShrinkResult shrinkWith(const StressProgram& prog,
                        const StressRunner& run, int maxRuns = 600);

/// shrinkWith() judging candidates by execute(prog, opt).
ShrinkResult shrink(const StressProgram& prog, const StressOptions& opt,
                    int maxRuns = 600);

} // namespace ccnuma::check

#endif // CCNUMA_CHECK_SHRINK_HH
