/**
 * @file
 * Abstract global state of one cache line for the model checker.
 *
 * A GlobalState is the projection of the full machine onto the watched
 * line: per-processor {cache state, value freshness, pending prefetch
 * fill} plus the line's directory entry (state, owner, overflow bit,
 * exact sharer set) and whether home memory holds the latest committed
 * value. Data values are symbolic — only "latest committed value or
 * not" matters for the coherence data-value property, which keeps the
 * state space finite without losing the stale-read bugs the checker
 * exists to find.
 *
 * Canonicalization (canonicalKey) quotients the space by processor
 * permutation: the engine's transition relation commutes with any
 * permutation that preserves the directory format's region structure
 * (all of them under fullbv/ptr:N; partition-preserving ones under
 * coarse:K), so BFS over canonical representatives reaches a class iff
 * it reaches a member. See DESIGN.md "Model checking".
 */

#ifndef CCNUMA_MODEL_STATE_HH
#define CCNUMA_MODEL_STATE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/cache.hh"
#include "sim/directory.hh"
#include "sim/protocol.hh"

namespace ccnuma::model {

/** One processor's slice of the abstract state. */
struct ProcState {
    sim::LineState cache = sim::LineState::Invalid;
    /// Copy holds the latest committed value. Normalized to false
    /// while the copy is Invalid (no value to be fresh).
    bool fresh = false;
    /// A prefetch fill for the line is in flight (the transient the
    /// checker folds in; see MemSys::fillPending).
    bool pending = false;

    bool operator==(const ProcState&) const = default;
};

/** The abstract global state of the watched line. */
struct GlobalState {
    std::vector<ProcState> procs;
    sim::DirState dir = sim::DirState::Uncached;
    int owner = -1; ///< processor index, -1 = none
    bool overflow = false;
    std::uint32_t sharers = 0; ///< exact sharer bitmap (bit p)
    bool memFresh = true;      ///< home memory holds the latest value

    bool operator==(const GlobalState&) const = default;

    /// Byte encoding of this exact state (not canonicalized).
    std::string key() const;

    /// The state with processor indices renamed by `perm`
    /// (new index perm[p] plays old p's role).
    GlobalState permuted(const std::vector<int>& perm) const;

    /// One compact human-readable line, e.g.
    /// "P0:S P1:D* dir=Dirty@1 sharers={1} mem=stale"
    /// ('*' marks a pending fill, '!' a stale valid copy).
    std::string describe() const;
};

/**
 * All processor permutations of [0,numProcs) the directory format's
 * fan-out semantics are invariant under: every permutation for fullbv
 * and ptr:N, and the coarse:K region-partition-preserving subgroup
 * (p/K and q/K agree iff the images' regions do) for CoarseVector.
 * numProcs <= 8 (the checker's exhaustive regime).
 */
std::vector<std::vector<int>>
symmetryGroup(const sim::DirectoryConfig& fmt, int numProcs);

/**
 * Lexicographically smallest key() over `perms` — the canonical
 * representative's encoding, used as the visited-set key. Pass a
 * single identity permutation to disable symmetry reduction.
 */
std::string
canonicalKey(const GlobalState& s,
             const std::vector<std::vector<int>>& perms);

} // namespace ccnuma::model

#endif // CCNUMA_MODEL_STATE_HH
