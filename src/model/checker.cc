#include "model/checker.hh"

#include <deque>
#include <unordered_set>
#include <utility>

namespace ccnuma::model {

namespace {

/// A frontier node: the shortest trace that reaches `snap` (whose
/// canonical class is in the visited set).
struct Node {
    std::vector<Step> trace;
    GlobalState snap;
};

/// Narrate `trace` by replaying it step by step: one line per step
/// with the resulting abstract state, ending with the violation.
std::vector<std::string>
narrate(const sim::MachineConfig& cfg, const std::vector<Step>& trace)
{
    std::vector<std::string> out;
    World w(cfg);
    out.push_back("start: " + w.snapshot().describe());
    for (std::size_t i = 0; i < trace.size(); ++i) {
        const bool ok = w.apply(trace[i]);
        std::string line = "step " + std::to_string(i + 1) + ": " +
                           describeStep(trace[i]);
        line += ok ? "  -> " + w.snapshot().describe()
                   : "  -> VIOLATION " + w.violation();
        out.push_back(std::move(line));
        if (!ok)
            break;
    }
    return out;
}

} // namespace

CheckResult
runCheck(const CheckOptions& opts)
{
    CheckResult r;
    r.opts = opts;

    sim::ProtocolConfig proto;
    sim::DirectoryConfig fmt;
    if (!proto.parse(opts.protocol)) {
        r.invariant = "config";
        r.detail = "unknown protocol '" + opts.protocol + "'";
        return r;
    }
    if (!fmt.parse(opts.dirFormat)) {
        r.invariant = "config";
        r.detail = "unknown dir-format '" + opts.dirFormat + "'";
        return r;
    }
    if (opts.procs < 1 || opts.procs > 8) {
        r.invariant = "config";
        r.detail = "procs must be in [1,8] (exhaustive regime)";
        return r;
    }
    const sim::MachineConfig cfg =
        World::makeConfig(proto, fmt, opts.procs, opts.mutation);
    if (std::string err = cfg.validate(); !err.empty()) {
        r.invariant = "config";
        r.detail = err;
        return r;
    }

    // Mutations may break permutation equivariance (see CheckOptions);
    // fall back to the concrete space.
    const bool sym =
        opts.symmetry && opts.mutation == sim::CheckMutation::None;
    std::vector<std::vector<int>> perms;
    if (sym) {
        perms = symmetryGroup(fmt, opts.procs);
    } else {
        std::vector<int> id(static_cast<std::size_t>(opts.procs));
        for (int p = 0; p < opts.procs; ++p)
            id[static_cast<std::size_t>(p)] = p;
        perms.push_back(std::move(id));
    }
    r.symmetryOrder = perms.size();

    const auto report = [&](std::vector<Step> trace,
                            const World& breached) {
        r.invariant = breached.invariant();
        r.detail = breached.violation();
        r.counterexample = std::move(trace);
        // Replay through a fresh engine: a reported witness must be
        // executable and must breach the same invariant again.
        World confirm(cfg);
        confirm.replay(r.counterexample);
        r.replayed = !confirm.violation().empty() &&
                     confirm.invariant() == r.invariant;
        r.script = narrate(cfg, r.counterexample);
        r.ok = false;
    };

    std::unordered_set<std::string> visited;
    std::deque<Node> queue;
    {
        World w0(cfg);
        Node init;
        init.snap = w0.snapshot();
        visited.insert(canonicalKey(init.snap, perms));
        queue.push_back(std::move(init));
        r.states = 1;
    }

    while (!queue.empty()) {
        Node node = std::move(queue.front());
        queue.pop_front();
        if (static_cast<int>(node.trace.size()) > r.depth)
            r.depth = static_cast<int>(node.trace.size());

        // Enabled set is a pure function of the abstract state:
        // Read/Write always, Evict iff the copy is valid, else
        // Prefetch — mirrored from World::enabledSteps.
        for (std::size_t pi = 0; pi < node.snap.procs.size(); ++pi) {
            const sim::ProcId p = static_cast<sim::ProcId>(pi);
            const bool valid = node.snap.procs[pi].cache !=
                               sim::LineState::Invalid;
            const OpKind third =
                valid ? OpKind::Evict : OpKind::Prefetch;
            for (const OpKind k :
                 {OpKind::Read, OpKind::Write, third}) {
                World w(cfg);
                if (w.replay(node.trace) != node.trace.size()) {
                    // Cannot happen: the prefix was violation-free
                    // when enqueued and the engine is deterministic.
                    report(node.trace, w);
                    return r;
                }
                if (!(w.snapshot() == node.snap)) {
                    r.invariant = "determinism";
                    r.detail = "replaying a visited trace reached a "
                               "different state";
                    r.counterexample = node.trace;
                    r.script = narrate(cfg, node.trace);
                    return r;
                }
                std::vector<Step> trace = node.trace;
                trace.push_back({p, k});
                ++r.transitions;
                if (!w.apply({p, k})) {
                    report(std::move(trace), w);
                    return r;
                }
                GlobalState snap = w.snapshot();
                if (visited
                        .insert(canonicalKey(snap, perms))
                        .second) {
                    ++r.states;
                    if (r.states > opts.maxStates) {
                        r.truncated = true;
                        r.detail = "state cap reached before closure";
                        return r;
                    }
                    queue.push_back(
                        {std::move(trace), std::move(snap)});
                }
            }
        }
    }
    r.ok = true;
    return r;
}

std::vector<CheckResult>
runSweep(const std::vector<int>& procs, std::uint64_t maxStates,
         sim::CheckMutation mutation)
{
    static const char* kProtocols[] = {"mesi", "moesi", "dragon"};
    static const char* kFormats[] = {"fullbv", "coarse:4", "ptr:2"};
    std::vector<CheckResult> out;
    for (const char* proto : kProtocols)
        for (const char* fmt : kFormats)
            for (const int p : procs) {
                CheckOptions o;
                o.protocol = proto;
                o.dirFormat = fmt;
                o.procs = p;
                o.maxStates = maxStates;
                o.mutation = mutation;
                out.push_back(runCheck(o));
            }
    return out;
}

std::string
formatResult(const CheckResult& r)
{
    std::string out = "model " + r.opts.protocol + " x " +
                      r.opts.dirFormat + " P=" +
                      std::to_string(r.opts.procs) + ": ";
    if (r.ok) {
        out += "verified, " + std::to_string(r.states) + " states, " +
               std::to_string(r.transitions) + " transitions, depth " +
               std::to_string(r.depth) + " (symmetry x" +
               std::to_string(r.symmetryOrder) + ")\n";
        return out;
    }
    if (r.truncated) {
        out += "TRUNCATED after " + std::to_string(r.states) +
               " states (" + r.detail + ")\n";
        return out;
    }
    out += "VIOLATION of '" + r.invariant + "' in " +
           std::to_string(r.counterexample.size()) +
           " steps (explored " + std::to_string(r.states) +
           " states)\n";
    out += "  " + r.detail + "\n";
    for (const std::string& line : r.script)
        out += "    " + line + "\n";
    out += r.replayed
               ? "  counterexample replays through the engine\n"
               : "  WARNING: counterexample did not replay\n";
    return out;
}

void
emit(core::MetricsSink& sink, const CheckResult& r)
{
    const std::string label = "model/" + r.opts.protocol + "/" +
                              r.opts.dirFormat + "/p" +
                              std::to_string(r.opts.procs);
    sink.addText(label, "protocol", r.opts.protocol);
    sink.addText(label, "dirFormat", r.opts.dirFormat);
    sink.addCount(label, "procs",
                  static_cast<std::uint64_t>(r.opts.procs));
    sink.addCount(label, "states", r.states);
    sink.addCount(label, "transitions", r.transitions);
    sink.addCount(label, "depth",
                  static_cast<std::uint64_t>(r.depth));
    sink.addCount(label, "symmetryOrder",
                  static_cast<std::uint64_t>(r.symmetryOrder));
    sink.addCount(label, "ok", r.ok ? 1 : 0);
    sink.addCount(label, "truncated", r.truncated ? 1 : 0);
    if (!r.ok && !r.invariant.empty()) {
        sink.addText(label, "invariant", r.invariant);
        sink.addText(label, "detail", r.detail);
        sink.addCount(label, "counterexampleSteps",
                      r.counterexample.size());
        sink.addCount(label, "replayed", r.replayed ? 1 : 0);
        for (std::size_t i = 0; i < r.script.size(); ++i)
            sink.addText(label, "script" + std::to_string(i),
                         r.script[i]);
    }
}

} // namespace ccnuma::model
