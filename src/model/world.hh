/**
 * @file
 * The model checker's transition executor: one step = one memory
 * operation run through the *real* engine (MemSys with the machine's
 * actual Protocol tables and DirectoryConfig fan-out rules — there is
 * no hand-written second model), followed by the invariant battery.
 *
 * The machine is deliberately tiny: P processors (one per node), a
 * one-line direct-mapped cache each, and two line addresses — the
 * watched line A and a conflicting line B in the same set, so "evict
 * A" is expressible as an ordinary read of B. Every transition the
 * engine can take on one line at small P is reachable through the four
 * operations {read A, write A, evict A, prefetch A}.
 *
 * Value tracking is symbolic: the World is itself the CommitObserver
 * and maintains one bit per copy ("holds the latest committed value")
 * plus one for home memory, updated exactly by the data-movement hooks
 * (store/fill/supply/update/downgrade/writeback). A protocol that
 * leaves a stale valid copy, fills from stale memory, or supplies
 * stale data trips the data-value invariant at the very step the stale
 * value becomes observable.
 */

#ifndef CCNUMA_MODEL_WORLD_HH
#define CCNUMA_MODEL_WORLD_HH

#include <string>
#include <vector>

#include "model/state.hh"
#include "sim/commit.hh"
#include "sim/config.hh"
#include "sim/memsys.hh"
#include "sim/stats.hh"
#include "sim/topology.hh"

namespace ccnuma::model {

/** The model checker's transition alphabet, per processor. */
enum class OpKind : std::uint8_t {
    Read,     ///< Demand load of the watched line.
    Write,    ///< Demand store to the watched line.
    Evict,    ///< Displace the watched line (read of the conflicting
              ///< line B); enabled only while the copy is valid.
    Prefetch, ///< Non-binding prefetch of the watched line; enabled
              ///< only while the copy is invalid (else a no-op).
};

/** One transition: processor `proc` performs `kind`. */
struct Step {
    sim::ProcId proc = 0;
    OpKind kind = OpKind::Read;

    bool operator==(const Step&) const = default;
};

/// "P2 write"-style rendering of a step.
std::string describeStep(const Step& s);

/** A concrete machine plus the invariant battery. */
class World : private sim::CommitObserver
{
  public:
    /// The tiny machine every check runs: `procs` processors, one per
    /// node, one-line direct-mapped caches, the requested protocol /
    /// directory format, and the requested CheckMutation corruption.
    static sim::MachineConfig makeConfig(const sim::ProtocolConfig& proto,
                                         const sim::DirectoryConfig& fmt,
                                         int procs,
                                         sim::CheckMutation mutation);

    explicit World(const sim::MachineConfig& cfg);

    /// Execute one step through the engine and run every invariant.
    /// @return true if all invariants hold; false with violation()
    ///         set (further steps are refused) otherwise.
    bool apply(const Step& s);

    /// Replay a whole trace; stops at the first violated step.
    /// @return number of steps applied.
    std::size_t replay(const std::vector<Step>& trace);

    /// The steps enabled in the current state, in (proc, op) order.
    /// Read and Write are always enabled; Evict requires a valid
    /// copy, Prefetch an invalid one.
    std::vector<Step> enabledSteps() const;

    /// Abstract projection of the current machine state.
    GlobalState snapshot() const;

    /// "" while every applied step upheld every invariant, else
    /// "<invariant>: <detail>" for the first breach.
    const std::string& violation() const { return violation_; }
    /// Name of the violated invariant ("" when none).
    const std::string& invariant() const { return invariantName_; }

    int numProcs() const { return cfg_.numProcs; }
    const sim::MachineConfig& config() const { return cfg_; }

    /// The watched line's base address (A) and its same-set
    /// conflicting line (B).
    static constexpr sim::Addr kLineA = 1u << 20;
    sim::Addr lineB() const { return kLineA + cfg_.lineBytes; }

  private:
    // ---- CommitObserver (symbolic last-writer value tracking) ----
    void onLoad(sim::ProcId p, sim::LineAddr line, sim::DataSource src,
                sim::ProcId supplier) override;
    void onStore(sim::ProcId p, sim::LineAddr line) override;
    void onInval(sim::ProcId p, sim::LineAddr line) override;
    void onDowngrade(sim::ProcId owner, sim::LineAddr line) override;
    void onWriteback(sim::ProcId p, sim::LineAddr line) override;
    void onEvict(sim::ProcId p, sim::LineAddr line) override;
    void onShareDirty(sim::ProcId owner, sim::LineAddr line) override;
    void onUpdate(sim::ProcId p, sim::LineAddr line) override;

    void fail(const std::string& invariant, const std::string& detail);

    /// State-level invariants, run after every step (see DESIGN.md
    /// "Model checking" for the catalogue). The deltas are this
    /// step's movement of the receiver-side fan-out counters.
    void checkInvariants(const Step& s, const GlobalState& before,
                         const GlobalState& after,
                         std::uint64_t invalsDelta,
                         std::uint64_t updatesDelta,
                         std::uint64_t spuriousDelta);

    std::uint64_t totalInvalsReceived() const;
    std::uint64_t totalUpdatesReceived() const;
    std::uint64_t totalSpurious() const;

    sim::MachineConfig cfg_;
    sim::Topology topo_;
    sim::MemSys mem_;
    std::vector<sim::ProcStats> stats_;
    /// Per-processor: cached copy of A holds the latest committed
    /// value. Meaningful only while the copy is valid.
    std::vector<bool> fresh_;
    /// Home memory holds the latest committed value of A.
    bool memFresh_ = true;
    std::uint64_t steps_ = 0;
    std::string violation_;
    std::string invariantName_;
};

} // namespace ccnuma::model

#endif // CCNUMA_MODEL_WORLD_HH
