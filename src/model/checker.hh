/**
 * @file
 * Exhaustive reachability analysis (Murphi-style explicit-state BFS)
 * over the World's transition system, with canonical-state hashing,
 * symmetry reduction over processor permutation, and shortest-
 * counterexample extraction.
 *
 * Because exploration is breadth-first over canonical state classes,
 * the first invariant breach found is a *minimum-length* transition
 * script; it is replayed through a fresh engine before being reported,
 * so every counterexample is an executable witness, not a symbolic
 * artifact. `ccnuma_verify model` drives runCheck/runSweep.
 */

#ifndef CCNUMA_MODEL_CHECKER_HH
#define CCNUMA_MODEL_CHECKER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/metrics.hh"
#include "model/world.hh"
#include "sim/config.hh"

namespace ccnuma::model {

/** One exhaustive check: a protocol x directory format x P machine. */
struct CheckOptions {
    std::string protocol = "mesi";
    std::string dirFormat = "fullbv";
    int procs = 2;
    /// Stop (truncated, not verified) past this many canonical
    /// states; the default is far above any one-line state space.
    std::uint64_t maxStates = 1u << 20;
    /// Deliberate protocol corruption the search must catch.
    sim::CheckMutation mutation = sim::CheckMutation::None;
    /// Quotient by processor permutation. Forced off when a mutation
    /// is active: SkipInvalidation spares the *first* fan-out target,
    /// which breaks permutation equivariance, so mutated searches
    /// run the full concrete space (still tiny at P <= 4).
    bool symmetry = true;
};

/** Outcome of one exhaustive check. */
struct CheckResult {
    CheckOptions opts;
    std::uint64_t states = 0;      ///< canonical state classes reached
    std::uint64_t transitions = 0; ///< concrete transitions explored
    int depth = 0;                 ///< deepest BFS level expanded
    std::size_t symmetryOrder = 1; ///< |permutation group| applied
    bool truncated = false;        ///< hit maxStates before closure
    bool ok = false; ///< space exhausted, every invariant held

    // Violation report (ok == false && !invariant.empty()).
    std::string invariant; ///< first violated invariant's name
    std::string detail;    ///< human-readable breach description
    std::vector<Step> counterexample; ///< shortest breaching trace
    std::vector<std::string> script;  ///< narrated transition script
    /// The counterexample re-ran through a fresh engine and breached
    /// the same invariant (always true for reported violations; the
    /// checker refuses to report a witness it cannot replay).
    bool replayed = false;
};

/// Exhaustively enumerate the reachable states of `opts`'s machine
/// and check every invariant at every state.
CheckResult runCheck(const CheckOptions& opts);

/// The ISSUE's verification matrix: every {mesi,moesi,dragon} x
/// {fullbv,coarse:4,ptr:2} combo at each P in `procs`.
std::vector<CheckResult> runSweep(const std::vector<int>& procs,
                                  std::uint64_t maxStates,
                                  sim::CheckMutation mutation);

/// Multi-line human rendering (verdict, state counts, script).
std::string formatResult(const CheckResult& r);

/// JSON entry under "model/<protocol>/<dirFormat>/p<P>": counts
/// states/transitions/depth/symmetryOrder/ok, the violated invariant
/// and narrated script when breached.
void emit(core::MetricsSink& sink, const CheckResult& r);

} // namespace ccnuma::model

#endif // CCNUMA_MODEL_CHECKER_HH
