#include "model/state.hh"

#include <algorithm>

namespace ccnuma::model {

namespace {

char
stateChar(sim::LineState s)
{
    switch (s) {
      case sim::LineState::Invalid:
        return 'I';
      case sim::LineState::Shared:
        return 'S';
      case sim::LineState::Dirty:
        return 'D';
      case sim::LineState::Owned:
        return 'O';
    }
    return '?';
}

} // namespace

std::string
GlobalState::key() const
{
    std::string k;
    k.reserve(procs.size() + 8);
    for (const ProcState& p : procs)
        k.push_back(static_cast<char>(
            static_cast<int>(p.cache) | (p.fresh ? 0x10 : 0) |
            (p.pending ? 0x20 : 0)));
    k.push_back(static_cast<char>(dir));
    k.push_back(static_cast<char>(owner + 1));
    k.push_back(overflow ? 1 : 0);
    k.push_back(static_cast<char>(sharers & 0xff));
    k.push_back(static_cast<char>((sharers >> 8) & 0xff));
    k.push_back(static_cast<char>((sharers >> 16) & 0xff));
    k.push_back(static_cast<char>((sharers >> 24) & 0xff));
    k.push_back(memFresh ? 1 : 0);
    return k;
}

GlobalState
GlobalState::permuted(const std::vector<int>& perm) const
{
    GlobalState out = *this;
    for (std::size_t p = 0; p < procs.size(); ++p)
        out.procs[static_cast<std::size_t>(perm[p])] = procs[p];
    out.owner = owner >= 0 ? perm[static_cast<std::size_t>(owner)] : -1;
    out.sharers = 0;
    for (std::size_t p = 0; p < procs.size(); ++p)
        if (sharers & (1u << p))
            out.sharers |= 1u << perm[p];
    return out;
}

std::string
GlobalState::describe() const
{
    std::string out;
    for (std::size_t p = 0; p < procs.size(); ++p) {
        out += "P" + std::to_string(p) + ":";
        out.push_back(stateChar(procs[p].cache));
        if (procs[p].cache != sim::LineState::Invalid &&
            !procs[p].fresh)
            out.push_back('!');
        if (procs[p].pending)
            out.push_back('*');
        out.push_back(' ');
    }
    out += "dir=";
    switch (dir) {
      case sim::DirState::Uncached:
        out += "Uncached";
        break;
      case sim::DirState::Shared:
        out += "Shared";
        break;
      case sim::DirState::Dirty:
        out += "Dirty";
        break;
      case sim::DirState::Owned:
        out += "Owned";
        break;
    }
    if (owner >= 0)
        out += "@" + std::to_string(owner);
    if (overflow)
        out += "^"; // ptr:N overflow: fan-outs broadcast
    out += " sharers={";
    bool first = true;
    for (std::size_t p = 0; p < procs.size(); ++p)
        if (sharers & (1u << p)) {
            if (!first)
                out += ",";
            out += std::to_string(p);
            first = false;
        }
    out += "} mem=";
    out += memFresh ? "fresh" : "stale";
    return out;
}

std::vector<std::vector<int>>
symmetryGroup(const sim::DirectoryConfig& fmt, int numProcs)
{
    std::vector<int> perm(static_cast<std::size_t>(numProcs));
    for (int p = 0; p < numProcs; ++p)
        perm[static_cast<std::size_t>(p)] = p;
    const bool regioned = fmt.format == sim::DirFormat::CoarseVector;
    const int k = regioned ? fmt.param : numProcs;
    std::vector<std::vector<int>> out;
    do {
        // coarse:K fan-out signals whole regions of K consecutive
        // processor ids, so only permutations inducing a bijection on
        // that partition commute with the transition relation.
        bool ok = true;
        for (int p = 0; ok && p < numProcs; ++p)
            for (int q = p + 1; ok && q < numProcs; ++q)
                if ((p / k == q / k) !=
                    (perm[static_cast<std::size_t>(p)] / k ==
                     perm[static_cast<std::size_t>(q)] / k))
                    ok = false;
        if (ok)
            out.push_back(perm);
    } while (std::next_permutation(perm.begin(), perm.end()));
    return out;
}

std::string
canonicalKey(const GlobalState& s,
             const std::vector<std::vector<int>>& perms)
{
    std::string best = s.key();
    for (const std::vector<int>& perm : perms) {
        std::string k = s.permuted(perm).key();
        if (k < best)
            best = std::move(k);
    }
    return best;
}

} // namespace ccnuma::model
