#include "model/world.hh"

#include <algorithm>

namespace ccnuma::model {

namespace {

const char*
opName(OpKind k)
{
    switch (k) {
      case OpKind::Read:
        return "read";
      case OpKind::Write:
        return "write";
      case OpKind::Evict:
        return "evict";
      case OpKind::Prefetch:
        return "prefetch";
    }
    return "?";
}

} // namespace

std::string
describeStep(const Step& s)
{
    return "P" + std::to_string(s.proc) + " " + opName(s.kind);
}

sim::MachineConfig
World::makeConfig(const sim::ProtocolConfig& proto,
                  const sim::DirectoryConfig& fmt, int procs,
                  sim::CheckMutation mutation)
{
    sim::MachineConfig cfg;
    cfg.numProcs = procs;
    cfg.procsPerNode = 1;  // one processor per node: fully symmetric
    cfg.nodesPerRouter = 1; // keep odd node counts (P=3) well-formed
    cfg.cacheAssoc = 1;
    // One line per cache: line B conflicts with line A, so every
    // reachable eviction interleaving is forced with a single address
    // pair.
    cfg.cacheBytes = cfg.lineBytes;
    cfg.protocol = proto;
    cfg.dirFormat = fmt;
    cfg.check.mutation = mutation;
    cfg.simJobs = 1;
    return cfg;
}

World::World(const sim::MachineConfig& cfg)
    : cfg_(cfg.resolved()),
      topo_(cfg_),
      mem_(cfg_, topo_),
      stats_(static_cast<std::size_t>(cfg_.numProcs)),
      fresh_(static_cast<std::size_t>(cfg_.numProcs), false)
{
    mem_.attachCommitObserver(this);
    mem_.attachStats(&stats_);
}

bool
World::apply(const Step& s)
{
    if (!violation_.empty())
        return false;
    const GlobalState before = snapshot();
    const std::uint64_t inv_before = totalInvalsReceived();
    const std::uint64_t upd_before = totalUpdatesReceived();
    const std::uint64_t spu_before = totalSpurious();
    ++steps_;
    // Timestamps only pace the contention clocks; state transitions
    // are time-independent, so any monotone sequence serves.
    const sim::Cycles now = steps_ * 100000;
    sim::ProcStats& st = stats_[static_cast<std::size_t>(s.proc)];
    switch (s.kind) {
      case OpKind::Read:
        mem_.access(s.proc, now, kLineA, false, st);
        break;
      case OpKind::Write:
        mem_.access(s.proc, now, kLineA, true, st);
        break;
      case OpKind::Evict:
        mem_.access(s.proc, now, lineB(), false, st);
        break;
      case OpKind::Prefetch:
        mem_.prefetch(s.proc, now, kLineA, st);
        break;
    }
    // A commit hook may already have recorded a data-value breach
    // (stale hit / stale fill / stale supply); that report wins.
    if (violation_.empty())
        checkInvariants(s, before, snapshot(),
                        totalInvalsReceived() - inv_before,
                        totalUpdatesReceived() - upd_before,
                        totalSpurious() - spu_before);
    return violation_.empty();
}

std::size_t
World::replay(const std::vector<Step>& trace)
{
    std::size_t n = 0;
    for (const Step& s : trace) {
        if (!apply(s))
            return n;
        ++n;
    }
    return n;
}

std::vector<Step>
World::enabledSteps() const
{
    std::vector<Step> out;
    out.reserve(static_cast<std::size_t>(cfg_.numProcs) * 3);
    for (int p = 0; p < cfg_.numProcs; ++p) {
        const sim::ProcId pid = static_cast<sim::ProcId>(p);
        out.push_back({pid, OpKind::Read});
        out.push_back({pid, OpKind::Write});
        if (mem_.cache(pid).probe(kLineA) != sim::LineState::Invalid)
            out.push_back({pid, OpKind::Evict});
        else
            out.push_back({pid, OpKind::Prefetch});
    }
    return out;
}

GlobalState
World::snapshot() const
{
    GlobalState g;
    g.procs.resize(static_cast<std::size_t>(cfg_.numProcs));
    for (int p = 0; p < cfg_.numProcs; ++p) {
        const sim::ProcId pid = static_cast<sim::ProcId>(p);
        ProcState& ps = g.procs[static_cast<std::size_t>(p)];
        ps.cache = mem_.cache(pid).probe(kLineA);
        ps.fresh = ps.cache != sim::LineState::Invalid &&
                   fresh_[static_cast<std::size_t>(p)];
        ps.pending = mem_.fillPending(pid, kLineA);
    }
    if (const sim::DirEntry* e = mem_.directory().probe(kLineA)) {
        g.dir = e->state;
        g.owner = e->owner == sim::kNoProc ? -1 : e->owner;
        g.overflow = e->overflow;
        e->sharers.forEach(
            [&g](sim::ProcId q) { g.sharers |= 1u << q; });
    }
    g.memFresh = memFresh_;
    return g;
}

void
World::fail(const std::string& invariant, const std::string& detail)
{
    if (!violation_.empty())
        return; // first breach wins
    invariantName_ = invariant;
    violation_ = invariant + ": " + detail;
}

void
World::checkInvariants(const Step& s, const GlobalState& before,
                       const GlobalState& after,
                       std::uint64_t invalsDelta,
                       std::uint64_t updatesDelta,
                       std::uint64_t spuriousDelta)
{
    const int procs = cfg_.numProcs;
    const sim::Protocol& proto = mem_.protocol();

    // data-value: every valid copy must hold the latest committed
    // value (the symbolic last-writer property; a protocol that
    // "forgets" an invalidation or update leaves a stale copy here).
    for (int q = 0; q < procs; ++q) {
        const ProcState& ps = after.procs[static_cast<std::size_t>(q)];
        if (ps.cache != sim::LineState::Invalid && !ps.fresh) {
            fail("data-value",
                 "P" + std::to_string(q) +
                     " holds a stale valid copy after " +
                     describeStep(s) + " [" + after.describe() + "]");
            return;
        }
    }

    // coherence: the engine's own structural cache<->directory
    // invariants (single-writer/multiple-reader, sharer registration,
    // owner consistency).
    if (std::string err = mem_.validateCoherence(); !err.empty()) {
        fail("coherence", err + " after " + describeStep(s));
        return;
    }

    // memory-currency: a directory state that promises current home
    // memory (Uncached/Shared) must sit over a fresh copy in memory;
    // a modified-ownership state (Dirty/Owned) implies memory is
    // stale — MOESI's Owned-implies-stale-memory, generalized.
    const bool dir_clean = after.dir == sim::DirState::Uncached ||
                           after.dir == sim::DirState::Shared;
    if (dir_clean && !after.memFresh) {
        fail("memory-currency",
             "directory promises current memory but home memory is "
             "stale after " +
                 describeStep(s) + " [" + after.describe() + "]");
        return;
    }
    if (!dir_clean && after.memFresh) {
        fail("memory-currency",
             "modified-ownership directory state over fresh home "
             "memory after " +
                 describeStep(s) + " [" + after.describe() + "]");
        return;
    }

    // state-liveness: no cache may sit in a state the protocol's own
    // tables cannot drive a line into (e.g. Owned under MESI).
    const unsigned live = proto.reachableStates();
    for (int q = 0; q < procs; ++q) {
        const unsigned bit =
            1u << static_cast<int>(
                after.procs[static_cast<std::size_t>(q)].cache);
        if (!(live & bit)) {
            fail("state-liveness",
                 "P" + std::to_string(q) +
                     " entered a cache state outside the protocol "
                     "table's reachable set [" +
                     after.describe() + "]");
            return;
        }
    }

    // fanout-exact: the full bit vector is exact — it never signals a
    // processor without a copy, so spurious fan-out must stay zero.
    if (cfg_.dirFormat.format == sim::DirFormat::FullBitVector &&
        spuriousDelta != 0) {
        fail("fanout-exact",
             "fullbv fan-out signalled " +
                 std::to_string(spuriousDelta) +
                 " processor(s) without a copy during " +
                 describeStep(s));
        return;
    }

    // fanout-superset: whatever the format compresses away, the
    // processors it *would* signal must cover every valid copy —
    // otherwise a future invalidation/update misses a holder.
    {
        sim::DirEntry e;
        e.state = after.dir;
        e.owner = after.owner < 0
                      ? sim::kNoProc
                      : static_cast<sim::ProcId>(after.owner);
        e.overflow = after.overflow;
        for (int q = 0; q < procs; ++q)
            if (after.sharers & (1u << q))
                e.sharers.add(static_cast<sim::ProcId>(q));
        std::uint32_t targets = 0;
        forEachFanoutTarget(cfg_.dirFormat, e, procs,
                            [&targets](sim::ProcId t) {
                                targets |= 1u << t;
                            });
        for (int q = 0; q < procs; ++q) {
            const bool valid =
                after.procs[static_cast<std::size_t>(q)].cache !=
                sim::LineState::Invalid;
            if (valid && !(targets & (1u << q))) {
                fail("fanout-superset",
                     "P" + std::to_string(q) +
                         " holds a copy the directory format would "
                         "not signal [" +
                         after.describe() + "]");
                return;
            }
        }
    }

    // fanout-accounting: every destroyed remote copy was a received
    // invalidation, and (update protocols) a store refreshed exactly
    // the surviving remote copies.
    std::uint64_t destroyed = 0;
    std::uint64_t survivors = 0;
    for (int q = 0; q < procs; ++q) {
        if (q == s.proc)
            continue;
        const bool was =
            before.procs[static_cast<std::size_t>(q)].cache !=
            sim::LineState::Invalid;
        const bool is =
            after.procs[static_cast<std::size_t>(q)].cache !=
            sim::LineState::Invalid;
        if (was && !is)
            ++destroyed;
        if (was && is)
            ++survivors;
    }
    if (invalsDelta != destroyed) {
        fail("fanout-accounting",
             "invalsReceived moved by " + std::to_string(invalsDelta) +
                 " but " + std::to_string(destroyed) +
                 " remote copies died during " + describeStep(s));
        return;
    }
    const std::uint64_t expect_upd =
        s.kind == OpKind::Write && proto.updateBased ? survivors : 0;
    if (updatesDelta != expect_upd) {
        fail("fanout-accounting",
             "updatesReceived moved by " +
                 std::to_string(updatesDelta) + " but " +
                 std::to_string(expect_upd) +
                 " surviving remote copies should absorb " +
                 describeStep(s));
        return;
    }

    // no-stuck: the machine can always make progress, and every
    // in-flight fill has its consuming demand access enabled. The
    // engine's transactions are atomic, so this is a structural
    // check: it guards against a future transient model whose
    // pending states lose their successors.
    const std::vector<Step> en = enabledSteps();
    if (en.empty()) {
        fail("no-stuck", "no enabled transition after " +
                             describeStep(s));
        return;
    }
    for (int q = 0; q < procs; ++q) {
        if (!after.procs[static_cast<std::size_t>(q)].pending)
            continue;
        const Step consume{static_cast<sim::ProcId>(q), OpKind::Read};
        if (std::find(en.begin(), en.end(), consume) == en.end()) {
            fail("no-stuck",
                 "P" + std::to_string(q) +
                     " has a pending fill with no enabled consuming "
                     "access [" +
                     after.describe() + "]");
            return;
        }
    }
}

std::uint64_t
World::totalInvalsReceived() const
{
    std::uint64_t n = 0;
    for (const sim::ProcStats& st : stats_)
        n += st.c.invalsReceived;
    return n;
}

std::uint64_t
World::totalUpdatesReceived() const
{
    std::uint64_t n = 0;
    for (const sim::ProcStats& st : stats_)
        n += st.c.updatesReceived;
    return n;
}

std::uint64_t
World::totalSpurious() const
{
    std::uint64_t n = 0;
    for (const sim::ProcStats& st : stats_)
        n += st.c.invalsSpurious;
    return n;
}

// ---- CommitObserver: symbolic last-writer value tracking ----

void
World::onLoad(sim::ProcId p, sim::LineAddr line, sim::DataSource src,
              sim::ProcId supplier)
{
    if (line != kLineA)
        return;
    const std::size_t pi = static_cast<std::size_t>(p);
    switch (src) {
      case sim::DataSource::CacheHit:
        if (!fresh_[pi])
            fail("data-value", "P" + std::to_string(p) +
                                   " read a stale cached copy");
        break;
      case sim::DataSource::Memory:
        if (!memFresh_)
            fail("data-value", "P" + std::to_string(p) +
                                   " filled from stale home memory");
        fresh_[pi] = memFresh_;
        break;
      case sim::DataSource::Owner:
        if (supplier == sim::kNoProc ||
            !fresh_[static_cast<std::size_t>(supplier)])
            fail("data-value", "P" + std::to_string(p) +
                                   " was supplied a stale line by the "
                                   "owner");
        fresh_[pi] = supplier != sim::kNoProc &&
                     fresh_[static_cast<std::size_t>(supplier)];
        break;
    }
}

void
World::onStore(sim::ProcId p, sim::LineAddr line)
{
    if (line != kLineA)
        return;
    std::fill(fresh_.begin(), fresh_.end(), false);
    fresh_[static_cast<std::size_t>(p)] = true;
    memFresh_ = false;
}

void
World::onInval(sim::ProcId p, sim::LineAddr line)
{
    if (line != kLineA)
        return;
    fresh_[static_cast<std::size_t>(p)] = false;
}

void
World::onDowngrade(sim::ProcId owner, sim::LineAddr line)
{
    if (line != kLineA)
        return;
    memFresh_ = fresh_[static_cast<std::size_t>(owner)];
}

void
World::onWriteback(sim::ProcId p, sim::LineAddr line)
{
    if (line != kLineA)
        return;
    memFresh_ = fresh_[static_cast<std::size_t>(p)];
}

void
World::onEvict(sim::ProcId, sim::LineAddr)
{
    // Clean eviction: no data moved, freshness of the remaining
    // copies and memory is unchanged.
}

void
World::onShareDirty(sim::ProcId, sim::LineAddr)
{
    // Owner-forwarded sharing: the owner keeps the only up-to-date
    // copy and home memory stays as it was (stale).
}

void
World::onUpdate(sim::ProcId p, sim::LineAddr line)
{
    if (line != kLineA)
        return;
    fresh_[static_cast<std::size_t>(p)] = true;
}

} // namespace ccnuma::model
