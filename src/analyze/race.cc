/**
 * @file
 * FastTrack-style happens-before race detection (see race.hh).
 */

#include "analyze/race.hh"

#include <algorithm>
#include <sstream>

namespace ccnuma::analyze {

namespace {

const char*
opName(sim::MemOp k)
{
    switch (k) {
    case sim::MemOp::Load:
        return "load";
    case sim::MemOp::Store:
        return "store";
    case sim::MemOp::Rmw:
        return "rmw";
    }
    return "?";
}

std::string
lockList(const std::vector<int>& locks)
{
    if (locks.empty())
        return "none";
    std::ostringstream os;
    for (std::size_t i = 0; i < locks.size(); ++i)
        os << (i ? "," : "") << locks[i];
    return os.str();
}

std::vector<int>
intersect(const std::vector<int>& a, const std::vector<int>& b)
{
    std::vector<int> out;
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(out));
    return out;
}

} // namespace

std::string
Race::format() const
{
    std::ostringstream os;
    os << "data race on 0x" << std::hex << addr << " (line 0x" << line
       << std::dec << "): P" << prior.proc << " " << opName(prior.kind)
       << " #" << prior.opTag << " [locks " << lockList(prior.locksHeld)
       << "] vs P" << current.proc << " " << opName(current.kind) << " #"
       << current.opTag << " [locks " << lockList(current.locksHeld)
       << "], common locks " << lockList(commonLocks) << ", after "
       << barrierEpisodes << " barrier episode(s)";
    return os.str();
}

RaceDetector::RaceDetector(int nprocs, std::uint32_t line_bytes,
                           DetectorOptions opt)
    : opt_(opt),
      lineMask_(~(line_bytes - 1u)),
      nprocs_(nprocs)
{
    clocks_.reserve(static_cast<std::size_t>(nprocs));
    for (int p = 0; p < nprocs; ++p) {
        clocks_.emplace_back(nprocs);
        // Each processor starts in its own epoch 1@p, so accesses from
        // distinct processors with no intervening synchronization are
        // correctly concurrent (a shared zero epoch would be vacuously
        // covered by everyone).
        clocks_.back().set(p, 1);
    }
    opTag_.assign(static_cast<std::size_t>(nprocs), 0);
    held_.assign(static_cast<std::size_t>(nprocs), {});
}

RaceDetector::~RaceDetector() = default;

Epoch
RaceDetector::epochOf(sim::ProcId p) const
{
    return Epoch{clocks_[static_cast<std::size_t>(p)].get(p), p};
}

AccessSite
RaceDetector::siteOf(sim::ProcId p, sim::MemOp kind,
                     std::uint64_t tag) const
{
    return AccessSite{p, tag, kind, held_[static_cast<std::size_t>(p)]};
}

void
RaceDetector::report(Shadow& sh, sim::Addr addr, const AccessSite& prior,
                     const AccessSite& current)
{
    ++st_.racesFound;
    // Record only the first race per byte: a racy location keeps racing
    // on every later access, and near-duplicate reports would crowd
    // genuinely distinct locations out of the maxRaces window.
    if (sh.raceReported ||
        races_.size() >= static_cast<std::size_t>(opt_.maxRaces))
        return;
    sh.raceReported = true;
    Race r;
    r.addr = addr;
    r.line = addr & lineMask_;
    r.prior = prior;
    r.current = current;
    r.commonLocks = intersect(prior.locksHeld, current.locksHeld);
    r.barrierEpisodes = st_.barrierEpisodes;
    races_.push_back(std::move(r));
}

void
RaceDetector::updateLockset(Shadow& sh, sim::ProcId p, bool write)
{
    const auto& held = held_[static_cast<std::size_t>(p)];
    if (!sh.locksetInit) {
        sh.lockset = held;
        sh.locksetInit = true;
    } else if (!sh.lockset.empty()) {
        sh.lockset = intersect(sh.lockset, held);
    }
    if (write) {
        if (sh.firstWriter == sim::kNoProc) {
            sh.firstWriter = p;
            sh.writerProcs = 1;
        } else if (sh.firstWriter != p && sh.writerProcs < 2) {
            sh.writerProcs = 2;
        }
    }
    // Eraser condition: written by two processors with no common lock.
    // Advisory only — the vector clocks decide what actually raced.
    if (sh.lockset.empty() && sh.writerProcs >= 2 && !sh.locksetAlarmed) {
        sh.locksetAlarmed = true;
        ++st_.locksetAlarms;
    }
}

void
RaceDetector::onMemOp(sim::ProcId p, sim::Addr addr, sim::MemOp kind)
{
    ++st_.memOps;
    const std::uint64_t tag = ++opTag_[static_cast<std::size_t>(p)];
    Shadow& sh = shadow_[addr];
    VectorClock& C = clocks_[static_cast<std::size_t>(p)];
    const AccessSite cur = siteOf(p, kind, tag);

    // Writers (plain stores and RMWs) conflict with prior reads.
    const auto checkReads = [&] {
        if (sh.reads) {
            for (sim::ProcId t = 0; t < nprocs_; ++t) {
                if (t == p)
                    continue;
                if (sh.reads->clocks[static_cast<std::size_t>(t)] >
                    C.get(t))
                    report(sh, addr,
                           AccessSite{t,
                                      sh.reads->tags
                                          [static_cast<std::size_t>(t)],
                                      sim::MemOp::Load,
                                      {}},
                           cur);
            }
        } else if (!C.covers(sh.read)) {
            report(sh, addr,
                   AccessSite{sh.read.tid, sh.readTag, sim::MemOp::Load,
                              sh.readLocks},
                   cur);
        }
    };
    const auto checkWrite = [&] {
        if (!C.covers(sh.write))
            report(sh, addr,
                   AccessSite{sh.write.tid, sh.writeTag,
                              sim::MemOp::Store, sh.writeLocks},
                   cur);
    };
    const auto checkAtomic = [&] {
        if (!C.covers(sh.atomic))
            report(sh, addr,
                   AccessSite{sh.atomic.tid, sh.atomicTag,
                              sim::MemOp::Rmw,
                              {}},
                   cur);
    };

    switch (kind) {
    case sim::MemOp::Load: {
        checkWrite();
        checkAtomic();
        updateLockset(sh, p, /*write=*/false);
        if (sh.reads) {
            sh.reads->clocks[static_cast<std::size_t>(p)] = C.get(p);
            sh.reads->tags[static_cast<std::size_t>(p)] = tag;
        } else if (sh.read.empty() || sh.read.tid == p ||
                   C.covers(sh.read)) {
            // Ordered after (or same thread as) the previous read: the
            // epoch representation still suffices.
            sh.read = epochOf(p);
            sh.readTag = tag;
            sh.readLocks = held_[static_cast<std::size_t>(p)];
        } else {
            // Genuinely concurrent reads: escalate to a full vector of
            // read clocks (FastTrack's slow path).
            ++st_.readEscalations;
            auto rv = std::make_unique<Shadow::ReadVector>();
            rv->clocks.assign(static_cast<std::size_t>(nprocs_), 0);
            rv->tags.assign(static_cast<std::size_t>(nprocs_), 0);
            rv->clocks[static_cast<std::size_t>(sh.read.tid)] =
                sh.read.clock;
            rv->tags[static_cast<std::size_t>(sh.read.tid)] = sh.readTag;
            rv->clocks[static_cast<std::size_t>(p)] = C.get(p);
            rv->tags[static_cast<std::size_t>(p)] = tag;
            sh.reads = std::move(rv);
            sh.read = Epoch{};
            sh.readLocks.clear();
        }
        break;
    }
    case sim::MemOp::Store: {
        checkWrite();
        checkAtomic();
        checkReads();
        updateLockset(sh, p, /*write=*/true);
        sh.write = epochOf(p);
        sh.writeTag = tag;
        sh.writeLocks = held_[static_cast<std::size_t>(p)];
        // FastTrack write-clears-reads: later accesses are checked
        // against this write, which now dominates the read history.
        sh.read = Epoch{};
        sh.readTag = 0;
        sh.readLocks.clear();
        sh.reads.reset();
        break;
    }
    case sim::MemOp::Rmw: {
        // Atomic RMWs conflict with plain accesses but not each other,
        // so they keep their own epoch and skip the atomic check.
        checkWrite();
        checkReads();
        updateLockset(sh, p, /*write=*/true);
        sh.atomic = epochOf(p);
        sh.atomicTag = tag;
        break;
    }
    }
}

void
RaceDetector::onLockAcquired(sim::ProcId p, int lock)
{
    ++st_.syncOps;
    auto [it, inserted] = lockClock_.try_emplace(lock, nprocs_);
    if (!inserted) {
        clocks_[static_cast<std::size_t>(p)].join(it->second);
        ++st_.vcJoins;
    }
    auto& held = held_[static_cast<std::size_t>(p)];
    held.insert(std::lower_bound(held.begin(), held.end(), lock), lock);
}

void
RaceDetector::onLockReleased(sim::ProcId p, int lock)
{
    ++st_.syncOps;
    auto [it, inserted] = lockClock_.try_emplace(lock, nprocs_);
    VectorClock& C = clocks_[static_cast<std::size_t>(p)];
    it->second = C; // L_l := C_p (publish everything before release)
    C.inc(p);       // fresh epoch for everything after
    auto& held = held_[static_cast<std::size_t>(p)];
    const auto pos = std::lower_bound(held.begin(), held.end(), lock);
    if (pos != held.end() && *pos == lock)
        held.erase(pos);
}

void
RaceDetector::onBarrierArrive(sim::ProcId p, int barrier,
                              std::uint64_t /*episode*/)
{
    ++st_.syncOps;
    auto [it, inserted] = barrierClock_.try_emplace(barrier, nprocs_);
    VectorClock& C = clocks_[static_cast<std::size_t>(p)];
    it->second.join(C); // B_b accumulates every arrival
    ++st_.vcJoins;
    C.inc(p);
}

void
RaceDetector::onBarrierDepart(sim::ProcId p, int barrier,
                              std::uint64_t episode)
{
    ++st_.syncOps;
    auto [it, inserted] = barrierClock_.try_emplace(barrier, nprocs_);
    clocks_[static_cast<std::size_t>(p)].join(it->second);
    ++st_.vcJoins;
    if (episode + 1 > st_.barrierEpisodes)
        st_.barrierEpisodes = episode + 1;
}

void
RaceDetector::onTaskSteal(sim::ProcId /*thief*/, sim::ProcId /*victim*/)
{
    // The steal is already ordered by the victim queue's lock (the
    // thief holds it, so the release->acquire edge carries the
    // happens-before); this callback is context/statistics only.
    ++st_.syncOps;
    ++st_.stealEdges;
}

DetectorStats
RaceDetector::stats() const
{
    DetectorStats s = st_;
    s.shadowLocations = shadow_.size();
    std::uint64_t bytes =
        shadow_.size() *
        (sizeof(std::pair<const sim::Addr, Shadow>) + 2 * sizeof(void*));
    for (const auto& [addr, sh] : shadow_) {
        if (sh.reads)
            bytes += sizeof(Shadow::ReadVector) +
                     static_cast<std::uint64_t>(nprocs_) *
                         (sizeof(Clock) + sizeof(std::uint64_t));
        bytes += (sh.lockset.capacity() + sh.writeLocks.capacity() +
                  sh.readLocks.capacity()) *
                 sizeof(int);
    }
    s.shadowBytes = bytes;
    return s;
}

} // namespace ccnuma::analyze
