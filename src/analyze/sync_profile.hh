/**
 * @file
 * Lightweight synchronization-structure profiler over the
 * sim::SyncObserver surface.
 *
 * Where the RaceDetector (race.hh) consumes the observer stream to
 * prove ordering, SyncProfile merely *summarizes* it: which locks are
 * acquired how often and by how many distinct processors, how
 * concentrated the locking is (one global lock vs many fine-grained
 * ones), and how many barrier episodes the run went through. The
 * ccnuma::diagnose verdict engine combines these structural facts with
 * the timing split (ProcTimes::lockWait / barrierWait) to tell a lock
 * convoy from barrier imbalance.
 *
 * O(1) per callback, no shadow memory — cheap enough to leave attached
 * on every diagnosis run.
 */

#ifndef CCNUMA_ANALYZE_SYNC_PROFILE_HH
#define CCNUMA_ANALYZE_SYNC_PROFILE_HH

#include <cstdint>
#include <vector>

#include "sim/sync_observer.hh"

namespace ccnuma::analyze {

/** Aggregate synchronization structure of one run. */
struct SyncSummary {
    std::uint64_t memOps = 0;       ///< Demand accesses observed.
    std::uint64_t lockAcquires = 0; ///< Grants across all locks.
    std::uint64_t lockHandoffs = 0; ///< Grants to a different holder
                                    ///< than the previous one (the
                                    ///< line-bouncing subset).
    int locksUsed = 0;              ///< Distinct locks ever granted.
    /// Acquires of the single most-acquired lock; topLockShare() near
    /// 1.0 with many handoffs is the signature of a lock convoy.
    std::uint64_t topLockAcquires = 0;
    int topLock = -1;               ///< Its id (-1 if no locks).
    int topLockProcs = 0;           ///< Distinct procs granted it.
    std::uint64_t barrierEpisodes = 0; ///< Completed barrier episodes.
    int barriersUsed = 0;           ///< Distinct barriers hit.
    std::uint64_t taskSteals = 0;   ///< Work-stealing edges.

    double topLockShare() const
    {
        return lockAcquires
                   ? static_cast<double>(topLockAcquires) / lockAcquires
                   : 0.0;
    }
    double handoffShare() const
    {
        return lockAcquires
                   ? static_cast<double>(lockHandoffs) / lockAcquires
                   : 0.0;
    }
};

/**
 * The observer. Attach with Machine::attachSyncObserver before run(),
 * read summary() after. One instance per run (not reusable).
 */
class SyncProfile : public sim::SyncObserver
{
  public:
    void onMemOp(sim::ProcId p, sim::Addr addr, sim::MemOp kind) override
    {
        (void)p;
        (void)addr;
        (void)kind;
        ++memOps_;
    }
    void onLockAcquired(sim::ProcId p, int lock) override;
    void onLockReleased(sim::ProcId p, int lock) override
    {
        (void)p;
        (void)lock;
    }
    void onBarrierArrive(sim::ProcId p, int barrier,
                         std::uint64_t episode) override
    {
        (void)p;
        (void)barrier;
        (void)episode;
    }
    void onBarrierDepart(sim::ProcId p, int barrier,
                         std::uint64_t episode) override;
    void onTaskSteal(sim::ProcId thief, sim::ProcId victim) override
    {
        (void)thief;
        (void)victim;
        ++steals_;
    }

    /// Aggregate the per-lock/per-barrier state into a SyncSummary.
    SyncSummary summary() const;

  private:
    struct LockInfo {
        std::uint64_t acquires = 0;
        std::uint64_t handoffs = 0;
        std::vector<bool> procSeen;
        int procs = 0;
        sim::ProcId lastHolder = sim::kNoProc;
    };
    struct BarrierInfo {
        std::uint64_t episodes = 0; ///< Highest episode departed + 1.
    };

    std::uint64_t memOps_ = 0;
    std::uint64_t steals_ = 0;
    std::vector<LockInfo> locks_;       ///< Indexed by lock id.
    std::vector<BarrierInfo> barriers_; ///< Indexed by barrier id.
};

} // namespace ccnuma::analyze

#endif // CCNUMA_ANALYZE_SYNC_PROFILE_HH
