#include "analyze/sweep.hh"

#include <algorithm>

#include "apps/registry.hh"
#include "check/golden.hh"
#include "core/metrics.hh"
#include "sim/machine.hh"

namespace ccnuma::analyze {

AppRaceResult
analyzeApp(const std::string& name, int procs, std::uint64_t size,
           DetectorOptions opt)
{
    return analyzeApp(name, sim::MachineConfig::origin2000(procs), size,
                      opt);
}

AppRaceResult
analyzeApp(const std::string& name, const sim::MachineConfig& cfg,
           std::uint64_t size, DetectorOptions opt)
{
    AppRaceResult out;
    out.app = name;
    out.size = size != 0 ? size : check::goldenSize(name);

    // Same clamp as core::runApp: only timing-invariant apps may run
    // on the parallel scout/replay engine (see apps::timingInvariant).
    sim::MachineConfig eff = cfg;
    if (eff.simJobs != 1 && !apps::timingInvariant(name))
        eff.simJobs = 1;

    sim::Machine m(eff);
    const apps::AppPtr app = apps::makeApp(name, out.size);
    app->setup(m);

    RaceDetector det(cfg.numProcs, cfg.lineBytes, opt);
    m.attachSyncObserver(&det);
    const sim::RunResult r = m.run(app->program());

    out.time = r.time;
    out.races = det.races();
    out.stats = det.stats();
    return out;
}

std::vector<AppRaceResult>
analyzeAllApps(int procs, DetectorOptions opt)
{
    return analyzeAllApps(sim::MachineConfig::origin2000(procs), opt);
}

std::vector<AppRaceResult>
analyzeAllApps(const sim::MachineConfig& cfg, DetectorOptions opt)
{
    std::vector<AppRaceResult> out;
    const auto& names = apps::listApps();
    out.reserve(names.size());
    for (const std::string& name : names)
        out.push_back(analyzeApp(name, cfg, 0, opt));
    return out;
}

void
emitMetrics(const AppRaceResult& r, core::MetricsSink& sink)
{
    const std::string label = "races/" + r.app;
    const auto scalar = [&](const char* key, std::uint64_t v) {
        sink.addScalar(label, key, static_cast<double>(v));
    };
    scalar("memOps", r.stats.memOps);
    scalar("syncOps", r.stats.syncOps);
    scalar("vcJoins", r.stats.vcJoins);
    scalar("readEscalations", r.stats.readEscalations);
    scalar("stealEdges", r.stats.stealEdges);
    scalar("barrierEpisodes", r.stats.barrierEpisodes);
    scalar("locksetAlarms", r.stats.locksetAlarms);
    scalar("racesFound", r.stats.racesFound);
    scalar("shadowLocations", r.stats.shadowLocations);
    scalar("shadowBytes", r.stats.shadowBytes);
    scalar("runCycles", r.time);
}

check::StressOptions
raceStressOptions(std::uint64_t seed)
{
    check::StressOptions o;
    o.seed = seed;
    o.disciplined = true;
    // More and busier lock sections than the protocol-stress defaults:
    // the shared footprint is only reachable through them, and the
    // DropLockAcquire self-test needs enough cross-processor pairs.
    o.lockFrac = 0.15;
    o.numLocks = 4;
    return o;
}

RaceStressResult
raceExecute(const check::StressProgram& prog,
            const check::StressOptions& opt)
{
    RaceStressResult out;
    RaceDetector det(std::max(1, prog.procs()), opt.machine.lineBytes);
    out.report = check::execute(prog, opt, &det);
    out.races = det.races();
    out.stats = det.stats();
    // The SC oracle's verdict (a protocol bug) takes precedence; races
    // fill in only when the protocol itself held up.
    if (!out.report.failed && det.raced()) {
        out.report.failed = true;
        out.report.message = out.races.front().format();
    }
    return out;
}

check::ShrinkResult
shrinkRace(const check::StressProgram& prog,
           const check::StressOptions& opt, int maxRuns)
{
    return check::shrinkWith(
        prog,
        [&opt](const check::StressProgram& p) {
            return raceExecute(p, opt).report;
        },
        maxRuns);
}

} // namespace ccnuma::analyze
