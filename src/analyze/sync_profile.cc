#include "analyze/sync_profile.hh"

namespace ccnuma::analyze {

void
SyncProfile::onLockAcquired(sim::ProcId p, int lock)
{
    if (lock < 0)
        return;
    if (static_cast<std::size_t>(lock) >= locks_.size())
        locks_.resize(lock + 1);
    LockInfo& li = locks_[lock];
    ++li.acquires;
    if (li.lastHolder != sim::kNoProc && li.lastHolder != p)
        ++li.handoffs;
    li.lastHolder = p;
    if (p >= 0) {
        if (static_cast<std::size_t>(p) >= li.procSeen.size())
            li.procSeen.resize(p + 1, false);
        if (!li.procSeen[p]) {
            li.procSeen[p] = true;
            ++li.procs;
        }
    }
}

void
SyncProfile::onBarrierDepart(sim::ProcId p, int barrier,
                             std::uint64_t episode)
{
    (void)p;
    if (barrier < 0)
        return;
    if (static_cast<std::size_t>(barrier) >= barriers_.size())
        barriers_.resize(barrier + 1);
    BarrierInfo& bi = barriers_[barrier];
    if (episode + 1 > bi.episodes)
        bi.episodes = episode + 1;
}

SyncSummary
SyncProfile::summary() const
{
    SyncSummary s;
    s.memOps = memOps_;
    s.taskSteals = steals_;
    for (std::size_t i = 0; i < locks_.size(); ++i) {
        const LockInfo& li = locks_[i];
        if (li.acquires == 0)
            continue;
        ++s.locksUsed;
        s.lockAcquires += li.acquires;
        s.lockHandoffs += li.handoffs;
        if (li.acquires > s.topLockAcquires) {
            s.topLockAcquires = li.acquires;
            s.topLock = static_cast<int>(i);
            s.topLockProcs = li.procs;
        }
    }
    for (const BarrierInfo& bi : barriers_) {
        if (bi.episodes == 0)
            continue;
        ++s.barriersUsed;
        s.barrierEpisodes += bi.episodes;
    }
    return s;
}

} // namespace ccnuma::analyze
