/**
 * @file
 * Driving the race detector: over every registered application, and
 * over generated stress programs (with ddmin witness minimization via
 * check::shrinkWith).
 *
 * The application sweep runs each app at its golden-harness problem
 * size on a small origin2000 machine with a RaceDetector attached and
 * expects zero races — the apps are the paper's properly-synchronized
 * programs, so a report here is either an app bug or a detector bug,
 * and both are worth failing loudly on.
 *
 * The stress path generates *disciplined* programs (see
 * check::StressOptions::disciplined): race-free by construction, so
 * the detector must stay silent — until the DropLockAcquire check
 * mutation removes the locking, at which point it must fire, and the
 * failing program is minimized to a small witness with the shared
 * ddmin machinery. That pair is the detector's end-to-end self-test.
 */

#ifndef CCNUMA_ANALYZE_SWEEP_HH
#define CCNUMA_ANALYZE_SWEEP_HH

#include <cstdint>
#include <string>
#include <vector>

#include "analyze/race.hh"
#include "check/shrink.hh"
#include "check/stress.hh"

namespace ccnuma::core {
class MetricsSink;
}

namespace ccnuma::analyze {

/** Race-analysis outcome for one application run. */
struct AppRaceResult {
    std::string app;
    std::uint64_t size = 0;  ///< Problem size used.
    sim::Cycles time = 0;    ///< Parallel run time.
    std::vector<Race> races; ///< Empty = race-free execution.
    DetectorStats stats;
};

/**
 * Run one application (size 0 = check::goldenSize) on an
 * origin2000(procs) machine under the race detector.
 * @throws std::invalid_argument for unknown app names.
 */
AppRaceResult analyzeApp(const std::string& name, int procs = 4,
                         std::uint64_t size = 0,
                         DetectorOptions opt = {});

/**
 * Same, on an explicit machine shape — the way to race-sweep a
 * non-default coherence protocol or directory format
 * (cfg.protocol / cfg.dirFormat).
 */
AppRaceResult analyzeApp(const std::string& name,
                         const sim::MachineConfig& cfg,
                         std::uint64_t size = 0,
                         DetectorOptions opt = {});

/// analyzeApp over every apps::listApps() variant.
std::vector<AppRaceResult> analyzeAllApps(int procs = 4,
                                          DetectorOptions opt = {});

/// analyzeAllApps on an explicit machine shape.
std::vector<AppRaceResult> analyzeAllApps(const sim::MachineConfig& cfg,
                                          DetectorOptions opt = {});

/// Record one app result's detector statistics under label
/// "races/<app>" (ops analyzed, vector-clock joins, shadow footprint,
/// races found, ...).
void emitMetrics(const AppRaceResult& r, core::MetricsSink& sink);

/** Stress execution judged by the race detector. */
struct RaceStressResult {
    check::StressReport report; ///< failed = a race (or oracle bug).
    std::vector<Race> races;
    DetectorStats stats;
};

/// Stress options tuned for race analysis: disciplined generation and
/// a higher lock-section rate, seeded from `seed`.
check::StressOptions raceStressOptions(std::uint64_t seed);

/// Execute `prog` with a fresh RaceDetector attached; a detected race
/// marks the report failed with the race's description (an SC-oracle
/// violation would too — protocol bugs don't get masked).
RaceStressResult raceExecute(const check::StressProgram& prog,
                             const check::StressOptions& opt);

/// check::StressRunner adapter over raceExecute for shrinkWith().
check::ShrinkResult shrinkRace(const check::StressProgram& prog,
                               const check::StressOptions& opt,
                               int maxRuns = 600);

} // namespace ccnuma::analyze

#endif // CCNUMA_ANALYZE_SWEEP_HH
