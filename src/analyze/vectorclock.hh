/**
 * @file
 * Vector clocks and FastTrack-style epochs for happens-before race
 * analysis.
 *
 * An Epoch is the compressed form `c@t` of a full vector clock: "the
 * event at thread t's logical time c". Most shadow-memory state only
 * ever needs the last access's epoch (FastTrack's key observation), so
 * the per-location cost stays O(1); a full VectorClock is allocated
 * only when a location is genuinely read concurrently (see race.hh).
 */

#ifndef CCNUMA_ANALYZE_VECTORCLOCK_HH
#define CCNUMA_ANALYZE_VECTORCLOCK_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace ccnuma::analyze {

/// A thread's scalar logical clock (incremented at release operations).
using Clock = std::uint64_t;

/** Compressed `clock @ thread` pair; tid < 0 means "no access yet". */
struct Epoch {
    Clock clock = 0;
    sim::ProcId tid = sim::kNoProc;

    bool empty() const { return tid == sim::kNoProc; }
    bool
    operator==(const Epoch& o) const
    {
        return clock == o.clock && tid == o.tid;
    }
};

/** A fixed-width vector of per-thread clocks with join/compare ops. */
class VectorClock
{
  public:
    explicit VectorClock(int nthreads)
        : v_(static_cast<std::size_t>(nthreads), 0)
    {
    }

    Clock
    get(sim::ProcId t) const
    {
        return v_[static_cast<std::size_t>(t)];
    }
    void
    set(sim::ProcId t, Clock c)
    {
        v_[static_cast<std::size_t>(t)] = c;
    }
    void
    inc(sim::ProcId t)
    {
        ++v_[static_cast<std::size_t>(t)];
    }

    /// Pointwise maximum (the happens-before join).
    void
    join(const VectorClock& o)
    {
        for (std::size_t i = 0; i < v_.size(); ++i)
            if (o.v_[i] > v_[i])
                v_[i] = o.v_[i];
    }

    /// Does the event `e` happen before (or at) this clock? Empty
    /// epochs (no prior access) are trivially covered.
    bool
    covers(const Epoch& e) const
    {
        return e.empty() ||
               e.clock <= v_[static_cast<std::size_t>(e.tid)];
    }

    int size() const { return static_cast<int>(v_.size()); }

  private:
    std::vector<Clock> v_;
};

} // namespace ccnuma::analyze

#endif // CCNUMA_ANALYZE_VECTORCLOCK_HH
