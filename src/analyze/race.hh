/**
 * @file
 * Happens-before data-race detector over simulated executions.
 *
 * A FastTrack-style vector-clock algorithm consumes the byte-granular
 * access stream and the synchronization callbacks of a sim::SyncObserver
 * and reports every pair of conflicting accesses (two accesses to the
 * same byte, at least one a plain write, from different processors) not
 * ordered by the happens-before relation the program's synchronization
 * induces:
 *
 *  - lock release -> subsequent acquire of the same lock;
 *  - barrier episode: every arrival -> every departure of the episode;
 *  - task-queue steals, which arrive already ordered by the victim
 *    queue's lock (the steal callback is counted and kept as report
 *    context).
 *
 * Shadow state is per byte with epoch compression: a location holds the
 *  last writer's epoch, the last atomic (LL-SC RMW) writer's epoch and
 * the last reader's epoch, escalating the read side to a full vector
 * clock only when genuinely read concurrently (FastTrack's O(1) common
 * case). LL-SC RMWs model atomic hardware operations: they race with
 * plain accesses but not with each other.
 *
 * An Eraser-style lockset runs alongside as a fallback diagnostic:
 * every location intersects the set of locks held across its accesses.
 * Happens-before races are the detector's verdict (they are real in
 * this execution); locations whose candidate lockset goes empty while
 * written by multiple processors are counted as advisory lockset
 * alarms — they flag lock-discipline violations that this particular
 * schedule may have serialized (e.g. by a fortunate barrier), and each
 * race report carries the locks held at both accesses so a missing-
 * lock defect is immediately visible.
 *
 * Violations are recorded (first `DetectorOptions::maxRaces`), never
 * thrown, and callbacks arrive in deterministic commit order, so race
 * reports replay bit-identically for a fixed seed.
 */

#ifndef CCNUMA_ANALYZE_RACE_HH
#define CCNUMA_ANALYZE_RACE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "analyze/vectorclock.hh"
#include "sim/sync_observer.hh"
#include "sim/types.hh"

namespace ccnuma::analyze {

/** One side of a racing pair. */
struct AccessSite {
    sim::ProcId proc = sim::kNoProc;
    std::uint64_t opTag = 0; ///< 1-based per-processor access index
                             ///< (the PC-like identifier).
    sim::MemOp kind = sim::MemOp::Load;
    std::vector<int> locksHeld; ///< Lock ids held at the access.
};

/** One detected data race. */
struct Race {
    sim::Addr addr = 0;       ///< The contended byte.
    sim::LineAddr line = 0;   ///< Its cache line.
    AccessSite prior;         ///< Earlier access (commit order).
    AccessSite current;       ///< The access that exposed the race.
    std::vector<int> commonLocks; ///< Held at both sides (normally
                                  ///< empty: a common lock implies HB).
    std::uint64_t barrierEpisodes = 0; ///< Episodes completed machine-
                                       ///< wide before detection.

    /// One-line human-readable description.
    std::string format() const;
};

/** Detector tuning knobs. */
struct DetectorOptions {
    int maxRaces = 16;   ///< Cap on recorded races (first = witness).
};

/** Work/footprint statistics (emitted through core::MetricsSink). */
struct DetectorStats {
    std::uint64_t memOps = 0;   ///< Byte accesses analyzed.
    std::uint64_t syncOps = 0;  ///< Lock/barrier/steal callbacks.
    std::uint64_t vcJoins = 0;  ///< Vector-clock join operations.
    std::uint64_t readEscalations = 0; ///< Epoch -> full-VC promotions.
    std::uint64_t stealEdges = 0;      ///< Task-queue steals observed.
    std::uint64_t barrierEpisodes = 0; ///< Completed barrier episodes.
    std::uint64_t locksetAlarms = 0;   ///< Advisory Eraser alarms.
    std::uint64_t racesFound = 0;      ///< Races detected (not capped).
    std::uint64_t shadowLocations = 0; ///< Distinct bytes tracked.
    std::uint64_t shadowBytes = 0;     ///< Approx. shadow footprint.
};

/** The detector; attach to a Machine before run(). */
class RaceDetector final : public sim::SyncObserver
{
  public:
    RaceDetector(int nprocs, std::uint32_t line_bytes,
                 DetectorOptions opt = {});
    ~RaceDetector() override;

    // ---- sim::SyncObserver ----
    void onMemOp(sim::ProcId p, sim::Addr addr, sim::MemOp kind) override;
    void onLockAcquired(sim::ProcId p, int lock) override;
    void onLockReleased(sim::ProcId p, int lock) override;
    void onBarrierArrive(sim::ProcId p, int barrier,
                         std::uint64_t episode) override;
    void onBarrierDepart(sim::ProcId p, int barrier,
                         std::uint64_t episode) override;
    void onTaskSteal(sim::ProcId thief, sim::ProcId victim) override;

    // ---- results ----
    bool raced() const { return !races_.empty(); }
    const std::vector<Race>& races() const { return races_; }
    /// Statistics including the current shadow-memory footprint.
    DetectorStats stats() const;

  private:
    /// Per-byte shadow cell (epoch-compressed FastTrack state plus the
    /// Eraser candidate lockset).
    struct Shadow {
        Epoch write;   ///< Last plain-write epoch.
        Epoch atomic;  ///< Last LL-SC RMW epoch.
        Epoch read;    ///< Last read epoch (empty once escalated).
        std::uint64_t writeTag = 0;  ///< Op tag of the last plain write.
        std::uint64_t atomicTag = 0; ///< Op tag of the last RMW.
        std::uint64_t readTag = 0;   ///< Op tag of the last read.
        std::vector<int> writeLocks; ///< Locks held at the last write.
        std::vector<int> readLocks;  ///< Locks held at the last read.
        /// Escalated concurrent-read state: per-thread read clocks and
        /// the matching op tags (allocated on first concurrent read).
        struct ReadVector {
            std::vector<Clock> clocks;
            std::vector<std::uint64_t> tags;
        };
        std::unique_ptr<ReadVector> reads;
        /// Eraser candidate lockset (valid after the first access).
        std::vector<int> lockset;
        bool locksetInit = false;
        bool locksetAlarmed = false;
        bool raceReported = false; ///< One recorded race per byte.
        std::uint8_t writerProcs = 0; ///< Distinct-writer saturating
                                      ///< count (0, 1 or 2+).
        sim::ProcId firstWriter = sim::kNoProc;
    };

    Epoch epochOf(sim::ProcId p) const;
    void report(Shadow& sh, sim::Addr addr, const AccessSite& prior,
                const AccessSite& current);
    void updateLockset(Shadow& sh, sim::ProcId p, bool write);
    AccessSite siteOf(sim::ProcId p, sim::MemOp kind,
                      std::uint64_t tag) const;

    DetectorOptions opt_;
    std::uint32_t lineMask_;
    int nprocs_;

    std::vector<VectorClock> clocks_;  ///< C_t per processor.
    std::vector<std::uint64_t> opTag_; ///< Per-processor access count.
    std::vector<std::vector<int>> held_; ///< Sorted lock ids held.
    std::unordered_map<int, VectorClock> lockClock_;    ///< L_m.
    std::unordered_map<int, VectorClock> barrierClock_; ///< B_b.
    std::unordered_map<sim::Addr, Shadow> shadow_;

    std::vector<Race> races_;
    DetectorStats st_;
};

} // namespace ccnuma::analyze

#endif // CCNUMA_ANALYZE_RACE_HH
