/**
 * @file
 * Automated scaling-loss diagnosis (the tentpole of the observability
 * layer): run an application across a grid of machine sizes, collect
 * the full observability surface for every run — the time breakdown
 * with its lockWait/barrierWait partition, miss-latency histograms,
 * the sharing profile, epoch series, and the synchronization structure
 * from an attached analyze::SyncProfile — and turn the numbers into a
 * *ranked verdict*: which of the paper's scaling-loss mechanisms is
 * costing this application its parallel efficiency, backed by the
 * specific counters that say so.
 *
 * The attribution model works in aggregate processor-cycles. With the
 * smallest grid point (normally P=1) as the reference, the focus run's
 * (largest P) excess cost splits exactly into
 *
 *   busyExcess + memExcess + lockWait + barrierWait + syncOpExcess,
 *
 * and memExcess further splits against the miss-latency histograms:
 *  - contention  = sum over miss classes of (mean - min) x count —
 *    queueing delay above the uncontended latency, i.e. Hub/memory
 *    contention (Section 5 of the paper);
 *  - placement   = remote misses x (uncontended remote premium over a
 *    local miss) — cycles a perfect data distribution would reclaim;
 *  - capacity    = the residual. Negative residual means the grown
 *    aggregate cache turned misses into hits (superlinearity,
 *    Section 4.2.2) and is reported as a *gain*.
 *
 * Everything is a pure function of deterministic simulator output, so
 * diagnosing the same app twice produces byte-identical JSON.
 */

#ifndef CCNUMA_DIAGNOSE_DIAGNOSE_HH
#define CCNUMA_DIAGNOSE_DIAGNOSE_HH

#include <array>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "analyze/sync_profile.hh"
#include "core/metrics.hh"
#include "core/study.hh"
#include "obs/trace.hh"
#include "sim/protocol.hh"

namespace ccnuma::diagnose {

/** The verdict taxonomy: the paper's scaling-loss mechanisms. */
enum class Cause : std::uint8_t {
    LockSerialization, ///< Waiting in line for contended locks.
    BarrierImbalance,  ///< Waiting at barriers for slower processors.
    HubContention,     ///< Queueing at Hubs/memory above uncontended
                       ///< latency (the paper's Section 5).
    DataPlacement,     ///< Paying the remote premium on misses a
                       ///< better distribution would serve locally.
    Capacity,          ///< Miss-count shift from the aggregate cache:
                       ///< positive = extra misses, negative = the
                       ///< superlinearity gain of Section 4.2.2.
};
inline constexpr int kNumCauses = 5;

/// Stable lower_snake identifier ("lock_serialization", ...).
const char* causeName(Cause c);
/// Human-readable title ("lock serialization", ...).
const char* causeTitle(Cause c);

/** One ranked entry of a verdict. */
struct CauseScore {
    Cause cause = Cause::Capacity;
    /// Aggregate processor-cycles attributed to this cause in the
    /// focus run (negative only for a Capacity gain).
    double lostCycles = 0;
    /// lostCycles / total positive losses; 0 when nothing was lost.
    double share = 0;
    /// The specific counters/latencies backing the attribution.
    std::vector<std::string> evidence;
};

/** Fixed-shape summary of one obs::LatencyHisto (heatmap row). */
struct HistoSummary {
    std::uint64_t count = 0;
    double mean = 0;
    sim::Cycles min = 0;
    sim::Cycles max = 0;
    std::array<std::uint64_t, obs::LatencyHisto::kBuckets> buckets{};
};

/** One epoch of the focus run's stacked time breakdown. */
struct EpochRow {
    sim::Cycles busy = 0;
    sim::Cycles memStall = 0;
    sim::Cycles lockWait = 0;
    sim::Cycles barrierWait = 0;
    sim::Cycles syncOp = 0;
    sim::Cycles total() const
    {
        return busy + memStall + lockWait + barrierWait + syncOp;
    }
};

/** A hot coherence line of the focus run (dashboard table row). */
struct HotLine {
    sim::LineAddr line = 0;
    std::string cls; ///< SharingProfiler::className of the line.
    std::uint64_t traffic = 0;
    std::uint64_t invalidations = 0;
    std::uint64_t dirtyMisses = 0;
    std::uint64_t upgrades = 0;
    int procsTouched = 0;
    int wordsShared = 0;
};

/** Everything observed about one grid point (one machine size). */
struct RunObservation {
    int procs = 0;
    sim::Cycles time = 0;      ///< Completion time (max over procs).
    double speedup = 0;        ///< Versus the reference grid point.
    double efficiency = 0;     ///< speedup * refProcs / procs.
    sim::ProcTimes times;      ///< Summed over processors.
    sim::ProcCounters counters;///< Summed over processors.
    sim::Cycles maxBarrierWait = 0; ///< Worst single processor.
    sim::Cycles maxLockWait = 0;    ///< Worst single processor.
    analyze::SyncSummary sync; ///< Lock/barrier structure.
    bool traced = false;       ///< Histograms/epochs/lines valid.
    HistoSummary histLocal, histRemoteClean, histRemoteDirty,
        histUpgrade;
    std::vector<EpochRow> epochs;  ///< Stacked breakdown per epoch.
    std::vector<HotLine> hotLines; ///< Top lines by traffic.
};

/** The verdict for one application. */
struct AppDiagnosis {
    std::string app;
    std::uint64_t size = 0;
    /// Machine identity the grid ran under (ProtocolConfig::name /
    /// DirectoryConfig::name) — verdicts are only comparable within
    /// one protocol x directory-format combination.
    std::string protocol = "mesi";
    std::string dirFormat = "fullbv";
    bool ok = false;
    std::string error;           ///< Set when !ok (a run failed).
    std::vector<RunObservation> runs; ///< One per grid point, in
                                      ///< ascending machine size.
    std::vector<CauseScore> ranked;   ///< Highest loss first.
    bool scalesWell = false; ///< Efficiency >= 60% at the largest P.
    std::string verdict;     ///< One-line human-readable summary.

    const RunObservation& ref() const { return runs.front(); }
    const RunObservation& focus() const { return runs.back(); }
    /// Ranked entry for `c` (always present when ok).
    const CauseScore* score(Cause c) const;
};

/** Diagnosis knobs. */
struct DiagnoseOptions {
    /// Machine sizes to run; sorted and deduplicated. The smallest is
    /// the reference, the largest the focus of the verdict.
    std::vector<int> procs = {1, 8, 32};
    /// Problem size; 0 = the app's golden size (fast, regression-
    /// covered configuration).
    std::uint64_t size = 0;
    /// Epoch length override for the stacked dashboard series
    /// (0 = TraceConfig default).
    sim::Cycles epochCycles = 0;
    /// Hot lines to keep per app.
    std::size_t topLines = 10;
    /// Host-thread budget for the grid (StudyRunner); 0 = one per
    /// core.
    int jobs = 1;
    /// MachineConfig::simJobs for every grid cell: 1 = serial engine,
    /// N > 1 / 0 = the parallel scout/replay engine. The StudyRunner
    /// pool divides `jobs` by this so the total host-thread budget is
    /// unchanged; timing-variant apps are clamped back to serial by
    /// core::runApp.
    int simJobs = 1;
    /// Per-run progress lines on stderr.
    bool progress = false;
    /// Coherence protocol / directory format the whole grid runs
    /// under (defaults match MachineConfig: mesi + fullbv).
    sim::ProtocolConfig protocol;
    sim::DirectoryConfig dirFormat;
};

/// Diagnose a registry app by name.
/// @throws std::invalid_argument for unknown names.
AppDiagnosis diagnoseApp(const std::string& name,
                         const DiagnoseOptions& opt = {});

/// Diagnose an arbitrary factory under `label` (synthetic-bottleneck
/// tests use this to feed the engine known pathologies).
AppDiagnosis diagnoseFactory(const std::string& label,
                             const core::AppFactory& factory,
                             const DiagnoseOptions& opt = {});

/// Diagnose every registered app (apps::listApps() order).
std::vector<AppDiagnosis> diagnoseAllApps(const DiagnoseOptions& opt = {});

/// Write the verdicts as one JSON document (schema
/// "ccnuma-diagnose-v2"; strict-parser clean, byte-deterministic).
/// v2 added the per-app "machine" object (protocol/dirFormat).
void writeDiagnoseJson(std::ostream& os,
                       const std::vector<AppDiagnosis>& results);
/// File wrapper; returns false on I/O error.
bool writeDiagnoseJsonFile(const std::string& path,
                           const std::vector<AppDiagnosis>& results);

/// Flatten one verdict into a MetricsSink (per-app labelled entry).
void emitMetrics(const AppDiagnosis& d, core::MetricsSink& sink);

} // namespace ccnuma::diagnose

#endif // CCNUMA_DIAGNOSE_DIAGNOSE_HH
