#include "diagnose/html.hh"

#include <algorithm>
#include <cstdio>
#include <fstream>

namespace ccnuma::diagnose {

namespace {

using obs::LatencyHisto;

/// The five stacked time categories share one palette everywhere.
struct Category {
    const char* name;
    const char* color;
};
constexpr Category kCats[] = {
    {"busy", "#4c9f70"},        {"memStall", "#d08770"},
    {"lockWait", "#bf616a"},    {"barrierWait", "#b48ead"},
    {"syncOp", "#5e81ac"},
};

std::string
esc(const std::string& s)
{
    std::string out;
    for (char c : s) {
        switch (c) {
        case '&': out += "&amp;"; break;
        case '<': out += "&lt;"; break;
        case '>': out += "&gt;"; break;
        default: out += c;
        }
    }
    return out;
}

std::string
num(double v, int prec = 1)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", prec, v);
    return buf;
}

std::string
big(std::uint64_t v)
{
    // Group digits for readability: 12345678 -> "12,345,678".
    std::string raw = std::to_string(v);
    std::string out;
    for (std::size_t i = 0; i < raw.size(); ++i) {
        if (i && (raw.size() - i) % 3 == 0)
            out += ',';
        out += raw[i];
    }
    return out;
}

/// Anchor id for an app card ("water-nsq" is already id-safe).
std::string
anchor(const std::string& app)
{
    return "app-" + app;
}

void
stackedBar(std::ostream& os, const sim::ProcTimes& t)
{
    const double total = static_cast<double>(t.total());
    if (total <= 0) {
        os << "<span class='muted'>-</span>";
        return;
    }
    const double vals[] = {
        static_cast<double>(t.busy), static_cast<double>(t.memStall),
        static_cast<double>(t.lockWait),
        static_cast<double>(t.barrierWait),
        static_cast<double>(t.syncOp)};
    os << "<div class='bar'>";
    for (int i = 0; i < 5; ++i) {
        const double pct = vals[i] / total * 100.0;
        if (pct < 0.05)
            continue;
        os << "<span style='width:" << num(pct, 2) << "%;background:"
           << kCats[i].color << "' title='" << kCats[i].name << " "
           << num(pct) << "%'></span>";
    }
    os << "</div>";
}

void
causeBars(std::ostream& os, const AppDiagnosis& d)
{
    os << "<table class='causes'>";
    for (const CauseScore& c : d.ranked) {
        os << "<tr><td class='cname'>" << esc(causeTitle(c.cause))
           << "</td><td class='cbar'>";
        const double pct = std::max(0.0, c.share) * 100.0;
        os << "<div class='bar thin'><span style='width:"
           << num(pct, 2) << "%;background:"
           << (c.lostCycles >= 0 ? "#bf616a" : "#4c9f70")
           << "'></span></div>";
        os << "</td><td class='cshare'>";
        if (c.lostCycles < 0)
            os << "gain";
        else
            os << num(pct, 0) << "%";
        os << "</td><td class='cev'>";
        for (std::size_t i = 0; i < c.evidence.size(); ++i)
            os << (i ? " &middot; " : "") << esc(c.evidence[i]);
        os << "</td></tr>";
    }
    os << "</table>";
}

void
scalingTable(std::ostream& os, const AppDiagnosis& d)
{
    os << "<table class='grid'><tr><th>P</th><th>cycles</th>"
          "<th>speedup</th><th>efficiency</th>"
          "<th class='wide'>time breakdown</th></tr>";
    for (const RunObservation& r : d.runs) {
        os << "<tr><td>" << r.procs << "</td><td class='mono'>"
           << big(r.time) << "</td><td>" << num(r.speedup) << "</td>"
           << "<td class='" << (r.efficiency >= 0.6 ? "good" : "bad")
           << "'>" << num(r.efficiency * 100, 0) << "%</td><td>";
        stackedBar(os, r.times);
        os << "</td></tr>";
    }
    os << "</table>";
}

/// Per-epoch stacked SVG of the focus run. Adjacent epochs are merged
/// so at most kMaxCols columns render (deterministic downsample).
void
epochChart(std::ostream& os, const RunObservation& foc)
{
    if (foc.epochs.empty())
        return;
    constexpr std::size_t kMaxCols = 160;
    const std::size_t n = foc.epochs.size();
    const std::size_t group = (n + kMaxCols - 1) / kMaxCols;
    std::vector<EpochRow> cols;
    for (std::size_t i = 0; i < n; i += group) {
        EpochRow e;
        for (std::size_t j = i; j < std::min(n, i + group); ++j) {
            const EpochRow& s = foc.epochs[j];
            e.busy += s.busy;
            e.memStall += s.memStall;
            e.lockWait += s.lockWait;
            e.barrierWait += s.barrierWait;
            e.syncOp += s.syncOp;
        }
        cols.push_back(e);
    }
    sim::Cycles peak = 0;
    for (const EpochRow& e : cols)
        peak = std::max(peak, e.total());
    if (peak == 0)
        return;

    const int W = 720, H = 160;
    const double cw = static_cast<double>(W) / cols.size();
    os << "<h4>where the focus run's cycles go, epoch by epoch"
       << (group > 1 ? " (each column spans " + std::to_string(group) +
                           " epochs)"
                     : "")
       << "</h4><svg viewBox='0 0 " << W << " " << H
       << "' width='" << W << "' height='" << H
       << "' role='img'>";
    for (std::size_t i = 0; i < cols.size(); ++i) {
        const EpochRow& e = cols[i];
        const double vals[] = {static_cast<double>(e.busy),
                               static_cast<double>(e.memStall),
                               static_cast<double>(e.lockWait),
                               static_cast<double>(e.barrierWait),
                               static_cast<double>(e.syncOp)};
        double y = H;
        for (int k = 0; k < 5; ++k) {
            const double h =
                vals[k] / static_cast<double>(peak) * (H - 4);
            if (h <= 0)
                continue;
            y -= h;
            os << "<rect x='" << num(i * cw, 2) << "' y='"
               << num(y, 2) << "' width='" << num(cw + 0.5, 2)
               << "' height='" << num(h, 2) << "' fill='"
               << kCats[k].color << "'/>";
        }
    }
    os << "</svg>";
}

void
legend(std::ostream& os)
{
    os << "<p class='legend'>";
    for (const Category& c : kCats)
        os << "<span class='chip' style='background:" << c.color
           << "'></span>" << c.name << " ";
    os << "</p>";
}

/// Miss-latency heatmap: rows = machine sizes, columns = power-of-two
/// latency buckets (all three miss classes merged), shade = the row's
/// share of misses in that bucket.
void
heatmap(std::ostream& os, const AppDiagnosis& d)
{
    constexpr int B = LatencyHisto::kBuckets;
    struct Row {
        int procs;
        std::array<std::uint64_t, B> buckets{};
        std::uint64_t total = 0;
    };
    std::vector<Row> rows;
    int lo = B, hi = -1;
    for (const RunObservation& r : d.runs) {
        if (!r.traced)
            continue;
        Row row;
        row.procs = r.procs;
        for (int i = 0; i < B; ++i) {
            row.buckets[i] = r.histLocal.buckets[i] +
                             r.histRemoteClean.buckets[i] +
                             r.histRemoteDirty.buckets[i];
            row.total += row.buckets[i];
            if (row.buckets[i]) {
                lo = std::min(lo, i);
                hi = std::max(hi, i);
            }
        }
        rows.push_back(row);
    }
    if (rows.empty() || hi < lo)
        return;

    os << "<h4>miss latency across machine sizes</h4>"
          "<table class='heat'><tr><th>P \\ cycles</th>";
    for (int i = lo; i <= hi; ++i)
        os << "<th>" << LatencyHisto::bucketLo(i) << "</th>";
    os << "</tr>";
    for (const Row& row : rows) {
        os << "<tr><th>" << row.procs << "</th>";
        for (int i = lo; i <= hi; ++i) {
            const double share =
                row.total ? static_cast<double>(row.buckets[i]) /
                                static_cast<double>(row.total)
                          : 0.0;
            // Perceptual-ish ramp: alpha from the bucket share.
            os << "<td style='background:rgba(191,97,106,"
               << num(share, 3) << ")' title='" << big(row.buckets[i])
               << " misses'></td>";
        }
        os << "</tr>";
    }
    os << "</table><p class='muted'>columns are power-of-two latency "
          "buckets (lower bound shown); a hot right-hand column at "
          "large P is contention or remoteness, weight moving left "
          "as P grows is the aggregate cache absorbing misses.</p>";
}

void
hotLineTable(std::ostream& os, const RunObservation& foc)
{
    if (foc.hotLines.empty())
        return;
    os << "<h4>hottest coherence lines (focus run)</h4>"
          "<table class='grid'><tr><th>line</th><th>class</th>"
          "<th>traffic</th><th>invals</th><th>dirty misses</th>"
          "<th>upgrades</th><th>procs</th><th>shared words</th></tr>";
    for (const HotLine& h : foc.hotLines) {
        char addr[32];
        std::snprintf(addr, sizeof addr, "0x%llx",
                      static_cast<unsigned long long>(h.line));
        const bool fs = h.cls == "false-sharing";
        os << "<tr><td class='mono'>" << addr << "</td><td class='"
           << (fs ? "bad" : "") << "'>" << esc(h.cls) << "</td><td>"
           << big(h.traffic) << "</td><td>" << big(h.invalidations)
           << "</td><td>" << big(h.dirtyMisses) << "</td><td>"
           << big(h.upgrades) << "</td><td>" << h.procsTouched
           << "</td><td>" << h.wordsShared << "</td></tr>";
    }
    os << "</table>";
}

void
appCard(std::ostream& os, const AppDiagnosis& d)
{
    os << "<section class='card' id='" << esc(anchor(d.app)) << "'>";
    os << "<h2>" << esc(d.app) << " <span class='muted'>size "
       << d.size << "</span></h2>";
    if (!d.ok) {
        os << "<p class='bad'>diagnosis failed: " << esc(d.error)
           << "</p></section>";
        return;
    }
    os << "<p class='verdict " << (d.scalesWell ? "good" : "bad")
       << "'>" << esc(d.verdict) << "</p>";
    causeBars(os, d);
    scalingTable(os, d);
    legend(os);
    epochChart(os, d.focus());
    heatmap(os, d);
    hotLineTable(os, d.focus());
    os << "</section>";
}

constexpr const char* kStyle = R"css(
body{font:14px/1.45 -apple-system,'Segoe UI',Roboto,sans-serif;
     margin:0;background:#f4f3f0;color:#2e3440}
header{background:#2e3440;color:#eceff4;padding:14px 28px}
header h1{margin:0;font-size:20px}
header p{margin:4px 0 0;color:#a3abb8}
main{max-width:980px;margin:0 auto;padding:18px}
.card{background:#fff;border:1px solid #ddd;border-radius:8px;
      padding:16px 20px;margin:18px 0}
h2{margin:0 0 6px;font-size:17px}
h4{margin:18px 0 6px;font-size:13px;text-transform:uppercase;
   letter-spacing:.04em;color:#555}
table{border-collapse:collapse}
table.grid td,table.grid th{border:1px solid #e4e2dd;padding:3px 9px;
      text-align:right;font-size:13px}
table.grid th{background:#f0eeea}
td.wide{min-width:260px}
table.causes{width:100%;margin:8px 0}
table.causes td{padding:2px 6px;font-size:13px;vertical-align:top}
td.cname{white-space:nowrap;font-weight:600;width:11em}
td.cbar{width:130px}
td.cshare{width:3.5em;text-align:right}
td.cev{color:#555}
.bar{display:flex;height:14px;width:100%;min-width:120px;
     background:#eceae6;border-radius:3px;overflow:hidden}
.bar.thin{height:9px;width:120px}
.bar span{display:block;height:100%}
.verdict{font-size:15px;font-weight:600;margin:4px 0 10px}
.good{color:#1e7b45}.bad{color:#b3342c}
.mono{font-family:ui-monospace,Menlo,Consolas,monospace}
.muted{color:#888;font-weight:400;font-size:12px}
.legend{font-size:12px;color:#555}
.chip{display:inline-block;width:10px;height:10px;border-radius:2px;
      margin:0 4px 0 10px}
table.heat td{width:22px;height:16px;border:1px solid #f0eeea}
table.heat th{font-size:11px;color:#666;padding:1px 4px;
      text-align:right}
table.index td,table.index th{padding:3px 10px;font-size:13px;
      border-bottom:1px solid #e4e2dd;text-align:left}
a{color:#3a6ea5;text-decoration:none}a:hover{text-decoration:underline}
)css";

} // namespace

void
writeDashboard(std::ostream& os,
               const std::vector<AppDiagnosis>& results)
{
    std::size_t scaling = 0;
    for (const AppDiagnosis& d : results)
        if (d.ok && d.scalesWell)
            ++scaling;

    os << "<!doctype html><html lang='en'><head><meta charset='utf-8'>"
          "<meta name='viewport' content='width=device-width,"
          "initial-scale=1'><title>ccnuma scaling diagnosis</title>"
          "<style>"
       << kStyle << "</style></head><body>";
    os << "<header><h1>scaling-loss diagnosis</h1><p>" << results.size()
       << " application(s), " << scaling
       << " scaling well (&ge;60% efficiency at the largest machine); "
          "deterministic cycle-level simulation of an Origin2000-class "
          "ccNUMA";
    if (!results.empty())
        os << " &mdash; protocol <code>"
           << esc(results.front().protocol)
           << "</code>, directory <code>"
           << esc(results.front().dirFormat) << "</code>";
    os << "</p></header><main>";

    if (results.size() > 1) {
        os << "<section class='card'><h2>index</h2>"
              "<table class='index'><tr><th>app</th><th>P</th>"
              "<th>efficiency</th><th>primary cause</th>"
              "<th>verdict</th></tr>";
        for (const AppDiagnosis& d : results) {
            os << "<tr><td><a href='#" << esc(anchor(d.app)) << "'>"
               << esc(d.app) << "</a></td>";
            if (!d.ok) {
                os << "<td>-</td><td>-</td><td>-</td><td class='bad'>"
                   << esc(d.error) << "</td></tr>";
                continue;
            }
            const RunObservation& foc = d.focus();
            os << "<td>" << foc.procs << "</td><td class='"
               << (d.scalesWell ? "good" : "bad") << "'>"
               << num(foc.efficiency * 100, 0) << "%</td><td>"
               << esc(causeTitle(d.ranked.front().cause)) << "</td><td>"
               << esc(d.verdict) << "</td></tr>";
        }
        os << "</table></section>";
    }

    for (const AppDiagnosis& d : results)
        appCard(os, d);
    os << "</main></body></html>\n";
}

bool
writeDashboardFile(const std::string& path,
                   const std::vector<AppDiagnosis>& results)
{
    std::ofstream os(path);
    if (!os)
        return false;
    writeDashboard(os, results);
    return os.good();
}

} // namespace ccnuma::diagnose
