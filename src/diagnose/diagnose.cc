#include "diagnose/diagnose.hh"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "apps/registry.hh"
#include "check/golden.hh"
#include "core/study_runner.hh"
#include "obs/json.hh"

namespace ccnuma::diagnose {

namespace {

using obs::LatencyHisto;
using sim::Cycles;

#if defined(__GNUC__)
__attribute__((format(printf, 1, 2)))
#endif
std::string
fmt(const char* f, ...)
{
    char buf[256];
    va_list ap;
    va_start(ap, f);
    std::vsnprintf(buf, sizeof buf, f, ap);
    va_end(ap);
    return buf;
}

double
safeDiv(double num, double den)
{
    return den != 0.0 ? num / den : 0.0;
}

HistoSummary
summarize(const LatencyHisto& h)
{
    HistoSummary s;
    s.count = h.count();
    s.mean = h.mean();
    s.min = h.min();
    s.max = h.max();
    h.forEachBucket([&s](Cycles lo, Cycles hi, std::uint64_t n) {
        (void)hi;
        int i = 0;
        while (LatencyHisto::bucketLo(i) < lo &&
               i + 1 < LatencyHisto::kBuckets)
            ++i;
        s.buckets[i] += n;
    });
    return s;
}

/// Queueing delay above the uncontended (minimum observed) latency.
double
contentionCycles(const HistoSummary& h)
{
    if (h.count == 0 || h.mean <= static_cast<double>(h.min))
        return 0.0;
    return (h.mean - static_cast<double>(h.min)) *
           static_cast<double>(h.count);
}

/// Build a RunObservation from one finished grid cell.
RunObservation
observe(const core::RunOutcome& out, const analyze::SyncProfile& prof,
        std::size_t top_lines)
{
    RunObservation r;
    r.procs = out.nprocs;
    const sim::RunResult& rr = out.m.par;
    r.time = rr.time;
    r.counters = rr.totals();
    for (const sim::ProcStats& ps : rr.procs) {
        r.times.busy += ps.t.busy;
        r.times.memStall += ps.t.memStall;
        r.times.syncWait += ps.t.syncWait;
        r.times.syncOp += ps.t.syncOp;
        r.times.lockWait += ps.t.lockWait;
        r.times.barrierWait += ps.t.barrierWait;
        r.maxBarrierWait = std::max(r.maxBarrierWait, ps.t.barrierWait);
        r.maxLockWait = std::max(r.maxLockWait, ps.t.lockWait);
    }
    r.sync = prof.summary();

    const obs::Trace* t = rr.trace.get();
    if (t && t->config().intervals) {
        r.traced = true;
        r.histLocal = summarize(t->histLocal());
        r.histRemoteClean = summarize(t->histRemoteClean());
        r.histRemoteDirty = summarize(t->histRemoteDirty());
        r.histUpgrade = summarize(t->histUpgrade());
        const obs::EpochSeries& es = t->epochs();
        r.epochs.reserve(es.numEpochs());
        for (std::size_t i = 0; i < es.numEpochs(); ++i) {
            const sim::ProcTimes& et = es.epoch(i).t;
            r.epochs.push_back({et.busy, et.memStall, et.lockWait,
                                et.barrierWait, et.syncOp});
        }
        if (t->config().sharing) {
            for (const auto& lr : t->sharing().hotLines(top_lines)) {
                HotLine hl;
                hl.line = lr.line;
                hl.cls = obs::SharingProfiler::className(lr.cls);
                hl.traffic = lr.traffic();
                hl.invalidations = lr.invalidations;
                hl.dirtyMisses = lr.dirtyMisses;
                hl.upgrades = lr.upgrades;
                hl.procsTouched = lr.procsTouched;
                hl.wordsShared = lr.wordsShared;
                r.hotLines.push_back(std::move(hl));
            }
        }
    }
    return r;
}

/// Misses per thousand program accesses (the capacity fingerprint).
double
missesPerKiloAccess(const RunObservation& r)
{
    const double acc =
        static_cast<double>(r.counters.loads + r.counters.stores);
    return safeDiv(static_cast<double>(r.counters.misses()) * 1000.0,
                   acc);
}

/// The attribution model of the file comment in diagnose.hh.
void
scoreCauses(AppDiagnosis& d)
{
    const RunObservation& ref = d.ref();
    const RunObservation& foc = d.focus();

    CauseScore lock{Cause::LockSerialization, 0, 0, {}};
    CauseScore barrier{Cause::BarrierImbalance, 0, 0, {}};
    CauseScore hub{Cause::HubContention, 0, 0, {}};
    CauseScore place{Cause::DataPlacement, 0, 0, {}};
    CauseScore cap{Cause::Capacity, 0, 0, {}};

    // Synchronization waits are pure loss (the reference has none).
    lock.lostCycles = static_cast<double>(foc.times.lockWait);
    barrier.lostCycles = static_cast<double>(foc.times.barrierWait);

    // Memory excess over the reference, split three ways.
    const double mem_excess = static_cast<double>(foc.times.memStall) -
                              static_cast<double>(ref.times.memStall);
    double contention = 0, placement = 0;
    if (foc.traced) {
        contention = contentionCycles(foc.histLocal) +
                     contentionCycles(foc.histRemoteClean) +
                     contentionCycles(foc.histRemoteDirty) +
                     contentionCycles(foc.histUpgrade);
        // Uncontended remote premium over an uncontended local miss.
        Cycles local_min = foc.histLocal.count ? foc.histLocal.min : 0;
        if (local_min == 0 && ref.traced && ref.histLocal.count)
            local_min = ref.histLocal.min;
        if (local_min > 0) {
            if (foc.histRemoteClean.count &&
                foc.histRemoteClean.min > local_min)
                placement +=
                    static_cast<double>(foc.histRemoteClean.min -
                                        local_min) *
                    static_cast<double>(foc.histRemoteClean.count);
            if (foc.histRemoteDirty.count &&
                foc.histRemoteDirty.min > local_min)
                placement +=
                    static_cast<double>(foc.histRemoteDirty.min -
                                        local_min) *
                    static_cast<double>(foc.histRemoteDirty.count);
        }
    }
    hub.lostCycles = contention;
    place.lostCycles = placement;
    cap.lostCycles = mem_excess - contention - placement;

    // ---- evidence ----
    const auto& fc = foc.counters;
    lock.evidence.push_back(
        fmt("lockWait %llu cycles across %d procs (worst proc %llu)",
            static_cast<unsigned long long>(foc.times.lockWait),
            foc.procs,
            static_cast<unsigned long long>(foc.maxLockWait)));
    lock.evidence.push_back(
        fmt("%llu/%llu acquires contended (%.0f%%)",
            static_cast<unsigned long long>(fc.lockContended),
            static_cast<unsigned long long>(fc.lockAcquires),
            safeDiv(static_cast<double>(fc.lockContended) * 100.0,
                    static_cast<double>(fc.lockAcquires))));
    if (foc.sync.lockAcquires)
        lock.evidence.push_back(fmt(
            "top lock %d takes %.0f%% of %llu acquires "
            "(%d procs, %.0f%% handoffs)",
            foc.sync.topLock, foc.sync.topLockShare() * 100.0,
            static_cast<unsigned long long>(foc.sync.lockAcquires),
            foc.sync.topLockProcs, foc.sync.handoffShare() * 100.0));

    const double mean_bw =
        safeDiv(static_cast<double>(foc.times.barrierWait), foc.procs);
    barrier.evidence.push_back(
        fmt("barrierWait %llu cycles over %llu episodes",
            static_cast<unsigned long long>(foc.times.barrierWait),
            static_cast<unsigned long long>(foc.sync.barrierEpisodes)));
    if (mean_bw > 0)
        barrier.evidence.push_back(fmt(
            "worst proc waits %llu cycles, %.1fx the mean "
            "(imbalance)",
            static_cast<unsigned long long>(foc.maxBarrierWait),
            static_cast<double>(foc.maxBarrierWait) / mean_bw));

    if (foc.traced) {
        const auto note = [&hub](const char* name,
                                 const HistoSummary& h) {
            if (h.count && h.mean > static_cast<double>(h.min) * 1.05)
                hub.evidence.push_back(
                    fmt("%s misses: mean %.0f vs uncontended %llu "
                        "cycles (x%llu)",
                        name, h.mean,
                        static_cast<unsigned long long>(h.min),
                        static_cast<unsigned long long>(h.count)));
        };
        note("local", foc.histLocal);
        note("remote-clean", foc.histRemoteClean);
        note("remote-dirty", foc.histRemoteDirty);
        note("upgrade", foc.histUpgrade);
    } else {
        hub.evidence.push_back("latency histograms unavailable "
                               "(tracing off): contention not split "
                               "out of memory stall");
    }

    place.evidence.push_back(
        fmt("%llu/%llu misses remote (%.0f%%)",
            static_cast<unsigned long long>(fc.remoteMisses()),
            static_cast<unsigned long long>(fc.misses()),
            safeDiv(static_cast<double>(fc.remoteMisses()) * 100.0,
                    static_cast<double>(fc.misses()))));
    if (fc.pageMigrations)
        place.evidence.push_back(
            fmt("%llu page migrations", static_cast<unsigned long long>(
                                            fc.pageMigrations)));

    const double mpk_ref = missesPerKiloAccess(ref);
    const double mpk_foc = missesPerKiloAccess(foc);
    cap.evidence.push_back(
        fmt("miss rate %.2f -> %.2f per 1000 accesses from P=%d to "
            "P=%d (aggregate cache grew %dx)",
            mpk_ref, mpk_foc, ref.procs, foc.procs,
            foc.procs / std::max(1, ref.procs)));
    if (cap.lostCycles < 0)
        cap.evidence.push_back("negative loss: the larger machine's "
                               "aggregate cache absorbs the working "
                               "set (superlinearity)");

    // ---- rank and normalize ----
    d.ranked = {lock, barrier, hub, place, cap};
    std::stable_sort(d.ranked.begin(), d.ranked.end(),
                     [](const CauseScore& a, const CauseScore& b) {
                         return a.lostCycles > b.lostCycles;
                     });
    double total_lost = 0;
    for (const CauseScore& c : d.ranked)
        if (c.lostCycles > 0)
            total_lost += c.lostCycles;
    for (CauseScore& c : d.ranked)
        c.share = total_lost > 0 ? c.lostCycles / total_lost : 0.0;

    d.scalesWell = foc.efficiency >= core::kGoodEfficiency;
    const CauseScore& top = d.ranked.front();
    if (total_lost <= 0 || d.scalesWell)
        d.verdict = fmt("scales well: %.0f%% efficiency at P=%d "
                        "(largest loss: %s, %.0f%%)",
                        foc.efficiency * 100.0, foc.procs,
                        causeTitle(top.cause), top.share * 100.0);
    else
        d.verdict = fmt("%.0f%% efficiency at P=%d: dominated by %s "
                        "(%.0f%% of %.3g lost cycles)",
                        foc.efficiency * 100.0, foc.procs,
                        causeTitle(top.cause), top.share * 100.0,
                        total_lost);
}

AppDiagnosis
diagnoseImpl(const std::string& label, const core::AppFactory& factory,
             std::uint64_t size, const DiagnoseOptions& opt)
{
    AppDiagnosis d;
    d.app = label;
    d.size = size;
    d.protocol = opt.protocol.name();
    d.dirFormat = opt.dirFormat.name();

    std::vector<int> grid = opt.procs;
    std::sort(grid.begin(), grid.end());
    grid.erase(std::unique(grid.begin(), grid.end()), grid.end());
    if (grid.empty() || grid.front() < 1) {
        d.error = "empty or invalid --procs grid";
        return d;
    }

    // One SyncProfile per grid cell, pre-sized so worker threads can
    // write through stable pointers.
    std::vector<analyze::SyncProfile> profiles(grid.size());
    core::StudyPlan plan;
    for (std::size_t i = 0; i < grid.size(); ++i) {
        sim::MachineConfig cfg = sim::MachineConfig::origin2000(grid[i]);
        cfg.protocol = opt.protocol;
        cfg.dirFormat = opt.dirFormat;
        cfg.simJobs = opt.simJobs;
        cfg.trace.intervals = true;
        cfg.trace.sharing = true;
        if (opt.epochCycles)
            cfg.trace.epochCycles = opt.epochCycles;
        analyze::SyncProfile* prof = &profiles[i];
        core::RunSpec spec;
        spec.name = label + " P=" + std::to_string(grid[i]);
        spec.cfg = cfg;
        spec.factory = factory;
        spec.baseline = false;
        spec.preRun = [prof](sim::Machine& m) {
            m.attachSyncObserver(prof);
        };
        plan.add(std::move(spec));
    }

    core::StudyRunner runner({.jobs = opt.jobs,
                              .simJobs = opt.simJobs,
                              .progress = opt.progress});
    const core::StudyResult res = runner.run(plan);

    for (std::size_t i = 0; i < res.runs.size(); ++i) {
        const core::RunOutcome& out = res.runs[i];
        if (!out.ok) {
            d.error = out.name + ": " + out.error;
            return d;
        }
        d.runs.push_back(observe(out, profiles[i], opt.topLines));
    }

    // Speedup/efficiency versus the smallest grid point: with P=1 in
    // the grid this is the paper's metric exactly.
    const RunObservation& ref = d.runs.front();
    const double ref_cost =
        static_cast<double>(ref.time) * ref.procs;
    for (RunObservation& r : d.runs) {
        r.speedup = safeDiv(static_cast<double>(ref.time),
                            static_cast<double>(r.time));
        r.efficiency =
            safeDiv(ref_cost, static_cast<double>(r.time) * r.procs);
    }

    scoreCauses(d);
    d.ok = true;
    return d;
}

void
writeHisto(obs::JsonWriter& w, const std::string& key,
           const HistoSummary& h)
{
    w.beginObject(key);
    w.field("count", h.count);
    w.field("mean", h.mean);
    w.field("min", static_cast<std::uint64_t>(h.min));
    w.field("max", static_cast<std::uint64_t>(h.max));
    w.endObject();
}

void
writeApp(obs::JsonWriter& w, const AppDiagnosis& d)
{
    w.beginObject();
    w.field("app", d.app);
    w.field("size", d.size);
    w.beginObject("machine");
    w.field("protocol", d.protocol);
    w.field("dirFormat", d.dirFormat);
    w.endObject();
    w.field("ok", d.ok);
    if (!d.ok) {
        w.field("error", d.error);
        w.endObject();
        return;
    }
    w.field("scalesWell", d.scalesWell);
    w.field("verdict", d.verdict);
    w.field("primaryCause", causeName(d.ranked.front().cause));

    w.beginArray("causes");
    for (const CauseScore& c : d.ranked) {
        w.beginObject();
        w.field("cause", causeName(c.cause));
        w.field("lostCycles", c.lostCycles);
        w.field("share", c.share);
        w.beginArray("evidence");
        for (const std::string& e : c.evidence)
            w.field("", e);
        w.endArray();
        w.endObject();
    }
    w.endArray();

    w.beginArray("runs");
    for (const RunObservation& r : d.runs) {
        w.beginObject();
        w.field("procs", r.procs);
        w.field("time", static_cast<std::uint64_t>(r.time));
        w.field("speedup", r.speedup);
        w.field("efficiency", r.efficiency);
        w.field("busy", static_cast<std::uint64_t>(r.times.busy));
        w.field("memStall",
                static_cast<std::uint64_t>(r.times.memStall));
        w.field("lockWait",
                static_cast<std::uint64_t>(r.times.lockWait));
        w.field("barrierWait",
                static_cast<std::uint64_t>(r.times.barrierWait));
        w.field("syncOp", static_cast<std::uint64_t>(r.times.syncOp));
        w.field("misses", r.counters.misses());
        w.field("remoteMisses", r.counters.remoteMisses());
        w.field("lockAcquires", r.counters.lockAcquires);
        w.field("lockContended", r.counters.lockContended);
        w.field("barriersPassed", r.counters.barriersPassed);
        if (r.traced) {
            writeHisto(w, "histLocal", r.histLocal);
            writeHisto(w, "histRemoteClean", r.histRemoteClean);
            writeHisto(w, "histRemoteDirty", r.histRemoteDirty);
        }
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

} // namespace

const char*
causeName(Cause c)
{
    switch (c) {
    case Cause::LockSerialization: return "lock_serialization";
    case Cause::BarrierImbalance: return "barrier_imbalance";
    case Cause::HubContention: return "hub_contention";
    case Cause::DataPlacement: return "data_placement";
    case Cause::Capacity: return "capacity";
    }
    return "?";
}

const char*
causeTitle(Cause c)
{
    switch (c) {
    case Cause::LockSerialization: return "lock serialization";
    case Cause::BarrierImbalance: return "barrier imbalance";
    case Cause::HubContention: return "Hub/memory contention";
    case Cause::DataPlacement: return "data placement";
    case Cause::Capacity: return "cache capacity";
    }
    return "?";
}

const CauseScore*
AppDiagnosis::score(Cause c) const
{
    for (const CauseScore& s : ranked)
        if (s.cause == c)
            return &s;
    return nullptr;
}

AppDiagnosis
diagnoseApp(const std::string& name, const DiagnoseOptions& opt)
{
    if (!apps::tryMakeApp(name))
        apps::makeApp(name); // throws with the name list
    const std::uint64_t size =
        opt.size ? opt.size : check::goldenSize(name);
    return diagnoseImpl(
        name, [name, size] { return apps::makeApp(name, size); }, size,
        opt);
}

AppDiagnosis
diagnoseFactory(const std::string& label,
                const core::AppFactory& factory,
                const DiagnoseOptions& opt)
{
    return diagnoseImpl(label, factory, opt.size, opt);
}

std::vector<AppDiagnosis>
diagnoseAllApps(const DiagnoseOptions& opt)
{
    std::vector<AppDiagnosis> out;
    for (const std::string& name : apps::listApps())
        out.push_back(diagnoseApp(name, opt));
    return out;
}

void
writeDiagnoseJson(std::ostream& os,
                  const std::vector<AppDiagnosis>& results)
{
    obs::JsonWriter w(os);
    w.beginObject();
    w.field("schema", "ccnuma-diagnose-v2");
    w.beginArray("apps");
    for (const AppDiagnosis& d : results)
        writeApp(w, d);
    w.endArray();
    w.endObject();
    os << "\n";
}

bool
writeDiagnoseJsonFile(const std::string& path,
                      const std::vector<AppDiagnosis>& results)
{
    std::ofstream os(path);
    if (!os)
        return false;
    writeDiagnoseJson(os, results);
    return os.good();
}

void
emitMetrics(const AppDiagnosis& d, core::MetricsSink& sink)
{
    const std::string& label = d.app;
    sink.addText(label, "machine/protocol", d.protocol);
    sink.addText(label, "machine/dirFormat", d.dirFormat);
    sink.addText(label, "verdict", d.verdict);
    if (!d.ok) {
        sink.addText(label, "error", d.error);
        return;
    }
    sink.addText(label, "primaryCause",
                 causeName(d.ranked.front().cause));
    sink.addScalar(label, "efficiency", d.focus().efficiency);
    for (const CauseScore& c : d.ranked)
        sink.addScalar(label, std::string(causeName(c.cause)) + "Share",
                       c.share);
}

} // namespace ccnuma::diagnose
