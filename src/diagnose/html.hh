/**
 * @file
 * Self-contained HTML dashboard for scaling-loss diagnoses: one file,
 * no external assets (inline CSS, inline SVG), openable offline.
 *
 * Layout per application card:
 *  - verdict banner with the ranked cause bars and their evidence;
 *  - the scaling table across the P grid (time, speedup, efficiency,
 *    stacked time-breakdown bar with the lockWait/barrierWait split);
 *  - per-epoch stacked breakdown of the focus run (SVG);
 *  - miss-latency heatmap: one row per machine size, one column per
 *    power-of-two latency bucket, shaded by the row's share of misses;
 *  - hot coherence lines with their true/false-sharing class.
 * An index table up top links to every card.
 */

#ifndef CCNUMA_DIAGNOSE_HTML_HH
#define CCNUMA_DIAGNOSE_HTML_HH

#include <ostream>
#include <string>
#include <vector>

#include "diagnose/diagnose.hh"

namespace ccnuma::diagnose {

/// Write the dashboard document for `results` to `os`.
void writeDashboard(std::ostream& os,
                    const std::vector<AppDiagnosis>& results);

/// File wrapper; returns false on I/O error.
bool writeDashboardFile(const std::string& path,
                        const std::vector<AppDiagnosis>& results);

} // namespace ccnuma::diagnose

#endif // CCNUMA_DIAGNOSE_HTML_HH
