#include "core/seq_cache.hh"

namespace ccnuma::core {

sim::Cycles
SeqBaselineCache::getOrCompute(const std::string& key,
                               const Compute& compute)
{
    if (key.empty())
        return compute();

    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
        auto it = slots_.find(key);
        if (it == slots_.end()) {
            it = slots_.emplace(key, Slot{}).first;
            it->second.inFlight = true;
            break;
        }
        if (it->second.ready) {
            ++hits_;
            return it->second.value;
        }
        // Someone else is computing this key; wait for the verdict.
        // On wake the slot is either ready (count it as a hit) or gone
        // (the leader failed) — loop and re-decide.
        cv_.wait(lk);
    }

    // We are the leader for `key`: compute without holding the lock so
    // other keys (and waiters) make progress.
    lk.unlock();
    sim::Cycles value = 0;
    try {
        value = compute();
    } catch (...) {
        // Erase the pending slot so a waiter can retry as leader, and
        // surface the failure only to our own caller.
        lk.lock();
        slots_.erase(key);
        cv_.notify_all();
        throw;
    }
    lk.lock();
    Slot& s = slots_[key];
    s.value = value;
    s.ready = true;
    s.inFlight = false;
    cv_.notify_all();
    return value;
}

std::optional<sim::Cycles>
SeqBaselineCache::lookup(const std::string& key) const
{
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = slots_.find(key);
    if (it == slots_.end() || !it->second.ready)
        return std::nullopt;
    return it->second.value;
}

void
SeqBaselineCache::insert(const std::string& key, sim::Cycles value)
{
    if (key.empty())
        return;
    std::lock_guard<std::mutex> lk(mu_);
    Slot& s = slots_[key];
    s.value = value;
    s.ready = true;
    s.inFlight = false;
    cv_.notify_all();
}

std::size_t
SeqBaselineCache::size() const
{
    std::lock_guard<std::mutex> lk(mu_);
    std::size_t n = 0;
    for (const auto& [k, s] : slots_)
        n += s.ready ? 1 : 0;
    return n;
}

std::uint64_t
SeqBaselineCache::hits() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return hits_;
}

} // namespace ccnuma::core
