#include "core/report.hh"

#include <algorithm>
#include <cstdio>

namespace ccnuma::core {

std::string
fmt(double v, int width, int prec)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%*.*f", width, prec, v);
    return buf;
}

void
printHeader(const std::string& title)
{
    std::printf("\n==== %s ====\n", title.c_str());
}

void
printSeries(const std::string& x_label,
            const std::vector<Series>& series)
{
    if (series.empty())
        return;
    std::printf("%-18s", x_label.c_str());
    for (const Series& s : series)
        std::printf(" %14s", s.name.c_str());
    std::printf("\n");
    const std::size_t rows = series[0].xs.size();
    for (std::size_t r = 0; r < rows; ++r) {
        std::printf("%-18s", series[0].xs[r].c_str());
        for (const Series& s : series) {
            if (r < s.ys.size())
                std::printf(" %14s", fmt(s.ys[r], 14, 3).c_str());
            else
                std::printf(" %14s", "-");
        }
        std::printf("\n");
    }
}

void
printBreakdown(const std::string& label, const sim::Breakdown& b)
{
    auto bar = [](double frac, char ch) {
        return std::string(static_cast<std::size_t>(
                               std::max(0.0, frac) * 40 + 0.5),
                           ch);
    };
    std::printf("%-28s busy %5.1f%% mem %5.1f%% sync %5.1f%%  |%s%s%s|\n",
                label.c_str(), b.busy * 100, b.mem * 100, b.sync * 100,
                bar(b.busy, '#').c_str(), bar(b.mem, '=').c_str(),
                bar(b.sync, '.').c_str());
}

void
printPerProcBreakdown(const std::string& label, const sim::RunResult& r,
                      int buckets)
{
    std::printf("%s (per-processor continuum, %d buckets of %zu procs)\n",
                label.c_str(), buckets, r.procs.size() / buckets);
    const int nprocs = static_cast<int>(r.procs.size());
    buckets = std::min(buckets, nprocs);
    for (int bkt = 0; bkt < buckets; ++bkt) {
        const int lo = nprocs * bkt / buckets;
        const int hi = nprocs * (bkt + 1) / buckets;
        sim::Breakdown acc;
        for (int p = lo; p < hi; ++p) {
            const sim::Breakdown pb = r.breakdown(p);
            acc.busy += pb.busy;
            acc.mem += pb.mem;
            acc.sync += pb.sync;
        }
        const double n = hi - lo;
        acc.busy /= n;
        acc.mem /= n;
        acc.sync /= n;
        char lbl[32];
        std::snprintf(lbl, sizeof lbl, "  procs %3d-%-3d", lo, hi - 1);
        printBreakdown(lbl, acc);
    }
}

void
printCounters(const std::string& label, const sim::ProcCounters& c)
{
    std::printf(
        "%-28s loads %llu stores %llu hits %llu missL %llu missRC %llu "
        "missRD %llu upg %llu inv %llu spur %llu upd %llu wb %llu "
        "pf %llu/%llu mig %llu lk %llu bar %llu\n",
        label.c_str(),
        static_cast<unsigned long long>(c.loads),
        static_cast<unsigned long long>(c.stores),
        static_cast<unsigned long long>(c.l2Hits),
        static_cast<unsigned long long>(c.missLocal),
        static_cast<unsigned long long>(c.missRemoteClean),
        static_cast<unsigned long long>(c.missRemoteDirty),
        static_cast<unsigned long long>(c.upgrades),
        static_cast<unsigned long long>(c.invalsSent),
        static_cast<unsigned long long>(c.invalsSpurious),
        static_cast<unsigned long long>(c.updatesSent),
        static_cast<unsigned long long>(c.writebacks),
        static_cast<unsigned long long>(c.prefetchesUseful),
        static_cast<unsigned long long>(c.prefetchesIssued),
        static_cast<unsigned long long>(c.pageMigrations),
        static_cast<unsigned long long>(c.lockAcquires),
        static_cast<unsigned long long>(c.barriersPassed));
}

void
printLatencyHistogram(const std::string& label,
                      const obs::LatencyHisto& h)
{
    if (h.count() == 0)
        return;
    std::printf("%-28s n %10llu  mean %8.1f  p50 %6llu  p95 %6llu  "
                "p99 %6llu  max %6llu cycles\n",
                label.c_str(),
                static_cast<unsigned long long>(h.count()), h.mean(),
                static_cast<unsigned long long>(h.quantile(0.50)),
                static_cast<unsigned long long>(h.quantile(0.95)),
                static_cast<unsigned long long>(h.quantile(0.99)),
                static_cast<unsigned long long>(h.max()));
}

void
printLatencyHistograms(const obs::Trace& t)
{
    printLatencyHistogram("  miss latency: local", t.histLocal());
    printLatencyHistogram("  miss latency: remote clean",
                          t.histRemoteClean());
    printLatencyHistogram("  miss latency: remote dirty",
                          t.histRemoteDirty());
    printLatencyHistogram("  upgrade latency", t.histUpgrade());
}

void
printHotLines(const obs::Trace& t, int top_n)
{
    if (!t.config().sharing) {
        std::printf("(sharing profiler was not enabled)\n");
        return;
    }
    const auto lines = t.sharing().hotLines(
        static_cast<std::size_t>(top_n));
    if (lines.empty()) {
        std::printf("no coherence traffic attributed to any line\n");
        return;
    }
    std::printf("%-14s %-13s %8s %8s %8s %6s %6s %6s\n", "line",
                "class", "invals", "dirtyMs", "upgrades", "procs",
                "words", "shrd");
    for (const auto& l : lines)
        std::printf("0x%-12llx %-13s %8llu %8llu %8llu %6d %6d %6d\n",
                    static_cast<unsigned long long>(l.line),
                    obs::SharingProfiler::className(l.cls),
                    static_cast<unsigned long long>(l.invalidations),
                    static_cast<unsigned long long>(l.dirtyMisses),
                    static_cast<unsigned long long>(l.upgrades),
                    l.procsTouched, l.wordsTouched, l.wordsShared);
    const auto pages = t.sharing().hotPages(
        static_cast<std::size_t>(top_n > 5 ? 5 : top_n));
    for (const auto& p : pages)
        std::printf("  page %-8llu traffic %8llu over %d lines\n",
                    static_cast<unsigned long long>(p.page),
                    static_cast<unsigned long long>(p.traffic()),
                    p.linesTracked);
}

} // namespace ccnuma::core
