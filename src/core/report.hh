/**
 * @file
 * Plain-text reporting helpers shared by the bench binaries: figure-style
 * series tables, execution-time breakdown bars and per-processor
 * breakdown continua (the paper's Figures 3 and 5-8).
 */

#ifndef CCNUMA_CORE_REPORT_HH
#define CCNUMA_CORE_REPORT_HH

#include <string>
#include <vector>

#include "obs/trace.hh"
#include "sim/stats.hh"

namespace ccnuma::core {

/// "==== <title> ====" header.
void printHeader(const std::string& title);

/** One named series of (x, y) points, e.g. efficiency vs problem size. */
struct Series {
    std::string name;
    std::vector<std::string> xs;
    std::vector<double> ys;
};

/// Tabulate several series sharing x labels:
///   x | series1 | series2 ...
void printSeries(const std::string& x_label,
                 const std::vector<Series>& series);

/// One Busy/Memory/Sync breakdown line with a proportional ASCII bar.
void printBreakdown(const std::string& label, const sim::Breakdown& b);

/// Per-processor breakdown continuum (Figures 5-8): rows of processors
/// grouped into `buckets` buckets, with busy/mem/sync percentages.
void printPerProcBreakdown(const std::string& label,
                           const sim::RunResult& r, int buckets = 16);

/// Counter summary line (misses by type, invals, writebacks, prefetch
/// issued/useful, locks, barriers...).
void printCounters(const std::string& label, const sim::ProcCounters& c);

/// One-line summary of a miss-latency histogram (count/mean/p50/p95/
/// p99/max in cycles); prints nothing for an empty histogram.
void printLatencyHistogram(const std::string& label,
                           const obs::LatencyHisto& h);

/// Summaries for every per-class histogram collected in `t`.
void printLatencyHistograms(const obs::Trace& t);

/// Top-N hottest coherence lines with their true/false-sharing
/// classification, and the hottest pages (requires trace.sharing).
void printHotLines(const obs::Trace& t, int top_n = 10);

/// Format helper: fixed-width double.
std::string fmt(double v, int width = 7, int prec = 2);

} // namespace ccnuma::core

#endif // CCNUMA_CORE_REPORT_HH
