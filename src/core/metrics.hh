/**
 * @file
 * Machine-readable metrics sink for the bench binaries: collects named
 * run results (breakdowns, totals, scalar series) and writes one JSON
 * document, so a bench's perf trajectory can be tracked across PRs
 * (e.g. `fig3_breakdown --json=BENCH_fig3.json`).
 */

#ifndef CCNUMA_CORE_METRICS_HH
#define CCNUMA_CORE_METRICS_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "sim/stats.hh"

namespace ccnuma::sim {
struct MachineConfig;
}

namespace ccnuma::core {

/**
 * Accumulates labelled measurements; write() emits them as JSON. A sink
 * constructed with an empty path is disabled: add()/write() are no-ops,
 * so call sites need no conditionals.
 */
class MetricsSink
{
  public:
    explicit MetricsSink(std::string path) : path_(std::move(path)) {}

    /// A sink that collects without a backing file; read it out with
    /// str(). Used by ccnuma_serve to stream results over the wire in
    /// exactly the format the bench binaries write to disk.
    static MetricsSink
    inMemory()
    {
        MetricsSink s{std::string()};
        s.collect_ = true;
        return s;
    }

    bool enabled() const { return collect_ || !path_.empty(); }

    /// Record the machine identity the runs used — coherence protocol
    /// and directory sharer format — emitted once as a top-level
    /// "machine" object so every payload says what it measured.
    void setMachine(const sim::MachineConfig& cfg);

    /// Record one run under `label` (breakdown, totals, run time).
    void add(const std::string& label, const sim::RunResult& r);
    /// Attach a scalar (e.g. speedup) to the entry named `label`,
    /// creating a scalar-only entry if none exists.
    void addScalar(const std::string& label, const std::string& key,
                   double v);
    /// Attach an exact integer (cycle/op counts round-trip exactly,
    /// unlike a double scalar).
    void addCount(const std::string& label, const std::string& key,
                  std::uint64_t v);
    /// Attach a string (e.g. a git describe, a grid name).
    void addText(const std::string& label, const std::string& key,
                 const std::string& v);

    /// Write the JSON document; returns false on I/O error (or true
    /// without writing when disabled or in-memory).
    bool write() const;

    /// Render the JSON document as a string (indent 0 = one compact
    /// line, newline-free — the ccnuma_serve NDJSON payload form).
    std::string str(int indent = 0) const;

  private:
    struct Entry {
        std::string label;
        bool hasRun = false;
        sim::Cycles time = 0;
        sim::Breakdown breakdown;
        sim::ProcCounters totals;
        std::vector<std::pair<std::string, std::string>> texts;
        std::vector<std::pair<std::string, std::uint64_t>> counts;
        std::vector<std::pair<std::string, double>> scalars;
    };
    Entry& entry(const std::string& label);
    void emit(std::ostream& out, int indent) const;

    std::string path_;
    bool collect_ = false;
    std::string machineProtocol_;
    std::string machineDirFormat_;
    std::vector<Entry> entries_;
};

} // namespace ccnuma::core

#endif // CCNUMA_CORE_METRICS_HH
