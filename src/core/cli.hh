/**
 * @file
 * Shared command-line handling for the example and bench binaries.
 * Every driver understands the same flags:
 *
 *   --trace=FILE   capture + export an observability trace
 *                  (env fallback: CCNUMA_TRACE)
 *   --json=FILE    dump machine-readable metrics via core::MetricsSink
 *                  (env fallback: CCNUMA_JSON)
 *   --jobs=N       StudyRunner worker threads; 0 = one per host core
 *                  (env fallback: CCNUMA_JOBS)
 *   --sim-jobs=N   host threads per simulation run: 1 = the serial
 *                  engine (default), 0 = one per host core, N > 1 =
 *                  the node-sharded parallel engine with 1 replay +
 *                  N-1 scout threads (env fallback: CCNUMA_SIM_JOBS).
 *                  Applied to cfg.simJobs by applyMachine().
 *   --seed=N       seed for randomized components (mapping
 *                  permutations, stress programs); env fallback:
 *                  CCNUMA_SEED
 *   --epoch-cycles=N  epoch length for interval metrics, in cycles
 *                  (0 = the TraceConfig default); tunes the time
 *                  resolution of epoch series and dashboards without
 *                  recompiling. Env fallback: CCNUMA_EPOCH
 *   --protocol=P   coherence protocol: mesi | moesi | dragon
 *                  (env fallback: CCNUMA_PROTOCOL)
 *   --dir-format=F directory sharer format: fullbv | coarse:K | ptr:N
 *                  (env fallback: CCNUMA_DIR)
 *
 * The protocol/directory selections are applied to a
 * sim::MachineConfig with applyMachine(); a value that does not parse
 * is reported through `malformed` and the machine default is kept.
 *
 * Flags beat environment variables. Numeric flag values are parsed
 * strictly: a malformed value (e.g. --jobs=abc) is reported in
 * `malformed` and the default is kept — warnUnknown() surfaces both
 * malformed values and unrecognized flags. Anything else starting with
 * "--" is collected in `unknown` (drivers with extra flags consume
 * them via takeFlag()/takeSwitch() before calling warnUnknown());
 * bare words are positional arguments.
 */

#ifndef CCNUMA_CORE_CLI_HH
#define CCNUMA_CORE_CLI_HH

#include <cstdint>
#include <string>
#include <vector>

namespace ccnuma::sim {
struct MachineConfig;
}

namespace ccnuma::core::cli {

struct Options {
    std::string traceFile;
    std::string jsonFile;
    int jobs = 1;
    /// MachineConfig::simJobs for each simulation run: 1 = serial
    /// engine, 0 = auto (one host thread per core), N > 1 = parallel
    /// scout/replay engine. Applied by applyMachine(). Composes with
    /// `jobs`: StudyRunner divides its worker count by simJobs so the
    /// total host-thread budget stays jobs (see StudyOptions).
    int simJobs = 1;
    std::uint64_t seed = 1;
    /// Epoch length override for interval metrics; 0 = keep the
    /// sim::TraceConfig default (drivers apply it to
    /// cfg.trace.epochCycles when non-zero).
    std::uint64_t epochCycles = 0;
    /// Coherence protocol name ("mesi" | "moesi" | "dragon"); empty =
    /// keep the MachineConfig default. Applied by applyMachine().
    std::string protocol;
    /// Directory format ("fullbv" | "coarse:K" | "ptr:N"); empty =
    /// keep the MachineConfig default. Applied by applyMachine().
    std::string dirFormat;
    std::vector<std::string> positional;
    std::vector<std::string> unknown;
    /// Flags whose numeric value did not parse ("--jobs=abc"); the
    /// field keeps its default when this happens.
    std::vector<std::string> malformed;

    /// positional[i] or `fallback` when absent.
    std::string positionalOr(std::size_t i,
                             const std::string& fallback) const
    {
        return i < positional.size() ? positional[i] : fallback;
    }
    /// positional[i] parsed as u64, or `fallback` when absent.
    std::uint64_t positionalOr(std::size_t i,
                               std::uint64_t fallback) const;

    /// Consume "--name=value" from `unknown`: removes it and returns
    /// true with `value` set. Drivers with extra flags call this
    /// before warnUnknown().
    bool takeFlag(const std::string& name, std::string& value);
    /// Consume a bare "--name" switch from `unknown`.
    bool takeSwitch(const std::string& name);
};

/// Parse argv (argv[0] skipped) with environment-variable fallbacks.
Options parse(int argc, char** argv);

/// Strict u64 parse of a full string; returns false on any trailing
/// garbage, sign, overflow or empty input.
bool parseU64(const std::string& text, std::uint64_t& out);

/// Strict parse of a comma-separated u64 list ("1,8,32"); returns
/// false (leaving `out` untouched) on any malformed element, empty
/// element or empty input.
bool parseU64List(const std::string& text,
                  std::vector<std::uint64_t>& out);

/// Apply the --protocol / --dir-format / --sim-jobs selections to
/// `cfg` (cfg.protocol / cfg.dirFormat / cfg.simJobs). A value that
/// does not parse keeps the machine default and is appended to
/// opt.malformed, so a later warnUnknown() surfaces it; returns false
/// in that case. Call once per driver, before warnUnknown().
bool applyMachine(Options& opt, sim::MachineConfig& cfg);

/// Print a warning per unknown flag and per malformed numeric value;
/// returns true if there were none of either.
bool warnUnknown(const Options& opt);

} // namespace ccnuma::core::cli

#endif // CCNUMA_CORE_CLI_HH
