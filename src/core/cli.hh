/**
 * @file
 * Shared command-line handling for the example and bench binaries.
 * Every driver understands the same flags:
 *
 *   --trace=FILE   capture + export an observability trace
 *                  (env fallback: CCNUMA_TRACE)
 *   --json=FILE    dump machine-readable metrics via core::MetricsSink
 *                  (env fallback: CCNUMA_JSON)
 *   --jobs=N       StudyRunner worker threads; 0 = one per host core
 *                  (env fallback: CCNUMA_JOBS)
 *
 * Flags beat environment variables. Anything else starting with "--"
 * is collected in `unknown`; bare words are positional arguments.
 */

#ifndef CCNUMA_CORE_CLI_HH
#define CCNUMA_CORE_CLI_HH

#include <cstdint>
#include <string>
#include <vector>

namespace ccnuma::core::cli {

struct Options {
    std::string traceFile;
    std::string jsonFile;
    int jobs = 1;
    std::vector<std::string> positional;
    std::vector<std::string> unknown;

    /// positional[i] or `fallback` when absent.
    std::string positionalOr(std::size_t i,
                             const std::string& fallback) const
    {
        return i < positional.size() ? positional[i] : fallback;
    }
    /// positional[i] parsed as u64, or `fallback` when absent.
    std::uint64_t positionalOr(std::size_t i,
                               std::uint64_t fallback) const;
};

/// Parse argv (argv[0] skipped) with environment-variable fallbacks.
Options parse(int argc, char** argv);

/// Print a warning per unknown flag; returns true if there were none.
bool warnUnknown(const Options& opt);

} // namespace ccnuma::core::cli

#endif // CCNUMA_CORE_CLI_HH
