/**
 * @file
 * The parallel study engine: execute a declarative grid of experiment
 * runs (a StudyPlan of RunSpecs) on a pool of host threads.
 *
 * The paper's methodology is a large grid of independent simulations —
 * eleven applications x {32,64,96,128} processors x problem sizes x
 * machine variants. Each sim::Machine is self-contained, so the grid is
 * embarrassingly parallel; the engine exploits that while guaranteeing
 * results that are cycle-identical to running the same plan serially:
 *
 *  - Deterministic aggregation: results come back in submission order
 *    regardless of which worker finished first.
 *  - Single-flight baselines: RunSpecs sharing a seqKey share one
 *    uniprocessor baseline simulation (SeqBaselineCache), never two.
 *  - Exception isolation: a throwing run fails only its own cell; the
 *    rest of the study completes.
 *  - Progress + timing: optional per-run progress lines on stderr, and
 *    the study's host wall-clock in StudyResult.
 */

#ifndef CCNUMA_CORE_STUDY_RUNNER_HH
#define CCNUMA_CORE_STUDY_RUNNER_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/seq_cache.hh"
#include "core/study.hh"

namespace ccnuma::core {

class MetricsSink;

/** One cell of a study grid: a named machine + application pairing. */
struct RunSpec {
    std::string name;        ///< Label in results, progress and JSON.
    sim::MachineConfig cfg;
    AppFactory factory;
    /// Baseline memo key; specs sharing a key share one uniprocessor
    /// baseline run. Empty = private (uncached) baseline.
    std::string seqKey;
    /// When false, skip the baseline entirely (parallel run only;
    /// Measurement::seqTime stays 0 and speedup() reads 0).
    bool baseline = true;
    /// Optional hook run on the parallel Machine between App::setup()
    /// and Machine::run() (attach observers; see core::MachineHook).
    /// Called from the worker thread executing this spec.
    MachineHook preRun;
};

/** An ordered list of RunSpecs; order defines result order. */
class StudyPlan
{
  public:
    StudyPlan& add(RunSpec spec)
    {
        specs_.push_back(std::move(spec));
        return *this;
    }
    /// Convenience: measure `factory` on `cfg` against a (shared, when
    /// `seqKey` non-empty) uniprocessor baseline.
    StudyPlan& add(std::string name, const sim::MachineConfig& cfg,
                   AppFactory factory, std::string seqKey = "")
    {
        return add(RunSpec{std::move(name), cfg, std::move(factory),
                           std::move(seqKey), true, {}});
    }
    /// Convenience: parallel run only, no baseline (e.g. breakdowns).
    StudyPlan& addParallelOnly(std::string name,
                               const sim::MachineConfig& cfg,
                               AppFactory factory)
    {
        return add(RunSpec{std::move(name), cfg, std::move(factory),
                           "", false, {}});
    }

    const std::vector<RunSpec>& specs() const { return specs_; }
    std::size_t size() const { return specs_.size(); }
    bool empty() const { return specs_.empty(); }

  private:
    std::vector<RunSpec> specs_;
};

/** Outcome of one RunSpec. Exactly one of ok/error is meaningful. */
struct RunOutcome {
    std::string name;
    int nprocs = 0;
    bool ok = false;
    std::string error;    ///< what() of the exception when !ok.
    Measurement m;        ///< Valid only when ok.
    double seconds = 0;   ///< Host wall-clock of this cell.
};

/** All outcomes of one study, in plan submission order. */
struct StudyResult {
    std::vector<RunOutcome> runs;
    double wallSeconds = 0;  ///< Host wall-clock of the whole study.
    int jobs = 1;            ///< Worker threads actually used.

    std::size_t failures() const;
    const RunOutcome* find(const std::string& name) const;
    /// Emit the full grid into `sink`: per-run breakdown/totals plus
    /// speedup/efficiency scalars, and a "_study" entry with the
    /// engine's own wall-clock and job count.
    void emit(MetricsSink& sink) const;
};

/** Engine knobs. */
struct StudyOptions {
    /// Host-thread budget; 0 = one per hardware thread. The worker
    /// pool gets jobs / simJobs threads (at least one).
    int jobs = 1;
    /// Host threads each simulation run consumes — set this to the
    /// MachineConfig::simJobs the plan's cells use, so a study over
    /// parallel-engine runs divides its budget instead of
    /// oversubscribing the host (jobs stays the *total* budget).
    /// 0 (auto: each run wants the whole machine) collapses the pool
    /// to one worker. Runs clamped back to serial (timing-variant
    /// apps) just leave idle headroom — never extra load.
    int simJobs = 1;
    /// Print one line per completed run to stderr.
    bool progress = false;
};

/**
 * Executes StudyPlans on a fixed-size worker pool. The baseline cache
 * persists across run() calls, so successive plans (e.g. an original
 * and a restructured sweep) share baselines. StudyRunner itself is not
 * re-entrant: call run() from one thread at a time.
 */
class StudyRunner
{
  public:
    explicit StudyRunner(StudyOptions opt = {});
    /// Joins the submission thread after draining every pending
    /// submit()ted plan (their futures all become ready).
    ~StudyRunner();
    StudyRunner(const StudyRunner&) = delete;
    StudyRunner& operator=(const StudyRunner&) = delete;

    /// Run every spec; never throws for per-run failures (see
    /// RunOutcome::error).
    StudyResult run(const StudyPlan& plan);

    /**
     * Asynchronous front door for run(): enqueue `plan` and get a
     * future for its StudyResult. Plans drain FIFO through run() on
     * one lazily-started internal thread, so concurrent submitters
     * (e.g. ccnuma_serve connection handlers) share the worker pool,
     * the host-thread budget and the baseline cache instead of each
     * spinning up their own study. submit() is thread-safe; the
     * not-re-entrant rule moves to "don't call run() directly while
     * submissions are outstanding".
     */
    std::future<StudyResult> submit(StudyPlan plan);

    SeqBaselineCache& baselineCache() { return cache_; }

  private:
    void drainSubmissions();

    StudyOptions opt_;
    SeqBaselineCache cache_;
    // ---- submit() machinery ----
    std::mutex subMu_;
    std::condition_variable subCv_;
    std::deque<std::pair<StudyPlan, std::promise<StudyResult>>> subQ_;
    std::thread subThread_; ///< Started by the first submit().
    bool subStop_ = false;
};

} // namespace ccnuma::core

#endif // CCNUMA_CORE_STUDY_RUNNER_HH
