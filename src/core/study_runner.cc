#include "core/study_runner.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <thread>

#include "core/metrics.hh"

namespace ccnuma::core {

namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

int
hostThreads()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? static_cast<int>(hw) : 1;
}

/// Workers = thread budget / per-run weight, clamped to the work
/// available. `sim_jobs` <= 0 means each run wants the whole host.
int
resolveJobs(int requested, std::size_t work_items, int sim_jobs)
{
    int budget = requested <= 0 ? hostThreads() : requested;
    const int weight = sim_jobs <= 0 ? hostThreads() : sim_jobs;
    int jobs = budget / weight;
    if (work_items &&
        static_cast<std::size_t>(jobs) > work_items)
        jobs = static_cast<int>(work_items);
    return jobs < 1 ? 1 : jobs;
}

} // namespace

std::size_t
StudyResult::failures() const
{
    std::size_t n = 0;
    for (const RunOutcome& r : runs)
        n += r.ok ? 0 : 1;
    return n;
}

const RunOutcome*
StudyResult::find(const std::string& name) const
{
    for (const RunOutcome& r : runs)
        if (r.name == name)
            return &r;
    return nullptr;
}

void
StudyResult::emit(MetricsSink& sink) const
{
    if (!sink.enabled())
        return;
    for (const RunOutcome& r : runs) {
        if (!r.ok) {
            sink.addScalar(r.name, "failed", 1.0);
            continue;
        }
        sink.add(r.name, r.m.par);
        sink.addScalar(r.name, "nprocs", r.nprocs);
        if (r.m.seqTime) {
            sink.addScalar(r.name, "seqCycles",
                           static_cast<double>(r.m.seqTime));
            sink.addScalar(r.name, "speedup", r.m.speedup());
            sink.addScalar(r.name, "efficiency", r.m.efficiency());
        }
        sink.addScalar(r.name, "hostSeconds", r.seconds);
    }
    sink.addScalar("_study", "wallSeconds", wallSeconds);
    sink.addScalar("_study", "jobs", jobs);
    sink.addScalar("_study", "runs", static_cast<double>(runs.size()));
    sink.addScalar("_study", "failures",
                   static_cast<double>(failures()));
}

StudyRunner::StudyRunner(StudyOptions opt) : opt_(opt) {}

StudyRunner::~StudyRunner()
{
    {
        std::lock_guard<std::mutex> lk(subMu_);
        subStop_ = true;
    }
    subCv_.notify_all();
    if (subThread_.joinable())
        subThread_.join();
}

std::future<StudyResult>
StudyRunner::submit(StudyPlan plan)
{
    std::promise<StudyResult> promise;
    std::future<StudyResult> fut = promise.get_future();
    {
        std::lock_guard<std::mutex> lk(subMu_);
        subQ_.emplace_back(std::move(plan), std::move(promise));
        if (!subThread_.joinable())
            subThread_ = std::thread([this] { drainSubmissions(); });
    }
    subCv_.notify_one();
    return fut;
}

void
StudyRunner::drainSubmissions()
{
    std::unique_lock<std::mutex> lk(subMu_);
    for (;;) {
        subCv_.wait(lk, [&] { return subStop_ || !subQ_.empty(); });
        if (subQ_.empty())
            return; // only reachable when subStop_
        StudyPlan plan = std::move(subQ_.front().first);
        std::promise<StudyResult> promise =
            std::move(subQ_.front().second);
        subQ_.pop_front();
        lk.unlock();
        // run() never throws for per-run failures; anything that does
        // escape (e.g. bad_alloc) lands in the future, not std::terminate.
        try {
            promise.set_value(run(plan));
        } catch (...) {
            promise.set_exception(std::current_exception());
        }
        lk.lock();
    }
}

StudyResult
StudyRunner::run(const StudyPlan& plan)
{
    const std::vector<RunSpec>& specs = plan.specs();
    StudyResult result;
    result.runs.resize(specs.size());
    result.jobs = resolveJobs(opt_.jobs, specs.size(), opt_.simJobs);
    const auto study_t0 = std::chrono::steady_clock::now();

    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::mutex progress_mu;

    const auto worker = [&] {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= specs.size())
                return;
            const RunSpec& spec = specs[i];
            RunOutcome& out = result.runs[i];
            out.name = spec.name;
            out.nprocs = spec.cfg.numProcs;
            const auto t0 = std::chrono::steady_clock::now();
            try {
                if (spec.baseline) {
                    out.m = measure(spec.cfg, spec.factory, &cache_,
                                    spec.seqKey, spec.preRun);
                } else {
                    out.m.nprocs = spec.cfg.numProcs;
                    apps::AppPtr app = spec.factory();
                    out.m.par = runApp(spec.cfg, *app, spec.preRun);
                    out.m.parTime = out.m.par.time;
                }
                out.ok = true;
            } catch (const std::exception& e) {
                out.error = e.what();
            } catch (...) {
                out.error = "unknown exception";
            }
            out.seconds = secondsSince(t0);
            const std::size_t finished =
                done.fetch_add(1, std::memory_order_relaxed) + 1;
            if (opt_.progress) {
                std::lock_guard<std::mutex> lk(progress_mu);
                if (out.ok && spec.baseline)
                    std::fprintf(stderr,
                                 "[%zu/%zu] %s: speedup %.1f on %d "
                                 "procs (%.2fs)\n",
                                 finished, specs.size(),
                                 out.name.c_str(), out.m.speedup(),
                                 out.nprocs, out.seconds);
                else if (out.ok)
                    std::fprintf(stderr,
                                 "[%zu/%zu] %s: done (%.2fs)\n",
                                 finished, specs.size(),
                                 out.name.c_str(), out.seconds);
                else
                    std::fprintf(stderr,
                                 "[%zu/%zu] %s: FAILED: %s\n",
                                 finished, specs.size(),
                                 out.name.c_str(), out.error.c_str());
                std::fflush(stderr);
            }
        }
    };

    if (result.jobs == 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(result.jobs);
        for (int t = 0; t < result.jobs; ++t)
            pool.emplace_back(worker);
        for (std::thread& t : pool)
            t.join();
    }

    result.wallSeconds = secondsSince(study_t0);
    return result;
}

} // namespace ccnuma::core
