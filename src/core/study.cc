#include "core/study.hh"

#include "apps/registry.hh"

namespace ccnuma::core {

sim::RunResult
runApp(const sim::MachineConfig& cfg, apps::App& app,
       const MachineHook& pre_run)
{
    sim::MachineConfig eff = cfg;
    // The parallel scout/replay engine is only bit-identical for apps
    // whose operation streams do not depend on simulated timing (task
    // stealing, rank-dependent work); clamp those back to serial.
    if (eff.simJobs != 1 && !apps::timingInvariant(app.name()))
        eff.simJobs = 1;
    sim::Machine m(eff);
    app.setup(m);
    if (pre_run)
        pre_run(m);
    return m.run(app.program());
}

Measurement
measure(const sim::MachineConfig& cfg, const AppFactory& factory,
        SeqBaselineCache* seq_cache, const std::string& seq_key,
        const MachineHook& pre_run)
{
    Measurement out;
    out.nprocs = cfg.numProcs;

    const auto simulate_baseline = [&]() -> sim::Cycles {
        apps::AppPtr seq_app = factory();
        return runApp(cfg.baseline(), *seq_app).time;
    };
    out.seqTime = seq_cache
                      ? seq_cache->getOrCompute(seq_key,
                                                simulate_baseline)
                      : simulate_baseline();

    apps::AppPtr par_app = factory();
    out.par = runApp(cfg, *par_app, pre_run);
    out.parTime = out.par.time;
    return out;
}

} // namespace ccnuma::core
