#include "core/study.hh"

namespace ccnuma::core {

sim::RunResult
runApp(const sim::MachineConfig& cfg, apps::App& app)
{
    sim::Machine m(cfg);
    app.setup(m);
    return m.run(app.program());
}

Measurement
measure(const sim::MachineConfig& cfg, const AppFactory& factory,
        std::map<std::string, sim::Cycles>* seq_cache,
        const std::string& seq_key)
{
    Measurement out;
    out.nprocs = cfg.numProcs;

    const bool cached = seq_cache && !seq_key.empty() &&
                        seq_cache->count(seq_key);
    if (cached) {
        out.seqTime = (*seq_cache)[seq_key];
    } else {
        sim::MachineConfig seq_cfg = cfg;
        seq_cfg.numProcs = 1;
        seq_cfg.oneProcPerNode = false;
        // The baseline is only timed; don't trace it (tracing never
        // changes timing, this just avoids pointless capture cost).
        seq_cfg.trace = {};
        apps::AppPtr seq_app = factory();
        out.seqTime = runApp(seq_cfg, *seq_app).time;
        if (seq_cache && !seq_key.empty())
            (*seq_cache)[seq_key] = out.seqTime;
    }

    apps::AppPtr par_app = factory();
    out.par = runApp(cfg, *par_app);
    out.parTime = out.par.time;
    return out;
}

} // namespace ccnuma::core
