#include "core/study.hh"

namespace ccnuma::core {

sim::RunResult
runApp(const sim::MachineConfig& cfg, apps::App& app)
{
    sim::Machine m(cfg);
    app.setup(m);
    return m.run(app.program());
}

Measurement
measure(const sim::MachineConfig& cfg, const AppFactory& factory,
        SeqBaselineCache* seq_cache, const std::string& seq_key)
{
    Measurement out;
    out.nprocs = cfg.numProcs;

    const auto simulate_baseline = [&]() -> sim::Cycles {
        apps::AppPtr seq_app = factory();
        return runApp(cfg.baseline(), *seq_app).time;
    };
    out.seqTime = seq_cache
                      ? seq_cache->getOrCompute(seq_key,
                                                simulate_baseline)
                      : simulate_baseline();

    apps::AppPtr par_app = factory();
    out.par = runApp(cfg, *par_app);
    out.parTime = out.par.time;
    return out;
}

Measurement
measure(const sim::MachineConfig& cfg, const AppFactory& factory,
        std::map<std::string, sim::Cycles>* seq_cache,
        const std::string& seq_key)
{
    // Deprecated raw-map path: funnel through a throwaway typed cache,
    // copying the map's entries in and the (single) new entry back out.
    SeqBaselineCache cache;
    if (seq_cache)
        for (const auto& [k, v] : *seq_cache)
            cache.insert(k, v);
    const Measurement out =
        measure(cfg, factory, seq_cache ? &cache : nullptr, seq_key);
    if (seq_cache && !seq_key.empty())
        (*seq_cache)[seq_key] = out.seqTime;
    return out;
}

} // namespace ccnuma::core
