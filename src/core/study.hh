/**
 * @file
 * The study framework: run applications on configured machines, measure
 * speedup/parallel efficiency against a uniprocessor baseline of the
 * same program (the paper's methodology, Section 2.3), and sweep
 * problem sizes and machine sizes.
 *
 * Baselines are memoized in a thread-safe SeqBaselineCache (see
 * seq_cache.hh); for whole grids of runs, prefer the parallel
 * StudyRunner (study_runner.hh) over calling measure() in a loop.
 */

#ifndef CCNUMA_CORE_STUDY_HH
#define CCNUMA_CORE_STUDY_HH

#include <functional>
#include <string>
#include <vector>

#include "apps/app.hh"
#include "core/seq_cache.hh"
#include "sim/machine.hh"

namespace ccnuma::core {

/// Build-an-app callback; called once per machine (P-proc and 1-proc).
using AppFactory = std::function<apps::AppPtr()>;

/// Optional per-run access to the Machine between App::setup() and
/// Machine::run() — the seam observers (e.g. a sim::SyncObserver or
/// the diagnose sync profiler) attach through. Never called for
/// baseline runs (those are only timed).
using MachineHook = std::function<void(sim::Machine&)>;

/// Run `app` on a machine configured by `cfg`. `pre_run` (optional) is
/// invoked after setup, just before the program starts.
sim::RunResult runApp(const sim::MachineConfig& cfg, apps::App& app,
                      const MachineHook& pre_run = {});

/** Result of one speedup measurement. */
struct Measurement {
    sim::Cycles seqTime = 0;
    sim::Cycles parTime = 0;
    int nprocs = 0;
    sim::RunResult par;   ///< Full parallel-run stats.
    double speedup() const
    {
        return parTime ? static_cast<double>(seqTime) / parTime : 0.0;
    }
    double efficiency() const
    {
        return nprocs ? speedup() / nprocs : 0.0;
    }
};

/**
 * Measure speedup of factory() on `cfg` against the same program on a
 * 1-processor machine with otherwise identical parameters
 * (cfg.baseline()).
 *
 * `seq_cache` (optional) memoizes sequential times across calls keyed
 * by a caller-chosen string (e.g. "fft-2^20"); the cache is thread-safe
 * and single-flight, so concurrent callers sharing a key simulate the
 * baseline exactly once.
 */
Measurement measure(const sim::MachineConfig& cfg,
                    const AppFactory& factory,
                    SeqBaselineCache* seq_cache = nullptr,
                    const std::string& seq_key = "",
                    const MachineHook& pre_run = {});

/// The paper's "scaling well" threshold: 60% parallel efficiency.
inline constexpr double kGoodEfficiency = 0.60;

} // namespace ccnuma::core

#endif // CCNUMA_CORE_STUDY_HH
