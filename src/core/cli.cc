#include "core/cli.hh"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "sim/config.hh"

namespace ccnuma::core::cli {

namespace {

/// Returns the value part if `arg` is "--name=value", else nullptr.
const char*
flagValue(const char* arg, const char* name)
{
    const std::size_t n = std::strlen(name);
    if (std::strncmp(arg, "--", 2) != 0 ||
        std::strncmp(arg + 2, name, n) != 0 || arg[2 + n] != '=')
        return nullptr;
    return arg + 2 + n + 1;
}

} // namespace

std::uint64_t
Options::positionalOr(std::size_t i, std::uint64_t fallback) const
{
    if (i >= positional.size())
        return fallback;
    std::uint64_t v = 0;
    return parseU64(positional[i], v) ? v : fallback;
}

bool
Options::takeFlag(const std::string& name, std::string& value)
{
    for (auto it = unknown.begin(); it != unknown.end(); ++it) {
        if (const char* v = flagValue(it->c_str(), name.c_str())) {
            value = v;
            unknown.erase(it);
            return true;
        }
    }
    return false;
}

bool
Options::takeSwitch(const std::string& name)
{
    const std::string flag = "--" + name;
    for (auto it = unknown.begin(); it != unknown.end(); ++it) {
        if (*it == flag) {
            unknown.erase(it);
            return true;
        }
    }
    return false;
}

bool
parseU64(const std::string& text, std::uint64_t& out)
{
    if (text.empty() || text[0] == '-' || text[0] == '+')
        return false;
    errno = 0;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (errno == ERANGE || end != text.c_str() + text.size())
        return false;
    out = v;
    return true;
}

bool
parseU64List(const std::string& text, std::vector<std::uint64_t>& out)
{
    if (text.empty())
        return false;
    std::vector<std::uint64_t> vals;
    std::size_t begin = 0;
    while (begin <= text.size()) {
        std::size_t comma = text.find(',', begin);
        if (comma == std::string::npos)
            comma = text.size();
        std::uint64_t v = 0;
        if (!parseU64(text.substr(begin, comma - begin), v))
            return false;
        vals.push_back(v);
        begin = comma + 1;
    }
    out = std::move(vals);
    return true;
}

Options
parse(int argc, char** argv)
{
    Options opt;

    // A malformed numeric value keeps the default and is reported:
    // silently treating "--jobs=abc" as 0 would silently change the
    // thread count.
    auto setU64 = [&opt](const std::string& flag, const char* text,
                         std::uint64_t& field) {
        std::uint64_t v = 0;
        if (parseU64(text, v))
            field = v;
        else
            opt.malformed.push_back(flag + "=" + text);
    };
    auto setInt = [&opt](const std::string& flag, const char* text,
                         int& field) {
        std::uint64_t v = 0;
        if (parseU64(text, v) && v <= 1u << 20)
            field = static_cast<int>(v);
        else
            opt.malformed.push_back(flag + "=" + text);
    };

    // parse() runs once at startup, before any StudyRunner or scout
    // thread exists, so the non-reentrant getenv is race-free here.
    // NOLINTBEGIN(concurrency-mt-unsafe)
    if (const char* env = std::getenv("CCNUMA_TRACE"))
        opt.traceFile = env;
    if (const char* env = std::getenv("CCNUMA_JSON"))
        opt.jsonFile = env;
    if (const char* env = std::getenv("CCNUMA_JOBS"))
        setInt("CCNUMA_JOBS", env, opt.jobs);
    if (const char* env = std::getenv("CCNUMA_SIM_JOBS"))
        setInt("CCNUMA_SIM_JOBS", env, opt.simJobs);
    if (const char* env = std::getenv("CCNUMA_SEED"))
        setU64("CCNUMA_SEED", env, opt.seed);
    if (const char* env = std::getenv("CCNUMA_EPOCH"))
        setU64("CCNUMA_EPOCH", env, opt.epochCycles);
    if (const char* env = std::getenv("CCNUMA_PROTOCOL"))
        opt.protocol = env;
    if (const char* env = std::getenv("CCNUMA_DIR"))
        opt.dirFormat = env;
    // NOLINTEND(concurrency-mt-unsafe)

    for (int i = 1; i < argc; ++i) {
        const char* arg = argv[i];
        if (const char* trace = flagValue(arg, "trace"))
            opt.traceFile = trace;
        else if (const char* json = flagValue(arg, "json"))
            opt.jsonFile = json;
        else if (const char* jobs = flagValue(arg, "jobs"))
            setInt("--jobs", jobs, opt.jobs);
        else if (const char* sj = flagValue(arg, "sim-jobs"))
            setInt("--sim-jobs", sj, opt.simJobs);
        else if (const char* seed = flagValue(arg, "seed"))
            setU64("--seed", seed, opt.seed);
        else if (const char* epoch = flagValue(arg, "epoch-cycles"))
            setU64("--epoch-cycles", epoch, opt.epochCycles);
        else if (const char* proto = flagValue(arg, "protocol"))
            opt.protocol = proto;
        else if (const char* dir = flagValue(arg, "dir-format"))
            opt.dirFormat = dir;
        else if (std::strncmp(arg, "--", 2) == 0)
            opt.unknown.emplace_back(arg);
        else
            opt.positional.emplace_back(arg);
    }
    return opt;
}

bool
applyMachine(Options& opt, sim::MachineConfig& cfg)
{
    bool ok = true;
    cfg.simJobs = opt.simJobs;
    if (!opt.protocol.empty() && !cfg.protocol.parse(opt.protocol)) {
        opt.malformed.push_back("--protocol=" + opt.protocol +
                                " (want mesi|moesi|dragon)");
        ok = false;
    }
    if (!opt.dirFormat.empty() && !cfg.dirFormat.parse(opt.dirFormat)) {
        opt.malformed.push_back("--dir-format=" + opt.dirFormat +
                                " (want fullbv|coarse:K|ptr:N)");
        ok = false;
    }
    return ok;
}

bool
warnUnknown(const Options& opt)
{
    for (const std::string& f : opt.malformed)
        std::fprintf(stderr,
                     "warning: malformed value in %s "
                     "(keeping the default)\n",
                     f.c_str());
    for (const std::string& f : opt.unknown)
        std::fprintf(stderr,
                     "warning: unknown flag %s (known: --trace=FILE "
                     "--json=FILE --jobs=N --sim-jobs=N --seed=N "
                     "--epoch-cycles=N --protocol=P "
                     "--dir-format=F)\n",
                     f.c_str());
    return opt.unknown.empty() && opt.malformed.empty();
}

} // namespace ccnuma::core::cli
