#include "core/cli.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace ccnuma::core::cli {

namespace {

/// Returns the value part if `arg` is "--name=value", else nullptr.
const char*
flagValue(const char* arg, const char* name)
{
    const std::size_t n = std::strlen(name);
    if (std::strncmp(arg, "--", 2) != 0 ||
        std::strncmp(arg + 2, name, n) != 0 || arg[2 + n] != '=')
        return nullptr;
    return arg + 2 + n + 1;
}

} // namespace

std::uint64_t
Options::positionalOr(std::size_t i, std::uint64_t fallback) const
{
    if (i >= positional.size())
        return fallback;
    return std::strtoull(positional[i].c_str(), nullptr, 10);
}

Options
parse(int argc, char** argv)
{
    Options opt;
    if (const char* env = std::getenv("CCNUMA_TRACE"))
        opt.traceFile = env;
    if (const char* env = std::getenv("CCNUMA_JSON"))
        opt.jsonFile = env;
    if (const char* env = std::getenv("CCNUMA_JOBS"))
        opt.jobs = std::atoi(env);

    for (int i = 1; i < argc; ++i) {
        const char* arg = argv[i];
        if (const char* v = flagValue(arg, "trace"))
            opt.traceFile = v;
        else if (const char* v = flagValue(arg, "json"))
            opt.jsonFile = v;
        else if (const char* v = flagValue(arg, "jobs"))
            opt.jobs = std::atoi(v);
        else if (std::strncmp(arg, "--", 2) == 0)
            opt.unknown.emplace_back(arg);
        else
            opt.positional.emplace_back(arg);
    }
    return opt;
}

bool
warnUnknown(const Options& opt)
{
    for (const std::string& f : opt.unknown)
        std::fprintf(stderr,
                     "warning: unknown flag %s (known: --trace=FILE "
                     "--json=FILE --jobs=N)\n",
                     f.c_str());
    return opt.unknown.empty();
}

} // namespace ccnuma::core::cli
