#include "core/metrics.hh"

#include <fstream>
#include <sstream>

#include "obs/json.hh"
#include "sim/config.hh"

namespace ccnuma::core {

MetricsSink::Entry&
MetricsSink::entry(const std::string& label)
{
    for (Entry& e : entries_)
        if (e.label == label)
            return e;
    entries_.push_back(Entry{});
    entries_.back().label = label;
    return entries_.back();
}

void
MetricsSink::setMachine(const sim::MachineConfig& cfg)
{
    machineProtocol_ = cfg.protocol.name();
    machineDirFormat_ = cfg.dirFormat.name();
}

void
MetricsSink::add(const std::string& label, const sim::RunResult& r)
{
    if (!enabled())
        return;
    Entry& e = entry(label);
    e.hasRun = true;
    e.time = r.time;
    e.breakdown = r.breakdown();
    e.totals = r.totals();
}

void
MetricsSink::addScalar(const std::string& label, const std::string& key,
                       double v)
{
    if (!enabled())
        return;
    // Last write wins: duplicate keys inside one JSON object silently
    // shadow data in most readers, so never emit them.
    Entry& e = entry(label);
    for (auto& [k, old] : e.scalars) {
        if (k == key) {
            old = v;
            return;
        }
    }
    e.scalars.emplace_back(key, v);
}

void
MetricsSink::addCount(const std::string& label, const std::string& key,
                      std::uint64_t v)
{
    if (!enabled())
        return;
    Entry& e = entry(label);
    for (auto& [k, old] : e.counts) {
        if (k == key) {
            old = v;
            return;
        }
    }
    e.counts.emplace_back(key, v);
}

void
MetricsSink::addText(const std::string& label, const std::string& key,
                     const std::string& v)
{
    if (!enabled())
        return;
    Entry& e = entry(label);
    for (auto& [k, old] : e.texts) {
        if (k == key) {
            old = v;
            return;
        }
    }
    e.texts.emplace_back(key, v);
}

bool
MetricsSink::write() const
{
    if (path_.empty())
        return true;
    std::ofstream f(path_);
    if (!f)
        return false;
    emit(f, 2);
    f << '\n';
    return static_cast<bool>(f);
}

std::string
MetricsSink::str(int indent) const
{
    std::ostringstream out;
    emit(out, indent);
    return std::move(out).str();
}

void
MetricsSink::emit(std::ostream& f, int indent) const
{
    obs::JsonWriter w(f, indent);
    w.beginObject();
    w.field("generator", "ccnuma-scale metrics sink");
    if (!machineProtocol_.empty()) {
        w.beginObject("machine");
        w.field("protocol", machineProtocol_);
        w.field("dirFormat", machineDirFormat_);
        w.endObject();
    }
    w.beginArray("runs");
    for (const Entry& e : entries_) {
        w.beginObject();
        w.field("label", e.label);
        for (const auto& [k, v] : e.texts)
            w.field(k, v);
        for (const auto& [k, v] : e.counts)
            w.field(k, v);
        for (const auto& [k, v] : e.scalars)
            w.field(k, v);
        if (e.hasRun) {
            w.field("runCycles", static_cast<std::uint64_t>(e.time));
            w.beginObject("breakdown");
            w.field("busy", e.breakdown.busy);
            w.field("mem", e.breakdown.mem);
            w.field("sync", e.breakdown.sync);
            w.endObject();
            w.beginObject("totals");
            const sim::ProcCounters& c = e.totals;
            w.field("loads", c.loads);
            w.field("stores", c.stores);
            w.field("l2Hits", c.l2Hits);
            w.field("missLocal", c.missLocal);
            w.field("missRemoteClean", c.missRemoteClean);
            w.field("missRemoteDirty", c.missRemoteDirty);
            w.field("upgrades", c.upgrades);
            w.field("invalsSent", c.invalsSent);
            w.field("invalsSpurious", c.invalsSpurious);
            w.field("updatesSent", c.updatesSent);
            w.field("writebacks", c.writebacks);
            w.field("prefetchesIssued", c.prefetchesIssued);
            w.field("prefetchesUseful", c.prefetchesUseful);
            w.field("pageMigrations", c.pageMigrations);
            w.field("lockAcquires", c.lockAcquires);
            w.field("lockContended", c.lockContended);
            w.field("barriersPassed", c.barriersPassed);
            w.endObject();
        }
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

} // namespace ccnuma::core
