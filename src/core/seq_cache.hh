/**
 * @file
 * Thread-safe, single-flight memoization of uniprocessor baseline
 * times. Replaces the raw `std::map<std::string, Cycles>*` out-param
 * that measure() used to take: callers share one cache object and the
 * cache itself guarantees that each key's baseline is simulated exactly
 * once, even when many study workers request it concurrently.
 */

#ifndef CCNUMA_CORE_SEQ_CACHE_HH
#define CCNUMA_CORE_SEQ_CACHE_HH

#include <condition_variable>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "sim/types.hh"

namespace ccnuma::core {

/**
 * Memoizes `Cycles` values by string key with single-flight semantics:
 * when two threads ask for the same missing key, one runs `compute`
 * and the other blocks until the value is ready — the computation is
 * never duplicated. If the leader's compute throws, one waiter is
 * promoted to leader and retries; the exception propagates only to the
 * thread whose compute raised it.
 *
 * All methods are safe to call from any thread.
 */
class SeqBaselineCache
{
  public:
    using Compute = std::function<sim::Cycles()>;

    /**
     * Return the cached value for `key`, computing (and caching) it via
     * `compute` on a miss. An empty key disables caching: `compute` is
     * invoked unconditionally and nothing is stored.
     */
    sim::Cycles getOrCompute(const std::string& key,
                             const Compute& compute);

    /// Non-blocking lookup; nullopt if absent or still in flight.
    std::optional<sim::Cycles> lookup(const std::string& key) const;

    /// Pre-seed a value (e.g. from a previous study's JSON).
    void insert(const std::string& key, sim::Cycles value);

    /// Number of completed (ready) entries.
    std::size_t size() const;

    /// How many getOrCompute calls were answered from the cache or by
    /// waiting on an in-flight computation (i.e. baselines not re-run).
    std::uint64_t hits() const;

  private:
    struct Slot {
        sim::Cycles value = 0;
        bool ready = false;
        bool inFlight = false;
    };

    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::map<std::string, Slot> slots_;
    std::uint64_t hits_ = 0;
};

} // namespace ccnuma::core

#endif // CCNUMA_CORE_SEQ_CACHE_HH
