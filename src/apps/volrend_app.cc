#include "apps/volrend_app.hh"

#include <algorithm>

#include "kernels/render.hh"

namespace ccnuma::apps {

using namespace sim;

void
VolrendApp::setup(Machine& m)
{
    nprocs_ = m.config().numProcs;
    const int dim = cfg_.volDim;

    // Host: real volume, per-pixel sample counts with early ray
    // termination (the load-imbalance profile).
    const kernels::Volume vol(dim);
    samples_.assign(static_cast<std::size_t>(dim) * dim, 0);
    for (int y = 0; y < dim; ++y)
        for (int x = 0; x < dim; ++x) {
            float opacity = 0.0f;
            std::uint32_t cnt = 0;
            for (int z = 0; z < dim; ++z) {
                const float a = vol.density(x, y, z) / 255.0f * 0.25f;
                if (a > 0.0f) {
                    opacity += (1.0f - opacity) * a;
                    ++cnt;
                } // transparent voxels are skipped by the octree
                if (opacity > 0.95f)
                    break;
            }
            samples_[static_cast<std::size_t>(y) * dim + x] = cnt;
        }

    // Simulated volume: one byte per voxel, z-major slabs distributed
    // across processors.
    const std::uint64_t vol_bytes =
        static_cast<std::uint64_t>(dim) * dim * dim;
    volume_ = m.alloc(vol_bytes);
    m.placeAcrossProcs(volume_, vol_bytes);
    image_ = m.alloc(static_cast<std::uint64_t>(dim) * dim * 4);
    m.placeAcrossProcs(image_,
                       static_cast<std::uint64_t>(dim) * dim * 4);
    bar_ = m.barrierCreate();

    // Image-block tasks. Original: round-robin interleave. Balanced
    // variant: greedy assignment by measured block cost (fewer steals).
    queues_ = std::make_unique<TaskQueues>(m, nprocs_);
    const int bps = dim / kBlock;
    if (!cfg_.balancedInit) {
        for (int t = 0; t < bps * bps; ++t)
            queues_->push(t % nprocs_, t);
    } else {
        std::vector<std::uint64_t> load(nprocs_, 0);
        std::vector<std::pair<std::uint64_t, int>> blocks;
        for (int t = 0; t < bps * bps; ++t) {
            std::uint64_t cost = 0;
            const int bx = t % bps, by = t / bps;
            for (int y = by * kBlock; y < (by + 1) * kBlock; ++y)
                for (int x = bx * kBlock; x < (bx + 1) * kBlock; ++x)
                    cost += samples_[static_cast<std::size_t>(y) * dim +
                                     x];
            blocks.emplace_back(cost, t);
        }
        std::sort(blocks.rbegin(), blocks.rend());
        for (const auto& [cost, t] : blocks) {
            const int p = static_cast<int>(
                std::min_element(load.begin(), load.end()) -
                load.begin());
            queues_->push(p, t);
            load[p] += cost;
        }
    }
}

Machine::Program
VolrendApp::program()
{
    const VolrendConfig cfg = cfg_;
    const Addr volume = volume_, image = image_;
    const BarrierId bar = bar_;
    TaskQueues* queues = queues_.get();
    const auto* samples = &samples_;

    return [=](Cpu& cpu) -> Task {
        const int dim = cfg.volDim;
        const int bps = dim / kBlock;

        for (;;) {
            int task;
            CCNUMA_RUN_NESTED(cpu, queues->dequeue(cpu, task));
            if (task < 0)
                break;
            const int bx = task % bps, by = task / bps;
            for (int y = by * kBlock; y < (by + 1) * kBlock; ++y) {
                for (int x = bx * kBlock; x < (bx + 1) * kBlock;
                     ++x) {
                    const std::uint32_t cnt =
                        (*samples)[static_cast<std::size_t>(y) * dim +
                                   x];
                    // A ray at (x, y) marches in z: voxel (x,y,z) is at
                    // offset z*dim^2 + y*dim + x -- every 4th sample a
                    // new line (tri-linear footprints share lines).
                    for (std::uint32_t s = 0; s < cnt; s += 4) {
                        cpu.read(volume +
                                 static_cast<Addr>(s) * dim * dim +
                                 static_cast<Addr>(y) * dim + x);
                        cpu.busy(4 * cfg.cyclesPerSample);
                        co_await cpu.checkpoint();
                    }
                    cpu.write(image +
                              static_cast<Addr>(y * dim + x) * 4);
                }
            }
            co_await cpu.checkpoint();
        }
        co_await cpu.barrier(bar);
        co_return;
    };
}

} // namespace ccnuma::apps
