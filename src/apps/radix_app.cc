#include "apps/radix_app.hh"

#include <numeric>

#include "kernels/sort.hh"

namespace ccnuma::apps {

using namespace sim;

namespace {
constexpr std::uint64_t kKeysPerLine = 32; // 4-byte keys, 128 B lines
} // namespace

void
RadixApp::setup(Machine& m)
{
    nprocs_ = m.config().numProcs;
    const std::uint64_t bytes = cfg_.numKeys * 4;
    keysA_ = m.alloc(bytes);
    keysB_ = m.alloc(bytes);
    m.placeAcrossProcs(keysA_, bytes);
    m.placeAcrossProcs(keysB_, bytes);
    // Per-proc histogram arena: one page per processor.
    hists_ = m.alloc(static_cast<std::uint64_t>(nprocs_) *
                     m.config().pageBytes);
    m.placeAcrossProcs(hists_,
                       static_cast<std::uint64_t>(nprocs_) *
                           m.config().pageBytes);
    bar_ = m.barrierCreate();

    // Host-side: run the real radix passes to obtain per-proc,
    // per-digit counts for each pass (drives permutation addressing and
    // captures real load imbalance).
    auto keys = kernels::randomKeys(cfg_.numKeys, cfg_.seed);
    counts_.resize(cfg_.passes);
    const int radix = 1 << cfg_.radixBits;
    std::vector<std::uint32_t> next;
    for (int pass = 0; pass < cfg_.passes; ++pass) {
        counts_[pass].assign(nprocs_,
                             std::vector<std::uint32_t>(radix, 0));
        for (int p = 0; p < nprocs_; ++p) {
            const auto [b, e] = blockRange(cfg_.numKeys, nprocs_, p);
            for (std::uint64_t i = b; i < e; ++i)
                ++counts_[pass][p]
                         [(keys[i] >> (pass * cfg_.radixBits)) &
                          (radix - 1)];
        }
        kernels::radixPass(keys, next, pass * cfg_.radixBits,
                           cfg_.radixBits);
        keys.swap(next);
    }
}

Machine::Program
RadixApp::program()
{
    const RadixConfig cfg = cfg_;
    const Addr keysA = keysA_, keysB = keysB_, hists = hists_;
    const BarrierId bar = bar_;
    const auto* counts = &counts_;
    const std::uint32_t page = 16384;

    return [cfg, keysA, keysB, hists, bar, counts, page](
               Cpu& cpu) -> Task {
        const int P = cpu.nprocs();
        const int p = cpu.id();
        const int radix = 1 << cfg.radixBits;
        const auto [key_b, key_e] = blockRange(cfg.numKeys, P, p);
        const std::uint64_t hist_lines =
            (static_cast<std::uint64_t>(radix) * 8 + 127) / 128;
        auto hist_line = [&](int proc, std::uint64_t l) {
            return hists + static_cast<Addr>(proc) * page + l * 128;
        };

        Addr src = keysA, dst = keysB;
        for (int pass = 0; pass < cfg.passes; ++pass) {
            // --- Phase 1: local histogram over our key block. ---
            for (Addr a = src + key_b * 4; a < src + key_e * 4;
                 a += 128) {
                cpu.read(a);
                cpu.busy(kKeysPerLine * cfg.cyclesPerKey);
                co_await cpu.checkpoint();
            }
            for (std::uint64_t l = 0; l < hist_lines; ++l)
                cpu.write(hist_line(p, l));
            co_await cpu.barrier(bar);

            // --- Phase 2: parallel prefix over histograms (tree). ---
            // Each tree level is double-buffered within the histogram
            // line: level k reads the half-word the previous level (or
            // phase 1, for k = 0) wrote -- ordered by the per-level
            // barrier -- and writes the other half-word, so partner
            // reads never touch the bytes their owner is updating in
            // the same level. Line-granular traffic is unchanged.
            int level = 0;
            for (int stride = 1; stride < P; stride *= 2, ++level) {
                const int partner = p ^ stride;
                const Addr rd = static_cast<Addr>(4 * (level % 2));
                const Addr wr = static_cast<Addr>(4 * ((level + 1) % 2));
                if (partner < P) {
                    for (std::uint64_t l = 0; l < hist_lines; ++l) {
                        if (cfg.prefetchHist && l + 1 < hist_lines)
                            cpu.prefetch(hist_line(partner, l + 1));
                        cpu.read(hist_line(partner, l) + rd);
                    }
                    cpu.busy(radix * 2);
                    for (std::uint64_t l = 0; l < hist_lines; ++l)
                        cpu.write(hist_line(p, l) + wr);
                }
                co_await cpu.barrier(bar);
            }

            // --- Phase 3: permutation. Keys stream from our block and
            // scatter into 2^bits open destination chunks; a simulated
            // write is issued each time a chunk cursor enters a new
            // line (write-allocate + later writeback traffic). ---
            const auto& my_counts = (*counts)[pass][p];
            // Global start offset of our chunk for each digit.
            std::vector<std::uint64_t> cursor(radix, 0);
            {
                std::uint64_t digit_base = 0;
                for (int d = 0; d < radix; ++d) {
                    std::uint64_t mine = digit_base;
                    for (int q = 0; q < p; ++q)
                        mine += (*counts)[pass][q][d];
                    cursor[d] = mine;
                    for (int q = 0; q < P; ++q)
                        digit_base += (*counts)[pass][q][d];
                }
            }
            // Walk digits round-robin to interleave chunk streams the
            // way in-order key processing does (keys of different
            // digits alternate), issuing one write per line crossed.
            std::vector<std::uint32_t> remaining = my_counts;
            std::uint64_t src_cursor = key_b;
            std::uint64_t src_pending = 0;
            bool any = true;
            while (any) {
                any = false;
                for (int d = 0; d < radix; ++d) {
                    if (remaining[d] == 0)
                        continue;
                    any = true;
                    const std::uint32_t take =
                        std::min<std::uint32_t>(remaining[d],
                                                kKeysPerLine);
                    cpu.busy(take * cfg.cyclesPerKey);
                    cpu.write(dst + cursor[d] * 4);
                    // Source keys stream in sequentially.
                    src_pending += take;
                    while (src_pending >= kKeysPerLine &&
                           src_cursor < key_e) {
                        cpu.read(src + src_cursor * 4);
                        src_cursor += kKeysPerLine;
                        src_pending -= kKeysPerLine;
                    }
                    cursor[d] += take;
                    remaining[d] -= take;
                }
                co_await cpu.checkpoint();
            }
            co_await cpu.barrier(bar);
            std::swap(src, dst);
        }
        co_return;
    };
}

} // namespace ccnuma::apps
