#include "apps/water_app.hh"

#include <algorithm>
#include <cmath>

#include "kernels/water.hh"
#include "sim/rng.hh"

namespace ccnuma::apps {

using namespace sim;

// ---------------------------------------------------------------------
// Water-Nsquared
// ---------------------------------------------------------------------

void
WaterNsqApp::setup(Machine& m)
{
    // Two lines per molecule (3-atom positions plus higher-order
    // derivatives; the real record is ~600 B); block-distributed.
    const std::uint64_t bytes = cfg_.numMols * 256;
    mols_ = m.alloc(bytes);
    m.placeAcrossProcs(mols_, bytes);
    // Per-proc private force scratch (reduction buffers).
    scratch_ = m.alloc(static_cast<std::uint64_t>(m.config().numProcs) *
                       128);
    m.placeAcrossProcs(
        scratch_, static_cast<std::uint64_t>(m.config().numProcs) * 128);
    bar_ = m.barrierCreate();
}

Machine::Program
WaterNsqApp::program()
{
    const WaterNsqConfig cfg = cfg_;
    const Addr mols = mols_, scratch = scratch_;
    const BarrierId bar = bar_;

    return [cfg, mols, scratch, bar](Cpu& cpu) -> Task {
        const int P = cpu.nprocs();
        const int p = cpu.id();
        const std::uint64_t n = cfg.numMols;
        const auto [mb, me] = blockRange(n, P, p);
        auto mol = [mols](std::uint64_t i) { return mols + i * 256; };
        auto mol2 = [mols](std::uint64_t i) {
            return mols + i * 256 + 128;
        };

        // Predictor phase: touch own molecules.
        for (std::uint64_t i = mb; i < me; ++i) {
            cpu.read(mol(i));
            cpu.busy(60);
            cpu.write(mol(i));
            if ((i - mb) % 32 == 31)
                co_await cpu.checkpoint();
        }
        co_await cpu.barrier(bar);

        // Force phase: each molecule interacts with the n/2 following
        // molecules; forces on partners accumulate into a private
        // buffer (reduction afterwards), as in SPLASH-2.
        if (!cfg.interchanged) {
            // Original loop order: i (local) outermost. The n/2
            // partner molecules are re-scanned per i.
            for (std::uint64_t i = mb; i < me; ++i) {
                for (std::uint64_t k = 1; k <= n / 2; ++k) {
                    const std::uint64_t j = (i + k) % n;
                    cpu.read(mol(j));
                    cpu.read(mol2(j));
                    cpu.busy(cfg.cyclesPerPair);
                    if (k % 8 == 0)
                        co_await cpu.checkpoint();
                }
                // Own force update: the force sub-field lives in the
                // second half of the first molecule line, disjoint from
                // the position bytes partners read concurrently.
                cpu.write(mol(i) + 64);
                co_await cpu.checkpoint();
            }
        } else {
            // Restructured: partner j outermost; fetch j once, reuse it
            // against every local molecule (high temporal locality on
            // remote data). Periodically re-touch local molecules,
            // which are few and cheap to miss on.
            const std::uint64_t local = me - mb;
            const std::uint64_t distinct =
                std::min<std::uint64_t>(n, n / 2 + local);
            for (std::uint64_t k = 1; k <= distinct; ++k) {
                const std::uint64_t j = (mb + local - 1 + k) % n;
                // Number of local molecules i with j in (i, i+n/2].
                std::uint64_t span = 0;
                for (std::uint64_t i = mb; i < me; ++i) {
                    const std::uint64_t fwd = (j + n - i) % n;
                    if (fwd >= 1 && fwd <= n / 2)
                        ++span;
                }
                if (span == 0)
                    continue;
                cpu.read(mol(j));
                cpu.read(mol2(j));
                cpu.busy(cfg.cyclesPerPair * span);
                if (k % 16 == 0) {
                    // Keep local molecules warm (they fit trivially).
                    cpu.read(mol(mb + (k / 16) % local));
                }
                co_await cpu.checkpoint();
            }
            for (std::uint64_t i = mb; i < me; ++i)
                cpu.write(mol(i) + 64); // force sub-field (see above)
        }
        co_await cpu.barrier(bar);

        // Reduction of partner-force partials: read other procs'
        // scratch lines, accumulate into own molecules.
        for (int q = 1; q < P; ++q) {
            cpu.read(scratch + static_cast<Addr>((p + q) % P) * 128);
            cpu.busy((me - mb) * 4);
            co_await cpu.checkpoint();
        }
        co_await cpu.barrier(bar);
        co_return;
    };
}

// ---------------------------------------------------------------------
// Water-Spatial
// ---------------------------------------------------------------------

void
WaterSpApp::setup(Machine& m)
{
    nprocs_ = m.config().numProcs;
    const std::uint64_t bytes = cfg_.numMols * 128;
    mols_ = m.alloc(bytes);
    bar_ = m.barrierCreate();

    // Host: real molecule positions, real cell occupancy. Uniform
    // random placement gives the Poisson per-cell occupancy variance
    // that drives the paper's communication/computation imbalance at
    // small problem sizes.
    const double box = 1.0;
    std::vector<kernels::Molecule> hmols(cfg_.numMols);
    {
        sim::Rng rng(cfg_.seed);
        for (auto& mol : hmols)
            mol.pos = kernels::Vec3{rng.uniform() * box,
                                    rng.uniform() * box,
                                    rng.uniform() * box};
    }
    // ~8 molecules per cell.
    dim_ = std::max(1, static_cast<int>(std::cbrt(
                            static_cast<double>(cfg_.numMols) / 8.0)));
    const kernels::CellList cl(hmols, box, box / dim_);
    dim_ = cl.cellsPerDim();
    const int ncells = dim_ * dim_ * dim_;
    cellMols_.resize(ncells);
    for (int c = 0; c < ncells; ++c)
        cellMols_[c] = cl.members(c);

    // Subdomain decomposition: split the cell cube into P near-cubic
    // subdomains via three nested block partitions (z, then y, then x).
    cellOwner_.assign(ncells, 0);
    int pz = static_cast<int>(std::cbrt(static_cast<double>(nprocs_)));
    while (nprocs_ % pz != 0)
        --pz;
    const int rest = nprocs_ / pz;
    int py = static_cast<int>(std::sqrt(static_cast<double>(rest)));
    while (rest % py != 0)
        --py;
    const int px = rest / py;
    for (int z = 0; z < dim_; ++z)
        for (int y = 0; y < dim_; ++y)
            for (int x = 0; x < dim_; ++x) {
                const int oz = std::min(z * pz / dim_, pz - 1);
                const int oy = std::min(y * py / dim_, py - 1);
                const int ox = std::min(x * px / dim_, px - 1);
                cellOwner_[(z * dim_ + y) * dim_ + x] =
                    (oz * py + oy) * px + ox;
            }

    // Molecules homed with their owning processor's node.
    for (int c = 0; c < ncells; ++c)
        for (const int mi : cellMols_[c])
            m.place(mols_ + static_cast<Addr>(mi) * 128, 128,
                    m.topology().nodeOfProcess(cellOwner_[c]));
}

Machine::Program
WaterSpApp::program()
{
    const WaterSpConfig cfg = cfg_;
    const Addr mols = mols_;
    const BarrierId bar = bar_;
    const int dim = dim_;
    const auto* cell_mols = &cellMols_;
    const auto* owner = &cellOwner_;

    return [cfg, mols, bar, dim, cell_mols, owner](Cpu& cpu) -> Task {
        const int p = cpu.id();
        const int ncells = dim * dim * dim;
        auto mol = [mols](int i) {
            return mols + static_cast<Addr>(i) * 128;
        };
        auto neighbors = [dim](int c, int k) {
            // k in [0,27): offset cube around c, wrapped.
            const int x = c % dim, y = (c / dim) % dim,
                      z = c / (dim * dim);
            const int dx = k % 3 - 1, dy = (k / 3) % 3 - 1,
                      dz = k / 9 - 1;
            const int nx = (x + dx + dim) % dim;
            const int ny = (y + dy + dim) % dim;
            const int nz = (z + dz + dim) % dim;
            return (nz * dim + ny) * dim + nx;
        };

        // Intra-molecular + predictor phase on own molecules.
        for (int c = 0; c < ncells; ++c) {
            if ((*owner)[c] != p)
                continue;
            for (const int mi : (*cell_mols)[c]) {
                cpu.read(mol(mi));
                cpu.busy(80);
                cpu.write(mol(mi));
            }
            co_await cpu.checkpoint();
        }
        co_await cpu.barrier(bar);

        // Inter-molecular forces: own cells x 27 neighbor cells.
        for (int c = 0; c < ncells; ++c) {
            if ((*owner)[c] != p)
                continue;
            const auto& mine = (*cell_mols)[c];
            if (mine.empty())
                continue;
            for (int k = 0; k < 27; ++k) {
                const int nc = neighbors(c, k);
                const auto& theirs = (*cell_mols)[nc];
                for (const int mj : theirs) {
                    cpu.read(mol(mj));
                    cpu.busy(cfg.cyclesPerPair *
                             static_cast<Cycles>(mine.size()) / 2);
                }
                co_await cpu.checkpoint();
            }
            // Force accumulation targets the force sub-field (second
            // half of the molecule line); neighbor owners read only the
            // position bytes at offset 0, so the concurrent accesses
            // touch disjoint bytes of the same line.
            for (const int mi : mine)
                cpu.write(mol(mi) + 64);
            co_await cpu.checkpoint();
        }
        co_await cpu.barrier(bar);

        // Corrector phase.
        for (int c = 0; c < ncells; ++c) {
            if ((*owner)[c] != p)
                continue;
            for (const int mi : (*cell_mols)[c]) {
                cpu.read(mol(mi));
                cpu.busy(60);
                cpu.write(mol(mi));
            }
            co_await cpu.checkpoint();
        }
        co_await cpu.barrier(bar);
        co_return;
    };
}

} // namespace ccnuma::apps
