/**
 * @file
 * Volrend skeleton: ray casting through a shared volume with early ray
 * termination, image-block task queues and stealing. The paper's
 * observation: task stealing is effective on the Origin, so the SVM
 * restructuring (a better-balanced initial assignment that avoids
 * stealing) buys only a few percent; Volrend's scaling problem is that
 * available problem sizes are simply too small.
 */

#ifndef CCNUMA_APPS_VOLREND_APP_HH
#define CCNUMA_APPS_VOLREND_APP_HH

#include <memory>
#include <vector>

#include "apps/app.hh"
#include "apps/taskqueue.hh"

namespace ccnuma::apps {

struct VolrendConfig {
    int volDim = 256;            ///< Volume side (basic: 256^3 head).
    bool balancedInit = false;   ///< SVM restructuring: better initial
                                 ///< assignment, fewer steals.
    sim::Cycles cyclesPerSample = 170;
    std::uint64_t seed = 11;
};

class VolrendApp : public App
{
  public:
    explicit VolrendApp(const VolrendConfig& cfg) : cfg_(cfg) {}

    std::string name() const override
    {
        return cfg_.balancedInit ? "volrend-balanced" : "volrend";
    }
    void setup(sim::Machine& m) override;
    sim::Machine::Program program() override;

  private:
    VolrendConfig cfg_;
    int nprocs_ = 0;
    std::vector<std::uint32_t> samples_; ///< Per-pixel sample counts.
    std::unique_ptr<TaskQueues> queues_;
    sim::Addr volume_ = 0, image_ = 0;
    sim::BarrierId bar_;

    static constexpr int kBlock = 4; ///< Image block side in pixels.
};

} // namespace ccnuma::apps

#endif // CCNUMA_APPS_VOLREND_APP_HH
