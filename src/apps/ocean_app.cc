#include "apps/ocean_app.hh"

#include <cmath>

namespace ccnuma::apps {

using namespace sim;

std::pair<int, int>
OceanApp::tileGeometry(int nprocs, bool rowwise)
{
    if (rowwise)
        return {nprocs, 1};
    int pr = static_cast<int>(std::sqrt(static_cast<double>(nprocs)));
    while (nprocs % pr != 0)
        --pr;
    return {pr, nprocs / pr};
}

void
OceanApp::setup(Machine& m)
{
    nprocs_ = m.config().numProcs;
    std::tie(pr_, pc_) = tileGeometry(nprocs_, cfg_.rowwise);
    arena_.resize(nprocs_);
    h_.resize(nprocs_);
    w_.resize(nprocs_);
    for (int p = 0; p < nprocs_; ++p) {
        const int ti = p / pc_, tj = p % pc_;
        const auto [rb, re] = blockRange(cfg_.n, pr_, ti);
        const auto [cb, ce] = blockRange(cfg_.n, pc_, tj);
        h_[p] = re - rb;
        w_[p] = ce - cb;
        const std::uint64_t bytes =
            kGrids * (h_[p] + 2) * (w_[p] + 2) * 8;
        arena_[p] = m.alloc(bytes);
        m.place(arena_[p], bytes, m.topology().nodeOfProcess(p));
    }
    bar_ = m.barrierCreate();
}

Machine::Program
OceanApp::program()
{
    const OceanConfig cfg = cfg_;
    const int pr = pr_, pc = pc_;
    const auto arena = arena_; // copies for capture
    const auto h = h_, w = w_;
    const BarrierId bar = bar_;

    return [cfg, pr, pc, arena, h, w, bar](Cpu& cpu) -> Task {
        const int p = cpu.id();
        const int ti = p / pc, tj = p % pc;
        const std::uint64_t myh = h[p], myw = w[p];
        // Line address of (grid g, row i, col j) in proc q's block;
        // doubles are 8 bytes, 16 per line.
        auto cell = [&](int q, int g, std::uint64_t i, std::uint64_t j) {
            return arena[q] +
                   (static_cast<Addr>(g) * (h[q] + 2) * (w[q] + 2) +
                    i * (w[q] + 2) + j) *
                       8;
        };
        const int north = ti > 0 ? (ti - 1) * pc + tj : -1;
        const int south = ti + 1 < pr ? (ti + 1) * pc + tj : -1;
        const int west = tj > 0 ? ti * pc + tj - 1 : -1;
        const int east = tj + 1 < pc ? ti * pc + tj + 1 : -1;

        for (int it = 0; it < cfg.iterations; ++it) {
            for (int color = 0; color < 2; ++color) {
                // Red-black byte discipline within each 8-byte point:
                // the current color's sweep writes its own half-word
                // (offset 4*color) while boundary reads fetch the
                // OTHER color's half-word, written last phase and
                // already ordered by the inter-color barrier. Same
                // lines either way -- identical protocol traffic.
                const Addr wr = static_cast<Addr>(4 * color);
                const Addr rd = static_cast<Addr>(4 * (1 - color));
                // Fetch boundary rows from north/south neighbors:
                // contiguous lines along their edge rows.
                if (north >= 0)
                    for (std::uint64_t j = 1; j <= myw; j += 16)
                        cpu.read(cell(north, 0, h[north], j) + rd);
                if (south >= 0)
                    for (std::uint64_t j = 1; j <= myw; j += 16)
                        cpu.read(cell(south, 0, 1, j) + rd);
                co_await cpu.checkpoint();
                // East/west boundary columns: one line per row
                // (fragmentation -- only 8 useful bytes per line).
                if (west >= 0)
                    for (std::uint64_t i = 1; i <= myh; ++i) {
                        cpu.read(cell(west, 0, i, w[west]) + rd);
                        if (i % 32 == 0)
                            co_await cpu.checkpoint();
                    }
                if (east >= 0)
                    for (std::uint64_t i = 1; i <= myh; ++i) {
                        cpu.read(cell(east, 0, i, 1) + rd);
                        if (i % 32 == 0)
                            co_await cpu.checkpoint();
                    }
                co_await cpu.checkpoint();
                // Interior sweep over our own block (half the points
                // per color): row-wise line reads + writes + compute.
                for (std::uint64_t i = 1; i <= myh; ++i) {
                    for (std::uint64_t j = 1; j <= myw; j += 16) {
                        cpu.read(cell(p, 0, i, j));
                        cpu.read(cell(p, 1, i, j)); // rhs grid
                        cpu.busy(8 * cfg.cyclesPerPoint);
                        cpu.write(cell(p, 0, i, j) + wr);
                    }
                    co_await cpu.checkpoint();
                }
                co_await cpu.barrier(bar);
            }
        }
        co_return;
    };
}

} // namespace ccnuma::apps
