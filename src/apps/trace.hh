/**
 * @file
 * Access-trace record/replay: a portable text format for complete
 * simulation inputs, a recorder that captures one from any App, and a
 * TraceReplayApp that runs one as a first-class application.
 *
 * A trace is a full, replayable description of a run: the ordered
 * machine-building calls (arena allocations, barrier/lock creation,
 * explicit page placement) plus each simulated processor's operation
 * stream over the sim::OpKind alphabet. The serial engine is
 * deterministic in (MachineConfig, building calls, op streams), so
 * replaying a trace recorded from an app reproduces that app's run
 * bit-for-bit — miss/invalidation counters, cycle times, everything.
 * That exactness is test-enforced (tests/test_trace_replay.cc) and is
 * what lets `ccnuma_serve` accept outside workloads without trusting
 * them: an uploaded trace runs through the same engine, oracle-checked
 * machinery and metrics pipeline as the built-in applications.
 *
 * Format (`ccnuma-trace v1`, line-oriented ASCII, decimal numbers):
 *
 *   ccnuma-trace v1
 *   app fft                  # optional provenance label (one token)
 *   procs 4                  # simulated processors (required, >= 1)
 *   alloc 131072             # setup events, in call order:
 *   barrier 4                #   barrierCreate(participants)
 *   lock                     #   lockCreate()
 *   place 1048576 131072 0   #   place(addr, bytes, node)
 *   placeacross 1048576 131072
 *   ops 0 3                  # then one block per processor, ascending:
 *   r 1048576                #   r/w addr       load/store
 *   b 100                    #   b cycles       busy
 *   B 0                      #   B/L/U idx      barrier/acquire/release
 *   ops 1 0                  #   pf/fo/m addr   prefetch/fetchOp/rmw
 *   ...                      #   y              checkpoint
 *   end
 *
 * Parsing is strict in the ccnuma::check::json spirit: unknown
 * directives, malformed numbers, wrong op counts, duplicate or
 * out-of-order `ops` blocks and a missing `end` are all errors with a
 * line number. Semantic validity of op arguments (barrier/lock
 * indices against the setup section) is deliberately checked at
 * replay time by the engine, not at parse time — the parse answers
 * "is this a trace", the simulation answers "does it run".
 */

#ifndef CCNUMA_APPS_TRACE_HH
#define CCNUMA_APPS_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "apps/app.hh"
#include "sim/oplog.hh"
#include "sim/stats.hh"

namespace ccnuma::apps {

/** One recorded operation of one simulated processor. */
struct TraceOp {
    sim::OpKind kind = sim::OpKind::Checkpoint;
    std::uint64_t arg = 0;

    bool operator==(const TraceOp&) const = default;
};

/** A complete recorded simulation input (see file comment). */
struct Trace {
    /** One machine-building call from App::setup(), in call order. */
    struct Setup {
        enum class Kind : std::uint8_t {
            Alloc,       ///< a = bytes
            Barrier,     ///< a = participants
            Lock,        ///< (no arguments)
            Place,       ///< a = addr, b = bytes, c = node
            PlaceAcross, ///< a = addr, b = bytes
        };
        Kind kind = Kind::Alloc;
        std::uint64_t a = 0;
        std::uint64_t b = 0;
        std::uint64_t c = 0;

        bool operator==(const Setup&) const = default;
    };

    std::string app;  ///< Provenance label; may be empty.
    int procs = 0;
    std::vector<Setup> setup;
    std::vector<std::vector<TraceOp>> ops; ///< Indexed by processor.

    /// Total operations across processors.
    std::uint64_t totalOps() const;
    /// Render the canonical `ccnuma-trace v1` text.
    std::string serialize() const;
    /// FNV-1a 64 over the canonical text — the identity used in the
    /// ccnuma_serve result-cache key, as 16 lowercase hex digits.
    std::string hashHex() const;
};

/** Outcome of parsing trace text: ok + trace, or an error. */
struct TraceParseResult {
    bool ok = false;
    std::string error; ///< "line N: message" when !ok.
    Trace trace;
};

/// Parse a complete `ccnuma-trace v1` document (strict; see file
/// comment).
TraceParseResult parseTrace(const std::string& text);

/** recordTrace result: the trace plus the recording run's metrics. */
struct RecordedTrace {
    Trace trace;
    sim::RunResult run; ///< The recording run (differential baseline).
};

/**
 * Run `app` serially on a machine configured by `cfg` with an operation
 * recorder attached, and return the captured trace together with the
 * recording run's own RunResult. Works for every app, including the
 * timing-variant ones (the recording bakes their dynamic decisions
 * into the streams). Mid-run page placement is not recordable and
 * throws; no registered app does it.
 */
RecordedTrace recordTrace(const sim::MachineConfig& cfg, App& app);

/**
 * Replays a Trace as an App: setup() re-issues the machine-building
 * calls, program() re-issues each processor's operation stream.
 *
 * Replayed on a machine with the recording's config, the run is
 * bit-identical to the recorded one. Replayed on a different machine
 * (another protocol, directory format, latencies...) it is a what-if
 * experiment over the same workload — the machine must only agree on
 * the processor count. Replay streams are timing-invariant by
 * construction, so traces may run under the parallel engine.
 */
class TraceReplayApp : public App
{
  public:
    explicit TraceReplayApp(Trace t);

    /// "trace:<app>" when the trace carries a provenance label,
    /// "trace:<hashHex>" otherwise.
    std::string name() const override;
    void setup(sim::Machine& m) override;
    sim::Machine::Program program() override;

    const Trace& trace() const { return t_; }

  private:
    Trace t_;
    std::string name_;
    std::vector<sim::BarrierId> barriers_;
    std::vector<sim::LockId> locks_;
};

} // namespace ccnuma::apps

#endif // CCNUMA_APPS_TRACE_HH
