/**
 * @file
 * Distributed task queues with stealing, shared by the graphics
 * applications (Raytrace, Volrend, Shear-Warp's original version).
 *
 * Host-side state is shared between the (single-threaded) simulated
 * processors; timing realism comes from the per-queue sim locks that
 * guard every dequeue/steal.
 */

#ifndef CCNUMA_APPS_TASKQUEUE_HH
#define CCNUMA_APPS_TASKQUEUE_HH

#include <memory>
#include <vector>

#include "sim/machine.hh"

namespace ccnuma::apps {

/** Per-processor task queues over integer task ids. */
class TaskQueues
{
  public:
    /// Create `nprocs` queues with their sim locks on `m`.
    TaskQueues(sim::Machine& m, int nprocs)
        : machine_(&m), queues_(nprocs)
    {
        locks_.reserve(nprocs);
        for (int p = 0; p < nprocs; ++p)
            locks_.push_back(m.lockCreate());
        steals_.assign(nprocs, 0);
    }

    /// Host-side push during setup (no timing).
    void push(int proc, int task) { queues_[proc].push_back(task); }

    sim::LockId lock(int proc) const { return locks_[proc]; }

    /// Pop from own queue (caller must hold lock(proc)).
    int
    popLocked(int proc)
    {
        auto& q = queues_[proc];
        if (q.empty())
            return -1;
        const int t = q.back();
        q.pop_back();
        return t;
    }

    /// Steal half of `victim`'s tasks into `thief`'s queue (caller must
    /// hold lock(victim)). Returns number stolen.
    int
    stealLocked(int thief, int victim)
    {
        auto& v = queues_[victim];
        const int take = static_cast<int>((v.size() + 1) / 2);
        for (int i = 0; i < take; ++i) {
            queues_[thief].push_back(v.front());
            v.erase(v.begin());
        }
        if (take > 0) {
            ++steals_[thief];
            // Steal edge for the race analyzer: delivered while the
            // thief holds lock(victim), so it lands between the thief's
            // grant and release callbacks for that lock.
            machine_->noteTaskSteal(thief, victim);
        }
        return take;
    }

    std::size_t size(int proc) const { return queues_[proc].size(); }
    std::uint64_t steals(int proc) const { return steals_[proc]; }
    int nprocs() const { return static_cast<int>(queues_.size()); }

    /// Pick the fullest queue other than `self` (victim selection).
    int
    fullestVictim(int self) const
    {
        int best = -1;
        std::size_t best_n = 0;
        for (int q = 0; q < nprocs(); ++q)
            if (q != self && queues_[q].size() > best_n) {
                best_n = queues_[q].size();
                best = q;
            }
        return best;
    }

    /**
     * Dequeue a task for `cpu`, stealing from the fullest victim when
     * its own queue is empty. Nested-phase coroutine: drive it with
     * CCNUMA_RUN_NESTED and read the result from `out` (-1 when all
     * queues are drained).
     */
    sim::Task
    dequeue(sim::Cpu& cpu, int& out)
    {
        out = -1;
        for (;;) {
            const int p = cpu.id();
            co_await cpu.acquire(lock(p));
            const int task = popLocked(p);
            cpu.release(lock(p));
            if (task >= 0) {
                out = task;
                co_return;
            }
            const int victim = fullestVictim(p);
            if (victim < 0)
                co_return; // every queue empty: done
            co_await cpu.acquire(lock(victim));
            stealLocked(p, victim);
            cpu.release(lock(victim));
            // Retry: another thief may have raced us.
        }
    }

  private:
    sim::Machine* machine_;
    std::vector<std::vector<int>> queues_;
    std::vector<sim::LockId> locks_;
    std::vector<std::uint64_t> steals_;
};

} // namespace ccnuma::apps

#endif // CCNUMA_APPS_TASKQUEUE_HH
