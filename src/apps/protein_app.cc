#include "apps/protein_app.hh"

#include <algorithm>
#include <cmath>

namespace ccnuma::apps {

using namespace sim;

void
ProteinApp::setup(Machine& m)
{
    nprocs_ = m.config().numProcs;
    tree_ = kernels::helixTree(cfg_.leaves, cfg_.workPerLeaf,
                               cfg_.seed);

    int max_depth = 0;
    for (const auto& nd : tree_.nodes)
        max_depth = std::max(max_depth, nd.depth);
    levels_.assign(max_depth + 1, {});
    for (std::size_t i = 0; i < tree_.nodes.size(); ++i)
        levels_[tree_.nodes[i].depth].push_back(static_cast<int>(i));

    // Per-level processor groups.
    //  - With regrouping: ALL processors re-split across the level's
    //    nodes proportionally to their (noisy) estimates -- idle groups
    //    have joined working ones.
    //  - Without: groups are fixed by the root-level split; a node deep
    //    in a light subtree keeps only its subtree's processors and the
    //    rest idle at the level barrier.
    groups_.assign(levels_.size(), {});
    for (std::size_t d = 0; d < levels_.size(); ++d) {
        const auto& nodes = levels_[d];
        const int n = static_cast<int>(nodes.size());
        std::vector<std::pair<int, int>>& g = groups_[d];
        g.resize(n);
        if (n >= nprocs_) {
            // More nodes than processors: one processor per node,
            // spread evenly.
            for (int i = 0; i < n; ++i)
                g[i] = {i * nprocs_ / n, 1};
        } else if (cfg_.regroup) {
            // Proportional split of all processors by estimate.
            std::uint64_t total = 0;
            for (const int nd : nodes)
                total += tree_.nodes[nd].estimate;
            int start = 0;
            for (int i = 0; i < n; ++i) {
                int sz = static_cast<int>(
                    static_cast<double>(tree_.nodes[nodes[i]].estimate) /
                    total * nprocs_);
                sz = std::max(1, sz);
                if (start + sz > nprocs_ || i == n - 1)
                    sz = std::max(1, nprocs_ - start);
                g[i] = {std::min(start, nprocs_ - 1), sz};
                start = std::min(start + sz, nprocs_);
            }
        } else {
            // Fixed: inherit a fraction of the parent's group.
            for (int i = 0; i < n; ++i) {
                const auto [b, e] = blockRange(nprocs_, n, i);
                g[i] = {static_cast<int>(b),
                        std::max(1, static_cast<int>(e - b))};
            }
        }
    }

    nodeAddr_.resize(tree_.nodes.size());
    for (std::size_t i = 0; i < tree_.nodes.size(); ++i) {
        nodeAddr_[i] = m.alloc(64 * 128); // substructure state
        m.place(nodeAddr_[i], 64 * 128,
                m.topology().nodeOfProcess(groups_[tree_.nodes[i]
                                                       .depth][0]
                                               .first));
    }
    bar_ = m.barrierCreate();
}

Machine::Program
ProteinApp::program()
{
    const BarrierId bar = bar_;
    const auto* tree = &tree_;
    const auto* levels = &levels_;
    const auto* groups = &groups_;
    const auto* node_addr = &nodeAddr_;

    return [=](Cpu& cpu) -> Task {
        const int p = cpu.id();
        // Process levels bottom-up; each level ends in a barrier (the
        // regrouping point).
        for (int d = static_cast<int>(levels->size()) - 1; d >= 0;
             --d) {
            const auto& nodes = (*levels)[d];
            for (std::size_t i = 0; i < nodes.size(); ++i) {
                const auto [gstart, gsize] = (*groups)[d][i];
                if (p < gstart || p >= gstart + gsize)
                    continue;
                const int nd = nodes[i];
                // Read children's results (cross-node dependences).
                for (const int ch : tree->nodes[nd].children) {
                    for (int l = 0; l < 64; l += 8)
                        cpu.read((*node_addr)[ch] +
                                 static_cast<Addr>(l) * 128);
                    co_await cpu.checkpoint();
                }
                // Our share of the node's parallelizable work, with
                // periodic accesses to the shared substructure state.
                const std::uint64_t my_work =
                    tree->nodes[nd].work / gsize;
                const std::uint64_t chunks = my_work / 2000 + 1;
                for (std::uint64_t c = 0; c < chunks; ++c) {
                    cpu.busy(std::min<std::uint64_t>(2000, my_work));
                    cpu.read((*node_addr)[nd] +
                             ((p + c) % 64) * 128);
                    co_await cpu.checkpoint();
                }
                // Publish our slice of the result into the second half
                // of our per-proc line -- group members concurrently
                // reading the shared substructure state touch only the
                // first-half bytes (offset 0) of those same lines.
                cpu.write((*node_addr)[nd] + (p % 64) * 128 + 64);
            }
            co_await cpu.barrier(bar);
        }
        co_return;
    };
}

} // namespace ccnuma::apps
