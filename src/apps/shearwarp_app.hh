/**
 * @file
 * Shear-Warp skeleton. Original version: the compositing phase
 * partitions the intermediate image in interleaved scanline chunks
 * (with stealing), and the warp phase partitions the *final* image --
 * so warp reads intermediate scanlines that other processors wrote
 * (loss of locality between phases, the paper's diagnosed bottleneck).
 * Restructured version (Jiang & Singh PPoPP'97): profile-balanced
 * *contiguous* compositing partitions, and each processor warps the
 * piece of the final image produced from its own intermediate
 * partition, restoring cross-phase locality.
 */

#ifndef CCNUMA_APPS_SHEARWARP_APP_HH
#define CCNUMA_APPS_SHEARWARP_APP_HH

#include <memory>
#include <vector>

#include "apps/app.hh"
#include "apps/taskqueue.hh"

namespace ccnuma::apps {

struct ShearWarpConfig {
    int volDim = 128;          ///< Volume & image side (basic: 256).
    bool restructured = false;
    sim::Cycles cyclesPerVoxel = 24;
    std::uint64_t seed = 13;
};

class ShearWarpApp : public App
{
  public:
    explicit ShearWarpApp(const ShearWarpConfig& cfg) : cfg_(cfg) {}

    std::string name() const override
    {
        return cfg_.restructured ? "shearwarp-locality" : "shearwarp";
    }
    void setup(sim::Machine& m) override;
    sim::Machine::Program program() override;

  private:
    ShearWarpConfig cfg_;
    int nprocs_ = 0;
    std::vector<std::uint32_t> work_;     ///< Per-scanline voxel work.
    std::vector<int> scanOwner_;          ///< Compositor per scanline.
    std::vector<std::size_t> chunkStart_; ///< Restructured partitions.
    std::unique_ptr<TaskQueues> queues_;  ///< Original: chunk tasks.
    sim::Addr volume_ = 0, inter_ = 0, final_ = 0;
    sim::BarrierId bar_;

    static constexpr int kChunk = 1;  ///< Scanlines per task (original).
    static constexpr int kSubdiv = 8; ///< Segments per scanline (restr.).
};

} // namespace ccnuma::apps

#endif // CCNUMA_APPS_SHEARWARP_APP_HH
