/**
 * @file
 * Sample sort: the paper's restructured parallel sorting algorithm.
 * Two local radix sorts around a splitter phase and an all-to-all copy
 * phase of stride-1 *remote reads* (instead of Radix's scattered remote
 * writes). Parallel efficiency is intrinsically capped near 50% because
 * local sorting happens twice.
 */

#ifndef CCNUMA_APPS_SAMPLESORT_APP_HH
#define CCNUMA_APPS_SAMPLESORT_APP_HH

#include <vector>

#include "apps/app.hh"

namespace ccnuma::apps {

struct SampleSortConfig {
    std::uint64_t numKeys = 1u << 22;
    int radixBits = 8;      ///< Digit width of the local radix sorts.
    int localPasses = 2;    ///< Simulated passes per local sort.
    bool prefetchCopy = false; ///< Prefetch in the copy phase (6.1).
    sim::Cycles cyclesPerKey = 12;
    std::uint64_t seed = 42;
};

class SampleSortApp : public App
{
  public:
    explicit SampleSortApp(const SampleSortConfig& cfg) : cfg_(cfg) {}

    std::string name() const override { return "samplesort"; }
    void setup(sim::Machine& m) override;
    sim::Machine::Program program() override;

  private:
    SampleSortConfig cfg_;
    sim::Addr keys_ = 0, recv_ = 0, splitters_ = 0;
    sim::BarrierId bar_;
    /// seg_[q][b]: keys of source proc q falling in bucket b
    /// (host-computed from real sorted data).
    std::vector<std::vector<std::uint32_t>> seg_;
    int nprocs_ = 0;
};

} // namespace ccnuma::apps

#endif // CCNUMA_APPS_SAMPLESORT_APP_HH
