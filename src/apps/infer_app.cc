#include "apps/infer_app.hh"

#include <algorithm>

namespace ccnuma::apps {

using namespace sim;

void
InferApp::setup(Machine& m)
{
    nprocs_ = m.config().numProcs;
    tree_ = kernels::randomTree(cfg_.numCliques, cfg_.maxVars,
                                cfg_.seed);

    // Depth levels (collect runs leaves->root; we process by level).
    std::vector<int> depth(tree_.cliques.size(), 0);
    int max_depth = 0;
    for (const int c : tree_.order) {
        const int par = tree_.cliques[c].parent;
        depth[c] = par >= 0 ? depth[par] + 1 : 0;
        max_depth = std::max(max_depth, depth[c]);
    }
    levels_.assign(max_depth + 1, {});
    for (const int c : tree_.order)
        levels_[depth[c]].push_back(c);

    // Static owners: coarse contiguous ranges of the topological order
    // (leaf-localized, as the paper's original static assignment).
    owner_.assign(tree_.cliques.size(), 0);
    for (std::size_t i = 0; i < tree_.order.size(); ++i)
        owner_[tree_.order[i]] = static_cast<int>(
            i * nprocs_ / tree_.order.size());

    // Table arenas: small tables homed with their owner, large ones
    // striped across processors (the static version's slices are then
    // local to their workers).
    tableAddr_.resize(tree_.cliques.size());
    for (std::size_t c = 0; c < tree_.cliques.size(); ++c) {
        const std::uint64_t bytes =
            tree_.cliques[c].table.size() * 8;
        tableAddr_[c] = m.alloc(bytes);
        if (bytes / 128 >= static_cast<std::uint64_t>(nprocs_))
            m.placeAcrossProcs(tableAddr_[c], bytes);
        else
            m.place(tableAddr_[c], bytes,
                    m.topology().nodeOfProcess(owner_[c]));
    }
    bar_ = m.barrierCreate();
    queues_ = std::make_unique<TaskQueues>(m, nprocs_);
}

Machine::Program
InferApp::program()
{
    const InferConfig cfg = cfg_;
    const BarrierId bar = bar_;
    TaskQueues* queues = queues_.get();
    const auto* tree = &tree_;
    const auto* table_addr = &tableAddr_;
    const auto* owner = &owner_;
    const auto* levels = &levels_;

    return [=](Cpu& cpu) -> Task {
        const int P = cpu.nprocs();
        const int p = cpu.id();

        // Number of dynamic chunks a clique's table is split into.
        auto chunks_of = [&](int c) {
            const std::uint64_t lines =
                (tree->cliques[c].table.size() * 8 + 127) / 128;
            return static_cast<int>(
                std::min<std::uint64_t>(kMaxChunks,
                                        std::max<std::uint64_t>(
                                            1, lines / 16)));
        };

        // Touch a clique table: slice [num/den, (num+1)/den), read+write.
        auto touch_table = [&](int c, int num, int den) -> Task {
            const auto& cl = tree->cliques[c];
            const std::uint64_t lines =
                (cl.table.size() * 8 + 127) / 128;
            const std::uint64_t lo = lines * num / den;
            const std::uint64_t hi = lines * (num + 1) / den;
            for (std::uint64_t l = lo; l < hi; ++l) {
                cpu.read((*table_addr)[c] + l * 128);
                cpu.busy(16 * cfg.cyclesPerEntry);
                cpu.write((*table_addr)[c] + l * 128);
                if ((l - lo) % 16 == 15)
                    co_await cpu.nestedCheckpoint();
            }
            co_return;
        };

        // Two sweeps: collect (deepest level first), then distribute.
        const int nlevels = static_cast<int>(levels->size());
        for (int sweep = 0; sweep < 2; ++sweep) {
            for (int li = 0; li < nlevels; ++li) {
                const int lvl =
                    sweep == 0 ? nlevels - 1 - li : li;
                const auto& cliques = (*levels)[lvl];

                if (!cfg.staticWithinClique) {
                    // Dynamic: work chunks (cliques, or pieces of large
                    // cliques) seeded at static owners; idle processors
                    // steal -- the original version exploits
                    // parallelism both across and within cliques.
                    if (p == 0) {
                        for (const int c : cliques) {
                            const int nch = chunks_of(c);
                            for (int k = 0; k < nch; ++k)
                                queues->push((*owner)[c],
                                             c * kMaxChunks + k);
                        }
                    }
                    co_await cpu.barrier(bar);
                    for (;;) {
                        int task;
                        CCNUMA_RUN_NESTED(cpu,
                                          queues->dequeue(cpu, task));
                        if (task < 0)
                            break;
                        const int c = task / kMaxChunks;
                        const int k = task % kMaxChunks;
                        // Read the parent message interface, then our
                        // chunk of the table (scattered: a stealer has
                        // no locality here).
                        const int par = tree->cliques[c].parent;
                        if (par >= 0)
                            cpu.read((*table_addr)[par]);
                        CCNUMA_RUN_NESTED(
                            cpu, touch_table(c, k, chunks_of(c)));
                        co_await cpu.checkpoint();
                    }
                    co_await cpu.barrier(bar);
                } else {
                    // Static: every processor works on its slice of
                    // each large clique; small cliques go to their
                    // static owner. Locality: our slice of the parent
                    // table is homed with us.
                    for (const int c : cliques) {
                        const auto& cl = tree->cliques[c];
                        const std::uint64_t lines =
                            (cl.table.size() * 8 + 127) / 128;
                        if (lines >= static_cast<std::uint64_t>(P)) {
                            CCNUMA_RUN_NESTED(cpu,
                                              touch_table(c, p, P));
                        } else if ((*owner)[c] == p) {
                            const int par = tree->cliques[c].parent;
                            if (par >= 0)
                                cpu.read((*table_addr)[par]);
                            CCNUMA_RUN_NESTED(cpu,
                                              touch_table(c, 0, 1));
                        }
                        co_await cpu.checkpoint();
                    }
                    co_await cpu.barrier(bar);
                }
            }
        }
        co_return;
    };
}

} // namespace ccnuma::apps
