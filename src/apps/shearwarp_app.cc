#include "apps/shearwarp_app.hh"

#include <cmath>

#include "kernels/nbody.hh" // costzoneSplit
#include "kernels/render.hh"

namespace ccnuma::apps {

using namespace sim;

void
ShearWarpApp::setup(Machine& m)
{
    nprocs_ = m.config().numProcs;
    const int dim = cfg_.volDim;

    // Host: real compositing work profile (early termination skew).
    const kernels::Volume vol(dim);
    std::vector<std::uint32_t> wps;
    kernels::shearWarpComposite(vol, 0.3, 0.15, wps);
    work_ = wps;

    // Simulated arenas.
    const std::uint64_t vol_bytes =
        static_cast<std::uint64_t>(dim) * dim * dim;
    volume_ = m.alloc(vol_bytes);
    m.placeAcrossProcs(volume_, vol_bytes);
    inter_ = m.alloc(static_cast<std::uint64_t>(dim) * dim * 4);
    final_ = m.alloc(static_cast<std::uint64_t>(dim) * dim * 4);
    bar_ = m.barrierCreate();

    scanOwner_.assign(dim, 0);
    if (!cfg_.restructured) {
        // Interleaved chunks + stealing.
        queues_ = std::make_unique<TaskQueues>(m, nprocs_);
        const int chunks = dim / kChunk;
        for (int c = 0; c < chunks; ++c) {
            queues_->push(c % nprocs_, c);
            for (int k = 0; k < kChunk; ++k)
                scanOwner_[c * kChunk + k] = c % nprocs_;
        }
    } else {
        // Profile-balanced contiguous partitions. The real algorithm
        // balances at sub-scanline granularity: split each scanline
        // into kSubdiv segments and costzone over segments.
        // Segment cost covers both phases: compositing work (profile)
        // plus the warp's per-scanline cost (proportional to area).
        const double warp_weight = dim;
        std::vector<double> cost;
        cost.reserve(static_cast<std::size_t>(dim) * kSubdiv);
        for (int y = 0; y < dim; ++y)
            for (int s = 0; s < kSubdiv; ++s)
                cost.push_back((static_cast<double>(work_[y]) +
                                warp_weight) /
                               kSubdiv);
        chunkStart_ = kernels::costzoneSplit(cost, nprocs_);
        for (int p = 0; p < nprocs_; ++p)
            for (std::size_t seg = chunkStart_[p];
                 seg < chunkStart_[p + 1]; ++seg)
                scanOwner_[seg / kSubdiv] = p; // majority-ish owner
    }
    // Intermediate image placed with its compositor; final image
    // block-partitioned (the warp writer owns it in both versions).
    for (int y = 0; y < dim; ++y)
        m.place(inter_ + static_cast<Addr>(y) * dim * 4,
                static_cast<std::uint64_t>(dim) * 4,
                m.topology().nodeOfProcess(scanOwner_[y]));
    m.placeAcrossProcs(final_, static_cast<std::uint64_t>(dim) * dim * 4);
}

Machine::Program
ShearWarpApp::program()
{
    const ShearWarpConfig cfg = cfg_;
    const Addr volume = volume_, inter = inter_, final_img = final_;
    const BarrierId bar = bar_;
    TaskQueues* queues = queues_.get();
    const auto* work = &work_;
    const auto* chunk_start = &chunkStart_;

    return [=](Cpu& cpu) -> Task {
        const int P = cpu.nprocs();
        const int p = cpu.id();
        const int dim = cfg.volDim;

        // ---- compositing: segment [num/den, (num+1)/den) of line y ----
        auto composite_line = [&](int y, int num, int den) -> Task {
            const std::uint32_t voxels = (*work)[y] / den;
            // Sheared voxel reads: contiguous runs within a scanline
            // plane; one line covers 128 voxels along x.
            for (std::uint32_t v = 0; v < voxels; v += 32) {
                // The sheared resample footprint of scanline y overlaps
                // that of y+1: adjacent scanlines share volume lines
                // (hence contiguous partitions reuse them in cache,
                // interleaved ones refetch them remotely).
                cpu.read(volume +
                         (static_cast<Addr>(v + num * voxels) * dim *
                              dim +
                          static_cast<Addr>(y / 2) * dim) %
                             (static_cast<Addr>(dim) * dim * dim));
                cpu.busy(32 * cfg.cyclesPerVoxel);
                co_await cpu.nestedCheckpoint();
            }
            const int px_b = dim * num / den, px_e = dim * (num + 1) / den;
            for (int x = px_b * 4; x < px_e * 4; x += 128)
                cpu.write(inter + static_cast<Addr>(y) * dim * 4 + x);
            co_return;
        };

        if (!cfg.restructured) {
            for (;;) {
                int task;
                CCNUMA_RUN_NESTED(cpu, queues->dequeue(cpu, task));
                if (task < 0)
                    break;
                for (int k = 0; k < kChunk; ++k)
                    CCNUMA_RUN_NESTED(cpu, composite_line(
                                               task * kChunk + k,
                                               0, 1));
            }
        } else {
            // Contiguous sub-scanline segments.
            for (std::size_t seg = (*chunk_start)[p];
                 seg < (*chunk_start)[p + 1]; ++seg)
                CCNUMA_RUN_NESTED(
                    cpu, composite_line(
                             static_cast<int>(seg / kSubdiv),
                             static_cast<int>(seg % kSubdiv), kSubdiv));
        }
        co_await cpu.barrier(bar);

        // ---- warp phase ----
        if (!cfg.restructured) {
            // Partition the FINAL image: read rotated intermediate
            // scanlines composited (mostly) by other processors.
            const auto [yb, ye] = blockRange(dim, P, p);
            for (std::uint64_t y = yb; y < ye; ++y) {
                // A final row maps to ~2 intermediate rows.
                for (int s = 0; s < 2; ++s) {
                    const int iy =
                        static_cast<int>((y + s * 3 + dim / 16) %
                                         dim);
                    for (int x = 0; x < dim * 4; x += 128)
                        cpu.read(inter + static_cast<Addr>(iy) * dim *
                                             4 + x);
                }
                cpu.busy(static_cast<Cycles>(dim) * 10);
                for (int x = 0; x < dim * 4; x += 128)
                    cpu.write(final_img + y * dim * 4 + x);
                co_await cpu.checkpoint();
            }
        } else {
            // Each processor warps its OWN intermediate partition into
            // the corresponding final-image piece: local reads.
            for (std::size_t y = (*chunk_start)[p] / kSubdiv;
                 y < ((*chunk_start)[p + 1] + kSubdiv - 1) / kSubdiv &&
                 y < static_cast<std::size_t>(dim);
                 ++y) {
                for (int x = 0; x < dim * 4; x += 128)
                    cpu.read(inter + static_cast<Addr>(y) * dim * 4 +
                             x);
                cpu.busy(static_cast<Cycles>(dim) * 10);
                // A boundary scanline whose segments straddle a
                // partition split is warped by both owners; each
                // writes only its own segments' pixels, modeled as a
                // per-proc byte slot within the shared output lines.
                for (int x = 0; x < dim * 4; x += 128)
                    cpu.write(final_img +
                              ((static_cast<Addr>(y) + dim / 16) %
                               dim) * dim * 4 + x + 4 * (p % 8));
                co_await cpu.checkpoint();
            }
        }
        co_await cpu.barrier(bar);
        co_return;
    };
}

} // namespace ccnuma::apps
