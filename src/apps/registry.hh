/**
 * @file
 * Application registry: build any application (and variant) by name
 * with a problem-size parameter, and the table of "basic" problem
 * sizes corresponding to the paper's Table 2 (scaled where the paper's
 * size is beyond what direct simulation can cover; see DESIGN.md).
 */

#ifndef CCNUMA_APPS_REGISTRY_HH
#define CCNUMA_APPS_REGISTRY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "apps/app.hh"

namespace ccnuma::apps {

/**
 * Create an application by name.
 *
 * Names: "fft", "ocean", "ocean-rowwise", "radix", "samplesort",
 * "barnes", "barnes-mergetree", "barnes-spatial", "water-nsq",
 * "water-nsq-interchanged", "water-spatial", "raytrace",
 * "raytrace-nostatslock", "volrend", "volrend-balanced", "shearwarp",
 * "shearwarp-locality", "infer", "infer-static", "protein",
 * "protein-noregroup".
 *
 * `size` is the app's natural problem-size unit (see basicSize());
 * size == 0 means the basic size.
 *
 * @throws std::invalid_argument for unknown names; the message lists
 * every valid name.
 */
AppPtr makeApp(const std::string& name, std::uint64_t size = 0);

/// Non-throwing makeApp: nullptr for unknown names.
AppPtr tryMakeApp(const std::string& name, std::uint64_t size = 0);

/// Every constructible name: the eleven originals plus all variants.
const std::vector<std::string>& listApps();

/// The app's basic problem size (Table 2, scaled per DESIGN.md).
std::uint64_t basicSize(const std::string& name);

/// Human-readable unit of the size parameter ("points", "molecules"..).
std::string sizeUnit(const std::string& name);

/**
 * True when the app's operation stream (the sequence of memory, busy
 * and synchronization calls each process makes) is a pure function of
 * the program and problem size, independent of simulated timing.
 *
 * Only timing-invariant apps may run under the parallel scout/replay
 * engine (sim/parallel.hh) with bit-identical results; core::runApp
 * clamps MachineConfig::simJobs to 1 for the others. Timing-variant
 * apps are those whose work distribution is decided dynamically:
 * everything built on apps::TaskQueues (task stealing picks victims by
 * observing queue occupancy), and barnes-mergetree (per-process work
 * scales with the arrival rank at the merge lock).
 */
bool timingInvariant(const std::string& name);

/// The canonical names of the eleven applications' original versions.
const std::vector<std::string>& originalApps();

/// Mapping of original name -> restructured variant name ("" if the
/// paper restructures it by problem size only).
std::string restructuredVariant(const std::string& original);

} // namespace ccnuma::apps

#endif // CCNUMA_APPS_REGISTRY_HH
