#include "apps/samplesort_app.hh"

#include <algorithm>

#include "kernels/sort.hh"

namespace ccnuma::apps {

using namespace sim;

namespace {
constexpr std::uint64_t kKeysPerLine = 32;
} // namespace

void
SampleSortApp::setup(Machine& m)
{
    nprocs_ = m.config().numProcs;
    const std::uint64_t bytes = cfg_.numKeys * 4;
    keys_ = m.alloc(bytes);
    recv_ = m.alloc(bytes * 2); // buckets are uneven; slack space
    splitters_ = m.alloc(m.config().pageBytes);
    m.placeAcrossProcs(keys_, bytes);
    m.placeAcrossProcs(recv_, bytes * 2);
    m.place(splitters_, m.config().pageBytes, 0);
    bar_ = m.barrierCreate();

    // Host: real keys, real splitters, real per-(source, bucket) counts.
    const auto keys = kernels::randomKeys(cfg_.numKeys, cfg_.seed);
    const auto split =
        kernels::sampleSplitters(keys, nprocs_, 64, cfg_.seed + 1);
    seg_.assign(nprocs_, std::vector<std::uint32_t>(nprocs_, 0));
    for (int q = 0; q < nprocs_; ++q) {
        const auto [b, e] = blockRange(cfg_.numKeys, nprocs_, q);
        for (std::uint64_t i = b; i < e; ++i)
            ++seg_[q][kernels::bucketOf(keys[i], split)];
    }
}

Machine::Program
SampleSortApp::program()
{
    const SampleSortConfig cfg = cfg_;
    const Addr keys = keys_, recv = recv_, splitters = splitters_;
    const BarrierId bar = bar_;
    const auto* seg = &seg_;

    return [cfg, keys, recv, splitters, bar, seg](Cpu& cpu) -> Task {
        const int P = cpu.nprocs();
        const int p = cpu.id();
        const auto [key_b, key_e] = blockRange(cfg.numKeys, P, p);
        const std::uint64_t my_keys = key_e - key_b;

        // ---- local radix sort over our block ----
        auto local_sort = [&](Addr base, std::uint64_t b,
                              std::uint64_t count) -> Task {
            for (int pass = 0; pass < cfg.localPasses; ++pass) {
                for (std::uint64_t i = 0; i < count;
                     i += kKeysPerLine) {
                    cpu.read(base + (b + i) * 4);
                    cpu.busy(kKeysPerLine * cfg.cyclesPerKey);
                    cpu.write(base + (b + i) * 4);
                    if ((i / kKeysPerLine) % 16 == 15)
                        co_await cpu.nestedCheckpoint();
                }
                co_await cpu.nestedCheckpoint();
            }
            co_return;
        };

        CCNUMA_RUN_NESTED(cpu, local_sort(keys, key_b, my_keys));
        co_await cpu.barrier(bar);

        // ---- splitter phase: everyone publishes samples; proc 0
        // sorts them and writes the splitters. ----
        cpu.write(splitters + 128 + static_cast<Addr>(p) * 4);
        co_await cpu.barrier(bar);
        if (p == 0) {
            for (int q = 0; q < P; q += 32)
                cpu.read(splitters + 128 + static_cast<Addr>(q) * 4);
            cpu.busy(static_cast<Cycles>(P) * 64 * 8); // sort samples
            cpu.write(splitters);
        }
        co_await cpu.barrier(bar);
        cpu.read(splitters);
        cpu.busy(my_keys / 8); // binary-search bucket boundaries

        co_await cpu.barrier(bar);

        // ---- copy phase: fetch our bucket from every source proc's
        // sorted block with contiguous (stride-1) remote reads. ----
        const auto [rb, re] = blockRange(cfg.numKeys * 2, P, p);
        Addr out = recv + rb * 4;
        std::uint64_t received = 0;
        for (int k = 1; k <= P; ++k) {
            const int q = (p + k) % P; // staggered source order
            const auto [qb, qe] = blockRange(cfg.numKeys, P, q);
            (void)qe;
            // Offset of bucket p within q's sorted block.
            std::uint64_t off = 0;
            for (int b = 0; b < p; ++b)
                off += (*seg)[q][b];
            const std::uint64_t cnt = (*seg)[q][p];
            for (std::uint64_t i = 0; i < cnt; i += kKeysPerLine) {
                if (cfg.prefetchCopy && i + 4 * kKeysPerLine < cnt)
                    cpu.prefetch(keys +
                                 (qb + off + i + 4 * kKeysPerLine) * 4);
                cpu.read(keys + (qb + off + i) * 4);
                cpu.busy(kKeysPerLine * 2);
                cpu.write(out + (received + i) * 4);
                if ((i / kKeysPerLine) % 16 == 15)
                    co_await cpu.checkpoint();
            }
            received += cnt;
            co_await cpu.checkpoint();
        }
        co_await cpu.barrier(bar);

        // ---- second local sort over what we received ----
        CCNUMA_RUN_NESTED(cpu, local_sort(recv, rb, received));
        co_await cpu.barrier(bar);
        co_return;
    };
}

} // namespace ccnuma::apps
