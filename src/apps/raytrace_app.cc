#include "apps/raytrace_app.hh"

#include "kernels/render.hh"

namespace ccnuma::apps {

using namespace sim;

void
RaytraceApp::setup(Machine& m)
{
    nprocs_ = m.config().numProcs;
    // Per-ray work comes from a real trace over a fixed scene (a grid
    // accelerator keeps per-ray cost roughly size-independent on the
    // real code); the *dataset footprint* -- the diffuse, read-shared
    // working set -- scales with the problem size.
    const auto scene = kernels::randomScene(64, cfg_.seed);
    work_ = kernels::traceImage(scene, cfg_.imageSide, 2, nullptr);

    const int scale = cfg_.imageSide / 128 > 0 ? cfg_.imageSide / 128 : 1;
    sceneLines_ = 64ull * 1024 * scale * scale; // ~8 MB at 128^2
    scene_ = m.alloc(sceneLines_ * 128);
    // Scene pages round-robin across nodes (read-shared data).
    {
        const int nodes = m.config().numNodes();
        const std::uint64_t pages =
            (sceneLines_ * 128 + m.config().pageBytes - 1) /
            m.config().pageBytes;
        for (std::uint64_t pg = 0; pg < pages; ++pg)
            m.place(scene_ + pg * m.config().pageBytes,
                    m.config().pageBytes,
                    static_cast<NodeId>(pg % nodes));
    }
    image_ = m.alloc(static_cast<std::uint64_t>(cfg_.imageSide) *
                     cfg_.imageSide * 4);
    m.placeAcrossProcs(image_,
                       static_cast<std::uint64_t>(cfg_.imageSide) *
                           cfg_.imageSide * 4);
    stats_ = m.alloc(128);
    m.place(stats_, 128, 0);
    bar_ = m.barrierCreate();
    statsLock_ = m.lockCreate();

    // Tile tasks, interleaved over processors.
    queues_ = std::make_unique<TaskQueues>(m, nprocs_);
    const int tiles_per_side = cfg_.imageSide / kTile;
    const int tiles = tiles_per_side * tiles_per_side;
    for (int t = 0; t < tiles; ++t)
        queues_->push(t % nprocs_, t);
}

Machine::Program
RaytraceApp::program()
{
    const RaytraceConfig cfg = cfg_;
    const Addr scene = scene_, image = image_, stats = stats_;
    const std::uint64_t scene_lines = sceneLines_;
    const BarrierId bar = bar_;
    const LockId stats_lock = statsLock_;
    TaskQueues* queues = queues_.get();
    const auto* work = &work_;

    return [=](Cpu& cpu) -> Task {
        const int side = cfg.imageSide;
        const int tiles_per_side = side / kTile;

        for (;;) {
            int task;
            CCNUMA_RUN_NESTED(cpu, queues->dequeue(cpu, task));
            if (task < 0)
                break;
            const int tx = task % tiles_per_side;
            const int ty = task / tiles_per_side;
            for (int py = ty * kTile; py < (ty + 1) * kTile; ++py) {
                for (int px = tx * kTile; px < (tx + 1) * kTile;
                     ++px) {
                    const std::uint32_t tests =
                        (*work)[static_cast<std::size_t>(py) * side +
                                px];
                    // Traverse the scene/grid: scattered reads over
                    // the shared scene (grid cells, object data,
                    // shading tables) -- several lines per test.
                    const std::uint32_t reads = tests * 4 + 1;
                    std::uint64_t h = static_cast<std::uint64_t>(
                                          py * side + px) *
                                      2654435761u;
                    for (std::uint32_t r = 0; r < reads; ++r) {
                        h = h * 6364136223846793005ull + 1442695040888963407ull;
                        cpu.read(scene + (h % scene_lines) * 128);
                        cpu.busy(cfg.cyclesPerTest);
                        co_await cpu.checkpoint();
                    }
                    cpu.write(image + static_cast<Addr>(py * side +
                                                        px) * 4);
                    if (cfg.statsLock) {
                        co_await cpu.acquire(stats_lock);
                        cpu.write(stats);
                        cpu.release(stats_lock);
                    }
                    co_await cpu.checkpoint();
                }
            }
        }
        co_await cpu.barrier(bar);
        co_return;
    };
}

} // namespace ccnuma::apps
