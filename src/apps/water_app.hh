/**
 * @file
 * Water-Nsquared and Water-Spatial skeletons.
 *
 * Water-Nsquared: O(n^2/2) pairwise force computation. The original
 * SPLASH-2 loop order iterates local molecules outermost, re-scanning
 * the n/2 partner molecules per local molecule -- once the partner set
 * outgrows the cache, every partner access is a remote capacity miss.
 * The paper's restructuring interchanges the loops so each remote
 * molecule is fetched once and reused against all local molecules.
 *
 * Water-Spatial: 3-D cell decomposition with nearest-neighbor
 * communication at subdomain faces; scales with problem size.
 */

#ifndef CCNUMA_APPS_WATER_APP_HH
#define CCNUMA_APPS_WATER_APP_HH

#include <vector>

#include "apps/app.hh"

namespace ccnuma::apps {

struct WaterNsqConfig {
    std::uint64_t numMols = 4096;
    bool interchanged = false;  ///< The restructured loop order.
    sim::Cycles cyclesPerPair = 500;
};

class WaterNsqApp : public App
{
  public:
    explicit WaterNsqApp(const WaterNsqConfig& cfg) : cfg_(cfg) {}

    std::string name() const override
    {
        return cfg_.interchanged ? "water-nsq-interchanged"
                                 : "water-nsq";
    }
    void setup(sim::Machine& m) override;
    sim::Machine::Program program() override;

  private:
    WaterNsqConfig cfg_;
    sim::Addr mols_ = 0, scratch_ = 0;
    sim::BarrierId bar_;
};

struct WaterSpConfig {
    std::uint64_t numMols = 4096;
    sim::Cycles cyclesPerPair = 1200;
    std::uint64_t seed = 7;
};

class WaterSpApp : public App
{
  public:
    explicit WaterSpApp(const WaterSpConfig& cfg) : cfg_(cfg) {}

    std::string name() const override { return "water-spatial"; }
    void setup(sim::Machine& m) override;
    sim::Machine::Program program() override;

  private:
    WaterSpConfig cfg_;
    sim::Addr mols_ = 0;
    sim::BarrierId bar_;
    int dim_ = 1;                       ///< Cells per dimension.
    std::vector<std::vector<int>> cellMols_; ///< Cell -> molecule ids.
    std::vector<int> cellOwner_;        ///< Cell -> owning processor.
    int nprocs_ = 0;
};

} // namespace ccnuma::apps

#endif // CCNUMA_APPS_WATER_APP_HH
