/**
 * @file
 * SPLASH-2 Radix sort skeleton: per-pass local histogram, parallel
 * prefix over histograms, then the permutation phase whose temporally
 * scattered remote writes (and the resulting write-allocate fetches and
 * writebacks) are the application's large-scale bottleneck.
 */

#ifndef CCNUMA_APPS_RADIX_APP_HH
#define CCNUMA_APPS_RADIX_APP_HH

#include <vector>

#include "apps/app.hh"

namespace ccnuma::apps {

struct RadixConfig {
    std::uint64_t numKeys = 1u << 22;
    int radixBits = 8;       ///< Digit width; 256 buckets.
    int passes = 2;          ///< Sorting passes simulated.
    bool prefetchHist = false; ///< Prefetch in the prefix phase (6.1).
    sim::Cycles cyclesPerKey = 12; ///< Busy per key per phase touch.
    std::uint64_t seed = 42;
};

class RadixApp : public App
{
  public:
    explicit RadixApp(const RadixConfig& cfg) : cfg_(cfg) {}

    std::string name() const override { return "radix"; }
    void setup(sim::Machine& m) override;
    sim::Machine::Program program() override;

  private:
    RadixConfig cfg_;
    sim::Addr keysA_ = 0, keysB_ = 0, hists_ = 0;
    sim::BarrierId bar_;
    /// counts_[pass][proc][digit]: real key counts (host-computed).
    std::vector<std::vector<std::vector<std::uint32_t>>> counts_;
    int nprocs_ = 0;
};

} // namespace ccnuma::apps

#endif // CCNUMA_APPS_RADIX_APP_HH
