/**
 * @file
 * The SPLASH-2 FFT as a simulator skeleton: six-step sqrt(n) x sqrt(n)
 * 1-D FFT with blocked, staggered all-to-all transposes. Options cover
 * the paper's experiments: transpose staggering (Section 7.1 mapping),
 * software prefetch of remote transpose data (Section 6.1).
 */

#ifndef CCNUMA_APPS_FFT_APP_HH
#define CCNUMA_APPS_FFT_APP_HH

#include <vector>

#include "apps/app.hh"

namespace ccnuma::apps {

struct FftConfig {
    int logPoints = 20;       ///< n = 2^logPoints, must be even.
    bool stagger = true;      ///< Start transposing from proc id+1.
    bool prefetch = false;    ///< Prefetch remote transpose blocks.
    /// Fuse the first transpose into the row-FFT phase, spreading the
    /// all-to-all reads through computation instead of a bursty
    /// transpose phase (the paper tried this; it did not help).
    bool implicitTranspose = false;
    /// Busy cycles per point per 1-D FFT butterfly stage.
    sim::Cycles cyclesPerPoint = 24;
};

class FftApp : public App
{
  public:
    explicit FftApp(const FftConfig& cfg) : cfg_(cfg) {}

    std::string name() const override { return "fft"; }
    void setup(sim::Machine& m) override;
    sim::Machine::Program program() override;

  private:
    FftConfig cfg_;
    sim::Machine* m_ = nullptr;
    std::uint64_t rows_ = 0;
    sim::Addr a_ = 0, b_ = 0;
    sim::BarrierId bar_;
};

} // namespace ccnuma::apps

#endif // CCNUMA_APPS_FFT_APP_HH
