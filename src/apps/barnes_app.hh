/**
 * @file
 * Barnes-Hut skeleton with the paper's three tree-building strategies:
 *
 *  - Original: processes insert their bodies one by one into a globally
 *    shared tree, locking cells they modify. Cheap at 32p, but the
 *    tree-building phase's communication dominates at 128p.
 *  - MergeTree: each process builds a private tree over its own bodies
 *    (no communication), then merges it into the global tree; merging
 *    is imbalanced (later mergers do successively more work) but total
 *    communication drops.
 *  - Spatial: one process builds a P-leaf "supertree" over subspaces;
 *    every process builds its subtree privately and attaches it to its
 *    unique leaf without locking. Worse load balance, least
 *    communication: loses to MergeTree at 32p, wins at 128p.
 *
 * Force calculation uses costzone-style partitioning of Morton-ordered
 * bodies with per-body costs from a real Barnes-Hut traversal.
 */

#ifndef CCNUMA_APPS_BARNES_APP_HH
#define CCNUMA_APPS_BARNES_APP_HH

#include <memory>
#include <vector>

#include "apps/app.hh"
#include "kernels/nbody.hh"

namespace ccnuma::apps {

enum class BarnesVariant { Original, MergeTree, Spatial };

struct BarnesConfig {
    std::uint64_t numBodies = 16384;
    BarnesVariant variant = BarnesVariant::Original;
    double theta = 0.8;
    sim::Cycles cyclesPerInteraction = 220;
    std::uint64_t seed = 17;
};

class BarnesApp : public App
{
  public:
    explicit BarnesApp(const BarnesConfig& cfg) : cfg_(cfg) {}

    std::string name() const override;
    void setup(sim::Machine& m) override;
    sim::Machine::Program program() override;

  private:
    BarnesConfig cfg_;
    int nprocs_ = 0;
    std::unique_ptr<kernels::Octree> tree_;
    std::vector<kernels::Body> bodies_;
    std::vector<int> bodyOwner_;          ///< body -> proc.
    std::vector<std::vector<int>> myBodies_; ///< proc -> bodies.
    std::vector<std::vector<std::uint32_t>> visits_; ///< body -> cells.
    std::vector<int> cellOwner_;          ///< cell -> proc (by space).
    std::vector<std::uint8_t> cellDepth_; ///< cell -> tree depth.
    std::vector<std::uint32_t> localCells_; ///< proc -> private cells.
    std::vector<int> buildOwner_;  ///< Spatial: cell -> subtree owner.
    std::vector<std::uint64_t> buildBodies_; ///< Spatial: proc -> bodies.

    sim::Addr bodyArena_ = 0, cellArena_ = 0, localArena_ = 0;
    sim::BarrierId bar_;
    std::vector<sim::LockId> cellLocks_;  ///< One per lock group.
    sim::LockId mergeLock_;
    std::shared_ptr<int> mergeRank_;

    static constexpr int kLockGroups = 512;
};

} // namespace ccnuma::apps

#endif // CCNUMA_APPS_BARNES_APP_HH
