#include "apps/barnes_app.hh"

#include <algorithm>
#include <cmath>
#include <map>

namespace ccnuma::apps {

using namespace sim;
namespace kn = kernels;

std::string
BarnesApp::name() const
{
    switch (cfg_.variant) {
      case BarnesVariant::Original:
        return "barnes";
      case BarnesVariant::MergeTree:
        return "barnes-mergetree";
      case BarnesVariant::Spatial:
        return "barnes-spatial";
    }
    return "barnes";
}

void
BarnesApp::setup(Machine& m)
{
    nprocs_ = m.config().numProcs;
    const std::uint64_t n = cfg_.numBodies;

    // ---- Host-side: real bodies, real tree, real traversal costs ----
    bodies_ = kn::plummerBodies(n, cfg_.seed);
    tree_ = std::make_unique<kn::Octree>(bodies_, 1.0);
    tree_->computeMoments(bodies_);

    const std::vector<int> order = kn::mortonOrder(bodies_, 1.0);
    visits_.resize(n);
    std::vector<double> cost_in_order(n);
    for (std::uint64_t r = 0; r < n; ++r) {
        const int b = order[r];
        visits_[b].reserve(64);
        tree_->force(bodies_, b, cfg_.theta, [&](int ci) {
            visits_[b].push_back(static_cast<std::uint32_t>(ci));
        });
        cost_in_order[r] = static_cast<double>(visits_[b].size());
    }
    const auto starts = kn::costzoneSplit(cost_in_order, nprocs_);
    bodyOwner_.assign(n, 0);
    myBodies_.assign(nprocs_, {});
    for (int p = 0; p < nprocs_; ++p)
        for (std::size_t r = starts[p]; r < starts[p + 1]; ++r) {
            bodyOwner_[order[r]] = p;
            myBodies_[p].push_back(order[r]);
        }

    // Cell owner by space: map each cell's Morton rank onto the body
    // partition (used by Spatial placement/build and by moments).
    const auto& cells = tree_->cells();
    std::vector<std::uint64_t> body_keys(n);
    for (std::uint64_t r = 0; r < n; ++r)
        body_keys[r] = kn::mortonKey(bodies_[order[r]].pos, 1.0, 10);
    // body_keys is sorted (order is Morton order).
    cellOwner_.assign(cells.size(), 0);
    localCells_.assign(nprocs_, 0);
    for (std::size_t c = 0; c < cells.size(); ++c) {
        const std::uint64_t key =
            kn::mortonKey(cells[c].center, 1.0, 10);
        const std::size_t rank =
            std::lower_bound(body_keys.begin(), body_keys.end(), key) -
            body_keys.begin();
        int ow = 0;
        for (int p = 0; p < nprocs_; ++p)
            if (rank >= starts[p] && rank < starts[p + 1] + (p ==
                nprocs_ - 1 ? 1 : 0))
                ow = p;
        cellOwner_[c] = ow;
        ++localCells_[ow];
    }
    cellDepth_.resize(cells.size());
    for (std::size_t c = 0; c < cells.size(); ++c)
        cellDepth_[c] = static_cast<std::uint8_t>(
            std::min(255, tree_->depthOf(static_cast<int>(c))));

    // Spatial variant: the space is divided into whole subtrees
    // ("pieces"), recursively subdivided until no piece holds more
    // than ~n/(3P) bodies, then greedily assigned to processors by
    // body count. Pieces must stay whole subtrees, so balance is
    // imperfect -- the variant's load-balance cost.
    {
        // Bodies per cell (subtree-inclusive): leaves hold one body.
        std::vector<std::uint64_t> sub_bodies(cells.size(), 0);
        for (std::size_t c = cells.size(); c-- > 0;) {
            if (cells[c].body >= 0)
                sub_bodies[c] += 1;
            if (cells[c].parent >= 0)
                sub_bodies[cells[c].parent] += sub_bodies[c];
        }
        const std::uint64_t cap =
            std::max<std::uint64_t>(1, n / (3 * nprocs_));
        // Recursively collect pieces from the root.
        std::vector<int> piece_roots;
        std::vector<int> stack{0};
        while (!stack.empty()) {
            const int c = stack.back();
            stack.pop_back();
            if (sub_bodies[c] > cap && cells[c].child[0] != -1) {
                for (const int ch : cells[c].child)
                    if (ch >= 0 && sub_bodies[ch] > 0)
                        stack.push_back(ch);
            } else if (sub_bodies[c] > 0) {
                piece_roots.push_back(c);
            }
        }
        // Greedy largest-first assignment to least-loaded processor.
        std::sort(piece_roots.begin(), piece_roots.end(),
                  [&](int a, int b) {
                      return sub_bodies[a] > sub_bodies[b];
                  });
        buildBodies_.assign(nprocs_, 0);
        std::map<int, int> piece_owner;
        for (const int root : piece_roots) {
            const int best = static_cast<int>(
                std::min_element(buildBodies_.begin(),
                                 buildBodies_.end()) -
                buildBodies_.begin());
            piece_owner[root] = best;
            buildBodies_[best] += sub_bodies[root];
        }
        // Each cell belongs to the nearest ancestor piece root.
        buildOwner_.assign(cells.size(), 0);
        for (std::size_t c = 0; c < cells.size(); ++c) {
            int a = static_cast<int>(c);
            while (a >= 0 && !piece_owner.count(a))
                a = cells[a].parent;
            buildOwner_[c] = a >= 0 ? piece_owner[a] : 0;
        }
    }

    // ---- Simulated arenas ----
    bodyArena_ = m.alloc(n * 128);
    for (std::uint64_t b = 0; b < n; ++b)
        m.place(bodyArena_ + b * 128, 128,
                m.topology().nodeOfProcess(bodyOwner_[b]));

    cellArena_ = m.alloc(cells.size() * 128);
    if (cfg_.variant == BarnesVariant::Spatial) {
        // Subtrees live with their space's owner.
        for (std::size_t c = 0; c < cells.size(); ++c)
            m.place(cellArena_ + c * 128, 128,
                    m.topology().nodeOfProcess(cellOwner_[c]));
    } else {
        // Globally shared tree: pages scatter round-robin (cells are
        // created by whoever inserts first; no useful locality).
        const int nodes = m.config().numNodes();
        const std::uint64_t pages =
            (cells.size() * 128 + m.config().pageBytes - 1) /
            m.config().pageBytes;
        for (std::uint64_t pg = 0; pg < pages; ++pg)
            m.place(cellArena_ + pg * m.config().pageBytes,
                    m.config().pageBytes,
                    static_cast<NodeId>(pg % nodes));
    }

    // Private per-proc tree arenas (MergeTree local build).
    localArena_ = m.alloc(static_cast<std::uint64_t>(nprocs_) *
                          (n / std::max(1, nprocs_) + 64) * 2 * 128);
    m.placeAcrossProcs(localArena_,
                       static_cast<std::uint64_t>(nprocs_) *
                           (n / std::max(1, nprocs_) + 64) * 2 * 128);

    bar_ = m.barrierCreate();
    cellLocks_.reserve(kLockGroups);
    for (int i = 0; i < kLockGroups; ++i)
        cellLocks_.push_back(m.lockCreate());
    mergeLock_ = m.lockCreate();
    mergeRank_ = std::make_shared<int>(0);
}

Machine::Program
BarnesApp::program()
{
    const BarnesConfig cfg = cfg_;
    const Addr bodyA = bodyArena_, cellA = cellArena_,
               localA = localArena_;
    const BarrierId bar = bar_;
    const LockId merge_lock = mergeLock_;
    auto merge_rank = mergeRank_;
    const auto* tree = tree_.get();
    const auto* my_bodies = &myBodies_;
    const auto* visits = &visits_;
    const auto* cell_owner = &cellOwner_;
    const auto* cell_depth = &cellDepth_;
    const auto* local_cells = &localCells_;
    const auto* build_owner = &buildOwner_;
    const auto* build_bodies = &buildBodies_;
    const auto* locks = &cellLocks_;
    const std::uint64_t n = cfg_.numBodies;

    return [=](Cpu& cpu) -> Task {
        const int P = cpu.nprocs();
        const int p = cpu.id();
        const auto& mine = (*my_bodies)[p];
        auto body_line = [bodyA](std::uint64_t b) {
            return bodyA + b * 128;
        };
        auto cell_line = [cellA](std::uint32_t c) {
            return cellA + static_cast<Addr>(c) * 128;
        };
        auto lock_of = [&](std::uint32_t c) {
            return (*locks)[c % kLockGroups];
        };
        const std::uint64_t local_base =
            localA + static_cast<Addr>(p) * (n / P + 64) * 2 * 128;

        // ================= Phase 1: tree build =================
        //
        // Byte discipline inside the 128-byte cell record (so the
        // intended line-level sharing carries no same-byte data race):
        //   +0 / +64   geometry + creator-initialized state (written
        //              by the cell's unique creator, under its lock)
        //   +8 / +72   stable fields traversals read
        //   +32..+63   per-proc update slots (4 B x 8; the hot
        //              upper-cell scratch that bounces lines)
        //   +96..+127  child-pointer slot array (4 B x 8, written by
        //              each child's unique creator)
        if (cfg.variant == BarnesVariant::Original) {
            // Insert each body into the shared tree, reading the path
            // and locking/writing cells we modify.
            const auto& cells = tree->cells();
            for (const int b : mine) {
                const auto& path = tree->insertPath(b);
                for (std::size_t pi = 0; pi < path.size(); ++pi) {
                    const int ci = path[pi];
                    // A cell record (children, com, lock) spans two
                    // lines.
                    cpu.read(cell_line(ci) + 8);
                    cpu.read(cell_line(ci) + 72);
                    cpu.busy(12);
                    // Upper-level cells keep being modified (child
                    // slot installs, subdivisions) by every processor
                    // throughout the phase: fine-grained read-write
                    // sharing that bounces those lines machine-wide.
                    // Each proc writes its own 4-byte slot.
                    if ((*cell_depth)[ci] <= 4 && (b + ci) % 4 == 0)
                        cpu.write(cell_line(ci) + 32 + 4 * (p % 8));
                    if (tree->creatorOf(ci) == b) {
                        // We created this cell: lock it (the lock word
                        // lives in the cell record, so locking writes
                        // the cell line and invalidates all readers),
                        // write it, and install the child pointer into
                        // our octant slot of the parent (each slot has
                        // exactly one writer: the child's creator).
                        co_await cpu.acquire(lock_of(ci));
                        cpu.write(cell_line(ci));
                        cpu.write(cell_line(ci) + 64);
                        if (pi > 0) {
                            const int par = path[pi - 1];
                            int slot = 0;
                            for (int s = 0; s < 8; ++s)
                                if (cells[par].child[s] == ci)
                                    slot = s;
                            cpu.write(cell_line(par) + 96 + 4 * slot);
                        }
                        cpu.release(lock_of(ci));
                    }
                }
                // Attach the body at the final cell; the embedded
                // lock word makes the acquire itself write the line.
                const std::uint32_t leaf = path.back();
                co_await cpu.acquire(lock_of(leaf));
                cpu.write(cell_line(leaf));
                cpu.write(cell_line(leaf));
                cpu.release(lock_of(leaf));
                cpu.read(body_line(b));
                co_await cpu.checkpoint();
            }
        } else if (cfg.variant == BarnesVariant::MergeTree) {
            // Local build: private, communication-free.
            std::uint64_t lc = 0;
            for (const int b : mine) {
                const std::uint64_t len = tree->insertPath(b).size();
                cpu.busy(len * 14);
                cpu.write(local_base + (lc++ % (n / P + 64)) * 128);
                if (lc % 64 == 0)
                    co_await cpu.checkpoint();
            }
            // Merge into the global tree. Later mergers do more work:
            // rank is taken under a lock; work grows with rank.
            co_await cpu.acquire(merge_lock);
            const int rank = (*merge_rank)++;
            cpu.release(merge_lock);
            // Merge our subtree's cells into the global tree: read
            // and write each of our cells in the (page-scattered)
            // global arena, locking at subtree roots.
            const std::uint64_t tree_cells = tree->cells().size();
            std::uint64_t k = 0;
            for (std::uint64_t c = 0; c < tree_cells; ++c) {
                if ((*cell_owner)[c] != p)
                    continue;
                const auto ci = static_cast<std::uint32_t>(c);
                cpu.read(cell_line(ci));
                cpu.busy(40);
                if (k % 8 == 0) {
                    co_await cpu.acquire(lock_of(ci));
                    cpu.write(cell_line(ci));
                    cpu.release(lock_of(ci));
                } else {
                    cpu.write(cell_line(ci));
                }
                if (++k % 16 == 15)
                    co_await cpu.checkpoint();
            }
            // Later mergers collide with already-merged structure:
            // extra reads (often dirty in other caches) and extra
            // computation, growing with merge rank -- the imbalance
            // the paper describes.
            const std::uint64_t extra = static_cast<std::uint64_t>(
                std::max<std::uint64_t>(1, (*local_cells)[p]) *
                (1.5 * rank / std::max(1, P)));
            for (std::uint64_t e = 0; e < extra; ++e) {
                const std::uint32_t ci = static_cast<std::uint32_t>(
                    (static_cast<std::uint64_t>(p) * 2654435761u +
                     e * 40503u) % tree_cells);
                // Stable-field bytes: other procs' in-flight merge
                // writes target offset 0 of the same (dirty) lines.
                cpu.read(cell_line(ci) + 8);
                cpu.busy(30);
                if (e % 16 == 15)
                    co_await cpu.checkpoint();
            }
        } else { // Spatial
            // Proc 0 builds the P-leaf supertree; others wait.
            if (p == 0) {
                for (int k = 0; k < 2 * P; ++k) {
                    cpu.busy(60);
                    cpu.write(cell_line(static_cast<std::uint32_t>(
                        k % tree->cells().size())));
                    if (k % 32 == 31)
                        co_await cpu.checkpoint();
                }
            }
            co_await cpu.barrier(bar);
            // Private subtree build over our assigned *subtrees* --
            // insertion work proportional to the bodies in them (the
            // coarse pieces are imbalanced), writes to our own cells,
            // no locking or sharing.
            {
                std::uint64_t work = (*build_bodies)[p] * 60;
                while (work > 0) {
                    const std::uint64_t step =
                        work < 2000 ? work : 2000;
                    cpu.busy(step);
                    work -= step;
                    co_await cpu.checkpoint();
                }
            }
            std::uint64_t written = 0;
            const std::uint64_t tree_cells = tree->cells().size();
            for (std::uint64_t c = 0; c < tree_cells; ++c) {
                if ((*build_owner)[c] != p)
                    continue;
                cpu.busy(30);
                cpu.write(cell_line(static_cast<std::uint32_t>(c)));
                if (++written % 32 == 0)
                    co_await cpu.checkpoint();
            }
            // Attach to our unique supertree leaf: one write, no lock.
            // The link field at +64 is ours alone; the leaf's space
            // owner writes only the offset-0 bytes during its build.
            cpu.write(cell_line(static_cast<std::uint32_t>(p %
                tree->cells().size())) + 64);
        }
        co_await cpu.barrier(bar);

        // ================= Phase 2: moments (upward pass) ===========
        {
            const std::uint64_t tree_cells = tree->cells().size();
            std::uint64_t done = 0;
            const auto& cells = tree->cells();
            for (std::uint64_t c = 0; c < tree_cells; ++c) {
                if ((*cell_owner)[c] != p)
                    continue;
                // Parents read children (often written by other
                // processors in the build phase: dirty-remote misses).
                for (const int ch : cells[c].child)
                    if (ch >= 0)
                        cpu.read(cell_line(
                            static_cast<std::uint32_t>(ch)));
                cpu.busy(60);
                // Moments land at +64; the child reads above touch the
                // offset-0 geometry bytes, so concurrent upward-pass
                // work on neighboring subtrees stays byte-disjoint
                // (the real code orders it with per-cell counters).
                cpu.write(cell_line(static_cast<std::uint32_t>(c)) +
                          64);
                if (++done % 8 == 0)
                    co_await cpu.checkpoint();
            }
        }
        co_await cpu.barrier(bar);

        // ================= Phase 3: force calculation ===============
        {
            const auto& cells = tree->cells();
            for (const int b : mine) {
                const auto& vl = (*visits)[b];
                int k = 0;
                for (const std::uint32_t ci : vl) {
                    cpu.read(cell_line(ci));
                    // Direct body-body interactions also read the
                    // partner body's record (owned by another proc).
                    const int leaf_body = cells[ci].body;
                    if (leaf_body >= 0)
                        cpu.read(body_line(
                            static_cast<std::uint64_t>(leaf_body)));
                    cpu.busy(cfg.cyclesPerInteraction);
                    if (++k % 16 == 0)
                        co_await cpu.checkpoint();
                }
                // Accumulated force goes to the second half of the
                // body record; partner reads above fetch the position
                // bytes at offset 0 of the same line.
                cpu.write(body_line(b) + 64);
                co_await cpu.checkpoint();
            }
        }
        co_await cpu.barrier(bar);

        // ================= Phase 4: update positions ================
        for (const int b : mine) {
            cpu.read(body_line(b));
            cpu.busy(40);
            cpu.write(body_line(b));
            if (b % 64 == 0)
                co_await cpu.checkpoint();
        }
        co_await cpu.barrier(bar);
        co_return;
    };
}

} // namespace ccnuma::apps
