#include "apps/trace.hh"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <stdexcept>
#include <string_view>
#include <utility>

namespace ccnuma::apps {

namespace {

/// Mnemonic for one op line; the parse table below must agree.
const char*
opMnemonic(sim::OpKind k)
{
    switch (k) {
    case sim::OpKind::Read: return "r";
    case sim::OpKind::Write: return "w";
    case sim::OpKind::Busy: return "b";
    case sim::OpKind::Prefetch: return "pf";
    case sim::OpKind::FetchOp: return "fo";
    case sim::OpKind::Rmw: return "m";
    case sim::OpKind::Checkpoint: return "y";
    case sim::OpKind::Barrier: return "B";
    case sim::OpKind::Acquire: return "L";
    case sim::OpKind::Release: return "U";
    }
    return "?";
}

bool
opHasArg(sim::OpKind k)
{
    return k != sim::OpKind::Checkpoint;
}

void
appendU64(std::string& out, std::uint64_t v)
{
    char buf[24];
    auto [p, ec] = std::to_chars(buf, buf + sizeof(buf), v);
    (void)ec;
    out.append(buf, p);
}

/// Splits trace text into lines and whitespace-separated tokens,
/// tracking line numbers for error messages. Tabs are not accepted —
/// the canonical format uses single spaces and serialize() is the
/// only sanctioned writer.
struct Cursor {
    const std::string& text;
    std::size_t pos = 0;
    int line = 0;

    bool atEnd() const { return pos >= text.size(); }

    /// Next non-empty line as tokens; empty vector means end of input.
    std::vector<std::string_view>
    nextLine()
    {
        std::vector<std::string_view> toks;
        while (toks.empty() && !atEnd()) {
            std::size_t eol = text.find('\n', pos);
            if (eol == std::string::npos)
                eol = text.size();
            ++line;
            std::string_view l(text.data() + pos, eol - pos);
            pos = eol + 1;
            std::size_t i = 0;
            while (i < l.size()) {
                while (i < l.size() && l[i] == ' ')
                    ++i;
                std::size_t j = i;
                while (j < l.size() && l[j] != ' ')
                    ++j;
                if (j > i)
                    toks.push_back(l.substr(i, j - i));
                i = j;
            }
        }
        return toks;
    }
};

bool
parseU64Tok(std::string_view tok, std::uint64_t& out)
{
    if (tok.empty())
        return false;
    auto [p, ec] =
        std::from_chars(tok.data(), tok.data() + tok.size(), out);
    return ec == std::errc{} && p == tok.data() + tok.size();
}

TraceParseResult
fail(int line, std::string msg)
{
    TraceParseResult r;
    r.error = "line " + std::to_string(line) + ": " + std::move(msg);
    return r;
}

/// OpRecorder that captures into a Trace (see recordTrace()).
class TraceBuilder final : public sim::OpRecorder {
  public:
    explicit TraceBuilder(Trace& t) : t_(t) {}

    void
    onAlloc(std::uint64_t bytes) override
    {
        t_.setup.push_back({Trace::Setup::Kind::Alloc, bytes, 0, 0});
    }
    void
    onBarrierCreate(int participants) override
    {
        t_.setup.push_back({Trace::Setup::Kind::Barrier,
                            static_cast<std::uint64_t>(participants), 0,
                            0});
    }
    void
    onLockCreate() override
    {
        t_.setup.push_back({Trace::Setup::Kind::Lock, 0, 0, 0});
    }
    void
    onPlace(sim::Addr addr, std::uint64_t bytes, sim::NodeId node) override
    {
        requirePreRun("place");
        t_.setup.push_back({Trace::Setup::Kind::Place, addr, bytes,
                            static_cast<std::uint64_t>(node)});
    }
    void
    onPlaceAcross(sim::Addr addr, std::uint64_t bytes) override
    {
        requirePreRun("placeAcrossProcs");
        t_.setup.push_back(
            {Trace::Setup::Kind::PlaceAcross, addr, bytes, 0});
    }
    void
    onOp(sim::ProcId p, sim::OpKind kind, std::uint64_t arg) override
    {
        running_ = true;
        t_.ops.at(static_cast<std::size_t>(p)).push_back({kind, arg});
    }

  private:
    void
    requirePreRun(const char* what) const
    {
        // Replay hoists all setup events before the op streams, which
        // is address- and behavior-preserving for allocations and
        // barrier/lock creation but not for page placement (a mid-run
        // place would change the homes later accesses see).
        if (running_)
            throw std::logic_error(
                std::string("trace recording does not support mid-run ") +
                what);
    }

    Trace& t_;
    bool running_ = false;
};

} // namespace

std::uint64_t
Trace::totalOps() const
{
    std::uint64_t n = 0;
    for (const auto& stream : ops)
        n += stream.size();
    return n;
}

std::string
Trace::serialize() const
{
    std::string out;
    out.reserve(64 + setup.size() * 16 + totalOps() * 12);
    out += "ccnuma-trace v1\n";
    if (!app.empty()) {
        out += "app ";
        out += app;
        out += '\n';
    }
    out += "procs ";
    appendU64(out, static_cast<std::uint64_t>(procs));
    out += '\n';
    for (const Setup& s : setup) {
        switch (s.kind) {
        case Setup::Kind::Alloc:
            out += "alloc ";
            appendU64(out, s.a);
            break;
        case Setup::Kind::Barrier:
            out += "barrier ";
            appendU64(out, s.a);
            break;
        case Setup::Kind::Lock:
            out += "lock";
            break;
        case Setup::Kind::Place:
            out += "place ";
            appendU64(out, s.a);
            out += ' ';
            appendU64(out, s.b);
            out += ' ';
            appendU64(out, s.c);
            break;
        case Setup::Kind::PlaceAcross:
            out += "placeacross ";
            appendU64(out, s.a);
            out += ' ';
            appendU64(out, s.b);
            break;
        }
        out += '\n';
    }
    for (std::size_t p = 0; p < ops.size(); ++p) {
        out += "ops ";
        appendU64(out, p);
        out += ' ';
        appendU64(out, ops[p].size());
        out += '\n';
        for (const TraceOp& op : ops[p]) {
            out += opMnemonic(op.kind);
            if (opHasArg(op.kind)) {
                out += ' ';
                appendU64(out, op.arg);
            }
            out += '\n';
        }
    }
    out += "end\n";
    return out;
}

std::string
Trace::hashHex() const
{
    const std::string text = serialize();
    std::uint64_t h = 1469598103934665603ull; // FNV-1a offset basis
    for (const char c : text) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 1099511628211ull; // FNV-1a prime
    }
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h));
    return std::string(buf, 16);
}

TraceParseResult
parseTrace(const std::string& text)
{
    Cursor cur{text};

    auto toks = cur.nextLine();
    if (toks.size() != 2 || toks[0] != "ccnuma-trace" || toks[1] != "v1")
        return fail(cur.line ? cur.line : 1,
                    "expected header 'ccnuma-trace v1'");

    TraceParseResult r;
    Trace& t = r.trace;

    // Optional provenance label, then the mandatory processor count.
    toks = cur.nextLine();
    if (toks.size() == 2 && toks[0] == "app") {
        t.app = std::string(toks[1]);
        toks = cur.nextLine();
    }
    std::uint64_t procs = 0;
    if (toks.size() != 2 || toks[0] != "procs" ||
        !parseU64Tok(toks[1], procs) || procs < 1 || procs > 4096)
        return fail(cur.line, "expected 'procs N' with 1 <= N <= 4096");
    t.procs = static_cast<int>(procs);
    t.ops.resize(procs);

    // Setup events until the first 'ops' block.
    for (toks = cur.nextLine();; toks = cur.nextLine()) {
        if (toks.empty())
            return fail(cur.line, "unexpected end of input (missing 'end')");
        if (toks[0] == "ops")
            break;
        Trace::Setup s;
        if (toks[0] == "alloc" && toks.size() == 2 &&
            parseU64Tok(toks[1], s.a)) {
            s.kind = Trace::Setup::Kind::Alloc;
        } else if (toks[0] == "barrier" && toks.size() == 2 &&
                   parseU64Tok(toks[1], s.a)) {
            s.kind = Trace::Setup::Kind::Barrier;
        } else if (toks[0] == "lock" && toks.size() == 1) {
            s.kind = Trace::Setup::Kind::Lock;
        } else if (toks[0] == "place" && toks.size() == 4 &&
                   parseU64Tok(toks[1], s.a) && parseU64Tok(toks[2], s.b) &&
                   parseU64Tok(toks[3], s.c)) {
            s.kind = Trace::Setup::Kind::Place;
        } else if (toks[0] == "placeacross" && toks.size() == 3 &&
                   parseU64Tok(toks[1], s.a) && parseU64Tok(toks[2], s.b)) {
            s.kind = Trace::Setup::Kind::PlaceAcross;
        } else {
            return fail(cur.line, "bad setup line '" +
                                      std::string(toks[0]) + "'");
        }
        t.setup.push_back(s);
    }

    // One 'ops <proc> <count>' block per processor, ascending.
    for (std::uint64_t expect = 0; expect < procs; ++expect) {
        std::uint64_t p = 0;
        std::uint64_t count = 0;
        if (toks.size() != 3 || toks[0] != "ops" ||
            !parseU64Tok(toks[1], p) || !parseU64Tok(toks[2], count))
            return fail(cur.line, "expected 'ops <proc> <count>'");
        if (p != expect)
            return fail(cur.line, "expected ops block for processor " +
                                      std::to_string(expect) + ", got " +
                                      std::to_string(p));
        auto& stream = t.ops[p];
        // `count` is untrusted input; the shortest op line ("y\n") is
        // two bytes, so the remaining text bounds how many ops can
        // actually follow. Clamping keeps an absurd declared count from
        // turning the reserve into std::length_error/bad_alloc — it
        // becomes a plain "unexpected end of input" parse error below.
        const std::uint64_t maxPossible =
            cur.pos < text.size() ? (text.size() - cur.pos) / 2 : 0;
        stream.reserve(
            static_cast<std::size_t>(std::min(count, maxPossible)));
        for (std::uint64_t i = 0; i < count; ++i) {
            toks = cur.nextLine();
            if (toks.empty())
                return fail(cur.line,
                            "unexpected end of input inside ops block");
            TraceOp op;
            bool needArg = true;
            if (toks[0] == "r") {
                op.kind = sim::OpKind::Read;
            } else if (toks[0] == "w") {
                op.kind = sim::OpKind::Write;
            } else if (toks[0] == "b") {
                op.kind = sim::OpKind::Busy;
            } else if (toks[0] == "pf") {
                op.kind = sim::OpKind::Prefetch;
            } else if (toks[0] == "fo") {
                op.kind = sim::OpKind::FetchOp;
            } else if (toks[0] == "m") {
                op.kind = sim::OpKind::Rmw;
            } else if (toks[0] == "y") {
                op.kind = sim::OpKind::Checkpoint;
                needArg = false;
            } else if (toks[0] == "B") {
                op.kind = sim::OpKind::Barrier;
            } else if (toks[0] == "L") {
                op.kind = sim::OpKind::Acquire;
            } else if (toks[0] == "U") {
                op.kind = sim::OpKind::Release;
            } else {
                return fail(cur.line,
                            "unknown op '" + std::string(toks[0]) + "'");
            }
            if (needArg) {
                if (toks.size() != 2 || !parseU64Tok(toks[1], op.arg))
                    return fail(cur.line, "op '" + std::string(toks[0]) +
                                              "' needs one number");
            } else if (toks.size() != 1) {
                return fail(cur.line, "op 'y' takes no argument");
            }
            stream.push_back(op);
        }
        toks = cur.nextLine();
    }

    if (toks.size() != 1 || toks[0] != "end")
        return fail(cur.line, "expected 'end'");
    if (!cur.nextLine().empty())
        return fail(cur.line, "trailing content after 'end'");

    r.ok = true;
    return r;
}

RecordedTrace
recordTrace(const sim::MachineConfig& cfg, App& app)
{
    RecordedTrace out;
    out.trace.procs = cfg.numProcs;
    out.trace.ops.resize(static_cast<std::size_t>(cfg.numProcs));

    TraceBuilder rec(out.trace);
    sim::Machine m(cfg);
    m.attachOpRecorder(&rec);
    app.setup(m);
    out.run = m.run(app.program());
    out.trace.app = app.name();
    return out;
}

TraceReplayApp::TraceReplayApp(Trace t) : t_(std::move(t))
{
    name_ = "trace:" + (t_.app.empty() ? t_.hashHex() : t_.app);
}

std::string
TraceReplayApp::name() const
{
    return name_;
}

void
TraceReplayApp::setup(sim::Machine& m)
{
    if (m.config().numProcs != t_.procs)
        throw std::invalid_argument(
            "trace recorded for " + std::to_string(t_.procs) +
            " processors, machine has " +
            std::to_string(m.config().numProcs));
    for (const Trace::Setup& s : t_.setup) {
        switch (s.kind) {
        case Trace::Setup::Kind::Alloc:
            m.alloc(s.a);
            break;
        case Trace::Setup::Kind::Barrier:
            barriers_.push_back(
                m.barrierCreate(static_cast<int>(s.a)));
            break;
        case Trace::Setup::Kind::Lock:
            locks_.push_back(m.lockCreate());
            break;
        case Trace::Setup::Kind::Place:
            m.place(s.a, s.b, static_cast<sim::NodeId>(s.c));
            break;
        case Trace::Setup::Kind::PlaceAcross:
            m.placeAcrossProcs(s.a, s.b);
            break;
        }
    }
}

sim::Machine::Program
TraceReplayApp::program()
{
    // The coroutine captures `this`; the replay app must outlive the
    // run, like every other App. Op arguments index barriers_/locks_
    // through .at(): a syntactically valid trace with a dangling
    // index fails *inside* the simulation — exactly the mid-run
    // failure mode the server's cache-poisoning regression exercises.
    return [this](sim::Cpu& cpu) -> sim::Task {
        const auto& stream =
            t_.ops.at(static_cast<std::size_t>(cpu.id()));
        for (const TraceOp& op : stream) {
            switch (op.kind) {
            case sim::OpKind::Read:
                cpu.read(op.arg);
                break;
            case sim::OpKind::Write:
                cpu.write(op.arg);
                break;
            case sim::OpKind::Busy:
                cpu.busy(op.arg);
                break;
            case sim::OpKind::Prefetch:
                cpu.prefetch(op.arg);
                break;
            case sim::OpKind::FetchOp:
                cpu.fetchOp(op.arg);
                break;
            case sim::OpKind::Rmw:
                cpu.rmw(op.arg);
                break;
            case sim::OpKind::Checkpoint:
                co_await cpu.checkpoint();
                break;
            case sim::OpKind::Barrier:
                co_await cpu.barrier(
                    barriers_.at(static_cast<std::size_t>(op.arg)));
                break;
            case sim::OpKind::Acquire:
                co_await cpu.acquire(
                    locks_.at(static_cast<std::size_t>(op.arg)));
                break;
            case sim::OpKind::Release:
                cpu.release(
                    locks_.at(static_cast<std::size_t>(op.arg)));
                break;
            }
        }
    };
}

} // namespace ccnuma::apps
