/**
 * @file
 * Protein skeleton: a hierarchical dependency tree of substructure
 * nodes, each containing parallelizable work. Nodes are assigned to
 * processor groups by estimated workload; with *process regrouping*
 * (the application's contribution), a group that runs out of ready
 * work joins a working group instead of idling.
 */

#ifndef CCNUMA_APPS_PROTEIN_APP_HH
#define CCNUMA_APPS_PROTEIN_APP_HH

#include <vector>

#include "apps/app.hh"
#include "kernels/protein.hh"

namespace ccnuma::apps {

struct ProteinConfig {
    int leaves = 16;           ///< helix16.
    std::uint64_t workPerLeaf = 3'000'000; ///< Cycles per leaf node.
    bool regroup = true;       ///< Process regrouping on/off.
    std::uint64_t seed = 31;
};

class ProteinApp : public App
{
  public:
    explicit ProteinApp(const ProteinConfig& cfg) : cfg_(cfg) {}

    std::string name() const override
    {
        return cfg_.regroup ? "protein" : "protein-noregroup";
    }
    void setup(sim::Machine& m) override;
    sim::Machine::Program program() override;

  private:
    ProteinConfig cfg_;
    int nprocs_ = 0;
    kernels::ProteinTree tree_;
    std::vector<std::vector<int>> levels_;   ///< Depth -> nodes.
    /// Per level, node -> (groupStart, groupSize) processor ranges.
    std::vector<std::vector<std::pair<int, int>>> groups_;
    std::vector<sim::Addr> nodeAddr_;
    sim::BarrierId bar_;
};

} // namespace ccnuma::apps

#endif // CCNUMA_APPS_PROTEIN_APP_HH
