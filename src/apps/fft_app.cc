#include "apps/fft_app.hh"

#include <bit>
#include <cassert>
#include <stdexcept>

namespace ccnuma::apps {

using namespace sim;

void
FftApp::setup(Machine& m)
{
    m_ = &m;
    if (cfg_.logPoints % 2 != 0)
        throw std::invalid_argument("fft: logPoints must be even");
    rows_ = 1ull << (cfg_.logPoints / 2);
    const std::uint64_t bytes = (1ull << cfg_.logPoints) * 16; // complex
    a_ = m.alloc(bytes);
    b_ = m.alloc(bytes);
    // Manual placement: each processor's row partition in its own node.
    m.placeAcrossProcs(a_, bytes);
    m.placeAcrossProcs(b_, bytes);
    bar_ = m.barrierCreate();
}

Machine::Program
FftApp::program()
{
    const FftConfig cfg = cfg_;
    const std::uint64_t rows = rows_;
    const Addr A = a_, B = b_;
    const BarrierId bar = bar_;

    return [cfg, rows, A, B, bar](Cpu& cpu) -> Task {
        const int P = cpu.nprocs();
        const int p = cpu.id();
        const auto [row_b, row_e] = blockRange(rows, P, p);
        const std::uint64_t line_groups = rows / 8; // 8 complex per line
        const int fft_stages = std::countr_zero(rows);

        // Address of the line holding (row, colGroup*8..+7) of a matrix.
        auto line = [rows](Addr base, std::uint64_t row,
                           std::uint64_t col_group) {
            return base + (row * rows + col_group * 8) * 16;
        };
        // Owner of a row under the block partition (for staggering).
        auto block_of_proc = [&](int q) {
            return blockRange(rows, P, q).first / 8;
        };

        // ---- blocked transpose dst[r][c] = src[c][r] ----
        auto transpose = [&](Addr src, Addr dst) -> Task {
            // Destination row groups that intersect our partition.
            const std::uint64_t g_b = row_b / 8;
            const std::uint64_t g_e = (row_e + 7) / 8;
            for (std::uint64_t g = g_b; g < g_e; ++g) {
                // All source row groups, staggered start.
                const std::uint64_t start =
                    cfg.stagger ? block_of_proc((p + 1) % P) : 0;
                for (std::uint64_t k = 0; k < line_groups; ++k) {
                    const std::uint64_t sb =
                        (start + k) % line_groups;
                    if (cfg.prefetch) {
                        const std::uint64_t nb =
                            (start + k + 1) % line_groups;
                        for (int r = 0; r < 8; ++r)
                            cpu.prefetch(line(src, nb * 8 + r, g));
                    }
                    for (int r = 0; r < 8; ++r)
                        cpu.read(line(src, sb * 8 + r, g));
                    cpu.busy(64 * 3); // 8x8 register transpose
                    for (int r = 0; r < 8; ++r) {
                        const std::uint64_t dr = g * 8 + r;
                        if (dr >= row_b && dr < row_e)
                            cpu.write(line(dst, dr, sb));
                    }
                    co_await cpu.nestedCheckpoint();
                }
            }
            co_return;
        };

        // ---- 1-D FFTs over our rows ----
        auto rowffts = [&](Addr mat) -> Task {
            for (std::uint64_t r = row_b; r < row_e; ++r) {
                for (std::uint64_t cg = 0; cg < line_groups; ++cg)
                    cpu.read(line(mat, r, cg));
                cpu.busy(rows * fft_stages * cfg.cyclesPerPoint);
                for (std::uint64_t cg = 0; cg < line_groups; ++cg)
                    cpu.write(line(mat, r, cg));
                co_await cpu.nestedCheckpoint();
            }
            co_return;
        };

        // ---- fused transpose + row FFTs (implicit-transpose try) ----
        auto fused = [&](Addr src, Addr dst) -> Task {
            // Process our rows in groups of 8: gather the group's
            // column blocks from every source row group, interleaved
            // with the FFT computation (reads spread, not bursty).
            for (std::uint64_t r = row_b; r < row_e; r += 8) {
                const std::uint64_t g = r / 8;
                const std::uint64_t start =
                    cfg.stagger ? block_of_proc((p + 1) % P) : 0;
                for (std::uint64_t k = 0; k < line_groups; ++k) {
                    const std::uint64_t sb = (start + k) % line_groups;
                    for (int rr = 0; rr < 8; ++rr)
                        cpu.read(line(src, sb * 8 + rr, g));
                    // A slice of the rows' FFT work between reads.
                    cpu.busy(8 * rows * fft_stages *
                             cfg.cyclesPerPoint / line_groups);
                    for (int rr = 0; rr < 8; ++rr) {
                        const std::uint64_t dr = r + rr;
                        if (dr < row_e)
                            cpu.write(line(dst, dr, sb));
                    }
                    co_await cpu.nestedCheckpoint();
                }
            }
            co_return;
        };

        // Six-step FFT with barriers between phases.
        if (cfg.implicitTranspose) {
            // 1+2+3 fused: transpose A into B while computing the row
            // FFTs.
            CCNUMA_RUN_NESTED(cpu, fused(A, B));
            co_await cpu.barrier(bar);
        } else {
            // 1. transpose A -> B
            CCNUMA_RUN_NESTED(cpu, transpose(A, B));
            co_await cpu.barrier(bar);
            // 2+3. row FFTs + twiddle on B
            CCNUMA_RUN_NESTED(cpu, rowffts(B));
            co_await cpu.barrier(bar);
        }
        // 4. transpose B -> A
        CCNUMA_RUN_NESTED(cpu, transpose(B, A));
        co_await cpu.barrier(bar);
        // 5. row FFTs on A
        CCNUMA_RUN_NESTED(cpu, rowffts(A));
        co_await cpu.barrier(bar);
        // 6. transpose A -> B
        CCNUMA_RUN_NESTED(cpu, transpose(A, B));
        co_await cpu.barrier(bar);
        co_return;
    };
}

} // namespace ccnuma::apps
