/**
 * @file
 * Ocean skeleton: red-black SOR sweeps over an n x n grid with
 * nearest-neighbor communication. Partitions are per-processor
 * contiguous blocks (SPLASH-2 Ocean's 4-D array layout): tiled
 * (near-square subgrids, less inherent communication) or rowwise
 * (strips; no column fragmentation -- the paper's SVM restructuring).
 */

#ifndef CCNUMA_APPS_OCEAN_APP_HH
#define CCNUMA_APPS_OCEAN_APP_HH

#include <vector>

#include "apps/app.hh"

namespace ccnuma::apps {

struct OceanConfig {
    std::uint64_t n = 1026;   ///< Grid side (interior n-2).
    int iterations = 6;       ///< Red-black sweeps simulated.
    bool rowwise = false;     ///< Rowwise strips instead of tiles.
    sim::Cycles cyclesPerPoint = 24;
};

class OceanApp : public App
{
  public:
    explicit OceanApp(const OceanConfig& cfg) : cfg_(cfg) {}

    std::string name() const override
    {
        return cfg_.rowwise ? "ocean-rowwise" : "ocean";
    }
    void setup(sim::Machine& m) override;
    sim::Machine::Program program() override;

    /// Process grid geometry: pr x pc factorization of P.
    static std::pair<int, int> tileGeometry(int nprocs, bool rowwise);

  private:
    OceanConfig cfg_;
    int nprocs_ = 0;
    int pr_ = 1, pc_ = 1;
    /// arena_[p]: contiguous block of proc p, (h+2)x(w+2) doubles for
    /// kGrids grids.
    std::vector<sim::Addr> arena_;
    std::vector<std::uint64_t> h_, w_;
    sim::BarrierId bar_;

    static constexpr int kGrids = 2;
};

} // namespace ccnuma::apps

#endif // CCNUMA_APPS_OCEAN_APP_HH
