#include "apps/registry.hh"

#include <bit>
#include <stdexcept>

#include "apps/barnes_app.hh"
#include "apps/fft_app.hh"
#include "apps/infer_app.hh"
#include "apps/ocean_app.hh"
#include "apps/protein_app.hh"
#include "apps/radix_app.hh"
#include "apps/raytrace_app.hh"
#include "apps/samplesort_app.hh"
#include "apps/shearwarp_app.hh"
#include "apps/volrend_app.hh"
#include "apps/water_app.hh"

namespace ccnuma::apps {

namespace {

[[noreturn]] void
throwUnknownApp(const std::string& name)
{
    std::string msg = "unknown app: " + name + "; valid names:";
    for (const std::string& known : listApps())
        msg += " " + known;
    throw std::invalid_argument(msg);
}

} // namespace

std::uint64_t
basicSize(const std::string& name)
{
    if (name.rfind("fft", 0) == 0)
        return 1u << 20; // 2^20 points (Table 2)
    if (name.rfind("ocean", 0) == 0)
        return 1026; // 1026x1026 grids
    if (name.rfind("radix", 0) == 0 || name.rfind("samplesort", 0) == 0)
        return 1u << 22; // 4M keys
    if (name.rfind("barnes", 0) == 0)
        return 16384; // 16K bodies
    if (name.rfind("water-nsq", 0) == 0)
        return 4096; // molecules
    if (name.rfind("water-spatial", 0) == 0)
        return 4096;
    if (name.rfind("raytrace", 0) == 0)
        return 128; // 128x128 image (ball)
    if (name.rfind("volrend", 0) == 0)
        return 256; // 256^3 head
    if (name.rfind("shearwarp", 0) == 0)
        return 256; // 256^3 head
    if (name.rfind("infer", 0) == 0)
        return 422; // CPCS-422
    if (name.rfind("protein", 0) == 0)
        return 16; // helix16
    throwUnknownApp(name);
}

std::string
sizeUnit(const std::string& name)
{
    if (name.rfind("fft", 0) == 0)
        return "points";
    if (name.rfind("ocean", 0) == 0)
        return "grid";
    if (name.rfind("radix", 0) == 0 || name.rfind("samplesort", 0) == 0)
        return "keys";
    if (name.rfind("barnes", 0) == 0)
        return "bodies";
    if (name.rfind("water", 0) == 0)
        return "molecules";
    if (name.rfind("raytrace", 0) == 0)
        return "image side";
    if (name.rfind("volrend", 0) == 0 || name.rfind("shearwarp", 0) == 0)
        return "volume side";
    if (name.rfind("infer", 0) == 0)
        return "cliques";
    if (name.rfind("protein", 0) == 0)
        return "helix leaves";
    return "size";
}

const std::vector<std::string>&
listApps()
{
    static const std::vector<std::string> names = {
        "barnes",       "barnes-mergetree",
        "barnes-spatial",
        "fft",          "fft-implicit",
        "fft-nostagger", "fft-prefetch",
        "infer",        "infer-static",
        "ocean",        "ocean-rowwise",
        "protein",      "protein-noregroup",
        "radix",        "radix-prefetch",
        "raytrace",     "raytrace-nostatslock",
        "samplesort",   "samplesort-prefetch",
        "shearwarp",    "shearwarp-locality",
        "volrend",      "volrend-balanced",
        "water-nsq",    "water-nsq-interchanged",
        "water-spatial",
    };
    return names;
}

AppPtr
tryMakeApp(const std::string& name, std::uint64_t size)
{
    for (const std::string& known : listApps())
        if (known == name)
            return makeApp(name, size);
    return nullptr;
}

AppPtr
makeApp(const std::string& name, std::uint64_t size)
{
    if (size == 0)
        size = basicSize(name);

    if (name == "fft" || name == "fft-nostagger" ||
        name == "fft-prefetch" || name == "fft-implicit") {
        FftConfig c;
        c.logPoints = std::bit_width(size) - 1;
        if (c.logPoints % 2)
            ++c.logPoints;
        c.stagger = name != "fft-nostagger";
        c.prefetch = name == "fft-prefetch";
        c.implicitTranspose = name == "fft-implicit";
        return std::make_unique<FftApp>(c);
    }
    if (name == "ocean" || name == "ocean-rowwise") {
        OceanConfig c;
        c.n = size;
        c.rowwise = name == "ocean-rowwise";
        return std::make_unique<OceanApp>(c);
    }
    if (name == "radix" || name == "radix-prefetch") {
        RadixConfig c;
        c.numKeys = size;
        c.prefetchHist = name == "radix-prefetch";
        return std::make_unique<RadixApp>(c);
    }
    if (name == "samplesort" || name == "samplesort-prefetch") {
        SampleSortConfig c;
        c.numKeys = size;
        c.prefetchCopy = name == "samplesort-prefetch";
        return std::make_unique<SampleSortApp>(c);
    }
    if (name.rfind("barnes", 0) == 0) {
        BarnesConfig c;
        c.numBodies = size;
        c.variant = name == "barnes-mergetree" ? BarnesVariant::MergeTree
                    : name == "barnes-spatial" ? BarnesVariant::Spatial
                                               : BarnesVariant::Original;
        return std::make_unique<BarnesApp>(c);
    }
    if (name == "water-nsq" || name == "water-nsq-interchanged") {
        WaterNsqConfig c;
        c.numMols = size;
        c.interchanged = name == "water-nsq-interchanged";
        return std::make_unique<WaterNsqApp>(c);
    }
    if (name == "water-spatial") {
        WaterSpConfig c;
        c.numMols = size;
        return std::make_unique<WaterSpApp>(c);
    }
    if (name == "raytrace" || name == "raytrace-nostatslock") {
        RaytraceConfig c;
        c.imageSide = static_cast<int>(size);
        c.statsLock = name == "raytrace";
        return std::make_unique<RaytraceApp>(c);
    }
    if (name == "volrend" || name == "volrend-balanced") {
        VolrendConfig c;
        c.volDim = static_cast<int>(size);
        c.balancedInit = name == "volrend-balanced";
        return std::make_unique<VolrendApp>(c);
    }
    if (name == "shearwarp" || name == "shearwarp-locality") {
        ShearWarpConfig c;
        c.volDim = static_cast<int>(size);
        c.restructured = name == "shearwarp-locality";
        return std::make_unique<ShearWarpApp>(c);
    }
    if (name == "infer" || name == "infer-static") {
        InferConfig c;
        c.numCliques = static_cast<int>(size);
        c.staticWithinClique = name == "infer-static";
        return std::make_unique<InferApp>(c);
    }
    if (name == "protein" || name == "protein-noregroup") {
        ProteinConfig c;
        c.leaves = static_cast<int>(size);
        c.regroup = name == "protein";
        return std::make_unique<ProteinApp>(c);
    }
    throwUnknownApp(name);
}

bool
timingInvariant(const std::string& name)
{
    // Task-queue apps: TaskQueues::fullestVictim picks steal victims by
    // scanning queue occupancy, which depends on who ran when; the
    // dequeue order itself is contention-dependent. barnes-mergetree:
    // each process's merge work scales with its arrival rank at the
    // merge lock. All other apps partition work statically (by process
    // id and problem size), so their op streams are timing-invariant.
    return !(name == "infer" || name == "infer-static" ||
             name == "raytrace" || name == "raytrace-nostatslock" ||
             name == "volrend" || name == "volrend-balanced" ||
             name == "shearwarp" || name == "barnes-mergetree");
}

const std::vector<std::string>&
originalApps()
{
    static const std::vector<std::string> names = {
        "barnes", "infer",       "fft",     "ocean",
        "protein", "radix",      "raytrace", "shearwarp",
        "volrend", "water-nsq",  "water-spatial",
    };
    return names;
}

std::string
restructuredVariant(const std::string& original)
{
    if (original == "barnes")
        return "barnes-spatial";
    if (original == "radix")
        return "samplesort";
    if (original == "water-nsq")
        return "water-nsq-interchanged";
    if (original == "shearwarp")
        return "shearwarp-locality";
    if (original == "infer")
        return "infer-static";
    if (original == "raytrace")
        return "raytrace-nostatslock";
    if (original == "volrend")
        return "volrend-balanced";
    if (original == "ocean")
        return "ocean-rowwise";
    return "";
}

} // namespace ccnuma::apps
