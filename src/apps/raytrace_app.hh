/**
 * @file
 * Raytrace skeleton: tile task queues with stealing over a large,
 * read-shared, spatially diffuse scene working set (the paper's one
 * application that scales at its basic size). Includes the original
 * per-ray statistics lock that the SVM restructuring removes.
 */

#ifndef CCNUMA_APPS_RAYTRACE_APP_HH
#define CCNUMA_APPS_RAYTRACE_APP_HH

#include <memory>
#include <vector>

#include "apps/app.hh"
#include "apps/taskqueue.hh"

namespace ccnuma::apps {

struct RaytraceConfig {
    int imageSide = 128;    ///< Pixels per side ("ball" basic: 128).
    bool statsLock = true;  ///< Original per-ray statistics lock.
    sim::Cycles cyclesPerTest = 1400; ///< Busy per scene/grid read.
    std::uint64_t seed = 5;
};

class RaytraceApp : public App
{
  public:
    explicit RaytraceApp(const RaytraceConfig& cfg) : cfg_(cfg) {}

    std::string name() const override
    {
        return cfg_.statsLock ? "raytrace" : "raytrace-nostatslock";
    }
    void setup(sim::Machine& m) override;
    sim::Machine::Program program() override;

  private:
    RaytraceConfig cfg_;
    int nprocs_ = 0;
    std::vector<std::uint32_t> work_; ///< Per-pixel test counts.
    std::unique_ptr<TaskQueues> queues_;
    sim::Addr scene_ = 0, image_ = 0, stats_ = 0;
    std::uint64_t sceneLines_ = 0;
    sim::BarrierId bar_;
    sim::LockId statsLock_;

    static constexpr int kTile = 4; ///< Tile side in pixels.
};

} // namespace ccnuma::apps

#endif // CCNUMA_APPS_RAYTRACE_APP_HH
