/**
 * @file
 * Application interface: every workload (eleven applications, each with
 * one or more algorithm variants) is an App that allocates its shared
 * arenas on a Machine and supplies the per-processor program.
 */

#ifndef CCNUMA_APPS_APP_HH
#define CCNUMA_APPS_APP_HH

#include <memory>
#include <string>

#include "sim/machine.hh"

namespace ccnuma::apps {

/**
 * One configured application instance.
 *
 * Lifecycle: construct with a problem size, call setup() exactly once on
 * the Machine that will run it (allocates arenas, places pages, creates
 * barriers/locks, precomputes host-side data), then pass program() to
 * Machine::run(). An App instance is bound to one Machine after setup.
 */
class App
{
  public:
    virtual ~App() = default;

    /// Short identifier, e.g. "fft" or "barnes-spatial".
    virtual std::string name() const = 0;

    /// Allocate and place shared data; create synchronization objects.
    virtual void setup(sim::Machine& m) = 0;

    /// The program each simulated processor runs.
    virtual sim::Machine::Program program() = 0;

  protected:
    /// [begin, end) of a block partition of `total` items over `parts`.
    static std::pair<std::uint64_t, std::uint64_t>
    blockRange(std::uint64_t total, int parts, int idx)
    {
        const std::uint64_t b = total * idx / parts;
        const std::uint64_t e = total * (idx + 1) / parts;
        return {b, e};
    }
};

using AppPtr = std::unique_ptr<App>;

} // namespace ccnuma::apps

/**
 * Drive a nested phase coroutine to completion from a top-level program
 * coroutine, forwarding its quantum yields (cpu.nestedCheckpoint()) to
 * the scheduler and its synchronization blocks (cpu.acquire / barrier
 * inside the nested task) to a plain suspension that the grant wakes.
 * Must be used inside a coroutine (it co_awaits).
 */
#define CCNUMA_RUN_NESTED(cpu, expr)                                     \
    do {                                                                 \
        ::ccnuma::sim::Task nested_task_ = (expr);                       \
        (cpu).enterNested();                                             \
        while (!nested_task_.done()) {                                   \
            nested_task_.handle().resume();                              \
            if (nested_task_.done())                                     \
                break;                                                   \
            if ((cpu).consumeNestedBlock())                              \
                co_await (cpu).suspendPlain();                           \
            else                                                         \
                co_await (cpu).checkpoint();                             \
        }                                                                \
        (cpu).exitNested();                                              \
        nested_task_.rethrowIfFailed();                                  \
    } while (0)

#endif // CCNUMA_APPS_APP_HH
