/**
 * @file
 * Infer skeleton: clique-tree belief propagation (CPCS-422-style
 * network). Original version exploits parallelism across cliques with
 * a dynamic shared work queue (great at 32p, communication-scattered
 * at scale); the restructured version uses static partitioning that
 * exploits parallelism only *within* each clique, maximizing locality
 * across the parent/child interface.
 */

#ifndef CCNUMA_APPS_INFER_APP_HH
#define CCNUMA_APPS_INFER_APP_HH

#include <memory>
#include <vector>

#include "apps/app.hh"
#include "apps/taskqueue.hh"
#include "kernels/bayes.hh"

namespace ccnuma::apps {

struct InferConfig {
    int numCliques = 422;     ///< CPCS-422.
    int maxVars = 14;         ///< Largest clique: 2^14 entries.
    bool staticWithinClique = false; ///< The restructured version.
    sim::Cycles cyclesPerEntry = 170;
    std::uint64_t seed = 23;
};

class InferApp : public App
{
    static constexpr int kMaxChunks = 64;

  public:
    explicit InferApp(const InferConfig& cfg) : cfg_(cfg) {}

    std::string name() const override
    {
        return cfg_.staticWithinClique ? "infer-static" : "infer";
    }
    void setup(sim::Machine& m) override;
    sim::Machine::Program program() override;

  private:
    InferConfig cfg_;
    int nprocs_ = 0;
    kernels::CliqueTree tree_;
    std::vector<sim::Addr> tableAddr_;  ///< Clique -> table arena.
    std::vector<int> owner_;            ///< Clique -> static owner.
    std::vector<std::vector<int>> levels_; ///< Depth -> cliques.
    sim::BarrierId bar_;
    std::unique_ptr<TaskQueues> queues_; ///< Dynamic work stealing.
};

} // namespace ccnuma::apps

#endif // CCNUMA_APPS_INFER_APP_HH
