/**
 * @file
 * Scheduler-quantum ablation: simulated results must be insensitive to
 * the scheduling quantum within a reasonable range (the quantum is a
 * simulation parameter, not a machine parameter).
 */

#include <gtest/gtest.h>

#include "apps/registry.hh"
#include "core/study.hh"

using namespace ccnuma;

namespace {

sim::Cycles
runWithQuantum(const char* app, std::uint64_t size, sim::Cycles q)
{
    sim::MachineConfig cfg;
    cfg.numProcs = 16;
    cfg.quantum = q;
    auto a = apps::makeApp(app, size);
    return core::runApp(cfg, *a).time;
}

} // namespace

class QuantumSweep
    : public ::testing::TestWithParam<std::pair<const char*, std::uint64_t>>
{
};

TEST_P(QuantumSweep, TimeInsensitiveToQuantum)
{
    const auto [app, size] = GetParam();
    const sim::Cycles base = runWithQuantum(app, size, 500);
    for (const sim::Cycles q : {250u, 1000u, 2000u}) {
        const sim::Cycles t = runWithQuantum(app, size, q);
        EXPECT_NEAR(static_cast<double>(t), static_cast<double>(base),
                    0.15 * base)
            << app << " quantum=" << q;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Apps, QuantumSweep,
    ::testing::Values(std::make_pair("fft", std::uint64_t{1 << 14}),
                      std::make_pair("ocean", std::uint64_t{130}),
                      std::make_pair("radix", std::uint64_t{1 << 16}),
                      std::make_pair("water-spatial",
                                     std::uint64_t{1024})),
    [](const auto& info) {
        std::string n = info.param.first;
        for (auto& ch : n)
            if (ch == '-')
                ch = '_';
        return n;
    });
