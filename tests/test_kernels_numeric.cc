/**
 * @file
 * Correctness tests for the stencil (Ocean), N-body (Barnes-Hut) and
 * molecular-dynamics (Water) kernels.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "kernels/nbody.hh"
#include "kernels/stencil.hh"
#include "kernels/water.hh"

using namespace ccnuma::kernels;

// ---------------- stencil ----------------

TEST(Stencil, ConvergesToBoundaryValue)
{
    // With constant boundary, the Laplace solution is constant.
    Grid g(16, 5.0);
    const int iters = sorSolve(g, 1.5, 1e-10, 5000);
    EXPECT_LT(iters, 5000);
    for (std::size_t i = 1; i <= 16; ++i)
        for (std::size_t j = 1; j <= 16; ++j)
            EXPECT_NEAR(g.at(i, j), 5.0, 1e-6);
}

TEST(Stencil, ResidualDecreasesMonotonically)
{
    Grid g(32, 1.0);
    double prev = laplaceResidual(g);
    for (int k = 0; k < 5; ++k) {
        for (int it = 0; it < 20; ++it)
            rbSweep(g, 1.2);
        const double r = laplaceResidual(g);
        EXPECT_LE(r, prev + 1e-12);
        prev = r;
    }
}

TEST(Stencil, SweepDeltaShrinks)
{
    Grid g(24, 2.0);
    double d1 = rbSweep(g, 1.0);
    for (int i = 0; i < 50; ++i)
        d1 = rbSweep(g, 1.0);
    const double d2 = rbSweep(g, 1.0);
    EXPECT_LT(d2, d1);
}

// ---------------- N-body ----------------

TEST(NBody, OctreeHoldsEveryBodyExactlyOnce)
{
    const auto bodies = uniformBodies(500, 3);
    Octree t(bodies, 1.0);
    std::multiset<int> found;
    for (const auto& c : t.cells())
        if (c.body >= 0)
            found.insert(c.body);
    EXPECT_EQ(found.size(), 500u);
    for (int b = 0; b < 500; ++b)
        EXPECT_EQ(found.count(b), 1u) << "body " << b;
}

TEST(NBody, InsertPathsStartAtRootAndDescend)
{
    const auto bodies = plummerBodies(200, 4);
    Octree t(bodies, 1.0);
    for (int b = 0; b < 200; ++b) {
        const auto& path = t.insertPath(b);
        ASSERT_FALSE(path.empty());
        EXPECT_EQ(path.front(), 0);
        for (std::size_t i = 1; i < path.size(); ++i)
            EXPECT_EQ(t.cells()[path[i]].parent, path[i - 1])
                << "body " << b << " step " << i;
    }
}

TEST(NBody, MomentsConserveTotalMass)
{
    const auto bodies = plummerBodies(300, 5);
    Octree t(bodies, 1.0);
    t.computeMoments(bodies);
    double total = 0;
    for (const auto& b : bodies)
        total += b.mass;
    EXPECT_NEAR(t.cells()[0].mass, total, 1e-9);
}

TEST(NBody, ForceApproachesDirectSummationForSmallTheta)
{
    auto bodies = uniformBodies(128, 6);
    Octree t(bodies, 1.0);
    t.computeMoments(bodies);
    // Direct summation reference for body 0.
    Vec3 direct;
    for (int j = 1; j < 128; ++j) {
        const Vec3 d = bodies[j].pos - bodies[0].pos;
        const double r2 = d.norm2() + 1e-9;
        direct += d * (bodies[j].mass / (r2 * std::sqrt(r2)));
    }
    bodies[0].acc = Vec3{};
    t.force(bodies, 0, 0.05, nullptr); // tiny theta: near-exact
    EXPECT_NEAR(bodies[0].acc.x, direct.x,
                1e-3 * (std::abs(direct.x) + 1));
    EXPECT_NEAR(bodies[0].acc.y, direct.y,
                1e-3 * (std::abs(direct.y) + 1));
    EXPECT_NEAR(bodies[0].acc.z, direct.z,
                1e-3 * (std::abs(direct.z) + 1));
}

TEST(NBody, LargerThetaMeansFewerInteractions)
{
    auto bodies = plummerBodies(1000, 7);
    Octree t(bodies, 1.0);
    t.computeMoments(bodies);
    const int tight = t.force(bodies, 10, 0.3, nullptr);
    const int loose = t.force(bodies, 10, 1.2, nullptr);
    EXPECT_LT(loose, tight);
    EXPECT_GT(loose, 0);
}

TEST(NBody, MortonOrderGroupsNeighbors)
{
    const auto bodies = uniformBodies(512, 8);
    const auto order = mortonOrder(bodies, 1.0);
    // Adjacent bodies in Morton order are spatially close on average;
    // compare with the average distance of random pairs.
    double adj = 0, rnd = 0;
    for (std::size_t i = 0; i + 1 < order.size(); ++i) {
        adj += (bodies[order[i]].pos - bodies[order[i + 1]].pos)
                   .norm();
        rnd += (bodies[order[i]].pos -
                bodies[order[(i * 257 + 101) % order.size()]].pos)
                   .norm();
    }
    EXPECT_LT(adj, rnd * 0.5);
}

TEST(NBody, CostzoneSplitBalancesCost)
{
    std::vector<double> cost(1000);
    for (std::size_t i = 0; i < cost.size(); ++i)
        cost[i] = 1.0 + (i % 13);
    const auto starts = costzoneSplit(cost, 8);
    ASSERT_EQ(starts.size(), 9u);
    EXPECT_EQ(starts[0], 0u);
    EXPECT_EQ(starts[8], cost.size());
    double total = 0;
    for (const double c : cost)
        total += c;
    for (int p = 0; p < 8; ++p) {
        double part = 0;
        for (std::size_t i = starts[p]; i < starts[p + 1]; ++i)
            part += cost[i];
        EXPECT_NEAR(part, total / 8, total / 8 * 0.25) << "part " << p;
    }
}

// ---------------- water ----------------

TEST(Water, SpatialMatchesNsquaredEnergy)
{
    auto a = latticeMolecules(216, 6.0, 11);
    auto b = a;
    const double cutoff = 1.5;
    const double ea = forcesNsquared(a, 6.0, cutoff);
    const double eb = forcesSpatial(b, 6.0, cutoff, 1.5);
    EXPECT_NEAR(ea, eb, std::abs(ea) * 1e-9 + 1e-9);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_NEAR(a[i].force.x, b[i].force.x, 1e-8);
        EXPECT_NEAR(a[i].force.y, b[i].force.y, 1e-8);
        EXPECT_NEAR(a[i].force.z, b[i].force.z, 1e-8);
    }
}

TEST(Water, NewtonsThirdLaw)
{
    auto mols = latticeMolecules(125, 5.0, 12);
    forcesNsquared(mols, 5.0, 1.4);
    EXPECT_LT(netForceError(mols), 1e-9);
}

TEST(Water, CellListCoversAllMolecules)
{
    const auto mols = latticeMolecules(343, 7.0, 13);
    const CellList cl(mols, 7.0, 1.4);
    std::size_t n = 0;
    const int cells = cl.cellsPerDim() * cl.cellsPerDim() *
                      cl.cellsPerDim();
    for (int c = 0; c < cells; ++c)
        n += cl.members(c).size();
    EXPECT_EQ(n, mols.size());
}

TEST(Water, NeighborsIncludeSelfAndAreUnique)
{
    const auto mols = latticeMolecules(64, 4.0, 14);
    const CellList cl(mols, 4.0, 1.0);
    const auto nb = cl.neighbors(5);
    EXPECT_NE(std::find(nb.begin(), nb.end(), 5), nb.end());
    std::set<int> uniq(nb.begin(), nb.end());
    EXPECT_EQ(uniq.size(), nb.size());
}
