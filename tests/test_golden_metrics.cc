/**
 * @file
 * Golden-metrics regression gate. Recomputes the small-config snapshot
 * for every registered application and diffs it against the committed
 * baseline in tests/golden/ (path injected as CCNUMA_GOLDEN_DIR). A
 * diff means simulated behaviour changed: if intentional, re-bless
 * with `ccnuma_verify golden --bless`; if not, it just caught a
 * regression. Also covers the snapshot machinery itself (JSON
 * round-trip, diff detection, error paths).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "apps/registry.hh"
#include "check/golden.hh"

using namespace ccnuma;

namespace {

std::string
baselinePath()
{
    return std::string(CCNUMA_GOLDEN_DIR) + "/metrics-v1.json";
}

} // namespace

TEST(GoldenMetrics, SnapshotRoundTripsThroughJson)
{
    // A single cheap app keeps this unit test fast; the full-suite
    // regression below reuses one shared snapshot.
    check::GoldenSnapshot snap;
    snap.procs = 4;
    check::GoldenEntry e;
    e.name = "fft";
    e.size = 1u << 14;
    e.seqTime = 18446744073709551615ull; // not double-representable
    e.parTime = 123456789;
    e.speedup = 3.14159265358979;
    e.loads = 42;
    snap.entries.push_back(e);

    const std::string path =
        ::testing::TempDir() + "golden_roundtrip.json";
    std::string err;
    ASSERT_TRUE(check::writeGoldenFile(path, snap, err)) << err;
    check::GoldenSnapshot loaded;
    ASSERT_TRUE(check::loadGoldenFile(path, loaded, err)) << err;
    EXPECT_TRUE(check::diffGolden(snap, loaded).empty());
    EXPECT_EQ(loaded.entries[0].seqTime, 18446744073709551615ull)
        << "uint64 cycle count did not round-trip exactly";
    std::remove(path.c_str());
}

TEST(GoldenMetrics, DiffDetectsEveryKindOfChange)
{
    check::GoldenSnapshot base;
    check::GoldenEntry e;
    e.name = "fft";
    e.parTime = 100;
    e.speedup = 2.0;
    e.missRemoteDirty = 7;
    base.entries.push_back(e);

    check::GoldenSnapshot cur = base;
    EXPECT_TRUE(check::diffGolden(base, cur).empty());

    cur.entries[0].parTime = 101;
    EXPECT_EQ(check::diffGolden(base, cur).size(), 1u);
    cur = base;
    cur.entries[0].missRemoteDirty = 8;
    EXPECT_EQ(check::diffGolden(base, cur).size(), 1u);
    cur = base;
    cur.entries[0].speedup = 2.0001;
    EXPECT_EQ(check::diffGolden(base, cur).size(), 1u);
    cur = base;
    cur.entries.clear();
    EXPECT_EQ(check::diffGolden(base, cur).size(), 1u) << "missing app";
    cur = base;
    check::GoldenEntry extra;
    extra.name = "brand-new-app";
    cur.entries.push_back(extra);
    EXPECT_EQ(check::diffGolden(base, cur).size(), 1u) << "extra app";
}

TEST(GoldenMetrics, LoaderRejectsBadBaselines)
{
    check::GoldenSnapshot out;
    std::string err;
    EXPECT_FALSE(
        check::loadGoldenFile("/nonexistent/golden.json", out, err));

    const std::string path = ::testing::TempDir() + "golden_bad.json";
    auto tryLoad = [&](const std::string& text) {
        std::ofstream(path) << text;
        std::string e2;
        return check::loadGoldenFile(path, out, e2);
    };
    EXPECT_FALSE(tryLoad("{not json"));
    EXPECT_FALSE(tryLoad(R"({"schema": "something-else"})"));
    EXPECT_FALSE(tryLoad(
        R"({"schema": "ccnuma-golden-metrics", "version": 99,
            "procs": 4, "apps": []})"))
        << "unknown version must be rejected";
    EXPECT_FALSE(tryLoad(
        R"({"schema": "ccnuma-golden-metrics", "version": 1,
            "procs": 4, "apps": [{"name": "fft"}]})"))
        << "incomplete entry must be rejected";
    std::remove(path.c_str());
}

TEST(GoldenMetrics, CurrentBehaviourMatchesCommittedBaseline)
{
    check::GoldenSnapshot baseline;
    std::string err;
    ASSERT_TRUE(check::loadGoldenFile(baselinePath(), baseline, err))
        << err
        << "\n(generate the baseline with `ccnuma_verify golden "
           "--bless`)";

    // The baseline must cover every registered app, so adding an app
    // without re-blessing fails here too.
    EXPECT_EQ(baseline.entries.size(), apps::listApps().size());

    const check::GoldenSnapshot current =
        check::computeGolden(baseline.procs);
    const std::vector<std::string> diffs =
        check::diffGolden(baseline, current);
    std::string all;
    for (const std::string& d : diffs)
        all += "  " + d + "\n";
    EXPECT_TRUE(diffs.empty())
        << "simulated behaviour diverged from tests/golden/"
           "metrics-v1.json:\n"
        << all
        << "re-bless with `ccnuma_verify golden --bless` if this "
           "change is intentional";
}
