/**
 * @file
 * Differential bit-identity suite for the parallel scout/replay engine
 * (sim/parallel.hh).
 *
 * The contract under test: for programs whose operation streams do not
 * depend on simulated timing, a run with MachineConfig::simJobs > 1
 * produces *bit-identical* results — every per-processor counter and
 * cycle accumulator, the completion time, and the page-migration count
 * — to the serial engine, for every worker count. The serial engine
 * stays available behind the `check.serialEngine` seam as the oracle.
 *
 * Synthetic programs cover each operation kind, nested phases, and
 * hostile schedules (skew, contended locks, subset barriers); the
 * app-level sweep in test_parallel_apps.cc extends this to the full
 * registry.
 */

#include <gtest/gtest.h>

#include "apps/app.hh"
#include "sim/machine.hh"

using namespace ccnuma::sim;

namespace {

/// Field-by-field bit-identity check between two runs.
void
expectIdentical(const RunResult& serial, const RunResult& par,
                const std::string& what)
{
    SCOPED_TRACE(what);
    EXPECT_EQ(serial.time, par.time);
    EXPECT_EQ(serial.pageMigrations, par.pageMigrations);
    ASSERT_EQ(serial.procs.size(), par.procs.size());
    for (std::size_t p = 0; p < serial.procs.size(); ++p) {
        SCOPED_TRACE("proc " + std::to_string(p));
        const ProcTimes& st = serial.procs[p].t;
        const ProcTimes& pt = par.procs[p].t;
        EXPECT_EQ(st.busy, pt.busy);
        EXPECT_EQ(st.memStall, pt.memStall);
        EXPECT_EQ(st.syncWait, pt.syncWait);
        EXPECT_EQ(st.syncOp, pt.syncOp);
        EXPECT_EQ(st.lockWait, pt.lockWait);
        EXPECT_EQ(st.barrierWait, pt.barrierWait);
        const ProcCounters& sc = serial.procs[p].c;
        const ProcCounters& pc = par.procs[p].c;
        EXPECT_EQ(sc.loads, pc.loads);
        EXPECT_EQ(sc.stores, pc.stores);
        EXPECT_EQ(sc.l2Hits, pc.l2Hits);
        EXPECT_EQ(sc.missLocal, pc.missLocal);
        EXPECT_EQ(sc.missRemoteClean, pc.missRemoteClean);
        EXPECT_EQ(sc.missRemoteDirty, pc.missRemoteDirty);
        EXPECT_EQ(sc.upgrades, pc.upgrades);
        EXPECT_EQ(sc.invalsSent, pc.invalsSent);
        EXPECT_EQ(sc.invalsReceived, pc.invalsReceived);
        EXPECT_EQ(sc.invalsSpurious, pc.invalsSpurious);
        EXPECT_EQ(sc.updatesSent, pc.updatesSent);
        EXPECT_EQ(sc.updatesReceived, pc.updatesReceived);
        EXPECT_EQ(sc.writebacks, pc.writebacks);
        EXPECT_EQ(sc.prefetchesIssued, pc.prefetchesIssued);
        EXPECT_EQ(sc.prefetchesUseful, pc.prefetchesUseful);
        EXPECT_EQ(sc.pageMigrations, pc.pageMigrations);
        EXPECT_EQ(sc.lockAcquires, pc.lockAcquires);
        EXPECT_EQ(sc.lockContended, pc.lockContended);
        EXPECT_EQ(sc.barriersPassed, pc.barriersPassed);
    }
}

MachineConfig
smallConfig(int procs)
{
    MachineConfig cfg;
    cfg.numProcs = procs;
    cfg.cacheBytes = 64 << 10;
    return cfg;
}

/// A setup callback builds machine objects (arenas, barriers, locks)
/// identically for the oracle and each parallel run; the program
/// factory then closes over the returned handles.
struct Scenario {
    std::function<Machine::Program(Machine&)> build;
};

/// Run the scenario serially (the oracle) and under simJobs in
/// {2, 4, 0}; every parallel run must be bit-identical to the oracle.
void
runDifferential(const MachineConfig& base, const Scenario& sc)
{
    MachineConfig serial_cfg = base;
    serial_cfg.simJobs = 1;
    Machine serial_m(serial_cfg);
    const RunResult oracle = serial_m.run(sc.build(serial_m));

    for (const int jobs : {2, 4, 0}) {
        MachineConfig cfg = base;
        cfg.simJobs = jobs;
        Machine m(cfg);
        const RunResult r = m.run(sc.build(m));
        expectIdentical(oracle, r, "simJobs=" + std::to_string(jobs));
    }

    // The oracle seam: serialEngine forces the serial path even when
    // simJobs asks for parallel execution.
    MachineConfig forced = base;
    forced.simJobs = 4;
    forced.check.serialEngine = true;
    Machine m(forced);
    const RunResult r = m.run(sc.build(m));
    expectIdentical(oracle, r, "serialEngine seam");
}

} // namespace

TEST(ParallelDiff, MixedOpsAndBarriers)
{
    Scenario sc;
    sc.build = [](Machine& m) -> Machine::Program {
        const Addr a = m.alloc(1 << 20);
        const BarrierId bar = m.barrierCreate();
        return [a, bar](Cpu& cpu) -> Task {
            for (int it = 0; it < 4; ++it) {
                for (int i = 0; i < 200; ++i) {
                    cpu.read(a +
                             ((cpu.id() * 571 + i * 131) % 8192) * 128);
                    if (i % 3 == 0)
                        cpu.write(a + ((cpu.id() * 37 + i) % 4096) * 128);
                    cpu.busy(20);
                    co_await cpu.checkpoint();
                }
                co_await cpu.barrier(bar);
            }
            co_return;
        };
    };
    runDifferential(smallConfig(16), sc);
}

TEST(ParallelDiff, ContendedLockCriticalSections)
{
    Scenario sc;
    sc.build = [](Machine& m) -> Machine::Program {
        const Addr a = m.alloc(1 << 16);
        const LockId lk = m.lockCreate();
        return [a, lk](Cpu& cpu) -> Task {
            for (int it = 0; it < 8; ++it) {
                co_await cpu.acquire(lk);
                cpu.read(a);         // shared counter line bounces
                cpu.write(a);
                cpu.busy(50 + 7 * cpu.id());
                cpu.release(lk);
                cpu.busy(100);
                co_await cpu.checkpoint();
            }
            co_return;
        };
    };
    runDifferential(smallConfig(8), sc);
}

TEST(ParallelDiff, SkewedLoadWithSubsetBarrier)
{
    Scenario sc;
    sc.build = [](Machine& m) -> Machine::Program {
        const BarrierId sub = m.barrierCreate(4); // procs 0..3 only
        const BarrierId all = m.barrierCreate();
        return [sub, all](Cpu& cpu) -> Task {
            // Hostile skew: one processor runs far past everyone else
            // (exercises the scout's window jump-ahead).
            const int chunks = cpu.id() == 5 ? 60 : 2;
            for (int i = 0; i < chunks; ++i) {
                cpu.busy(1000);
                co_await cpu.checkpoint();
            }
            if (cpu.id() < 4)
                co_await cpu.barrier(sub);
            co_await cpu.barrier(all);
            cpu.busy(10);
            co_return;
        };
    };
    runDifferential(smallConfig(8), sc);
}

TEST(ParallelDiff, EveryOpKind)
{
    Scenario sc;
    sc.build = [](Machine& m) -> Machine::Program {
        const Addr a = m.alloc(1 << 18);
        const Addr counters = m.alloc(1 << 12);
        const BarrierId bar = m.barrierCreate();
        return [a, counters, bar](Cpu& cpu) -> Task {
            for (int it = 0; it < 3; ++it) {
                for (int i = 0; i < 50; ++i) {
                    cpu.prefetch(a + ((cpu.id() + i + 8) % 1024) * 128);
                    cpu.read(a + ((cpu.id() + i) % 1024) * 128);
                    cpu.busy(10);
                    co_await cpu.checkpoint();
                }
                cpu.fetchOp(counters + 128 * (cpu.id() % 4));
                cpu.rmw(counters + 2048 + 128 * (cpu.id() % 2));
                cpu.readRange(a + cpu.id() * 4096, 1024);
                cpu.writeRange(a + cpu.id() * 4096, 1024);
                co_await cpu.barrier(bar);
            }
            co_return;
        };
    };
    runDifferential(smallConfig(8), sc);
}

TEST(ParallelDiff, NestedPhasesWithSync)
{
    Scenario sc;
    sc.build = [](Machine& m) -> Machine::Program {
        const Addr a = m.alloc(1 << 18);
        const BarrierId bar = m.barrierCreate();
        const LockId lk = m.lockCreate();
        auto phase = [](Cpu& cpu, Addr base, LockId l) -> Task {
            for (int i = 0; i < 120; ++i) {
                cpu.read(base + ((cpu.id() * 13 + i) % 1024) * 128);
                cpu.busy(15);
                co_await cpu.nestedCheckpoint();
            }
            co_await cpu.acquire(l);
            cpu.busy(30);
            cpu.release(l);
            co_return;
        };
        return [a, bar, lk, phase](Cpu& cpu) -> Task {
            for (int it = 0; it < 3; ++it) {
                CCNUMA_RUN_NESTED(cpu, phase(cpu, a, lk));
                co_await cpu.barrier(bar);
            }
            co_return;
        };
    };
    runDifferential(smallConfig(8), sc);
}

TEST(ParallelDiff, ManyLocksFifoHandoff)
{
    Scenario sc;
    sc.build = [](Machine& m) -> Machine::Program {
        std::vector<LockId> locks;
        for (int i = 0; i < 4; ++i)
            locks.push_back(m.lockCreate());
        const Addr a = m.alloc(1 << 16);
        return [locks, a](Cpu& cpu) -> Task {
            for (int it = 0; it < 12; ++it) {
                const LockId lk = locks[(cpu.id() + it) % locks.size()];
                co_await cpu.acquire(lk);
                cpu.write(a + 128 * ((cpu.id() + it) % 64));
                cpu.release(lk);
                cpu.busy(40 + 11 * (cpu.id() % 3));
                co_await cpu.checkpoint();
            }
            co_return;
        };
    };
    runDifferential(smallConfig(16), sc);
}

TEST(ParallelDiff, ExplicitWindowWidths)
{
    // Any window width must be sound: grants are canonically ordered,
    // so width only trades coordination overhead for scout-clock
    // fidelity — never correctness.
    for (const Cycles width : {Cycles{64}, Cycles{1000}, Cycles{100000}}) {
        MachineConfig base = smallConfig(8);
        base.simWindowCycles = width;
        Scenario sc;
        sc.build = [](Machine& m) -> Machine::Program {
            const Addr a = m.alloc(1 << 16);
            const BarrierId bar = m.barrierCreate();
            return [a, bar](Cpu& cpu) -> Task {
                for (int it = 0; it < 3; ++it) {
                    for (int i = 0; i < 100; ++i) {
                        cpu.read(a + ((cpu.id() + 3 * i) % 512) * 128);
                        cpu.busy(25);
                        co_await cpu.checkpoint();
                    }
                    co_await cpu.barrier(bar);
                }
                co_return;
            };
        };
        SCOPED_TRACE("window width " + std::to_string(width));
        runDifferential(base, sc);
    }
}

TEST(ParallelDiff, AppExceptionPropagates)
{
    MachineConfig cfg = smallConfig(8);
    cfg.simJobs = 4;
    Machine m(cfg);
    EXPECT_THROW(m.run([](Cpu& cpu) -> Task {
        if (cpu.id() == 3)
            throw std::logic_error("app bug");
        cpu.busy(10);
        co_return;
    }),
                 std::logic_error);
}

TEST(ParallelDiff, DeadlockDetected)
{
    MachineConfig cfg = smallConfig(8);
    cfg.simJobs = 4;
    Machine m(cfg);
    const BarrierId bar = m.barrierCreate(); // all procs expected
    EXPECT_THROW(m.run([bar](Cpu& cpu) -> Task {
        if (cpu.id() == 0)
            co_await cpu.barrier(bar); // others never arrive
        co_return;
    }),
                 std::runtime_error);
}

TEST(ParallelDiff, MidRunAllocRejected)
{
    MachineConfig cfg = smallConfig(8);
    cfg.simJobs = 4;
    Machine m(cfg);
    EXPECT_THROW(m.run([&m](Cpu& cpu) -> Task {
        cpu.busy(10);
        if (cpu.id() == 0)
            m.alloc(4096); // timing-dependent stream: must throw
        co_return;
    }),
                 std::logic_error);
}

TEST(ParallelDiff, SingleNodeFallsBackToSerial)
{
    // procsPerNode == numProcs: no cross-node latency bound exists, so
    // the dispatcher must quietly use the serial engine.
    MachineConfig cfg = smallConfig(2);
    cfg.procsPerNode = 2;
    cfg.simJobs = 4;
    Scenario sc;
    sc.build = [](Machine& m) -> Machine::Program {
        const Addr a = m.alloc(1 << 14);
        return [a](Cpu& cpu) -> Task {
            cpu.read(a + cpu.id() * 128);
            cpu.busy(100);
            co_return;
        };
    };
    Machine m(cfg);
    const RunResult r = m.run(sc.build(m));
    MachineConfig scfg = cfg;
    scfg.simJobs = 1;
    Machine sm(scfg);
    const RunResult s = sm.run(sc.build(sm));
    expectIdentical(s, r, "single-node fallback");
}
