/**
 * @file
 * Transition-table litmus tests: every state x event cell of every
 * shipped protocol is asserted against its textbook definition, the
 * config sub-objects round-trip through parse()/name(), and the
 * deprecation shim maps the old loose MachineConfig fields onto
 * ProtocolConfig.
 */

#include <gtest/gtest.h>

#include "sim/cache.hh"
#include "sim/config.hh"
#include "sim/protocol.hh"

using namespace ccnuma;
using sim::DirectoryConfig;
using sim::DirFormat;
using sim::LineState;
using sim::NextState;
using sim::Protocol;
using sim::ProtocolConfig;
using sim::ProtocolKind;
using sim::ReqAct;
using sim::RemAct;

namespace {

constexpr int R = sim::kProtoRead;
constexpr int W = sim::kProtoWrite;
constexpr int I = static_cast<int>(LineState::Invalid);
constexpr int S = static_cast<int>(LineState::Shared);
constexpr int M = static_cast<int>(LineState::Dirty);
constexpr int O = static_cast<int>(LineState::Owned);

void
expectReq(const Protocol& p, int op, int st, NextState next, ReqAct act)
{
    EXPECT_EQ(p.req[op][st].next, next)
        << "req[" << op << "][" << st << "].next";
    EXPECT_EQ(p.req[op][st].act, act)
        << "req[" << op << "][" << st << "].act";
}

void
expectRem(const Protocol& p, int op, int st, NextState next, RemAct act)
{
    EXPECT_EQ(p.rem[op][st].next, next)
        << "rem[" << op << "][" << st << "].next";
    EXPECT_EQ(p.rem[op][st].act, act)
        << "rem[" << op << "][" << st << "].act";
}

} // namespace

TEST(ProtocolTable, MesiEveryCell)
{
    const Protocol& p = Protocol::mesi();
    EXPECT_EQ(p.kind, ProtocolKind::MESI);
    EXPECT_FALSE(p.updateBased);
    EXPECT_FALSE(p.ownerForwarding);

    // Requester side: read miss installs Shared, write miss installs
    // Dirty, a write hit on Shared upgrades by invalidating the rest.
    expectReq(p, R, I, NextState::Shared, ReqAct::Fill);
    expectReq(p, R, S, NextState::Same, ReqAct::None);
    expectReq(p, R, M, NextState::Same, ReqAct::None);
    expectReq(p, W, I, NextState::Dirty, ReqAct::Fill);
    expectReq(p, W, S, NextState::Dirty, ReqAct::Invalidate);
    expectReq(p, W, M, NextState::Same, ReqAct::None);

    // Remote side: a read of a dirty line downgrades the owner with a
    // memory writeback; any write destroys every other copy.
    expectRem(p, R, S, NextState::Same, RemAct::None);
    expectRem(p, R, M, NextState::Shared, RemAct::SupplyWriteback);
    expectRem(p, W, S, NextState::Invalid, RemAct::Invalidate);
    expectRem(p, W, M, NextState::Invalid, RemAct::Invalidate);
}

TEST(ProtocolTable, MoesiEveryCell)
{
    const Protocol& p = Protocol::moesi();
    EXPECT_EQ(p.kind, ProtocolKind::MOESI);
    EXPECT_FALSE(p.updateBased);
    EXPECT_TRUE(p.ownerForwarding);

    expectReq(p, R, I, NextState::Shared, ReqAct::Fill);
    expectReq(p, R, S, NextState::Same, ReqAct::None);
    expectReq(p, R, M, NextState::Same, ReqAct::None);
    // An Owned holder reads its own (dirty) data freely and regains
    // exclusivity on a write by invalidating the clean copies.
    expectReq(p, R, O, NextState::Same, ReqAct::None);
    expectReq(p, W, I, NextState::Dirty, ReqAct::Fill);
    expectReq(p, W, S, NextState::Dirty, ReqAct::Invalidate);
    expectReq(p, W, M, NextState::Same, ReqAct::None);
    expectReq(p, W, O, NextState::Dirty, ReqAct::Invalidate);

    // The MOESI point: a read of a dirty line is served by the owner
    // with NO memory writeback; the owner drops to Owned and keeps
    // supplying later readers.
    expectRem(p, R, S, NextState::Same, RemAct::None);
    expectRem(p, R, M, NextState::Owned, RemAct::SupplyKeep);
    expectRem(p, R, O, NextState::Same, RemAct::SupplyKeep);
    expectRem(p, W, S, NextState::Invalid, RemAct::Invalidate);
    expectRem(p, W, M, NextState::Invalid, RemAct::Invalidate);
    expectRem(p, W, O, NextState::Invalid, RemAct::Invalidate);
}

TEST(ProtocolTable, DragonEveryCell)
{
    const Protocol& p = Protocol::dragon();
    EXPECT_EQ(p.kind, ProtocolKind::Dragon);
    EXPECT_TRUE(p.updateBased);
    EXPECT_TRUE(p.ownerForwarding);

    expectReq(p, R, I, NextState::Shared, ReqAct::Fill);
    expectReq(p, R, S, NextState::Same, ReqAct::None);
    expectReq(p, R, M, NextState::Same, ReqAct::None);
    expectReq(p, R, O, NextState::Same, ReqAct::None);
    // Writes never invalidate: a write miss/hit on a shared line sends
    // updates and lands in Sm (Owned) when other copies remain, else M.
    expectReq(p, W, I, NextState::OwnedIfSharers, ReqAct::Fill);
    expectReq(p, W, S, NextState::OwnedIfSharers, ReqAct::Update);
    expectReq(p, W, M, NextState::Same, ReqAct::None);
    expectReq(p, W, O, NextState::OwnedIfSharers, ReqAct::Update);

    // Remote copies survive everything; a remote write refreshes them
    // in place and demotes the old owner to a clean sharer.
    expectRem(p, R, S, NextState::Same, RemAct::None);
    expectRem(p, R, M, NextState::Owned, RemAct::SupplyKeep);
    expectRem(p, R, O, NextState::Same, RemAct::SupplyKeep);
    expectRem(p, W, S, NextState::Same, RemAct::Update);
    expectRem(p, W, M, NextState::Shared, RemAct::Update);
    expectRem(p, W, O, NextState::Shared, RemAct::Update);
}

TEST(ProtocolTable, GetDispatchesByKind)
{
    EXPECT_EQ(&Protocol::get(ProtocolKind::MESI), &Protocol::mesi());
    EXPECT_EQ(&Protocol::get(ProtocolKind::MOESI), &Protocol::moesi());
    EXPECT_EQ(&Protocol::get(ProtocolKind::Dragon),
              &Protocol::dragon());
}

TEST(ProtocolConfigParse, RoundTripsAllKinds)
{
    for (const char* name : {"mesi", "moesi", "dragon"}) {
        ProtocolConfig pc;
        ASSERT_TRUE(pc.parse(name)) << name;
        EXPECT_EQ(pc.name(), name);
        ProtocolConfig back;
        ASSERT_TRUE(back.parse(pc.name()));
        EXPECT_EQ(back.kind, pc.kind);
    }
}

TEST(ProtocolConfigParse, RejectsUnknownAndLeavesConfigUntouched)
{
    ProtocolConfig pc;
    pc.kind = ProtocolKind::MOESI;
    for (const char* bad : {"", "MESI", "mosi", "dragonfly", "mesi "})
        EXPECT_FALSE(pc.parse(bad)) << "'" << bad << "'";
    EXPECT_EQ(pc.kind, ProtocolKind::MOESI);
}

TEST(DirectoryConfigParse, RoundTripsAllFormats)
{
    for (const char* name : {"fullbv", "coarse:4", "ptr:2", "coarse:1",
                             "ptr:64"}) {
        DirectoryConfig dc;
        ASSERT_TRUE(dc.parse(name)) << name;
        EXPECT_EQ(dc.name(), name);
        DirectoryConfig back;
        ASSERT_TRUE(back.parse(dc.name()));
        EXPECT_EQ(back.format, dc.format);
        EXPECT_EQ(back.param, dc.param);
    }
}

TEST(DirectoryConfigParse, RejectsMalformedInput)
{
    DirectoryConfig dc;
    dc.format = DirFormat::CoarseVector;
    dc.param = 8;
    for (const char* bad :
         {"", "full", "coarse", "coarse:", "coarse:0", "coarse:-1",
          "coarse:abc", "ptr", "ptr:", "ptr:0", "ptr:1x", "fullbv:2"})
        EXPECT_FALSE(dc.parse(bad)) << "'" << bad << "'";
    EXPECT_EQ(dc.format, DirFormat::CoarseVector);
    EXPECT_EQ(dc.param, 8);
}

TEST(MachineConfigShim, DeprecatedFieldsResolveIntoProtocolConfig)
{
    // Old call sites that set the loose fields keep working for one
    // release: resolved() copies a non-default value into the
    // ProtocolConfig slot unless the new field was itself customized.
    sim::MachineConfig cfg = sim::MachineConfig::origin2000(4);
    cfg.interventionCycles = 30;
    cfg.invalPerSharerCycles = 7;
    const sim::MachineConfig r = cfg.resolved();
    EXPECT_EQ(r.protocol.interventionCycles, 30u);
    EXPECT_EQ(r.protocol.invalPerSharerCycles, 7u);

    // The new field wins when both are customized.
    sim::MachineConfig both = sim::MachineConfig::origin2000(4);
    both.interventionCycles = 30;
    both.protocol.interventionCycles = 40;
    EXPECT_EQ(both.resolved().protocol.interventionCycles, 40u);

    // Defaults stay defaults.
    const sim::MachineConfig def =
        sim::MachineConfig::origin2000(4).resolved();
    EXPECT_EQ(def.protocol.interventionCycles, 22u);
    EXPECT_EQ(def.protocol.invalPerSharerCycles, 4u);
}

TEST(MachineConfigValidate, RejectsBadProtocolDirectoryCombinations)
{
    sim::MachineConfig cfg = sim::MachineConfig::origin2000(4);
    ASSERT_TRUE(cfg.validate().empty());

    cfg.dirFormat.format = DirFormat::CoarseVector;
    cfg.dirFormat.param = 0;
    EXPECT_FALSE(cfg.validate().empty());
    cfg.dirFormat.param = 4;
    EXPECT_TRUE(cfg.validate().empty());

    // The legacy bit-identity seam only exists for MESI + fullbv.
    sim::MachineConfig legacy = sim::MachineConfig::origin2000(4);
    legacy.check.legacyMesiPath = true;
    EXPECT_TRUE(legacy.validate().empty());
    legacy.protocol.kind = ProtocolKind::MOESI;
    EXPECT_FALSE(legacy.validate().empty());
    legacy.protocol.kind = ProtocolKind::MESI;
    legacy.dirFormat.parse("ptr:2");
    EXPECT_FALSE(legacy.validate().empty());
}
