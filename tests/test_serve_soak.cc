/**
 * @file
 * Soak/determinism test for ccnuma_serve, designed to run under
 * ThreadSanitizer (label: unit-tsan): N concurrent clients pipeline M
 * rounds of mixed requests (studies, traces, pings, malformed lines)
 * over long-lived connections and verify that
 *  - no response is lost or duplicated (matched by request id),
 *  - identical requests produce byte-identical payloads, across
 *    clients and across cached/computed servings,
 *  - rejections never kill a connection,
 * while TSan watches the connection threads, the admission queue, the
 * single-flight cache and the StudyRunner funnel for races.
 */

#include <gtest/gtest.h>

#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "serve/net.hh"
#include "serve/server.hh"

namespace {

using namespace ccnuma;

constexpr int kClients = 8;
constexpr int kRounds = 3;

// Small, fast workloads; every client sends the same mix, so the
// single-flight cache serves most of them without re-simulating.
const char* kTrace =
    "ccnuma-trace v1\\napp soak\\nprocs 2\\nalloc 8192\\nbarrier "
    "2\\nops 0 4\\nb 50\\nw 1048576\\nB 0\\nr 1048704\\nops 1 4\\nb "
    "10\\nw 1048704\\nB 0\\nr 1048576\\nend\\n";

/// The request mix for one round. `kind` keys the cross-client
/// payload-identity map; rejections and pings have no payload.
struct Shape {
    const char* kind;
    std::string body; ///< Everything after the id field.
};

std::vector<Shape>
roundShapes()
{
    return {
        {"ping", R"("type":"ping")"},
        {"fft2",
         R"("type":"study","app":"fft","size":1024,"procs":[2])"},
        {"fft24",
         R"("type":"study","app":"fft","size":1024,"procs":[2,4])"},
        {"trace",
         std::string(R"("type":"trace","trace":")") + kTrace + "\""},
        {"bad", R"("type":"frobnicate")"}, // typed bad-request
    };
}

TEST(ServeSoak, ConcurrentMixedClientsLoseNothingAndStayDeterministic)
{
    serve::ServerOptions so;
    so.workers = 4;
    so.jobs = 2;
    // Every client pipelines its whole request schedule up front, so
    // the queue must absorb the full burst (admission control has its
    // own test; here nothing may be turned away).
    so.maxQueue = static_cast<std::size_t>(kClients) * kRounds * 4;
    serve::Server server(so);
    server.start();

    // kind -> set of distinct payloads observed (must end up size 1).
    std::map<std::string, std::set<std::string>> payloads;
    std::mutex payloadsMu;
    std::vector<std::string> failures(kClients);

    const auto client = [&](const int ci) {
        serve::Fd fd = serve::connectTcp("127.0.0.1", server.port());
        serve::LineReader reader(fd.get(), 64u << 20);

        // Pipeline every request of every round, then collect.
        std::map<std::string, std::string> kindOf; // id -> kind
        for (int round = 0; round < kRounds; ++round)
            for (const Shape& s : roundShapes()) {
                const std::string id = "c" + std::to_string(ci) + "-" +
                                       std::to_string(round) + "-" +
                                       s.kind;
                kindOf[id] = s.kind;
                if (!serve::writeAll(fd.get(),
                                     "{\"id\":\"" + id + "\"," +
                                         s.body + "}\n")) {
                    failures[ci] = "write failed";
                    return;
                }
            }

        std::set<std::string> answered;
        for (std::size_t i = 0; i < kindOf.size(); ++i) {
            std::string line;
            if (reader.next(line) != serve::ReadStatus::Line) {
                failures[ci] = "connection closed after " +
                               std::to_string(i) + " responses";
                return;
            }
            // Cheap field scraping — the protocol test validates real
            // JSON; here we only need id, ok and the payload bytes.
            const auto idPos = line.find("\"id\":\"");
            const auto idEnd = line.find('"', idPos + 6);
            const std::string id =
                line.substr(idPos + 6, idEnd - idPos - 6);
            const auto it = kindOf.find(id);
            if (it == kindOf.end()) {
                failures[ci] = "response to unknown id " + id;
                return;
            }
            if (!answered.insert(id).second) {
                failures[ci] = "duplicate response for id " + id;
                return;
            }
            const bool ok =
                line.find("\"ok\":true") != std::string::npos;
            const std::string& kind = it->second;
            if (kind == "bad") {
                if (ok ||
                    line.find("\"error\":\"bad-request\"") ==
                        std::string::npos) {
                    failures[ci] = "bad request not rejected: " + line;
                    return;
                }
                continue;
            }
            if (!ok) {
                failures[ci] = "request " + id + " failed: " + line;
                return;
            }
            const auto payloadPos = line.find("\"result\"");
            if (kind != "ping") {
                std::lock_guard<std::mutex> lk(payloadsMu);
                payloads[kind].insert(line.substr(payloadPos));
            }
        }
        if (answered.size() != kindOf.size())
            failures[ci] = "lost responses";
    };

    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (int ci = 0; ci < kClients; ++ci)
        threads.emplace_back(client, ci);
    for (auto& t : threads)
        t.join();
    server.stop();

    for (int ci = 0; ci < kClients; ++ci)
        EXPECT_EQ(failures[ci], "") << "client " << ci;

    // Bit-determinism: across 8 clients x 3 rounds, every serving of
    // an identical request carried identical bytes — computed or
    // cached, whichever way the race went.
    for (const auto& [kind, distinct] : payloads)
        EXPECT_EQ(distinct.size(), 1u) << kind << " payloads diverged";

    const serve::ServerStats st = server.stats();
    const std::uint64_t perKind =
        static_cast<std::uint64_t>(kClients) * kRounds;
    EXPECT_EQ(st.served, perKind * 3); // fft2, fft24, trace
    EXPECT_EQ(st.badRequests, perKind);
    // Single-flight + cache: each distinct key simulated exactly once.
    EXPECT_EQ(st.simsRun, 3u);
    EXPECT_EQ(st.cacheHits, perKind * 3 - 3);
}

} // namespace
