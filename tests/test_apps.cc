/**
 * @file
 * Integration tests: every application (and variant) runs to
 * completion on small machines, is deterministic, and exhibits the key
 * qualitative behaviours the study depends on.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "apps/registry.hh"
#include "core/study.hh"

using namespace ccnuma;

namespace {

/// Small problem size per app for fast tests.
std::uint64_t
testSize(const std::string& name)
{
    if (name.rfind("fft", 0) == 0)
        return 1u << 14;
    if (name.rfind("ocean", 0) == 0)
        return 130;
    if (name.rfind("radix", 0) == 0 || name.rfind("samplesort", 0) == 0)
        return 1u << 16;
    if (name.rfind("barnes", 0) == 0)
        return 2048;
    if (name.rfind("water", 0) == 0)
        return 512;
    if (name.rfind("raytrace", 0) == 0)
        return 32;
    if (name.rfind("volrend", 0) == 0 || name.rfind("shearwarp", 0) == 0)
        return 32;
    if (name.rfind("infer", 0) == 0)
        return 64;
    if (name.rfind("protein", 0) == 0)
        return 8;
    return 0;
}

const std::vector<std::string>&
allVariants()
{
    static const std::vector<std::string> v = {
        "fft",
        "fft-nostagger",
        "fft-prefetch",
        "fft-implicit",
        "ocean",
        "ocean-rowwise",
        "radix",
        "radix-prefetch",
        "samplesort",
        "samplesort-prefetch",
        "barnes",
        "barnes-mergetree",
        "barnes-spatial",
        "water-nsq",
        "water-nsq-interchanged",
        "water-spatial",
        "raytrace",
        "raytrace-nostatslock",
        "volrend",
        "volrend-balanced",
        "shearwarp",
        "shearwarp-locality",
        "infer",
        "infer-static",
        "protein",
        "protein-noregroup",
    };
    return v;
}

} // namespace

TEST(Registry, ListAppsCoversEveryVariant)
{
    const auto& listed = apps::listApps();
    for (const std::string& name : allVariants())
        EXPECT_NE(std::find(listed.begin(), listed.end(), name),
                  listed.end())
            << name;
    for (const std::string& name : apps::originalApps())
        EXPECT_NE(std::find(listed.begin(), listed.end(), name),
                  listed.end())
            << name;
}

TEST(Registry, TryMakeAppBuildsEveryListedName)
{
    for (const std::string& name : apps::listApps()) {
        const apps::AppPtr app =
            apps::tryMakeApp(name, testSize(name));
        EXPECT_NE(app, nullptr) << name;
    }
}

TEST(Registry, TryMakeAppReturnsNullForUnknownNames)
{
    EXPECT_EQ(apps::tryMakeApp("no-such-app"), nullptr);
    EXPECT_EQ(apps::tryMakeApp(""), nullptr);
    EXPECT_EQ(apps::tryMakeApp("fft-bogus"), nullptr);
}

TEST(Registry, MakeAppErrorListsValidNames)
{
    try {
        apps::makeApp("no-such-app");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("no-such-app"), std::string::npos);
        EXPECT_NE(msg.find("fft"), std::string::npos);
        EXPECT_NE(msg.find("water-spatial"), std::string::npos);
    }
}

class AppRuns : public ::testing::TestWithParam<std::string>
{
};

TEST_P(AppRuns, CompletesOnEightProcs)
{
    sim::MachineConfig cfg;
    cfg.numProcs = 8;
    auto app = apps::makeApp(GetParam(), testSize(GetParam()));
    const sim::RunResult r = core::runApp(cfg, *app);
    EXPECT_GT(r.time, 0u);
    // Every processor did *something* (ran to completion).
    for (const auto& ps : r.procs)
        EXPECT_GT(ps.t.total(), 0u);
}

TEST_P(AppRuns, CompletesOnOneProc)
{
    const sim::MachineConfig cfg = sim::MachineConfig::uniprocessor();
    auto app = apps::makeApp(GetParam(), testSize(GetParam()));
    const sim::RunResult r = core::runApp(cfg, *app);
    EXPECT_GT(r.procs[0].t.busy, 0u);
}

TEST_P(AppRuns, DeterministicTiming)
{
    auto once = [&] {
        sim::MachineConfig cfg;
        cfg.numProcs = 4;
        auto app = apps::makeApp(GetParam(), testSize(GetParam()));
        return core::runApp(cfg, *app).time;
    };
    EXPECT_EQ(once(), once());
}

INSTANTIATE_TEST_SUITE_P(AllApps, AppRuns,
                         ::testing::ValuesIn(allVariants()),
                         [](const auto& info) {
                             std::string n = info.param;
                             for (auto& ch : n)
                                 if (ch == '-')
                                     ch = '_';
                             return n;
                         });

TEST(AppBehaviour, SpeedupIsReasonableAtEightProcs)
{
    // Compute-dominated apps should get decent speedups at small P.
    for (const char* name : {"water-nsq", "barnes", "raytrace"}) {
        const sim::MachineConfig cfg = sim::MachineConfig::origin2000(8);
        const auto mres = core::measure(
            cfg, [&] { return apps::makeApp(name, testSize(name)); });
        EXPECT_GT(mres.speedup(), 4.0) << name;
        EXPECT_LT(mres.speedup(), 16.0) << name;
    }
}

TEST(AppBehaviour, WaterNsqInterchangeHelpsWhenCacheTooSmall)
{
    // With a cache far smaller than the partner set, the original loop
    // order thrashes and the interchange wins big (Fig 10 d-e).
    sim::MachineConfig cfg;
    cfg.numProcs = 8;
    cfg.cacheBytes = 32u << 10;
    auto orig = apps::makeApp("water-nsq", 2048);
    auto restr = apps::makeApp("water-nsq-interchanged", 2048);
    const auto r0 = core::runApp(cfg, *orig);
    const auto r1 = core::runApp(cfg, *restr);
    EXPECT_LT(r1.time, r0.time / 2);
}

TEST(AppBehaviour, RegistryRejectsUnknown)
{
    EXPECT_THROW(apps::makeApp("nosuchapp", 1), std::invalid_argument);
    EXPECT_THROW(apps::basicSize("nosuchapp"), std::invalid_argument);
}

TEST(AppBehaviour, BasicSizesMatchTable2)
{
    EXPECT_EQ(apps::basicSize("fft"), 1u << 20);
    EXPECT_EQ(apps::basicSize("ocean"), 1026u);
    EXPECT_EQ(apps::basicSize("radix"), 1u << 22);
    EXPECT_EQ(apps::basicSize("barnes"), 16384u);
    EXPECT_EQ(apps::basicSize("water-nsq"), 4096u);
    EXPECT_EQ(apps::basicSize("raytrace"), 128u);
    EXPECT_EQ(apps::basicSize("volrend"), 256u);
    EXPECT_EQ(apps::basicSize("infer"), 422u);
    EXPECT_EQ(apps::basicSize("protein"), 16u);
}

TEST(AppBehaviour, EveryOriginalHasWorkingRestructuredVariant)
{
    for (const auto& name : apps::originalApps()) {
        const std::string restr = apps::restructuredVariant(name);
        if (restr.empty())
            continue;
        sim::MachineConfig cfg;
        cfg.numProcs = 4;
        auto app = apps::makeApp(restr, testSize(restr));
        EXPECT_GT(core::runApp(cfg, *app).time, 0u) << restr;
    }
}
