/**
 * @file
 * Unit tests for the hypercube + metarouter topology and mapping
 * policies.
 */

#include <gtest/gtest.h>

#include <set>

#include "sim/topology.hh"

using namespace ccnuma::sim;

namespace {

MachineConfig
cfgFor(int procs)
{
    MachineConfig cfg;
    cfg.numProcs = procs;
    return cfg;
}

} // namespace

TEST(Topology, NodeAndRouterGeometry32)
{
    Topology t(cfgFor(32));
    EXPECT_EQ(t.numNodes(), 16);
    EXPECT_EQ(t.numRouters(), 8);
    EXPECT_EQ(t.numMetaRouters(), 0);
    EXPECT_EQ(t.nodeOfProc(0), 0);
    EXPECT_EQ(t.nodeOfProc(1), 0);
    EXPECT_EQ(t.nodeOfProc(2), 1);
    EXPECT_EQ(t.routerOfNode(0), 0);
    EXPECT_EQ(t.routerOfNode(1), 0);
    EXPECT_EQ(t.routerOfNode(2), 1);
}

TEST(Topology, Machine128HasMetaRouters)
{
    Topology t(cfgFor(128));
    EXPECT_EQ(t.numNodes(), 64);
    EXPECT_EQ(t.numMetaRouters(), 8);
    // Nodes 0 and 16 are in different 32p modules.
    EXPECT_EQ(t.moduleOfNode(0), 0);
    EXPECT_EQ(t.moduleOfNode(16), 1);
    const Route r = t.route(0, 16);
    EXPECT_EQ(r.metaCrossings, 1);
    EXPECT_GE(r.metaRouter, 0);
    EXPECT_LT(r.metaRouter, 8);
}

TEST(Topology, RouteProperties)
{
    Topology t(cfgFor(64));
    // Same node: zero hops.
    EXPECT_EQ(t.route(3, 3).hops, 0);
    // Same router (nodes 2k, 2k+1): one hop.
    EXPECT_EQ(t.route(0, 1).hops, 1);
    // Symmetry of distance.
    for (NodeId a = 0; a < t.numNodes(); ++a)
        for (NodeId b = 0; b < t.numNodes(); ++b)
            EXPECT_EQ(t.distance(a, b), t.distance(b, a));
}

TEST(Topology, HypercubeDiameter)
{
    // 64 procs -> 32 nodes -> 16 routers -> 4-cube: max distance
    // 1 (enter fabric) + 4 (hamming) = 5.
    Topology t(cfgFor(64));
    int maxd = 0;
    for (NodeId a = 0; a < t.numNodes(); ++a)
        for (NodeId b = 0; b < t.numNodes(); ++b)
            maxd = std::max(maxd, t.route(a, b).hops);
    EXPECT_EQ(maxd, 5);
}

TEST(Topology, CrossModuleAlwaysCrossesMeta)
{
    Topology t(cfgFor(128));
    for (NodeId a = 0; a < 16; ++a)
        for (NodeId b = 16; b < 32; ++b) {
            EXPECT_EQ(t.route(a, b).metaCrossings, 1);
            EXPECT_EQ(t.route(a, b + 16).metaCrossings, 1);
        }
    // Within a module, never.
    for (NodeId a = 0; a < 16; ++a)
        for (NodeId b = 0; b < 16; ++b)
            EXPECT_EQ(t.route(a, b).metaCrossings, 0);
}

TEST(Topology, LinearMappingIsIdentity)
{
    Topology t(cfgFor(32));
    for (ProcId p = 0; p < 32; ++p)
        EXPECT_EQ(t.physicalProc(p), p);
}

TEST(Topology, RandomMappingIsPermutationAndDeterministic)
{
    MachineConfig cfg = cfgFor(64);
    cfg.mapping = Mapping::Random;
    Topology t1(cfg), t2(cfg);
    std::set<ProcId> seen;
    for (ProcId p = 0; p < 64; ++p) {
        seen.insert(t1.physicalProc(p));
        EXPECT_EQ(t1.physicalProc(p), t2.physicalProc(p));
    }
    EXPECT_EQ(seen.size(), 64u);
    // A different seed gives a different permutation.
    cfg.mappingSeed = 999;
    Topology t3(cfg);
    bool differs = false;
    for (ProcId p = 0; p < 64; ++p)
        differs |= t3.physicalProc(p) != t1.physicalProc(p);
    EXPECT_TRUE(differs);
}

TEST(Topology, PairedRandomKeepsPairsCoLocated)
{
    MachineConfig cfg = cfgFor(64);
    cfg.mapping = Mapping::PairedRandom;
    Topology t(cfg);
    std::set<ProcId> seen;
    for (ProcId p = 0; p < 64; p += 2) {
        EXPECT_EQ(t.nodeOfProcess(p), t.nodeOfProcess(p + 1))
            << "pair " << p;
        seen.insert(t.physicalProc(p));
        seen.insert(t.physicalProc(p + 1));
    }
    EXPECT_EQ(seen.size(), 64u);
}

TEST(Topology, ExplicitMappingOverride)
{
    Topology t(cfgFor(4));
    t.setMapping({3, 2, 1, 0});
    EXPECT_EQ(t.physicalProc(0), 3);
    EXPECT_EQ(t.physicalProc(3), 0);
    EXPECT_THROW(t.setMapping({0, 1}), std::invalid_argument);
}

TEST(Topology, OneProcPerNodeUsesMoreNodes)
{
    MachineConfig cfg = cfgFor(32);
    cfg.oneProcPerNode = true;
    Topology t(cfg);
    EXPECT_EQ(t.numNodes(), 32);
    EXPECT_EQ(t.nodeOfProc(5), 5);
}
