/**
 * @file
 * Property test: every registered application variant, run at a small
 * problem size with the SC oracle attached and a periodic
 * validateCoherence() sweep, produces zero violations. This checks the
 * protocol against the full diversity of real access patterns (not
 * just the synthetic stress mixes) — task queues, tree builds,
 * stencils, sort permutations, locks and barriers.
 */

#include <gtest/gtest.h>

#include "apps/registry.hh"
#include "check/golden.hh"
#include "check/oracle.hh"
#include "sim/machine.hh"

using namespace ccnuma;

class AppOracleSweep : public ::testing::TestWithParam<std::string>
{
};

TEST_P(AppOracleSweep, RunsCleanUnderTheOracle)
{
    const std::string name = GetParam();
    // A small cache keeps the cadence sweep (O(cache ways)) cheap and
    // adds eviction/writeback pressure the 4 MB default would hide.
    sim::MachineConfig cfg = sim::MachineConfig::origin2000(4);
    cfg.cacheBytes = 256u << 10;
    cfg.check.validateEvery = 1024;

    sim::Machine m(cfg);
    const apps::AppPtr app =
        apps::makeApp(name, check::goldenSize(name));
    app->setup(m);

    check::ScOracle oracle(m.mem());
    m.mem().attachCommitObserver(&oracle);
    const sim::RunResult r = m.run(app->program());

    EXPECT_GT(r.time, 0u);
    EXPECT_FALSE(oracle.failed())
        << name << ": " << oracle.violations().front().what
        << " (commit " << oracle.violations().front().commit << ")";
    EXPECT_GT(oracle.loadsChecked(), 0u);
    // Exactly one sweep per cadence interval actually reached (tiny
    // apps may finish before the first one).
    EXPECT_EQ(oracle.validations(),
              oracle.commits() / cfg.check.validateEvery)
        << name;
    EXPECT_TRUE(m.mem().validateCoherence().empty()) << name;
}

INSTANTIATE_TEST_SUITE_P(AllApps, AppOracleSweep,
                         ::testing::ValuesIn(apps::listApps()),
                         [](const auto& info) {
                             std::string n = info.param;
                             for (auto& ch : n)
                                 if (ch == '-')
                                     ch = '_';
                             return n;
                         });
