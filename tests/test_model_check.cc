/**
 * @file
 * The ccnuma::model explicit-state checker, checked:
 *
 *  - every {mesi, moesi, dragon} x {fullbv, coarse:4, ptr:2}
 *    combination verifies exhaustively at P = 2, 3 and 4 — the state
 *    space closes, no invariant fires, and the reachable-state counts
 *    are sane;
 *  - the symmetry quotient agrees with the concrete space (same
 *    verdict, strictly fewer canonical states);
 *  - repeated runs are bit-identical (the BFS is deterministic);
 *  - the state cap reports "truncated", never "verified";
 *  - each deliberate protocol corruption — SkipInvalidation,
 *    DropOwnedWriteback, CorruptMoesiTable — is caught on every
 *    combination where its mechanism exists, with a BFS-minimal
 *    counterexample that replays through a fresh engine.
 */

#include <gtest/gtest.h>

#include "model/checker.hh"
#include "model/world.hh"
#include "sim/config.hh"

using namespace ccnuma;

TEST(ModelSweep, EveryComboVerifiesExhaustively)
{
    const std::vector<model::CheckResult> results =
        model::runSweep({2, 3, 4}, 1u << 20,
                        sim::CheckMutation::None);
    ASSERT_EQ(results.size(), 27u);
    for (const model::CheckResult& r : results) {
        EXPECT_TRUE(r.ok) << model::formatResult(r);
        EXPECT_FALSE(r.truncated) << model::formatResult(r);
        // A one-line space is small but never trivial: even P=2 MESI
        // has the {I,S,D} x pending-fill product to cover.
        EXPECT_GT(r.states, 4u) << model::formatResult(r);
        EXPECT_GT(r.transitions, r.states) << model::formatResult(r);
        EXPECT_GE(r.depth, 3) << model::formatResult(r);
    }
}

TEST(ModelSymmetry, QuotientAgreesWithConcreteSpace)
{
    for (const char* proto : {"mesi", "moesi", "dragon"}) {
        model::CheckOptions on;
        on.protocol = proto;
        on.procs = 3;
        model::CheckOptions off = on;
        off.symmetry = false;
        const model::CheckResult a = model::runCheck(on);
        const model::CheckResult b = model::runCheck(off);
        EXPECT_TRUE(a.ok) << model::formatResult(a);
        EXPECT_TRUE(b.ok) << model::formatResult(b);
        EXPECT_EQ(a.symmetryOrder, 6u) << proto;
        EXPECT_EQ(b.symmetryOrder, 1u) << proto;
        // The quotient must shrink the space, not distort it.
        EXPECT_LT(a.states, b.states) << proto;
    }
}

TEST(ModelDeterminism, RepeatedRunsAreIdentical)
{
    model::CheckOptions o;
    o.protocol = "moesi";
    o.dirFormat = "ptr:2";
    o.procs = 3;
    const model::CheckResult a = model::runCheck(o);
    const model::CheckResult b = model::runCheck(o);
    EXPECT_TRUE(a.ok);
    EXPECT_EQ(a.states, b.states);
    EXPECT_EQ(a.transitions, b.transitions);
    EXPECT_EQ(a.depth, b.depth);
}

TEST(ModelTruncation, StateCapReportsTruncatedNotVerified)
{
    model::CheckOptions o;
    o.procs = 4;
    o.maxStates = 5;
    const model::CheckResult r = model::runCheck(o);
    EXPECT_FALSE(r.ok);
    EXPECT_TRUE(r.truncated);
    EXPECT_TRUE(r.invariant.empty()) << r.invariant;
}

TEST(ModelConfig, BadOptionsReportConfigNotViolation)
{
    model::CheckOptions o;
    o.protocol = "mosi";
    model::CheckResult r = model::runCheck(o);
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.invariant, "config");

    o.protocol = "mesi";
    o.procs = 9;
    r = model::runCheck(o);
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.invariant, "config");
}

#ifdef CCNUMA_CHECK_MUTATE

namespace {

/// Assert that `mutation` is caught on protocol x format x P with a
/// replayable counterexample of exactly `steps` transitions breaching
/// `invariant` — BFS guarantees the witness is minimum-length, so the
/// expected depth is part of the contract, not a tolerance.
void
expectCaught(sim::CheckMutation mutation, const char* protocol,
             const char* invariant, std::size_t steps)
{
    for (const char* fmt : {"fullbv", "coarse:4", "ptr:2"}) {
        for (int p : {2, 3, 4}) {
            model::CheckOptions o;
            o.protocol = protocol;
            o.dirFormat = fmt;
            o.procs = p;
            o.mutation = mutation;
            const model::CheckResult r = model::runCheck(o);
            ASSERT_FALSE(r.ok)
                << protocol << " x " << fmt << " P=" << p
                << ": mutation went undetected";
            EXPECT_FALSE(r.truncated);
            EXPECT_EQ(r.invariant, invariant)
                << model::formatResult(r);
            EXPECT_EQ(r.counterexample.size(), steps)
                << model::formatResult(r);
            EXPECT_LE(r.counterexample.size(), 20u);
            EXPECT_TRUE(r.replayed) << model::formatResult(r);
            // Mutated searches run the concrete space: the mutations
            // are not permutation-equivariant.
            EXPECT_EQ(r.symmetryOrder, 1u);
        }
    }
}

} // namespace

TEST(ModelMutation, SkipInvalidationCaughtExhaustively)
{
    // A spared fan-out target keeps a stale valid copy the moment a
    // second processor writes: two steps, stale-read invariant.
    expectCaught(sim::CheckMutation::SkipInvalidation, "mesi",
                 "data-value", 2);
    expectCaught(sim::CheckMutation::SkipInvalidation, "moesi",
                 "data-value", 2);
}

TEST(ModelMutation, DropOwnedWritebackCaughtExhaustively)
{
    // Evicting an Owned copy without the writeback leaves the
    // directory promising current memory over a stale home copy:
    // write, (read|) evict — three steps to reach Owned and drop it.
    expectCaught(sim::CheckMutation::DropOwnedWriteback, "moesi",
                 "memory-currency", 3);
    expectCaught(sim::CheckMutation::DropOwnedWriteback, "dragon",
                 "memory-currency", 3);
}

TEST(ModelMutation, CorruptMoesiTableCaughtExhaustively)
{
    // The zeroed remote-write x Shared cell stops invalidating
    // sharers: same two-step breach as SkipInvalidation, different
    // root cause.
    expectCaught(sim::CheckMutation::CorruptMoesiTable, "moesi",
                 "data-value", 2);
}

TEST(ModelMutation, CounterexampleReplaysThroughAFreshEngine)
{
    // The reported script is an executable witness: replaying it
    // through a brand-new World breaches the same invariant at the
    // same step.
    model::CheckOptions o;
    o.protocol = "moesi";
    o.mutation = sim::CheckMutation::DropOwnedWriteback;
    const model::CheckResult r = model::runCheck(o);
    ASSERT_FALSE(r.ok);
    ASSERT_FALSE(r.counterexample.empty());

    sim::ProtocolConfig proto;
    sim::DirectoryConfig fmt;
    ASSERT_TRUE(proto.parse(o.protocol));
    ASSERT_TRUE(fmt.parse(o.dirFormat));
    model::World w(model::World::makeConfig(proto, fmt, o.procs,
                                            o.mutation));
    EXPECT_EQ(w.replay(r.counterexample),
              r.counterexample.size() - 1);
    EXPECT_EQ(w.invariant(), r.invariant);
    EXPECT_FALSE(w.violation().empty());
}

#else

TEST(ModelMutation, MutationsCaughtExhaustively)
{
    GTEST_SKIP() << "built with CCNUMA_CHECK_MUTATE=OFF";
}

#endif
