/**
 * @file
 * Smoke and integration tests for the Machine execution engine:
 * coroutine scheduling, barriers, locks, determinism and deadlock
 * detection.
 */

#include <gtest/gtest.h>

#include "sim/machine.hh"

using namespace ccnuma::sim;

namespace {

MachineConfig
smallConfig(int procs)
{
    MachineConfig cfg;
    cfg.numProcs = procs;
    cfg.cacheBytes = 64 << 10; // small cache for fast tests
    return cfg;
}

} // namespace

TEST(MachineBasic, SingleProcBusyOnly)
{
    Machine m(smallConfig(1));
    RunResult r = m.run([](Cpu& cpu) -> Task {
        cpu.busy(1000);
        co_return;
    });
    EXPECT_EQ(r.time, 1000u);
    EXPECT_EQ(r.procs[0].t.busy, 1000u);
    EXPECT_EQ(r.procs[0].t.memStall, 0u);
}

TEST(MachineBasic, ReadMissThenHit)
{
    Machine m(smallConfig(1));
    const Addr a = m.alloc(4096);
    RunResult r = m.run([a](Cpu& cpu) -> Task {
        cpu.read(a);
        cpu.read(a);
        co_return;
    });
    EXPECT_EQ(r.procs[0].c.missLocal, 1u);
    EXPECT_EQ(r.procs[0].c.l2Hits, 1u);
    EXPECT_GT(r.procs[0].t.memStall, 0u);
}

TEST(MachineBasic, AllProcsRunAndFinish)
{
    const int P = 8;
    Machine m(smallConfig(P));
    RunResult r = m.run([](Cpu& cpu) -> Task {
        cpu.busy(100 * (cpu.id() + 1));
        co_return;
    });
    EXPECT_EQ(r.time, 800u);
    for (int p = 0; p < P; ++p)
        EXPECT_EQ(r.procs[p].t.busy, 100u * (p + 1));
}

TEST(MachineBasic, BarrierSynchronizesAll)
{
    const int P = 8;
    Machine m(smallConfig(P));
    const BarrierId bar = m.barrierCreate();
    RunResult r = m.run([bar](Cpu& cpu) -> Task {
        // Chunked compute with checkpoints, per the engine's convention
        // that long computation yields at least once per quantum.
        const int chunks = cpu.id() == 3 ? 50 : 1;
        for (int i = 0; i < chunks; ++i) {
            cpu.busy(cpu.id() == 3 ? 1000 : 10);
            co_await cpu.checkpoint();
        }
        co_await cpu.barrier(bar);
        cpu.busy(10);
        co_return;
    });
    // Everyone waits for proc 3; all finish just after it.
    EXPECT_GE(r.time, 50000u);
    for (int p = 0; p < P; ++p) {
        EXPECT_EQ(r.procs[p].c.barriersPassed, 1u);
        if (p != 3) {
            EXPECT_GT(r.procs[p].t.syncWait, 40000u) << "proc " << p;
        }
    }
    // The latecomer barely waits.
    EXPECT_LT(r.procs[3].t.syncWait, 5000u);
}

TEST(MachineBasic, BarrierReusableAcrossPhases)
{
    const int P = 4;
    Machine m(smallConfig(P));
    const BarrierId bar = m.barrierCreate();
    RunResult r = m.run([bar](Cpu& cpu) -> Task {
        for (int it = 0; it < 10; ++it) {
            cpu.busy(100 + 13 * cpu.id());
            co_await cpu.barrier(bar);
        }
        co_return;
    });
    for (int p = 0; p < P; ++p)
        EXPECT_EQ(r.procs[p].c.barriersPassed, 10u);
}

TEST(MachineBasic, LockMutualExclusionSerializes)
{
    const int P = 8;
    Machine m(smallConfig(P));
    const LockId lk = m.lockCreate();
    RunResult r = m.run([lk](Cpu& cpu) -> Task {
        co_await cpu.acquire(lk);
        for (int i = 0; i < 10; ++i) { // long critical section
            cpu.busy(1000);
            co_await cpu.checkpoint();
        }
        cpu.release(lk);
        co_return;
    });
    // Serialized critical sections: total time >= P * section.
    EXPECT_GE(r.time, 8u * 10000u);
    std::uint64_t acquires = 0;
    for (int p = 0; p < P; ++p)
        acquires += r.procs[p].c.lockAcquires;
    EXPECT_EQ(acquires, 8u);
}

TEST(MachineBasic, DeterministicAcrossRuns)
{
    auto once = [] {
        Machine m(smallConfig(16));
        const Addr a = m.alloc(1 << 20);
        const BarrierId bar = m.barrierCreate();
        return m.run([a, bar](Cpu& cpu) -> Task {
            for (int it = 0; it < 4; ++it) {
                for (int i = 0; i < 200; ++i) {
                    cpu.read(a + ((cpu.id() * 571 + i * 131) % 8192) *
                                     128);
                    cpu.busy(20);
                }
                co_await cpu.barrier(bar);
            }
            co_return;
        });
    };
    const RunResult r1 = once();
    const RunResult r2 = once();
    EXPECT_EQ(r1.time, r2.time);
    for (std::size_t p = 0; p < r1.procs.size(); ++p) {
        EXPECT_EQ(r1.procs[p].t.busy, r2.procs[p].t.busy);
        EXPECT_EQ(r1.procs[p].t.memStall, r2.procs[p].t.memStall);
        EXPECT_EQ(r1.procs[p].t.syncWait, r2.procs[p].t.syncWait);
    }
}

TEST(MachineBasic, DeadlockDetected)
{
    Machine m(smallConfig(2));
    const BarrierId bar = m.barrierCreate(); // both procs expected
    EXPECT_THROW(m.run([bar](Cpu& cpu) -> Task {
        if (cpu.id() == 0)
            co_await cpu.barrier(bar); // proc 1 never arrives
        co_return;
    }),
                 std::runtime_error);
}

TEST(MachineBasic, CheckpointYieldsWithoutChangingSemantics)
{
    Machine m(smallConfig(4));
    const Addr a = m.alloc(1 << 16);
    RunResult r = m.run([a](Cpu& cpu) -> Task {
        for (int i = 0; i < 1000; ++i) {
            cpu.read(a + (i % 512) * 128);
            cpu.busy(5);
            co_await cpu.checkpoint();
        }
        co_return;
    });
    for (int p = 0; p < 4; ++p)
        EXPECT_EQ(r.procs[p].c.loads, 1000u);
}

TEST(MachineBasic, AppExceptionPropagates)
{
    Machine m(smallConfig(2));
    EXPECT_THROW(m.run([](Cpu& cpu) -> Task {
        if (cpu.id() == 1)
            throw std::logic_error("app bug");
        cpu.busy(10);
        co_return;
    }),
                 std::logic_error);
}

TEST(MachineBasic, SubsetBarrier)
{
    Machine m(smallConfig(4));
    const BarrierId bar = m.barrierCreate(2); // only procs 0 and 1
    RunResult r = m.run([bar](Cpu& cpu) -> Task {
        if (cpu.id() < 2)
            co_await cpu.barrier(bar);
        cpu.busy(10);
        co_return;
    });
    EXPECT_EQ(r.procs[0].c.barriersPassed, 1u);
    EXPECT_EQ(r.procs[1].c.barriersPassed, 1u);
    EXPECT_EQ(r.procs[2].c.barriersPassed, 0u);
}
