/**
 * @file
 * Differential tests for the flat sharded directory storage.
 *
 * Two layers of evidence that the FlatHashMap-based directory behaves
 * exactly like the std::unordered_map it replaced:
 *  - the container itself, exercised with randomized insert/find/erase
 *    mixes against a std::unordered_map oracle (backward-shift deletion
 *    is the subtle part, so the mixes are erase-heavy and collision-
 *    heavy);
 *  - the whole protocol, by running randomized stress traces on a
 *    hostile tiny-cache machine with the shadow-directory seam enabled
 *    (every DirEntry is mirrored into a reference unordered_map and
 *    compared entry-for-entry at every validateCoherence sweep), and by
 *    checking that a shadowed run is observably identical to a normal
 *    one.
 */

#include <algorithm>
#include <cstdint>
#include <random>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "check/stress.hh"
#include "sim/directory.hh"
#include "sim/flat_hash.hh"

namespace {

using ccnuma::sim::FlatHashMap;

// Randomized op mix against a std::unordered_map oracle. Keys are line
// addresses: page-strided multiples of the line size, the same
// low-entropy pattern the directory sees.
void
differentialRun(std::uint64_t seed, std::uint64_t key_space, int ops)
{
    std::mt19937_64 rng(seed);
    FlatHashMap<std::uint64_t> flat;
    std::unordered_map<std::uint64_t, std::uint64_t> ref;

    auto randKey = [&] {
        return (rng() % key_space) * 128; // line-aligned addresses
    };

    for (int i = 0; i < ops; ++i) {
        const std::uint64_t key = randKey();
        switch (rng() % 4) {
          case 0:   // insert or overwrite
          case 1: {
            const std::uint64_t v = rng();
            flat[key] = v;
            ref[key] = v;
            break;
          }
          case 2: { // erase
            EXPECT_EQ(flat.erase(key), ref.erase(key) > 0);
            break;
          }
          case 3: { // lookup
            const std::uint64_t* fv = flat.find(key);
            auto it = ref.find(key);
            ASSERT_EQ(fv != nullptr, it != ref.end());
            if (fv)
                EXPECT_EQ(*fv, it->second);
            break;
          }
        }
        ASSERT_EQ(flat.size(), ref.size());
    }

    // Full-content sweep both ways.
    std::size_t seen = 0;
    flat.forEach([&](std::uint64_t k, const std::uint64_t& v) {
        auto it = ref.find(k);
        ASSERT_NE(it, ref.end()) << "flat has spurious key " << k;
        EXPECT_EQ(v, it->second);
        ++seen;
    });
    EXPECT_EQ(seen, ref.size());
    for (const auto& [k, v] : ref) {
        const std::uint64_t* fv = flat.find(k);
        ASSERT_NE(fv, nullptr) << "flat lost key " << k;
        EXPECT_EQ(*fv, v);
    }
}

TEST(FlatHashMap, MatchesUnorderedMapDenseKeys)
{
    // Tiny key space: constant churn on the same slots, maximal
    // backward-shift activity.
    for (std::uint64_t seed = 1; seed <= 10; ++seed)
        differentialRun(seed, 32, 4000);
}

TEST(FlatHashMap, MatchesUnorderedMapSparseKeys)
{
    // Wide key space: growth/rehash dominates.
    for (std::uint64_t seed = 1; seed <= 5; ++seed)
        differentialRun(seed, 1 << 16, 8000);
}

TEST(FlatHashMap, EraseDuringCollisionRuns)
{
    // Force long probe chains by inserting many keys, then erase them
    // in a different order while verifying the remainder stays findable.
    FlatHashMap<int> flat;
    std::unordered_map<std::uint64_t, int> ref;
    std::mt19937_64 rng(7);
    std::vector<std::uint64_t> keys;
    for (int i = 0; i < 500; ++i) {
        const std::uint64_t k = rng() % 4096 * 128;
        if (!ref.count(k))
            keys.push_back(k);
        flat[k] = i;
        ref[k] = i;
    }
    std::shuffle(keys.begin(), keys.end(), rng);
    for (const std::uint64_t k : keys) {
        ASSERT_TRUE(flat.erase(k));
        ref.erase(k);
        ASSERT_EQ(flat.size(), ref.size());
        for (const auto& [k2, v2] : ref) {
            const int* fv = flat.find(k2);
            ASSERT_NE(fv, nullptr);
            ASSERT_EQ(*fv, v2);
        }
    }
    EXPECT_TRUE(flat.empty());
}

// ---- whole-protocol differential via the shadow seam ----

ccnuma::check::StressOptions
hostileOptions(std::uint64_t seed, bool shadow)
{
    ccnuma::check::StressOptions opt;
    opt.seed = seed;
    opt.procs = 8;
    opt.opsPerProc = 300;
    opt.validateEvery = 64; // frequent sweeps => frequent shadowDiff
    opt.machine.check.shadowDirectory = shadow;
    return opt;
}

TEST(DirectoryShadow, StressTracesMatchReferenceMap)
{
    // 20 seeds on the hostile tiny-cache stress machine. Any divergence
    // between the flat sharded storage and the reference unordered_map
    // fails validateCoherence, which the report surfaces.
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        const ccnuma::check::StressReport rep =
            ccnuma::check::runStress(hostileOptions(seed, true));
        EXPECT_FALSE(rep.failed)
            << "seed " << seed << ": " << rep.message;
        EXPECT_GT(rep.validations, 0u) << "seed " << seed;
    }
}

TEST(DirectoryShadow, ShadowingIsObservablyInert)
{
    // The shadow seam must not perturb the simulation: a shadowed run
    // and a plain run of the same seed produce identical reports
    // (StressReport equality includes a hash of every processor's
    // timing and counter state, i.e. all transaction classifications).
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        ccnuma::check::StressReport on =
            ccnuma::check::runStress(hostileOptions(seed, true));
        ccnuma::check::StressReport off =
            ccnuma::check::runStress(hostileOptions(seed, false));
        EXPECT_EQ(on, off) << "seed " << seed;
    }
}

TEST(DirectoryShadow, ShadowDiffReportsInjectedDivergence)
{
    // White-box: the public API mirrors every mutation (that is the
    // point of the seam), so the only way to fabricate a divergence is
    // to corrupt a live entry behind the shadow's back. Park the
    // deferred-mirror slot on a different line first, or the next flush
    // would launder the corruption into the reference map too.
    ccnuma::sim::Directory dir(4);
    dir.enableShadow(true);
    ccnuma::sim::DirEntry& e = dir.lookup(0x1000);
    e.state = ccnuma::sim::DirState::Shared;
    e.sharers.add(3);
    EXPECT_TRUE(dir.shadowDiff().empty());
    dir.lookup(0x2000); // pending mirror now tracks 0x2000
    const ccnuma::sim::DirEntry* live = dir.probe(0x1000);
    ASSERT_NE(live, nullptr);
    const_cast<ccnuma::sim::DirEntry*>(live)->sharers.add(5);
    EXPECT_FALSE(dir.shadowDiff().empty());
}

} // namespace
