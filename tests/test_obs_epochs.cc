/**
 * @file
 * Integration tests for the interval-metrics layer: the per-counter sum
 * over all epochs must equal the run's aggregate totals exactly, traced
 * runs must be cycle-identical to untraced ones, and both exporters
 * must emit syntactically valid JSON.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstring>
#include <sstream>
#include <string>

#include "apps/registry.hh"
#include "core/study.hh"
#include "obs/export.hh"
#include "sim/machine.hh"

using namespace ccnuma;
using namespace ccnuma::sim;

namespace {

/**
 * Minimal recursive-descent JSON syntax checker, enough to certify the
 * exporters' output (objects, arrays, strings with escapes, numbers,
 * true/false/null) without pulling in a JSON library.
 */
class JsonChecker
{
  public:
    explicit JsonChecker(const std::string& s) : s_(s) {}

    bool
    valid()
    {
        ws();
        if (!value())
            return false;
        ws();
        return pos_ == s_.size();
    }

  private:
    bool
    value()
    {
        if (pos_ >= s_.size())
            return false;
        switch (s_[pos_]) {
        case '{': return object();
        case '[': return array();
        case '"': return string();
        case 't': return literal("true");
        case 'f': return literal("false");
        case 'n': return literal("null");
        default: return number();
        }
    }

    bool
    object()
    {
        ++pos_; // '{'
        ws();
        if (peek() == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            ws();
            if (!string())
                return false;
            ws();
            if (peek() != ':')
                return false;
            ++pos_;
            ws();
            if (!value())
                return false;
            ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    array()
    {
        ++pos_; // '['
        ws();
        if (peek() == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            ws();
            if (!value())
                return false;
            ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    string()
    {
        if (peek() != '"')
            return false;
        ++pos_;
        while (pos_ < s_.size()) {
            const char c = s_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return false; // raw control char: invalid
            if (c == '\\') {
                ++pos_;
                if (pos_ >= s_.size())
                    return false;
                const char e = s_[pos_];
                if (e == 'u') {
                    for (int i = 0; i < 4; ++i) {
                        ++pos_;
                        if (pos_ >= s_.size() ||
                            !std::isxdigit(
                                static_cast<unsigned char>(s_[pos_])))
                            return false;
                    }
                } else if (!std::strchr("\"\\/bfnrt", e)) {
                    return false;
                }
            }
            ++pos_;
        }
        return false; // unterminated
    }

    bool
    number()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (std::isdigit(static_cast<unsigned char>(peek())))
            ++pos_;
        if (peek() == '.') {
            ++pos_;
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++pos_;
            if (peek() == '+' || peek() == '-')
                ++pos_;
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        return pos_ > start &&
               std::isdigit(static_cast<unsigned char>(s_[pos_ - 1]));
    }

    bool
    literal(const char* lit)
    {
        for (const char* p = lit; *p; ++p, ++pos_)
            if (pos_ >= s_.size() || s_[pos_] != *p)
                return false;
        return true;
    }

    void
    ws()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }

    char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

    const std::string& s_;
    std::size_t pos_ = 0;
};

/// A small program touching every counter class: demand misses,
/// prefetches, a contended shared line (upgrades + invalidations +
/// dirty misses), a lock and several barriers.
struct Workout {
    MachineConfig cfg;
    Addr arr = 0, shared = 0;
    BarrierId bar{};
    LockId lk{};

    explicit Workout(bool traced)
    {
        cfg.numProcs = 8;
        cfg.trace.epochCycles = 2000; // force many epochs
        if (traced) {
            cfg.trace.events = true;
            cfg.trace.intervals = true;
            cfg.trace.sharing = true;
        }
    }

    RunResult
    run()
    {
        Machine m(cfg);
        arr = m.alloc(1u << 16);
        m.placeAcrossProcs(arr, 1u << 16);
        shared = m.allocLine();
        bar = m.barrierCreate();
        lk = m.lockCreate();
        const Addr a = arr, s = shared;
        const BarrierId b = bar;
        const LockId l = lk;
        return m.run([a, s, b, l](Cpu& cpu) -> Task {
            const Addr mine = a + cpu.id() * 8192;
            for (Addr off = 0; off < 8192; off += 128) {
                cpu.prefetch(mine + off);
                cpu.busy(20);
                cpu.write(mine + off);
                co_await cpu.checkpoint();
            }
            co_await cpu.barrier(b);
            for (int round = 0; round < 4; ++round) {
                cpu.read(s);
                cpu.write(s + (cpu.id() % 2) * 8);
                co_await cpu.barrier(b);
            }
            for (int i = 0; i < 3; ++i) {
                co_await cpu.acquire(l);
                cpu.busy(50);
                cpu.release(l);
                co_await cpu.checkpoint();
            }
            co_await cpu.barrier(b);
            co_return;
        });
    }
};

ProcTimes
sumProcTimes(const RunResult& r)
{
    ProcTimes sum;
    for (const ProcStats& p : r.procs) {
        sum.busy += p.t.busy;
        sum.memStall += p.t.memStall;
        sum.syncWait += p.t.syncWait;
        sum.syncOp += p.t.syncOp;
    }
    return sum;
}

void
expectCountersEqual(const ProcCounters& a, const ProcCounters& b)
{
    EXPECT_EQ(a.loads, b.loads);
    EXPECT_EQ(a.stores, b.stores);
    EXPECT_EQ(a.l2Hits, b.l2Hits);
    EXPECT_EQ(a.missLocal, b.missLocal);
    EXPECT_EQ(a.missRemoteClean, b.missRemoteClean);
    EXPECT_EQ(a.missRemoteDirty, b.missRemoteDirty);
    EXPECT_EQ(a.upgrades, b.upgrades);
    EXPECT_EQ(a.invalsSent, b.invalsSent);
    EXPECT_EQ(a.invalsReceived, b.invalsReceived);
    EXPECT_EQ(a.writebacks, b.writebacks);
    EXPECT_EQ(a.prefetchesIssued, b.prefetchesIssued);
    EXPECT_EQ(a.prefetchesUseful, b.prefetchesUseful);
    EXPECT_EQ(a.pageMigrations, b.pageMigrations);
    EXPECT_EQ(a.lockAcquires, b.lockAcquires);
    EXPECT_EQ(a.barriersPassed, b.barriersPassed);
}

} // namespace

TEST(JsonCheckerSelfTest, AcceptsValidRejectsInvalid)
{
    EXPECT_TRUE(JsonChecker(R"({"a": [1, 2.5, -3e4], "b": "x\n"})")
                    .valid());
    EXPECT_TRUE(JsonChecker("[]").valid());
    EXPECT_TRUE(JsonChecker("{\"k\": null}").valid());
    EXPECT_FALSE(JsonChecker("{\"a\": }").valid());
    EXPECT_FALSE(JsonChecker("[1, 2,]").valid());
    EXPECT_FALSE(JsonChecker("{\"a\": 1} trailing").valid());
    EXPECT_FALSE(JsonChecker("\"unterminated").valid());
}

TEST(ObsEpochs, SumOfEpochsEqualsRunTotals)
{
    if (!obs::kTracingCompiled)
        GTEST_SKIP() << "built with CCNUMA_TRACING=OFF";
    Workout w(/*traced=*/true);
    const RunResult r = w.run();
    ASSERT_NE(r.trace, nullptr);
    const ProcCounters totals = r.totals();

    // The workout exercises every class of event it claims to.
    EXPECT_GT(totals.missLocal + totals.missRemoteClean, 0u);
    EXPECT_GT(totals.missRemoteDirty, 0u);
    EXPECT_GT(totals.upgrades, 0u);
    EXPECT_GT(totals.invalsSent, 0u);
    EXPECT_GT(totals.prefetchesIssued, 0u);
    EXPECT_GT(totals.lockAcquires, 0u);
    EXPECT_GT(totals.barriersPassed, 0u);

    expectCountersEqual(r.trace->epochs().sumCounters(), totals);

    const ProcTimes et = r.trace->epochs().sumTimes();
    const ProcTimes rt = sumProcTimes(r);
    EXPECT_EQ(et.busy, rt.busy);
    EXPECT_EQ(et.memStall, rt.memStall);
    EXPECT_EQ(et.syncWait, rt.syncWait);
    EXPECT_EQ(et.syncOp, rt.syncOp);

    // Events were captured without overflow at the default capacity,
    // and the series is genuinely sliced (not one giant epoch).
    EXPECT_GT(r.trace->events().recorded(), 0u);
    EXPECT_EQ(r.trace->events().dropped(), 0u);
    EXPECT_GE(r.trace->epochs().numEpochs(), 2u);
    EXPECT_LE(r.trace->epochs().numEpochs(),
              r.time / r.trace->epochs().epochCycles() + 1);
}

TEST(ObsEpochs, SumOfEpochsEqualsRunTotalsOnRegistryApp)
{
    if (!obs::kTracingCompiled)
        GTEST_SKIP() << "built with CCNUMA_TRACING=OFF";
    MachineConfig cfg;
    cfg.numProcs = 8;
    cfg.trace.events = true;
    cfg.trace.intervals = true;
    cfg.trace.sharing = true;
    cfg.trace.epochCycles = 50000;
    auto app = apps::makeApp("fft", 1u << 14);
    const RunResult r = core::runApp(cfg, *app);
    ASSERT_NE(r.trace, nullptr);
    expectCountersEqual(r.trace->epochs().sumCounters(), r.totals());
    const ProcTimes et = r.trace->epochs().sumTimes();
    const ProcTimes rt = sumProcTimes(r);
    EXPECT_EQ(et.busy, rt.busy);
    EXPECT_EQ(et.memStall, rt.memStall);
    EXPECT_EQ(et.syncWait, rt.syncWait);
    EXPECT_EQ(et.syncOp, rt.syncOp);
}

TEST(ObsEpochs, TracingIsCycleIdentical)
{
    Workout off(/*traced=*/false);
    const RunResult r_off = off.run();
    EXPECT_EQ(r_off.trace, nullptr);

    Workout on(/*traced=*/true);
    const RunResult r_on = on.run();

    EXPECT_EQ(r_on.time, r_off.time)
        << "tracing must never perturb simulated time";
    expectCountersEqual(r_on.totals(), r_off.totals());
    const ProcTimes t_on = sumProcTimes(r_on);
    const ProcTimes t_off = sumProcTimes(r_off);
    EXPECT_EQ(t_on.busy, t_off.busy);
    EXPECT_EQ(t_on.memStall, t_off.memStall);
    EXPECT_EQ(t_on.syncWait, t_off.syncWait);
    EXPECT_EQ(t_on.syncOp, t_off.syncOp);
}

TEST(ObsEpochs, HistogramsCoverDemandMisses)
{
    if (!obs::kTracingCompiled)
        GTEST_SKIP() << "built with CCNUMA_TRACING=OFF";
    Workout w(/*traced=*/true);
    const RunResult r = w.run();
    ASSERT_NE(r.trace, nullptr);
    const ProcCounters totals = r.totals();
    const auto& hl = r.trace->histLocal();
    const auto& hc = r.trace->histRemoteClean();
    const auto& hd = r.trace->histRemoteDirty();
    // Prefetch-folded misses bypass the histograms, so demand misses
    // bound the sample counts from above.
    EXPECT_LE(hl.count(), totals.missLocal);
    EXPECT_LE(hc.count(), totals.missRemoteClean);
    EXPECT_LE(hd.count(), totals.missRemoteDirty);
    EXPECT_GT(hd.count(), 0u) << "the shared line forces dirty misses";
    EXPECT_GE(hd.mean(), static_cast<double>(hd.min()));
    EXPECT_LE(hd.mean(), static_cast<double>(hd.max()));
    EXPECT_GE(hd.quantile(0.95), hd.quantile(0.5));
}

TEST(ObsExport, ChromeTraceIsValidJson)
{
    if (!obs::kTracingCompiled)
        GTEST_SKIP() << "built with CCNUMA_TRACING=OFF";
    Workout w(/*traced=*/true);
    const RunResult r = w.run();
    ASSERT_NE(r.trace, nullptr);
    std::ostringstream os;
    obs::writeChromeTrace(os, *r.trace);
    const std::string doc = os.str();
    EXPECT_TRUE(JsonChecker(doc).valid()) << "invalid Chrome trace JSON";
    EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(doc.find("\"displayTimeUnit\""), std::string::npos);
    EXPECT_NE(doc.find("thread_name"), std::string::npos);
    EXPECT_NE(doc.find("miss_remote_dirty"), std::string::npos);
}

TEST(ObsExport, MetricsJsonIsValidAndEchoesTotals)
{
    if (!obs::kTracingCompiled)
        GTEST_SKIP() << "built with CCNUMA_TRACING=OFF";
    Workout w(/*traced=*/true);
    const RunResult r = w.run();
    ASSERT_NE(r.trace, nullptr);
    std::ostringstream os;
    obs::writeMetricsJson(os, *r.trace, &r);
    const std::string doc = os.str();
    EXPECT_TRUE(JsonChecker(doc).valid()) << "invalid metrics JSON";
    EXPECT_NE(doc.find("\"epochs\""), std::string::npos);
    EXPECT_NE(doc.find("\"latencyHistograms\""), std::string::npos);
    EXPECT_NE(doc.find("\"hotLines\""), std::string::npos);
    EXPECT_NE(doc.find("\"totals\""), std::string::npos);
    // The authoritative run time is echoed verbatim.
    EXPECT_NE(doc.find("\"runCycles\": " + std::to_string(r.time)),
              std::string::npos);
    // Without a RunResult the document still stands on its own.
    std::ostringstream os2;
    obs::writeMetricsJson(os2, *r.trace, nullptr);
    EXPECT_TRUE(JsonChecker(os2.str()).valid());
}
