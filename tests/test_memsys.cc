/**
 * @file
 * Protocol and latency tests for the memory system, including the
 * Table 1 calibration (338/656/892 ns at 195 MHz) and contention
 * behaviour at Hubs and memories.
 */

#include <gtest/gtest.h>

#include "sim/machine.hh"

using namespace ccnuma::sim;

namespace {

MachineConfig
baseCfg(int procs)
{
    MachineConfig cfg;
    cfg.numProcs = procs;
    return cfg;
}

} // namespace

TEST(MemSysLatency, Table1LocalMiss)
{
    MachineConfig cfg = baseCfg(2);
    Machine m(cfg);
    const Addr a = m.alloc(1 << 16);
    m.place(a, 1 << 16, 0); // home at node 0 == proc 0's node
    RunResult r = m.run([a](Cpu& cpu) -> Task {
        if (cpu.id() == 0)
            cpu.read(a);
        co_return;
    });
    const Cycles stall = r.procs[0].t.memStall;
    const double ns = stall * cfg.nsPerCycle();
    EXPECT_NEAR(ns, 338.0, 10.0) << "local miss should be ~338 ns";
    EXPECT_EQ(r.procs[0].c.missLocal, 1u);
}

TEST(MemSysLatency, Table1RemoteClean)
{
    // Proc 0 on node 0 reads data homed on node 2 (one router hop).
    MachineConfig cfg = baseCfg(8);
    Machine m(cfg);
    const Addr a = m.alloc(1 << 16);
    m.place(a, 1 << 16, 1); // nearest remote: sibling node on our router
    RunResult r = m.run([a](Cpu& cpu) -> Task {
        if (cpu.id() == 0)
            cpu.read(a);
        co_return;
    });
    const double ns = r.procs[0].t.memStall * cfg.nsPerCycle();
    EXPECT_NEAR(ns, 656.0, 25.0) << "nearest remote clean ~656 ns";
    EXPECT_EQ(r.procs[0].c.missRemoteClean, 1u);
}

TEST(MemSysLatency, Table1RemoteDirtyThirdNode)
{
    // Proc 4 (node 2) dirties a line homed on node 1; proc 0 (node 0)
    // then reads it: a 3-hop transaction through home and owner.
    MachineConfig cfg = baseCfg(8);
    Machine m(cfg);
    const Addr a = m.alloc(1 << 16);
    m.place(a, 1 << 16, 1);
    const BarrierId bar = m.barrierCreate();
    RunResult r = m.run([a, bar](Cpu& cpu) -> Task {
        if (cpu.id() == 4)
            cpu.write(a);
        co_await cpu.barrier(bar);
        if (cpu.id() == 0)
            cpu.read(a);
        co_return;
    });
    const double ns = r.procs[0].t.memStall * cfg.nsPerCycle();
    EXPECT_NEAR(ns, 892.0, 60.0) << "remote dirty in 3rd node ~892 ns";
    EXPECT_EQ(r.procs[0].c.missRemoteDirty, 1u);
}

TEST(MemSysLatency, RemoteToLocalRatios)
{
    // Table 1's Origin2000 row: remote/local clean ~2:1, dirty ~3:1.
    MachineConfig cfg = baseCfg(8);
    const MemSys* msp = nullptr;
    Machine m(cfg);
    msp = &m.mem();
    const Cycles local = msp->pureFetch(0, 0);
    const Cycles clean = msp->pureFetch(0, 2);
    const Cycles dirty = msp->pureDirty(0, 1, 2);
    EXPECT_NEAR(static_cast<double>(clean) / local, 2.0, 0.25);
    EXPECT_NEAR(static_cast<double>(dirty) / local, 3.0, 0.4);
}

TEST(MemSys, FartherNodesCostMore)
{
    MachineConfig cfg = baseCfg(64);
    Machine m(cfg);
    const MemSys& ms = m.mem();
    // Monotone in hop count within a module.
    const Cycles near = ms.pureFetch(0, 1);   // same router
    const Cycles mid = ms.pureFetch(0, 2);    // 1 cube hop
    const Cycles far = ms.pureFetch(0, 30);   // more cube hops
    EXPECT_LT(near, mid);
    EXPECT_LT(mid, far);
}

TEST(MemSys, MetaRouterCrossingAddsLatency)
{
    MachineConfig cfg = baseCfg(128);
    Machine m(cfg);
    const MemSys& ms = m.mem();
    const Cycles inModule = ms.pureFetch(0, 15);
    const Cycles crossModule = ms.pureFetch(0, 16);
    EXPECT_GT(crossModule, inModule);
}

TEST(MemSys, InvalidationOnWriteSharedLine)
{
    MachineConfig cfg = baseCfg(8);
    Machine m(cfg);
    const Addr a = m.alloc(1 << 16);
    m.place(a, 1 << 16, 0);
    const BarrierId bar = m.barrierCreate();
    RunResult r = m.run([a, bar](Cpu& cpu) -> Task {
        cpu.read(a); // everyone shares the line
        co_await cpu.barrier(bar);
        if (cpu.id() == 0)
            cpu.write(a); // upgrade, invalidating 7 sharers
        co_await cpu.barrier(bar);
        if (cpu.id() == 3)
            cpu.read(a); // must miss now (dirty at proc 0)
        co_return;
    });
    EXPECT_EQ(r.procs[0].c.upgrades, 1u);
    EXPECT_EQ(r.procs[0].c.invalsSent, 7u);
    EXPECT_EQ(r.procs[3].c.missRemoteDirty, 1u)
        << "proc 3's reread should be a dirty-remote miss";
}

TEST(MemSys, WritebackOnDirtyEviction)
{
    MachineConfig cfg = baseCfg(2);
    cfg.cacheBytes = 2 * cfg.lineBytes; // one set, two ways
    cfg.cacheAssoc = 2;
    Machine m(cfg);
    const Addr a = m.alloc(1 << 16);
    RunResult r = m.run([a](Cpu& cpu) -> Task {
        if (cpu.id() == 0) {
            cpu.write(a);
            cpu.write(a + 128);
            cpu.write(a + 256); // evicts the first line dirty
        }
        co_return;
    });
    EXPECT_EQ(r.procs[0].c.writebacks, 1u);
}

TEST(MemSys, HubContentionSlowsSimultaneousMisses)
{
    // Many processors streaming from one home node queue at its Hub and
    // memory: average stall far above the uncontended latency.
    MachineConfig cfg = baseCfg(32);
    Machine m(cfg);
    const Addr a = m.alloc(4 << 20);
    m.place(a, 4 << 20, 0); // everything homed on node 0
    RunResult r = m.run([a](Cpu& cpu) -> Task {
        for (int i = 0; i < 64; ++i) {
            cpu.read(a + (static_cast<Addr>(cpu.id()) * 64 + i) * 128);
            co_await cpu.checkpoint();
        }
        co_return;
    });
    // Aggregate demand: 32 procs * 64 lines, all served by node 0's
    // memory at memOccupancy each => total time bounded below by that.
    const Cycles floor = 32ull * 64 * cfg.memOccupancy;
    EXPECT_GT(r.time, floor / 2);
    const double avgStall =
        static_cast<double>(r.procs[31].t.memStall) / 64;
    EXPECT_GT(avgStall, 200.0) << "should far exceed uncontended remote";
}

TEST(MemSys, DistributedDataAvoidsThatContention)
{
    MachineConfig cfg = baseCfg(32);
    Machine m(cfg);
    const Addr a = m.alloc(4 << 20);
    m.placeAcrossProcs(a, 4 << 20); // block-distributed
    RunResult r = m.run([a](Cpu& cpu) -> Task {
        // Each proc reads its own block: local; compute between misses
        // keeps the shared node Hub/memory below saturation.
        const Addr mine = a + static_cast<Addr>(cpu.id()) * (128 << 10);
        for (int i = 0; i < 64; ++i) {
            cpu.read(mine + static_cast<Addr>(i) * 128);
            cpu.busy(200);
            co_await cpu.checkpoint();
        }
        co_return;
    });
    for (int p = 0; p < 32; ++p)
        EXPECT_EQ(r.procs[p].c.missLocal, 64u) << "proc " << p;
    const double avgStall =
        static_cast<double>(r.procs[31].t.memStall) / 64;
    EXPECT_LT(avgStall, 120.0);
}

TEST(MemSys, PrefetchHidesRemoteLatency)
{
    MachineConfig cfg = baseCfg(8);
    Machine m(cfg);
    const Addr a = m.alloc(1 << 20);
    m.place(a, 1 << 20, 3);

    auto runner = [&](bool pf) {
        Machine mm(cfg);
        const Addr b = mm.alloc(1 << 20);
        mm.place(b, 1 << 20, 3);
        return mm.run([b, pf](Cpu& cpu) -> Task {
            if (cpu.id() != 0)
                co_return;
            for (int i = 0; i < 256; ++i) {
                if (pf && i + 4 < 256)
                    cpu.prefetch(b + static_cast<Addr>(i + 4) * 128);
                cpu.read(b + static_cast<Addr>(i) * 128);
                cpu.busy(300); // compute to overlap with
                co_await cpu.checkpoint();
            }
            co_return;
        });
    };
    const RunResult no_pf = runner(false);
    const RunResult with_pf = runner(true);
    EXPECT_LT(with_pf.procs[0].t.memStall,
              no_pf.procs[0].t.memStall / 2)
        << "prefetch 4 lines ahead over 300-cycle compute should hide "
           "most of the ~128-cycle remote latency";
    EXPECT_GT(with_pf.procs[0].c.prefetchesUseful, 200u);
}

TEST(MemSys, FalseSharingPingPong)
{
    // Two processors on different nodes writing distinct words of the
    // same line bounce it dirtily back and forth.
    MachineConfig cfg = baseCfg(4);
    // A short quantum interleaves the two writers finely enough for the
    // line to actually ping-pong (coarser quanta batch the writes).
    cfg.quantum = 100;
    Machine m(cfg);
    const Addr a = m.alloc(4096);
    m.place(a, 4096, 0);
    RunResult r = m.run([a](Cpu& cpu) -> Task {
        if (cpu.id() == 0 || cpu.id() == 2) {
            for (int i = 0; i < 50; ++i) {
                cpu.write(a + (cpu.id() == 0 ? 0 : 64)); // same line!
                cpu.busy(100);
                co_await cpu.checkpoint();
            }
        }
        co_return;
    });
    const std::uint64_t dirty3hop = r.procs[0].c.missRemoteDirty +
                                    r.procs[2].c.missRemoteDirty +
                                    r.procs[0].c.missLocal +
                                    r.procs[2].c.missLocal;
    EXPECT_GT(dirty3hop + r.procs[0].c.upgrades + r.procs[2].c.upgrades,
              40u)
        << "line must bounce, not stay cached";
}

TEST(MemSys, RoundRobinPlacementIgnoresManualHints)
{
    MachineConfig cfg = baseCfg(8);
    cfg.placement = Placement::RoundRobin;
    Machine m(cfg);
    const Addr a = m.alloc(1 << 20);
    m.place(a, 1 << 20, 0); // should be ignored
    RunResult r = m.run([a](Cpu& cpu) -> Task {
        if (cpu.id() == 0) {
            for (int i = 0; i < 64; ++i) {
                // one access per page
                cpu.read(a + static_cast<Addr>(i) * 16384);
                co_await cpu.checkpoint();
            }
        }
        co_return;
    });
    // Pages spread round-robin over 4 nodes: 3/4 of accesses remote.
    EXPECT_GT(r.procs[0].c.missRemoteClean, 40u);
    EXPECT_GT(r.procs[0].c.missLocal, 8u);
}

TEST(MemSys, PageMigrationMovesHotPages)
{
    MachineConfig cfg = baseCfg(8);
    cfg.placement = Placement::RoundRobin;
    cfg.pageMigration = true;
    cfg.migrationThreshold = 16;
    cfg.cacheBytes = 16 << 10; // tiny cache so accesses keep missing
    Machine m(cfg);
    const Addr a = m.alloc(1 << 20);
    RunResult r = m.run([a](Cpu& cpu) -> Task {
        if (cpu.id() != 0)
            co_return;
        // Hammer pages that are (mostly) remote under round-robin.
        for (int rep = 0; rep < 64; ++rep) {
            for (int pg = 0; pg < 8; ++pg) {
                for (int l = 0; l < 16; ++l)
                    cpu.read(a + static_cast<Addr>(pg) * 16384 +
                             static_cast<Addr>(l) * 128);
                co_await cpu.checkpoint();
            }
        }
        co_return;
    });
    EXPECT_GT(r.pageMigrations, 0u) << "hot remote pages should migrate";
    EXPECT_EQ(r.pageMigrations, r.procs[0].c.pageMigrations);
}

TEST(MemSys, FetchOpCheaperThanBouncingForRemote)
{
    MachineConfig cfg = baseCfg(32);
    Machine m(cfg);
    const MemSys& ms = m.mem();
    // At-memory op: one round trip; LL-SC bouncing: dirty 3-hop.
    EXPECT_LT(ms.pureFetchOp(0, 5), ms.pureDirty(0, 5, 9));
}

TEST(MemSys, LlscRmwAcquiresOwnership)
{
    MachineConfig cfg = baseCfg(4);
    Machine m(cfg);
    const Addr a = m.alloc(4096);
    m.place(a, 4096, 0);
    const BarrierId bar = m.barrierCreate();
    RunResult r = m.run([a, bar](Cpu& cpu) -> Task {
        cpu.read(a); // everyone shares
        co_await cpu.barrier(bar);
        if (cpu.id() == 2)
            cpu.rmw(a); // LL-SC: must invalidate the other sharers
        co_await cpu.barrier(bar);
        if (cpu.id() == 0)
            cpu.read(a); // dirty at proc 2 now
        co_return;
    });
    EXPECT_EQ(r.procs[2].c.invalsSent, 3u);
    EXPECT_EQ(r.procs[0].c.missRemoteDirty, 1u);
    EXPECT_EQ(m.mem().validateCoherence(), "");
}

TEST(MemSys, FetchOpDoesNotCache)
{
    MachineConfig cfg = baseCfg(4);
    Machine m(cfg);
    const Addr a = m.alloc(4096);
    m.place(a, 4096, 1);
    RunResult r = m.run([a](Cpu& cpu) -> Task {
        if (cpu.id() == 0)
            for (int i = 0; i < 5; ++i)
                cpu.fetchOp(a);
        co_return;
    });
    // At-memory ops never allocate in the cache.
    EXPECT_EQ(m.mem().cache(0).residentLines(), 0u);
    EXPECT_GT(r.procs[0].t.memStall, 0u);
}
