/**
 * @file
 * Tests for the scaling-loss diagnosis engine (ccnuma::diagnose).
 *
 * The engine's job is classification, so the core tests feed it
 * *synthetic pathologies* whose ground truth is known by construction:
 * a lock-convoy program must be diagnosed as lock serialization, a
 * barrier-imbalanced program as barrier imbalance. The rest pins the
 * contracts the CLI and CI lean on: the verdict JSON parses under the
 * repo's strict parser with the documented schema, repeated diagnoses
 * are byte-identical, the syncWait partition is exact on real apps,
 * and the HTML dashboard is self-contained.
 */

#include <cstdint>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "apps/app.hh"
#include "check/json.hh"
#include "diagnose/diagnose.hh"
#include "diagnose/html.hh"

namespace {

using namespace ccnuma;
using diagnose::AppDiagnosis;
using diagnose::Cause;
using diagnose::DiagnoseOptions;

// ---- synthetic pathologies ----

/// Every processor hammers one global lock with a long critical
/// section: textbook convoy, ~all scaling loss is lock serialization.
class LockConvoyApp final : public apps::App
{
  public:
    std::string name() const override { return "lock-convoy"; }

    void
    setup(sim::Machine& m) override
    {
        lock_ = m.lockCreate();
        counter_ = m.allocLine();
        bar_ = m.barrierCreate();
    }

    sim::Machine::Program
    program() override
    {
        const sim::LockId lock = lock_;
        const sim::BarrierId bar = bar_;
        const sim::Addr counter = counter_;
        return [=](sim::Cpu& cpu) -> sim::Task {
            for (int i = 0; i < 40; ++i) {
                co_await cpu.acquire(lock);
                cpu.read(counter);
                cpu.busy(400); // long critical section...
                // ...held across a scheduling point, so contenders
                // actually observe the lock taken and queue up.
                co_await cpu.checkpoint();
                cpu.write(counter);
                cpu.release(lock);
                co_await cpu.checkpoint();
            }
            co_await cpu.barrier(bar);
            co_return;
        };
    }

  private:
    sim::LockId lock_{};
    sim::BarrierId bar_{};
    sim::Addr counter_ = 0;
};

/// Processor 0 does 8x the work between barriers: everyone else
/// spends the phase waiting at the barrier.
class BarrierImbalanceApp final : public apps::App
{
  public:
    std::string name() const override { return "barrier-imbalance"; }

    void
    setup(sim::Machine& m) override
    {
        bar_ = m.barrierCreate();
        scratch_ = m.alloc(
            static_cast<std::uint64_t>(m.config().numProcs) * 4096);
    }

    sim::Machine::Program
    program() override
    {
        const sim::BarrierId bar = bar_;
        const sim::Addr scratch = scratch_;
        return [=](sim::Cpu& cpu) -> sim::Task {
            const sim::Addr mine =
                scratch + static_cast<sim::Addr>(cpu.id()) * 4096;
            for (int episode = 0; episode < 6; ++episode) {
                const int chunks = cpu.id() == 0 ? 64 : 8;
                for (int c = 0; c < chunks; ++c) {
                    cpu.read(mine + static_cast<sim::Addr>(c % 32) *
                                        128);
                    cpu.busy(300);
                    co_await cpu.checkpoint();
                }
                co_await cpu.barrier(bar);
            }
            co_return;
        };
    }

  private:
    sim::BarrierId bar_{};
    sim::Addr scratch_ = 0;
};

DiagnoseOptions
quickOptions()
{
    DiagnoseOptions opt;
    opt.procs = {1, 8};
    opt.jobs = 2;
    return opt;
}

// ---- classification ----

TEST(Diagnose, LockConvoyRanksLockSerializationFirst)
{
    const AppDiagnosis d = diagnose::diagnoseFactory(
        "lock-convoy", [] { return std::make_unique<LockConvoyApp>(); },
        quickOptions());
    ASSERT_TRUE(d.ok) << d.error;
    ASSERT_EQ(d.runs.size(), 2u);
    EXPECT_EQ(d.ranked.front().cause, Cause::LockSerialization);
    EXPECT_GT(d.ranked.front().share, 0.5);
    // The structural evidence agrees: one dominant lock, contended.
    const auto& foc = d.focus();
    EXPECT_EQ(foc.sync.locksUsed, 1);
    EXPECT_GT(foc.counters.lockContended, 0u);
    EXPECT_GT(foc.times.lockWait, foc.times.barrierWait);
}

TEST(Diagnose, BarrierImbalanceRanksBarrierImbalanceFirst)
{
    const AppDiagnosis d = diagnose::diagnoseFactory(
        "barrier-imbalance",
        [] { return std::make_unique<BarrierImbalanceApp>(); },
        quickOptions());
    ASSERT_TRUE(d.ok) << d.error;
    EXPECT_EQ(d.ranked.front().cause, Cause::BarrierImbalance);
    EXPECT_GT(d.ranked.front().share, 0.5);
    const auto& foc = d.focus();
    EXPECT_EQ(foc.sync.barrierEpisodes, 6u);
    EXPECT_GT(foc.times.barrierWait, foc.times.lockWait);
    // The worst waiter (a fast proc) waits well above the mean: the
    // imbalance fingerprint.
    EXPECT_GT(foc.maxBarrierWait,
              foc.times.barrierWait /
                  static_cast<sim::Cycles>(foc.procs));
}

// ---- invariants on a real registry app ----

TEST(Diagnose, SyncWaitPartitionIsExact)
{
    const AppDiagnosis d =
        diagnose::diagnoseApp("water-nsq", quickOptions());
    ASSERT_TRUE(d.ok) << d.error;
    for (const diagnose::RunObservation& r : d.runs) {
        EXPECT_EQ(r.times.lockWait + r.times.barrierWait,
                  r.times.syncWait)
            << "P=" << r.procs;
        if (r.traced) {
            // Epoch slices are a partition too.
            sim::Cycles lock_sum = 0, barrier_sum = 0;
            for (const diagnose::EpochRow& e : r.epochs) {
                lock_sum += e.lockWait;
                barrier_sum += e.barrierWait;
            }
            EXPECT_EQ(lock_sum, r.times.lockWait);
            EXPECT_EQ(barrier_sum, r.times.barrierWait);
        }
    }
    // Shares are normalized over the positive losses.
    double positive = 0;
    for (const diagnose::CauseScore& c : d.ranked)
        if (c.lostCycles > 0)
            positive += c.share;
    if (positive > 0)
        EXPECT_NEAR(positive, 1.0, 1e-9);
}

TEST(Diagnose, UnknownAppThrowsWithNameList)
{
    EXPECT_THROW(diagnose::diagnoseApp("no-such-app", quickOptions()),
                 std::invalid_argument);
}

// ---- JSON contract ----

TEST(Diagnose, JsonIsStrictParseableWithSchema)
{
    const AppDiagnosis d = diagnose::diagnoseApp("fft", quickOptions());
    ASSERT_TRUE(d.ok) << d.error;
    std::ostringstream os;
    diagnose::writeDiagnoseJson(os, {d});

    const check::json::ParseResult pr = check::json::parse(os.str());
    ASSERT_TRUE(pr.ok) << pr.error;
    const check::json::Value* schema = pr.root.find("schema");
    ASSERT_NE(schema, nullptr);
    EXPECT_EQ(schema->str, "ccnuma-diagnose-v2");

    const check::json::Value* apps_arr = pr.root.find("apps");
    ASSERT_NE(apps_arr, nullptr);
    ASSERT_TRUE(apps_arr->isArray());
    ASSERT_EQ(apps_arr->arr.size(), 1u);
    const check::json::Value& app = apps_arr->arr[0];
    EXPECT_EQ(app.find("app")->str, "fft");
    for (const char* key : {"machine", "ok", "scalesWell", "verdict",
                            "primaryCause", "causes", "runs"})
        ASSERT_NE(app.find(key), nullptr) << key;

    // v2: every app says which machine it was diagnosed on.
    const check::json::Value* machine = app.find("machine");
    ASSERT_NE(machine->find("protocol"), nullptr);
    ASSERT_NE(machine->find("dirFormat"), nullptr);
    EXPECT_EQ(machine->find("protocol")->str, "mesi");
    EXPECT_EQ(machine->find("dirFormat")->str, "fullbv");

    // Exactly the five taxonomy causes, each with evidence.
    const check::json::Value* causes = app.find("causes");
    ASSERT_TRUE(causes->isArray());
    ASSERT_EQ(causes->arr.size(),
              static_cast<std::size_t>(diagnose::kNumCauses));
    for (const check::json::Value& c : causes->arr) {
        ASSERT_NE(c.find("cause"), nullptr);
        ASSERT_NE(c.find("lostCycles"), nullptr);
        ASSERT_NE(c.find("share"), nullptr);
        ASSERT_NE(c.find("evidence"), nullptr);
    }

    // One entry per grid point with the full time partition.
    const check::json::Value* runs = app.find("runs");
    ASSERT_TRUE(runs->isArray());
    ASSERT_EQ(runs->arr.size(), 2u);
    for (const check::json::Value& r : runs->arr)
        for (const char* key :
             {"procs", "time", "speedup", "efficiency", "busy",
              "memStall", "lockWait", "barrierWait", "syncOp"})
            ASSERT_NE(r.find(key), nullptr) << key;
}

TEST(Diagnose, NonDefaultMachineIsRecordedInTheVerdict)
{
    DiagnoseOptions opt = quickOptions();
    ASSERT_TRUE(opt.protocol.parse("dragon"));
    ASSERT_TRUE(opt.dirFormat.parse("coarse:4"));
    const AppDiagnosis d = diagnose::diagnoseApp("fft", opt);
    ASSERT_TRUE(d.ok) << d.error;
    EXPECT_EQ(d.protocol, "dragon");
    EXPECT_EQ(d.dirFormat, "coarse:4");

    std::ostringstream os;
    diagnose::writeDiagnoseJson(os, {d});
    const check::json::ParseResult pr = check::json::parse(os.str());
    ASSERT_TRUE(pr.ok) << pr.error;
    const check::json::Value* machine =
        pr.root.find("apps")->arr[0].find("machine");
    ASSERT_NE(machine, nullptr);
    EXPECT_EQ(machine->find("protocol")->str, "dragon");
    EXPECT_EQ(machine->find("dirFormat")->str, "coarse:4");
}

TEST(Diagnose, JsonIsByteDeterministic)
{
    const DiagnoseOptions opt = quickOptions();
    std::ostringstream a, b;
    diagnose::writeDiagnoseJson(a, {diagnose::diagnoseApp("fft", opt)});
    diagnose::writeDiagnoseJson(b, {diagnose::diagnoseApp("fft", opt)});
    EXPECT_EQ(a.str(), b.str());
    EXPECT_FALSE(a.str().empty());
}

// ---- HTML contract ----

TEST(Diagnose, DashboardIsSelfContained)
{
    const AppDiagnosis d = diagnose::diagnoseApp("fft", quickOptions());
    ASSERT_TRUE(d.ok) << d.error;
    std::ostringstream os;
    diagnose::writeDashboard(os, {d});
    const std::string html = os.str();

    EXPECT_NE(html.find("<!doctype html>"), std::string::npos);
    EXPECT_NE(html.find("id='app-fft'"), std::string::npos);
    EXPECT_NE(html.find("<svg"), std::string::npos);
    EXPECT_NE(html.find(d.verdict.substr(0, 20)), std::string::npos);
    // Offline contract: no external fetches of any kind.
    for (const char* banned :
         {"http://", "https://", "<script src", "<link ", "@import",
          "url("})
        EXPECT_EQ(html.find(banned), std::string::npos) << banned;
}

} // namespace
